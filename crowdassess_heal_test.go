package crowdassess_test

import (
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"crowdassess"
)

// TestSelfHealingClusterFacade drives the self-healing surface end to end
// through the public API: build a dialer-equipped replicated cluster, kill
// a replica mid-stream, and watch the heartbeat monitor detect the death
// and re-seed an empty replacement from the survivor — while ingestion
// never fails and final intervals stay bit-identical to a local evaluator.
func TestSelfHealingClusterFacade(t *testing.T) {
	const workers, tasks = 7, 160
	ds, _ := buildCrowd(t, 61, workers, tasks, 0.8)

	newNode := func() *crowdassess.DistWorker {
		t.Helper()
		w, err := crowdassess.NewDistWorker(crowdassess.DistWorkerOptions{Workers: workers, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		return w
	}

	// One slice, two replicas. The dialers resolve through `current`, the
	// way a real address outlives the process behind it.
	var mu sync.Mutex
	current := []*crowdassess.DistWorker{newNode(), newNode()}
	dialTo := func(ri int) func() (*crowdassess.DistConn, error) {
		return func() (*crowdassess.DistConn, error) {
			mu.Lock()
			defer mu.Unlock()
			return current[ri].SelfConn()
		}
	}
	specs := make([]crowdassess.DistReplicaSpec, 2)
	for ri := range specs {
		conn, err := current[ri].SelfConn()
		if err != nil {
			t.Fatal(err)
		}
		specs[ri] = crowdassess.DistReplicaSpec{Conn: conn, Dial: dialTo(ri)}
	}

	policy := crowdassess.DefaultDistPolicy()
	policy.RPCTimeout = 2 * time.Second
	coord, err := crowdassess.NewSelfHealingCluster(workers, [][]crowdassess.DistReplicaSpec{specs}, policy)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	var events []string
	var evMu sync.Mutex
	coord.StartMonitor(crowdassess.ClusterMonitorOptions{
		Interval:     20 * time.Millisecond,
		SuspectAfter: 1,
		DownAfter:    2,
		ReseedEvery:  40 * time.Millisecond,
		OnEvent: func(e crowdassess.ClusterEvent) {
			evMu.Lock()
			events = append(events, e.String())
			evMu.Unlock()
		},
	})

	local, err := crowdassess.NewIncremental(workers)
	if err != nil {
		t.Fatal(err)
	}
	ingest := func(from, to int) {
		t.Helper()
		var batch []crowdassess.DistResponse
		for task := from; task < to; task++ {
			for w := 0; w < workers; w++ {
				if !ds.Attempted(w, task) {
					continue
				}
				batch = append(batch, crowdassess.DistResponse{Worker: w, Task: task, Answer: ds.Response(w, task)})
				if err := local.Add(w, task, ds.Response(w, task)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := coord.Ingest(batch); err != nil {
			t.Fatalf("ingest must survive the replica death: %v", err)
		}
	}

	ingest(0, tasks/2)

	// Kill replica 0 and stand a fresh empty node up at its "address"; the
	// monitor must notice and re-seed it from the survivor.
	mu.Lock()
	dead := current[0]
	current[0] = newNode()
	mu.Unlock()
	dead.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		view := coord.Membership()
		if len(view) != 2 {
			t.Fatalf("membership has %d rows, want 2", len(view))
		}
		if view[0].State == "alive" && view[0].Reseeds >= 1 {
			break
		}
		if time.Now().After(deadline) {
			evMu.Lock()
			t.Fatalf("replica never re-seeded; membership %+v, events %q", view, events)
		}
		time.Sleep(10 * time.Millisecond)
	}

	ingest(tasks/2, tasks)

	opts := crowdassess.Options{Confidence: 0.9}
	want, err := local.EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if (got[i].Err == nil) != (want[i].Err == nil) {
			t.Fatalf("worker %d error mismatch: %v vs %v", i, got[i].Err, want[i].Err)
		}
		if got[i].Err != nil {
			continue
		}
		if math.Float64bits(got[i].Interval.Lo) != math.Float64bits(want[i].Interval.Lo) ||
			math.Float64bits(got[i].Interval.Hi) != math.Float64bits(want[i].Interval.Hi) {
			t.Fatalf("worker %d: healed-cluster interval differs from local", i)
		}
	}
	if degraded := coord.Degraded(); len(degraded) != 0 {
		t.Fatalf("healthy cluster reports degraded slices %v", degraded)
	}
	evMu.Lock()
	defer evMu.Unlock()
	var sawDown, sawReseed bool
	for _, e := range events {
		switch {
		case e == "down slice=0 replica=0" || e == "suspect slice=0 replica=0":
			sawDown = true
		}
		if len(e) >= 6 && e[:6] == "reseed" {
			sawReseed = true
		}
	}
	if !sawDown || !sawReseed {
		t.Fatalf("monitor events missed the lifecycle (down=%v reseed=%v): %q", sawDown, sawReseed, events)
	}
}

// TestChaosFacade smoke-tests the exported fault-injection surface: a
// seeded Chaos over pipe-backed FaultConns produces a deterministic,
// replayable strike log.
func TestChaosFacade(t *testing.T) {
	strikes := func(seed uint64) []string {
		ch := crowdassess.NewChaos(seed)
		a1, a2 := net.Pipe()
		defer a1.Close()
		defer a2.Close()
		ch.Wrap(a1)
		ch.Wrap(a2)
		for i := 0; i < 5; i++ {
			ch.Strike()
		}
		ch.HealAll()
		return ch.Log()
	}
	first, again := strikes(42), strikes(42)
	if len(first) != 5 {
		t.Fatalf("logged %d strikes, want 5", len(first))
	}
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("strike %d not deterministic: %q vs %q", i, first[i], again[i])
		}
	}
	other := strikes(43)
	same := true
	for i := range first {
		if first[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced the identical strike schedule")
	}
}
