package crowdassess_test

import (
	"fmt"

	"crowdassess"
)

// ExampleEvaluateTriple estimates three workers' error rates from their
// answers alone — no gold standard.
func ExampleEvaluateTriple() {
	src := crowdassess.NewSimSource(42)
	ds, _, err := crowdassess.BinarySim{
		Tasks:      500,
		Workers:    3,
		ErrorRates: []float64{0.10, 0.20, 0.30},
	}.Generate(src)
	if err != nil {
		panic(err)
	}
	intervals, err := crowdassess.EvaluateTriple(ds, [3]int{0, 1, 2}, 0.90)
	if err != nil {
		panic(err)
	}
	for w, iv := range intervals {
		fmt.Printf("worker %d: [%.2f, %.2f]\n", w, iv.Lo, iv.Hi)
	}
	// Output:
	// worker 0: [0.01, 0.16]
	// worker 1: [0.18, 0.29]
	// worker 2: [0.27, 0.37]
}

// ExampleEvaluateWorkers evaluates a larger crowd where workers answered
// only a subset of tasks.
func ExampleEvaluateWorkers() {
	src := crowdassess.NewSimSource(7)
	ds, _, err := crowdassess.BinarySim{
		Tasks:      400,
		Workers:    5,
		ErrorRates: []float64{0.1, 0.1, 0.2, 0.3, 0.2},
		Density:    0.8,
	}.Generate(src)
	if err != nil {
		panic(err)
	}
	ests, err := crowdassess.EvaluateWorkers(ds, crowdassess.Options{Confidence: 0.9})
	if err != nil {
		panic(err)
	}
	for _, e := range ests {
		if e.Err != nil {
			continue
		}
		fmt.Printf("worker %d: mean %.2f from %d triples\n", e.Worker, e.Interval.Mean, e.Triples)
	}
	// Output:
	// worker 0: mean 0.09 from 2 triples
	// worker 1: mean 0.06 from 2 triples
	// worker 2: mean 0.24 from 2 triples
	// worker 3: mean 0.26 from 2 triples
	// worker 4: mean 0.15 from 2 triples
}

// ExamplePruneSpammers shows the paper's preprocessing step: screen out
// near-random workers before estimating the rest.
func ExamplePruneSpammers() {
	// Six reliable workers dominate the majority vote, so the two spammers
	// stand out clearly against it.
	src := crowdassess.NewSimSource(3)
	ds, _, err := crowdassess.BinarySim{
		Tasks:      300,
		Workers:    8,
		ErrorRates: []float64{0.1, 0.15, 0.2, 0.1, 0.15, 0.1, 0.5, 0.5},
	}.Generate(src)
	if err != nil {
		panic(err)
	}
	pruned, kept, err := crowdassess.PruneSpammers(ds, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("kept %d of %d workers: %v\n", pruned.Workers(), ds.Workers(), kept)
	// Output:
	// kept 6 of 8 workers: [0 1 2 3 4 5]
}

// ExampleWeightedBinaryAnswers closes the loop: estimated error rates feed
// a reliability-weighted vote over task answers.
func ExampleWeightedBinaryAnswers() {
	src := crowdassess.NewSimSource(11)
	ds, _, err := crowdassess.BinarySim{
		Tasks:      200,
		Workers:    5,
		ErrorRates: []float64{0.05, 0.3, 0.35, 0.4, 0.3},
	}.Generate(src)
	if err != nil {
		panic(err)
	}
	ests, err := crowdassess.EvaluateWorkers(ds, crowdassess.Options{Confidence: 0.9})
	if err != nil {
		panic(err)
	}
	rates := make([]float64, ds.Workers())
	for _, e := range ests {
		if e.Err == nil {
			rates[e.Worker] = e.Interval.Mean
		} else {
			rates[e.Worker] = 0.49
		}
	}
	weighted, err := crowdassess.WeightedBinaryAnswers(ds, rates)
	if err != nil {
		panic(err)
	}
	wAcc, _ := crowdassess.AnswerAccuracy(ds, weighted)
	mAcc, _ := crowdassess.AnswerAccuracy(ds, crowdassess.MajorityAnswers(ds))
	fmt.Printf("weighted vote beats majority: %v\n", wAcc >= mAcc)
	// Output:
	// weighted vote beats majority: true
}

// ExampleGoldStandardIntervals shows the classical alternative when expert
// labels exist.
func ExampleGoldStandardIntervals() {
	src := crowdassess.NewSimSource(5)
	ds, _, err := crowdassess.BinarySim{
		Tasks:      200,
		Workers:    3,
		ErrorRates: []float64{0.1, 0.2, 0.3},
	}.Generate(src)
	if err != nil {
		panic(err)
	}
	ests, err := crowdassess.GoldStandardIntervals(ds, 0.95, crowdassess.GoldExact)
	if err != nil {
		panic(err)
	}
	for _, e := range ests {
		fmt.Printf("worker %d: %d/%d wrong\n", e.Worker, e.Wrong, e.Scored)
	}
	// Output:
	// worker 0: 19/200 wrong
	// worker 1: 44/200 wrong
	// worker 2: 57/200 wrong
}
