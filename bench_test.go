// Benchmark harness: one benchmark per paper figure plus the ablations
// called out in DESIGN.md. Each figure benchmark runs a scaled-down
// replicate count per iteration (the crowdbench CLI runs the full
// paper-scale sweeps) and reports the figure's headline quantity as a
// custom metric, so `go test -bench=. -benchmem` doubles as a smoke
// reproduction of every figure.
package crowdassess_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"crowdassess"
	"crowdassess/internal/core"
	"crowdassess/internal/eval"
	"crowdassess/internal/randx"
	"crowdassess/internal/sim"
)

// yAt returns series si's y value at x. A missing grid point is a harness
// bug (a refactor shifted a grid), not a zero metric, so it fails the
// benchmark rather than silently reporting 0.
func yAt(b *testing.B, res *eval.Result, si int, x float64) float64 {
	b.Helper()
	if si >= len(res.Series) {
		b.Fatalf("%s: series %d out of range (%d series)", res.Name, si, len(res.Series))
	}
	for _, pt := range res.Series[si].Points {
		if pt.X > x-1e-9 && pt.X < x+1e-9 {
			return pt.Y
		}
	}
	b.Fatalf("%s: series %q has no point at x=%v", res.Name, res.Series[si].Label, x)
	return 0
}

func BenchmarkFig1(b *testing.B) {
	var newSize, oldSize float64
	for i := 0; i < b.N; i++ {
		res, err := eval.Fig1(eval.Params{Replicates: 3, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		newSize = yAt(b, res, 0, 0.5) // new technique, 3 workers
		oldSize = yAt(b, res, 1, 0.5) // old technique, 3 workers
	}
	b.ReportMetric(newSize, "newSize@c0.5")
	b.ReportMetric(oldSize, "oldSize@c0.5")
	if oldSize > 0 {
		b.ReportMetric(newSize/oldSize, "sizeRatio")
	}
}

func BenchmarkFig2a(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := eval.Fig2a(eval.Params{Replicates: 5, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		acc = yAt(b, res, 3, 0.8) // 7 workers, 300 tasks
	}
	b.ReportMetric(acc, "accuracy@c0.8")
}

func BenchmarkFig2b(b *testing.B) {
	var size float64
	for i := 0; i < b.N; i++ {
		res, err := eval.Fig2b(eval.Params{Replicates: 3, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		size = yAt(b, res, 2, 0.8) // 7 workers, 300 tasks at density 0.8
	}
	b.ReportMetric(size, "size@d0.8")
}

func BenchmarkFig2c(b *testing.B) {
	var opt, uni float64
	for i := 0; i < b.N; i++ {
		res, err := eval.Fig2c(eval.Params{Replicates: 3, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		uni = yAt(b, res, 0, 0.5)
		opt = yAt(b, res, 1, 0.5)
	}
	b.ReportMetric(uni, "uniform@c0.5")
	b.ReportMetric(opt, "optimal@c0.5")
	if opt > 0 {
		b.ReportMetric(uni/opt, "improvement")
	}
}

func BenchmarkFig3(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := eval.Fig3(eval.Params{Replicates: 1, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		acc = yAt(b, res, 0, 0.8) // Image Comparison
	}
	b.ReportMetric(acc, "IC-accuracy@c0.8")
}

func BenchmarkFig4(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := eval.Fig4(eval.Params{Replicates: 1, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		acc = yAt(b, res, 1, 0.9) // RTE after pruning, high confidence
	}
	b.ReportMetric(acc, "RTE-accuracy@c0.9")
}

func BenchmarkFig5a(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := eval.Fig5a(eval.Params{Replicates: 2, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		acc = yAt(b, res, 1, 0.8) // arity 2, 1000 tasks
	}
	b.ReportMetric(acc, "accuracy@c0.8")
}

func BenchmarkFig5b(b *testing.B) {
	var a2, a4 float64
	for i := 0; i < b.N; i++ {
		res, err := eval.Fig5b(eval.Params{Replicates: 1, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		a2 = yAt(b, res, 0, 0.8)
		a4 = yAt(b, res, 2, 0.8)
	}
	b.ReportMetric(a2, "arity2-size@d0.8")
	b.ReportMetric(a4, "arity4-size@d0.8")
}

func BenchmarkFig5c(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := eval.Fig5c(eval.Params{Replicates: 1, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		acc = yAt(b, res, 0, 0.9) // MOOC at high confidence
	}
	b.ReportMetric(acc, "MOOC-accuracy@c0.9")
}

// BenchmarkFigParallel runs two representative figure sweeps with the
// replicate fan-out on and off; on a multi-core machine the parallel run
// should approach a GOMAXPROCS-fold speedup while producing byte-identical
// series (asserted in internal/eval's TestFiguresParallelMatchesSerial).
func BenchmarkFigParallel(b *testing.B) {
	for _, cfg := range []struct {
		name string
		run  func(eval.Params) (*eval.Result, error)
		reps int
	}{
		{"fig2a", eval.Fig2a, 8},
		{"fig5b", eval.Fig5b, 2},
	} {
		for _, parallel := range []bool{false, true} {
			name := cfg.name + "-serial"
			if parallel {
				name = cfg.name + "-parallel"
			}
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := cfg.run(eval.Params{Replicates: cfg.reps, Seed: 1, Parallel: parallel}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Ablations (DESIGN.md) ---

// BenchmarkAblationPairing compares the paper's greedy common-task pairing
// against arbitrary index-order pairing (ablation #2).
func BenchmarkAblationPairing(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		pairing core.PairingStrategy
	}{
		{"greedy", core.GreedyPairing},
		{"arbitrary", core.ArbitraryPairing},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var total, count float64
			for i := 0; i < b.N; i++ {
				src := randx.NewSource(int64(i))
				ds, _, err := sim.Binary{
					Tasks:     150,
					Workers:   9,
					Densities: []float64{1, 1, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3},
				}.Generate(src)
				if err != nil {
					b.Fatal(err)
				}
				ests, err := core.EvaluateWorkers(ds, core.EvalOptions{
					Confidence: 0.8, Pairing: cfg.pairing,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, e := range ests {
					if e.Err == nil {
						total += e.Interval.Size()
						count++
					}
				}
			}
			if count > 0 {
				b.ReportMetric(total/count, "meanSize@c0.8")
			}
		})
	}
}

// BenchmarkAblationSymmetrize compares the default symmetrized Jacobi
// spectral step against the raw non-symmetric QR path (ablation #3).
func BenchmarkAblationSymmetrize(b *testing.B) {
	for _, cfg := range []struct {
		name string
		raw  bool
	}{
		{"symmetrized", false},
		{"raw", true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var size float64
			var fails int
			for i := 0; i < b.N; i++ {
				// Seeds drawing several diag-0.6 workers are degenerate at
				// small n; 800 tasks keeps the failure rate low so the size
				// comparison is meaningful.
				src := randx.NewSource(int64(i))
				ds, _, err := sim.KAry{
					Tasks:            800,
					Workers:          3,
					ConfusionChoices: sim.PaperMatricesArity3,
				}.Generate(src)
				if err != nil {
					b.Fatal(err)
				}
				est, err := core.ThreeWorkerKAry(ds, [3]int{0, 1, 2}, core.KAryOptions{
					Confidence: 0.8, RawEigen: cfg.raw,
				})
				if err != nil {
					fails++
					continue
				}
				var sum float64
				for w := 0; w < 3; w++ {
					for a := 0; a < 3; a++ {
						for c := 0; c < 3; c++ {
							sum += est.Intervals[w][a][c].Size()
						}
					}
				}
				size = sum / 27
			}
			b.ReportMetric(size, "meanSize@c0.8")
			b.ReportMetric(float64(fails), "failures")
		})
	}
}

// BenchmarkAblationPruneThreshold sweeps the spammer cutoff around the
// paper's 0.4 on an RTE-shaped crowd (ablation #4).
func BenchmarkAblationPruneThreshold(b *testing.B) {
	for _, thr := range []float64{0.30, 0.40, 0.45} {
		b.Run(formatThreshold(thr), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				src := randx.NewSource(int64(i))
				ds, err := sim.EmulateRTE(src)
				if err != nil {
					b.Fatal(err)
				}
				pruned, _, err := core.PruneSpammers(ds, thr)
				if err != nil {
					continue
				}
				ests, err := core.EvaluateWorkers(pruned, core.EvalOptions{Confidence: 0.9})
				if err != nil {
					b.Fatal(err)
				}
				hit, total := 0, 0
				for _, e := range ests {
					if e.Err != nil {
						continue
					}
					rate, err := pruned.TrueErrorRate(e.Worker)
					if err != nil {
						continue
					}
					total++
					if e.Interval.Contains(rate) {
						hit++
					}
				}
				if total > 0 {
					acc = float64(hit) / float64(total)
				}
			}
			b.ReportMetric(acc, "accuracy@c0.9")
		})
	}
}

// BenchmarkAblationEpsilon sweeps the A3 numeric-derivative step around the
// paper's 0.01 (ablation #5).
func BenchmarkAblationEpsilon(b *testing.B) {
	for _, eps := range []float64{0.001, 0.01, 0.1} {
		b.Run(formatThreshold(eps), func(b *testing.B) {
			var size float64
			for i := 0; i < b.N; i++ {
				src := randx.NewSource(int64(i))
				ds, _, err := sim.KAry{
					Tasks:            500,
					Workers:          3,
					ConfusionChoices: sim.PaperMatricesArity2,
				}.Generate(src)
				if err != nil {
					b.Fatal(err)
				}
				est, err := core.ThreeWorkerKAry(ds, [3]int{0, 1, 2}, core.KAryOptions{
					Confidence: 0.8, Epsilon: eps,
				})
				if err != nil {
					continue
				}
				var sum float64
				for w := 0; w < 3; w++ {
					for a := 0; a < 2; a++ {
						for c := 0; c < 2; c++ {
							sum += est.Intervals[w][a][c].Size()
						}
					}
				}
				size = sum / 12
			}
			b.ReportMetric(size, "meanSize@c0.8")
		})
	}
}

func formatThreshold(v float64) string {
	switch {
	case v >= 0.1:
		return "0." + string(rune('0'+int(v*10)%10)) + string(rune('0'+int(v*100)%10))
	default:
		if v >= 0.01 {
			return "0.01"
		}
		return "0.001"
	}
}

// --- Core micro-benchmarks through the public API ---

func BenchmarkEvaluateTriple(b *testing.B) {
	src := crowdassess.NewSimSource(1)
	ds, _, err := crowdassess.BinarySim{Tasks: 300, Workers: 3, Density: 0.8}.Generate(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := crowdassess.EvaluateTriple(ds, [3]int{0, 1, 2}, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateWorkers(b *testing.B) {
	for _, m := range []int{7, 21, 51} {
		for _, parallel := range []bool{false, true} {
			name := "m" + itoa(m)
			if parallel {
				name += "-parallel"
			}
			b.Run(name, func(b *testing.B) {
				src := crowdassess.NewSimSource(2)
				ds, _, err := crowdassess.BinarySim{Tasks: 300, Workers: m, Density: 0.7}.Generate(src)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := crowdassess.EvaluateWorkers(ds, crowdassess.Options{Confidence: 0.9, Parallel: parallel}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkEstimateResponseMatrices(b *testing.B) {
	for _, k := range []int{2, 3, 4} {
		b.Run("arity"+itoa(k), func(b *testing.B) {
			src := crowdassess.NewSimSource(3)
			ds, _, err := crowdassess.KArySim{
				Tasks:            500,
				Workers:          3,
				ConfusionChoices: crowdassess.PaperConfusionMatrices(k),
			}.Generate(src)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := crowdassess.EstimateResponseMatrices(ds, [3]int{0, 1, 2},
					crowdassess.KAryOptions{Confidence: 0.9}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGoldVsAgreement quantifies the cost of not having gold answers:
// the ratio between agreement-based and gold-standard interval sizes at the
// same confidence level.
func BenchmarkGoldVsAgreement(b *testing.B) {
	src := crowdassess.NewSimSource(5)
	ds, _, err := crowdassess.BinarySim{Tasks: 300, Workers: 7}.Generate(src)
	if err != nil {
		b.Fatal(err)
	}
	var goldSize, agreeSize float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gold, err := crowdassess.GoldStandardIntervals(ds, 0.9, crowdassess.GoldWilson)
		if err != nil {
			b.Fatal(err)
		}
		agree, err := crowdassess.EvaluateWorkers(ds, crowdassess.Options{Confidence: 0.9})
		if err != nil {
			b.Fatal(err)
		}
		goldSize, agreeSize = 0, 0
		n := 0
		for w := range gold {
			if gold[w].Err != nil || agree[w].Err != nil {
				continue
			}
			goldSize += gold[w].Interval.Size()
			agreeSize += agree[w].Interval.Size()
			n++
		}
		goldSize /= float64(n)
		agreeSize /= float64(n)
	}
	b.ReportMetric(goldSize, "goldSize@c0.9")
	b.ReportMetric(agreeSize, "agreeSize@c0.9")
	if goldSize > 0 {
		b.ReportMetric(agreeSize/goldSize, "noGoldCost")
	}
}

// BenchmarkIncrementalAdd measures the streaming evaluator's per-response
// update cost (the whole point of the incremental form: no rescans).
func BenchmarkIncrementalAdd(b *testing.B) {
	src := crowdassess.NewSimSource(6)
	ds, _, err := crowdassess.BinarySim{Tasks: 1000, Workers: 10}.Generate(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var inc *crowdassess.Incremental
	for i := 0; i < b.N; i++ {
		if i%(1000*10) == 0 {
			inc, err = crowdassess.NewIncremental(10)
			if err != nil {
				b.Fatal(err)
			}
		}
		w := i % 10
		t := (i / 10) % 1000
		r := ds.Response(w, t)
		if inc.Add(w, t, r) != nil {
			b.Fatal("add failed")
		}
	}
}

// BenchmarkIncrementalEvaluate measures on-demand interval recomputation
// from accumulated statistics.
func BenchmarkIncrementalEvaluate(b *testing.B) {
	src := crowdassess.NewSimSource(7)
	ds, _, err := crowdassess.BinarySim{Tasks: 500, Workers: 10}.Generate(src)
	if err != nil {
		b.Fatal(err)
	}
	inc, err := crowdassess.NewIncremental(10)
	if err != nil {
		b.Fatal(err)
	}
	for t := 0; t < 500; t++ {
		for w := 0; w < 10; w++ {
			if err := inc.Add(w, t, ds.Response(w, t)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inc.Evaluate(i%10, crowdassess.Options{Confidence: 0.9}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedIncrementalAdd measures the concurrent evaluator's
// per-response cost under parallel submitters, the regime it exists for —
// comparable against BenchmarkIncrementalAdd's single-goroutine path
// because the workload matches it: 10 workers answering every task, so
// each Add pays the same pairwise-counter accumulation against up to 9
// prior responders. A global counter makes every (worker, task) pair
// unique so every Add is accepted.
func BenchmarkShardedIncrementalAdd(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			inc, err := crowdassess.NewShardedIncremental(10, shards)
			if err != nil {
				b.Fatal(err)
			}
			var ctr atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(ctr.Add(1)) - 1
					// b.Error, not b.Fatal: RunParallel bodies run off the
					// benchmark goroutine, where FailNow is not allowed.
					if inc.Add(i%10, i/10, crowdassess.Yes) != nil {
						b.Error("add failed")
						return
					}
				}
			})
		})
	}
}

func BenchmarkDawidSkene(b *testing.B) {
	src := crowdassess.NewSimSource(4)
	ds, _, err := crowdassess.BinarySim{Tasks: 500, Workers: 10, Density: 0.6}.Generate(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (crowdassess.DawidSkene{}).Fit(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
