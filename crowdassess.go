// Package crowdassess evaluates crowdsourcing workers without gold-standard
// answers, producing confidence intervals — not just point estimates — for
// worker error rates (binary tasks) and full response-probability matrices
// (k-ary tasks). It reproduces Joglekar, Garcia-Molina and Parameswaran,
// "Comprehensive and Reliable Crowd Assessment Algorithms", ICDE 2015.
//
// # Quick start
//
// Build a Dataset of worker responses (0 = task not attempted), then ask for
// error-rate intervals:
//
//	ds, _ := crowdassess.NewDataset(numWorkers, numTasks, 2)
//	ds.SetResponse(worker, task, crowdassess.Yes)
//	...
//	ests, err := crowdassess.EvaluateWorkers(ds, crowdassess.Options{Confidence: 0.9})
//	for _, e := range ests {
//	    if e.Err == nil {
//	        fmt.Printf("worker %d: error rate in [%.3f, %.3f]\n",
//	            e.Worker, e.Interval.Lo, e.Interval.Hi)
//	    }
//	}
//
// Workers never need to have attempted every task (non-regular data), tasks
// may have any number of possible answers (k-ary, via
// EstimateResponseMatrices), and workers may be biased toward particular
// answers — the generality that distinguishes this method from its
// predecessors.
package crowdassess

import (
	"net"

	"crowdassess/internal/aggregate"
	"crowdassess/internal/baseline"
	"crowdassess/internal/core"
	"crowdassess/internal/crowd"
	"crowdassess/internal/dist"
	"crowdassess/internal/eval"
	"crowdassess/internal/gate"
	"crowdassess/internal/pool"
	"crowdassess/internal/randx"
	"crowdassess/internal/sim"
	"crowdassess/internal/stat"
)

// Dataset is a sparse worker×task response matrix with optional gold
// answers. See NewDataset.
type Dataset = crowd.Dataset

// Response is a worker answer: None (0) when the task was not attempted,
// otherwise a class in 1…arity. Binary datasets use Yes (1) and No (2).
type Response = crowd.Response

// Response values.
const (
	None = crowd.None
	Yes  = crowd.Yes
	No   = crowd.No
)

// Interval is a confidence interval around a point estimate.
type Interval = stat.Interval

// NewDataset returns an empty dataset for the given number of workers and
// tasks; arity is the number of possible responses per task (2 for binary).
func NewDataset(workers, tasks, arity int) (*Dataset, error) {
	return crowd.NewDataset(workers, tasks, arity)
}

// ReadDataset parses a JSON-encoded dataset (the format written by
// Dataset.WriteTo).
var ReadDataset = crowd.ReadDataset

// ReadDatasetCSV parses the long CSV form (worker,task,response[,truth]
// rows, 1-based classes) most labelling platforms export. It returns the
// dataset plus the worker and task identifiers in dense-index order.
var ReadDatasetCSV = crowd.ReadCSV

// Options configures EvaluateWorkers.
type Options = core.EvalOptions

// Weight strategies for combining triple estimates (Options.Weights).
const (
	OptimalWeights = core.OptimalWeights
	UniformWeights = core.UniformWeights
)

// Pairing strategies for forming triples (Options.Pairing).
const (
	GreedyPairing    = core.GreedyPairing
	ArbitraryPairing = core.ArbitraryPairing
)

// WorkerEstimate is one worker's error-rate interval from EvaluateWorkers.
type WorkerEstimate = core.WorkerEstimate

// EvaluateWorkers estimates every worker's error rate with a confidence
// interval from binary responses, requiring no gold answers and no
// regularity (workers may attempt arbitrary subsets of tasks). This is the
// paper's Algorithm A2.
func EvaluateWorkers(ds *Dataset, opts Options) ([]WorkerEstimate, error) {
	return core.EvaluateWorkers(ds, opts)
}

// EvaluateTriple estimates the error rates of exactly three workers with
// confidence intervals (the paper's Algorithm A1, extended to non-regular
// data). For more than three workers use EvaluateWorkers.
func EvaluateTriple(ds *Dataset, workers [3]int, confidence float64) ([3]Interval, error) {
	return core.ThreeWorkerBinary(ds, workers, confidence)
}

// KAryOptions configures EstimateResponseMatrices.
type KAryOptions = core.KAryOptions

// ResponseMatrixEstimate holds per-worker response-probability matrices
// with confidence intervals.
type ResponseMatrixEstimate = core.KAryEstimate

// EstimateResponseMatrices estimates, for an ordered triple of workers on
// k-ary tasks, each worker's k×k response-probability matrix — entry
// (j1, j2) is the probability of answering j2 when the truth is j1 — with a
// confidence interval per entry, plus the prior over true answers. This is
// the paper's Algorithm A3; it captures per-answer bias that scalar error
// rates cannot. Set KAryOptions.Parallel to fan the numeric-differentiation
// inner loop out over all CPUs (results are identical to the serial run).
func EstimateResponseMatrices(ds *Dataset, workers [3]int, opts KAryOptions) (*ResponseMatrixEstimate, error) {
	return core.ThreeWorkerKAry(ds, workers, opts)
}

// PruneSpammers removes workers whose disagreement with the majority vote
// exceeds threshold (≤0 selects the paper's 0.4), returning the pruned
// dataset and the kept workers' original indices. The paper shows this
// preprocessing markedly improves interval accuracy on spammer-rich crowds.
func PruneSpammers(ds *Dataset, threshold float64) (*Dataset, []int, error) {
	return core.PruneSpammers(ds, threshold)
}

// MajorityVote returns the plurality answer per task — the baseline
// aggregation, also used internally by PruneSpammers.
func MajorityVote(ds *Dataset) []Response {
	return ds.MajorityVote()
}

// DawidSkene is the classical EM point estimator [Dawid & Skene 1979],
// provided as a baseline: it yields no confidence intervals and converges
// only to a local optimum.
type DawidSkene = baseline.DawidSkene

// DawidSkeneResult holds the EM estimates.
type DawidSkeneResult = baseline.DawidSkeneResult

// OldTechnique is the authors' previous method [KDD 2013], which requires
// regular data and produces conservative intervals; it is the Fig. 1
// comparison baseline.
type OldTechnique = baseline.OldTechnique

// Simulation entry points, for experimentation and testing.
type (
	// BinarySim generates synthetic binary crowds (Section III workloads).
	BinarySim = sim.Binary
	// KArySim generates synthetic k-ary crowds (Section IV workloads).
	KArySim = sim.KAry
	// Confusion is a k×k worker response-probability matrix for KArySim.
	Confusion = sim.Confusion
)

// NewSimSource returns a deterministic random source for the simulators.
func NewSimSource(seed int64) *randx.Source { return randx.NewSource(seed) }

// PaperConfusionMatrices returns the worker matrices the paper uses for
// arity k ∈ {2, 3, 4} (Section IV-B), or nil otherwise.
func PaperConfusionMatrices(k int) []Confusion { return sim.PaperMatrices(k) }

// Experiment reproduction: RunExperiment regenerates one of the paper's
// figures by name ("fig1" … "fig5c"); ExperimentNames lists them.
type (
	// ExperimentParams configures a reproduction run.
	ExperimentParams = eval.Params
	// ExperimentResult is the regenerated figure data.
	ExperimentResult = eval.Result
)

// RunExperiment regenerates a paper figure's data series. Set
// ExperimentParams.Parallel to spread replicates over all CPUs; replicate
// seeding and merge order are unchanged, so the result is byte-identical
// to a serial run at the same seed.
func RunExperiment(name string, p ExperimentParams) (*ExperimentResult, error) {
	return eval.Run(name, p)
}

// ExperimentNames lists the reproducible experiments in paper order.
func ExperimentNames() []string { return eval.Experiments() }

// Streaming evaluation — the incremental form of EvaluateWorkers the
// paper's conclusion describes: responses are added one at a time and
// intervals are recomputed on demand without rescanning past responses.
type Incremental = core.Incremental

// NewIncremental returns an empty streaming evaluator for a fixed pool of
// binary workers. Add is single-goroutine; for concurrent ingestion use
// NewShardedIncremental.
func NewIncremental(workers int) (*Incremental, error) {
	return core.NewIncremental(workers)
}

// ShardedIncremental is the concurrent streaming evaluator: ingestion is
// hash-partitioned into task-stripe shards so Add is safe — and scales —
// across goroutines, while intervals stay bit-identical to Incremental on
// the same responses.
type ShardedIncremental = core.ShardedIncremental

// NewShardedIncremental returns an empty concurrent streaming evaluator
// with the given number of task-stripe shards (a shard count around
// GOMAXPROCS is a good default; see the README's Streaming section).
func NewShardedIncremental(workers, shards int) (*ShardedIncremental, error) {
	return core.NewShardedIncremental(workers, shards)
}

// StreamingEvaluator is the interface both streaming evaluators satisfy;
// code that only ingests and evaluates can hold this and let the
// constructor choose the sharding.
type StreamingEvaluator = core.StreamingEvaluator

// IncrementalOptions configures NewStreamingEvaluator; the zero value
// selects the single-shard evaluator.
type IncrementalOptions = core.IncrementalOptions

// NewStreamingEvaluator returns a streaming evaluator sharded per opts:
// Shards ≤ 1 gives the single-shard Incremental, anything higher the
// concurrent ShardedIncremental.
func NewStreamingEvaluator(workers int, opts IncrementalOptions) (StreamingEvaluator, error) {
	return core.NewStreaming(workers, opts)
}

// Distributed evaluation — the streaming evaluator spanned across
// processes and machines. Worker nodes (the crowdd daemon, or in-process
// workers) each ingest a disjoint slice of the task space into their own
// sharded evaluator; the coordinator pulls per-node statistics over a
// versioned binary wire protocol, merges them with the exact integer
// reducer the sharded evaluator uses locally, and evaluates once — so
// distributed intervals are bit-identical to a single-process evaluator
// fed every response.
type (
	// DistributedEvaluator coordinates a cluster of worker nodes.
	DistributedEvaluator = dist.Coordinator
	// DistWorker is one in-process worker node (the library form of the
	// crowdd daemon).
	DistWorker = dist.Worker
	// DistWorkerOptions configures a worker node.
	DistWorkerOptions = dist.WorkerOptions
	// DistConn is one framed coordinator↔worker connection.
	DistConn = dist.Conn
	// DistResponse is one crowd submission routed through a coordinator.
	DistResponse = dist.Response
	// DistSnapshot is one node's checkpoint: statistics plus the response
	// log behind them, restorable byte-identically.
	DistSnapshot = dist.Snapshot
	// ClusterEvaluator adapts a coordinator to the streaming-evaluator
	// interface (buffered Add, merged evaluation).
	ClusterEvaluator = dist.ClusterEvaluator
)

// Replica-failure sentinels: a slice with no live replica left, and
// replicas of one slice disagreeing on their statistics.
var (
	ErrNoReplica  = dist.ErrNoReplica
	ErrDivergence = dist.ErrDivergence
)

// NewDistributedEvaluator connects to crowdd worker daemons at the given
// TCP addresses and handshakes them into a cluster over a crowd of the
// given size. Ingestion routes every task to exactly one node;
// EvaluateAll pulls, merges and solves — bit-identical to NewIncremental
// fed the same responses.
func NewDistributedEvaluator(workers int, addrs []string) (*DistributedEvaluator, error) {
	conns := make([]*dist.Conn, 0, len(addrs))
	for _, addr := range addrs {
		conn, err := dist.DialTCP(addr)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, err
		}
		conns = append(conns, conn)
	}
	return dist.NewCoordinator(workers, conns)
}

// NewInProcessCluster spins up the given number of worker nodes inside
// this process — the same protocol over an in-process transport — and
// returns their coordinator. It exercises the full distributed path
// (framing, codec, merge) without sockets; tests, examples and
// single-machine deployments use it. Closing the coordinator closes the
// connections; the workers themselves are garbage once disconnected.
func NewInProcessCluster(workers, nodes, shardsPerNode int) (*DistributedEvaluator, error) {
	conns := make([]*dist.Conn, nodes)
	for i := range conns {
		w, err := dist.NewWorker(dist.WorkerOptions{Workers: workers, Shards: shardsPerNode})
		if err != nil {
			return nil, err
		}
		if conns[i], err = w.SelfConn(); err != nil {
			return nil, err
		}
	}
	return dist.NewCoordinator(workers, conns)
}

// NewDistWorker returns an in-process worker node, for callers that embed
// the crowdd role into their own daemon (serve it with Serve, or connect
// locally with SelfConn).
func NewDistWorker(opts DistWorkerOptions) (*DistWorker, error) {
	return dist.NewWorker(opts)
}

// DialDistWorker opens a framed connection to a crowdd daemon, for
// assembling a coordinator from a mix of transports with
// NewDistributedCluster-style plumbing.
func DialDistWorker(addr string) (*DistConn, error) {
	return dist.DialTCP(addr)
}

// NewDistributedCluster builds a coordinator over already-open worker
// connections (TCP, in-process, or mixed). The coordinator takes
// ownership of the connections.
func NewDistributedCluster(workers int, conns []*DistConn) (*DistributedEvaluator, error) {
	return dist.NewCoordinator(workers, conns)
}

// NewReplicatedCluster builds a fault-tolerant coordinator: groups[i] is
// the replica set jointly owning task slice i. Every batch fans out to all
// live replicas of its slice and statistics pulls are validated across
// them, so a node can die — and be replaced with RestoreNode — without
// the slice losing a response. The coordinator takes ownership of all
// connections.
func NewReplicatedCluster(workers int, groups [][]*DistConn) (*DistributedEvaluator, error) {
	return dist.NewReplicatedCoordinator(workers, groups)
}

// NewClusterEvaluator adapts a cluster coordinator to the streaming
// evaluator interface: buffered batched Add, evaluation via pull + exact
// merge. batch ≤ 0 selects the default buffer size.
func NewClusterEvaluator(coord *DistributedEvaluator, batch int) *ClusterEvaluator {
	return dist.NewClusterEvaluator(coord, batch)
}

// WriteDistSnapshot atomically persists a node checkpoint (temp file +
// rename; a crash never truncates an existing checkpoint).
func WriteDistSnapshot(path string, s *DistSnapshot) error {
	return dist.WriteSnapshot(path, s)
}

// ReadDistSnapshot loads and validates a checkpoint file (magic, version,
// checksum, statistics/log consistency).
func ReadDistSnapshot(path string) (*DistSnapshot, error) {
	return dist.ReadSnapshot(path)
}

// Self-healing clusters — every RPC deadline-bounded with classified
// retry/backoff, a heartbeat failure detector publishing a membership
// view, automatic re-seeding of dead replicas, and degraded (stale-read)
// service when a slice loses everyone. The fault-injection transport is
// exported too, so deployments can chaos-test their own topologies.
type (
	// DistPolicy bounds and classifies cluster RPCs: dial/RPC/state
	// timeouts, retry count, jittered exponential backoff, strict-read
	// mode.
	DistPolicy = dist.Policy
	// DistReplicaSpec is one replica slot: its open connection plus an
	// optional dialer used by retries and the monitor's auto-reseed.
	DistReplicaSpec = dist.ReplicaSpec
	// ClusterMonitorOptions tunes the heartbeat failure detector and
	// auto-reseed loop.
	ClusterMonitorOptions = dist.MonitorOptions
	// ClusterMonitor is a running failure detector (see StartMonitor on
	// the coordinator).
	ClusterMonitor = dist.Monitor
	// ClusterEvent is one liveness/recovery transition the monitor
	// observed.
	ClusterEvent = dist.Event
	// ReplicaHealth is one replica's row of the Membership() view.
	ReplicaHealth = dist.ReplicaHealth
	// FaultConn wraps a connection with deterministic write-side fault
	// injection (delays, mid-frame hangs, resets, partitions).
	FaultConn = dist.FaultConn
	// Chaos orchestrates seeded fault strikes across a set of FaultConns
	// and records a replayable event log.
	Chaos = dist.Chaos
)

// DefaultDistPolicy returns the cluster RPC policy deployments start
// from: bounded dials and RPCs, two retries with jittered exponential
// backoff, degraded reads enabled.
func DefaultDistPolicy() DistPolicy { return dist.DefaultPolicy() }

// NewSelfHealingCluster builds a replicated coordinator whose slots carry
// dialers, so retries can reconnect and the heartbeat monitor (start it
// with StartMonitor) can re-seed replacements at dead replicas'
// addresses. groups[i] is the replica set owning task slice i.
func NewSelfHealingCluster(workers int, groups [][]DistReplicaSpec, policy DistPolicy) (*DistributedEvaluator, error) {
	return dist.NewCluster(workers, groups, policy)
}

// NewFaultConn wraps a connection for deterministic fault injection.
func NewFaultConn(inner net.Conn) *FaultConn { return dist.NewFaultConn(inner) }

// NewChaos returns a seeded chaos orchestrator; the same seed over the
// same connection set replays the same strike schedule.
func NewChaos(seed uint64) *Chaos { return dist.NewChaos(seed) }

// Distributed replicate sweeps: experiment replicates partitioned across
// worker nodes with unchanged per-replicate seeding, so a cluster returns
// byte-identical results to a local run.
type (
	// SweepSpec describes a replicate sweep over a synthetic workload.
	SweepSpec = eval.SweepSpec
)

// Sweep kernels for SweepSpec.Kernel.
const (
	SweepWidth    = eval.SweepWidth
	SweepCoverage = eval.SweepCoverage
)

// RunSweep runs a replicate sweep locally. DistributedEvaluator.RunSweep
// partitions the same sweep across a cluster and returns a byte-identical
// Result.
func RunSweep(spec SweepSpec, parallel bool) (*ExperimentResult, error) {
	return eval.RunSweep(spec, parallel)
}

// Panel evaluation extends the k-ary estimator beyond three workers by
// aggregating triple estimates per worker (inverse-variance combination).
type (
	// KAryPanelOptions configures EvaluateWorkersKAry.
	KAryPanelOptions = core.KAryPanelOptions
	// KAryWorkerEstimate is one worker's combined panel estimate.
	KAryWorkerEstimate = core.KAryWorkerEstimate
)

// EvaluateWorkersKAry estimates every worker's k×k response-probability
// matrix, with intervals, on crowds of any size.
func EvaluateWorkersKAry(ds *Dataset, opts KAryPanelOptions) ([]KAryWorkerEstimate, error) {
	return core.EvaluateWorkersKAry(ds, opts)
}

// Answer aggregation: infer task answers, weighting workers by estimated
// quality.
type Answer = aggregate.Answer

// MajorityAnswers returns the plurality answer per task.
func MajorityAnswers(ds *Dataset) []Answer { return aggregate.Majority(ds) }

// WeightedBinaryAnswers aggregates binary responses with per-worker error
// rates via optimal log-odds voting.
func WeightedBinaryAnswers(ds *Dataset, errorRates []float64) ([]Answer, error) {
	return aggregate.WeightedBinary(ds, errorRates)
}

// WeightedKAryAnswers aggregates k-ary responses with full worker
// response-probability matrices and an optional class prior (nil = uniform).
func WeightedKAryAnswers(ds *Dataset, matrices [][][]float64, prior []float64) ([]Answer, error) {
	return aggregate.WeightedKAry(ds, matrices, prior)
}

// AnswerAccuracy scores inferred answers against the dataset's gold labels,
// returning the fraction correct and the number of scored tasks.
func AnswerAccuracy(ds *Dataset, answers []Answer) (float64, int) {
	return aggregate.Accuracy(ds, answers)
}

// Worker-pool management: the paper's motivating application, with
// interval-driven hire/fire/promote decisions over streaming responses.
type (
	// Pool tracks a worker pool through its lifecycle.
	Pool = pool.Manager
	// PoolPolicy sets the pool's decision bars.
	PoolPolicy = pool.Policy
	// PoolDecision reports one Review outcome.
	PoolDecision = pool.Decision
	// PoolState is a worker's lifecycle state.
	PoolState = pool.State
	// PoolAction is a Review state transition.
	PoolAction = pool.Action
)

// Pool lifecycle states.
const (
	Probation = pool.Probation
	Active    = pool.Active
	Fired     = pool.Fired
)

// Pool review actions.
const (
	NoChange = pool.NoChange
	Promote  = pool.Promote
	Fire     = pool.Fire
)

// NewPool creates a worker pool with the given policy; DefaultPoolPolicy
// mirrors the thresholds used across the paper's scenarios.
func NewPool(workers int, policy PoolPolicy) (*Pool, error) {
	return pool.NewManager(workers, policy)
}

// NewShardedPool creates a worker pool over the sharded streaming
// evaluator: Record is safe from any number of goroutines and decisions
// are identical to NewPool's on the same responses.
func NewShardedPool(workers, shards int, policy PoolPolicy) (*Pool, error) {
	return pool.NewShardedManager(workers, shards, policy)
}

// NewDistributedPool creates a worker pool whose statistics live on a
// cluster: Record buffers responses into batched ingest fan-outs and
// Review pulls every node's statistics through the exact integer merge, so
// review and exclusion decisions are bit-identical to NewShardedPool fed
// the same responses — the pool-management layer runs against a cluster
// unchanged. batch ≤ 0 selects the default Record buffer size; remote
// rejections (duplicates) surface at the flush that carries them.
func NewDistributedPool(coord *DistributedEvaluator, batch int, policy PoolPolicy) (*Pool, error) {
	return pool.NewManagerWith(dist.NewClusterEvaluator(coord, batch), policy)
}

// DefaultPoolPolicy returns the default decision bars.
func DefaultPoolPolicy() PoolPolicy { return pool.DefaultPolicy() }

// PoolWorkerInfo is one worker's full quality record (state, response
// count, current interval) as Pool.WorkerInfo returns it — the read
// behind the gateway's GET /v1/workers/{id}.
type PoolWorkerInfo = pool.WorkerInfo

// Serving layer — the multi-tenant HTTP gateway (the library form of the
// crowdgate binary): a versioned /v1 JSON API over per-tenant worker
// pools with bearer-token auth, token-bucket rate limiting and
// admission-control backpressure. See docs/api.md for the wire contract
// and the client package for the typed Go client.
type (
	// Gateway is the /v1 API handler; mount it on any http.Server.
	Gateway = gate.Gateway
	// GatewayOptions configures NewGateway.
	GatewayOptions = gate.Options
	// GatewayTenant declares one isolated tenant namespace.
	GatewayTenant = gate.TenantConfig
)

// NewGateway builds a multi-tenant serving gateway. Each tenant gets an
// isolated pool — local by default, cluster-backed when the tenant
// config carries a pre-built Manager — so no route can reach another
// tenant's statistics.
func NewGateway(opts GatewayOptions) (*Gateway, error) { return gate.New(opts) }

// Gold-standard evaluation — the classical technique the paper's
// introduction contrasts against, for deployments that do have some expert
// labels.
type (
	// GoldEstimate is one worker's gold-standard evaluation.
	GoldEstimate = core.GoldEstimate
	// GoldMethod selects the binomial interval construction.
	GoldMethod = core.GoldMethod
)

// Gold-standard interval constructions.
const (
	GoldExact  = core.GoldExact  // Clopper–Pearson, guaranteed coverage
	GoldWilson = core.GoldWilson // Wilson score, tighter approximation
	GoldWald   = core.GoldWald   // plain normal approximation
)

// GoldStandardIntervals scores every worker against the dataset's gold
// answers (any arity), returning a c-confidence interval per error rate.
func GoldStandardIntervals(ds *Dataset, c float64, method GoldMethod) ([]GoldEstimate, error) {
	return core.GoldStandardIntervals(ds, c, method)
}
