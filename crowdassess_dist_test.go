package crowdassess_test

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"crowdassess"
)

// TestDistributedEvaluatorExact drives the distributed path end to end
// through the public API: an in-process cluster ingests a crowd
// concurrently and its intervals are bit-identical to the single-process
// streaming evaluator's.
func TestDistributedEvaluatorExact(t *testing.T) {
	const workers, tasks = 7, 200
	ds, _ := buildCrowd(t, 31, workers, tasks, 0.8)

	coord, err := crowdassess.NewInProcessCluster(workers, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	local, err := crowdassess.NewIncremental(workers)
	if err != nil {
		t.Fatal(err)
	}

	// Each crowd worker submits from its own goroutine, batched.
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var batch []crowdassess.DistResponse
			for task := 0; task < tasks; task++ {
				if ds.Attempted(w, task) {
					batch = append(batch, crowdassess.DistResponse{Worker: w, Task: task, Answer: ds.Response(w, task)})
				}
			}
			errs[w] = coord.Ingest(batch)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < workers; w++ {
		for task := 0; task < tasks; task++ {
			if ds.Attempted(w, task) {
				if err := local.Add(w, task, ds.Response(w, task)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	opts := crowdassess.Options{Confidence: 0.9}
	want, err := local.EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d estimates, want %d", len(got), len(want))
	}
	for i := range want {
		if (got[i].Err == nil) != (want[i].Err == nil) {
			t.Fatalf("worker %d error mismatch: %v vs %v", i, got[i].Err, want[i].Err)
		}
		if got[i].Err != nil {
			continue
		}
		if math.Float64bits(got[i].Interval.Lo) != math.Float64bits(want[i].Interval.Lo) ||
			math.Float64bits(got[i].Interval.Hi) != math.Float64bits(want[i].Interval.Hi) {
			t.Fatalf("worker %d: distributed interval [%v, %v] differs from local [%v, %v]",
				i, got[i].Interval.Lo, got[i].Interval.Hi, want[i].Interval.Lo, want[i].Interval.Hi)
		}
	}
}

// TestDistributedSweepFacade: the public sweep entry points agree between
// local and distributed runs.
func TestDistributedSweepFacade(t *testing.T) {
	spec := crowdassess.SweepSpec{Kernel: crowdassess.SweepWidth, Workers: 5, Tasks: 50, Replicates: 6, Seed: 3}
	want, err := crowdassess.RunSweep(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := crowdassess.NewInProcessCluster(5, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	got, err := coord.RunSweep(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("distributed sweep differs from local:\n got %+v\nwant %+v", got, want)
	}
}
