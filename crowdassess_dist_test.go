package crowdassess_test

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"crowdassess"
)

// TestDistributedEvaluatorExact drives the distributed path end to end
// through the public API: an in-process cluster ingests a crowd
// concurrently and its intervals are bit-identical to the single-process
// streaming evaluator's.
func TestDistributedEvaluatorExact(t *testing.T) {
	const workers, tasks = 7, 200
	ds, _ := buildCrowd(t, 31, workers, tasks, 0.8)

	coord, err := crowdassess.NewInProcessCluster(workers, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	local, err := crowdassess.NewIncremental(workers)
	if err != nil {
		t.Fatal(err)
	}

	// Each crowd worker submits from its own goroutine, batched.
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var batch []crowdassess.DistResponse
			for task := 0; task < tasks; task++ {
				if ds.Attempted(w, task) {
					batch = append(batch, crowdassess.DistResponse{Worker: w, Task: task, Answer: ds.Response(w, task)})
				}
			}
			errs[w] = coord.Ingest(batch)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < workers; w++ {
		for task := 0; task < tasks; task++ {
			if ds.Attempted(w, task) {
				if err := local.Add(w, task, ds.Response(w, task)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	opts := crowdassess.Options{Confidence: 0.9}
	want, err := local.EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d estimates, want %d", len(got), len(want))
	}
	for i := range want {
		if (got[i].Err == nil) != (want[i].Err == nil) {
			t.Fatalf("worker %d error mismatch: %v vs %v", i, got[i].Err, want[i].Err)
		}
		if got[i].Err != nil {
			continue
		}
		if math.Float64bits(got[i].Interval.Lo) != math.Float64bits(want[i].Interval.Lo) ||
			math.Float64bits(got[i].Interval.Hi) != math.Float64bits(want[i].Interval.Hi) {
			t.Fatalf("worker %d: distributed interval [%v, %v] differs from local [%v, %v]",
				i, got[i].Interval.Lo, got[i].Interval.Hi, want[i].Interval.Lo, want[i].Interval.Hi)
		}
	}
}

// TestDistributedSweepFacade: the public sweep entry points agree between
// local and distributed runs.
func TestDistributedSweepFacade(t *testing.T) {
	spec := crowdassess.SweepSpec{Kernel: crowdassess.SweepWidth, Workers: 5, Tasks: 50, Replicates: 6, Seed: 3}
	want, err := crowdassess.RunSweep(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := crowdassess.NewInProcessCluster(5, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	got, err := coord.RunSweep(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("distributed sweep differs from local:\n got %+v\nwant %+v", got, want)
	}
}

// TestDistributedPoolFacade runs the pool lifecycle end to end through the
// public API against a replicated in-process cluster, with a mid-stream
// node replacement: decisions must match the local sharded pool exactly.
func TestDistributedPoolFacade(t *testing.T) {
	const workers, tasks = 7, 220
	ds, _ := buildCrowd(t, 47, workers, tasks, 0.75)
	policy := crowdassess.DefaultPoolPolicy()

	// Two slices, two replicas each.
	grid := make([][]*crowdassess.DistWorker, 2)
	groups := make([][]*crowdassess.DistConn, 2)
	for si := range groups {
		grid[si] = make([]*crowdassess.DistWorker, 2)
		groups[si] = make([]*crowdassess.DistConn, 2)
		for ri := range groups[si] {
			w, err := crowdassess.NewDistWorker(crowdassess.DistWorkerOptions{Workers: workers, Shards: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			grid[si][ri] = w
			if groups[si][ri], err = w.SelfConn(); err != nil {
				t.Fatal(err)
			}
		}
	}
	coord, err := crowdassess.NewReplicatedCluster(workers, groups)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	clusterPool, err := crowdassess.NewDistributedPool(coord, 16, policy)
	if err != nil {
		t.Fatal(err)
	}
	localPool, err := crowdassess.NewShardedPool(workers, 3, policy)
	if err != nil {
		t.Fatal(err)
	}

	record := func(from, to int) {
		t.Helper()
		for task := from; task < to; task++ {
			for w := 0; w < workers; w++ {
				if !ds.Attempted(w, task) {
					continue
				}
				errL := localPool.Record(w, task, ds.Response(w, task))
				errC := clusterPool.Record(w, task, ds.Response(w, task))
				if (errL == nil) != (errC == nil) {
					t.Fatalf("task %d worker %d: record %v locally vs %v on cluster", task, w, errL, errC)
				}
			}
		}
	}

	record(0, tasks/2)
	// Kill one replica and seed a replacement from its survivor, mid-pool.
	if err := grid[0][0].Close(); err != nil {
		t.Fatal(err)
	}
	replacement, err := crowdassess.NewDistWorker(crowdassess.DistWorkerOptions{Workers: workers, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer replacement.Close()
	conn, err := replacement.SelfConn()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.RestoreNode(0, conn, nil); err != nil {
		t.Fatal(err)
	}
	record(tasks/2, tasks)

	wantDecisions, err := localPool.Review()
	if err != nil {
		t.Fatal(err)
	}
	gotDecisions, err := clusterPool.Review()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotDecisions, wantDecisions) {
		t.Fatalf("cluster pool decisions differ:\n got %+v\nwant %+v", gotDecisions, wantDecisions)
	}
	for w := 0; w < workers; w++ {
		if localPool.State(w) != clusterPool.State(w) {
			t.Fatalf("worker %d: state %v on cluster vs %v locally", w, clusterPool.State(w), localPool.State(w))
		}
	}
}
