// Peergrading: k-ary evaluation of biased graders, MOOC-style.
//
// Binary error rates cannot express "this grader inflates everything by one
// notch". The k-ary estimator recovers each grader's full response
// probability matrix — P(assigned grade | deserved grade) — with confidence
// intervals, from peer grades alone.
//
// Run with: go run ./examples/peergrading
package main

import (
	"fmt"
	"log"

	"crowdassess"
)

func main() {
	// Three graders on 1200 assignments graded low/medium/high (arity 3).
	// Grader 0 is accurate; grader 1 inflates (systematically pushes grades
	// up); grader 2 is accurate but sloppy.
	accurate := crowdassess.Confusion{
		{0.85, 0.10, 0.05},
		{0.08, 0.84, 0.08},
		{0.05, 0.10, 0.85},
	}
	inflater := crowdassess.Confusion{
		{0.55, 0.40, 0.05}, // low work often graded medium
		{0.02, 0.58, 0.40}, // medium work often graded high
		{0.02, 0.08, 0.90},
	}
	sloppy := crowdassess.Confusion{
		{0.70, 0.20, 0.10},
		{0.15, 0.70, 0.15},
		{0.10, 0.20, 0.70},
	}
	src := crowdassess.NewSimSource(23)
	ds, _, err := crowdassess.KArySim{
		Tasks:       1200,
		Workers:     3,
		Confusions:  []crowdassess.Confusion{accurate, inflater, sloppy},
		Selectivity: []float64{0.3, 0.45, 0.25}, // most work is medium
	}.Generate(src)
	if err != nil {
		log.Fatal(err)
	}

	est, err := crowdassess.EstimateResponseMatrices(ds, [3]int{0, 1, 2},
		crowdassess.KAryOptions{Confidence: 0.90})
	if err != nil {
		log.Fatal(err)
	}

	grades := []string{"low", "med", "high"}
	names := []string{"accurate", "inflater", "sloppy"}
	for w := 0; w < 3; w++ {
		fmt.Printf("grader %d (%s): estimated P(assigned | deserved), 90%% CIs\n", w, names[w])
		for a := 0; a < 3; a++ {
			fmt.Printf("  deserved %-4s:", grades[a])
			for b := 0; b < 3; b++ {
				iv := est.Intervals[w][a][b]
				fmt.Printf("  %s %.2f [%.2f,%.2f]", grades[b], est.Prob[w].At(a, b), iv.Lo, iv.Hi)
			}
			fmt.Println()
		}
	}

	// Detect inflation with statistical confidence: a grader inflates when
	// the interval for P(higher grade | deserved) clears the honest-grader
	// benchmark entirely.
	fmt.Println("\ninflation check: P(assigned=high | deserved=med)")
	for w := 0; w < 3; w++ {
		iv := est.Intervals[w][1][2]
		verdict := "ok"
		if iv.Lo > 0.25 {
			verdict = "INFLATES (lower bound above 0.25)"
		}
		fmt.Printf("  grader %d: [%.2f, %.2f] → %s\n", w, iv.Lo, iv.Hi, verdict)
	}

	fmt.Printf("\nestimated grade distribution: low %.2f, med %.2f, high %.2f\n",
		est.Selectivity[0], est.Selectivity[1], est.Selectivity[2])
}
