// Streaming: evaluate workers continuously as responses arrive, using the
// sharded concurrent evaluator and the pool manager. Responses for each
// batch are ingested from one goroutine per worker — the shape of a real
// labelling service, where submissions arrive over many connections at
// once — and intervals tighten with every batch; pool decisions fire as
// soon as the evidence clears a bar, not at the end of the job.
//
// Because the sharded evaluator's intervals are bit-identical to the
// single-shard one's on the same responses, and every batch is fully
// ingested before its review, this prints the same decisions a serial
// deployment would.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"sync"

	"crowdassess"
)

func main() {
	// Simulate a labelling job that arrives in batches of 40 tasks. Worker
	// 4 is an obvious spammer; worker 3 is borderline-bad.
	trueRates := []float64{0.08, 0.15, 0.12, 0.38, 0.50}
	src := crowdassess.NewSimSource(17)
	ds, _, err := crowdassess.BinarySim{
		Tasks:      400,
		Workers:    5,
		ErrorRates: trueRates,
	}.Generate(src)
	if err != nil {
		log.Fatal(err)
	}

	policy := crowdassess.DefaultPoolPolicy()
	// 4 task-stripe shards: concurrent Record calls only contend when
	// their tasks hash to the same stripe.
	p, err := crowdassess.NewShardedPool(5, 4, policy)
	if err != nil {
		log.Fatal(err)
	}

	const batch = 40
	for start := 0; start < ds.Tasks(); start += batch {
		end := start + batch
		// Each worker submits its batch from its own goroutine, as if over
		// its own connection.
		var wg sync.WaitGroup
		for w := 0; w < 5; w++ {
			if p.State(w) == crowdassess.Fired {
				continue // fired workers receive no more tasks
			}
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for task := start; task < end; task++ {
					if err := p.Record(w, task, ds.Response(w, task)); err != nil {
						log.Fatal(err)
					}
				}
			}(w)
		}
		wg.Wait()
		decisions, err := p.Review()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("after %3d tasks:\n", end)
		for _, d := range decisions {
			if d.Action == crowdassess.NoChange {
				continue
			}
			fmt.Printf("  worker %d → %s (%s)\n", d.Worker, d.Action, d.Reason)
		}
		ests, err := p.Estimates()
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range ests {
			if e.Err == nil {
				fmt.Printf("  w%d [%0.3f, %0.3f]", e.Worker, e.Interval.Lo, e.Interval.Hi)
			}
		}
		fmt.Println()
	}

	fmt.Println("\nfinal states:")
	for w := 0; w < 5; w++ {
		fmt.Printf("  worker %d: %-10s (true error rate %.2f)\n", w, p.State(w), trueRates[w])
	}
}
