// Streaming: evaluate workers continuously as responses arrive, using the
// incremental evaluator and the pool manager. Intervals tighten with every
// batch of tasks; pool decisions fire as soon as the evidence clears a bar,
// not at the end of the job.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"crowdassess"
)

func main() {
	// Simulate a labelling job that arrives in batches of 40 tasks. Worker
	// 4 is an obvious spammer; worker 3 is borderline-bad.
	trueRates := []float64{0.08, 0.15, 0.12, 0.38, 0.50}
	src := crowdassess.NewSimSource(17)
	ds, _, err := crowdassess.BinarySim{
		Tasks:      400,
		Workers:    5,
		ErrorRates: trueRates,
	}.Generate(src)
	if err != nil {
		log.Fatal(err)
	}

	policy := crowdassess.DefaultPoolPolicy()
	p, err := crowdassess.NewPool(5, policy)
	if err != nil {
		log.Fatal(err)
	}

	const batch = 40
	for start := 0; start < ds.Tasks(); start += batch {
		end := start + batch
		for task := start; task < end; task++ {
			for w := 0; w < 5; w++ {
				if p.State(w) == crowdassess.Fired {
					continue // fired workers receive no more tasks
				}
				if err := p.Record(w, task, ds.Response(w, task)); err != nil {
					log.Fatal(err)
				}
			}
		}
		decisions, err := p.Review()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("after %3d tasks:\n", end)
		for _, d := range decisions {
			if d.Action == crowdassess.NoChange {
				continue
			}
			fmt.Printf("  worker %d → %s (%s)\n", d.Worker, d.Action, d.Reason)
		}
		ests, err := p.Estimates()
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range ests {
			if e.Err == nil {
				fmt.Printf("  w%d [%0.3f, %0.3f]", e.Worker, e.Interval.Lo, e.Interval.Hi)
			}
		}
		fmt.Println()
	}

	fmt.Println("\nfinal states:")
	for w := 0; w < 5; w++ {
		fmt.Printf("  worker %d: %-10s (true error rate %.2f)\n", w, p.State(w), trueRates[w])
	}
}
