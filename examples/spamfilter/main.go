// Spamfilter: the paper's Fig. 3 → Fig. 4 pipeline on a sparse, spammer-rich
// crowd (emulating the RTE dataset shape): prune obvious spammers with the
// majority-vote screen, then compute reliable intervals for the rest.
//
// Run with: go run ./examples/spamfilter
package main

import (
	"fmt"
	"log"

	"crowdassess"
)

func main() {
	// A sparse labelling crowd: 40 workers, 500 tasks, heavy-tailed
	// participation, and a 20% spammer fraction (error rate ≈ 0.5).
	trueRates := make([]float64, 40)
	densities := make([]float64, 40)
	src := crowdassess.NewSimSource(31)
	for i := range trueRates {
		if i%5 == 4 {
			trueRates[i] = 0.45 + 0.05*src.Float64() // spammer
		} else {
			trueRates[i] = 0.05 + 0.25*src.Float64()
		}
		u := src.Float64()
		densities[i] = 0.1 + 0.6*u*u
	}
	ds, _, err := crowdassess.BinarySim{
		Tasks:      500,
		Workers:    40,
		ErrorRates: trueRates,
		Densities:  densities,
	}.Generate(src)
	if err != nil {
		log.Fatal(err)
	}

	// Without pruning, spammer agreement rates sit near ½ where the
	// estimator is volatile (the f singularity the paper discusses).
	before, err := crowdassess.EvaluateWorkers(ds, crowdassess.Options{Confidence: 0.9})
	if err != nil {
		log.Fatal(err)
	}

	pruned, keep, err := crowdassess.PruneSpammers(ds, 0) // paper's 0.4 cutoff
	if err != nil {
		log.Fatal(err)
	}
	after, err := crowdassess.EvaluateWorkers(pruned, crowdassess.Options{Confidence: 0.9})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workers: %d before pruning, %d after (%d pruned)\n",
		ds.Workers(), pruned.Workers(), ds.Workers()-pruned.Workers())

	spammersPruned, goodPruned := 0, 0
	kept := make(map[int]bool, len(keep))
	for _, w := range keep {
		kept[w] = true
	}
	for w, rate := range trueRates {
		if !kept[w] {
			if rate >= 0.4 {
				spammersPruned++
			} else {
				goodPruned++
			}
		}
	}
	fmt.Printf("pruned %d true spammers and %d good workers\n", spammersPruned, goodPruned)

	// Interval accuracy before vs after, measured against the gold answers
	// the simulator kept (a real deployment would not have these — this is
	// the experiment's scoreboard, not part of the method).
	accuracy := func(ests []crowdassess.WorkerEstimate, d *crowdassess.Dataset, origIndex func(int) int) (hit, total int) {
		for _, e := range ests {
			if e.Err != nil {
				continue
			}
			rate, err := d.TrueErrorRate(e.Worker)
			if err != nil {
				continue
			}
			_ = origIndex
			total++
			if e.Interval.Contains(rate) {
				hit++
			}
		}
		return hit, total
	}
	bh, bt := accuracy(before, ds, func(i int) int { return i })
	ah, at := accuracy(after, pruned, func(i int) int { return keep[i] })
	fmt.Printf("90%% interval accuracy before pruning: %d/%d = %.2f\n", bh, bt, float64(bh)/float64(bt))
	fmt.Printf("90%% interval accuracy after  pruning: %d/%d = %.2f\n", ah, at, float64(ah)/float64(at))
}
