// Workerpool: manage a hiring/firing pipeline with confidence intervals.
//
// The paper's introduction motivates intervals with exactly this scenario:
// firing a worker on a noisy point estimate risks losing good workers (bad
// for marketplace reputation), while keeping obvious spammers wastes money.
// The pipeline below is the paper's own: screen out pure spammers with the
// majority-vote check first (their near-½ agreement rates sit on the
// estimator's singularity), then make fire/keep decisions for everyone else
// on interval endpoints rather than point estimates.
//
// Run with: go run ./examples/workerpool
package main

import (
	"fmt"
	"log"

	"crowdassess"
)

const (
	fireAbove = 0.30 // fire when the interval's LOWER end exceeds this
	keepBelow = 0.15 // fast-track when the interval's UPPER end is below this
)

func main() {
	// A pool of 12 workers with a realistic quality mix: most are decent,
	// two are bad, two are spammers. Each answers ~80% of 400 tasks.
	trueRates := []float64{
		0.08, 0.12, 0.10, 0.15, 0.22, 0.18,
		0.25, 0.11, 0.36, 0.42, 0.38, 0.50,
	}
	src := crowdassess.NewSimSource(11)
	ds, _, err := crowdassess.BinarySim{
		Tasks:      400,
		Workers:    len(trueRates),
		ErrorRates: trueRates,
		Density:    0.8,
	}.Generate(src)
	if err != nil {
		log.Fatal(err)
	}

	// Stage 1: the spammer screen (majority-vote disagreement > 0.4).
	pruned, keep, err := crowdassess.PruneSpammers(ds, 0)
	if err != nil {
		log.Fatal(err)
	}
	kept := make(map[int]bool, len(keep))
	for _, w := range keep {
		kept[w] = true
	}
	var fired []int
	for w := range trueRates {
		if !kept[w] {
			fired = append(fired, w)
		}
	}
	fmt.Printf("stage 1 — spammer screen fired %d workers: %v\n\n", len(fired), fired)

	// Stage 2: confidence intervals for the survivors.
	ests, err := crowdassess.EvaluateWorkers(pruned, crowdassess.Options{Confidence: 0.90})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("worker  interval          decision        true rate")
	var fastTracked, retested int
	for _, e := range ests {
		orig := keep[e.Worker] // index back into the full pool
		if e.Err != nil {
			fmt.Printf("  w%-2d   (no estimate)     keep & retest   %.2f\n", orig, trueRates[orig])
			retested++
			continue
		}
		iv := e.Interval
		var decision string
		switch {
		case iv.Lo > fireAbove:
			// Even the optimistic end of the interval is unacceptable.
			decision = "FIRE"
			fired = append(fired, orig)
		case iv.Hi < keepBelow:
			// Even the pessimistic end is excellent: fast-track this worker
			// to harder (better paid) tasks.
			decision = "fast-track"
			fastTracked++
		default:
			// The interval straddles the bar: give the worker more tasks
			// rather than risk firing someone who was merely unlucky.
			decision = "keep & retest"
			retested++
		}
		fmt.Printf("  w%-2d   [%.3f, %.3f]    %-14s  %.2f\n",
			orig, iv.Lo, iv.Hi, decision, trueRates[orig])
	}

	worstKept, bestFired := 0.0, 1.0
	for w, rate := range trueRates {
		isFired := false
		for _, f := range fired {
			if f == w {
				isFired = true
			}
		}
		if isFired && rate < bestFired {
			bestFired = rate
		}
		if !isFired && rate > worstKept {
			worstKept = rate
		}
	}
	fmt.Printf("\nfired %d, fast-tracked %d, retained for more data %d\n",
		len(fired), fastTracked, retested)
	fmt.Printf("best worker fired has true rate %.2f; worst worker kept has %.2f —\n", bestFired, worstKept)
	fmt.Println("interval-based decisions removed the bad workers without losing a good one.")
}
