// Distributed: span the streaming evaluator across worker nodes. Three
// in-process workers — the same protocol and wire codec a real crowdd
// cluster speaks over TCP — each ingest the task slice the coordinator
// routes to them; evaluation pulls every node's statistics export, merges
// the integer counters exactly, and solves once. The printed intervals
// are bit-identical to a single-process evaluator fed the same responses,
// which this example verifies at the end.
//
// A distributed replicate sweep runs last: the coordinator partitions the
// replicate indices across the nodes with unchanged per-replicate
// seeding, so the cluster's figure data matches a local run byte for
// byte.
//
// Run with: go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"crowdassess"
)

func main() {
	// A synthetic crowd: worker 4 is a spammer, the rest are decent.
	trueRates := []float64{0.05, 0.12, 0.18, 0.25, 0.48}
	const workers, tasks = 5, 300
	src := crowdassess.NewSimSource(23)
	ds, _, err := crowdassess.BinarySim{
		Tasks:      tasks,
		Workers:    workers,
		ErrorRates: trueRates,
	}.Generate(src)
	if err != nil {
		log.Fatal(err)
	}

	// A cluster of 3 worker nodes, 2 ingestion shards each. For real
	// deployments, start crowdd daemons and use
	// crowdassess.NewDistributedEvaluator(workers, addrs) instead — the
	// protocol is identical.
	coord, err := crowdassess.NewInProcessCluster(workers, 3, 2)
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()

	// Every crowd worker submits over its own connection, concurrently;
	// the coordinator routes each task's responses to its owning node.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var batch []crowdassess.DistResponse
			for task := 0; task < tasks; task++ {
				if ds.Attempted(w, task) {
					batch = append(batch, crowdassess.DistResponse{Worker: w, Task: task, Answer: ds.Response(w, task)})
				}
			}
			if err := coord.Ingest(batch); err != nil {
				log.Fatal(err)
			}
		}(w)
	}
	wg.Wait()

	total, err := coord.Responses()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster of %d nodes ingested %d responses\n\n", coord.Nodes(), total)

	// Evaluate on the coordinator: pull exports, merge, solve once.
	ests, err := coord.EvaluateAll(crowdassess.Options{Confidence: 0.9})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range ests {
		if e.Err != nil {
			fmt.Printf("worker %d: %v\n", e.Worker, e.Err)
			continue
		}
		fmt.Printf("worker %d: error rate in [%.3f, %.3f]  (true %.2f)\n",
			e.Worker, e.Interval.Lo, e.Interval.Hi, trueRates[e.Worker])
	}

	// The exactness contract: a single-process evaluator fed the same
	// responses produces bit-identical intervals.
	local, err := crowdassess.NewIncremental(workers)
	if err != nil {
		log.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		for task := 0; task < tasks; task++ {
			if ds.Attempted(w, task) {
				if err := local.Add(w, task, ds.Response(w, task)); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	localEsts, err := local.EvaluateAll(crowdassess.Options{Confidence: 0.9})
	if err != nil {
		log.Fatal(err)
	}
	exact := true
	for i := range ests {
		if (ests[i].Err == nil) != (localEsts[i].Err == nil) {
			exact = false
		} else if ests[i].Err == nil &&
			(math.Float64bits(ests[i].Interval.Lo) != math.Float64bits(localEsts[i].Interval.Lo) ||
				math.Float64bits(ests[i].Interval.Hi) != math.Float64bits(localEsts[i].Interval.Hi)) {
			exact = false
		}
	}
	fmt.Printf("\nbit-identical to single-process evaluation: %v\n", exact)

	// Distributed replicate sweep: the paper's interval-width protocol,
	// replicates partitioned across the cluster.
	spec := crowdassess.SweepSpec{Kernel: crowdassess.SweepWidth, Workers: 7, Tasks: 100, Replicates: 30, Seed: 1}
	res, err := coord.RunSweep(spec, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndistributed sweep %q over %d nodes (%d replicates):\n", res.Name, coord.Nodes(), spec.Replicates)
	for _, p := range res.Series[0].Points {
		if p.X == 0.5 || p.X == 0.9 {
			fmt.Printf("  mean interval size at confidence %.2f: %.3f\n", p.X, p.Y)
		}
	}
}
