// Distributed: span the streaming evaluator across worker nodes. Three
// in-process workers — the same protocol and wire codec a real crowdd
// cluster speaks over TCP — each ingest the task slice the coordinator
// routes to them; evaluation pulls every node's statistics export, merges
// the integer counters exactly, and solves once. The printed intervals
// are bit-identical to a single-process evaluator fed the same responses,
// which this example verifies.
//
// A distributed replicate sweep runs next: the coordinator partitions the
// replicate indices across the nodes with unchanged per-replicate
// seeding, so the cluster's figure data matches a local run byte for
// byte.
//
// The second half is the kill-and-restore walkthrough: a replicated
// cluster ingests half the stream, one replica is killed mid-ingest and a
// replacement is seeded from its survivor, a checkpoint file is written
// and reloaded, and the final estimates are verified bit-identical to an
// uninterrupted run — the fault-tolerance contract.
//
// Run with: go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"crowdassess"
)

func main() {
	// A synthetic crowd: worker 4 is a spammer, the rest are decent.
	trueRates := []float64{0.05, 0.12, 0.18, 0.25, 0.48}
	const workers, tasks = 5, 300
	src := crowdassess.NewSimSource(23)
	ds, _, err := crowdassess.BinarySim{
		Tasks:      tasks,
		Workers:    workers,
		ErrorRates: trueRates,
	}.Generate(src)
	if err != nil {
		log.Fatal(err)
	}

	// A cluster of 3 worker nodes, 2 ingestion shards each. For real
	// deployments, start crowdd daemons and use
	// crowdassess.NewDistributedEvaluator(workers, addrs) instead — the
	// protocol is identical.
	coord, err := crowdassess.NewInProcessCluster(workers, 3, 2)
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()

	// Every crowd worker submits over its own connection, concurrently;
	// the coordinator routes each task's responses to its owning node.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var batch []crowdassess.DistResponse
			for task := 0; task < tasks; task++ {
				if ds.Attempted(w, task) {
					batch = append(batch, crowdassess.DistResponse{Worker: w, Task: task, Answer: ds.Response(w, task)})
				}
			}
			if err := coord.Ingest(batch); err != nil {
				log.Fatal(err)
			}
		}(w)
	}
	wg.Wait()

	total, err := coord.Responses()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster of %d nodes ingested %d responses\n\n", coord.Nodes(), total)

	// Evaluate on the coordinator: pull exports, merge, solve once.
	ests, err := coord.EvaluateAll(crowdassess.Options{Confidence: 0.9})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range ests {
		if e.Err != nil {
			fmt.Printf("worker %d: %v\n", e.Worker, e.Err)
			continue
		}
		fmt.Printf("worker %d: error rate in [%.3f, %.3f]  (true %.2f)\n",
			e.Worker, e.Interval.Lo, e.Interval.Hi, trueRates[e.Worker])
	}

	// The exactness contract: a single-process evaluator fed the same
	// responses produces bit-identical intervals.
	local, err := crowdassess.NewIncremental(workers)
	if err != nil {
		log.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		for task := 0; task < tasks; task++ {
			if ds.Attempted(w, task) {
				if err := local.Add(w, task, ds.Response(w, task)); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	localEsts, err := local.EvaluateAll(crowdassess.Options{Confidence: 0.9})
	if err != nil {
		log.Fatal(err)
	}
	exact := true
	for i := range ests {
		if (ests[i].Err == nil) != (localEsts[i].Err == nil) {
			exact = false
		} else if ests[i].Err == nil &&
			(math.Float64bits(ests[i].Interval.Lo) != math.Float64bits(localEsts[i].Interval.Lo) ||
				math.Float64bits(ests[i].Interval.Hi) != math.Float64bits(localEsts[i].Interval.Hi)) {
			exact = false
		}
	}
	fmt.Printf("\nbit-identical to single-process evaluation: %v\n", exact)

	// Distributed replicate sweep: the paper's interval-width protocol,
	// replicates partitioned across the cluster.
	spec := crowdassess.SweepSpec{Kernel: crowdassess.SweepWidth, Workers: 7, Tasks: 100, Replicates: 30, Seed: 1}
	res, err := coord.RunSweep(spec, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndistributed sweep %q over %d nodes (%d replicates):\n", res.Name, coord.Nodes(), spec.Replicates)
	for _, p := range res.Series[0].Points {
		if p.X == 0.5 || p.X == 0.9 {
			fmt.Printf("  mean interval size at confidence %.2f: %.3f\n", p.X, p.Y)
		}
	}

	killAndRestore(ds, localEsts)
	selfHealing(ds, localEsts)
}

// killAndRestore is the fault-tolerance walkthrough: a replicated cluster
// loses a node mid-ingest, a replacement is seeded from the survivor, a
// checkpoint round-trips through disk, and the estimates still match the
// uninterrupted local evaluator bit for bit.
func killAndRestore(ds *crowdassess.Dataset, want []crowdassess.WorkerEstimate) {
	const slices, replicas = 2, 2
	workers, tasks := ds.Workers(), ds.Tasks()

	// Build the replica grid: groups[si] jointly own task slice si.
	grid := make([][]*crowdassess.DistWorker, slices)
	groups := make([][]*crowdassess.DistConn, slices)
	for si := 0; si < slices; si++ {
		grid[si] = make([]*crowdassess.DistWorker, replicas)
		groups[si] = make([]*crowdassess.DistConn, replicas)
		for ri := 0; ri < replicas; ri++ {
			w, err := crowdassess.NewDistWorker(crowdassess.DistWorkerOptions{
				Workers: workers, Shards: 2, Name: fmt.Sprintf("slice%d-replica%d", si, ri),
			})
			if err != nil {
				log.Fatal(err)
			}
			defer w.Close()
			grid[si][ri] = w
			if groups[si][ri], err = w.SelfConn(); err != nil {
				log.Fatal(err)
			}
		}
	}
	coord, err := crowdassess.NewReplicatedCluster(workers, groups)
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()

	var stream []crowdassess.DistResponse
	for w := 0; w < workers; w++ {
		for task := 0; task < tasks; task++ {
			if ds.Attempted(w, task) {
				stream = append(stream, crowdassess.DistResponse{Worker: w, Task: task, Answer: ds.Response(w, task)})
			}
		}
	}

	// First half streams in, then disaster: slice 0 loses a replica.
	half := len(stream) / 2
	if err := coord.Ingest(stream[:half]); err != nil {
		log.Fatal(err)
	}
	if err := grid[0][0].Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nkilled one replica of slice 0 mid-ingest")

	// Checkpoint the whole cluster while degraded (each slice still has a
	// live source), and show a checkpoint surviving a disk round-trip. The
	// coordinator discovers the death here — the first operation that
	// touches the dead connection marks it down and proceeds on the
	// survivor.
	dir, err := os.MkdirTemp("", "crowd-ckpt-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	paths, err := coord.CheckpointAll(dir)
	if err != nil {
		log.Fatal(err)
	}
	snap, err := crowdassess.ReadDistSnapshot(paths[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed %d slices (%s holds %d responses for slice 0); slice 0 has %d live replica(s)\n",
		len(paths), filepath.Base(paths[0]), snap.Stats.Responses, coord.LiveReplicas(0))

	// Replacement: a fresh node is attached and seeded from the survivor
	// under the slice lock, so it joins the fan-out in lockstep.
	replacement, err := crowdassess.NewDistWorker(crowdassess.DistWorkerOptions{
		Workers: workers, Shards: 2, Name: "slice0-replacement",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer replacement.Close()
	conn, err := replacement.SelfConn()
	if err != nil {
		log.Fatal(err)
	}
	if err := coord.RestoreNode(0, conn, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attached a replacement: slice 0 back to %d live replicas\n", coord.LiveReplicas(0))

	// The rest of the stream flows; then the original survivor dies too,
	// leaving slice 0 entirely on the restored replacement.
	if err := coord.Ingest(stream[half:]); err != nil {
		log.Fatal(err)
	}
	if err := grid[0][1].Close(); err != nil {
		log.Fatal(err)
	}

	got, err := coord.EvaluateAll(crowdassess.Options{Confidence: 0.9})
	if err != nil {
		log.Fatal(err)
	}
	exact := true
	for i := range got {
		if (got[i].Err == nil) != (want[i].Err == nil) {
			exact = false
		} else if got[i].Err == nil &&
			(math.Float64bits(got[i].Interval.Lo) != math.Float64bits(want[i].Interval.Lo) ||
				math.Float64bits(got[i].Interval.Hi) != math.Float64bits(want[i].Interval.Hi)) {
			exact = false
		}
	}
	fmt.Printf("after kill, checkpoint, restore and a second kill — bit-identical to uninterrupted: %v\n", exact)
}

// selfHealing is the hands-off version of the same story: the heartbeat
// monitor — not an operator — notices a dead replica and re-seeds a
// replacement from the survivor, while ingestion keeps flowing and the
// membership view narrates the recovery.
func selfHealing(ds *crowdassess.Dataset, want []crowdassess.WorkerEstimate) {
	workers, tasks := ds.Workers(), ds.Tasks()

	newNode := func(name string) *crowdassess.DistWorker {
		w, err := crowdassess.NewDistWorker(crowdassess.DistWorkerOptions{Workers: workers, Shards: 2, Name: name})
		if err != nil {
			log.Fatal(err)
		}
		return w
	}

	// One slice, two replicas. Each slot's dialer resolves through
	// `current` — the in-process stand-in for a stable network address
	// that outlives the process behind it. With crowdd daemons, this is
	// what `crowdd -coordinate "a,b"` wires up from TCP addresses.
	var mu sync.Mutex
	current := []*crowdassess.DistWorker{newNode("heal-0"), newNode("heal-1")}
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, w := range current {
			w.Close()
		}
	}()
	specs := make([]crowdassess.DistReplicaSpec, len(current))
	for ri := range specs {
		conn, err := current[ri].SelfConn()
		if err != nil {
			log.Fatal(err)
		}
		ri := ri
		specs[ri] = crowdassess.DistReplicaSpec{
			Conn: conn,
			Dial: func() (*crowdassess.DistConn, error) {
				mu.Lock()
				defer mu.Unlock()
				return current[ri].SelfConn()
			},
		}
	}
	coord, err := crowdassess.NewSelfHealingCluster(workers, [][]crowdassess.DistReplicaSpec{specs}, crowdassess.DefaultDistPolicy())
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()
	coord.StartMonitor(crowdassess.ClusterMonitorOptions{
		Interval:     20 * time.Millisecond,
		SuspectAfter: 1,
		DownAfter:    2,
		ReseedEvery:  40 * time.Millisecond,
		OnEvent:      func(e crowdassess.ClusterEvent) { fmt.Printf("  monitor: %s\n", e) },
	})

	var stream []crowdassess.DistResponse
	for w := 0; w < workers; w++ {
		for task := 0; task < tasks; task++ {
			if ds.Attempted(w, task) {
				stream = append(stream, crowdassess.DistResponse{Worker: w, Task: task, Answer: ds.Response(w, task)})
			}
		}
	}

	fmt.Println("\nself-healing: monitor on, killing a replica mid-stream")
	half := len(stream) / 2
	if err := coord.Ingest(stream[:half]); err != nil {
		log.Fatal(err)
	}

	// The replica dies; a fresh empty process comes up at its address. No
	// operator steps follow — the monitor detects the death and replays
	// the slice's state into the newcomer.
	mu.Lock()
	dead := current[0]
	current[0] = newNode("heal-0-reborn")
	mu.Unlock()
	dead.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		view := coord.Membership()
		if view[0].State == "alive" && view[0].Reseeds >= 1 {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("monitor never re-seeded the replica: %+v", view)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, m := range coord.Membership() {
		fmt.Printf("  membership: slice %d replica %d (%s) %s, reseeds %d\n",
			m.Slice, m.Replica, m.Node, m.State, m.Reseeds)
	}

	if err := coord.Ingest(stream[half:]); err != nil {
		log.Fatal(err)
	}
	got, err := coord.EvaluateAll(crowdassess.Options{Confidence: 0.9})
	if err != nil {
		log.Fatal(err)
	}
	exact := true
	for i := range got {
		if (got[i].Err == nil) != (want[i].Err == nil) {
			exact = false
		} else if got[i].Err == nil &&
			(math.Float64bits(got[i].Interval.Lo) != math.Float64bits(want[i].Interval.Lo) ||
				math.Float64bits(got[i].Interval.Hi) != math.Float64bits(want[i].Interval.Hi)) {
			exact = false
		}
	}
	fmt.Printf("auto-healed with zero failed ingests — bit-identical to uninterrupted: %v\n", exact)
}
