// Quickstart: estimate three workers' error rates, with confidence
// intervals, from nothing but their (possibly incomplete) answers.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"crowdassess"
)

func main() {
	// Simulate a tiny labelling job: 3 workers, 200 binary tasks, and each
	// worker only answers ~80% of the tasks (non-regular data). The true
	// error rates are hidden inside the simulator, exactly like a real
	// crowd.
	src := crowdassess.NewSimSource(7)
	ds, trueRates, err := crowdassess.BinarySim{
		Tasks:      200,
		Workers:    3,
		ErrorRates: []float64{0.10, 0.20, 0.30},
		Density:    0.8,
	}.Generate(src)
	if err != nil {
		log.Fatal(err)
	}

	// Estimate error rates with 90% confidence intervals. No gold-standard
	// answers are used — only inter-worker agreement.
	intervals, err := crowdassess.EvaluateTriple(ds, [3]int{0, 1, 2}, 0.90)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("worker  estimate  90% interval        true rate")
	for w, iv := range intervals {
		fmt.Printf("  w%d    %.3f     [%.3f, %.3f]      %.2f\n",
			w, iv.Mean, iv.Lo, iv.Hi, trueRates[w])
	}

	// The same dataset can be evaluated with the m-worker method, which is
	// what you would use beyond three workers.
	ests, err := crowdassess.EvaluateWorkers(ds, crowdassess.Options{Confidence: 0.90})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nm-worker method on the same data:")
	for _, e := range ests {
		if e.Err != nil {
			fmt.Printf("  w%d    (no estimate: %v)\n", e.Worker, e.Err)
			continue
		}
		fmt.Printf("  w%d    %.3f     [%.3f, %.3f]\n",
			e.Worker, e.Interval.Mean, e.Interval.Lo, e.Interval.Hi)
	}
}
