package dist

import (
	"errors"
	"fmt"
	"sync"

	"crowdassess/internal/core"
	"crowdassess/internal/crowd"
	"crowdassess/internal/eval"
)

// Response is one crowd submission routed through the coordinator: crowd
// worker w answered task t with r.
type Response struct {
	Worker int
	Task   int
	Answer crowd.Response
}

// Coordinator drives a set of worker nodes. Ingestion routes every task to
// exactly one node by the same multiplicative hash the sharded evaluator
// stripes tasks with, so each node's statistics cover a disjoint task
// slice; evaluation pulls every node's statistics export, merges them
// through core.StatsAccumulator — the addFrom reducer — and solves once.
// Because the merge is exact integer addition and the solve is the very
// same Algorithm A2 path, the intervals are bit-identical to a single
// local Incremental fed every response.
//
// All methods are safe for concurrent use; requests on the same node
// serialize on that node's connection.
type Coordinator struct {
	workers int
	nodes   []*node
}

// node is one worker connection; mu serializes request/response
// round-trips on it.
type node struct {
	mu     sync.Mutex
	conn   *Conn
	shards int // node-local shard count, from the handshake
}

// NewCoordinator handshakes the given worker connections into a cluster
// over a crowd of the given size. It takes ownership of the connections:
// they are closed on handshake failure and by Close.
func NewCoordinator(workers int, conns []*Conn) (*Coordinator, error) {
	if len(conns) == 0 {
		return nil, errors.New("dist: coordinator needs at least one worker connection")
	}
	if workers < 3 {
		return nil, fmt.Errorf("dist: need at least 3 crowd workers, have %d", workers)
	}
	c := &Coordinator{workers: workers}
	for i, conn := range conns {
		replyType, reply, err := conn.roundTrip(msgHello, encodeHello(helloMsg{Version: ProtocolVersion, Workers: workers}))
		if err == nil && replyType != msgHelloOK {
			err = fmt.Errorf("dist: unexpected handshake reply 0x%02x", replyType)
		}
		var hello helloMsg
		if err == nil {
			hello, err = decodeHello(reply)
		}
		if err == nil && hello.Workers != workers {
			err = fmt.Errorf("dist: node %d serves %d crowd workers, want %d", i, hello.Workers, workers)
		}
		if err != nil {
			for _, cc := range conns {
				cc.Close()
			}
			return nil, fmt.Errorf("dist: handshake with node %d: %w", i, err)
		}
		c.nodes = append(c.nodes, &node{conn: conn, shards: hello.Shards})
	}
	return c, nil
}

// Workers returns the crowd size the cluster is indexed by.
func (c *Coordinator) Workers() int { return c.workers }

// Nodes returns the number of worker nodes.
func (c *Coordinator) Nodes() int { return len(c.nodes) }

// Close closes every worker connection.
func (c *Coordinator) Close() error {
	var first error
	for _, n := range c.nodes {
		n.mu.Lock()
		err := n.conn.Close()
		n.mu.Unlock()
		if first == nil && err != nil {
			first = err
		}
	}
	return first
}

// nodeOf routes task t to its owning node, deterministically, spreading
// contiguous task ranges evenly. It deliberately uses a different mixer
// (splitmix64's finalizer) than ShardedIncremental.shardOf: with the same
// hash at both levels, every task a node receives would satisfy
// H(t) ≡ node (mod nodes), collapsing the node's local shard striping
// H(t) mod shards onto gcd(nodes, shards) residues — one shard lock doing
// all the work whenever nodes and shards share a factor.
func (c *Coordinator) nodeOf(t int) int {
	h := uint64(t) + 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int(h % uint64(len(c.nodes)))
}

// roundTrip runs one serialized request/response on a node and checks the
// reply type.
func (n *node) roundTrip(msgType byte, body []byte, wantReply byte) ([]byte, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	replyType, reply, err := n.conn.roundTrip(msgType, body)
	if err != nil {
		return nil, err
	}
	if replyType != wantReply {
		return nil, fmt.Errorf("dist: unexpected reply 0x%02x to 0x%02x", replyType, msgType)
	}
	return reply, nil
}

// Add routes one response to its owning node. For throughput, prefer
// Ingest: it ships whole batches per node in single frames.
func (c *Coordinator) Add(w, t int, r crowd.Response) error {
	if t < 0 {
		return fmt.Errorf("dist: negative task index %d", t)
	}
	batch := []responseRec{{Worker: w, Task: t, Answer: int(r)}}
	_, err := c.nodes[c.nodeOf(t)].roundTrip(msgIngest, encodeIngest(batch), msgIngestOK)
	return err
}

// Ingest routes a batch of responses: one frame per involved node, sent
// concurrently. Responses for the same task always land on the same node,
// in their order within the batch. On failure the errors of every failing
// node are joined (in node order); earlier responses within batches may
// already be ingested (the same per-response contract local Add has — a
// rejected response never corrupts state).
func (c *Coordinator) Ingest(batch []Response) error {
	perNode := make([][]responseRec, len(c.nodes))
	for _, s := range batch {
		if s.Task < 0 {
			return fmt.Errorf("dist: negative task index %d", s.Task)
		}
		ni := c.nodeOf(s.Task)
		perNode[ni] = append(perNode[ni], responseRec{Worker: s.Worker, Task: s.Task, Answer: int(s.Answer)})
	}
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for ni, recs := range perNode {
		if len(recs) == 0 {
			continue
		}
		wg.Add(1)
		go func(ni int, recs []responseRec) {
			defer wg.Done()
			_, errs[ni] = c.nodes[ni].roundTrip(msgIngest, encodeIngest(recs), msgIngestOK)
		}(ni, recs)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Responses sums the nodes' running response totals — a few bytes per
// node, pulled concurrently, so the cost is one round-trip rather than a
// statistics merge. Streaming reviews may call this every batch.
func (c *Coordinator) Responses() (int, error) {
	totals := make([]int, len(c.nodes))
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for ni := range c.nodes {
		wg.Add(1)
		go func(ni int) {
			defer wg.Done()
			reply, err := c.nodes[ni].roundTrip(msgPullTotal, nil, msgIngestOK)
			if err != nil {
				errs[ni] = err
				return
			}
			totals[ni], errs[ni] = decodeTotal(reply)
		}(ni)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return 0, err
	}
	total := 0
	for _, t := range totals {
		total += t
	}
	return total, nil
}

// Merge pulls every node's statistics export (concurrently) and folds them
// into a fresh accumulator in node order. The counters are integers, so
// the merged state — and everything evaluated from it — is independent of
// pull timing and identical to a single evaluator's.
func (c *Coordinator) Merge() (*core.StatsAccumulator, error) {
	exports := make([]*core.StatsExport, len(c.nodes))
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for ni := range c.nodes {
		wg.Add(1)
		go func(ni int) {
			defer wg.Done()
			reply, err := c.nodes[ni].roundTrip(msgPullStats, nil, msgStats)
			if err != nil {
				errs[ni] = err
				return
			}
			exports[ni], errs[ni] = DecodeStats(reply)
		}(ni)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	acc, err := core.NewStatsAccumulator(c.workers)
	if err != nil {
		return nil, err
	}
	for ni, e := range exports {
		if err := acc.Merge(e); err != nil {
			return nil, fmt.Errorf("dist: merging node %d: %w", ni, err)
		}
	}
	return acc, nil
}

// Evaluate pulls, merges and solves one worker's interval.
func (c *Coordinator) Evaluate(worker int, opts core.EvalOptions) (core.WorkerEstimate, error) {
	acc, err := c.Merge()
	if err != nil {
		return core.WorkerEstimate{}, err
	}
	return acc.Evaluate(worker, opts)
}

// EvaluateAll pulls every node's statistics once, merges them, and solves
// every worker's interval — the distributed form of
// Incremental.EvaluateAll, bit-identical to it on the same responses.
func (c *Coordinator) EvaluateAll(opts core.EvalOptions) ([]core.WorkerEstimate, error) {
	acc, err := c.Merge()
	if err != nil {
		return nil, err
	}
	return acc.EvaluateAll(opts)
}

// EvaluateSubset pulls and merges once, then solves only the listed
// workers.
func (c *Coordinator) EvaluateSubset(workers []int, opts core.EvalOptions) ([]core.WorkerEstimate, error) {
	acc, err := c.Merge()
	if err != nil {
		return nil, err
	}
	return acc.EvaluateSubset(workers, opts)
}

// RunSweep distributes a replicate sweep: the replicate index range is
// partitioned into contiguous per-node slices (node i of N computes
// [i·R/N, (i+1)·R/N) — deterministic in the node count), each node runs
// its slice with unchanged per-replicate seeding, and the reassembled
// vectors reduce exactly as a local eval.RunSweep would. The Result is
// byte-identical to the local run.
func (c *Coordinator) RunSweep(spec eval.SweepSpec, parallel bool) (*eval.Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.WithDefaults()
	reps := spec.Replicates
	n := len(c.nodes)
	vectors := make([][][]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for ni := 0; ni < n; ni++ {
		lo, hi := ni*reps/n, (ni+1)*reps/n
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(ni, lo, hi int) {
			defer wg.Done()
			body := encodeSweep(sweepMsg{
				Kernel:     spec.Kernel,
				Workers:    spec.Workers,
				Tasks:      spec.Tasks,
				Density:    spec.Density,
				Replicates: reps,
				Seed:       spec.Seed,
				Lo:         lo,
				Hi:         hi,
				Parallel:   parallel,
			})
			reply, err := c.nodes[ni].roundTrip(msgSweep, body, msgSweepOK)
			if err != nil {
				errs[ni] = err
				return
			}
			vecs, err := decodeVectors(reply)
			if err == nil && len(vecs) != hi-lo {
				err = fmt.Errorf("dist: node %d returned %d replicate vectors, want %d", ni, len(vecs), hi-lo)
			}
			vectors[ni], errs[ni] = vecs, err
		}(ni, lo, hi)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	// Contiguous per-node ranges concatenate back into global replicate
	// order.
	all := make([][]float64, 0, reps)
	for _, vecs := range vectors {
		all = append(all, vecs...)
	}
	return eval.ReduceSweep(spec, all)
}
