package dist

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"crowdassess/internal/core"
	"crowdassess/internal/crowd"
	"crowdassess/internal/eval"
	"crowdassess/internal/obs"
)

// Response is one crowd submission routed through the coordinator: crowd
// worker w answered task t with r.
type Response struct {
	Worker int
	Task   int
	Answer crowd.Response
}

// Coordinator drives a set of worker nodes. The task space is partitioned
// into slices by the same kind of multiplicative hash the sharded
// evaluator stripes tasks with, so each slice's statistics cover a
// disjoint task set; evaluation pulls every slice's statistics export,
// merges them through core.StatsAccumulator — the addFrom reducer — and
// solves once. Because the merge is exact integer addition and the solve
// is the very same Algorithm A2 path, the intervals are bit-identical to a
// single local Incremental fed every response.
//
// Each slice is owned by one or more replica nodes
// (NewReplicatedCoordinator). Ingestion fans every batch out to all live
// replicas of the slice; statistics pulls read every live replica and
// byte-compare the canonical payloads, taking one authoritative copy —
// replicas that have silently diverged surface as ErrDivergence rather
// than skewing estimates. A replica whose connection breaks is marked down
// and dropped from the fan-out; the slice keeps serving from its
// survivors, and a replacement node can be attached and brought up to date
// with RestoreNode. Per-slice operations serialize on the slice, which is
// what keeps replicas in lockstep: a statistics pull never observes a
// batch that only some replicas have ingested.
//
// All methods are safe for concurrent use; requests on the same node
// serialize on that node's connection.
type Coordinator struct {
	workers int
	slices  []*slice
	policy  Policy

	monitorMu sync.Mutex
	monitor   *Monitor

	// Observability wiring, installed by Instrument (metrics.go); all nil
	// until then. obsMu guards the trio so a concurrent Instrument never
	// hands a retry loop a half-set observer.
	obsMu  sync.Mutex
	obsReg *obs.Registry
	obsFn  RPCObserver
	obsNow func() time.Time
}

// ReplicaSpec describes one replica slot of a task slice for NewCluster:
// an open connection, and optionally how to reconnect to (a replacement
// for) the node behind it, which is what retries and the self-healing
// monitor redial through.
type ReplicaSpec struct {
	// Conn is the slot's open connection; the coordinator takes
	// ownership. Required.
	Conn *Conn
	// Dial re-establishes a connection to this slot — typically the same
	// listen address, where a restarted crowdd (or its replacement)
	// comes back up. The function must bound its own blocking (use
	// DialTCPTimeout). Optional: without it the slot is not redialable
	// and only RestoreNode can refill it.
	Dial func() (*Conn, error)
}

// NewCoordinator handshakes the given worker connections into a cluster
// over a crowd of the given size, one connection per task slice (no
// replication), under DefaultPolicy. It takes ownership of the
// connections: they are closed on handshake failure and by Close.
func NewCoordinator(workers int, conns []*Conn) (*Coordinator, error) {
	if len(conns) == 0 {
		return nil, errors.New("dist: coordinator needs at least one worker connection")
	}
	groups := make([][]*Conn, len(conns))
	for i, conn := range conns {
		groups[i] = []*Conn{conn}
	}
	return NewReplicatedCoordinator(workers, groups)
}

// NewReplicatedCoordinator handshakes worker connections into a replicated
// cluster under DefaultPolicy: groups[i] is the replica set jointly owning
// task slice i. See NewCluster for the full form (per-slot dialers, custom
// policy). It takes ownership of all connections: they are closed on
// handshake failure and by Close.
func NewReplicatedCoordinator(workers int, groups [][]*Conn) (*Coordinator, error) {
	specs := make([][]ReplicaSpec, len(groups))
	for si, g := range groups {
		specs[si] = make([]ReplicaSpec, len(g))
		for ri, conn := range g {
			specs[si][ri] = ReplicaSpec{Conn: conn}
		}
	}
	return NewCluster(workers, specs, DefaultPolicy())
}

// NewCluster handshakes worker connections into a replicated cluster:
// groups[si] is the replica set jointly owning task slice si, each replica
// a node that will ingest — and must agree on — that slice's every
// response. Replicas make a slice survive node death: as long as one
// replica lives, the slice serves; dead slots are refilled by RestoreNode,
// or automatically by a Monitor when the slot carries a dialer. The policy
// bounds every RPC (deadlines, retries, backoff) and sets the degraded-
// read mode. NewCluster takes ownership of all connections: they are
// closed on handshake failure and by Close.
func NewCluster(workers int, groups [][]ReplicaSpec, policy Policy) (*Coordinator, error) {
	if len(groups) == 0 {
		return nil, errors.New("dist: coordinator needs at least one task slice")
	}
	closeAll := func() {
		for _, g := range groups {
			for _, spec := range g {
				if spec.Conn != nil {
					spec.Conn.Close()
				}
			}
		}
	}
	if workers < 3 {
		closeAll()
		return nil, fmt.Errorf("dist: need at least 3 crowd workers, have %d", workers)
	}
	c := &Coordinator{workers: workers, policy: policy}
	for si, g := range groups {
		if len(g) == 0 {
			closeAll()
			return nil, fmt.Errorf("dist: slice %d has no replica connections", si)
		}
		s := &slice{}
		for ri, spec := range g {
			if spec.Conn == nil {
				closeAll()
				return nil, fmt.Errorf("dist: slice %d replica %d has no connection", si, ri)
			}
			spec.Conn.SetTimeout(policy.RPCTimeout)
			n, err := handshake(workers, spec.Conn)
			if err != nil {
				closeAll()
				return nil, fmt.Errorf("dist: handshake with slice %d replica %d: %w", si, ri, err)
			}
			n.id = uint64(si)<<32 | uint64(ri)
			n.dial = spec.Dial
			n.lastBeat = time.Now()
			s.replicas = append(s.replicas, n)
		}
		c.slices = append(c.slices, s)
	}
	return c, nil
}

// Policy returns the failure policy the coordinator runs under.
func (c *Coordinator) Policy() Policy { return c.policy }

// handshake negotiates protocol version and crowd size with one node. The
// connection's timeout must already be armed by the caller.
func handshake(workers int, conn *Conn) (*node, error) {
	replyType, reply, err := conn.roundTrip(msgHello, encodeHello(helloMsg{Version: ProtocolVersion, Workers: workers}))
	if err == nil && replyType != msgHelloOK {
		err = fmt.Errorf("dist: unexpected handshake reply 0x%02x", replyType)
	}
	var hello helloMsg
	if err == nil {
		hello, err = decodeHello(reply)
	}
	if err == nil && hello.Workers != workers {
		err = fmt.Errorf("dist: node serves %d crowd workers, want %d", hello.Workers, workers)
	}
	if err != nil {
		return nil, err
	}
	return &node{conn: conn, shards: hello.Shards, name: hello.Name, instance: hello.Instance}, nil
}

// idempotent reports whether a request may be safely re-sent after a
// transient failure: the read-only pulls, heartbeats and sweeps. Ingest is
// not — a timed-out batch may already be applied, and re-sending it would
// trip duplicate detection mid-frame — so a failing ingest marks the
// replica down instead (its siblings carry the slice; that IS the write
// path's sibling retry).
func idempotent(msgType byte) bool {
	switch msgType {
	case msgPullStats, msgPullCounts, msgPullDis, msgPullTotal, msgPullSnap, msgPullCompact, msgPing, msgSweep:
		return true
	}
	return false
}

// call runs one round-trip on a node under the policy: the message type's
// deadline budget and — for idempotent requests that fail transiently —
// reconnect-and-retry with jittered exponential backoff. A timed-out frame
// leaves the byte stream unframed, so every retry re-dials the slot first;
// a slot without a dialer gets no retries.
func (c *Coordinator) call(n *node, msgType byte, body []byte, wantReply byte) ([]byte, error) {
	reply, err := n.roundTrip(c.policy, msgType, body, wantReply)
	if err == nil || !idempotent(msgType) || !Transient(err) || c.policy.Retries <= 0 || n.dial == nil {
		return reply, err
	}
	errs := []error{err}
	for attempt := 0; attempt < c.policy.Retries; attempt++ {
		if d := c.policy.backoff(attempt, n.id); d > 0 {
			time.Sleep(d)
			c.noteBackoff(d)
		}
		c.noteRetry(msgType)
		if rerr := c.redial(n); rerr != nil {
			// The slot is unreachable, not just flaky; further attempts
			// would re-dial the same dead address. Hand recovery to the
			// monitor's reseed pass.
			errs = append(errs, rerr)
			break
		}
		if reply, err = n.roundTrip(c.policy, msgType, body, wantReply); err == nil || !Transient(err) {
			return reply, err
		}
		errs = append(errs, err)
	}
	return nil, errors.Join(errs...)
}

// redial replaces a node's connection through its dialer, re-running the
// handshake before the swap. A reconnect is only safe when it reaches the
// SAME incarnation of the worker — same process, slice state intact; a
// different incarnation means the node restarted empty, and retrying a
// pull against it would return hollow statistics as authoritative. That
// case fails here (permanently, for this slot's current life): the caller
// marks the slot down and the monitor reseeds it through the full
// RestoreNode replay instead.
func (c *Coordinator) redial(n *node) error {
	conn, err := n.dial()
	if err != nil {
		return err
	}
	conn.SetTimeout(c.policy.RPCTimeout)
	c.instrumentConn(conn)
	fresh, err := handshake(c.workers, conn)
	if err != nil {
		conn.Close()
		return err
	}
	n.mu.Lock()
	if n.instance != 0 && fresh.instance != 0 && fresh.instance != n.instance {
		n.mu.Unlock()
		conn.Close()
		c.noteIncarnationRefusal()
		return fmt.Errorf("dist: reconnect reached a restarted node (incarnation %x, had %x): state lost, slot needs reseed", fresh.instance, n.instance)
	}
	old := n.conn
	n.conn = conn
	n.shards = fresh.shards
	n.mu.Unlock()
	old.Close()
	return nil
}

// Workers returns the crowd size the cluster is indexed by.
func (c *Coordinator) Workers() int { return c.workers }

// Slices returns the number of task slices the cluster is partitioned
// into — the routing width, fixed for the coordinator's lifetime.
func (c *Coordinator) Slices() int { return len(c.slices) }

// Nodes returns the number of live worker nodes across every slice.
func (c *Coordinator) Nodes() int {
	total := 0
	for _, s := range c.slices {
		s.mu.Lock()
		total += len(s.liveLocked())
		s.mu.Unlock()
	}
	return total
}

// LiveReplicas returns how many replicas of task slice si are still live.
func (c *Coordinator) LiveReplicas(si int) int {
	s := c.slices[si]
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.liveLocked())
}

// Close stops the self-healing monitor (if running) and closes every
// worker connection, live or down.
func (c *Coordinator) Close() error {
	c.StopMonitor()
	var first error
	for _, s := range c.slices {
		s.mu.Lock()
		for _, n := range s.replicas {
			n.mu.Lock()
			err := n.conn.Close()
			n.mu.Unlock()
			// Down replicas were already closed; their second Close's
			// error is noise.
			if first == nil && err != nil && n.state != Down {
				first = err
			}
		}
		s.mu.Unlock()
	}
	return first
}

// ReplicaHealth is one replica slot's entry in the membership view.
type ReplicaHealth struct {
	Slice    int       `json:"slice"`
	Replica  int       `json:"replica"`
	Node     string    `json:"node,omitempty"` // remote identity from the handshake
	State    string    `json:"state"`          // alive | suspect | down
	LastBeat time.Time `json:"last_beat"`      // last proof of life (probe or any RPC)
	Missed   int       `json:"missed"`         // consecutive missed heartbeats
	Reseeds  int       `json:"reseeds"`        // times the slot was re-seeded
}

// Membership returns the failure detector's view of every replica slot,
// in (slice, replica) order — what crowdd's health endpoints report.
func (c *Coordinator) Membership() []ReplicaHealth {
	var view []ReplicaHealth
	for si, s := range c.slices {
		s.mu.Lock()
		for ri, n := range s.replicas {
			view = append(view, ReplicaHealth{
				Slice:    si,
				Replica:  ri,
				Node:     n.name,
				State:    n.state.String(),
				LastBeat: n.lastBeat,
				Missed:   n.missed,
				Reseeds:  n.reseeds,
			})
		}
		s.mu.Unlock()
	}
	return view
}

// Degraded returns the slices currently serving reads from their last-good
// cache because every replica is gone — statistics pulled from them are
// stale until a replica is reseeded and a validated pull lands. Empty
// means every slice is serving live.
func (c *Coordinator) Degraded() []int {
	var out []int
	for si, s := range c.slices {
		s.mu.Lock()
		if s.stale {
			out = append(out, si)
		}
		s.mu.Unlock()
	}
	return out
}

// sliceOf routes task t to its owning slice, deterministically, spreading
// contiguous task ranges evenly. It deliberately uses a different mixer
// (splitmix64's finalizer) than ShardedIncremental.shardOf: with the same
// hash at both levels, every task a slice receives would satisfy
// H(t) ≡ slice (mod slices), collapsing the node's local shard striping
// H(t) mod shards onto gcd(slices, shards) residues — one shard lock doing
// all the work whenever the counts share a factor.
func (c *Coordinator) sliceOf(t int) int {
	h := uint64(t) + 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int(h % uint64(len(c.slices)))
}

// roundTrip runs one serialized request/response on a node under the
// policy's deadline budget for the message class and checks the reply
// type.
func (n *node) roundTrip(p Policy, msgType byte, body []byte, wantReply byte) ([]byte, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.conn.SetTimeout(p.timeoutFor(msgType))
	replyType, reply, err := n.conn.roundTrip(msgType, body)
	if err != nil {
		return nil, err
	}
	if replyType != wantReply {
		return nil, fmt.Errorf("dist: unexpected reply 0x%02x to 0x%02x", replyType, msgType)
	}
	return reply, nil
}

// Add routes one response to its owning slice (every live replica). For
// throughput, prefer Ingest: it ships whole batches per slice in single
// frames.
func (c *Coordinator) Add(w, t int, r crowd.Response) error {
	if t < 0 {
		return fmt.Errorf("dist: negative task index %d", t)
	}
	batch := []responseRec{{Worker: w, Task: t, Answer: int(r)}}
	_, err := c.ingestSlice(c.sliceOf(t), batch)
	return err
}

// Ingest routes a batch of responses: one frame per involved slice, fanned
// out to every live replica of the slice, slices in parallel. Responses
// for the same task always land on the same slice, in their order within
// the batch. On failure the errors of every failing slice are joined (in
// slice order); earlier responses within batches may already be ingested
// (the same per-response contract local Add has — a rejected response
// never corrupts state).
func (c *Coordinator) Ingest(batch []Response) error {
	perSlice := make([][]responseRec, len(c.slices))
	for _, s := range batch {
		if s.Task < 0 {
			return fmt.Errorf("dist: negative task index %d", s.Task)
		}
		si := c.sliceOf(s.Task)
		perSlice[si] = append(perSlice[si], responseRec{Worker: s.Worker, Task: s.Task, Answer: int(s.Answer)})
	}
	errs := make([]error, len(c.slices))
	var wg sync.WaitGroup
	for si, recs := range perSlice {
		if len(recs) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int, recs []responseRec) {
			defer wg.Done()
			_, errs[si] = c.ingestSlice(si, recs)
		}(si, recs)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// counts pulls every slice's cheap running totals concurrently.
func (c *Coordinator) counts() (tasks, responses int, err error) {
	msgs := make([]countsMsg, len(c.slices))
	errs := make([]error, len(c.slices))
	var wg sync.WaitGroup
	for si := range c.slices {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			reply, err := c.broadcast(si, msgPullCounts, nil, msgCounts, true)
			if err != nil {
				errs[si] = err
				return
			}
			msgs[si], errs[si] = decodeCounts(reply)
		}(si)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return 0, 0, err
	}
	for _, m := range msgs {
		if m.Tasks > tasks {
			tasks = m.Tasks
		}
		responses += m.Responses
	}
	return tasks, responses, nil
}

// Responses sums the slices' running response totals — a few bytes per
// slice, pulled concurrently, so the cost is one round-trip rather than a
// statistics merge. Streaming reviews may call this every batch.
func (c *Coordinator) Responses() (int, error) {
	_, responses, err := c.counts()
	return responses, err
}

// Tasks returns the number of distinct task indices seen across the
// cluster (max index + 1).
func (c *Coordinator) Tasks() (int, error) {
	tasks, _, err := c.counts()
	return tasks, err
}

// MajorityDisagreement runs the paper's spammer screen over the cluster:
// each slice reports its integer attempted/disagree tallies (majorities
// are per task, and each task lives wholly in one slice, so the tallies
// are additive), the coordinator sums them and divides once — the same
// rates, bit for bit, as a local evaluator fed every response.
func (c *Coordinator) MajorityDisagreement() ([]float64, error) {
	attempted := make([]int, c.workers)
	disagree := make([]int, c.workers)
	type tallies struct{ attempted, disagree []int }
	out := make([]tallies, len(c.slices))
	errs := make([]error, len(c.slices))
	var wg sync.WaitGroup
	for si := range c.slices {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			reply, err := c.broadcast(si, msgPullDis, nil, msgDis, true)
			if err != nil {
				errs[si] = err
				return
			}
			out[si].attempted, out[si].disagree, errs[si] = decodeTallies(reply)
		}(si)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	for si, tl := range out {
		if len(tl.attempted) != c.workers {
			return nil, fmt.Errorf("dist: slice %d reported tallies for %d workers, want %d", si, len(tl.attempted), c.workers)
		}
		for w := range attempted {
			attempted[w] += tl.attempted[w]
			disagree[w] += tl.disagree[w]
		}
	}
	rates := make([]float64, c.workers)
	for w := range rates {
		if attempted[w] > 0 {
			rates[w] = float64(disagree[w]) / float64(attempted[w])
		}
	}
	return rates, nil
}

// Merge pulls every slice's statistics export (concurrently, validated
// across replicas) and folds them into a fresh accumulator in slice order.
// The counters are integers, so the merged state — and everything
// evaluated from it — is independent of pull timing and identical to a
// single evaluator's.
func (c *Coordinator) Merge() (*core.StatsAccumulator, error) {
	exports := make([]*core.StatsExport, len(c.slices))
	errs := make([]error, len(c.slices))
	var wg sync.WaitGroup
	for si := range c.slices {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			reply, err := c.broadcast(si, msgPullStats, nil, msgStats, true)
			if err != nil {
				errs[si] = err
				return
			}
			exports[si], errs[si] = DecodeStats(reply)
		}(si)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	acc, err := core.NewStatsAccumulator(c.workers)
	if err != nil {
		return nil, err
	}
	for si, e := range exports {
		if err := acc.Merge(e); err != nil {
			return nil, fmt.Errorf("dist: merging slice %d: %w", si, err)
		}
	}
	return acc, nil
}

// Evaluate pulls, merges and solves one worker's interval.
func (c *Coordinator) Evaluate(worker int, opts core.EvalOptions) (core.WorkerEstimate, error) {
	acc, err := c.Merge()
	if err != nil {
		return core.WorkerEstimate{}, err
	}
	return acc.Evaluate(worker, opts)
}

// EvaluateAll pulls every slice's statistics once, merges them, and solves
// every worker's interval — the distributed form of
// Incremental.EvaluateAll, bit-identical to it on the same responses.
func (c *Coordinator) EvaluateAll(opts core.EvalOptions) ([]core.WorkerEstimate, error) {
	acc, err := c.Merge()
	if err != nil {
		return nil, err
	}
	return acc.EvaluateAll(opts)
}

// EvaluateSubset pulls and merges once, then solves only the listed
// workers.
func (c *Coordinator) EvaluateSubset(workers []int, opts core.EvalOptions) ([]core.WorkerEstimate, error) {
	acc, err := c.Merge()
	if err != nil {
		return nil, err
	}
	return acc.EvaluateSubset(workers, opts)
}

// Snapshot materializes every response the cluster holds as a Dataset, by
// pulling each slice's checkpoint (statistics plus response log) and
// replaying the logs — the distributed form of Incremental.Snapshot, for
// interoperability with the batch algorithms.
func (c *Coordinator) Snapshot() (*crowd.Dataset, error) {
	snaps := make([]*Snapshot, len(c.slices))
	errs := make([]error, len(c.slices))
	var wg sync.WaitGroup
	for si := range c.slices {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			snaps[si], errs[si] = c.SliceSnapshot(si)
		}(si)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	tasks := 0
	for _, snap := range snaps {
		if snap.Stats.Tasks > tasks {
			tasks = snap.Stats.Tasks
		}
	}
	if tasks == 0 {
		return nil, fmt.Errorf("dist: no responses recorded: %w", core.ErrInsufficientData)
	}
	ds, err := crowd.NewDataset(c.workers, tasks, 2)
	if err != nil {
		return nil, err
	}
	for si, snap := range snaps {
		for _, lr := range snap.Log {
			if err := ds.SetResponse(lr.Worker, lr.Task, lr.Answer); err != nil {
				return nil, fmt.Errorf("dist: slice %d log: %w", si, err)
			}
		}
	}
	return ds, nil
}

// RunSweep distributes a replicate sweep: the replicate index range is
// partitioned into contiguous per-slice ranges (slice i of N computes
// [i·R/N, (i+1)·R/N) — deterministic in the slice count), each range runs
// on one live replica of its slice with unchanged per-replicate seeding,
// and the reassembled vectors reduce exactly as a local eval.RunSweep
// would. The Result is byte-identical to the local run.
func (c *Coordinator) RunSweep(spec eval.SweepSpec, parallel bool) (*eval.Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.WithDefaults()
	reps := spec.Replicates
	n := len(c.slices)
	vectors := make([][][]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for si := 0; si < n; si++ {
		lo, hi := si*reps/n, (si+1)*reps/n
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(si, lo, hi int) {
			defer wg.Done()
			body := encodeSweep(sweepMsg{
				Kernel:     spec.Kernel,
				Workers:    spec.Workers,
				Tasks:      spec.Tasks,
				Density:    spec.Density,
				Replicates: reps,
				Seed:       spec.Seed,
				Lo:         lo,
				Hi:         hi,
				Parallel:   parallel,
			})
			reply, err := c.sweepSlice(si, body)
			if err != nil {
				errs[si] = err
				return
			}
			vecs, err := decodeVectors(reply)
			if err == nil && len(vecs) != hi-lo {
				err = fmt.Errorf("dist: slice %d returned %d replicate vectors, want %d", si, len(vecs), hi-lo)
			}
			vectors[si], errs[si] = vecs, err
		}(si, lo, hi)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	// Contiguous per-slice ranges concatenate back into global replicate
	// order.
	all := make([][]float64, 0, reps)
	for _, vecs := range vectors {
		all = append(all, vecs...)
	}
	return eval.ReduceSweep(spec, all)
}
