package dist

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// eventQueue decouples an event producer from its sink: emit never
// blocks (full queue = counted drop), a dedicated dispatcher goroutine
// delivers in order, and drain flushes whatever was queued before
// returning. It exists so the monitor's probe scheduling can never be
// delayed by a slow OnEvent sink (a file write, a metrics push).
type eventQueue struct {
	ch        chan Event
	dropped   atomic.Uint64
	drainOnce sync.Once
	done      chan struct{}
}

func newEventQueue(sink func(Event), buf int) *eventQueue {
	q := &eventQueue{ch: make(chan Event, buf), done: make(chan struct{})}
	go func() {
		defer close(q.done)
		for e := range q.ch {
			sink(e)
		}
	}()
	return q
}

// emit enqueues e without blocking; a full queue drops it and counts.
func (q *eventQueue) emit(e Event) {
	select {
	case q.ch <- e:
	default:
		q.dropped.Add(1)
	}
}

// drain stops the queue and waits for every already-queued event to be
// delivered. The producer must have stopped emitting. Idempotent.
func (q *eventQueue) drain() {
	q.drainOnce.Do(func() { close(q.ch) })
	<-q.done
}

// MonitorOptions tunes the heartbeat failure detector and the self-healing
// reseed loop.
type MonitorOptions struct {
	// Interval is the heartbeat period — and each probe's deadline: a ping
	// that hasn't answered within one interval is a missed beat. 0 selects
	// DefaultHeartbeatInterval.
	Interval time.Duration
	// SuspectAfter is how many consecutive missed beats turn an Alive
	// replica Suspect (still serving, surfaced in the membership view).
	// 0 selects 2.
	SuspectAfter int
	// DownAfter is how many consecutive missed beats retire a replica to
	// Down — out of every fan-out until reseeded. 0 selects 4; it is
	// clamped to at least SuspectAfter.
	DownAfter int
	// ReseedEvery rate-limits reseed attempts per slot, so a node that is
	// down for an hour is not redialed and re-replayed thousands of times.
	// 0 selects 4× Interval.
	ReseedEvery time.Duration
	// CheckpointDir, when set, is the fallback seed source: a slice whose
	// every replica is gone reseeds from dir/slice-NNN.ckpt (the
	// CheckpointAll layout). Without it, a fully-dead slice waits for a
	// survivor that will never come — only degraded reads keep serving.
	CheckpointDir string
	// OnEvent, when set, observes every detector transition and reseed
	// attempt. Events are delivered in order from a dedicated dispatcher
	// goroutine through a bounded queue (EventBuffer), so a slow sink
	// never delays probe scheduling; when the queue is full events are
	// dropped and counted (Monitor.DroppedEvents). A sink that never
	// returns wedges only its own queue — and Stop, which flushes
	// delivered-but-unprocessed events before returning. Nil is fine.
	OnEvent func(Event)
	// EventBuffer bounds the queue between the monitor loop and the
	// OnEvent sink. 0 selects DefaultEventBuffer.
	EventBuffer int
}

// DefaultEventBuffer is the default OnEvent queue depth: deep enough to
// absorb a whole-cluster transition burst (every slot reporting at
// once), small enough that an abandoned sink costs kilobytes.
const DefaultEventBuffer = 256

// DefaultHeartbeatInterval is the default probe period. One second keeps
// detection latency at a few seconds with the default thresholds while the
// probe itself stays negligible (a ping is two counters on the wire).
const DefaultHeartbeatInterval = time.Second

// Event is one observation of the self-healing loop: a liveness
// transition, or a reseed attempt and its outcome.
type Event struct {
	Time    time.Time `json:"time"`
	Kind    string    `json:"kind"` // "suspect" | "down" | "alive" | "reseed" | "reseed-failed"
	Slice   int       `json:"slice"`
	Replica int       `json:"replica"`
	Node    string    `json:"node,omitempty"`
	Err     error     `json:"-"`
	Detail  string    `json:"detail,omitempty"`
}

func (e Event) String() string {
	s := fmt.Sprintf("%s slice=%d replica=%d", e.Kind, e.Slice, e.Replica)
	if e.Node != "" {
		s += " node=" + e.Node
	}
	if e.Err != nil {
		s += " err=" + e.Err.Error()
	} else if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Monitor is the coordinator's failure detector and self-healing loop: it
// probes every non-down replica with msgPing each interval, walks replicas
// through Alive → Suspect → Down as beats go missing, and re-seeds Down
// slots that carry a dialer — from a surviving sibling replica when one
// lives, else from the latest checkpoint. Start it with
// Coordinator.StartMonitor.
type Monitor struct {
	c    *Coordinator
	opts MonitorOptions

	// events decouples the monitor loop from the OnEvent sink; nil when
	// no sink is configured.
	events *eventQueue

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	// lastState remembers each slot's last observed liveness, keyed by
	// slot id, so transitions made by the RPC path (a broadcast marking a
	// replica down) are reported too, not only the monitor's own.
	lastState map[uint64]Liveness
}

// StartMonitor starts the self-healing loop. At most one monitor runs per
// coordinator; starting a second one first stops the old. The monitor
// stops with StopMonitor or Close.
func (c *Coordinator) StartMonitor(opts MonitorOptions) *Monitor {
	if opts.Interval <= 0 {
		opts.Interval = DefaultHeartbeatInterval
	}
	if opts.SuspectAfter <= 0 {
		opts.SuspectAfter = 2
	}
	if opts.DownAfter <= 0 {
		opts.DownAfter = 4
	}
	if opts.DownAfter < opts.SuspectAfter {
		opts.DownAfter = opts.SuspectAfter
	}
	if opts.ReseedEvery <= 0 {
		opts.ReseedEvery = 4 * opts.Interval
	}
	if opts.EventBuffer <= 0 {
		opts.EventBuffer = DefaultEventBuffer
	}
	m := &Monitor{
		c:         c,
		opts:      opts,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		lastState: make(map[uint64]Liveness),
	}
	if opts.OnEvent != nil {
		m.events = newEventQueue(opts.OnEvent, opts.EventBuffer)
	}
	c.monitorMu.Lock()
	old := c.monitor
	c.monitor = m
	c.monitorMu.Unlock()
	if old != nil {
		old.Stop()
	}
	go m.run()
	return m
}

// StopMonitor stops the running monitor, if any, and waits for its loop to
// exit. Safe to call with no monitor running.
func (c *Coordinator) StopMonitor() {
	c.monitorMu.Lock()
	m := c.monitor
	c.monitor = nil
	c.monitorMu.Unlock()
	if m != nil {
		m.Stop()
	}
}

// Stop ends the monitor's loop, waits for it to exit, and flushes any
// queued-but-undelivered events to the OnEvent sink. Idempotent.
func (m *Monitor) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
	if m.events != nil {
		m.events.drain()
	}
}

// DroppedEvents returns how many monitor events were dropped because the
// OnEvent queue was full.
func (m *Monitor) DroppedEvents() uint64 {
	if m.events == nil {
		return 0
	}
	return m.events.dropped.Load()
}

// emit hands one event to the sink queue, never blocking the monitor
// loop.
func (m *Monitor) emit(e Event) {
	if m.events != nil {
		m.events.emit(e)
	}
}

func (m *Monitor) run() {
	defer close(m.done)
	t := time.NewTicker(m.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.pass()
		}
	}
}

// pass is one detector sweep: probe, apply transitions, report, reseed.
// Probes run concurrently and outside the slice locks (a probe takes only
// the node's connection lock), so a slow pass never stalls ingestion.
func (m *Monitor) pass() {
	type target struct {
		si, ri int
		n      *node
	}
	var targets []target
	for si, s := range m.c.slices {
		s.mu.Lock()
		for ri, n := range s.replicas {
			if n.state != Down {
				targets = append(targets, target{si, ri, n})
			}
		}
		s.mu.Unlock()
	}
	probeErrs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			probeErrs[i] = m.probe(n)
		}(i, t.n)
	}
	wg.Wait()

	now := time.Now()
	for i, t := range targets {
		s := m.c.slices[t.si]
		s.mu.Lock()
		n := t.n
		switch {
		case n.state == Down:
			// An RPC lost the connection while we probed; the transition
			// is reported below.
		case probeErrs[i] == nil || isRemote(probeErrs[i]):
			// Answered — even a refusal is proof of life.
			beatLocked(n, now)
		default:
			n.missed++
			if n.missed >= m.opts.DownAfter || n.dial == nil {
				// A failed probe leaves the byte stream unframed; without
				// a dialer there is no way back to a clean channel, so a
				// single miss retires the slot.
				markDownLocked(n)
			} else {
				if n.missed >= m.opts.SuspectAfter && n.state == Alive {
					n.state = Suspect
				}
				// Restore a clean channel for the next probe (and any RPC
				// in between): the failed ping may have desynced the
				// stream. Failure is fine — missed keeps climbing.
				s.mu.Unlock()
				err := m.c.redial(n)
				s.mu.Lock()
				if err != nil && n.state != Down && !Transient(err) {
					// The slot reconnected to a restarted (state-empty)
					// incarnation: no channel repair can help, reseed is
					// the only way back.
					markDownLocked(n)
				}
			}
		}
		s.mu.Unlock()
	}

	m.report(now)
	m.reseed(now)
}

// probe pings one node, bounded by the heartbeat interval: an answer that
// cannot land within one period is a missed beat by definition.
func (m *Monitor) probe(n *node) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.conn.SetTimeout(m.opts.Interval)
	replyType, _, err := n.conn.roundTrip(msgPing, nil)
	if err != nil {
		return err
	}
	if replyType != msgPong {
		return fmt.Errorf("dist: unexpected reply 0x%02x to ping", replyType)
	}
	return nil
}

// report emits an Event for every slot whose liveness changed since the
// previous pass — including transitions made by the RPC path.
func (m *Monitor) report(now time.Time) {
	if m.events == nil {
		return
	}
	for si, s := range m.c.slices {
		s.mu.Lock()
		type change struct {
			ri    int
			name  string
			state Liveness
		}
		var changes []change
		for ri, n := range s.replicas {
			if prev, seen := m.lastState[n.id]; !seen || prev != n.state {
				m.lastState[n.id] = n.state
				if seen || n.state != Alive { // initial Alive is not news
					changes = append(changes, change{ri, n.name, n.state})
				}
			}
		}
		s.mu.Unlock()
		for _, ch := range changes {
			m.emit(Event{Time: now, Kind: ch.state.String(), Slice: si, Replica: ch.ri, Node: ch.name})
		}
	}
}

// reseed attempts to refill Down slots that carry a dialer, rate-limited
// per slot: dial a fresh connection and run it through RestoreNode, seeding
// from a surviving replica — or, when the whole slice is gone and a
// checkpoint directory is configured, from the slice's latest checkpoint.
func (m *Monitor) reseed(now time.Time) {
	type job struct {
		si, ri int
		name   string
		dial   func() (*Conn, error)
	}
	var jobs []job
	for si, s := range m.c.slices {
		s.mu.Lock()
		for ri, n := range s.replicas {
			if n.state == Down && n.dial != nil && now.Sub(n.lastReseed) >= m.opts.ReseedEvery {
				n.lastReseed = now // rate-limit from the attempt, not the success
				jobs = append(jobs, job{si, ri, n.name, n.dial})
			}
		}
		s.mu.Unlock()
	}
	for _, j := range jobs {
		err := m.reseedSlot(j.si, j.dial)
		if m.events == nil {
			continue
		}
		kind := "reseed"
		if err != nil {
			kind = "reseed-failed"
		}
		m.emit(Event{Time: now, Kind: kind, Slice: j.si, Replica: j.ri, Node: j.name, Err: err})
	}
}

// reseedSlot dials and restores one replacement replica for slice si.
func (m *Monitor) reseedSlot(si int, dial func() (*Conn, error)) error {
	conn, err := dial()
	if err != nil {
		return err
	}
	// Seed from a surviving sibling when one lives — always fresher than
	// any checkpoint.
	err = m.c.RestoreNode(si, conn, nil)
	if err == nil || !errors.Is(err, ErrNoReplica) {
		return err
	}
	// Whole slice is gone: fall back to durable state. RestoreNode closed
	// the first connection on failure, so each path dials again. The
	// slice's WAL store, when attached, wins over legacy checkpoint files:
	// snapshot + journal tail replay covers every acknowledged batch,
	// while a CCKP file only covers up to its last checkpoint tick. The
	// exception is a store with no journaled state at all (attached after
	// the data was ingested, or before any fan-out was journaled): it
	// would rebuild the slice empty, so a configured checkpoint directory
	// — which may hold a valid legacy snapshot — takes over instead.
	if st := m.c.sliceStore(si); st != nil {
		useStore := true
		if m.opts.CheckpointDir != "" {
			empty, eerr := st.Empty()
			// An unlistable snapshot store is not "empty": recovering from
			// the store surfaces the fault loudly instead of silently
			// preferring an older legacy checkpoint over unknown state.
			useStore = eerr != nil || !empty
		}
		if useStore {
			conn, rerr := dial()
			if rerr != nil {
				return errors.Join(err, rerr)
			}
			return m.c.RestoreNodeFromStore(si, conn)
		}
	}
	if m.opts.CheckpointDir == "" {
		return err
	}
	snap, rerr := readNewestValidSliceCheckpoint(m.opts.CheckpointDir, si)
	if rerr != nil {
		return errors.Join(err, rerr)
	}
	conn, rerr = dial()
	if rerr != nil {
		return errors.Join(err, rerr)
	}
	return m.c.RestoreNode(si, conn, snap)
}
