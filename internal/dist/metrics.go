package dist

import (
	"errors"
	"net"
	"os"
	"strconv"
	"time"

	"crowdassess/internal/obs"
)

// This file is the dist layer's observability wiring: everything here
// feeds an obs.Registry and nothing here changes protocol or decision
// behavior. It lives outside the determinism-scoped files (codec,
// compact, checkpoint, Merge/RunSweep) on purpose — clocks pace
// measurement, never decisions.

// msgName renders a message type as a stable metric label value.
func msgName(t byte) string {
	switch t {
	case msgHello:
		return "hello"
	case msgIngest:
		return "ingest"
	case msgPullStats:
		return "pull-stats"
	case msgSweep:
		return "sweep"
	case msgPullTotal:
		return "pull-total"
	case msgPullCounts:
		return "pull-counts"
	case msgPullDis:
		return "pull-dis"
	case msgPullSnap:
		return "pull-snap"
	case msgRestore:
		return "restore"
	case msgPing:
		return "ping"
	case msgPullCompact:
		return "pull-compact"
	case msgRestoreCompact:
		return "restore-compact"
	}
	return "0x" + strconv.FormatUint(uint64(t), 16)
}

// isTimeout reports whether an RPC failure was a deadline trip, for the
// timeout counter.
func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// rpcObserver builds the Conn-level observer recording per-message-type
// round-trip latency, payload bytes, errors and timeouts into reg.
func rpcObserver(reg *obs.Registry) RPCObserver {
	return func(msgType byte, sent, recvd int, elapsed time.Duration, err error) {
		msg := obs.Label{Key: "msg", Value: msgName(msgType)}
		reg.Histogram("dist_rpc_seconds",
			"Coordinator-side RPC round-trip latency by message type.", nil, msg).
			Observe(elapsed.Seconds())
		reg.Counter("dist_rpc_bytes_total",
			"RPC payload bytes by message type and direction.",
			msg, obs.Label{Key: "dir", Value: "sent"}).Add(uint64(sent))
		reg.Counter("dist_rpc_bytes_total",
			"RPC payload bytes by message type and direction.",
			msg, obs.Label{Key: "dir", Value: "recv"}).Add(uint64(recvd))
		if err != nil {
			reg.Counter("dist_rpc_errors_total",
				"Failed RPC round-trips by message type.", msg).Inc()
			if isTimeout(err) {
				reg.Counter("dist_rpc_timeouts_total",
					"RPC round-trips that tripped a deadline, by message type.", msg).Inc()
			}
		}
	}
}

// Instrument wires the coordinator into reg: every current and future
// connection (redials and reseeds included) reports per-message RPC
// latency/bytes/errors, the retry loop reports retries and backoff
// waits, redial reports incarnation refusals, and every replica slot
// exports a monitor_replica_state gauge (0=alive, 1=suspect, 2=down;
// -1 when the slot no longer exists). Call it once, after NewCluster
// and before traffic; calling it on a live cluster is safe but
// round-trips in flight keep the old (nil) observer.
func (c *Coordinator) Instrument(reg *obs.Registry) {
	fn := rpcObserver(reg)
	now := reg.Clock().Now
	c.obsMu.Lock()
	c.obsReg = reg
	c.obsFn = fn
	c.obsNow = now
	c.obsMu.Unlock()
	for si, s := range c.slices {
		s.mu.Lock()
		replicas := len(s.replicas)
		for _, n := range s.replicas {
			n.mu.Lock()
			n.conn.SetObserver(fn, now)
			n.mu.Unlock()
		}
		s.mu.Unlock()
		for ri := 0; ri < replicas; ri++ {
			s, si, ri := s, si, ri
			reg.GaugeFunc("monitor_replica_state",
				"Replica liveness by slot: 0=alive, 1=suspect, 2=down, -1=gone.",
				func() float64 {
					s.mu.Lock()
					defer s.mu.Unlock()
					if ri >= len(s.replicas) {
						return -1
					}
					return float64(s.replicas[ri].state)
				},
				obs.Label{Key: "slice", Value: strconv.Itoa(si)},
				obs.Label{Key: "replica", Value: strconv.Itoa(ri)})
		}
		s, si := s, si
		reg.GaugeFunc("monitor_slice_degraded",
			"1 when the slice serves stale reads because every replica is gone.",
			func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				if s.stale {
					return 1
				}
				return 0
			},
			obs.Label{Key: "slice", Value: strconv.Itoa(si)})
	}
}

// observer returns the installed RPC observer and clock (nil before
// Instrument), for the paths that create fresh connections.
func (c *Coordinator) observer() (RPCObserver, func() time.Time) {
	c.obsMu.Lock()
	defer c.obsMu.Unlock()
	return c.obsFn, c.obsNow
}

// instrumentConn installs the coordinator's observer (if any) on a
// fresh connection. Callers hold whatever serializes the conn.
func (c *Coordinator) instrumentConn(conn *Conn) {
	if fn, now := c.observer(); fn != nil {
		conn.SetObserver(fn, now)
	}
}

// noteRetry counts one retry attempt of an idempotent RPC.
func (c *Coordinator) noteRetry(msgType byte) {
	c.obsMu.Lock()
	reg := c.obsReg
	c.obsMu.Unlock()
	if reg == nil {
		return
	}
	reg.Counter("dist_rpc_retries_total",
		"Retry attempts of idempotent RPCs by message type.",
		obs.Label{Key: "msg", Value: msgName(msgType)}).Inc()
}

// noteBackoff records one backoff sleep before a retry.
func (c *Coordinator) noteBackoff(d time.Duration) {
	c.obsMu.Lock()
	reg := c.obsReg
	c.obsMu.Unlock()
	if reg == nil {
		return
	}
	reg.Histogram("dist_rpc_backoff_seconds",
		"Backoff waits before RPC retries (count = waits, sum = total wait).", nil).
		Observe(d.Seconds())
}

// noteIncarnationRefusal counts a reconnect that reached a restarted
// (state-empty) worker incarnation and was refused.
func (c *Coordinator) noteIncarnationRefusal() {
	c.obsMu.Lock()
	reg := c.obsReg
	c.obsMu.Unlock()
	if reg == nil {
		return
	}
	reg.Counter("dist_incarnation_refusals_total",
		"Reconnects refused because they reached a restarted worker incarnation.").Inc()
}

// EventMetrics returns an OnEvent sink that counts failure-detector and
// reseed events by kind into reg — chain it with any logging sink via
// ChainEvents.
func EventMetrics(reg *obs.Registry) func(Event) {
	return func(e Event) {
		reg.Counter("monitor_events_total",
			"Failure-detector transitions and reseed outcomes by kind.",
			obs.Label{Key: "kind", Value: e.Kind}).Inc()
	}
}

// ChainEvents fans one monitor event out to every given sink, in order.
// Nil sinks are skipped.
func ChainEvents(sinks ...func(Event)) func(Event) {
	return func(e Event) {
		for _, s := range sinks {
			if s != nil {
				s(e)
			}
		}
	}
}

// Instrument exports the monitor's own health into reg: the number of
// events dropped because the OnEvent queue was full.
func (m *Monitor) Instrument(reg *obs.Registry) {
	reg.GaugeFunc("monitor_events_dropped",
		"Monitor events dropped because the OnEvent queue was full.",
		func() float64 { return float64(m.DroppedEvents()) })
}

// Instrument wires the worker node into reg: per-message serve latency
// and errors, ingest throughput counters, and gauges for the node's
// task/response/connection counts. Call before serving traffic;
// installing on a live worker is safe (requests in flight miss at most
// their own sample).
func (w *Worker) Instrument(reg *obs.Registry) {
	w.obsReg.Store(reg)
	reg.GaugeFunc("worker_tasks",
		"Distinct tasks held by this node's evaluator.",
		func() float64 { return float64(w.inc.Tasks()) })
	reg.GaugeFunc("worker_responses",
		"Responses ingested by this node's evaluator.",
		func() float64 { return float64(w.inc.Responses()) })
	reg.GaugeFunc("worker_connections",
		"Live coordinator connections served by this node.",
		func() float64 {
			w.mu.Lock()
			defer w.mu.Unlock()
			return float64(len(w.conns))
		})
	reg.GaugeFunc("worker_shards",
		"Local task-stripe shard count.",
		func() float64 { return float64(w.opts.Shards) })
}
