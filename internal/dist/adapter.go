package dist

import (
	"errors"
	"fmt"
	"sync"

	"crowdassess/internal/core"
	"crowdassess/internal/crowd"
)

// DefaultClusterBatch is the Add-buffer size NewClusterEvaluator uses when
// given a non-positive batch: large enough that per-frame overhead
// vanishes against the covariance solves, small enough that a review
// flushing the buffer never stalls noticeably.
const DefaultClusterBatch = 256

// ClusterEvaluator adapts a Coordinator to core.StreamingEvaluator, so
// pool.Manager — and anything else programmed against the streaming
// interface — runs unchanged against a whole cluster. Adds are buffered
// and shipped as batched ingest fan-outs (one frame per slice); every
// reading method flushes the buffer first, so reads always observe every
// response accepted so far. Evaluation pulls and merges the slices'
// statistics and solves on the coordinator — the exact integer merge — so
// estimates, spammer screens and therefore pool review decisions are
// bit-identical to a local evaluator fed the same responses.
//
// All methods are safe for concurrent use; they serialize on the adapter,
// which matches how pool.Manager schedules its calls (concurrent Records
// batch up; reviews run at batch boundaries).
//
// Error contract: Add reports remote rejections at the flush that carries
// them, not at the call that buffered the bad response — a duplicate may
// therefore surface a few Adds late, attributed to the flush. Methods
// whose interface signature cannot return an error (Tasks, Responses,
// MajorityDisagreement) return stale or zero values when the cluster is
// unreachable and park the failure, which the next fallible call
// (Add, Flush, Evaluate*) returns.
type ClusterEvaluator struct {
	coord *Coordinator
	batch int

	mu  sync.Mutex
	buf []Response
	err error // parked failure from an infallible-signature method

	// last-known counts, served when the cluster is unreachable.
	lastTasks     int
	lastResponses int
}

var _ core.StreamingEvaluator = (*ClusterEvaluator)(nil)

// NewClusterEvaluator wraps a coordinator in the streaming-evaluator
// interface. batch sets how many buffered Adds trigger a flush;
// non-positive selects DefaultClusterBatch, 1 disables buffering.
func NewClusterEvaluator(coord *Coordinator, batch int) *ClusterEvaluator {
	if batch <= 0 {
		batch = DefaultClusterBatch
	}
	return &ClusterEvaluator{coord: coord, batch: batch}
}

// Coordinator returns the underlying cluster coordinator (for checkpoint
// and replica-management operations, which are not part of the streaming
// interface).
func (c *ClusterEvaluator) Coordinator() *Coordinator { return c.coord }

// Workers returns the crowd size the cluster is indexed by.
func (c *ClusterEvaluator) Workers() int { return c.coord.Workers() }

// Add buffers worker w's response r on task t, shipping the buffer as one
// batched cluster ingest when it reaches the batch size. Locally checkable
// rejections (range, arity) fail immediately; remote ones (duplicates)
// surface at the flush that carries them.
func (c *ClusterEvaluator) Add(w, t int, r crowd.Response) error {
	if w < 0 || w >= c.coord.Workers() {
		return fmt.Errorf("dist: worker %d out of range 0…%d", w, c.coord.Workers()-1)
	}
	if t < 0 {
		return fmt.Errorf("dist: negative task index %d", t)
	}
	if r != crowd.Yes && r != crowd.No {
		return fmt.Errorf("dist: streaming evaluator is binary; response %d: %w", r, crowd.ErrArity)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf = append(c.buf, Response{Worker: w, Task: t, Answer: r})
	if len(c.buf) >= c.batch {
		return c.flushLocked()
	}
	return nil
}

// Flush ships any buffered responses to the cluster immediately. It also
// surfaces a failure parked by an infallible-signature method.
func (c *ClusterEvaluator) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked()
}

func (c *ClusterEvaluator) flushLocked() error {
	// A parked failure never short-circuits the flush: the buffer is
	// always shipped (or dropped with its ingest error) on this call, so a
	// failed flush can never leave responses behind that a later flush
	// silently delivers after their Add was reported failed.
	parked := c.err
	c.err = nil
	var ingestErr error
	if len(c.buf) > 0 {
		batch := c.buf
		c.buf = c.buf[:0]
		// The per-response contract matches Coordinator.Ingest: on error,
		// earlier responses of the batch may already be ingested; the
		// buffer is not retried (re-ingesting it would duplicate the
		// accepted prefix).
		ingestErr = c.coord.Ingest(batch)
	}
	return errors.Join(parked, ingestErr)
}

// Tasks returns the number of distinct task indices seen cluster-wide. If
// the cluster is unreachable it returns the last known value and parks the
// error for the next fallible call.
func (c *ClusterEvaluator) Tasks() int {
	tasks, _ := c.countsFlushed()
	return tasks
}

// Responses returns the total responses accepted cluster-wide (buffered,
// unflushed Adds included once flushed — Responses flushes first). On an
// unreachable cluster it returns the last known value and parks the error.
func (c *ClusterEvaluator) Responses() int {
	_, responses := c.countsFlushed()
	return responses
}

func (c *ClusterEvaluator) countsFlushed() (tasks, responses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.flushLocked(); err != nil {
		c.err = err
		return c.lastTasks, c.lastResponses
	}
	tasks, responses, err := c.coord.counts()
	if err != nil {
		c.err = err
		return c.lastTasks, c.lastResponses
	}
	c.lastTasks, c.lastResponses = tasks, responses
	return tasks, responses
}

// Evaluate flushes, then pulls, merges and solves one worker's interval.
func (c *ClusterEvaluator) Evaluate(worker int, opts core.EvalOptions) (core.WorkerEstimate, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.flushLocked(); err != nil {
		return core.WorkerEstimate{}, err
	}
	return c.coord.Evaluate(worker, opts)
}

// EvaluateAll flushes, then solves every worker from one merged pull.
func (c *ClusterEvaluator) EvaluateAll(opts core.EvalOptions) ([]core.WorkerEstimate, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.flushLocked(); err != nil {
		return nil, err
	}
	return c.coord.EvaluateAll(opts)
}

// EvaluateSubset flushes, then solves the listed workers from one merged
// pull.
func (c *ClusterEvaluator) EvaluateSubset(workers []int, opts core.EvalOptions) ([]core.WorkerEstimate, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.flushLocked(); err != nil {
		return nil, err
	}
	return c.coord.EvaluateSubset(workers, opts)
}

// MajorityDisagreement flushes, then runs the spammer screen cluster-wide
// (integer tallies summed across slices — exact). On an unreachable
// cluster it returns all zeros and parks the error; the evaluation call
// that follows in every review loop then fails loudly, so a pool can
// never quietly fire nobody forever.
func (c *ClusterEvaluator) MajorityDisagreement() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.flushLocked(); err != nil {
		c.err = err
		return make([]float64, c.coord.Workers())
	}
	rates, err := c.coord.MajorityDisagreement()
	if err != nil {
		c.err = err
		return make([]float64, c.coord.Workers())
	}
	return rates
}

// Snapshot flushes, then materializes every response the cluster holds as
// a Dataset (each slice ships its response log once).
func (c *ClusterEvaluator) Snapshot() (*crowd.Dataset, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.flushLocked(); err != nil {
		return nil, err
	}
	return c.coord.Snapshot()
}
