package dist

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"crowdassess/internal/core"
	"crowdassess/internal/store"
)

// chaosPolicy is tight enough that injected stalls resolve in tens of
// milliseconds, generous enough that a loaded CI runner never trips it on
// healthy traffic.
func chaosPolicy() Policy {
	return Policy{
		DialTimeout:  5 * time.Second,
		RPCTimeout:   500 * time.Millisecond,
		StateTimeout: 5 * time.Second,
		Retries:      2,
		Backoff:      2 * time.Millisecond,
		MaxBackoff:   20 * time.Millisecond,
		JitterSeed:   0xD15C0,
	}
}

// serveWorkerOn starts a fresh worker serving TCP on addr ("" = any free
// loopback port) and returns it with its bound address.
func serveWorkerOn(t *testing.T, addr string, crowdSize int, name string) (*Worker, string) {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	w, err := NewWorker(WorkerOptions{Workers: crowdSize, Shards: 2, Name: name, FrameTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve(l)
	t.Cleanup(func() { w.Close() })
	return w, l.Addr().String()
}

// writeChaosLog persists the chaos event log when CHAOS_LOG names a file —
// the artifact CI uploads on failure.
func writeChaosLog(t *testing.T, lines []string) {
	t.Helper()
	path := os.Getenv("CHAOS_LOG")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Logf("chaos log: %v", err)
		return
	}
	defer f.Close()
	fmt.Fprintf(f, "=== %s\n", t.Name())
	for _, line := range lines {
		fmt.Fprintln(f, line)
	}
}

// chaosSeed returns the strike-schedule seed: fixed by default so every
// PR run replays the same schedule, overridden by CHAOS_SEED for the
// nightly randomized rounds. The chosen seed is logged either way — a
// failing nightly run is replayed by exporting the seed it printed.
// chaosWALDir places the crash-restart test's store under CHAOS_WAL_DIR
// when set, so CI can upload the surviving WAL segments as a failure
// artifact next to the event log. Unset, the usual per-test temp dir.
func chaosWALDir(t *testing.T) string {
	t.Helper()
	base := os.Getenv("CHAOS_WAL_DIR")
	if base == "" {
		return t.TempDir()
	}
	dir := filepath.Join(base, t.Name())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatalf("CHAOS_WAL_DIR: %v", err)
	}
	return dir
}

func chaosSeed(t *testing.T, def uint64) uint64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 0, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED %q: %v", s, err)
		}
		t.Logf("chaos seed %#x (from CHAOS_SEED)", v)
		return v
	}
	t.Logf("chaos seed %#x (default)", def)
	return def
}

// TestChaosBitIdenticalDecisions is the headline contract under fire:
// a replicated TCP cluster ingests a full stream while a seeded chaos
// driver lands delays, mid-frame hangs and resets on one replica of every
// slice — and the final estimates still match the local evaluator bit for
// bit, with no client-visible ingest error.
func TestChaosBitIdenticalDecisions(t *testing.T) {
	const crowdSize, tasks, slices, replicas = 8, 240, 2, 2
	subs := testStream(t, crowdSize, tasks, 97)
	ch := NewChaos(chaosSeed(t, 0xC0FFEE))
	ch.MaxDelay = 2 * time.Millisecond

	groups := make([][]ReplicaSpec, slices)
	for si := 0; si < slices; si++ {
		for ri := 0; ri < replicas; ri++ {
			_, addr := serveWorkerOn(t, "", crowdSize, fmt.Sprintf("s%dr%d", si, ri))
			var conn *Conn
			if ri == 0 {
				// Replica 0 of every slice takes the chaos; replica 1 stays
				// clean, so no slice can lose data.
				nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
				if err != nil {
					t.Fatal(err)
				}
				conn = NewConn(ch.Wrap(nc))
			} else {
				var err error
				if conn, err = DialTCPTimeout(addr, 5*time.Second); err != nil {
					t.Fatal(err)
				}
			}
			groups[si] = append(groups[si], ReplicaSpec{
				Conn: conn,
				Dial: func() (*Conn, error) { return DialTCPTimeout(addr, 5*time.Second) },
			})
		}
	}
	coord, err := NewCluster(crowdSize, groups, chaosPolicy())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })

	stop := make(chan struct{})
	var striker sync.WaitGroup
	striker.Add(1)
	go func() {
		defer striker.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ch.Strike()
			time.Sleep(500 * time.Microsecond)
		}
	}()
	ingestConcurrently(t, coord, subs, 4, 17)
	close(stop)
	striker.Wait()
	ch.HealAll()
	if log := ch.Log(); len(log) < 3 {
		t.Fatalf("chaos landed only %d strikes; the run proved nothing", len(log))
	}
	writeChaosLog(t, ch.Log())

	local := localReference(t, crowdSize, subs)
	if total, err := coord.Responses(); err != nil || total != local.Responses() {
		t.Fatalf("cluster holds %d responses (err %v), want %d", total, err, local.Responses())
	}
	requireEvaluateAllEqual(t, "chaos cluster", coord, local)
}

// TestChaosKillMidIngestAutoReseed kills a replica's process mid-stream:
// ingestion must not surface a client error (the sibling carries the
// slice), the monitor must detect the death and auto-reseed a replacement
// that came up on the same address, and the final decisions must still be
// bit-identical to local.
func TestChaosKillMidIngestAutoReseed(t *testing.T) {
	const crowdSize, tasks = 8, 200
	subs := testStream(t, crowdSize, tasks, 131)

	victim, victimAddr := serveWorkerOn(t, "", crowdSize, "victim")
	_, sibAddr := serveWorkerOn(t, "", crowdSize, "sibling")
	dialV := func() (*Conn, error) { return DialTCPTimeout(victimAddr, 5*time.Second) }
	dialS := func() (*Conn, error) { return DialTCPTimeout(sibAddr, 5*time.Second) }
	cv, err := dialV()
	if err != nil {
		t.Fatal(err)
	}
	cs, err := dialS()
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCluster(crowdSize, [][]ReplicaSpec{{
		{Conn: cv, Dial: dialV},
		{Conn: cs, Dial: dialS},
	}}, chaosPolicy())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })

	var evMu sync.Mutex
	var events []string
	coord.StartMonitor(MonitorOptions{
		Interval:     20 * time.Millisecond,
		SuspectAfter: 1,
		DownAfter:    2,
		ReseedEvery:  40 * time.Millisecond,
		OnEvent: func(e Event) {
			evMu.Lock()
			events = append(events, e.String())
			evMu.Unlock()
		},
	})
	eventLog := func() []string {
		evMu.Lock()
		defer evMu.Unlock()
		return append([]string(nil), events...)
	}
	defer func() { writeChaosLog(t, eventLog()) }()

	// Ingest the first half, then kill the victim and immediately bring a
	// fresh (empty) worker up on its address — the monitor has to reseed
	// it through the full state replay, not adopt it bare.
	half := len(subs) / 2
	batchAll := func(lo, hi int) {
		t.Helper()
		var batch []Response
		for _, s := range subs[lo:hi] {
			batch = append(batch, Response{Worker: s.w, Task: s.t, Answer: s.r})
			if len(batch) == 23 {
				if err := coord.Ingest(batch); err != nil {
					t.Fatalf("ingest must survive the kill, got: %v", err)
				}
				batch = batch[:0]
			}
		}
		if len(batch) > 0 {
			if err := coord.Ingest(batch); err != nil {
				t.Fatalf("ingest must survive the kill, got: %v", err)
			}
		}
	}
	batchAll(0, half)
	if err := victim.Close(); err != nil {
		t.Fatal(err)
	}
	serveWorkerOn(t, victimAddr, crowdSize, "victim-reborn")
	batchAll(half, len(subs))

	// The monitor must walk the slot down and reseed it from the sibling.
	// Wait on the event log, not just Membership(): the monitor publishes
	// the alive/reseed-count state before its OnEvent callback runs, so
	// polling membership alone can observe the reseed a beat before the
	// event lands. The monitor goroutine emits down before reseed, so
	// seeing the reseed event guarantees the down event is logged too.
	deadline := time.Now().Add(10 * time.Second)
	for {
		view := coord.Membership()
		if view[0].State == "alive" && view[0].Reseeds >= 1 &&
			strings.Contains(strings.Join(eventLog(), "\n"), "reseed slice=0 replica=0") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never reseeded; membership %+v\nevents:\n%s", view, strings.Join(eventLog(), "\n"))
		}
		time.Sleep(10 * time.Millisecond)
	}
	log := strings.Join(eventLog(), "\n")
	if !strings.Contains(log, "down slice=0 replica=0") {
		t.Fatalf("no down event observed:\n%s", log)
	}
	if !strings.Contains(log, "reseed slice=0 replica=0") {
		t.Fatalf("no reseed event observed:\n%s", log)
	}

	// Both replicas must now agree (validated pulls) and match local.
	local := localReference(t, crowdSize, subs)
	requireEvaluateAllEqual(t, "post-reseed cluster", coord, local)
	if coord.LiveReplicas(0) != 2 {
		t.Fatalf("slice 0 has %d live replicas after reseed, want 2", coord.LiveReplicas(0))
	}
}

// TestChaosHungWorkerRPCBounded pins the deadline contract: an RPC against
// a replica whose connection hangs mid-frame must fail within the policy's
// timeout budget (plus scheduling slack), never block indefinitely.
func TestChaosHungWorkerRPCBounded(t *testing.T) {
	const crowdSize = 8
	_, addr := serveWorkerOn(t, "", crowdSize, "hung")
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	fc := NewFaultConn(nc)
	policy := chaosPolicy()
	policy.Retries = 0 // measure one attempt, not the retry schedule
	policy.StrictReads = true
	coord, err := NewCluster(crowdSize, [][]ReplicaSpec{{{Conn: NewConn(fc)}}}, policy)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })

	// Truncate the next request a few bytes in: the worker never sees a
	// full frame, the coordinator waits on a reply that cannot come.
	fc.HangWritesAfter(3)
	start := time.Now()
	_, err = coord.Responses()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("pull against a hung replica succeeded")
	}
	if !errors.Is(err, ErrNoReplica) {
		t.Fatalf("want ErrNoReplica after the slot is cut loose, got: %v", err)
	}
	if elapsed > policy.RPCTimeout+2*time.Second {
		t.Fatalf("hung RPC took %v, budget %v", elapsed, policy.RPCTimeout)
	}
}

// TestChaosDegradedReads: when a slice loses its last replica, read-only
// pulls serve the last validated statistics (flagged via Degraded) instead
// of failing — unless the policy opts into StrictReads. Writes never
// degrade.
func TestChaosDegradedReads(t *testing.T) {
	const crowdSize, tasks = 8, 120
	subs := testStream(t, crowdSize, tasks, 53)

	run := func(t *testing.T, strict bool) {
		w, addr := serveWorkerOn(t, "", crowdSize, "solo")
		conn, err := DialTCPTimeout(addr, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		policy := chaosPolicy()
		policy.Retries = 0
		policy.StrictReads = strict
		coord, err := NewCluster(crowdSize, [][]ReplicaSpec{{{Conn: conn}}}, policy)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { coord.Close() })
		var batch []Response
		for _, s := range subs {
			batch = append(batch, Response{Worker: s.w, Task: s.t, Answer: s.r})
		}
		if err := coord.Ingest(batch); err != nil {
			t.Fatal(err)
		}
		// Prime the last-good cache with validated pulls, and keep the
		// pre-death answers for comparison.
		before, err := coord.EvaluateAll(evalOpts())
		if err != nil {
			t.Fatal(err)
		}
		total, err := coord.Responses()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		if strict {
			if _, err := coord.EvaluateAll(evalOpts()); !errors.Is(err, ErrNoReplica) {
				t.Fatalf("strict read on a dead slice: want ErrNoReplica, got %v", err)
			}
			return
		}
		after, err := coord.EvaluateAll(evalOpts())
		if err != nil {
			t.Fatalf("degraded read failed: %v", err)
		}
		compareEstimates(t, "degraded read", after, before)
		if got, err := coord.Responses(); err != nil || got != total {
			t.Fatalf("degraded counts %d (err %v), want %d", got, err, total)
		}
		if deg := coord.Degraded(); len(deg) != 1 || deg[0] != 0 {
			t.Fatalf("Degraded() = %v, want [0]", deg)
		}
		// Writes must keep failing loudly.
		if err := coord.Add(0, 1, 1); !errors.Is(err, ErrNoReplica) {
			t.Fatalf("write to a dead slice: want ErrNoReplica, got %v", err)
		}
	}
	t.Run("serve-stale", func(t *testing.T) { run(t, false) })
	t.Run("strict", func(t *testing.T) { run(t, true) })
}

// TestChaosDetectorLifecycle walks one replica through the full detector
// arc — alive, suspect, down, reseed-failed while its address is still
// partitioned, reseeded once the partition lifts — against a live sibling.
func TestChaosDetectorLifecycle(t *testing.T) {
	const crowdSize = 8
	flaky, victimAddr := serveWorkerOn(t, "", crowdSize, "flaky")
	_, sibAddr := serveWorkerOn(t, "", crowdSize, "steady")

	// The victim's dialer yields partitioned connections until healed.
	var partMu sync.Mutex
	partitioned := true
	dialV := func() (*Conn, error) {
		nc, err := net.DialTimeout("tcp", victimAddr, 5*time.Second)
		if err != nil {
			return nil, err
		}
		partMu.Lock()
		bad := partitioned
		partMu.Unlock()
		if bad {
			fc := NewFaultConn(nc)
			fc.Partition()
			return NewConn(fc), nil
		}
		return NewConn(nc), nil
	}
	cv, err := DialTCPTimeout(victimAddr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := DialTCPTimeout(sibAddr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	policy := chaosPolicy()
	policy.RPCTimeout = 150 * time.Millisecond
	coord, err := NewCluster(crowdSize, [][]ReplicaSpec{{
		{Conn: cv, Dial: dialV},
		{Conn: cs, Dial: func() (*Conn, error) { return DialTCPTimeout(sibAddr, 5*time.Second) }},
	}}, policy)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	// Give the slice some state so the reseed has something to replay.
	subs := testStream(t, crowdSize, 60, 29)
	var batch []Response
	for _, s := range subs {
		batch = append(batch, Response{Worker: s.w, Task: s.t, Answer: s.r})
	}
	if err := coord.Ingest(batch); err != nil {
		t.Fatal(err)
	}

	var evMu sync.Mutex
	var events []string
	seen := func(sub string) bool {
		evMu.Lock()
		defer evMu.Unlock()
		for _, e := range events {
			if strings.Contains(e, sub) {
				return true
			}
		}
		return false
	}
	coord.StartMonitor(MonitorOptions{
		Interval:     25 * time.Millisecond,
		SuspectAfter: 2,
		DownAfter:    4,
		ReseedEvery:  50 * time.Millisecond,
		OnEvent: func(e Event) {
			evMu.Lock()
			events = append(events, e.String())
			evMu.Unlock()
		},
	})
	defer func() {
		evMu.Lock()
		log := append([]string(nil), events...)
		evMu.Unlock()
		writeChaosLog(t, log)
	}()

	// Partition the victim: close its live connection. The dialer keeps
	// handing back partitioned replacements, so probes keep missing and
	// the slot cannot sneak back through a plain redial.
	victim := coord.slices[0].replicas[0]
	victim.mu.Lock()
	victim.conn.Close()
	victim.mu.Unlock()

	wait := func(what, sub string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !seen(sub) {
			if time.Now().After(deadline) {
				evMu.Lock()
				log := strings.Join(events, "\n")
				evMu.Unlock()
				t.Fatalf("never observed %s (%q); events:\n%s", what, sub, log)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	wait("suspicion", "suspect slice=0 replica=0")
	wait("retirement", "down slice=0 replica=0")
	wait("failed reseed while partitioned", "reseed-failed slice=0 replica=0")

	// Lift the partition — and replace the worker with a fresh process on
	// the same address: the old one missed every fan-out while it was cut
	// off, so its state is behind and cannot be adopted in place (restore
	// refuses non-empty evaluators); a restarted, empty crowdd is what the
	// reseed's state replay is for.
	if err := flaky.Close(); err != nil {
		t.Fatal(err)
	}
	serveWorkerOn(t, victimAddr, crowdSize, "flaky-reborn")
	partMu.Lock()
	partitioned = false
	partMu.Unlock()
	wait("recovery", "reseed slice=0 replica=0")

	deadline := time.Now().Add(10 * time.Second)
	for {
		view := coord.Membership()
		if view[0].State == "alive" && view[0].Reseeds >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("membership never recovered: %+v", view)
		}
		time.Sleep(10 * time.Millisecond)
	}
	local := localReference(t, crowdSize, subs)
	requireEvaluateAllEqual(t, "post-lifecycle cluster", coord, local)
}

// TestWorkerCloseNotWedgedByStalledPeer pins satellite contract (a): a
// coordinator that sends a request and then never drains the reply cannot
// wedge Worker.Close — the worker's per-frame write deadline cuts the
// stalled reply loose.
func TestWorkerCloseNotWedgedByStalledPeer(t *testing.T) {
	const crowdSize = 8
	w, err := NewWorker(WorkerOptions{Workers: crowdSize, FrameTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := w.SelfConn()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Request a statistics pull but never read the reply: the in-process
	// pipe has no buffering, so the worker's reply write stalls against us
	// while it holds the serving lock Close needs.
	if err := conn.send(msgPullStats, nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the worker pick the request up
	start := time.Now()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close took %v against a stalled peer", elapsed)
	}
}

func evalOpts() core.EvalOptions { return core.EvalOptions{Confidence: 0.9} }

// TestChaosCrashRestartFromWAL is the durability headline under fire: a
// store-backed worker ingests through a coordinator while a seeded fault
// filesystem cuts the power mid-append — tearing whatever frame was in
// flight — and every crash is followed by a full restart from disk. After
// each restart, every batch that was acknowledged before the crash must
// still be present (zero acked loss), and once the whole stream has landed
// the decisions must be bit-identical to a never-crashed local evaluator.
func TestChaosCrashRestartFromWAL(t *testing.T) {
	const crowdSize, tasks = 8, 240
	seed := chaosSeed(t, 0x77A1C4A5)
	rng := rand.New(rand.NewSource(int64(seed)))
	subs := testStream(t, crowdSize, tasks, 97)
	local := localReference(t, crowdSize, subs)

	dir := chaosWALDir(t)
	ffs := store.NewFaultFS(store.OSFS{})
	openStore := func() *store.Store {
		t.Helper()
		st, err := store.Open(ffs, dir, store.Options{SegmentSize: 1 << 12, Fsync: store.FsyncAlways})
		if err != nil {
			t.Fatalf("reopening the store after a crash: %v", err)
		}
		return st
	}

	acked := make([]bool, len(subs))
	remaining := func() []int {
		var idx []int
		for i, ok := range acked {
			if !ok {
				idx = append(idx, i)
			}
		}
		return idx
	}
	var chaosLog []string
	defer func() { writeChaosLog(t, chaosLog) }()

	crashes := 0
	const wantCrashes = 3
	for round := 0; ; round++ {
		if round > 24 {
			t.Fatalf("no forward progress after %d rounds (%d responses still unacked)", round, len(remaining()))
		}
		st := openStore()
		w, err := NewWorker(WorkerOptions{Workers: crowdSize, Shards: 2, Store: st})
		if err != nil {
			t.Fatal(err)
		}
		recovered, err := w.RecoverFromStore()
		if err != nil {
			t.Fatalf("round %d: recovery from the torn WAL failed: %v", round, err)
		}
		// Zero acked loss: every response acknowledged before any crash must
		// already be in the recovered evaluator, so a duplicate re-add is
		// rejected.
		for i, s := range subs {
			if acked[i] {
				if err := w.Evaluator().Add(s.w, s.t, s.r); err == nil {
					t.Fatalf("round %d: acked response %d (worker %d task %d) lost in the crash", round, i, s.w, s.t)
				}
			}
		}
		conn, err := w.SelfConn()
		if err != nil {
			t.Fatal(err)
		}
		coord, err := NewCoordinator(crowdSize, []*Conn{conn})
		if err != nil {
			t.Fatal(err)
		}

		todo := remaining()
		if len(todo) > 0 && crashes < wantCrashes {
			budget := int64(600 + rng.Intn(2500))
			ffs.SetWriteBudget(budget, store.FaultCrash)
			chaosLog = append(chaosLog, fmt.Sprintf("round %d: recovered %d, %d unacked, crash budget %d bytes",
				round, recovered, len(todo), budget))
		} else {
			chaosLog = append(chaosLog, fmt.Sprintf("round %d: recovered %d, %d unacked, clean run", round, recovered, len(todo)))
		}

		// Re-ingest everything still unacked, in batches. Retrying a whole
		// failed batch is safe here: an append either returns success (the
		// frame is synced — acked) or tears its own frame (truncated on
		// recovery — gone), so an unacked batch never survives partially.
		for lo := 0; lo < len(todo); {
			hi := lo + 16
			if hi > len(todo) {
				hi = len(todo)
			}
			batch := make([]Response, 0, hi-lo)
			for _, i := range todo[lo:hi] {
				s := subs[i]
				batch = append(batch, Response{Worker: s.w, Task: s.t, Answer: s.r})
			}
			if err := coord.Ingest(batch); err != nil {
				chaosLog = append(chaosLog, fmt.Sprintf("round %d: batch at %d refused: %v", round, lo, err))
				break // the store is down (crash or failed log); restart
			}
			for _, i := range todo[lo:hi] {
				acked[i] = true
			}
			lo = hi
		}

		coord.Close()
		w.Close()
		st.Close()
		if ffs.Crashed() {
			crashes++
			ffs.Revive()
		} else {
			ffs.SetWriteBudget(-1, store.FaultNone)
		}
		if len(remaining()) == 0 && crashes >= wantCrashes {
			break
		}
	}
	if crashes < wantCrashes {
		t.Fatalf("only %d crashes landed; the run proved nothing", crashes)
	}

	// Final restart: the store alone must rebuild the full stream with
	// decisions bit-identical to the never-crashed evaluator.
	st := openStore()
	defer st.Close()
	w, err := NewWorker(WorkerOptions{Workers: crowdSize, Shards: 2, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	n, err := w.RecoverFromStore()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(subs) {
		t.Fatalf("final recovery holds %d responses, want %d", n, len(subs))
	}
	want, err := local.EvaluateAll(evalOpts())
	if err != nil {
		t.Fatal(err)
	}
	got, err := w.Evaluator().EvaluateAll(evalOpts())
	if err != nil {
		t.Fatal(err)
	}
	compareEstimates(t, "crash-restart decisions", got, want)
}
