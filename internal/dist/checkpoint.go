package dist

import (
	"fmt"
	"hash/crc64"
	"os"

	"crowdassess/internal/core"
	"crowdassess/internal/crowd"
	"crowdassess/internal/store"
)

// SnapshotVersion versions the checkpoint file format independently of the
// wire protocol: a snapshot written today must reload after protocol bumps
// that leave the persisted layout alone. Readers reject versions they do
// not know instead of guessing at layouts; any layout change — new
// section, reordered field, different checksum — must bump this.
const SnapshotVersion = 1

// snapMagic brands a checkpoint payload ("CrowdChecKPoint").
var snapMagic = [4]byte{'C', 'C', 'K', 'P'}

// snapCRC is the checksum table for snapshot payloads.
var snapCRC = crc64.MakeTable(crc64.ECMA)

// maxNodeName caps the node-identity string a snapshot may carry.
const maxNodeName = 4096

// Snapshot is one node's checkpoint: its identity, the exported sufficient
// statistics, and the full response log behind them. The log is what makes
// restoration exact — replaying it through the ordinary ingest path
// rebuilds per-task response lists, duplicate detection and the spammer
// screen, and the statistics double as an end-to-end integrity check on
// the replay (see core.RestoreStats). A snapshot restores a node
// byte-identically even when ingestion was cut mid-task.
type Snapshot struct {
	// Node is a free-form identity for the node the snapshot was taken
	// from (a listen address, a slice label); diagnostic, not validated.
	Node string
	// Stats is the exported sufficient statistics at the checkpoint cut.
	Stats *core.StatsExport
	// Log is the full response log behind Stats, in the canonical order
	// core.Checkpoint emits. len(Log) always equals Stats.Responses.
	Log []core.LoggedResponse
}

// EncodeSnapshot serializes a snapshot in the versioned canonical form:
// magic, snapshot version, node identity, the CSTA statistics payload
// (EncodeStats — the same bytes the wire protocol ships), the response
// log, then a CRC-64/ECMA of everything before it. Equal snapshots always
// produce equal bytes.
func EncodeSnapshot(s *Snapshot) ([]byte, error) {
	if s.Stats == nil {
		return nil, fmt.Errorf("dist: snapshot carries no statistics")
	}
	if len(s.Node) > maxNodeName {
		return nil, fmt.Errorf("dist: node identity of %d bytes exceeds limit %d", len(s.Node), maxNodeName)
	}
	if len(s.Log) != s.Stats.Responses {
		return nil, fmt.Errorf("dist: snapshot log carries %d responses, statistics claim %d", len(s.Log), s.Stats.Responses)
	}
	stats, err := EncodeStats(s.Stats)
	if err != nil {
		return nil, err
	}
	log := encodeLog(s.Log)
	buf := make([]byte, 0, 32+len(s.Node)+len(stats)+len(log))
	buf = append(buf, snapMagic[:]...)
	buf = appendUvarint(buf, SnapshotVersion)
	buf = appendUvarint(buf, uint64(len(s.Node)))
	buf = append(buf, s.Node...)
	buf = appendUvarint(buf, uint64(len(stats)))
	buf = append(buf, stats...)
	buf = appendUvarint(buf, uint64(len(log)))
	buf = append(buf, log...)
	buf = appendU64le(buf, crc64.Checksum(buf, snapCRC))
	return buf, nil
}

// DecodeSnapshot parses a snapshot payload, rejecting truncation, bad
// magic, unknown versions, checksum mismatches and any inconsistency
// between the statistics and the log — a corrupted checkpoint yields a
// clear error, never a silently skewed restore.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("%w: %d bytes cannot hold a snapshot", ErrCodec, len(b))
	}
	body, sum := b[:len(b)-8], b[len(b)-8:]
	r := &wireReader{buf: sum}
	want, err := r.u64le("snapshot checksum")
	if err != nil {
		return nil, err
	}
	if got := crc64.Checksum(body, snapCRC); got != want {
		return nil, fmt.Errorf("%w: snapshot checksum %016x does not match payload (%016x) — corrupted or truncated file", ErrCodec, want, got)
	}
	r = &wireReader{buf: body}
	magic, err := r.bytes(4, "snapshot magic")
	if err != nil {
		return nil, err
	}
	if [4]byte(magic) != snapMagic {
		return nil, fmt.Errorf("%w: bad snapshot magic %q", ErrCodec, magic)
	}
	version, err := r.uvarint("snapshot version")
	if err != nil {
		return nil, err
	}
	if version != SnapshotVersion {
		return nil, fmt.Errorf("%w: unsupported snapshot version %d (have %d)", ErrCodec, version, SnapshotVersion)
	}
	n, err := r.count("node identity length", maxNodeName)
	if err != nil {
		return nil, err
	}
	name, err := r.bytes(n, "node identity")
	if err != nil {
		return nil, err
	}
	s := &Snapshot{Node: string(name)}
	n, err = r.count("statistics payload length", uint64(r.rest()))
	if err != nil {
		return nil, err
	}
	stats, err := r.bytes(n, "statistics payload")
	if err != nil {
		return nil, err
	}
	if s.Stats, err = DecodeStats(stats); err != nil {
		return nil, err
	}
	n, err = r.count("log payload length", uint64(r.rest()))
	if err != nil {
		return nil, err
	}
	log, err := r.bytes(n, "log payload")
	if err != nil {
		return nil, err
	}
	if s.Log, err = decodeLog(log); err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	if len(s.Log) != s.Stats.Responses {
		return nil, fmt.Errorf("%w: snapshot log carries %d responses, statistics claim %d", ErrCodec, len(s.Log), s.Stats.Responses)
	}
	return s, nil
}

// encodeLog serializes a response log in the ingest-record layout.
func encodeLog(log []core.LoggedResponse) []byte {
	buf := make([]byte, 0, 4+4*len(log))
	buf = appendUvarint(buf, uint64(len(log)))
	for _, lr := range log {
		buf = appendUvarint(buf, uint64(lr.Worker))
		buf = appendUvarint(buf, uint64(lr.Task))
		buf = appendUvarint(buf, uint64(lr.Answer))
	}
	return buf
}

func decodeLog(b []byte) ([]core.LoggedResponse, error) {
	r := &wireReader{buf: b}
	// Each record takes at least three bytes.
	count, err := r.count("log length", uint64(r.rest())/3)
	if err != nil {
		return nil, err
	}
	log := make([]core.LoggedResponse, count)
	for i := range log {
		if log[i].Worker, err = r.count("log worker", maxStatsWorkers); err != nil {
			return nil, err
		}
		if log[i].Task, err = r.count("log task", maxCounter); err != nil {
			return nil, err
		}
		answer, err := r.count("log answer", maxCounter)
		if err != nil {
			return nil, err
		}
		log[i].Answer = crowd.Response(answer)
	}
	return log, r.done()
}

// WriteSnapshot atomically and durably persists a snapshot: the encoding
// is written to a temporary file in the target directory, synced, renamed
// into place, and the parent directory is synced too — rename alone pins
// the bytes but not the directory entry, so without that last fsync a
// power cut could resurface the old checkpoint (or none at all) under the
// published name. A crash mid-write never truncates or corrupts an
// existing checkpoint.
func WriteSnapshot(path string, s *Snapshot) error {
	return WriteSnapshotFS(store.OSFS{}, path, s)
}

// WriteSnapshotFS is WriteSnapshot against an injectable filesystem, which
// is how tests pin the durability sequence (fault injection on the
// directory sync) and how non-POSIX backends persist checkpoints.
func WriteSnapshotFS(fsys store.FS, path string, s *Snapshot) error {
	payload, err := EncodeSnapshot(s)
	if err != nil {
		return err
	}
	if err := store.WriteFileAtomic(fsys, path, payload, 0o644); err != nil {
		return fmt.Errorf("dist: publishing checkpoint %s: %w", path, err)
	}
	return nil
}

// ReadSnapshot loads and validates a snapshot file written by
// WriteSnapshot (or pulled from a node by Coordinator.CheckpointAll).
func ReadSnapshot(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := DecodeSnapshot(b)
	if err != nil {
		return nil, fmt.Errorf("dist: checkpoint %s: %w", path, err)
	}
	return s, nil
}
