// Package dist spans the streaming evaluator across processes and
// machines. Workers each own a core.ShardedIncremental over a disjoint
// slice of the task space and ingest responses locally; a coordinator
// pulls per-worker statistics exports over a small framed protocol, merges
// them through the same addFrom reducer the sharded evaluator uses in
// process, and evaluates once — bit-identical to a single local evaluator
// fed every response. The replicate-sweep protocol rides the same
// connections: the coordinator partitions replicate indices across workers
// deterministically and reassembles their per-replicate vectors in global
// order, so distributed sweeps are byte-identical to local ones too.
//
// The wire format is a versioned, deterministic binary codec: the same
// statistics always encode to the same bytes, decoding never panics on
// malformed input, and cross-version peers fail the handshake instead of
// misreading frames.
package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"crowdassess/internal/core"
)

// ProtocolVersion is negotiated in the handshake; peers with different
// versions refuse to talk rather than guess at frame layouts.
//
// Version history:
//
//	1 — hello/ingest/pullStats/pullTotal/sweep
//	2 — adds pullCounts, pullDis (spammer-screen tallies), pullSnap and
//	    restore (checkpoint state transfer) for fault-tolerant pools
//	3 — adds ping/pong heartbeats for the failure detector; the hello now
//	    carries the node's identity (so membership views name real nodes)
//	    and its incarnation, so a reconnect can tell a network blip (same
//	    process, state intact) from a restart (state lost, needs reseed)
//	4 — adds pullCompact/compact/restoreCompact: O(delta) compact
//	    checkpoint transfer (statistics + answer bitsets, no response log)
//	    for the WAL storage engine's snapshot and reseed paths
const ProtocolVersion = 4

// statsCodecVersion versions the statistics payload independently of the
// protocol, so exports persisted to disk stay readable across protocol
// bumps that leave the statistics layout alone.
const statsCodecVersion = 1

// statsMagic brands a statistics payload ("CrowdSTats").
var statsMagic = [4]byte{'C', 'S', 'T', 'A'}

// Decode-side sanity caps. They bound what a malformed or hostile frame
// can make the decoder allocate; well-formed traffic never hits them.
const (
	// maxStatsWorkers caps the crowd size a statistics payload may claim.
	maxStatsWorkers = 1 << 20
	// maxCounter caps any single decoded counter or total.
	maxCounter = 1 << 52
)

// ErrCodec tags every decode failure, so transport code can distinguish
// malformed frames from I/O errors.
var ErrCodec = errors.New("dist: malformed payload")

// wireReader walks a payload with explicit bounds checking; every
// primitive returns an error instead of panicking on truncated input.
type wireReader struct {
	buf []byte
	off int
}

func (r *wireReader) fail(what string) error {
	return fmt.Errorf("%w: %s at offset %d", ErrCodec, what, r.off)
}

func (r *wireReader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, r.fail("truncated or overflowing varint " + what)
	}
	// Canonical payloads use minimal varints; an n-byte encoding of a value
	// that fits n-1 bytes would give one state two encodings.
	if n > 1 && v>>(7*(n-1)) == 0 {
		return 0, r.fail("overlong varint " + what)
	}
	r.off += n
	return v, nil
}

// count reads a uvarint bounded by max; use for any value that sizes an
// allocation or indexes a slice.
func (r *wireReader) count(what string, max uint64) (int, error) {
	v, err := r.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > max {
		return 0, fmt.Errorf("%w: %s %d exceeds limit %d", ErrCodec, what, v, max)
	}
	return int(v), nil
}

func (r *wireReader) byte(what string) (byte, error) {
	if r.off >= len(r.buf) {
		return 0, r.fail("truncated byte " + what)
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *wireReader) bytes(n int, what string) ([]byte, error) {
	if n < 0 || r.off+n > len(r.buf) || r.off+n < r.off {
		return nil, r.fail("truncated bytes " + what)
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *wireReader) u64le(what string) (uint64, error) {
	b, err := r.bytes(8, what)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// rest returns how many bytes remain unread.
func (r *wireReader) rest() int { return len(r.buf) - r.off }

// done errors when payload bytes remain: a canonical encoding has no
// trailing garbage.
func (r *wireReader) done() error {
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCodec, len(r.buf)-r.off)
	}
	return nil
}

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendU64le(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// EncodeStats serializes a statistics export in the versioned canonical
// form: magic, codec version, dimensions, the strict upper triangle of the
// agree/common counters (varint-packed — the symmetry of the counters is a
// property of the format, not a promise of the sender), then each worker's
// attendance bitset. Equal exports always produce equal bytes.
func EncodeStats(e *core.StatsExport) ([]byte, error) {
	w := e.Workers
	if w < 0 || len(e.Agree) != w || len(e.Common) != w || len(e.Responded) != w {
		return nil, fmt.Errorf("dist: export rows (%d, %d, %d) do not match %d workers",
			len(e.Agree), len(e.Common), len(e.Responded), w)
	}
	if e.Tasks < 0 || e.Responses < 0 {
		return nil, fmt.Errorf("dist: export has negative totals (tasks %d, responses %d)", e.Tasks, e.Responses)
	}
	// Rough capacity: header + 2 varints per pair + bitset words.
	buf := make([]byte, 0, 16+w*w+9*w)
	buf = append(buf, statsMagic[:]...)
	buf = appendUvarint(buf, statsCodecVersion)
	buf = appendUvarint(buf, uint64(w))
	buf = appendUvarint(buf, uint64(e.Tasks))
	buf = appendUvarint(buf, uint64(e.Responses))
	for i := 0; i < w; i++ {
		if len(e.Agree[i]) != w || len(e.Common[i]) != w {
			return nil, fmt.Errorf("dist: export counter row %d has length (%d, %d), want %d",
				i, len(e.Agree[i]), len(e.Common[i]), w)
		}
		for j := i + 1; j < w; j++ {
			a, c := e.Agree[i][j], e.Common[i][j]
			if a < 0 || c < 0 || a > c {
				return nil, fmt.Errorf("dist: export counter (%d,%d) is invalid (agree %d, common %d)", i, j, a, c)
			}
			buf = appendUvarint(buf, uint64(a))
			buf = appendUvarint(buf, uint64(c))
		}
	}
	for i := 0; i < w; i++ {
		words := e.Responded[i]
		// Canonical form drops trailing zero words, so the same attendance
		// always encodes identically regardless of bitset capacity history.
		n := len(words)
		for n > 0 && words[n-1] == 0 {
			n--
		}
		buf = appendUvarint(buf, uint64(n))
		for _, word := range words[:n] {
			buf = appendU64le(buf, word)
		}
	}
	return buf, nil
}

// DecodeStats parses a statistics payload. Malformed input of any kind —
// truncation, bad magic, unknown version, absurd dimensions, inconsistent
// counters, trailing bytes — yields an error, never a panic. The returned
// export owns its memory.
func DecodeStats(b []byte) (*core.StatsExport, error) {
	r := &wireReader{buf: b}
	magic, err := r.bytes(4, "magic")
	if err != nil {
		return nil, err
	}
	if [4]byte(magic) != statsMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCodec, magic)
	}
	version, err := r.uvarint("codec version")
	if err != nil {
		return nil, err
	}
	if version != statsCodecVersion {
		return nil, fmt.Errorf("%w: unsupported stats codec version %d (have %d)", ErrCodec, version, statsCodecVersion)
	}
	workers, err := r.count("worker count", maxStatsWorkers)
	if err != nil {
		return nil, err
	}
	tasks, err := r.count("task count", maxCounter)
	if err != nil {
		return nil, err
	}
	responses, err := r.count("response count", maxCounter)
	if err != nil {
		return nil, err
	}
	// Each of the workers*(workers-1)/2 pairs takes at least two bytes, so
	// a payload claiming more workers than its length supports is rejected
	// before anything quadratic is allocated.
	if pairs := workers * (workers - 1) / 2; r.rest() < 2*pairs {
		return nil, fmt.Errorf("%w: %d bytes cannot hold %d counter pairs", ErrCodec, r.rest(), pairs)
	}
	e := &core.StatsExport{
		Workers:   workers,
		Tasks:     tasks,
		Responses: responses,
		Agree:     make([][]int, workers),
		Common:    make([][]int, workers),
		Responded: make([][]uint64, workers),
	}
	// Counter rows are allocated only as their wire bytes are consumed:
	// row i costs O(workers) memory but getting past it costs at least
	// 2·(workers−i−1) payload bytes, so a truncated or hostile frame can
	// never make the decoder allocate much more than ~8× the bytes it
	// actually carries (the varint-to-int expansion), instead of the full
	// claimed workers² up front.
	for i := 0; i < workers; i++ {
		e.Agree[i] = make([]int, workers)
		e.Common[i] = make([]int, workers)
		for j := i + 1; j < workers; j++ {
			a, err := r.count("agree counter", maxCounter)
			if err != nil {
				return nil, err
			}
			c, err := r.count("common counter", maxCounter)
			if err != nil {
				return nil, err
			}
			if a > c {
				return nil, fmt.Errorf("%w: agree[%d][%d]=%d exceeds common=%d", ErrCodec, i, j, a, c)
			}
			e.Agree[i][j], e.Common[i][j] = a, c
		}
	}
	// Mirror the upper triangle now that every row exists; the wire format
	// carries no lower triangle, so symmetry is structural.
	for i := 0; i < workers; i++ {
		for j := i + 1; j < workers; j++ {
			e.Agree[j][i] = e.Agree[i][j]
			e.Common[j][i] = e.Common[i][j]
		}
	}
	for i := 0; i < workers; i++ {
		words, err := r.count("bitset length", uint64(r.rest()/8))
		if err != nil {
			return nil, err
		}
		e.Responded[i] = make([]uint64, words)
		for k := 0; k < words; k++ {
			if e.Responded[i][k], err = r.u64le("bitset word"); err != nil {
				return nil, err
			}
		}
		// The canonical form has no trailing zero words; admitting them
		// would give one attendance set two encodings.
		if words > 0 && e.Responded[i][words-1] == 0 {
			return nil, fmt.Errorf("%w: non-canonical bitset for worker %d (trailing zero word)", ErrCodec, i)
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return e, nil
}

// helloMsg is the handshake in both directions: the coordinator announces
// its protocol version and crowd size; the worker echoes its own (plus its
// shard count and identity) or refuses.
type helloMsg struct {
	Version int
	Workers int
	Shards  int
	// Name is the peer's free-form identity (a listen address, a replica
	// label). Diagnostic: it labels membership views, never routing.
	Name string
	// Instance is the worker's incarnation: drawn fresh each process start,
	// stable for the process's life. A reconnect that lands on a different
	// incarnation than before reached a restarted (state-empty) node — it
	// must be reseeded, never silently retried against. Zero means the peer
	// does not report one.
	Instance uint64
}

func encodeHello(m helloMsg) []byte {
	name := m.Name
	if len(name) > maxNodeName {
		name = name[:maxNodeName]
	}
	buf := make([]byte, 0, 32+len(name))
	buf = appendUvarint(buf, uint64(m.Version))
	buf = appendUvarint(buf, uint64(m.Workers))
	buf = appendUvarint(buf, uint64(m.Shards))
	buf = appendUvarint(buf, uint64(len(name)))
	buf = append(buf, name...)
	buf = appendU64le(buf, m.Instance)
	return buf
}

func decodeHello(b []byte) (helloMsg, error) {
	r := &wireReader{buf: b}
	var m helloMsg
	var err error
	if m.Version, err = r.count("protocol version", maxCounter); err != nil {
		return m, err
	}
	if m.Workers, err = r.count("crowd size", maxStatsWorkers); err != nil {
		return m, err
	}
	if m.Shards, err = r.count("shard count", maxStatsWorkers); err != nil {
		return m, err
	}
	n, err := r.count("node identity length", maxNodeName)
	if err != nil {
		return m, err
	}
	name, err := r.bytes(n, "node identity")
	if err != nil {
		return m, err
	}
	m.Name = string(name)
	if m.Instance, err = r.u64le("node incarnation"); err != nil {
		return m, err
	}
	return m, r.done()
}

// responseRec is one routed submission inside an ingest batch.
type responseRec struct {
	Worker int
	Task   int
	Answer int
}

func encodeIngest(batch []responseRec) []byte {
	buf := make([]byte, 0, 4+4*len(batch))
	buf = appendUvarint(buf, uint64(len(batch)))
	for _, s := range batch {
		buf = appendUvarint(buf, uint64(s.Worker))
		buf = appendUvarint(buf, uint64(s.Task))
		buf = appendUvarint(buf, uint64(s.Answer))
	}
	return buf
}

func decodeIngest(b []byte) ([]responseRec, error) {
	r := &wireReader{buf: b}
	// Each record takes at least three bytes.
	count, err := r.count("ingest count", uint64(r.rest())/3)
	if err != nil {
		return nil, err
	}
	batch := make([]responseRec, count)
	for i := range batch {
		if batch[i].Worker, err = r.count("response worker", maxStatsWorkers); err != nil {
			return nil, err
		}
		if batch[i].Task, err = r.count("response task", maxCounter); err != nil {
			return nil, err
		}
		if batch[i].Answer, err = r.count("response answer", maxCounter); err != nil {
			return nil, err
		}
	}
	return batch, r.done()
}

// countsMsg is a node's cheap running totals: the task-index horizon and
// response count. A few bytes per node, so streaming reviews can poll it
// every batch without paying for a statistics pull.
type countsMsg struct {
	Tasks     int
	Responses int
}

func encodeCounts(m countsMsg) []byte {
	buf := make([]byte, 0, 12)
	buf = appendUvarint(buf, uint64(m.Tasks))
	buf = appendUvarint(buf, uint64(m.Responses))
	return buf
}

func decodeCounts(b []byte) (countsMsg, error) {
	r := &wireReader{buf: b}
	var m countsMsg
	var err error
	if m.Tasks, err = r.count("task count", maxCounter); err != nil {
		return m, err
	}
	if m.Responses, err = r.count("response count", maxCounter); err != nil {
		return m, err
	}
	return m, r.done()
}

// encodeTallies serializes the spammer-screen tallies: per worker, tasks
// attempted and tasks disagreeing with the majority. The tallies are
// integers and additive across disjoint task sets, so the coordinator sums
// them per node and the cluster-wide screen is exact.
func encodeTallies(attempted, disagree []int) []byte {
	buf := make([]byte, 0, 4+4*len(attempted))
	buf = appendUvarint(buf, uint64(len(attempted)))
	for i := range attempted {
		buf = appendUvarint(buf, uint64(attempted[i]))
		buf = appendUvarint(buf, uint64(disagree[i]))
	}
	return buf
}

func decodeTallies(b []byte) (attempted, disagree []int, err error) {
	r := &wireReader{buf: b}
	// Each worker's pair takes at least two bytes.
	workers, err := r.count("tally worker count", uint64(r.rest())/2)
	if err != nil {
		return nil, nil, err
	}
	attempted = make([]int, workers)
	disagree = make([]int, workers)
	for i := 0; i < workers; i++ {
		if attempted[i], err = r.count("attempted tally", maxCounter); err != nil {
			return nil, nil, err
		}
		if disagree[i], err = r.count("disagree tally", maxCounter); err != nil {
			return nil, nil, err
		}
		if disagree[i] > attempted[i] {
			return nil, nil, fmt.Errorf("%w: worker %d disagreed on %d of %d attempted tasks", ErrCodec, i, disagree[i], attempted[i])
		}
	}
	return attempted, disagree, r.done()
}

func encodeTotal(total int) []byte {
	return appendUvarint(nil, uint64(total))
}

func decodeTotal(b []byte) (int, error) {
	r := &wireReader{buf: b}
	total, err := r.count("response total", maxCounter)
	if err != nil {
		return 0, err
	}
	return total, r.done()
}

// sweepMsg asks a worker to compute the global replicate indices [Lo, Hi)
// of a sweep.
type sweepMsg struct {
	Kernel     string
	Workers    int
	Tasks      int
	Density    float64
	Replicates int
	Seed       int64
	Lo, Hi     int
	Parallel   bool
}

const maxKernelName = 256

func encodeSweep(m sweepMsg) []byte {
	buf := make([]byte, 0, 64)
	buf = appendUvarint(buf, uint64(len(m.Kernel)))
	buf = append(buf, m.Kernel...)
	buf = appendUvarint(buf, uint64(m.Workers))
	buf = appendUvarint(buf, uint64(m.Tasks))
	buf = appendU64le(buf, math.Float64bits(m.Density))
	buf = appendUvarint(buf, uint64(m.Replicates))
	buf = appendU64le(buf, uint64(m.Seed))
	buf = appendUvarint(buf, uint64(m.Lo))
	buf = appendUvarint(buf, uint64(m.Hi))
	if m.Parallel {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

func decodeSweep(b []byte) (sweepMsg, error) {
	r := &wireReader{buf: b}
	var m sweepMsg
	n, err := r.count("kernel name length", maxKernelName)
	if err != nil {
		return m, err
	}
	name, err := r.bytes(n, "kernel name")
	if err != nil {
		return m, err
	}
	m.Kernel = string(name)
	if m.Workers, err = r.count("sweep workers", maxStatsWorkers); err != nil {
		return m, err
	}
	if m.Tasks, err = r.count("sweep tasks", maxCounter); err != nil {
		return m, err
	}
	bits, err := r.u64le("sweep density")
	if err != nil {
		return m, err
	}
	m.Density = math.Float64frombits(bits)
	if m.Replicates, err = r.count("sweep replicates", maxCounter); err != nil {
		return m, err
	}
	seedBits, err := r.u64le("sweep seed")
	if err != nil {
		return m, err
	}
	m.Seed = int64(seedBits)
	if m.Lo, err = r.count("sweep lo", maxCounter); err != nil {
		return m, err
	}
	if m.Hi, err = r.count("sweep hi", maxCounter); err != nil {
		return m, err
	}
	p, err := r.byte("sweep parallel flag")
	if err != nil {
		return m, err
	}
	m.Parallel = p != 0
	return m, r.done()
}

func encodeVectors(vectors [][]float64) []byte {
	size := 4
	for _, v := range vectors {
		size += 4 + 8*len(v)
	}
	buf := make([]byte, 0, size)
	buf = appendUvarint(buf, uint64(len(vectors)))
	for _, v := range vectors {
		buf = appendUvarint(buf, uint64(len(v)))
		for _, x := range v {
			buf = appendU64le(buf, math.Float64bits(x))
		}
	}
	return buf
}

func decodeVectors(b []byte) ([][]float64, error) {
	r := &wireReader{buf: b}
	count, err := r.count("vector count", uint64(r.rest()))
	if err != nil {
		return nil, err
	}
	vectors := make([][]float64, count)
	for i := range vectors {
		n, err := r.count("vector length", uint64(r.rest()/8))
		if err != nil {
			return nil, err
		}
		vectors[i] = make([]float64, n)
		for k := 0; k < n; k++ {
			bits, err := r.u64le("vector element")
			if err != nil {
				return nil, err
			}
			vectors[i][k] = math.Float64frombits(bits)
		}
	}
	return vectors, r.done()
}
