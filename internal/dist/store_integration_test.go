package dist

import (
	"encoding/binary"
	"errors"
	"hash/crc64"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"crowdassess/internal/core"
	"crowdassess/internal/store"
)

// This file exercises the durable storage engine end to end through the
// distributed layer: the compact checkpoint codec, worker-side WAL
// journaling and recovery, coordinator-side slice stores, the monitor's
// reseed-from-store path, and the checkpoint-generation fallback.

// openTestStore opens a store over the OS filesystem with a small segment
// size so checkpoint truncation is observable in a short test.
func openTestStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(store.OSFS{}, dir, store.Options{SegmentSize: 2048, Fsync: store.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// compactOf ingests a stream into a fresh Incremental and cuts a compact
// checkpoint.
func compactOf(t *testing.T, workers int, subs []submission) *core.CompactState {
	t.Helper()
	return localReference(t, workers, subs).CompactCheckpoint()
}

// TestCompactRoundTrip: encode∘decode∘restore rebuilds an evaluator whose
// decisions are bit-identical, and the encoding is canonical — equal state
// always yields equal bytes, including across the single-lock and sharded
// evaluators. Canonicality is what lets the coordinator byte-compare
// replicas' compact pulls as a divergence check.
func TestCompactRoundTrip(t *testing.T) {
	const workers, tasks = 7, 120
	subs := testStream(t, workers, tasks, 211)
	local := localReference(t, workers, subs)

	payload, err := EncodeCompact(local.CompactCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	again, err := EncodeCompact(local.CompactCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != string(again) {
		t.Fatal("equal state encoded to different bytes")
	}

	// The sharded evaluator holding the same stream encodes identically.
	sharded, err := core.NewShardedIncremental(workers, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range subs {
		if err := sharded.Add(s.w, s.t, s.r); err != nil {
			t.Fatal(err)
		}
	}
	fromSharded, err := EncodeCompact(sharded.CompactCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != string(fromSharded) {
		t.Fatal("sharded evaluator's compact payload differs from the single-lock one")
	}

	cs, err := DecodeCompact(payload)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := core.NewIncremental(workers)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreCompact(cs); err != nil {
		t.Fatal(err)
	}
	opts := core.EvalOptions{Confidence: 0.9}
	want, err := local.EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	compareEstimates(t, "compact round trip", got, want)
}

// TestCompactMalformed: every truncation and every single-byte corruption
// of a valid compact payload must be rejected — the CRC trailer covers the
// whole frame — and a non-canonical bitset (trailing zero word) fails even
// with a correct CRC.
func TestCompactMalformed(t *testing.T) {
	const workers, tasks = 4, 40
	subs := testStream(t, workers, tasks, 19)
	cs := compactOf(t, workers, subs)
	valid, err := EncodeCompact(cs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(valid); i++ {
		if _, err := DecodeCompact(valid[:i]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", i)
		}
	}
	for i := 0; i < len(valid); i++ {
		b := append([]byte(nil), valid...)
		b[i] ^= 0xFF
		if _, err := DecodeCompact(b); err == nil {
			t.Fatalf("corruption at byte %d decoded successfully", i)
		}
	}

	// Re-encode by hand with a padded (non-canonical) last bitset and a
	// recomputed CRC: framing is intact, canonicality must still reject.
	stats, err := EncodeStats(cs.Stats)
	if err != nil {
		t.Fatal(err)
	}
	buf := append([]byte(nil), compactMagic[:]...)
	buf = appendUvarint(buf, compactVersion)
	buf = appendUvarint(buf, uint64(len(stats)))
	buf = append(buf, stats...)
	for i, words := range cs.Answers {
		n := len(words)
		for n > 0 && words[n-1] == 0 {
			n--
		}
		pad := 0
		if i == len(cs.Answers)-1 {
			pad = 1
		}
		buf = appendUvarint(buf, uint64(n+pad))
		for _, word := range words[:n] {
			buf = appendU64le(buf, word)
		}
		for k := 0; k < pad; k++ {
			buf = appendU64le(buf, 0)
		}
	}
	var crc [8]byte
	binary.LittleEndian.PutUint64(crc[:], checksumCompact(buf))
	buf = append(buf, crc[:]...)
	if _, err := DecodeCompact(buf); err == nil {
		t.Fatal("padded answer bitset decoded successfully")
	} else if !strings.Contains(err.Error(), "trailing zero") {
		t.Fatalf("padded bitset rejected for the wrong reason: %v", err)
	}
}

// TestWorkerStoreLifecycle: a store-backed worker journals every acked
// ingest, CheckpointCompact truncates the journal behind an O(delta)
// snapshot, and a restart — new store handle, new worker, RecoverFromStore
// — rebuilds the evaluator with every response present and decisions
// bit-identical to the never-restarted local evaluator.
func TestWorkerStoreLifecycle(t *testing.T) {
	const crowdSize, tasks = 8, 200
	subs := testStream(t, crowdSize, tasks, 307)
	dir := t.TempDir()

	st := openTestStore(t, dir)
	w, err := NewWorker(WorkerOptions{Workers: crowdSize, Shards: 2, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := w.SelfConn()
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(crowdSize, []*Conn{conn})
	if err != nil {
		t.Fatal(err)
	}

	half := len(subs) / 2
	ingestRange := func(c *Coordinator, lo, hi int) {
		t.Helper()
		for lo < hi {
			end := lo + 16
			if end > hi {
				end = hi
			}
			batch := make([]Response, 0, end-lo)
			for _, s := range subs[lo:end] {
				batch = append(batch, Response{Worker: s.w, Task: s.t, Answer: s.r})
			}
			if err := c.Ingest(batch); err != nil {
				t.Fatal(err)
			}
			lo = end
		}
	}
	ingestRange(coord, 0, half)
	if err := w.CheckpointCompact(); err != nil {
		t.Fatal(err)
	}
	if first := st.Log.FirstSeq(); first <= 1 {
		t.Fatalf("journal still starts at seq %d after checkpoint; truncation never happened", first)
	}
	ingestRange(coord, half, len(subs))

	coord.Close()
	w.Close()
	st.Close()

	// Restart from disk.
	st2 := openTestStore(t, dir)
	defer st2.Close()
	w2, err := NewWorker(WorkerOptions{Workers: crowdSize, Shards: 2, Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	n, err := w2.RecoverFromStore()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(subs) {
		t.Fatalf("recovered %d responses, want %d", n, len(subs))
	}
	// Every acked response must be present: a duplicate re-add is rejected.
	for i, s := range subs {
		if err := w2.Evaluator().Add(s.w, s.t, s.r); err == nil {
			t.Fatalf("response %d (worker %d task %d) was lost across the restart", i, s.w, s.t)
		}
	}
	local := localReference(t, crowdSize, subs)
	opts := core.EvalOptions{Confidence: 0.9}
	want, err := local.EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := w2.Evaluator().EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	compareEstimates(t, "worker restart", got, want)

	// The recovered worker checkpoints again: the snapshot covers the full
	// journal, so recovery state keeps rolling forward.
	if err := w2.CheckpointCompact(); err != nil {
		t.Fatal(err)
	}
	snap, ok, err := st2.Snapshots.Latest()
	if err != nil || !ok {
		t.Fatalf("no snapshot after re-checkpoint (ok %v, err %v)", ok, err)
	}
	if snap.Seq != st2.Log.LastSeq() {
		t.Fatalf("snapshot cut at seq %d, journal at %d", snap.Seq, st2.Log.LastSeq())
	}
}

// TestCoordinatorSliceStoreRebuild: with a store attached per task slice,
// the coordinator journals every acked fan-out, CheckpointCompactAll cuts
// O(delta) snapshots and truncates the journals, and a slice whose only
// replica died is rebuilt onto a fresh empty worker from disk alone —
// snapshot push plus WAL tail re-ingest — with zero acked loss and
// bit-identical decisions. The replacement worker carries its own store,
// pinning that a wire-seeded node persists the seed before acking.
func TestCoordinatorSliceStoreRebuild(t *testing.T) {
	const crowdSize, tasks = 8, 220
	subs := testStream(t, crowdSize, tasks, 401)

	makeWorker := func(st *store.Store) (*Worker, *Conn) {
		t.Helper()
		w, err := NewWorker(WorkerOptions{Workers: crowdSize, Shards: 2, Store: st})
		if err != nil {
			t.Fatal(err)
		}
		conn, err := w.SelfConn()
		if err != nil {
			t.Fatal(err)
		}
		return w, conn
	}
	w0, c0 := makeWorker(nil)
	w1, c1 := makeWorker(nil)
	defer w1.Close()
	coord, err := NewCoordinator(crowdSize, []*Conn{c0, c1})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	st0 := openTestStore(t, t.TempDir())
	defer st0.Close()
	st1 := openTestStore(t, t.TempDir())
	defer st1.Close()
	if err := coord.AttachSliceStores([]*store.Store{st0, st1}); err != nil {
		t.Fatal(err)
	}
	if err := coord.AttachSliceStores([]*store.Store{st0}); err == nil {
		t.Fatal("store count mismatch accepted")
	}

	half := len(subs) / 2
	ingestRange := func(lo, hi int) {
		t.Helper()
		for lo < hi {
			end := lo + 16
			if end > hi {
				end = hi
			}
			batch := make([]Response, 0, end-lo)
			for _, s := range subs[lo:end] {
				batch = append(batch, Response{Worker: s.w, Task: s.t, Answer: s.r})
			}
			if err := coord.Ingest(batch); err != nil {
				t.Fatal(err)
			}
			lo = end
		}
	}
	ingestRange(0, half)
	if err := coord.CheckpointCompactAll(); err != nil {
		t.Fatal(err)
	}
	if f0, f1 := st0.Log.FirstSeq(), st1.Log.FirstSeq(); f0 <= 1 && f1 <= 1 {
		t.Fatalf("neither slice journal was truncated (first seqs %d, %d)", f0, f1)
	}
	ingestRange(half, len(subs))

	// With a live replica the store restore must refuse and point at
	// RestoreNode.
	_, probe := makeWorker(nil)
	if err := coord.RestoreNodeFromStore(0, probe); err == nil {
		t.Fatal("RestoreNodeFromStore accepted a slice with live replicas")
	} else if !strings.Contains(err.Error(), "live replicas") {
		t.Fatalf("wrong refusal: %v", err)
	}

	// Kill slice 0's only replica; the next RPC walks it down.
	w0.Close()
	if _, err := coord.Responses(); err == nil {
		t.Fatal("counts succeeded with a dead slice")
	}

	// Rebuild from the slice store onto a fresh, empty, store-backed worker.
	dirB := t.TempDir()
	stB := openTestStore(t, dirB)
	wB, connB := makeWorker(stB)
	if err := coord.RestoreNodeFromStore(0, connB); err != nil {
		t.Fatal(err)
	}
	total, err := coord.Responses()
	if err != nil {
		t.Fatal(err)
	}
	if total != len(subs) {
		t.Fatalf("cluster holds %d responses after rebuild, want %d", total, len(subs))
	}
	local := localReference(t, crowdSize, subs)
	requireEvaluateAllEqual(t, "rebuild from slice store", coord, local)

	// The wire-seeded replacement persisted its seed: its own store alone
	// rebuilds the same slice state after it too dies.
	sliceCount := wB.Evaluator().Responses()
	wB.Close()
	stB.Close()
	stB2 := openTestStore(t, dirB)
	defer stB2.Close()
	wB2, err := NewWorker(WorkerOptions{Workers: crowdSize, Shards: 2, Store: stB2})
	if err != nil {
		t.Fatal(err)
	}
	defer wB2.Close()
	n, err := wB2.RecoverFromStore()
	if err != nil {
		t.Fatal(err)
	}
	if n != sliceCount {
		t.Fatalf("replacement's own store recovered %d responses, want %d", n, sliceCount)
	}
}

// TestMonitorReseedFromSliceStore: a slice with a single replica and no
// sibling dies; the monitor's reseed has no survivor to copy from and must
// fall back to the slice's WAL store — newest compact snapshot plus journal
// tail — to rebuild an empty worker that came up on the same address.
func TestMonitorReseedFromSliceStore(t *testing.T) {
	const crowdSize, tasks = 8, 180
	subs := testStream(t, crowdSize, tasks, 83)

	victim, victimAddr := serveWorkerOn(t, "", crowdSize, "victim")
	dial := func() (*Conn, error) { return DialTCPTimeout(victimAddr, 5*time.Second) }
	cv, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCluster(crowdSize, [][]ReplicaSpec{{{Conn: cv, Dial: dial}}}, chaosPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	st := openTestStore(t, t.TempDir())
	defer st.Close()
	if err := coord.AttachSliceStores([]*store.Store{st}); err != nil {
		t.Fatal(err)
	}

	half := len(subs) / 2
	batchAll := func(lo, hi int) {
		t.Helper()
		var batch []Response
		flush := func() {
			if len(batch) > 0 {
				if err := coord.Ingest(batch); err != nil {
					t.Fatal(err)
				}
				batch = batch[:0]
			}
		}
		for _, s := range subs[lo:hi] {
			batch = append(batch, Response{Worker: s.w, Task: s.t, Answer: s.r})
			if len(batch) == 19 {
				flush()
			}
		}
		flush()
	}
	batchAll(0, half)
	if err := coord.CheckpointCompactSlice(0); err != nil {
		t.Fatal(err)
	}
	batchAll(half, len(subs))

	var evMu sync.Mutex
	var events []string
	coord.StartMonitor(MonitorOptions{
		Interval:     20 * time.Millisecond,
		SuspectAfter: 1,
		DownAfter:    2,
		ReseedEvery:  40 * time.Millisecond,
		OnEvent: func(e Event) {
			evMu.Lock()
			events = append(events, e.String())
			evMu.Unlock()
		},
	})
	eventLog := func() []string {
		evMu.Lock()
		defer evMu.Unlock()
		return append([]string(nil), events...)
	}

	if err := victim.Close(); err != nil {
		t.Fatal(err)
	}
	serveWorkerOn(t, victimAddr, crowdSize, "victim-reborn")

	deadline := time.Now().Add(10 * time.Second)
	for {
		view := coord.Membership()
		if view[0].State == "alive" && view[0].Reseeds >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never reseeded from the store; membership %+v\nevents:\n%s",
				view, strings.Join(eventLog(), "\n"))
		}
		time.Sleep(10 * time.Millisecond)
	}
	writeChaosLog(t, eventLog())

	total, err := coord.Responses()
	if err != nil {
		t.Fatal(err)
	}
	if total != len(subs) {
		t.Fatalf("cluster holds %d responses after store reseed, want %d (acked loss)", total, len(subs))
	}
	local := localReference(t, crowdSize, subs)
	requireEvaluateAllEqual(t, "monitor reseed from store", coord, local)
}

// TestMonitorReseedEmptyStoreFallsBackToCheckpoint: a slice store attached
// only after the data had already been ingested holds no journaled state.
// When the whole slice then dies, the reseed must not "succeed" by
// rebuilding the slice empty from that store while a legacy checkpoint
// directory holds a valid snapshot of the data — the empty store yields to
// the checkpoint.
func TestMonitorReseedEmptyStoreFallsBackToCheckpoint(t *testing.T) {
	const crowdSize, tasks = 8, 160
	subs := testStream(t, crowdSize, tasks, 97)

	victim, victimAddr := serveWorkerOn(t, "", crowdSize, "victim")
	dial := func() (*Conn, error) { return DialTCPTimeout(victimAddr, 5*time.Second) }
	cv, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCluster(crowdSize, [][]ReplicaSpec{{{Conn: cv, Dial: dial}}}, chaosPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	var batch []Response
	for _, s := range subs {
		batch = append(batch, Response{Worker: s.w, Task: s.t, Answer: s.r})
	}
	if err := coord.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	ckptDir := t.TempDir()
	if _, err := coord.CheckpointAll(ckptDir); err != nil {
		t.Fatal(err)
	}
	// Attach the store only now: nothing above was journaled into it.
	st := openTestStore(t, t.TempDir())
	defer st.Close()
	if err := coord.AttachSliceStores([]*store.Store{st}); err != nil {
		t.Fatal(err)
	}

	coord.StartMonitor(MonitorOptions{
		Interval:      20 * time.Millisecond,
		SuspectAfter:  1,
		DownAfter:     2,
		ReseedEvery:   40 * time.Millisecond,
		CheckpointDir: ckptDir,
	})

	if err := victim.Close(); err != nil {
		t.Fatal(err)
	}
	serveWorkerOn(t, victimAddr, crowdSize, "victim-reborn")

	deadline := time.Now().Add(10 * time.Second)
	for {
		view := coord.Membership()
		if view[0].State == "alive" && view[0].Reseeds >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never reseeded; membership %+v", view)
		}
		time.Sleep(10 * time.Millisecond)
	}

	total, err := coord.Responses()
	if err != nil {
		t.Fatal(err)
	}
	if total != len(subs) {
		t.Fatalf("cluster holds %d responses after reseed, want %d (empty store shadowed the checkpoint)", total, len(subs))
	}
	requireEvaluateAllEqual(t, "empty-store checkpoint fallback", coord, localReference(t, crowdSize, subs))
}

// TestCheckpointGenerationFallback: CheckpointAll keeps the previous
// generation as .ckpt.1; when the newest file is corrupted on disk, the
// reseed path's reader skips it and loads the older valid generation, and
// only fails when every generation is unusable.
func TestCheckpointGenerationFallback(t *testing.T) {
	const crowdSize, tasks = 6, 100
	subs := testStream(t, crowdSize, tasks, 59)
	coord := newInProcessCluster(t, crowdSize, 1, 2)
	dir := t.TempDir()

	half := len(subs) / 2
	var batch []Response
	for _, s := range subs[:half] {
		batch = append(batch, Response{Worker: s.w, Task: s.t, Answer: s.r})
	}
	if err := coord.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.CheckpointAll(dir); err != nil {
		t.Fatal(err)
	}
	batch = batch[:0]
	for _, s := range subs[half:] {
		batch = append(batch, Response{Worker: s.w, Task: s.t, Answer: s.r})
	}
	if err := coord.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.CheckpointAll(dir); err != nil {
		t.Fatal(err)
	}

	base := filepath.Join(dir, "slice-000.ckpt")
	if _, err := os.Stat(base + ".1"); err != nil {
		t.Fatalf("previous checkpoint generation was not kept: %v", err)
	}
	snap, err := readNewestValidSliceCheckpoint(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Stats.Responses != len(subs) {
		t.Fatalf("newest generation holds %d responses, want %d", snap.Stats.Responses, len(subs))
	}

	// Corrupt the newest generation mid-file: the reader must fall back.
	corrupt := func(path string) {
		t.Helper()
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0xFF
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	corrupt(base)
	snap, err = readNewestValidSliceCheckpoint(dir, 0)
	if err != nil {
		t.Fatalf("fallback to the previous generation failed: %v", err)
	}
	if snap.Stats.Responses != half {
		t.Fatalf("fallback generation holds %d responses, want %d", snap.Stats.Responses, half)
	}

	corrupt(base + ".1")
	if _, err := readNewestValidSliceCheckpoint(dir, 0); err == nil {
		t.Fatal("both generations corrupt, yet a checkpoint loaded")
	} else if !strings.Contains(err.Error(), "no usable checkpoint") {
		t.Fatalf("wrong failure: %v", err)
	}
}

// TestWriteSnapshotDurabilitySequence: WriteSnapshot goes through the
// atomic temp+fsync+rename+dir-fsync sequence; a sync failure surfaces as
// an error and never publishes the file under its final name.
func TestWriteSnapshotDurabilitySequence(t *testing.T) {
	const crowdSize = 5
	subs := testStream(t, crowdSize, 60, 23)
	inc := localReference(t, crowdSize, subs)
	stats, log := inc.Checkpoint()
	snap := &Snapshot{Node: "n0", Stats: stats, Log: log}

	ffs := store.NewFaultFS(store.OSFS{})
	path := filepath.Join(t.TempDir(), "node.ckpt")
	boom := errors.New("injected sync failure")
	ffs.SetSyncError(boom)
	if err := WriteSnapshotFS(ffs, path, snap); err == nil {
		t.Fatal("checkpoint published without a successful fsync")
	} else if !errors.Is(err, boom) {
		t.Fatalf("sync failure not surfaced: %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("failed write still published %s (stat err %v)", path, err)
	}

	ffs.SetSyncError(nil)
	if err := WriteSnapshotFS(ffs, path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := EncodeSnapshot(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotBytes) != string(wantBytes) {
		t.Fatal("snapshot did not round-trip byte-identically through disk")
	}
}

// checksumCompact mirrors EncodeCompact's CRC trailer for tests that craft
// payloads by hand.
func checksumCompact(body []byte) uint64 {
	return crc64.Checksum(body, snapCRC)
}
