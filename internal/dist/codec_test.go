package dist

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"

	"crowdassess/internal/core"
	"crowdassess/internal/crowd"
	"crowdassess/internal/randx"
	"crowdassess/internal/sim"
)

// submission is one generated response for test streams.
type submission struct {
	w, t int
	r    crowd.Response
}

// testStream deterministically generates a shuffled response stream.
func testStream(tb testing.TB, workers, tasks int, seed int64) []submission {
	tb.Helper()
	src := randx.NewSource(seed)
	ds, _, err := sim.Binary{Tasks: tasks, Workers: workers, Density: 0.8}.Generate(src)
	if err != nil {
		tb.Fatalf("generate: %v", err)
	}
	var subs []submission
	for w := 0; w < workers; w++ {
		for t := 0; t < tasks; t++ {
			if ds.Attempted(w, t) {
				subs = append(subs, submission{w, t, ds.Response(w, t)})
			}
		}
	}
	src.Shuffle(len(subs), func(i, j int) { subs[i], subs[j] = subs[j], subs[i] })
	return subs
}

// exportOf ingests a stream into a fresh Incremental and exports it.
func exportOf(tb testing.TB, workers int, subs []submission) *core.StatsExport {
	tb.Helper()
	inc, err := core.NewIncremental(workers)
	if err != nil {
		tb.Fatal(err)
	}
	for _, s := range subs {
		if err := inc.Add(s.w, s.t, s.r); err != nil {
			tb.Fatal(err)
		}
	}
	return inc.ExportStats()
}

// TestStatsCodecRoundTrip: encode→decode is the identity, and encoding is
// deterministic and canonical (decode→encode reproduces the bytes).
func TestStatsCodecRoundTrip(t *testing.T) {
	for _, cfg := range []struct {
		workers, tasks int
		seed           int64
	}{{3, 10, 1}, {5, 100, 2}, {11, 333, 3}} {
		e := exportOf(t, cfg.workers, testStream(t, cfg.workers, cfg.tasks, cfg.seed))
		b1, err := EncodeStats(e)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := EncodeStats(e)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatal("encoding is not deterministic")
		}
		got, err := DecodeStats(b1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, e) {
			t.Fatalf("decode(encode(e)) != e for %+v workers", cfg.workers)
		}
		b3, err := EncodeStats(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b3, b1) {
			t.Fatal("re-encoding a decoded export changed the bytes")
		}
	}
}

// TestCodecMergeEquivalence is the satellite property: shipping per-node
// statistics through encode→decode→Merge yields intervals bit-identical to
// the in-process merge (and hence to a single evaluator).
func TestCodecMergeEquivalence(t *testing.T) {
	const workers, tasks, nodes = 8, 200, 3
	subs := testStream(t, workers, tasks, 29)
	full, err := core.NewIncremental(workers)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([][]submission, nodes)
	for _, s := range subs {
		if err := full.Add(s.w, s.t, s.r); err != nil {
			t.Fatal(err)
		}
		parts[s.t%nodes] = append(parts[s.t%nodes], s)
	}
	acc, err := core.NewStatsAccumulator(workers)
	if err != nil {
		t.Fatal(err)
	}
	for _, part := range parts {
		wire, err := EncodeStats(exportOf(t, workers, part))
		if err != nil {
			t.Fatal(err)
		}
		e, err := DecodeStats(wire)
		if err != nil {
			t.Fatal(err)
		}
		if err := acc.Merge(e); err != nil {
			t.Fatal(err)
		}
	}
	opts := core.EvalOptions{Confidence: 0.9}
	want, err := full.EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := acc.EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	compareEstimates(t, "wire merge vs single-process", got, want)
}

// compareEstimates asserts bit-identical intervals and matching error
// shapes between two estimate slices.
func compareEstimates(tb testing.TB, label string, got, want []core.WorkerEstimate) {
	tb.Helper()
	if len(got) != len(want) {
		tb.Fatalf("%s: %d estimates, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Worker != w.Worker || g.Triples != w.Triples {
			tb.Fatalf("%s: estimate %d metadata (%d, %d) != (%d, %d)", label, i, g.Worker, g.Triples, w.Worker, w.Triples)
		}
		if (g.Err == nil) != (w.Err == nil) {
			tb.Fatalf("%s: estimate %d error mismatch: %v vs %v", label, i, g.Err, w.Err)
		}
		if g.Err != nil {
			if g.Err.Error() != w.Err.Error() {
				tb.Fatalf("%s: estimate %d error text %q != %q", label, i, g.Err, w.Err)
			}
			continue
		}
		if math.Float64bits(g.Interval.Lo) != math.Float64bits(w.Interval.Lo) ||
			math.Float64bits(g.Interval.Hi) != math.Float64bits(w.Interval.Hi) {
			tb.Fatalf("%s: estimate %d interval [%v, %v] not bit-identical to [%v, %v]",
				label, i, g.Interval.Lo, g.Interval.Hi, w.Interval.Lo, w.Interval.Hi)
		}
	}
}

// TestDecodeStatsMalformed: every truncation of a valid payload, plus a
// gallery of corruptions, must error — never panic, never succeed.
func TestDecodeStatsMalformed(t *testing.T) {
	e := exportOf(t, 5, testStream(t, 5, 60, 7))
	valid, err := EncodeStats(e)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(valid); i++ {
		if _, err := DecodeStats(valid[:i]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", i)
		}
	}
	corrupt := func(name string, mutate func([]byte) []byte) {
		b := mutate(append([]byte(nil), valid...))
		if _, err := DecodeStats(b); err == nil {
			t.Errorf("%s decoded successfully", name)
		} else if !errors.Is(err, ErrCodec) {
			t.Errorf("%s: error %v is not tagged ErrCodec", name, err)
		}
	}
	corrupt("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	corrupt("future version", func(b []byte) []byte { b[4] = 99; return b })
	corrupt("trailing bytes", func(b []byte) []byte { return append(b, 0) })
	corrupt("overlong varint", func(b []byte) []byte {
		// Rewrite the one-byte version varint 0x01 as the two-byte form
		// 0x81 0x00: same value, non-minimal — one state must not have two
		// encodings.
		out := append([]byte(nil), b[:4]...)
		out = append(out, 0x81, 0x00)
		return append(out, b[5:]...)
	})
	corrupt("absurd worker count", func(b []byte) []byte {
		// Rewrite the workers varint (offset 5 on this payload) to a huge value.
		head := append([]byte(nil), b[:5]...)
		return append(appendUvarint(head, 1<<30), b[6:]...)
	})
	// agree > common: find the first pair varints (offsets 5+1+1+vlen...).
	// Simpler: build a tiny payload by hand via a doctored export.
	bad := exportOf(t, 5, testStream(t, 5, 60, 7))
	bad.Agree[0][1] = bad.Common[0][1] + 1
	bad.Agree[1][0] = bad.Agree[0][1]
	if _, err := EncodeStats(bad); err == nil {
		t.Error("EncodeStats accepted agree > common")
	}
}

// TestMessageCodecsRoundTrip covers the control-plane payloads.
func TestMessageCodecsRoundTrip(t *testing.T) {
	h := helloMsg{Version: 1, Workers: 64, Shards: 8}
	gotH, err := decodeHello(encodeHello(h))
	if err != nil || gotH != h {
		t.Fatalf("hello round trip: %+v, %v", gotH, err)
	}
	batch := []responseRec{{1, 2, 1}, {3, 70000, 2}, {0, 0, 1}}
	gotB, err := decodeIngest(encodeIngest(batch))
	if err != nil || !reflect.DeepEqual(gotB, batch) {
		t.Fatalf("ingest round trip: %+v, %v", gotB, err)
	}
	empty, err := decodeIngest(encodeIngest(nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty ingest round trip: %+v, %v", empty, err)
	}
	s := sweepMsg{Kernel: "width", Workers: 7, Tasks: 100, Density: 0.8, Replicates: 500, Seed: -12345, Lo: 100, Hi: 250, Parallel: true}
	gotS, err := decodeSweep(encodeSweep(s))
	if err != nil || gotS != s {
		t.Fatalf("sweep round trip: %+v, %v", gotS, err)
	}
	vecs := [][]float64{{1.5, -2.25, math.Inf(1)}, {}, {0.125}}
	gotV, err := decodeVectors(encodeVectors(vecs))
	if err != nil || !reflect.DeepEqual(gotV, vecs) {
		t.Fatalf("vectors round trip: %+v, %v", gotV, err)
	}
	total, err := decodeTotal(encodeTotal(987654))
	if err != nil || total != 987654 {
		t.Fatalf("total round trip: %d, %v", total, err)
	}
	// Truncations of each must error.
	for name, payload := range map[string][]byte{
		"hello":   encodeHello(h),
		"ingest":  encodeIngest(batch),
		"sweep":   encodeSweep(s),
		"vectors": encodeVectors(vecs),
	} {
		for i := 0; i < len(payload); i++ {
			var err error
			switch name {
			case "hello":
				_, err = decodeHello(payload[:i])
			case "ingest":
				_, err = decodeIngest(payload[:i])
			case "sweep":
				_, err = decodeSweep(payload[:i])
			case "vectors":
				_, err = decodeVectors(payload[:i])
			}
			if err == nil {
				t.Fatalf("%s truncated to %d bytes decoded successfully", name, i)
			}
		}
	}
}

// FuzzDecodeStats: arbitrary bytes must decode to an error or to an export
// that re-encodes canonically — and never panic.
func FuzzDecodeStats(f *testing.F) {
	for _, cfg := range []struct {
		workers, tasks int
		seed           int64
	}{{3, 8, 1}, {5, 40, 2}} {
		e := exportOf(f, cfg.workers, testStream(f, cfg.workers, cfg.tasks, cfg.seed))
		b, err := EncodeStats(e)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		f.Add(b[:len(b)/2])
	}
	f.Add([]byte{})
	f.Add([]byte("CSTA"))
	f.Add(append([]byte("CSTA"), 1, 200, 1, 1))
	f.Add(append([]byte("CSTA"), 0x81, 0x00, 3, 0, 0)) // overlong version varint
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeStats(data)
		if err != nil {
			return
		}
		// The codec is canonical: anything that decodes must re-encode to
		// the very bytes it came from — one state, one payload.
		b, err := EncodeStats(e)
		if err != nil {
			t.Fatalf("decoded export fails to encode: %v", err)
		}
		if !bytes.Equal(b, data) {
			t.Fatalf("accepted payload is not canonical:\n in  %x\n out %x", data, b)
		}
	})
}

// FuzzDecodeFrameBodies fuzzes the control-plane decoders together.
func FuzzDecodeFrameBodies(f *testing.F) {
	f.Add([]byte{1, 64, 8})
	f.Add(encodeIngest([]responseRec{{1, 2, 1}}))
	f.Add(encodeSweep(sweepMsg{Kernel: "width", Lo: 1, Hi: 2}))
	f.Add(encodeVectors([][]float64{{1}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		decodeHello(data)
		decodeIngest(data)
		decodeSweep(data)
		decodeVectors(data)
		decodeTotal(data)
	})
}
