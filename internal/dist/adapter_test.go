package dist

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"crowdassess/internal/core"
	"crowdassess/internal/crowd"
	"crowdassess/internal/pool"
	"crowdassess/internal/randx"
	"crowdassess/internal/sim"
)

// poolStream generates a crowd with distinct tiers — solid workers, a
// borderline one, and a spammer — so reviews exercise promote, fire and
// no-change paths.
func poolStream(t *testing.T, seed int64) (int, []submission) {
	t.Helper()
	rates := []float64{0.05, 0.08, 0.12, 0.18, 0.26, 0.05, 0.10, 0.48}
	src := randx.NewSource(500 + seed)
	ds, _, err := sim.Binary{Tasks: 260, Workers: len(rates), ErrorRates: rates, Density: 0.75}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	var subs []submission
	for w := 0; w < ds.Workers(); w++ {
		for task := 0; task < ds.Tasks(); task++ {
			if ds.Attempted(w, task) {
				subs = append(subs, submission{w, task, ds.Response(w, task)})
			}
		}
	}
	src.Shuffle(len(subs), func(i, j int) { subs[i], subs[j] = subs[j], subs[i] })
	return len(rates), subs
}

// recordConcurrently streams one phase of responses into a pool from many
// goroutines, requiring both pools to reject exactly the same submissions
// (fired workers), by reporting each submission's acceptance.
func recordConcurrently(t *testing.T, m *pool.Manager, subs []submission, goroutines int) []bool {
	t.Helper()
	accepted := make([]bool, len(subs))
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(subs); i += goroutines {
				s := subs[i]
				accepted[i] = m.Record(s.w, s.t, s.r) == nil
			}
		}(g)
	}
	wg.Wait()
	return accepted
}

// TestDistributedPoolBitIdenticalToSharded is the tentpole acceptance
// criterion: pool.Manager over a replicated cluster produces review and
// exclusion decisions — and estimates — bit-identical to the local sharded
// pool on the same stream. Records run concurrently; reviews run at the
// same stream points.
func TestDistributedPoolBitIdenticalToSharded(t *testing.T) {
	crowdSize, subs := poolStream(t, 1)
	policy := pool.DefaultPolicy()

	local, err := pool.NewShardedManager(crowdSize, 4, policy)
	if err != nil {
		t.Fatal(err)
	}
	coord, _ := newReplicatedCluster(t, crowdSize, 3, 2, 2)
	cluster, err := pool.NewManagerWith(NewClusterEvaluator(coord, 32), policy)
	if err != nil {
		t.Fatal(err)
	}

	phases := [][2]int{{0, len(subs) / 2}, {len(subs) / 2, len(subs)}}
	for pi, phase := range phases {
		part := subs[phase[0]:phase[1]]
		acceptedLocal := recordConcurrently(t, local, part, 5)
		acceptedCluster := recordConcurrently(t, cluster, part, 5)
		if !reflect.DeepEqual(acceptedLocal, acceptedCluster) {
			t.Fatalf("phase %d: pools accepted different submissions", pi)
		}

		wantDecisions, err := local.Review()
		if err != nil {
			t.Fatal(err)
		}
		gotDecisions, err := cluster.Review()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotDecisions, wantDecisions) {
			t.Fatalf("phase %d review decisions differ:\n got %+v\nwant %+v", pi, gotDecisions, wantDecisions)
		}
		for w := 0; w < crowdSize; w++ {
			if local.State(w) != cluster.State(w) {
				t.Fatalf("phase %d: worker %d state %v vs %v", pi, w, cluster.State(w), local.State(w))
			}
		}

		wantEsts, err := local.Estimates()
		if err != nil {
			t.Fatal(err)
		}
		gotEsts, err := cluster.Estimates()
		if err != nil {
			t.Fatal(err)
		}
		compareEstimates(t, "pool estimates", gotEsts, wantEsts)
	}

	// At least one fire and one promote must have happened, or the test
	// never exercised the decision paths it claims to pin.
	fired, promoted := 0, 0
	for w := 0; w < crowdSize; w++ {
		switch local.State(w) {
		case pool.Fired:
			fired++
		case pool.Active:
			promoted++
		}
	}
	if fired == 0 || promoted == 0 {
		t.Fatalf("stream exercised no decisions (fired %d, promoted %d) — regenerate it", fired, promoted)
	}
}

// TestClusterEvaluatorStreamingContract: the adapter satisfies the
// streaming interface's observable contract against a local reference —
// counts, screens and snapshots all flush buffered Adds first.
func TestClusterEvaluatorStreamingContract(t *testing.T) {
	const crowdSize = 6
	subs := testStream(t, crowdSize, 140, 68)
	coord := newInProcessCluster(t, crowdSize, 2, 2)
	ev := NewClusterEvaluator(coord, 64)
	local := localReference(t, crowdSize, subs)

	for _, s := range subs {
		if err := ev.Add(s.w, s.t, s.r); err != nil {
			t.Fatal(err)
		}
	}
	// Buffered responses are visible to every read.
	if got := ev.Responses(); got != local.Responses() {
		t.Fatalf("Responses %d, want %d", got, local.Responses())
	}
	if got := ev.Tasks(); got != local.Tasks() {
		t.Fatalf("Tasks %d, want %d", got, local.Tasks())
	}
	wantDis := local.MajorityDisagreement()
	gotDis := ev.MajorityDisagreement()
	for w := range wantDis {
		if math.Float64bits(wantDis[w]) != math.Float64bits(gotDis[w]) {
			t.Fatalf("worker %d disagreement %v != %v", w, gotDis[w], wantDis[w])
		}
	}

	wantDS, err := local.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	gotDS, err := ev.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if gotDS.Workers() != wantDS.Workers() || gotDS.Tasks() != wantDS.Tasks() {
		t.Fatalf("snapshot shape %dx%d, want %dx%d", gotDS.Workers(), gotDS.Tasks(), wantDS.Workers(), wantDS.Tasks())
	}
	for w := 0; w < wantDS.Workers(); w++ {
		for task := 0; task < wantDS.Tasks(); task++ {
			if wantDS.Response(w, task) != gotDS.Response(w, task) {
				t.Fatalf("snapshot (%d,%d): %v != %v", w, task, gotDS.Response(w, task), wantDS.Response(w, task))
			}
		}
	}

	// Local rejections are immediate and do not poison the buffer.
	if err := ev.Add(-1, 0, crowd.Yes); err == nil {
		t.Fatal("out-of-range worker accepted")
	}
	if err := ev.Add(0, -1, crowd.Yes); err == nil {
		t.Fatal("negative task accepted")
	}
	if err := ev.Add(0, 0, crowd.Response(9)); err == nil {
		t.Fatal("non-binary response accepted")
	}

	// A remote rejection (duplicate) surfaces at the flush that ships it.
	if err := ev.Add(subs[0].w, subs[0].t, subs[0].r); err != nil {
		t.Fatalf("buffered duplicate rejected early: %v", err)
	}
	if err := ev.Flush(); err == nil {
		t.Fatal("duplicate response not surfaced at flush")
	}
}

// TestClusterEvaluatorUnreachable: with the cluster gone, the
// infallible-signature methods return zero values and the parked error
// surfaces on the next fallible call instead of vanishing.
func TestClusterEvaluatorUnreachable(t *testing.T) {
	const crowdSize = 5
	w, err := NewWorker(WorkerOptions{Workers: crowdSize, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := w.SelfConn()
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(crowdSize, []*Conn{conn})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ev := NewClusterEvaluator(coord, 4)
	if err := ev.Add(0, 1, crowd.Yes); err != nil {
		t.Fatal(err)
	}
	if err := ev.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := ev.MajorityDisagreement(); len(got) != crowdSize {
		t.Fatalf("disagreement fallback has %d entries, want %d", len(got), crowdSize)
	}
	if _, err := ev.EvaluateAll(core.EvalOptions{Confidence: 0.9}); err == nil {
		t.Fatal("evaluation against a dead cluster succeeded")
	}
}
