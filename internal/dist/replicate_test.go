package dist

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"

	"crowdassess/internal/core"
	"crowdassess/internal/crowd"
)

// newReplicatedCluster builds slices×replicas in-process workers and a
// replicated coordinator over them, returning the worker grid so tests can
// kill nodes. workersGrid[si][ri] backs slice si's replica ri.
func newReplicatedCluster(t *testing.T, crowdSize, slices, replicas, shards int) (*Coordinator, [][]*Worker) {
	t.Helper()
	grid := make([][]*Worker, slices)
	groups := make([][]*Conn, slices)
	for si := 0; si < slices; si++ {
		grid[si] = make([]*Worker, replicas)
		groups[si] = make([]*Conn, replicas)
		for ri := 0; ri < replicas; ri++ {
			w, err := NewWorker(WorkerOptions{Workers: crowdSize, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { w.Close() })
			grid[si][ri] = w
			if groups[si][ri], err = w.SelfConn(); err != nil {
				t.Fatal(err)
			}
		}
	}
	coord, err := NewReplicatedCoordinator(crowdSize, groups)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	return coord, grid
}

// freshReplica spins up a new empty worker and hands its connection over.
func freshReplica(t *testing.T, crowdSize, shards int) (*Worker, *Conn) {
	t.Helper()
	w, err := NewWorker(WorkerOptions{Workers: crowdSize, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	conn, err := w.SelfConn()
	if err != nil {
		t.Fatal(err)
	}
	return w, conn
}

func requireEvaluateAllEqual(t *testing.T, label string, coord *Coordinator, local *core.Incremental) {
	t.Helper()
	opts := core.EvalOptions{Confidence: 0.9}
	want, err := local.EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.EvaluateAll(opts)
	if err != nil {
		t.Fatalf("%s: EvaluateAll: %v", label, err)
	}
	compareEstimates(t, label, got, want)
}

// TestReplicatedClusterExact: with every slice owned by two replicas, the
// cluster's estimates, screens and totals still match the single-process
// evaluator bit for bit.
func TestReplicatedClusterExact(t *testing.T) {
	const crowdSize, tasks = 8, 220
	subs := testStream(t, crowdSize, tasks, 61)
	coord, _ := newReplicatedCluster(t, crowdSize, 3, 2, 2)
	ingestConcurrently(t, coord, subs, 6, 19)
	local := localReference(t, crowdSize, subs)

	if coord.Nodes() != 6 || coord.Slices() != 3 {
		t.Fatalf("cluster shape %d nodes / %d slices, want 6/3", coord.Nodes(), coord.Slices())
	}
	if total, err := coord.Responses(); err != nil || total != local.Responses() {
		t.Fatalf("cluster holds %d responses (err %v), want %d", total, err, local.Responses())
	}
	if tasks, err := coord.Tasks(); err != nil || tasks != local.Tasks() {
		t.Fatalf("cluster spans %d tasks (err %v), want %d", tasks, err, local.Tasks())
	}
	requireEvaluateAllEqual(t, "replicated cluster", coord, local)

	wantDis := local.MajorityDisagreement()
	gotDis, err := coord.MajorityDisagreement()
	if err != nil {
		t.Fatal(err)
	}
	for w := range wantDis {
		if math.Float64bits(wantDis[w]) != math.Float64bits(gotDis[w]) {
			t.Fatalf("worker %d disagreement %v != %v", w, gotDis[w], wantDis[w])
		}
	}
}

// TestReplicaKillMidIngestSurvives: killing one replica of a slice in the
// middle of ingestion loses nothing — the fan-out keeps the survivor
// current, the dead node is marked down, and the final estimates match the
// uninterrupted local evaluator exactly.
func TestReplicaKillMidIngestSurvives(t *testing.T) {
	const crowdSize, tasks = 7, 200
	subs := testStream(t, crowdSize, tasks, 62)
	coord, grid := newReplicatedCluster(t, crowdSize, 2, 2, 2)

	cut := len(subs) / 2
	ingestConcurrently(t, coord, subs[:cut], 4, 13)
	if err := grid[1][0].Close(); err != nil { // kill slice 1's first replica
		t.Fatal(err)
	}
	ingestConcurrently(t, coord, subs[cut:], 4, 13)

	if live := coord.LiveReplicas(1); live != 1 {
		t.Fatalf("slice 1 reports %d live replicas after a kill, want 1", live)
	}
	requireEvaluateAllEqual(t, "after replica kill", coord, localReference(t, crowdSize, subs))
}

// TestRestoreNodeFromReplica is the replacement walkthrough: a replica
// dies mid-ingest, a fresh node is attached and seeded from the survivor,
// ingestion continues, and then the *original* survivor dies too — the
// slice now lives entirely on the replacement, and estimates still match
// the uninterrupted run bit for bit.
func TestRestoreNodeFromReplica(t *testing.T) {
	const crowdSize, tasks = 7, 200
	subs := testStream(t, crowdSize, tasks, 63)
	coord, grid := newReplicatedCluster(t, crowdSize, 2, 2, 2)

	third := len(subs) / 3
	ingestConcurrently(t, coord, subs[:third], 4, 13)
	if err := grid[0][1].Close(); err != nil {
		t.Fatal(err)
	}
	ingestConcurrently(t, coord, subs[third:2*third], 4, 13)

	_, conn := freshReplica(t, crowdSize, 3)
	if err := coord.RestoreNode(0, conn, nil); err != nil {
		t.Fatal(err)
	}
	if live := coord.LiveReplicas(0); live != 2 {
		t.Fatalf("slice 0 reports %d live replicas after replacement, want 2", live)
	}
	ingestConcurrently(t, coord, subs[2*third:], 4, 13)

	// Kill the original replica: only the replacement remains for slice 0.
	if err := grid[0][0].Close(); err != nil {
		t.Fatal(err)
	}
	requireEvaluateAllEqual(t, "slice served by restored replacement", coord, localReference(t, crowdSize, subs))
}

// TestRestoreNodeFromCheckpoint is the disaster path: a slice with no
// replication loses its only node. The checkpoint taken before the crash
// seeds a replacement, the stream since the cut is re-ingested, and
// EvaluateAll is byte-identical to a run that never crashed — even though
// the cut falls mid-task.
func TestRestoreNodeFromCheckpoint(t *testing.T) {
	const crowdSize, tasks = 7, 200
	subs := testStream(t, crowdSize, tasks, 64)
	coord, grid := newReplicatedCluster(t, crowdSize, 2, 1, 2)

	cut := len(subs)*2/5 + 1
	ingestConcurrently(t, coord, subs[:cut], 4, 13)
	dir := t.TempDir()
	paths, err := coord.CheckpointAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("checkpointed %d slices, want 2", len(paths))
	}

	// Crash slice 1's only node: the slice is gone.
	if err := grid[1][0].Close(); err != nil {
		t.Fatal(err)
	}
	deadSlice := 1
	err = coord.Ingest([]Response{{Worker: 0, Task: firstTaskOfSlice(coord, deadSlice), Answer: crowd.Yes}})
	if !errors.Is(err, ErrNoReplica) {
		t.Fatalf("ingest into a dead slice: %v, want ErrNoReplica", err)
	}

	// No live source: restoring without a checkpoint must fail clearly.
	_, conn := freshReplica(t, crowdSize, 2)
	if err := coord.RestoreNode(deadSlice, conn, nil); err == nil || !strings.Contains(err.Error(), "no live source") {
		t.Fatalf("restore without source: %v", err)
	}

	snap, err := ReadSnapshot(paths[deadSlice])
	if err != nil {
		t.Fatal(err)
	}
	_, conn = freshReplica(t, crowdSize, 2)
	if err := coord.RestoreNode(deadSlice, conn, snap); err != nil {
		t.Fatal(err)
	}
	// Re-ingest everything after the checkpoint cut; responses for the
	// surviving slice are duplicates the cluster must reject, so replay
	// only the dead slice's share — exactly what a real recovery replays.
	var replay []Response
	for _, s := range subs[cut:] {
		if coord.sliceOf(s.t) == deadSlice {
			replay = append(replay, Response{Worker: s.w, Task: s.t, Answer: s.r})
		}
	}
	if err := coord.Ingest(replay); err != nil {
		t.Fatal(err)
	}
	// ...and the rest of the stream flows normally to the healthy slice.
	var rest []Response
	for _, s := range subs[cut:] {
		if coord.sliceOf(s.t) != deadSlice {
			rest = append(rest, Response{Worker: s.w, Task: s.t, Answer: s.r})
		}
	}
	if err := coord.Ingest(rest); err != nil {
		t.Fatal(err)
	}
	requireEvaluateAllEqual(t, "slice restored from checkpoint", coord, localReference(t, crowdSize, subs))
}

// firstTaskOfSlice finds a small task index routed to the given slice.
func firstTaskOfSlice(c *Coordinator, si int) int {
	for t := 0; ; t++ {
		if c.sliceOf(t) == si {
			return t
		}
	}
}

// TestRestoreNodeRejectsStaleCheckpoint: a checkpoint that lags the live
// replicas is refused before the newcomer joins — attaching it would hand
// the divergence validator a guaranteed failure.
func TestRestoreNodeRejectsStaleCheckpoint(t *testing.T) {
	const crowdSize = 6
	subs := testStream(t, crowdSize, 150, 65)
	coord, _ := newReplicatedCluster(t, crowdSize, 1, 2, 2)
	cut := len(subs) / 2
	ingestConcurrently(t, coord, subs[:cut], 2, 11)
	snap, err := coord.SliceSnapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	ingestConcurrently(t, coord, subs[cut:], 2, 11) // checkpoint is now stale
	_, conn := freshReplica(t, crowdSize, 2)
	if err := coord.RestoreNode(0, conn, snap); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("stale checkpoint restore: %v", err)
	}
}

// TestReplicaDivergenceDetected: state written to one replica behind the
// coordinator's back (here directly into its evaluator) is caught at the
// next validated pull as ErrDivergence — never silently merged.
func TestReplicaDivergenceDetected(t *testing.T) {
	const crowdSize = 6
	subs := testStream(t, crowdSize, 120, 66)
	coord, grid := newReplicatedCluster(t, crowdSize, 2, 2, 2)
	ingestConcurrently(t, coord, subs, 2, 17)
	if _, err := coord.EvaluateAll(core.EvalOptions{Confidence: 0.9}); err != nil {
		t.Fatal(err)
	}
	// Out-of-band write: replica (0,1) ingests a response its peer never
	// saw.
	if err := grid[0][1].Evaluator().Add(0, firstTaskOfSlice(coord, 0)+1_000_000, crowd.Yes); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.EvaluateAll(core.EvalOptions{Confidence: 0.9}); !errors.Is(err, ErrDivergence) {
		t.Fatalf("diverged replicas evaluated without error: %v", err)
	}
}

// TestKillAndReplaceUnderConcurrentIngest runs the whole fault-tolerance
// story under the race detector: responses stream in from many goroutines
// while a replica is killed and a replacement is attached and seeded
// mid-flight; afterwards the cluster's estimates match the uninterrupted
// local evaluator bit for bit.
func TestKillAndReplaceUnderConcurrentIngest(t *testing.T) {
	const crowdSize, tasks, goroutines = 8, 240, 6
	subs := testStream(t, crowdSize, tasks, 67)
	coord, grid := newReplicatedCluster(t, crowdSize, 2, 2, 2)

	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	gate := make(chan struct{}) // released once the kill has happened
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(subs); i += goroutines {
				if i >= len(subs)/2 {
					<-gate // second half of the stream waits out the kill
				}
				s := subs[i]
				if err := coord.Add(s.w, s.t, s.r); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	// Kill one replica while the first half streams, then attach and seed a
	// replacement while the second half streams.
	if err := grid[1][1].Close(); err != nil {
		t.Fatal(err)
	}
	close(gate)
	_, conn := freshReplica(t, crowdSize, 2)
	if err := coord.RestoreNode(1, conn, nil); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("ingestion goroutine %d: %v", g, err)
		}
	}
	// The original replica dies after the handoff; the replacement carries
	// the slice alone.
	if err := grid[1][0].Close(); err != nil {
		t.Fatal(err)
	}
	requireEvaluateAllEqual(t, "kill and replace under load", coord, localReference(t, crowdSize, subs))
}
