package dist

import (
	"errors"
	"io"
	"net"
	"os"
	"time"
)

// Policy bounds every failure mode a cluster operation can hit: how long
// dials and round-trips may take, how often idempotent requests are
// retried and with what backoff, and whether reads may degrade to stale
// statistics when a task slice loses its last replica. A zero Policy means
// "no bounds" — the pre-policy behavior — so existing callers keep their
// semantics; DefaultPolicy is what deployments should start from.
//
// Timeouts are progress-based, not end-to-end: a deadline covers each
// frame chunk (transport.go re-arms it as bytes move), so a multi-gigabyte
// state transfer is never killed for being large, only for stalling.
type Policy struct {
	// DialTimeout bounds establishing a (replacement) connection to a
	// worker, handshake included. 0 means unbounded.
	DialTimeout time.Duration
	// RPCTimeout bounds ordinary control-plane round-trips — ingest,
	// statistics/counts/tally pulls, heartbeats. It is armed per frame
	// chunk on both the request and the awaited reply. 0 means unbounded.
	RPCTimeout time.Duration
	// StateTimeout bounds state-transfer round-trips (snapshot pulls and
	// restore replays), whose worker-side work — encoding or replaying a
	// full response log — legitimately dwarfs an ordinary RPC. 0 means
	// unbounded.
	StateTimeout time.Duration
	// SweepTimeout bounds replicate-sweep round-trips, which are
	// compute-bound on the worker and take as long as the experiment
	// takes. 0 (the default, even in DefaultPolicy) means unbounded.
	SweepTimeout time.Duration
	// Retries is how many times an idempotent request (statistics pulls,
	// heartbeats — never ingest, which is not idempotent) is re-attempted
	// after a transient failure, reconnecting first when the node carries
	// a dialer. 0 disables retries.
	Retries int
	// Backoff is the base delay before the first retry; each further
	// retry doubles it, capped at MaxBackoff, with deterministic jitter
	// in [d/2, d] (seeded by JitterSeed) so a fleet of coordinators never
	// retries in lockstep.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// JitterSeed seeds the deterministic backoff jitter. Two coordinators
	// with different seeds spread their retries; one coordinator replays
	// the same schedule for the same seed, which is what the backoff
	// tests pin.
	JitterSeed uint64
	// StrictReads restores the pre-degradation contract: a statistics,
	// counts or tally pull against a slice with no live replica fails
	// with ErrNoReplica even when a last-merged copy is cached. Leave it
	// false to serve stale (flagged via Coordinator.Degraded) instead of
	// failing reads outright.
	StrictReads bool
}

// DefaultPolicy is the deployment starting point: generous enough that a
// healthy cluster never trips it, tight enough that a wedged peer is cut
// loose in seconds, not forever.
func DefaultPolicy() Policy {
	return Policy{
		DialTimeout:  5 * time.Second,
		RPCTimeout:   30 * time.Second,
		StateTimeout: 10 * time.Minute,
		SweepTimeout: 0, // compute-bound; bound it per deployment
		Retries:      2,
		Backoff:      50 * time.Millisecond,
		MaxBackoff:   2 * time.Second,
	}
}

// timeoutFor maps a message type to the policy budget its round-trip runs
// under.
func (p Policy) timeoutFor(msgType byte) time.Duration {
	switch msgType {
	case msgPullSnap, msgRestore, msgPullCompact, msgRestoreCompact:
		return p.StateTimeout
	case msgSweep:
		return p.SweepTimeout
	default:
		return p.RPCTimeout
	}
}

// splitmix64 is the 64-bit finalizer used for deterministic jitter; the
// same mixer the slice router uses, applied to a different stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// backoff returns the delay before retry attempt (0-based), for the retry
// stream identified by key: exponential doubling from Policy.Backoff,
// capped at MaxBackoff, with deterministic jitter in [d/2, d]. A
// non-positive base disables backoff entirely.
func (p Policy) backoff(attempt int, key uint64) time.Duration {
	if p.Backoff <= 0 {
		return 0
	}
	d := p.Backoff
	for i := 0; i < attempt; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			d = p.MaxBackoff
			break
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	// Jitter in [d/2, d]: enough spread to break lockstep, a floor so a
	// retry never fires immediately into the same congestion.
	half := d / 2
	if half <= 0 {
		return d
	}
	j := splitmix64(p.JitterSeed ^ splitmix64(key^uint64(attempt)))
	return half + time.Duration(j%uint64(half+1))
}

// Transient reports whether an RPC failure is worth retrying (against the
// same node after a reconnect, or a sibling replica): timeouts, resets,
// closed or broken connections — the failures a flaky network or a
// restarting peer produces. Application-level failures are never
// transient: a *RemoteError means the node is healthy and rejected the
// request (every replica would reject it identically), ErrDivergence means
// replica state disagrees (retrying re-reads the same disagreement), and
// ErrCodec means a malformed frame (a peer speaking garbage does not
// recover by being asked again).
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if isRemote(err) || errors.Is(err, ErrDivergence) || errors.Is(err, ErrCodec) || errors.Is(err, errFrameTooBig) {
		return false
	}
	// ErrNoReplica means the slice lost every replica: a retry cannot
	// conjure one — recovery is the monitor's reseed (or a degraded read),
	// not the RPC layer's.
	if errors.Is(err, ErrNoReplica) {
		return false
	}
	if errors.Is(err, os.ErrDeadlineExceeded) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	var op *net.OpError
	if errors.As(err, &op) {
		// Connection-level syscall failures: reset, refused, broken pipe.
		return true
	}
	// Unrecognized transport failures default to transient: the cost of a
	// wasted retry is a backoff delay, the cost of misclassifying a
	// recoverable blip as permanent is a downed replica.
	return true
}
