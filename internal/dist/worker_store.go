package dist

import (
	"errors"
	"fmt"

	"crowdassess/internal/crowd"
	"crowdassess/internal/store"
)

// This file is the worker side of the durable storage engine: WAL
// journaling of accepted ingest batches, O(delta) compact snapshots, and
// recovery. Everything here is a no-op for workers without a Store.

// journal appends an accepted ingest batch to the WAL; caller holds
// journalMu.RLock when a store is attached. A journaling failure fails the
// ingest — the coordinator never receives an ack for a batch that is not
// durable (to the fsync policy's guarantee).
func (w *Worker) journal(batch []responseRec) error {
	st := w.opts.Store
	if st == nil || len(batch) == 0 {
		return nil
	}
	rs := make([]store.Response, len(batch))
	for i, s := range batch {
		rs[i] = store.Response{Worker: s.Worker, Task: s.Task, Answer: crowd.Response(s.Answer)}
	}
	if _, err := st.Log.Append(rs); err != nil {
		return fmt.Errorf("dist: journaling ingest batch: %w", err)
	}
	return nil
}

// persistSeed makes wire-seeded state durable: after a restore (CCKP or
// compact), the node's evaluator holds responses its empty local WAL never
// saw, so a compact snapshot is cut immediately — otherwise a crash after
// the restore ack would silently lose the seed. Without a store it is a
// no-op.
func (w *Worker) persistSeed() error {
	if w.opts.Store == nil {
		return nil
	}
	return w.CheckpointCompact()
}

// CheckpointCompact cuts an O(delta) checkpoint into the worker's store:
// the compact state and the WAL position are read as one consistent cut
// (ingests are excluded for the microseconds the cut takes — not for the
// encode or the fsync), the snapshot is persisted, and the WAL segments it
// covers are dropped. Cost is flat in ingested history; only the crowd and
// task-horizon sizes matter.
func (w *Worker) CheckpointCompact() error {
	st := w.opts.Store
	if st == nil {
		return errors.New("dist: worker has no store attached")
	}
	w.journalMu.Lock()
	cs := w.inc.CompactCheckpoint()
	seq := st.Log.LastSeq()
	w.journalMu.Unlock()
	payload, err := EncodeCompact(cs)
	if err != nil {
		return err
	}
	if err := st.Snapshots.Save(seq, payload); err != nil {
		return fmt.Errorf("dist: saving compact snapshot at seq %d: %w", seq, err)
	}
	if err := st.Log.TruncateBefore(seq + 1); err != nil {
		return fmt.Errorf("dist: truncating journal behind seq %d: %w", seq, err)
	}
	return nil
}

// RecoverFromStore rebuilds the worker's evaluator from its store — newest
// valid compact snapshot plus WAL tail replay — and returns the number of
// responses recovered. The evaluator must be empty (recover on startup,
// before serving). Without a store it is a no-op.
func (w *Worker) RecoverFromStore() (int, error) {
	st := w.opts.Store
	if st == nil {
		return 0, nil
	}
	err := st.Recover(
		func(snap store.Snapshot) error {
			cs, err := DecodeCompact(snap.Payload)
			if err != nil {
				return err
			}
			return w.inc.RestoreCompact(cs)
		},
		func(rec store.Record) error {
			for _, r := range rec.Responses {
				if err := w.inc.Add(r.Worker, r.Task, r.Answer); err != nil {
					return fmt.Errorf("replaying journal seq %d: %w", rec.Seq, err)
				}
			}
			return nil
		})
	if err != nil {
		return 0, err
	}
	return w.inc.Responses(), nil
}
