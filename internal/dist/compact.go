package dist

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"

	"crowdassess/internal/core"
)

// The compact checkpoint payload carries a core.CompactState — the full
// pairwise statistics plus each worker's answer bitset — instead of the
// response log a CCKP snapshot drags along. Its size is
// O(workers² + workers·tasks/64), flat in how many responses were ever
// ingested, which is what makes the WAL engine's periodic snapshots O(delta)
// rather than O(history).
//
// Unlike CCKP the payload is canonical and carries no node identity: equal
// state always encodes to equal bytes, so a broadcast pull can byte-compare
// replicas' compact checkpoints and extend the divergence check to the
// answer bitsets for free.

// compactVersion versions the compact payload independently of the
// protocol, like statsCodecVersion does for plain exports.
const compactVersion = 1

// compactMagic brands a compact checkpoint payload ("CrowdCoMPact").
var compactMagic = [4]byte{'C', 'C', 'M', 'P'}

// EncodeCompact serializes a compact checkpoint: magic, version, the
// canonical statistics payload (EncodeStats), each worker's answer bitset
// in the same trailing-zero-trimmed form the attendance bitsets use, and a
// CRC-64 trailer over everything before it.
func EncodeCompact(cs *core.CompactState) ([]byte, error) {
	if cs == nil || cs.Stats == nil {
		return nil, fmt.Errorf("dist: nil compact state")
	}
	if len(cs.Answers) != cs.Stats.Workers {
		return nil, fmt.Errorf("dist: compact state has %d answer rows for %d workers", len(cs.Answers), cs.Stats.Workers)
	}
	stats, err := EncodeStats(cs.Stats)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 32+len(stats)+9*len(cs.Answers))
	buf = append(buf, compactMagic[:]...)
	buf = appendUvarint(buf, compactVersion)
	buf = appendUvarint(buf, uint64(len(stats)))
	buf = append(buf, stats...)
	for _, words := range cs.Answers {
		n := len(words)
		for n > 0 && words[n-1] == 0 {
			n--
		}
		buf = appendUvarint(buf, uint64(n))
		for _, word := range words[:n] {
			buf = appendU64le(buf, word)
		}
	}
	return appendU64le(buf, crc64.Checksum(buf, snapCRC)), nil
}

// DecodeCompact parses a compact checkpoint payload. It verifies framing —
// CRC, magic, version, canonical bitsets, no trailing bytes — and the row
// shape; the statistical consistency of the state (counters versus
// bitsets) is the restorer's job (core validates on RestoreCompact).
func DecodeCompact(b []byte) (*core.CompactState, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("%w: compact payload of %d bytes", ErrCodec, len(b))
	}
	body, tail := b[:len(b)-8], b[len(b)-8:]
	if binary.LittleEndian.Uint64(tail) != crc64.Checksum(body, snapCRC) {
		return nil, fmt.Errorf("%w: compact payload CRC mismatch", ErrCodec)
	}
	r := &wireReader{buf: body}
	magic, err := r.bytes(4, "compact magic")
	if err != nil {
		return nil, err
	}
	if [4]byte(magic) != compactMagic {
		return nil, fmt.Errorf("%w: bad compact magic %q", ErrCodec, magic)
	}
	version, err := r.uvarint("compact version")
	if err != nil {
		return nil, err
	}
	if version != compactVersion {
		return nil, fmt.Errorf("%w: unsupported compact version %d (have %d)", ErrCodec, version, compactVersion)
	}
	statsLen, err := r.count("stats payload length", uint64(r.rest()))
	if err != nil {
		return nil, err
	}
	statsBytes, err := r.bytes(statsLen, "stats payload")
	if err != nil {
		return nil, err
	}
	stats, err := DecodeStats(statsBytes)
	if err != nil {
		return nil, err
	}
	answers := make([][]uint64, stats.Workers)
	for i := range answers {
		words, err := r.count("answer bitset length", uint64(r.rest()/8))
		if err != nil {
			return nil, err
		}
		answers[i] = make([]uint64, words)
		for k := 0; k < words; k++ {
			if answers[i][k], err = r.u64le("answer bitset word"); err != nil {
				return nil, err
			}
		}
		if words > 0 && answers[i][words-1] == 0 {
			return nil, fmt.Errorf("%w: non-canonical answer bitset for worker %d (trailing zero word)", ErrCodec, i)
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &core.CompactState{Stats: stats, Answers: answers}, nil
}
