package dist

import (
	"errors"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"

	"crowdassess/internal/core"
	"crowdassess/internal/crowd"
	"crowdassess/internal/eval"
)

// localReference ingests the stream into a single-process Incremental.
func localReference(t *testing.T, workers int, subs []submission) *core.Incremental {
	t.Helper()
	inc, err := core.NewIncremental(workers)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range subs {
		if err := inc.Add(s.w, s.t, s.r); err != nil {
			t.Fatal(err)
		}
	}
	return inc
}

// newInProcessCluster builds nodes workers served in-process and a
// coordinator over them, with cleanup registered.
func newInProcessCluster(t *testing.T, workers, nodes, shards int) *Coordinator {
	t.Helper()
	conns := make([]*Conn, nodes)
	for i := range conns {
		w, err := NewWorker(WorkerOptions{Workers: workers, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		if conns[i], err = w.SelfConn(); err != nil {
			t.Fatal(err)
		}
	}
	coord, err := NewCoordinator(workers, conns)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	return coord
}

// ingestConcurrently splits the stream over goroutines that each push
// batches through the coordinator.
func ingestConcurrently(t *testing.T, coord *Coordinator, subs []submission, goroutines, batchSize int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var batch []Response
			flush := func() {
				if len(batch) > 0 && errs[g] == nil {
					errs[g] = coord.Ingest(batch)
					batch = batch[:0]
				}
			}
			for i := g; i < len(subs); i += goroutines {
				s := subs[i]
				batch = append(batch, Response{Worker: s.w, Task: s.t, Answer: s.r})
				if len(batch) >= batchSize {
					flush()
				}
			}
			flush()
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestInProcessClusterExact: the acceptance contract over the in-process
// transport — concurrent ingest through a 3-node cluster, then EvaluateAll
// bit-identical to the single-process evaluator.
func TestInProcessClusterExact(t *testing.T) {
	const workers, tasks = 9, 300
	subs := testStream(t, workers, tasks, 41)
	coord := newInProcessCluster(t, workers, 3, 2)
	ingestConcurrently(t, coord, subs, 6, 17)

	local := localReference(t, workers, subs)
	if total, err := coord.Responses(); err != nil || total != local.Responses() {
		t.Fatalf("cluster holds %d responses (err %v), want %d", total, err, local.Responses())
	}
	for _, conf := range []float64{0.5, 0.9, 0.95} {
		opts := core.EvalOptions{Confidence: conf}
		want, err := local.EvaluateAll(opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := coord.EvaluateAll(opts)
		if err != nil {
			t.Fatal(err)
		}
		compareEstimates(t, "in-process cluster", got, want)
	}
	// Subset and single-worker paths agree too.
	got, err := coord.EvaluateSubset([]int{3, 0, 7}, core.EvalOptions{Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.EvaluateSubset([]int{3, 0, 7}, core.EvalOptions{Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	compareEstimates(t, "subset", got, want)
}

// TestTCPLoopbackExact is the acceptance criterion: a coordinator and
// several crowdd-style workers on real TCP loopback sockets, concurrent
// ingest, and estimates ==-equal to the single-process Incremental. It
// runs in short mode so the CI -race job covers it.
func TestTCPLoopbackExact(t *testing.T) {
	const workers, tasks, nodes = 8, 260, 3
	subs := testStream(t, workers, tasks, 53)

	conns := make([]*Conn, nodes)
	for i := 0; i < nodes; i++ {
		w, err := NewWorker(WorkerOptions{Workers: workers, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		serveErr := make(chan error, 1)
		go func() { serveErr <- w.Serve(l) }()
		t.Cleanup(func() {
			w.Close()
			if err := <-serveErr; err != nil {
				t.Errorf("Serve: %v", err)
			}
		})
		if conns[i], err = DialTCP(l.Addr().String()); err != nil {
			t.Fatal(err)
		}
	}
	coord, err := NewCoordinator(workers, conns)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })

	ingestConcurrently(t, coord, subs, 8, 23)

	local := localReference(t, workers, subs)
	opts := core.EvalOptions{Confidence: 0.9}
	want, err := local.EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	compareEstimates(t, "tcp loopback cluster", got, want)

	// Streamed follow-up: more responses land, estimates still track the
	// local evaluator exactly.
	extra := testStream(t, workers, tasks, 54)
	var fresh []submission
	for _, s := range extra {
		if s.t >= tasks/2 {
			continue // keep it quick: only half the task space again
		}
		fresh = append(fresh, submission{s.w, s.t + tasks, s.r})
	}
	for _, s := range fresh {
		if err := local.Add(s.w, s.t, s.r); err != nil {
			t.Fatal(err)
		}
	}
	ingestConcurrently(t, coord, fresh, 4, 11)
	want, err = local.EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err = coord.EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	compareEstimates(t, "tcp loopback after second wave", got, want)
}

// TestDistributedSweepExact: a sweep partitioned over a cluster returns a
// Result byte-identical to the local run.
func TestDistributedSweepExact(t *testing.T) {
	spec := eval.SweepSpec{Kernel: eval.SweepCoverage, Workers: 5, Tasks: 60, Replicates: 10, Seed: 77}
	coord := newInProcessCluster(t, 5, 3, 1)
	want, err := eval.RunSweep(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.RunSweep(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("distributed sweep differs from local run:\n got %+v\nwant %+v", got, want)
	}
	// More nodes than replicates: empty slices are skipped, result unchanged.
	spec.Replicates = 2
	want, err = eval.RunSweep(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err = coord.RunSweep(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("sweep with more nodes than replicates differs from local run")
	}
}

// TestNodeRoutingIndependentOfShardStriping: the coordinator's node hash
// must not be the sharded evaluator's stripe hash, or every task a node
// receives would collapse onto gcd(nodes, shards) of its local stripes
// and ingestion would serialize on one shard lock. Reimplement both
// mixers and require each node's task set to cover every local stripe.
func TestNodeRoutingIndependentOfShardStriping(t *testing.T) {
	stripeOf := func(t int, shards int) int { // ShardedIncremental.shardOf
		h := uint64(t)
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		return int(h % uint64(shards))
	}
	coord := newInProcessCluster(t, 3, 2, 1)
	for _, shards := range []int{2, 4} {
		hit := make([][]bool, 2)
		for ni := range hit {
			hit[ni] = make([]bool, shards)
		}
		for task := 0; task < 4096; task++ {
			hit[coord.sliceOf(task)][stripeOf(task, shards)] = true
		}
		for ni := range hit {
			for si, ok := range hit[ni] {
				if !ok {
					t.Fatalf("with 2 nodes and %d shards, node %d never receives stripe %d — node and stripe hashes are correlated", shards, ni, si)
				}
			}
		}
	}
}

// TestHandshakeRejectsMismatchedCrowd: a node configured for a different
// crowd size refuses the coordinator.
func TestHandshakeRejectsMismatchedCrowd(t *testing.T) {
	w, err := NewWorker(WorkerOptions{Workers: 5, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	conn, err := w.SelfConn()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCoordinator(7, []*Conn{conn}); err == nil {
		t.Fatal("coordinator accepted a node with a different crowd size")
	} else if !strings.Contains(err.Error(), "crowd workers") {
		t.Fatalf("unhelpful handshake error: %v", err)
	}
}

// TestRemoteAddErrors: per-response rejections surface through the wire
// with the worker's message, and the connection survives them.
func TestRemoteAddErrors(t *testing.T) {
	coord := newInProcessCluster(t, 4, 2, 1)
	if err := coord.Add(0, 3, crowd.Yes); err != nil {
		t.Fatal(err)
	}
	err := coord.Add(0, 3, crowd.Yes)
	if err == nil || !strings.Contains(err.Error(), "already answered") {
		t.Fatalf("duplicate response error not surfaced: %v", err)
	}
	if err := coord.Add(9, 1, crowd.Yes); err == nil {
		t.Fatal("out-of-range crowd worker accepted")
	}
	if err := coord.Add(1, -1, crowd.Yes); err == nil {
		t.Fatal("negative task accepted")
	}
	// The cluster still works after rejected requests.
	if err := coord.Add(1, 4, crowd.No); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerCloseDrainsCleanly: Close racing a stream of requests never
// yields a half-written frame — the coordinator sees either completed
// round-trips or clean transport errors, and no codec error ever
// surfaces.
func TestWorkerCloseDrainsCleanly(t *testing.T) {
	for round := 0; round < 10; round++ {
		w, err := NewWorker(WorkerOptions{Workers: 4, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		conn, err := w.SelfConn()
		if err != nil {
			t.Fatal(err)
		}
		coord, err := NewCoordinator(4, []*Conn{conn})
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			for task := 0; ; task++ {
				if err := coord.Add(task%4, round*10000+task, crowd.Yes); err != nil {
					done <- err
					return
				}
			}
		}()
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		err = <-done
		if err == nil {
			t.Fatal("ingestion survived worker shutdown")
		}
		if errors.Is(err, ErrCodec) {
			t.Fatalf("shutdown surfaced a codec error (half-written frame?): %v", err)
		}
		coord.Close()
	}
}

// TestWorkerCloseUnblocksCoordinator: closing a worker breaks in-flight
// connections instead of hanging them, and new requests fail cleanly.
func TestWorkerCloseUnblocksCoordinator(t *testing.T) {
	w, err := NewWorker(WorkerOptions{Workers: 4, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := w.SelfConn()
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(4, []*Conn{conn})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if err := coord.Add(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := coord.Add(0, 2, 1); err == nil {
		t.Fatal("request to a closed worker succeeded")
	}
	if _, err := w.SelfConn(); err == nil {
		t.Fatal("SelfConn on a closed worker succeeded")
	}
}
