package dist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"slices"
	"time"
)

// Message types. Every frame is one message: a 4-byte big-endian payload
// length, a type byte, then the type's body.
const (
	msgHello      byte = 0x01 // coordinator → worker: helloMsg
	msgHelloOK    byte = 0x02 // worker → coordinator: helloMsg
	msgIngest     byte = 0x03 // coordinator → worker: response batch
	msgIngestOK   byte = 0x04 // worker → coordinator: running response total
	msgPullStats  byte = 0x05 // coordinator → worker: empty
	msgStats      byte = 0x06 // worker → coordinator: EncodeStats payload
	msgSweep      byte = 0x07 // coordinator → worker: sweepMsg
	msgSweepOK    byte = 0x08 // worker → coordinator: replicate vectors
	msgError      byte = 0x09 // worker → coordinator: UTF-8 failure text
	msgPullTotal  byte = 0x0a // coordinator → worker: empty; replied msgIngestOK
	msgPullCounts byte = 0x0b // coordinator → worker: empty
	msgCounts     byte = 0x0c // worker → coordinator: countsMsg
	msgPullDis    byte = 0x0d // coordinator → worker: empty
	msgDis        byte = 0x0e // worker → coordinator: disagreement tallies
	msgPullSnap   byte = 0x0f // coordinator → worker: empty
	msgSnap       byte = 0x10 // worker → coordinator: EncodeSnapshot payload
	msgRestore    byte = 0x11 // coordinator → worker: EncodeSnapshot payload
	msgRestoreOK  byte = 0x12 // worker → coordinator: countsMsg after restore
	msgPing       byte = 0x13 // coordinator → worker: empty heartbeat probe
	msgPong       byte = 0x14 // worker → coordinator: countsMsg liveness reply

	msgPullCompact    byte = 0x15 // coordinator → worker: empty
	msgCompact        byte = 0x16 // worker → coordinator: EncodeCompact payload
	msgRestoreCompact byte = 0x17 // coordinator → worker: EncodeCompact payload
)

// maxFrame bounds an ordinary frame payload (type byte included): the
// pairwise counter triangle grows quadratically, so 64 MiB carries crowds
// up to roughly eight thousand workers — past every deployment this
// protocol targets — while keeping a corrupt length prefix from making a
// peer allocate unbounded memory. A worker whose statistics outgrow it
// replies msgError rather than dropping the connection.
const maxFrame = 1 << 26

// maxSnapFrame bounds checkpoint state-transfer frames (msgSnap,
// msgRestore), which carry a node's full response log and outgrow
// maxFrame at a few tens of millions of responses — exactly the
// long-running nodes whose recovery paths must not fail. Oversized frames
// are only admitted after the type byte proves them a state transfer, and
// the receiver allocates incrementally as bytes actually arrive, so a
// lying length prefix costs an attacker the bytes it claims.
const maxSnapFrame = 1 << 30

// snapshotFrame reports whether a message type carries checkpoint state
// transfer and may use the larger frame cap. Compact checkpoints carry no
// response log, but their answer bitsets still scale with workers×tasks —
// past maxFrame on the very long-horizon nodes recovery cares most about.
func snapshotFrame(msgType byte) bool {
	switch msgType {
	case msgSnap, msgRestore, msgCompact, msgRestoreCompact:
		return true
	}
	return false
}

// frameCap returns the payload bound (type byte included) for a message
// type.
func frameCap(msgType byte) int {
	if snapshotFrame(msgType) {
		return maxSnapFrame
	}
	return maxFrame
}

// errFrameTooBig tags send-side frame-cap violations, so a worker can
// distinguish "my reply is too large" (report it) from a broken pipe
// (hang up).
var errFrameTooBig = errors.New("dist: frame exceeds limit")

// deadliner is the per-direction deadline surface net.Conn and net.Pipe
// both provide; transports without it (plain files, test buffers) simply
// run unbounded.
type deadliner interface {
	SetReadDeadline(time.Time) error
	SetWriteDeadline(time.Time) error
}

// frameChunk is the unit deadlines are armed over: a frame larger than
// this has its deadline re-armed as each chunk completes, so timeouts
// measure stall, not size — a huge-but-moving state transfer survives, a
// peer frozen mid-frame is cut loose within one budget.
const frameChunk = 1 << 22

// RPCObserver observes one completed request/response round-trip on a
// Conn: the message type, request and reply payload sizes, the elapsed
// time, and the outcome. Observers must be fast and must not call back
// into the connection; they run on the round-tripping goroutine.
type RPCObserver func(msgType byte, sentBytes, recvBytes int, elapsed time.Duration, err error)

// Conn is one framed, bidirectional coordinator↔worker byte stream. The
// same frame codec runs over every transport; TCP and the in-process pipe
// differ only in the underlying ReadWriteCloser. A Conn is not safe for
// concurrent use by itself — the coordinator serializes request/response
// round-trips per connection, and a worker serves each connection from one
// goroutine.
type Conn struct {
	rw io.ReadWriteCloser
	br *bufio.Reader
	bw *bufio.Writer

	// observe, when set, is invoked after every roundTrip; obsNow is the
	// clock it is timed with (injected so instrumented deployments own
	// their clock — see internal/obs). Mutated only between round-trips
	// by the conn's owner, like timeout.
	observe RPCObserver
	obsNow  func() time.Time

	// timeout bounds every send and recv, armed per frame chunk; 0 runs
	// unbounded. Mutated only between round-trips by the conn's owner
	// (the coordinator holds the node lock, a worker serves from one
	// goroutine), never concurrently with I/O.
	timeout time.Duration
	// idleWait makes recv wait for the first byte of a frame without a
	// deadline — the worker side, where an idle coordinator connection is
	// healthy — while still bounding the rest of the frame once it has
	// begun. Coordinators leave it false: a reply they are waiting on is
	// already due.
	idleWait bool
	dl       deadliner // c.rw's deadline surface, nil when it has none
}

// NewConn frames an arbitrary byte stream. The caller hands over ownership:
// Close closes the underlying stream.
func NewConn(rw io.ReadWriteCloser) *Conn {
	c := &Conn{rw: rw, br: bufio.NewReader(rw), bw: bufio.NewWriter(rw)}
	c.dl, _ = rw.(deadliner)
	return c
}

// SetTimeout bounds every subsequent frame send and receive on the
// connection: the deadline is armed per frame chunk, so it trips on a
// stalled peer, never on a large-but-moving transfer. 0 removes the bound.
// It is a no-op on transports without deadline support. Not safe to call
// concurrently with an in-flight send or recv — set it between
// round-trips, under whatever lock serializes them.
func (c *Conn) SetTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.timeout = d
}

// SetObserver installs fn to observe every subsequent roundTrip on the
// connection, timed with now (nil selects the wall clock). Like
// SetTimeout it must be called between round-trips, under whatever lock
// serializes them; nil fn removes the observer.
func (c *Conn) SetObserver(fn RPCObserver, now func() time.Time) {
	c.observe = fn
	if now == nil {
		now = time.Now
	}
	c.obsNow = now
}

// setIdleWait selects the worker-side receive discipline: waiting for the
// first byte of the next request is unbounded (idle connections are
// healthy), but once a frame has begun the remainder must keep arriving
// within the timeout — a coordinator that stalls mid-frame cannot wedge
// the serving goroutine, or the drain in Worker.Close, forever.
func (c *Conn) setIdleWait(v bool) { c.idleWait = v }

// armRead re-arms the read deadline for the next chunk; clear removes it.
func (c *Conn) armRead() error {
	if c.dl == nil {
		return nil
	}
	if c.timeout <= 0 {
		return c.dl.SetReadDeadline(time.Time{})
	}
	return c.dl.SetReadDeadline(time.Now().Add(c.timeout))
}

func (c *Conn) clearRead() error {
	if c.dl == nil {
		return nil
	}
	return c.dl.SetReadDeadline(time.Time{})
}

// armWrite re-arms the write deadline for the next chunk.
func (c *Conn) armWrite() error {
	if c.dl == nil {
		return nil
	}
	if c.timeout <= 0 {
		return c.dl.SetWriteDeadline(time.Time{})
	}
	return c.dl.SetWriteDeadline(time.Now().Add(c.timeout))
}

// DialTCP connects to a crowdd worker listening on addr, unbounded.
func DialTCP(addr string) (*Conn, error) { return DialTCPTimeout(addr, 0) }

// DialTCPTimeout connects to a crowdd worker listening on addr, giving up
// after the timeout (0 = unbounded). The timeout covers the TCP connect
// only; arm per-RPC deadlines with Conn.SetTimeout (the coordinator does
// this from its Policy).
func DialTCPTimeout(addr string, timeout time.Duration) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dist: dial %s: %w", addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		// Frames are already write-buffered and flushed whole.
		tc.SetNoDelay(true)
		tc.SetKeepAlive(true)
		tc.SetKeepAlivePeriod(30 * time.Second)
	}
	return NewConn(nc), nil
}

// Pipe returns two connected in-process conns: the transport tests and
// single-process deployments use, with the exact frame codec the TCP path
// runs.
func Pipe() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}

// send writes one frame and flushes it, under the connection's write
// deadline (re-armed per chunk — stall-based, not size-based). An
// oversized body is rejected before any bytes hit the wire, so the
// connection stays framed.
func (c *Conn) send(msgType byte, body []byte) error {
	if limit := frameCap(msgType); len(body)+1 > limit {
		return fmt.Errorf("%w: %d bytes (limit %d)", errFrameTooBig, len(body)+1, limit)
	}
	if err := c.armWrite(); err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)+1))
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return err
	}
	if err := c.bw.WriteByte(msgType); err != nil {
		return err
	}
	for off := 0; off < len(body); off += frameChunk {
		if err := c.armWrite(); err != nil {
			return err
		}
		if _, err := c.bw.Write(body[off:min(off+frameChunk, len(body))]); err != nil {
			return err
		}
	}
	if err := c.armWrite(); err != nil {
		return err
	}
	return c.bw.Flush()
}

// recv reads one frame, enforcing the per-type length cap and the
// connection's read deadline (re-armed per chunk). In idle-wait mode the
// first byte of a frame is waited for without a deadline; from that byte
// on, the frame must keep arriving. Payloads past maxFrame (state
// transfers) are read in bounded chunks, growing the buffer only as bytes
// arrive.
func (c *Conn) recv() (byte, []byte, error) {
	var hdr [4]byte
	if c.idleWait {
		if err := c.clearRead(); err != nil {
			return 0, nil, err
		}
		first, err := c.br.ReadByte()
		if err != nil {
			return 0, nil, err
		}
		hdr[0] = first
		if err := c.armRead(); err != nil {
			return 0, nil, err
		}
		if _, err := io.ReadFull(c.br, hdr[1:]); err != nil {
			return 0, nil, err
		}
	} else {
		if err := c.armRead(); err != nil {
			return 0, nil, err
		}
		if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
			return 0, nil, err
		}
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, fmt.Errorf("%w: empty frame", ErrCodec)
	}
	if n > maxSnapFrame {
		return 0, nil, fmt.Errorf("%w: frame of %d bytes exceeds limit %d", ErrCodec, n, maxSnapFrame)
	}
	msgType, err := c.br.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	if int(n) > frameCap(msgType) {
		return 0, nil, fmt.Errorf("%w: frame of %d bytes exceeds limit %d for message 0x%02x", ErrCodec, n, frameCap(msgType), msgType)
	}
	total := int(n) - 1
	payload := make([]byte, 0, min(total, frameChunk))
	for len(payload) < total {
		if err := c.armRead(); err != nil {
			return 0, nil, err
		}
		k := min(frameChunk, total-len(payload))
		start := len(payload)
		payload = slices.Grow(payload, k)[:start+k]
		if _, err := io.ReadFull(c.br, payload[start:]); err != nil {
			return 0, nil, err
		}
	}
	return msgType, payload, nil
}

// Close closes the underlying stream.
func (c *Conn) Close() error { return c.rw.Close() }

// RemoteError is an application-level failure a worker reported in a
// msgError frame: the node is healthy and the connection intact, the
// request itself was rejected (a bad response in a batch, an oversized
// reply). The replication layer distinguishes it from transport failures —
// a RemoteError leaves a replica live (every replica of the slice rejects
// the same request identically), while a broken connection marks it down.
type RemoteError struct {
	Msg string
}

func (e *RemoteError) Error() string { return "dist: worker error: " + e.Msg }

// roundTrip sends a request and reads the reply, converting a worker-side
// msgError into a *RemoteError. When an observer is installed, the whole
// round-trip — send through reply — is measured and reported to it.
func (c *Conn) roundTrip(msgType byte, body []byte) (byte, []byte, error) {
	if c.observe == nil {
		return c.roundTripInner(msgType, body)
	}
	start := c.obsNow()
	replyType, reply, err := c.roundTripInner(msgType, body)
	c.observe(msgType, len(body), len(reply), c.obsNow().Sub(start), err)
	return replyType, reply, err
}

func (c *Conn) roundTripInner(msgType byte, body []byte) (byte, []byte, error) {
	if err := c.send(msgType, body); err != nil {
		return 0, nil, err
	}
	replyType, reply, err := c.recv()
	if err != nil {
		return 0, nil, err
	}
	if replyType == msgError {
		return 0, nil, &RemoteError{Msg: string(reply)}
	}
	return replyType, reply, nil
}
