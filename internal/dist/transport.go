package dist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// Message types. Every frame is one message: a 4-byte big-endian payload
// length, a type byte, then the type's body.
const (
	msgHello     byte = 0x01 // coordinator → worker: helloMsg
	msgHelloOK   byte = 0x02 // worker → coordinator: helloMsg
	msgIngest    byte = 0x03 // coordinator → worker: response batch
	msgIngestOK  byte = 0x04 // worker → coordinator: running response total
	msgPullStats byte = 0x05 // coordinator → worker: empty
	msgStats     byte = 0x06 // worker → coordinator: EncodeStats payload
	msgSweep     byte = 0x07 // coordinator → worker: sweepMsg
	msgSweepOK   byte = 0x08 // worker → coordinator: replicate vectors
	msgError     byte = 0x09 // worker → coordinator: UTF-8 failure text
	msgPullTotal byte = 0x0a // coordinator → worker: empty; replied msgIngestOK
)

// maxFrame bounds a frame payload (type byte included): the pairwise
// counter triangle grows quadratically, so 64 MiB carries crowds up to
// roughly eight thousand workers — past every deployment this protocol
// targets — while keeping a corrupt length prefix from making a peer
// allocate unbounded memory. A worker whose statistics outgrow it replies
// msgError rather than dropping the connection.
const maxFrame = 1 << 26

// errFrameTooBig tags send-side frame-cap violations, so a worker can
// distinguish "my reply is too large" (report it) from a broken pipe
// (hang up).
var errFrameTooBig = errors.New("dist: frame exceeds limit")

// Conn is one framed, bidirectional coordinator↔worker byte stream. The
// same frame codec runs over every transport; TCP and the in-process pipe
// differ only in the underlying ReadWriteCloser. A Conn is not safe for
// concurrent use by itself — the coordinator serializes request/response
// round-trips per connection, and a worker serves each connection from one
// goroutine.
type Conn struct {
	rw io.ReadWriteCloser
	br *bufio.Reader
	bw *bufio.Writer
}

// NewConn frames an arbitrary byte stream. The caller hands over ownership:
// Close closes the underlying stream.
func NewConn(rw io.ReadWriteCloser) *Conn {
	return &Conn{rw: rw, br: bufio.NewReader(rw), bw: bufio.NewWriter(rw)}
}

// DialTCP connects to a crowdd worker listening on addr.
func DialTCP(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: dial %s: %w", addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		// Frames are already write-buffered and flushed whole.
		tc.SetNoDelay(true)
		tc.SetKeepAlive(true)
		tc.SetKeepAlivePeriod(30 * time.Second)
	}
	return NewConn(nc), nil
}

// Pipe returns two connected in-process conns: the transport tests and
// single-process deployments use, with the exact frame codec the TCP path
// runs.
func Pipe() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}

// send writes one frame and flushes it. An oversized body is rejected
// before any bytes hit the wire, so the connection stays framed.
func (c *Conn) send(msgType byte, body []byte) error {
	if len(body)+1 > maxFrame {
		return fmt.Errorf("%w: %d bytes (limit %d)", errFrameTooBig, len(body)+1, maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)+1))
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return err
	}
	if err := c.bw.WriteByte(msgType); err != nil {
		return err
	}
	if _, err := c.bw.Write(body); err != nil {
		return err
	}
	return c.bw.Flush()
}

// recv reads one frame, enforcing the length cap before allocating.
func (c *Conn) recv() (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, fmt.Errorf("%w: empty frame", ErrCodec)
	}
	if n > maxFrame {
		return 0, nil, fmt.Errorf("%w: frame of %d bytes exceeds limit %d", ErrCodec, n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return 0, nil, err
	}
	return payload[0], payload[1:], nil
}

// Close closes the underlying stream.
func (c *Conn) Close() error { return c.rw.Close() }

// roundTrip sends a request and reads the reply, converting a worker-side
// msgError into a Go error.
func (c *Conn) roundTrip(msgType byte, body []byte) (byte, []byte, error) {
	if err := c.send(msgType, body); err != nil {
		return 0, nil, err
	}
	replyType, reply, err := c.recv()
	if err != nil {
		return 0, nil, err
	}
	if replyType == msgError {
		return 0, nil, fmt.Errorf("dist: worker error: %s", reply)
	}
	return replyType, reply, nil
}
