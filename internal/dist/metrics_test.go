package dist

import (
	"sync"
	"testing"
	"time"

	"crowdassess/internal/obs"
)

// TestEventQueueOrderAndFlush: events come out in emission order, drain
// flushes everything already queued, and draining twice is harmless.
func TestEventQueueOrderAndFlush(t *testing.T) {
	var mu sync.Mutex
	var got []int
	q := newEventQueue(func(e Event) {
		mu.Lock()
		got = append(got, e.Slice)
		mu.Unlock()
	}, 64)
	for i := 0; i < 50; i++ {
		q.emit(Event{Slice: i})
	}
	q.drain()
	q.drain()
	if q.dropped.Load() != 0 {
		t.Fatalf("dropped %d events with room in the queue", q.dropped.Load())
	}
	if len(got) != 50 {
		t.Fatalf("delivered %d events, want 50", len(got))
	}
	for i, s := range got {
		if s != i {
			t.Fatalf("event %d carries slice %d: order not preserved", i, s)
		}
	}
}

// TestEventQueueSlowSinkNeverBlocks is the contract the monitor loop
// depends on: a wedged OnEvent sink costs emitters nothing — excess
// events are dropped and counted, never waited for.
func TestEventQueueSlowSinkNeverBlocks(t *testing.T) {
	release := make(chan struct{})
	var mu sync.Mutex
	delivered := 0
	q := newEventQueue(func(e Event) {
		<-release
		mu.Lock()
		delivered++
		mu.Unlock()
	}, 4)
	start := time.Now()
	for i := 0; i < 100; i++ {
		q.emit(Event{Slice: i})
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("100 emits against a wedged sink took %v: emit blocked", elapsed)
	}
	// The dispatcher holds at most one event in the wedged sink and the
	// channel buffers four more, so at least 95 of the 100 must drop.
	if d := q.dropped.Load(); d < 95 {
		t.Fatalf("dropped %d events, want >= 95", d)
	}
	close(release)
	q.drain()
	mu.Lock()
	defer mu.Unlock()
	if uint64(delivered)+q.dropped.Load() != 100 {
		t.Fatalf("delivered %d + dropped %d != 100 emitted", delivered, q.dropped.Load())
	}
}

// TestEventMetricsAndChain: the metrics sink counts events by kind, and
// ChainEvents fans each event to every non-nil sink in order.
func TestEventMetricsAndChain(t *testing.T) {
	reg := obs.NewRegistry(nil)
	var logged []string
	sink := ChainEvents(nil, EventMetrics(reg), func(e Event) { logged = append(logged, e.Kind) })
	sink(Event{Kind: "suspect"})
	sink(Event{Kind: "suspect"})
	sink(Event{Kind: "reseed"})
	if v, ok := reg.CounterValue("monitor_events_total", obs.Label{Key: "kind", Value: "suspect"}); !ok || v != 2 {
		t.Errorf("monitor_events_total{kind=suspect} = %d (ok=%v), want 2", v, ok)
	}
	if v, ok := reg.CounterValue("monitor_events_total", obs.Label{Key: "kind", Value: "reseed"}); !ok || v != 1 {
		t.Errorf("monitor_events_total{kind=reseed} = %d (ok=%v), want 1", v, ok)
	}
	if len(logged) != 3 {
		t.Errorf("logging sink saw %d events, want 3", len(logged))
	}
}

// TestMsgNameStable pins the metric label values for every protocol
// message: renaming one silently forks time series across versions.
func TestMsgNameStable(t *testing.T) {
	want := map[byte]string{
		msgHello:          "hello",
		msgIngest:         "ingest",
		msgPullStats:      "pull-stats",
		msgSweep:          "sweep",
		msgPullTotal:      "pull-total",
		msgPullCounts:     "pull-counts",
		msgPullDis:        "pull-dis",
		msgPullSnap:       "pull-snap",
		msgRestore:        "restore",
		msgPing:           "ping",
		msgPullCompact:    "pull-compact",
		msgRestoreCompact: "restore-compact",
	}
	for msg, name := range want {
		if got := msgName(msg); got != name {
			t.Errorf("msgName(%#x) = %q, want %q", msg, got, name)
		}
	}
	if got := msgName(0xee); got != "0xee" {
		t.Errorf("msgName(0xee) = %q, want hex fallback", got)
	}
}
