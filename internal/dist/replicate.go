package dist

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"crowdassess/internal/store"
)

// Liveness is a replica's failure-detector state.
type Liveness int

const (
	// Alive: answering probes (or any RPC) within the policy budget.
	Alive Liveness = iota
	// Suspect: missed at least MonitorOptions.SuspectAfter consecutive
	// heartbeats. Still served and still in every fan-out — suspicion is
	// a warning, not a verdict — but one the membership view surfaces.
	Suspect
	// Down: the connection broke, or DownAfter heartbeats went
	// unanswered. Out of every fan-out; only a reseed (automatic or
	// RestoreNode) brings the slot back.
	Down
)

// String renders the state the way health endpoints report it.
func (l Liveness) String() string {
	switch l {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	}
	return fmt.Sprintf("liveness(%d)", int(l))
}

// node is one replica slot; mu serializes request/response round-trips on
// its connection. The failure-detector fields (state, lastBeat, missed,
// reseeds, lastReseed) are guarded by the owning slice's mu, like the old
// down flag was.
type node struct {
	mu       sync.Mutex
	conn     *Conn
	shards   int    // node-local shard count, from the handshake
	name     string // remote identity, from the handshake (may be empty)
	instance uint64 // remote incarnation, from the handshake (0 = unreported)
	id       uint64 // stable slot identity (slice<<32|replica): backoff jitter key

	dial func() (*Conn, error) // reconnects to (a replacement for) this slot; nil = not redialable

	state      Liveness
	lastBeat   time.Time // last proof of life: successful probe or RPC
	missed     int       // consecutive missed heartbeats
	reseeds    int       // times this slot was re-seeded with a fresh node
	lastReseed time.Time // last reseed attempt, for the rate limit
}

// slice is one task slice and the replica set that jointly owns it. mu
// serializes the slice's state-bearing operations — an ingest fan-out
// completes on every live replica before any statistics pull observes the
// slice, so live replicas are always in lockstep at pull time and a
// byte-level comparison of their canonical exports is a sound divergence
// check, not a race.
type slice struct {
	mu       sync.Mutex
	replicas []*node

	// lastGood caches the authoritative reply of the latest validated
	// pull, per message type: what degraded reads serve when every
	// replica of the slice is gone. stale marks the slice as currently
	// serving from that cache.
	lastGood map[byte][]byte
	stale    bool

	// store, when attached (AttachSliceStores), is the slice's durable
	// engine: acknowledged fan-outs are journaled to its WAL and compact
	// checkpoints cut into its snapshot store, so the slice survives the
	// loss of every replica.
	store *store.Store
}

// liveLocked returns the non-down replicas in attach order; caller holds
// s.mu. Suspect replicas are included: they still hold the slice's state
// and still answer — suspicion only primes the detector.
func (s *slice) liveLocked() []*node {
	live := make([]*node, 0, len(s.replicas))
	for _, n := range s.replicas {
		if n.state != Down {
			live = append(live, n)
		}
	}
	return live
}

// beatLocked records proof of life; caller holds the owning slice's mu. A
// down node is never resurrected by a late reply — its connection is
// already closed; only a reseed brings the slot back.
func beatLocked(n *node, at time.Time) {
	if n.state == Down {
		return
	}
	n.lastBeat = at
	n.missed = 0
	n.state = Alive
}

// ErrNoReplica reports that every replica of a task slice is gone: the
// slice cannot serve until a node is attached with RestoreNode (from a
// checkpoint, since no live source remains).
var ErrNoReplica = errors.New("dist: no live replica for task slice")

// ErrDivergence reports that two live replicas of one slice returned
// different statistics for the same responses — corruption or out-of-band
// writes, never timing (slice operations are serialized). The cluster
// refuses to pick a side; detach the bad replica and restore it from a
// healthy one.
var ErrDivergence = errors.New("dist: replica divergence")

// isRemote reports whether err is an application-level worker rejection
// (node healthy, request refused) rather than a transport failure.
func isRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}

// markDownLocked retires a replica whose connection failed; caller holds
// the owning slice's mu.
func markDownLocked(n *node) {
	n.state = Down
	n.conn.Close()
}

// degradable reports whether a request may be served from the slice's
// last-good cache when every replica is gone: only the read-only
// statistics pulls. Writes (ingest) and state transfers never degrade.
func degradable(msgType byte) bool {
	switch msgType {
	case msgPullStats, msgPullCounts, msgPullDis, msgPullTotal:
		return true
	}
	return false
}

// broadcast runs one request on every live replica of slice si and
// returns one authoritative reply. Transport failures mark the replica
// down and the call succeeds on the survivors; application-level
// rejections (RemoteError) propagate without touching liveness — every
// replica holds the same state and rejects the same requests. With
// validate set, all surviving replies must be byte-identical (the codec is
// canonical, so equal state ⇔ equal bytes); a mismatch is ErrDivergence.
//
// A read-only pull against a slice with no live replica degrades to the
// cached reply of the last validated pull — flagged via Degraded — unless
// the policy opts into StrictReads, which preserves ErrNoReplica.
func (c *Coordinator) broadcast(si int, msgType byte, body []byte, wantReply byte, validate bool) ([]byte, error) {
	s := c.slices[si]
	s.mu.Lock()
	defer s.mu.Unlock()
	return c.broadcastLocked(si, s, msgType, body, wantReply, validate)
}

func (c *Coordinator) broadcastLocked(si int, s *slice, msgType byte, body []byte, wantReply byte, validate bool) ([]byte, error) {
	live := s.liveLocked()
	if len(live) == 0 {
		return c.degradeLocked(si, s, msgType, nil)
	}
	replies := make([][]byte, len(live))
	errs := make([]error, len(live))
	var wg sync.WaitGroup
	for i, n := range live {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			replies[i], errs[i] = c.call(n, msgType, body, wantReply)
		}(i, n)
	}
	wg.Wait()
	now := time.Now()
	var appErr error
	var lost []error
	ok := replies[:0]
	for i, n := range live {
		switch {
		case errs[i] == nil:
			beatLocked(n, now)
			ok = append(ok, replies[i])
		case isRemote(errs[i]):
			// The node answered — it is alive — but refused the request.
			beatLocked(n, now)
			if appErr == nil {
				appErr = errs[i]
			}
		default:
			markDownLocked(n)
			lost = append(lost, errs[i])
		}
	}
	if appErr != nil {
		return nil, appErr
	}
	if len(ok) == 0 {
		return c.degradeLocked(si, s, msgType, errors.Join(lost...))
	}
	if validate {
		for _, reply := range ok[1:] {
			if !bytes.Equal(ok[0], reply) {
				return nil, fmt.Errorf("%w: slice %d replicas disagree on request 0x%02x", ErrDivergence, si, msgType)
			}
		}
		if degradable(msgType) {
			if s.lastGood == nil {
				s.lastGood = make(map[byte][]byte)
			}
			s.lastGood[msgType] = ok[0]
			s.stale = false
		}
	}
	return ok[0], nil
}

// degradeLocked resolves a request against a slice with no live replica:
// read-only pulls serve the last validated reply (marked stale) unless the
// policy is strict; everything else — and a slice that died before its
// first validated pull — fails with ErrNoReplica. cause carries the
// transport errors that emptied the slice, if this very call did.
func (c *Coordinator) degradeLocked(si int, s *slice, msgType byte, cause error) ([]byte, error) {
	if !c.policy.StrictReads && degradable(msgType) {
		if cached, hit := s.lastGood[msgType]; hit {
			s.stale = true
			return cached, nil
		}
	}
	if cause != nil {
		return nil, fmt.Errorf("%w %d: %w", ErrNoReplica, si, cause)
	}
	return nil, fmt.Errorf("%w %d", ErrNoReplica, si)
}

// firstLocked runs one request on the first live replica of the slice that
// answers, marking broken replicas down along the way; caller holds s.mu.
// For pulls whose replies legitimately differ per node (snapshots carry
// the node's identity), where broadcast's validation cannot apply.
func (c *Coordinator) firstLocked(si int, s *slice, msgType byte, body []byte, wantReply byte) ([]byte, error) {
	var lost []error
	for _, n := range s.liveLocked() {
		reply, err := c.call(n, msgType, body, wantReply)
		if err == nil {
			return reply, nil
		}
		if isRemote(err) {
			return nil, err
		}
		markDownLocked(n)
		lost = append(lost, err)
	}
	if len(lost) > 0 {
		return nil, fmt.Errorf("%w %d: %w", ErrNoReplica, si, errors.Join(lost...))
	}
	return nil, fmt.Errorf("%w %d", ErrNoReplica, si)
}

// sweepSlice runs one sweep request on some live replica of slice si. The
// slice lock is held only to read the replica set, not across the compute:
// sweeps carry no slice state, so they must not stall ingestion.
func (c *Coordinator) sweepSlice(si int, body []byte) ([]byte, error) {
	s := c.slices[si]
	for {
		s.mu.Lock()
		live := s.liveLocked()
		s.mu.Unlock()
		if len(live) == 0 {
			return nil, fmt.Errorf("%w %d", ErrNoReplica, si)
		}
		n := live[0]
		reply, err := c.call(n, msgSweep, body, msgSweepOK)
		if err == nil || isRemote(err) {
			return reply, err
		}
		s.mu.Lock()
		markDownLocked(n)
		s.mu.Unlock()
	}
}

// SliceSnapshot pulls a checkpoint — statistics plus response log — from a
// live replica of task slice si, validated against the snapshot codec.
// Persist it with WriteSnapshot, or hand it to RestoreNode to seed a
// replacement.
func (c *Coordinator) SliceSnapshot(si int) (*Snapshot, error) {
	if si < 0 || si >= len(c.slices) {
		return nil, fmt.Errorf("dist: slice %d out of range 0…%d", si, len(c.slices)-1)
	}
	s := c.slices[si]
	s.mu.Lock()
	payload, err := c.firstLocked(si, s, msgPullSnap, nil, msgSnap)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	snap, err := DecodeSnapshot(payload)
	if err != nil {
		return nil, fmt.Errorf("dist: slice %d snapshot: %w", si, err)
	}
	return snap, nil
}

// CheckpointAll snapshots every task slice into dir, one file per slice
// (slice-NNN.ckpt), pulled concurrently and each written atomically. The
// previous generation survives as slice-NNN.ckpt.1 — rotated before the
// new write — so a snapshot corrupted at rest never leaves its slice
// without a fallback (the reseed path walks generations newest-first and
// skips files that fail validation). Returned paths are indexed by slice.
// Each file is a consistent cut of its own slice; the set is NOT a
// cluster-wide barrier — ingestion continuing during the pass may land on
// some slices' files and not others. That is exactly as strong as
// recovery needs: slices are disjoint, restores are per slice, and each
// slice's stream replays from that slice's own cut
// (Snapshot.Stats.Responses). Any one file restores its slice via
// RestoreNode (or crowdd -checkpoint) even after every replica of the
// slice is lost.
func (c *Coordinator) CheckpointAll(dir string) ([]string, error) {
	paths := make([]string, len(c.slices))
	errs := make([]error, len(c.slices))
	var wg sync.WaitGroup
	for si := range c.slices {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			snap, err := c.SliceSnapshot(si)
			if err != nil {
				errs[si] = err
				return
			}
			path := filepath.Join(dir, fmt.Sprintf("slice-%03d.ckpt", si))
			if err := os.Rename(path, path+".1"); err != nil && !errors.Is(err, fs.ErrNotExist) {
				errs[si] = err
				return
			}
			if err := WriteSnapshot(path, snap); err != nil {
				errs[si] = err
				return
			}
			paths[si] = path
		}(si)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return paths, nil
}

// sliceCheckpointCandidates lists slice si's checkpoint files in dir,
// newest generation first.
func sliceCheckpointCandidates(dir string, si int) []string {
	base := filepath.Join(dir, fmt.Sprintf("slice-%03d.ckpt", si))
	return []string{base, base + ".1"}
}

// readNewestValidSliceCheckpoint walks slice si's checkpoint generations
// newest-first and returns the first that loads and validates, skipping —
// not failing on — files that are missing, truncated or fail their CRC.
// Only when no generation is usable does it report an error (the failures
// joined, so a corrupt newest generation is visible even when an older one
// saved the day is not).
func readNewestValidSliceCheckpoint(dir string, si int) (*Snapshot, error) {
	var errs []error
	for _, path := range sliceCheckpointCandidates(dir, si) {
		snap, err := ReadSnapshot(path)
		if err == nil {
			return snap, nil
		}
		errs = append(errs, err)
	}
	return nil, fmt.Errorf("dist: no usable checkpoint for slice %d: %w", si, errors.Join(errs...))
}

// RestoreNode attaches a replacement node to task slice si and brings it
// up to date before it serves: the newcomer is handshaken, seeded by
// replaying a snapshot — pulled live from a surviving replica when snap is
// nil, or the given checkpoint otherwise — and only then joins the
// replica set. The slice is locked for the duration, so no batch can land
// between the seed and the attach; the newcomer is in lockstep from its
// first fan-out.
//
// A checkpoint can only seed a slice whose live replicas hold exactly the
// checkpointed statistics (verified before anything is sent); restoring a
// stale checkpoint next to live survivors would hand the validator a
// guaranteed divergence. When every replica of the slice is gone, the
// checkpoint is the recovery path — re-ingest whatever the stream carried
// after the checkpoint cut, and the slice is whole again.
//
// The coordinator takes ownership of conn; it is closed if the restore
// fails at any step.
func (c *Coordinator) RestoreNode(si int, conn *Conn, snap *Snapshot) error {
	if si < 0 || si >= len(c.slices) {
		conn.Close()
		return fmt.Errorf("dist: slice %d out of range 0…%d", si, len(c.slices)-1)
	}
	conn.SetTimeout(c.policy.RPCTimeout)
	c.instrumentConn(conn)
	n, err := handshake(c.workers, conn)
	if err != nil {
		conn.Close()
		return fmt.Errorf("dist: handshake with replacement for slice %d: %w", si, err)
	}
	s := c.slices[si]
	s.mu.Lock()
	defer s.mu.Unlock()
	var payload []byte
	if snap == nil {
		if payload, err = c.firstLocked(si, s, msgPullSnap, nil, msgSnap); err != nil {
			conn.Close()
			return fmt.Errorf("dist: no live source to restore slice %d from (pass a checkpoint): %w", si, err)
		}
	} else {
		if payload, err = EncodeSnapshot(snap); err != nil {
			conn.Close()
			return err
		}
		if len(s.liveLocked()) > 0 {
			cur, err := c.broadcastLocked(si, s, msgPullStats, nil, msgStats, true)
			if err != nil {
				conn.Close()
				return err
			}
			want, err := EncodeStats(snap.Stats)
			if err != nil {
				conn.Close()
				return err
			}
			if !bytes.Equal(cur, want) {
				conn.Close()
				return fmt.Errorf("dist: checkpoint is stale against slice %d's live replicas — restore from a replica (nil snapshot) instead", si)
			}
		}
	}
	if _, err := n.roundTrip(c.policy, msgRestore, payload, msgRestoreOK); err != nil {
		conn.Close()
		return fmt.Errorf("dist: seeding replacement for slice %d: %w", si, err)
	}
	s.attachLocked(si, n, time.Now())
	return nil
}

// attachLocked installs a seeded replacement into the replica set; caller
// holds s.mu. The first down slot is replaced in place — the newcomer
// inherits the slot's identity, dialer and reseed history — so repeated
// failures do not grow the replica list without bound. With no down slot
// the node joins as a net-new replica.
func (s *slice) attachLocked(si int, n *node, at time.Time) {
	n.lastBeat = at
	for ri, old := range s.replicas {
		if old.state == Down {
			n.id = old.id
			if n.dial == nil {
				n.dial = old.dial
			}
			n.reseeds = old.reseeds + 1
			n.lastReseed = at
			s.replicas[ri] = n
			return
		}
	}
	n.id = uint64(si)<<32 | uint64(len(s.replicas))
	s.replicas = append(s.replicas, n)
}
