package dist

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// TestBackoffSchedulePinned pins the retry schedule: exponential doubling
// from the base, capped, jittered into [d/2, d], and fully deterministic
// for a fixed (seed, key) — the property deployments rely on to reproduce
// an incident's timing from its logs.
func TestBackoffSchedulePinned(t *testing.T) {
	p := Policy{Backoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, JitterSeed: 42}
	exp := []time.Duration{10, 20, 40, 80, 80, 80} // pre-jitter envelope, ms
	for attempt, ms := range exp {
		envelope := ms * time.Millisecond
		got := p.backoff(attempt, 7)
		if got < envelope/2 || got > envelope {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, got, envelope/2, envelope)
		}
		if again := p.backoff(attempt, 7); again != got {
			t.Fatalf("attempt %d: backoff not deterministic (%v then %v)", attempt, got, again)
		}
	}
	// Different keys (and different seeds) must spread the schedule:
	// retries across slots never fire in lockstep.
	spread := false
	for key := uint64(0); key < 8; key++ {
		if p.backoff(2, key) != p.backoff(2, key+100) {
			spread = true
			break
		}
	}
	if !spread {
		t.Fatal("jitter produced identical delays across every key")
	}
	other := p
	other.JitterSeed = 43
	diff := false
	for attempt := 0; attempt < 6; attempt++ {
		if p.backoff(attempt, 7) != other.backoff(attempt, 7) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("jitter identical across seeds")
	}
	if d := (Policy{}).backoff(3, 1); d != 0 {
		t.Fatalf("zero policy backed off %v, want 0", d)
	}
}

// TestTimeoutClasses pins which budget each message class runs under.
func TestTimeoutClasses(t *testing.T) {
	p := Policy{RPCTimeout: 1 * time.Second, StateTimeout: 2 * time.Second, SweepTimeout: 3 * time.Second}
	cases := []struct {
		msgType byte
		want    time.Duration
	}{
		{msgIngest, p.RPCTimeout},
		{msgPullStats, p.RPCTimeout},
		{msgPullCounts, p.RPCTimeout},
		{msgPing, p.RPCTimeout},
		{msgPullSnap, p.StateTimeout},
		{msgRestore, p.StateTimeout},
		{msgSweep, p.SweepTimeout},
	}
	for _, c := range cases {
		if got := p.timeoutFor(c.msgType); got != c.want {
			t.Errorf("timeoutFor(0x%02x) = %v, want %v", c.msgType, got, c.want)
		}
	}
}

// TestTransientClassification pins retry eligibility: transport failures
// retry, application verdicts never do.
func TestTransientClassification(t *testing.T) {
	transient := []error{
		os.ErrDeadlineExceeded,
		io.EOF,
		io.ErrUnexpectedEOF,
		io.ErrClosedPipe,
		net.ErrClosed,
		&net.OpError{Op: "read", Err: errors.New("connection reset by peer")},
		fmt.Errorf("wrapped: %w", os.ErrDeadlineExceeded),
		errors.New("some unknown transport failure"), // unknown defaults transient
	}
	for _, err := range transient {
		if !Transient(err) {
			t.Errorf("Transient(%v) = false, want true", err)
		}
	}
	permanent := []error{
		&RemoteError{Msg: "bad response"},
		fmt.Errorf("call failed: %w", &RemoteError{Msg: "wrapped"}),
		ErrDivergence,
		fmt.Errorf("%w: slice 3", ErrDivergence),
		ErrCodec,
		errFrameTooBig,
	}
	for _, err := range permanent {
		if Transient(err) {
			t.Errorf("Transient(%v) = true, want false", err)
		}
	}
	if Transient(nil) {
		t.Error("Transient(nil) = true")
	}
}

// TestIdempotentClassification pins which requests the retry layer may
// re-send: every read-only pull, ping and sweep — and never ingest, whose
// re-send would trip duplicate rejection on replicas that already applied
// the timed-out batch.
func TestIdempotentClassification(t *testing.T) {
	yes := []byte{msgPullStats, msgPullCounts, msgPullDis, msgPullTotal, msgPullSnap, msgPing, msgSweep}
	for _, m := range yes {
		if !idempotent(m) {
			t.Errorf("idempotent(0x%02x) = false, want true", m)
		}
	}
	no := []byte{msgIngest, msgRestore, msgHello}
	for _, m := range no {
		if idempotent(m) {
			t.Errorf("idempotent(0x%02x) = true, want false", m)
		}
	}
}

// TestHelloCarriesIdentity round-trips the v3 handshake payload: name and
// incarnation survive, oversized names are truncated rather than rejected.
func TestHelloCarriesIdentity(t *testing.T) {
	in := helloMsg{Version: ProtocolVersion, Workers: 12, Shards: 4, Name: "worker-7:9041", Instance: 0xDEADBEEF}
	out, err := decodeHello(encodeHello(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("hello round-trip: got %+v, want %+v", out, in)
	}
	long := in
	for len(long.Name) <= maxNodeName {
		long.Name += long.Name
	}
	out, err = decodeHello(encodeHello(long))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Name) != maxNodeName {
		t.Fatalf("oversized name encoded to %d bytes, want truncation to %d", len(out.Name), maxNodeName)
	}
}

// TestRetryRecoversFromReset: a reset connection plus a working dialer
// means a read retry succeeds against the same incarnation — while the
// same reset reaching a RESTARTED (different-incarnation) node must fail
// rather than silently pull hollow statistics from an empty evaluator.
func TestRetryRecoversFromReset(t *testing.T) {
	const crowdSize = 8
	w, addr := serveWorkerOn(t, "", crowdSize, "resettable")
	conn, err := DialTCPTimeout(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	policy := chaosPolicy()
	coord, err := NewCluster(crowdSize, [][]ReplicaSpec{{{
		Conn: conn,
		Dial: func() (*Conn, error) { return DialTCPTimeout(addr, 5*time.Second) },
	}}}, policy)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	subs := testStream(t, crowdSize, 60, 11)
	var batch []Response
	for _, s := range subs {
		batch = append(batch, Response{Worker: s.w, Task: s.t, Answer: s.r})
	}
	if err := coord.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	want, err := coord.Responses()
	if err != nil {
		t.Fatal(err)
	}

	// Same incarnation: cut the wire, the pull reconnects and succeeds.
	n := coord.slices[0].replicas[0]
	n.mu.Lock()
	n.conn.Close()
	n.mu.Unlock()
	got, err := coord.Responses()
	if err != nil {
		t.Fatalf("pull after reset should retry through the dialer: %v", err)
	}
	if got != want {
		t.Fatalf("retried pull returned %d responses, want %d", got, want)
	}

	// Different incarnation: replace the process; the retry must refuse
	// the empty impostor. (StrictReads isolates the refusal from the
	// degraded-read path.)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	serveWorkerOn(t, addr, crowdSize, "resettable-reborn")
	coord.policy.StrictReads = true
	if _, err := coord.Responses(); err == nil {
		t.Fatal("pull against a restarted incarnation succeeded; hollow statistics adopted")
	} else if !errors.Is(err, ErrNoReplica) {
		t.Fatalf("want ErrNoReplica (slot retired for reseed), got: %v", err)
	}
}
