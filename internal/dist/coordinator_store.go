package dist

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"crowdassess/internal/crowd"
	"crowdassess/internal/store"
)

// This file is the coordinator side of the durable storage engine: with one
// store attached per task slice, every acknowledged ingest fan-out is
// journaled to the slice's WAL, the periodic checkpoint becomes an O(delta)
// compact snapshot plus segment truncate, and a slice whose every replica
// died can be rebuilt from its store — newest valid snapshot pushed as a
// compact restore, WAL tail re-ingested — with zero acknowledged loss.

// AttachSliceStores hands the coordinator one durable store per task slice
// (nil entries leave that slice store-less). Attach before ingesting:
// journaling begins with the next fan-out, and batches acknowledged before
// the attach are only as durable as the workers themselves.
func (c *Coordinator) AttachSliceStores(stores []*store.Store) error {
	if len(stores) != len(c.slices) {
		return fmt.Errorf("dist: %d stores for %d task slices", len(stores), len(c.slices))
	}
	for si, st := range stores {
		s := c.slices[si]
		s.mu.Lock()
		s.store = st
		s.mu.Unlock()
	}
	return nil
}

// sliceStore returns slice si's attached store, or nil.
func (c *Coordinator) sliceStore(si int) *store.Store {
	s := c.slices[si]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store
}

// ingestSlice fans one batch out to slice si's live replicas and, when the
// slice carries a store, journals it before reporting success — the
// caller's ack means "applied on every live replica AND durable in the
// coordinator's WAL". The journal append happens under the slice lock, so
// a compact checkpoint's (state, seq) cut can never see a batch the
// journal doesn't.
func (c *Coordinator) ingestSlice(si int, recs []responseRec) ([]byte, error) {
	s := c.slices[si]
	s.mu.Lock()
	defer s.mu.Unlock()
	reply, err := c.broadcastLocked(si, s, msgIngest, encodeIngest(recs), msgIngestOK, false)
	if err != nil {
		return nil, err
	}
	if s.store != nil {
		rs := make([]store.Response, len(recs))
		for i, r := range recs {
			rs[i] = store.Response{Worker: r.Worker, Task: r.Task, Answer: crowd.Response(r.Answer)}
		}
		if _, err := s.store.Log.Append(rs); err != nil {
			return nil, fmt.Errorf("dist: journaling slice %d batch: %w", si, err)
		}
	}
	return reply, nil
}

// CheckpointCompactSlice cuts an O(delta) checkpoint of task slice si into
// its attached store: the compact state is pulled from every live replica
// (byte-validated — the compact codec is canonical, so this extends the
// divergence check to the answer bitsets) under the slice lock together
// with the WAL position, then saved and the journal truncated behind it.
func (c *Coordinator) CheckpointCompactSlice(si int) error {
	if si < 0 || si >= len(c.slices) {
		return fmt.Errorf("dist: slice %d out of range 0…%d", si, len(c.slices)-1)
	}
	s := c.slices[si]
	s.mu.Lock()
	st := s.store
	if st == nil {
		s.mu.Unlock()
		return fmt.Errorf("dist: slice %d has no store attached", si)
	}
	payload, err := c.broadcastLocked(si, s, msgPullCompact, nil, msgCompact, true)
	seq := st.Log.LastSeq()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	// Refuse to persist a payload recovery could not use.
	if _, err := DecodeCompact(payload); err != nil {
		return fmt.Errorf("dist: slice %d compact payload: %w", si, err)
	}
	if err := st.Snapshots.Save(seq, payload); err != nil {
		return fmt.Errorf("dist: saving slice %d snapshot at seq %d: %w", si, seq, err)
	}
	if err := st.Log.TruncateBefore(seq + 1); err != nil {
		return fmt.Errorf("dist: truncating slice %d journal behind seq %d: %w", si, seq, err)
	}
	return nil
}

// CheckpointCompactAll checkpoints every slice with an attached store,
// concurrently. Each slice's snapshot is a consistent cut of that slice;
// like CheckpointAll, the set is not a cluster-wide barrier — and does not
// need to be, since slices are disjoint and restores are per slice. Slices
// without a store are skipped.
func (c *Coordinator) CheckpointCompactAll() error {
	errs := make([]error, len(c.slices))
	var wg sync.WaitGroup
	for si := range c.slices {
		if c.sliceStore(si) == nil {
			continue
		}
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			errs[si] = c.CheckpointCompactSlice(si)
		}(si)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// RestoreNodeFromStore rebuilds task slice si onto a replacement node from
// the slice's durable store: the newest valid compact snapshot is pushed
// as a compact restore, then the WAL tail past it is re-ingested batch by
// batch — O(snapshot + delta), never the full history a CCKP replay drags
// through. Only legal when every replica of the slice is gone (with a
// survivor, seed from it via RestoreNode: always fresher than disk). The
// coordinator takes ownership of conn; it is closed on failure.
func (c *Coordinator) RestoreNodeFromStore(si int, conn *Conn) error {
	if si < 0 || si >= len(c.slices) {
		conn.Close()
		return fmt.Errorf("dist: slice %d out of range 0…%d", si, len(c.slices)-1)
	}
	conn.SetTimeout(c.policy.RPCTimeout)
	c.instrumentConn(conn)
	n, err := handshake(c.workers, conn)
	if err != nil {
		conn.Close()
		return fmt.Errorf("dist: handshake with replacement for slice %d: %w", si, err)
	}
	s := c.slices[si]
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.store
	if st == nil {
		conn.Close()
		return fmt.Errorf("dist: slice %d has no store attached", si)
	}
	if len(s.liveLocked()) > 0 {
		conn.Close()
		return fmt.Errorf("dist: slice %d still has live replicas — seed from a survivor with RestoreNode", si)
	}
	err = st.Recover(
		func(snap store.Snapshot) error {
			if _, err := DecodeCompact(snap.Payload); err != nil {
				return err
			}
			_, err := n.roundTrip(c.policy, msgRestoreCompact, snap.Payload, msgRestoreOK)
			return err
		},
		func(rec store.Record) error {
			batch := make([]responseRec, len(rec.Responses))
			for i, r := range rec.Responses {
				batch[i] = responseRec{Worker: r.Worker, Task: r.Task, Answer: int(r.Answer)}
			}
			_, err := n.roundTrip(c.policy, msgIngest, encodeIngest(batch), msgIngestOK)
			return err
		})
	if err != nil {
		conn.Close()
		return fmt.Errorf("dist: restoring slice %d from its store: %w", si, err)
	}
	s.attachLocked(si, n, time.Now())
	return nil
}
