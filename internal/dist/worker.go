package dist

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"crowdassess/internal/core"
	"crowdassess/internal/crowd"
	"crowdassess/internal/eval"
	"crowdassess/internal/obs"
	"crowdassess/internal/store"
)

// WorkerOptions configures a worker node.
type WorkerOptions struct {
	// Workers is the crowd size — the worker-index space of the responses
	// this node will ingest. Every node and the coordinator must agree on
	// it; the handshake enforces that. Required, at least 3.
	Workers int
	// Shards is the node's local task-stripe shard count for concurrent
	// ingestion (0 selects GOMAXPROCS).
	Shards int
	// Name is a free-form node identity stamped into checkpoints this
	// worker produces and echoed in the handshake (typically its listen
	// address), so coordinator membership views name real nodes.
	// Diagnostic only.
	Name string
	// FrameTimeout bounds how long a coordinator may stall mid-frame —
	// request or reply — before the connection is cut: waiting idle for
	// the next request is always unbounded (idle connections are
	// healthy), but once a frame has begun, every chunk of it must land
	// within this budget, so a hung peer can never wedge a serving
	// goroutine or the drain in Close. 0 selects DefaultFrameTimeout;
	// negative disables the bound.
	FrameTimeout time.Duration
	// Store, when set, is the node's durable storage engine: every
	// accepted ingest batch is journaled to its WAL before the ack goes
	// out (so an acknowledged response survives a crash, up to the
	// store's fsync policy), CheckpointCompact cuts O(delta) snapshots
	// into it, and RecoverFromStore rebuilds the evaluator from it on
	// restart. The worker owns journaling and snapshots; the caller owns
	// opening, recovery ordering and Close.
	Store *store.Store
}

// DefaultFrameTimeout is the worker-side mid-frame stall budget: generous
// against slow links (deadlines are re-armed per 4 MiB chunk, so transfer
// size never trips it), tight enough that a frozen coordinator frees the
// connection in seconds.
const DefaultFrameTimeout = 30 * time.Second

// WorkerStats is a point-in-time snapshot for health/stats endpoints.
type WorkerStats struct {
	Workers     int           `json:"workers"`
	Shards      int           `json:"shards"`
	Tasks       int           `json:"tasks"`
	Responses   int           `json:"responses"`
	Connections int           `json:"connections"`
	Uptime      time.Duration `json:"uptime_ns"`
}

// Worker is one node of a distributed deployment: it owns a
// core.ShardedIncremental over the task slice the coordinator routes to
// it, serves statistics pulls from its live counters, and computes
// replicate ranges of distributed sweeps. Connections are served
// concurrently; the underlying evaluator's Add is already safe across
// goroutines, so two coordinaton connections (or one coordinator's
// concurrent batches) never corrupt state.
type Worker struct {
	opts     WorkerOptions
	inc      *core.ShardedIncremental
	start    time.Time
	instance uint64 // incarnation: fresh per Worker, announced in the hello

	// obsReg, when set by Instrument, receives serve-path metrics. An
	// atomic pointer so installing on a live worker is race-free.
	obsReg atomic.Pointer[obs.Registry]

	// journalMu orders WAL appends against compact snapshot cuts when a
	// Store is attached: each ingest applies its batch and journals it
	// under the read side, CheckpointCompact takes the write side to read
	// (state, lastSeq) as one consistent cut — a snapshot can never
	// observe responses whose journal record it would then truncate away.
	journalMu sync.RWMutex

	mu        sync.Mutex
	closed    bool
	listeners map[net.Listener]struct{}
	// conns maps each live connection to its serving lock: held while a
	// request is being handled and replied to, and taken by Close before
	// closing the connection — so a reply that started is fully written
	// before the stream goes away.
	conns map[*Conn]*sync.Mutex
	wg    sync.WaitGroup
}

// NewWorker returns an idle worker node; connect it to a coordinator with
// Serve (TCP) or SelfConn (in-process).
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.Shards == 0 {
		opts.Shards = runtime.GOMAXPROCS(0)
	}
	if opts.FrameTimeout == 0 {
		opts.FrameTimeout = DefaultFrameTimeout
	}
	if opts.FrameTimeout < 0 {
		opts.FrameTimeout = 0
	}
	inc, err := core.NewShardedIncremental(opts.Workers, opts.Shards)
	if err != nil {
		return nil, err
	}
	return &Worker{
		opts:      opts,
		inc:       inc,
		start:     time.Now(),
		instance:  newInstanceID(),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[*Conn]*sync.Mutex),
	}, nil
}

// newInstanceID draws a worker incarnation: unique per process start with
// overwhelming probability, never zero (zero on the wire means "not
// reported"). Its only job is to make "reconnected to the same state" and
// "reconnected to a restarted, empty node" distinguishable.
func newInstanceID() uint64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err == nil {
		return binary.BigEndian.Uint64(b[:]) | 1
	}
	return uint64(time.Now().UnixNano()) | 1
}

// Stats snapshots the node for health endpoints.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	conns := len(w.conns)
	w.mu.Unlock()
	return WorkerStats{
		Workers:     w.opts.Workers,
		Shards:      w.opts.Shards,
		Tasks:       w.inc.Tasks(),
		Responses:   w.inc.Responses(),
		Connections: conns,
		Uptime:      time.Since(w.start),
	}
}

// Evaluator exposes the node's local evaluator, for deployments that also
// want node-local intervals (they cover only this node's task slice).
func (w *Worker) Evaluator() *core.ShardedIncremental { return w.inc }

// Snapshot checkpoints the node: the exported statistics plus the full
// response log behind them, from one consistent cut (safe under
// concurrent ingestion). The crowdd daemon persists this with
// WriteSnapshot; a coordinator pulls the same payload over the wire for
// replica replacement.
func (w *Worker) Snapshot() *Snapshot {
	stats, log := w.inc.Checkpoint()
	return &Snapshot{Node: w.opts.Name, Stats: stats, Log: log}
}

// Restore rebuilds the node's evaluator from a snapshot by replaying its
// response log and verifying the rebuilt statistics against the
// checkpointed export (see core.RestoreStats). The node must be empty —
// restore on startup, before serving traffic.
func (w *Worker) Restore(s *Snapshot) error {
	return w.inc.RestoreStats(s.Stats, s.Log)
}

// Serve accepts and serves connections until the listener fails or Close
// runs. It returns nil after a graceful Close.
func (w *Worker) Serve(l net.Listener) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		l.Close()
		return errors.New("dist: worker is closed")
	}
	w.listeners[l] = struct{}{}
	w.mu.Unlock()
	for {
		nc, err := l.Accept()
		if err != nil {
			w.mu.Lock()
			closed := w.closed
			delete(w.listeners, l)
			w.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		conn := NewConn(nc)
		serving, ok := w.track(conn)
		if !ok {
			conn.Close()
			return nil
		}
		go func() {
			defer w.wg.Done()
			defer w.untrack(conn)
			w.serveConn(conn, serving)
		}()
	}
}

// SelfConn returns the coordinator end of a new in-process connection to
// this worker, served on its own goroutine — the in-process transport.
func (w *Worker) SelfConn() (*Conn, error) {
	local, remote := Pipe()
	serving, ok := w.track(remote)
	if !ok {
		local.Close()
		remote.Close()
		return nil, errors.New("dist: worker is closed")
	}
	go func() {
		defer w.wg.Done()
		defer w.untrack(remote)
		w.serveConn(remote, serving)
	}()
	return local, nil
}

// track registers a connection, its serving lock and its wait-group slot
// under one critical section, so Close's wg.Wait always covers every
// tracked connection's goroutine.
func (w *Worker) track(c *Conn) (*sync.Mutex, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, false
	}
	// Worker receive discipline: idle waits are unbounded, frames that
	// have begun — and every reply — must keep moving.
	c.SetTimeout(w.opts.FrameTimeout)
	c.setIdleWait(true)
	serving := new(sync.Mutex)
	w.conns[c] = serving
	w.wg.Add(1)
	return serving, true
}

func (w *Worker) untrack(c *Conn) {
	w.mu.Lock()
	delete(w.conns, c)
	w.mu.Unlock()
	c.Close()
}

// Close stops accepting, drains every live connection and waits for the
// per-connection goroutines to exit. A request whose handling has begun
// completes — its reply is fully written before the connection is closed
// (Close takes each connection's serving lock first). A request that
// arrives while shutdown is racing its recv may instead observe the
// connection closing; the coordinator sees a clean connection error, never
// a half-written frame.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	for l := range w.listeners {
		l.Close()
	}
	conns := make(map[*Conn]*sync.Mutex, len(w.conns))
	for c, serving := range w.conns {
		conns[c] = serving
	}
	w.mu.Unlock()
	for c, serving := range conns {
		serving.Lock()
		c.Close()
		serving.Unlock()
	}
	w.wg.Wait()
	return nil
}

// serveConn answers one connection's requests until it drops. Request
// handling errors are replied as msgError frames and the connection stays
// up; only transport failures end the loop. The serving lock is held from
// dispatch through reply, which is what lets Close drain instead of
// cutting a reply mid-frame.
func (w *Worker) serveConn(c *Conn, serving *sync.Mutex) {
	for {
		msgType, body, err := c.recv()
		if err != nil {
			return // connection closed or broken; nothing to reply to
		}
		serving.Lock()
		ok := w.reply(c, msgType, body)
		serving.Unlock()
		if !ok {
			return
		}
	}
}

// reply handles one request and writes its response, reporting whether the
// connection is still usable.
func (w *Worker) reply(c *Conn, msgType byte, body []byte) bool {
	reg := w.obsReg.Load()
	var start time.Time
	if reg != nil {
		start = reg.Clock().Now()
	}
	replyType, reply, err := w.handle(msgType, body)
	if reg != nil {
		msg := obs.Label{Key: "msg", Value: msgName(msgType)}
		reg.Histogram("dist_serve_seconds",
			"Worker-side request handling latency by message type.", nil, msg).
			Observe(reg.Clock().Since(start).Seconds())
		if err != nil {
			reg.Counter("dist_serve_errors_total",
				"Worker-side request failures by message type.", msg).Inc()
		} else if msgType == msgIngest {
			reg.Counter("worker_ingest_batches_total",
				"Ingest batches accepted (applied and journaled).").Inc()
		}
	}
	if err != nil {
		replyType, reply = msgError, []byte(err.Error())
	}
	if err := c.send(replyType, reply); err != nil {
		// A reply that outgrew the frame cap (a statistics export past
		// maxFrame) never touched the wire; report it instead of hanging
		// up, so the coordinator sees the cause, not an EOF.
		if errors.Is(err, errFrameTooBig) {
			return c.send(msgError, []byte(err.Error())) == nil
		}
		return false
	}
	return true
}

// handle dispatches one request to its reply.
func (w *Worker) handle(msgType byte, body []byte) (byte, []byte, error) {
	switch msgType {
	case msgHello:
		m, err := decodeHello(body)
		if err != nil {
			return 0, nil, err
		}
		if m.Version != ProtocolVersion {
			return 0, nil, fmt.Errorf("dist: protocol version %d not supported (worker speaks %d)", m.Version, ProtocolVersion)
		}
		if m.Workers != w.opts.Workers {
			return 0, nil, fmt.Errorf("dist: coordinator expects %d crowd workers, node is configured for %d", m.Workers, w.opts.Workers)
		}
		return msgHelloOK, encodeHello(helloMsg{Version: ProtocolVersion, Workers: w.opts.Workers, Shards: w.opts.Shards, Name: w.opts.Name, Instance: w.instance}), nil

	case msgIngest:
		batch, err := decodeIngest(body)
		if err != nil {
			return 0, nil, err
		}
		if w.opts.Store != nil {
			w.journalMu.RLock()
			defer w.journalMu.RUnlock()
		}
		for _, s := range batch {
			if err := w.inc.Add(s.Worker, s.Task, crowd.Response(s.Answer)); err != nil {
				// The batch stops at the first rejected response. Earlier
				// responses are already ingested; the coordinator reports
				// the failure to its caller, matching the local evaluator's
				// per-Add error contract. A rejected batch is never
				// journaled — its ack never goes out, so losing its prefix
				// on a crash breaks no durability promise.
				return 0, nil, err
			}
		}
		if err := w.journal(batch); err != nil {
			return 0, nil, err
		}
		return msgIngestOK, encodeTotal(w.inc.Responses()), nil

	case msgPullStats:
		payload, err := EncodeStats(w.inc.ExportStats())
		if err != nil {
			return 0, nil, err
		}
		return msgStats, payload, nil

	case msgPullTotal:
		return msgIngestOK, encodeTotal(w.inc.Responses()), nil

	case msgPullCounts:
		return msgCounts, encodeCounts(countsMsg{Tasks: w.inc.Tasks(), Responses: w.inc.Responses()}), nil

	case msgPing:
		// The heartbeat: cheap by construction (two running counters, no
		// locks beyond their atomics), answered even mid-ingest. The
		// counts let the failure detector double as lag telemetry.
		return msgPong, encodeCounts(countsMsg{Tasks: w.inc.Tasks(), Responses: w.inc.Responses()}), nil

	case msgPullDis:
		attempted, disagree := w.inc.DisagreementCounts()
		return msgDis, encodeTallies(attempted, disagree), nil

	case msgPullSnap:
		payload, err := EncodeSnapshot(w.Snapshot())
		if err != nil {
			return 0, nil, err
		}
		return msgSnap, payload, nil

	case msgRestore:
		snap, err := DecodeSnapshot(body)
		if err != nil {
			return 0, nil, err
		}
		if err := w.Restore(snap); err != nil {
			return 0, nil, err
		}
		if err := w.persistSeed(); err != nil {
			return 0, nil, err
		}
		return msgRestoreOK, encodeCounts(countsMsg{Tasks: w.inc.Tasks(), Responses: w.inc.Responses()}), nil

	case msgPullCompact:
		payload, err := EncodeCompact(w.inc.CompactCheckpoint())
		if err != nil {
			return 0, nil, err
		}
		return msgCompact, payload, nil

	case msgRestoreCompact:
		cs, err := DecodeCompact(body)
		if err != nil {
			return 0, nil, err
		}
		if err := w.inc.RestoreCompact(cs); err != nil {
			return 0, nil, err
		}
		if err := w.persistSeed(); err != nil {
			return 0, nil, err
		}
		return msgRestoreOK, encodeCounts(countsMsg{Tasks: w.inc.Tasks(), Responses: w.inc.Responses()}), nil

	case msgSweep:
		m, err := decodeSweep(body)
		if err != nil {
			return 0, nil, err
		}
		spec := eval.SweepSpec{
			Kernel:     m.Kernel,
			Workers:    m.Workers,
			Tasks:      m.Tasks,
			Density:    m.Density,
			Replicates: m.Replicates,
			Seed:       m.Seed,
		}
		vectors, err := eval.SweepReplicates(spec, m.Lo, m.Hi, m.Parallel)
		if err != nil {
			return 0, nil, err
		}
		return msgSweepOK, encodeVectors(vectors), nil
	}
	return 0, nil, fmt.Errorf("dist: unknown message type 0x%02x", msgType)
}
