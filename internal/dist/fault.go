package dist

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// FaultConn wraps a net.Conn with switchable fault injection, for chaos
// tests and failure drills. Reads always delegate to the wrapped
// connection — deadlines keep working natively — and every fault is
// expressed on the write side, which is how real networks hurt a framed
// peer:
//
//   - delay: each write sleeps first (slow link; exercises deadline
//     re-arming without tripping it)
//   - hang: after N more forwarded bytes, writes are silently swallowed —
//     the peer sees a frame stop arriving mid-way and its own read
//     deadline must cut it loose (a partition is a hang after 0 bytes)
//   - reset: the underlying connection is closed; both ends see it die
//
// A FaultConn is safe for concurrent use to the extent the wrapped
// connection is.
type FaultConn struct {
	net.Conn

	mu        sync.Mutex
	delay     time.Duration
	hanging   bool
	hangAfter int64
	swallowed bool // a hang dropped bytes: the stream is beyond repair
}

// NewFaultConn wraps a connection with no faults armed.
func NewFaultConn(inner net.Conn) *FaultConn {
	return &FaultConn{Conn: inner}
}

// DelayWrites makes every subsequent write sleep d before touching the
// wire. 0 clears the delay.
func (f *FaultConn) DelayWrites(d time.Duration) {
	f.mu.Lock()
	f.delay = d
	f.mu.Unlock()
}

// HangWritesAfter forwards n more bytes, then blackholes every write:
// claimed as sent, never delivered. The peer experiences a genuine
// mid-frame stall, bounded only by its own read deadline. n = 0 hangs
// immediately (an outbound partition).
func (f *FaultConn) HangWritesAfter(n int) {
	f.mu.Lock()
	f.hanging = true
	f.hangAfter = int64(n)
	f.mu.Unlock()
}

// Partition blackholes all subsequent writes — HangWritesAfter(0).
func (f *FaultConn) Partition() { f.HangWritesAfter(0) }

// Reset closes the underlying connection: the hard kill. Both ends see the
// stream die.
func (f *FaultConn) Reset() error { return f.Conn.Close() }

// Heal clears delay and hang faults. If a hang already swallowed bytes,
// the byte stream is desynced beyond repair — resuming writes would feed
// the peer's frame parser misaligned bytes, something no real network can
// do (TCP delivers a genuine prefix or dies) — so healing such a
// connection closes it instead: the stall ends in connection death, and
// recovery is a reconnect, which is what the coordinator's retry layer
// does.
func (f *FaultConn) Heal() {
	f.mu.Lock()
	f.delay = 0
	f.hanging = false
	f.hangAfter = 0
	dead := f.swallowed
	f.mu.Unlock()
	if dead {
		f.Conn.Close()
	}
}

func (f *FaultConn) Write(b []byte) (int, error) {
	f.mu.Lock()
	delay := f.delay
	hanging := f.hanging
	forward := int64(len(b))
	if hanging {
		if forward > f.hangAfter {
			forward = f.hangAfter
		}
		f.hangAfter -= forward
		if forward < int64(len(b)) {
			f.swallowed = true
		}
	}
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if !hanging {
		return f.Conn.Write(b)
	}
	if forward > 0 {
		if _, err := f.Conn.Write(b[:forward]); err != nil {
			return int(forward), err
		}
	}
	// Swallow the rest silently: the sender believes the bytes left, the
	// receiver never sees them — the canonical mid-frame stall.
	return len(b), nil
}

// FaultKind selects one of Chaos's fault repertoires.
type FaultKind int

const (
	// FaultDelay slows one connection's writes by a seeded duration in
	// (0, MaxDelay].
	FaultDelay FaultKind = iota
	// FaultHang blackholes one connection's writes after a seeded number
	// of further bytes (0–63): a mid-frame hang or outbound partition.
	FaultHang
	// FaultReset closes one connection outright.
	FaultReset
)

func (k FaultKind) String() string {
	switch k {
	case FaultDelay:
		return "delay"
	case FaultHang:
		return "hang"
	case FaultReset:
		return "reset"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Chaos drives a seeded, fully deterministic fault schedule over a set of
// FaultConns: the same seed, registration order and Strike sequence always
// produce the same faults on the same connections. Register connections
// with Wrap, then call Strike to land one fault at a time — the chaos
// suite interleaves strikes with real traffic.
type Chaos struct {
	mu    sync.Mutex
	state uint64
	conns []*FaultConn
	log   []string

	// MaxDelay caps FaultDelay injections; zero selects 5ms.
	MaxDelay time.Duration
}

// NewChaos returns a chaos driver with the given seed.
func NewChaos(seed uint64) *Chaos {
	return &Chaos{state: seed}
}

// Wrap registers a connection with the chaos driver and returns the
// fault-injecting wrapper to use in its place. Registration order is part
// of the deterministic schedule.
func (ch *Chaos) Wrap(inner net.Conn) *FaultConn {
	fc := NewFaultConn(inner)
	ch.mu.Lock()
	ch.conns = append(ch.conns, fc)
	ch.mu.Unlock()
	return fc
}

// rand steps the splitmix64 stream; caller holds ch.mu.
func (ch *Chaos) rand() uint64 {
	ch.state = splitmix64(ch.state)
	return ch.state
}

// Strike lands one seeded fault on one registered connection and returns a
// description for the chaos event log. kinds restricts the repertoire;
// empty means all kinds. With no registered connections it is a no-op.
func (ch *Chaos) Strike(kinds ...FaultKind) string {
	if len(kinds) == 0 {
		kinds = []FaultKind{FaultDelay, FaultHang, FaultReset}
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if len(ch.conns) == 0 {
		return "strike: no connections"
	}
	target := int(ch.rand() % uint64(len(ch.conns)))
	kind := kinds[int(ch.rand()%uint64(len(kinds)))]
	fc := ch.conns[target]
	var desc string
	switch kind {
	case FaultDelay:
		max := ch.MaxDelay
		if max <= 0 {
			max = 5 * time.Millisecond
		}
		d := time.Duration(ch.rand()%uint64(max)) + 1
		fc.DelayWrites(d)
		desc = fmt.Sprintf("strike: delay conn %d by %s", target, d)
	case FaultHang:
		n := int(ch.rand() % 64)
		fc.HangWritesAfter(n)
		desc = fmt.Sprintf("strike: hang conn %d after %d bytes", target, n)
	case FaultReset:
		fc.Reset()
		desc = fmt.Sprintf("strike: reset conn %d", target)
	}
	ch.log = append(ch.log, desc)
	return desc
}

// Log returns the descriptions of every strike so far, in order — the
// chaos event log tests persist as a CI failure artifact.
func (ch *Chaos) Log() []string {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	out := make([]string, len(ch.log))
	copy(out, ch.log)
	return out
}

// HealAll clears delay and hang faults on every registered connection
// (reset connections stay dead; see FaultConn.Heal for why healed streams
// may still need a reconnect).
func (ch *Chaos) HealAll() {
	ch.mu.Lock()
	conns := append([]*FaultConn(nil), ch.conns...)
	ch.mu.Unlock()
	for _, fc := range conns {
		fc.Heal()
	}
}
