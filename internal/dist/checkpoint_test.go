package dist

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crowdassess/internal/core"
	"crowdassess/internal/randx"
)

// snapshotOf builds a worker, ingests the stream, and checkpoints it.
func snapshotOf(tb testing.TB, workers int, subs []submission, name string) *Snapshot {
	tb.Helper()
	w, err := NewWorker(WorkerOptions{Workers: workers, Shards: 3, Name: name})
	if err != nil {
		tb.Fatal(err)
	}
	for _, s := range subs {
		if err := w.Evaluator().Add(s.w, s.t, s.r); err != nil {
			tb.Fatal(err)
		}
	}
	return w.Snapshot()
}

// TestSnapshotRoundTrip is the checkpoint property test: export → encode →
// write → reload → re-export must be byte-identical, for several streams
// and for the empty node.
func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for seed := int64(0); seed < 4; seed++ {
		subs := testStream(t, 8, 150, 70+seed)
		if seed == 3 {
			subs = nil // the empty node checkpoints too
		}
		snap := snapshotOf(t, 8, subs, "node-a:7333")
		payload, err := EncodeSnapshot(snap)
		if err != nil {
			t.Fatal(err)
		}

		// In-memory round trip: decode and re-encode reproduce the bytes.
		decoded, err := DecodeSnapshot(payload)
		if err != nil {
			t.Fatal(err)
		}
		reencoded, err := EncodeSnapshot(decoded)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(payload, reencoded) {
			t.Fatalf("seed %d: re-encoded snapshot differs from original", seed)
		}

		// Disk round trip: write, reload, restore into a fresh worker, and
		// compare its re-exported snapshot byte for byte.
		path := filepath.Join(dir, "node.ckpt")
		if err := WriteSnapshot(path, snap); err != nil {
			t.Fatal(err)
		}
		loaded, err := ReadSnapshot(path)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := NewWorker(WorkerOptions{Workers: 8, Shards: 3, Name: "node-a:7333"})
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Restore(loaded); err != nil {
			t.Fatal(err)
		}
		replayed, err := EncodeSnapshot(fresh.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(payload, replayed) {
			t.Fatalf("seed %d: restored worker's snapshot differs from the checkpoint", seed)
		}

		// No temp files may survive the atomic write.
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if strings.Contains(e.Name(), ".tmp-") {
				t.Fatalf("seed %d: atomic write leaked temp file %s", seed, e.Name())
			}
		}
	}
}

// TestSnapshotRejectsCorruption flips every byte (and truncates at sampled
// prefixes) of a valid snapshot and requires a clear decode error — never
// a panic, never a silently wrong restore.
func TestSnapshotRejectsCorruption(t *testing.T) {
	subs := testStream(t, 6, 80, 81)
	snap := snapshotOf(t, 6, subs, "node-b")
	payload, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}

	src := randx.NewSource(7)
	for i := 0; i < len(payload); i++ {
		corrupt := append([]byte(nil), payload...)
		bit := byte(1 << (src.Intn(8)))
		corrupt[i] ^= bit
		if _, err := DecodeSnapshot(corrupt); err == nil {
			t.Fatalf("flipping bit %x of byte %d went undetected", bit, i)
		}
	}
	for _, n := range []int{0, 1, 4, 7, len(payload) / 3, len(payload) / 2, len(payload) - 9, len(payload) - 1} {
		if n < 0 {
			continue
		}
		if _, err := DecodeSnapshot(payload[:n]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
	if _, err := DecodeSnapshot(append(append([]byte(nil), payload...), 0)); err == nil {
		t.Fatal("trailing garbage went undetected")
	}
}

// TestSnapshotRejectsInconsistency: a snapshot whose log and statistics
// disagree is refused at decode (count mismatch) or at restore (replay
// verification), with errors that say why.
func TestSnapshotRejectsInconsistency(t *testing.T) {
	subs := testStream(t, 6, 80, 82)
	snap := snapshotOf(t, 6, subs, "")

	short := &Snapshot{Node: snap.Node, Stats: snap.Stats, Log: snap.Log[:len(snap.Log)-1]}
	if _, err := EncodeSnapshot(short); err == nil || !strings.Contains(err.Error(), "statistics claim") {
		t.Fatalf("encode of short log: %v", err)
	}

	// Tamper with a logged answer: the payload still decodes (checksummed
	// consistently) but restore's replay verification must catch it.
	tampered := &Snapshot{Node: snap.Node, Stats: snap.Stats, Log: append([]core.LoggedResponse(nil), snap.Log...)}
	if tampered.Log[3].Answer == 1 {
		tampered.Log[3].Answer = 2
	} else {
		tampered.Log[3].Answer = 1
	}
	payload, err := EncodeSnapshot(tampered)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshot(payload)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewWorker(WorkerOptions{Workers: 6, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(decoded); err == nil || !strings.Contains(err.Error(), "diverge") {
		t.Fatalf("restore of tampered log: %v", err)
	}
}

// TestReadSnapshotMissingFile: a missing checkpoint reads as fs.ErrNotExist
// so daemons can distinguish first start from corruption.
func TestReadSnapshotMissingFile(t *testing.T) {
	_, err := ReadSnapshot(filepath.Join(t.TempDir(), "absent.ckpt"))
	if err == nil || !os.IsNotExist(err) {
		t.Fatalf("got %v, want not-exist", err)
	}
}

// FuzzDecodeSnapshot: arbitrary bytes must decode to an error or to a
// snapshot that re-encodes canonically; never panic.
func FuzzDecodeSnapshot(f *testing.F) {
	subs := testStream(f, 5, 60, 9)
	w, err := NewWorker(WorkerOptions{Workers: 5, Shards: 2, Name: "fuzz-seed"})
	if err != nil {
		f.Fatal(err)
	}
	for _, s := range subs {
		if err := w.Evaluator().Add(s.w, s.t, s.r); err != nil {
			f.Fatal(err)
		}
	}
	payload, err := EncodeSnapshot(w.Snapshot())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(payload)
	f.Add(payload[:len(payload)/2])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		re, err := EncodeSnapshot(snap)
		if err != nil {
			t.Fatalf("decoded snapshot does not re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("snapshot encoding is not canonical: %d bytes in, %d out", len(data), len(re))
		}
	})
}
