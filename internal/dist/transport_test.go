package dist

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestOversizedSnapshotFrameRoundTrips: state-transfer frames (msgSnap,
// msgRestore) may exceed the ordinary 64 MiB frame cap — a long-running
// node's response log must still checkpoint over the wire — and the
// receiver reassembles them chunk by chunk, byte-exact.
func TestOversizedSnapshotFrameRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("moves >64 MiB through an in-process pipe")
	}
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	body := make([]byte, maxFrame+maxFrame/2) // 96 MiB: over maxFrame, well under maxSnapFrame
	for i := range body {
		body[i] = byte(i * 2654435761)
	}
	sendErr := make(chan error, 1)
	go func() { sendErr <- a.send(msgSnap, body) }()
	msgType, got, err := b.recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-sendErr; err != nil {
		t.Fatal(err)
	}
	if msgType != msgSnap {
		t.Fatalf("got message 0x%02x, want msgSnap", msgType)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("oversized frame corrupted in transit")
	}
}

// TestOversizedOrdinaryFrameRejected: only state-transfer types may use
// the large cap. The sender refuses locally; a receiver facing a lying
// length prefix rejects after the type byte, before reading the body.
func TestOversizedOrdinaryFrameRejected(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	big := make([]byte, maxFrame) // +1 for the type byte pushes past the cap
	if err := a.send(msgIngest, big); !errors.Is(err, errFrameTooBig) {
		t.Fatalf("oversized ordinary send: %v, want errFrameTooBig", err)
	}
	// Forge the header of an oversized ingest frame; recv must reject on
	// the type byte without waiting for (or allocating) the claimed body.
	go func() {
		hdr := []byte{0x10, 0x00, 0x00, 0x01, msgIngest} // claims a 256 MiB ingest frame
		a.bw.Write(hdr)
		a.bw.Flush()
	}()
	_, _, err := b.recv()
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("forged oversized ingest frame: %v", err)
	}
}
