package baseline

import (
	"math"
	"testing"

	"crowdassess/internal/crowd"
	"crowdassess/internal/randx"
	"crowdassess/internal/sim"
)

func TestOldTechniqueBasics(t *testing.T) {
	src := randx.NewSource(1)
	rates := []float64{0.1, 0.2, 0.3, 0.15, 0.25, 0.1, 0.2}
	ds, _, err := sim.Binary{Tasks: 200, Workers: 7, ErrorRates: rates}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	ivs, err := OldTechnique{Confidence: 0.9}.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 7 {
		t.Fatalf("%d intervals", len(ivs))
	}
	contained := 0
	for w, iv := range ivs {
		if !iv.IsValid() {
			t.Errorf("worker %d: invalid interval %v", w, iv)
		}
		if iv.Contains(rates[w]) {
			contained++
		}
	}
	// Conservative intervals should contain the truth essentially always.
	if contained < 6 {
		t.Errorf("only %d/7 intervals contain the truth", contained)
	}
}

func TestOldTechniqueRequiresRegular(t *testing.T) {
	src := randx.NewSource(2)
	ds, _, err := sim.Binary{Tasks: 100, Workers: 5, Density: 0.8}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (OldTechnique{Confidence: 0.9}).Evaluate(ds); err == nil {
		t.Error("non-regular data accepted")
	}
}

func TestOldTechniqueValidation(t *testing.T) {
	ds := crowd.MustNewDataset(3, 5, 3)
	if _, err := (OldTechnique{Confidence: 0.9}).Evaluate(ds); err == nil {
		t.Error("k-ary accepted")
	}
	ds2 := crowd.MustNewDataset(2, 5, 2)
	fill(ds2)
	if _, err := (OldTechnique{Confidence: 0.9}).Evaluate(ds2); err == nil {
		t.Error("2 workers accepted")
	}
	ds3 := crowd.MustNewDataset(3, 5, 2)
	fill(ds3)
	if _, err := (OldTechnique{Confidence: 0}).Evaluate(ds3); err == nil {
		t.Error("confidence 0 accepted")
	}
}

func fill(ds *crowd.Dataset) {
	for w := 0; w < ds.Workers(); w++ {
		for t := 0; t < ds.Tasks(); t++ {
			_ = ds.SetResponse(w, t, crowd.Yes)
		}
	}
}

func TestOldTechniqueSpammerVacuous(t *testing.T) {
	// A pure spammer drives agreement to ½; the old technique falls back to
	// the vacuous [0, ½] bound rather than failing.
	src := randx.NewSource(3)
	rates := []float64{0.5, 0.5, 0.5, 0.5, 0.5}
	ds, _, err := sim.Binary{Tasks: 300, Workers: 5, ErrorRates: rates}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	ivs, err := OldTechnique{Confidence: 0.9}.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	for w, iv := range ivs {
		if !iv.IsValid() {
			t.Errorf("worker %d interval invalid: %v", w, iv)
		}
	}
}

func TestOldTechniqueWiderThanTight(t *testing.T) {
	// Sanity for Fig. 1's premise: conservative propagation yields wide
	// intervals. At c=0.5 with 100 tasks the paper reports ≈0.11 average
	// size; accept anything clearly non-trivial and valid.
	src := randx.NewSource(4)
	ds, _, err := sim.Binary{Tasks: 100, Workers: 3}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	ivs, err := OldTechnique{Confidence: 0.5}.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	for w, iv := range ivs {
		if iv.Size() <= 0 {
			t.Errorf("worker %d: empty interval %v", w, iv)
		}
	}
}

func TestSuperWorkerMajority(t *testing.T) {
	ds := crowd.MustNewDataset(3, 2, 2)
	// Task 0: Y,N,N → majority N among {1,2} is N... members {1,2}: N,N → N.
	_ = ds.SetResponse(0, 0, crowd.Yes)
	_ = ds.SetResponse(1, 0, crowd.No)
	_ = ds.SetResponse(2, 0, crowd.No)
	_ = ds.SetResponse(0, 1, crowd.Yes)
	_ = ds.SetResponse(1, 1, crowd.Yes)
	_ = ds.SetResponse(2, 1, crowd.No)
	resp := superWorker(ds, []int{1, 2})
	if resp[0] != crowd.No {
		t.Errorf("task 0 super response = %v, want No", resp[0])
	}
	// Tie (Y from 1, N from 2) breaks toward Yes.
	if resp[1] != crowd.Yes {
		t.Errorf("task 1 super response = %v, want Yes (tie)", resp[1])
	}
}

func TestDawidSkeneBinaryRecovers(t *testing.T) {
	src := randx.NewSource(5)
	rates := []float64{0.1, 0.2, 0.3, 0.15, 0.25}
	ds, _, err := sim.Binary{Tasks: 800, Workers: 5, ErrorRates: rates}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DawidSkene{}.Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	for w, want := range rates {
		if math.Abs(res.ErrorRate[w]-want) > 0.06 {
			t.Errorf("worker %d EM error rate %v, want ≈%v", w, res.ErrorRate[w], want)
		}
	}
	// Posterior should recover most truths.
	correct := 0
	for task := 0; task < ds.Tasks(); task++ {
		best, bestP := 0, -1.0
		for j, p := range res.Posterior[task] {
			if p > bestP {
				best, bestP = j, p
			}
		}
		if crowd.Response(best+1) == ds.Truth(task) {
			correct++
		}
	}
	if acc := float64(correct) / float64(ds.Tasks()); acc < 0.95 {
		t.Errorf("EM truth accuracy %v", acc)
	}
}

func TestDawidSkeneKAry(t *testing.T) {
	src := randx.NewSource(6)
	confs := []sim.Confusion{
		sim.PaperMatricesArity3[0],
		sim.PaperMatricesArity3[1],
		sim.PaperMatricesArity3[2],
		sim.PaperMatricesArity3[0],
		sim.PaperMatricesArity3[1],
	}
	ds, _, err := sim.KAry{Tasks: 1500, Workers: 5, Confusions: confs}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DawidSkene{}.Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	for w := range confs {
		for j1 := 0; j1 < 3; j1++ {
			for j2 := 0; j2 < 3; j2++ {
				if math.Abs(res.Confusion[w][j1][j2]-confs[w][j1][j2]) > 0.08 {
					t.Errorf("worker %d P(%d,%d) = %v, want ≈%v",
						w, j1, j2, res.Confusion[w][j1][j2], confs[w][j1][j2])
				}
			}
		}
	}
	for j := 0; j < 3; j++ {
		if math.Abs(res.Selectivity[j]-1.0/3) > 0.05 {
			t.Errorf("selectivity[%d] = %v", j, res.Selectivity[j])
		}
	}
}

func TestDawidSkeneSparse(t *testing.T) {
	src := randx.NewSource(7)
	ds, rates, err := sim.Binary{Tasks: 600, Workers: 8, Density: 0.4}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DawidSkene{}.Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	for w, want := range rates {
		if math.Abs(res.ErrorRate[w]-want) > 0.1 {
			t.Errorf("sparse worker %d EM error %v, want ≈%v", w, res.ErrorRate[w], want)
		}
	}
}

func TestDawidSkeneEmptyDataset(t *testing.T) {
	ds := crowd.MustNewDataset(3, 5, 2)
	if _, err := (DawidSkene{}).Fit(ds); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestDawidSkeneConverges(t *testing.T) {
	src := randx.NewSource(8)
	ds, _, err := sim.Binary{Tasks: 300, Workers: 5}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DawidSkene{MaxIter: 200}.Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 200 {
		t.Errorf("EM used all %d iterations without converging", res.Iterations)
	}
	if math.IsNaN(res.LogLikelihood) || math.IsInf(res.LogLikelihood, 0) {
		t.Errorf("log-likelihood = %v", res.LogLikelihood)
	}
}

func TestMajorityErrorRates(t *testing.T) {
	src := randx.NewSource(9)
	rates := []float64{0.1, 0.1, 0.1, 0.1, 0.45}
	ds, _, err := sim.Binary{Tasks: 400, Workers: 5, ErrorRates: rates}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	got := MajorityErrorRates(ds)
	// The bad worker should stand out clearly.
	for w := 0; w < 4; w++ {
		if got[w] > 0.25 {
			t.Errorf("good worker %d majority disagreement %v", w, got[w])
		}
	}
	if got[4] < 0.3 {
		t.Errorf("spammer majority disagreement %v", got[4])
	}
}
