// Package baseline implements the comparison methods of the paper's
// evaluation: the authors' previous technique [2] ("old technique", used in
// Fig. 1), the Dawid–Skene EM estimator that anchors the related-work
// discussion, and plain majority voting.
package baseline

import (
	"fmt"
	"math"

	"crowdassess/internal/crowd"
	"crowdassess/internal/stat"
)

// OldTechnique reproduces the KDD'13 method of reference [2] as this paper
// describes it: to evaluate worker i, the remaining workers are split into
// two "super-workers" whose response on a task is the majority response of
// their half; the three pairwise agreement rates then bound the worker's
// error rate through the same closed form f, but with worst-case
// (union-bound) interval propagation rather than the delta method — which
// is what makes its intervals conservative. It requires regular data and
// assumes equal false-positive/negative rates, exactly the restrictions the
// paper lifts.
type OldTechnique struct {
	// Confidence is the interval level c ∈ (0,1).
	Confidence float64
}

// Evaluate returns c-confidence intervals for every worker's error rate.
// It fails unless the dataset is binary and regular (the old technique's
// fundamental assumption: a super-worker must have a consistent error rate
// across all tasks, which only holds when every worker answers every task).
func (o OldTechnique) Evaluate(ds *crowd.Dataset) ([]stat.Interval, error) {
	if ds.Arity() != 2 {
		return nil, fmt.Errorf("baseline: old technique requires binary tasks, got arity %d", ds.Arity())
	}
	if !ds.IsRegular() {
		return nil, fmt.Errorf("baseline: old technique requires regular data")
	}
	if !(o.Confidence > 0 && o.Confidence < 1) {
		return nil, fmt.Errorf("baseline: confidence %v outside (0,1)", o.Confidence)
	}
	m := ds.Workers()
	if m < 3 {
		return nil, fmt.Errorf("baseline: old technique needs ≥3 workers, have %d", m)
	}
	n := ds.Tasks()
	out := make([]stat.Interval, m)
	// Union bound: three agreement intervals must hold simultaneously.
	perQ := 1 - (1-o.Confidence)/3
	for i := 0; i < m; i++ {
		// Split the other workers into two halves (first half, second half
		// in index order — the reference implementation used an arbitrary
		// partition).
		var others []int
		for w := 0; w < m; w++ {
			if w != i {
				others = append(others, w)
			}
		}
		halfA := others[:len(others)/2]
		halfB := others[len(others)/2:]
		respA := superWorker(ds, halfA)
		respB := superWorker(ds, halfB)

		var agreeIA, agreeIB, agreeAB int
		for t := 0; t < n; t++ {
			ri := ds.Response(i, t)
			if ri == respA[t] {
				agreeIA++
			}
			if ri == respB[t] {
				agreeIB++
			}
			if respA[t] == respB[t] {
				agreeAB++
			}
		}
		ivIA := stat.Wilson(agreeIA, n, perQ)
		ivIB := stat.Wilson(agreeIB, n, perQ)
		ivAB := stat.Wilson(agreeAB, n, perQ)

		mean, lo, hi, ok := propagateWorstCase(
			float64(agreeIA)/float64(n),
			float64(agreeIB)/float64(n),
			float64(agreeAB)/float64(n),
			ivIA, ivIB, ivAB)
		if !ok {
			// Agreement rates at or below ½: the old technique cannot bound
			// this worker better than "anything below a coin flip".
			out[i] = stat.Interval{Mean: 0.25, Lo: 0, Hi: 0.5, Confidence: o.Confidence}
			continue
		}
		out[i] = stat.Interval{Mean: mean, Lo: lo, Hi: hi, Confidence: o.Confidence}.ClampTo(0, 1)
	}
	return out, nil
}

// superWorker returns the majority response of the given workers per task.
// Regularity guarantees every member responded; ties break toward Yes to
// keep the super-worker deterministic.
func superWorker(ds *crowd.Dataset, members []int) []crowd.Response {
	n := ds.Tasks()
	out := make([]crowd.Response, n)
	for t := 0; t < n; t++ {
		yes := 0
		for _, w := range members {
			if ds.Response(w, t) == crowd.Yes {
				yes++
			}
		}
		if 2*yes >= len(members) {
			out[t] = crowd.Yes
		} else {
			out[t] = crowd.No
		}
	}
	return out
}

// propagateWorstCase pushes the three agreement intervals through
// f(a,b,c) = ½ − ½√((2a−1)(2b−1)/(2c−1)) by evaluating all corner
// combinations: f is monotone in each argument on the valid domain, so the
// extrema lie at corners. ok is false when the point estimates leave the
// domain (agreement ≤ ½). Out-of-domain corners are clamped to the
// worst-case endpoint p = ½.
func propagateWorstCase(qa, qb, qc float64, ia, ib, ic stat.Interval) (mean, lo, hi float64, ok bool) {
	point, valid := fOld(qa, qb, qc)
	if !valid {
		return 0, 0, 0, false
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, a := range []float64{ia.Lo, ia.Hi} {
		for _, b := range []float64{ib.Lo, ib.Hi} {
			for _, c := range []float64{ic.Lo, ic.Hi} {
				v, valid := fOld(a, b, c)
				if !valid {
					// A corner at or below ½ admits error rates up to ½.
					v = 0.5
				}
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
	}
	return point, lo, hi, true
}

func fOld(a, b, c float64) (float64, bool) {
	ta, tb, tc := 2*a-1, 2*b-1, 2*c-1
	if ta <= 0 || tb <= 0 || tc <= 0 {
		return 0, false
	}
	return 0.5 - 0.5*math.Sqrt(ta*tb/tc), true
}
