package baseline

import (
	"fmt"
	"math"

	"crowdassess/internal/crowd"
)

// DawidSkene is the classical EM estimator for worker confusion matrices
// and task truths [Dawid & Skene 1979] — the point-estimate baseline the
// paper's related-work section contrasts against (no confidence intervals,
// convergence only to a local optimum).
type DawidSkene struct {
	// MaxIter bounds the EM iterations. Zero means 100.
	MaxIter int
	// Tol stops iteration when the log-likelihood improves by less. Zero
	// means 1e-7.
	Tol float64
	// Smoothing is the Laplace pseudo-count added to confusion rows and the
	// class prior. Zero means 0.01.
	Smoothing float64
}

// DawidSkeneResult holds the EM point estimates.
type DawidSkeneResult struct {
	// Confusion[w][j1][j2] estimates worker w's probability of answering
	// class j2+1 when the truth is class j1+1.
	Confusion [][][]float64
	// Selectivity estimates the prior over true classes.
	Selectivity []float64
	// Posterior[t][j] is the posterior probability that task t's truth is
	// class j+1.
	Posterior [][]float64
	// ErrorRate[w] = Σ_j s_j·(1 − Confusion[w][j][j]): the marginal
	// probability that worker w answers incorrectly.
	ErrorRate []float64
	// Iterations actually performed.
	Iterations int
	// LogLikelihood at the final iterate.
	LogLikelihood float64
}

// Fit runs EM on the dataset. Workers with no responses keep uniform
// confusion rows. The dataset's gold answers are never consulted.
func (cfg DawidSkene) Fit(ds *crowd.Dataset) (*DawidSkeneResult, error) {
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 100
	}
	tol := cfg.Tol
	if tol <= 0 {
		tol = 1e-7
	}
	smooth := cfg.Smoothing
	if smooth <= 0 {
		smooth = 0.01
	}
	m, n, k := ds.Workers(), ds.Tasks(), ds.Arity()

	// Initialize posteriors from per-task response frequencies (a soft
	// majority vote). Tasks with no responses start uniform.
	post := make([][]float64, n)
	anyResponse := false
	for t := 0; t < n; t++ {
		post[t] = make([]float64, k)
		total := 0
		for w := 0; w < m; w++ {
			if r := ds.Response(w, t); r != crowd.None {
				post[t][r-1]++
				total++
			}
		}
		if total == 0 {
			for j := range post[t] {
				post[t][j] = 1 / float64(k)
			}
			continue
		}
		anyResponse = true
		for j := range post[t] {
			post[t][j] = (post[t][j] + smooth) / (float64(total) + smooth*float64(k))
		}
	}
	if !anyResponse {
		return nil, fmt.Errorf("baseline: dataset has no responses")
	}

	conf := make([][][]float64, m)
	sel := make([]float64, k)
	var prevLL float64
	iterations := 0
	var ll float64
	for iter := 0; iter < maxIter; iter++ {
		iterations = iter + 1
		// M-step: confusion matrices and class prior from soft counts.
		for j := range sel {
			sel[j] = smooth
		}
		for t := 0; t < n; t++ {
			for j := 0; j < k; j++ {
				sel[j] += post[t][j]
			}
		}
		normalize(sel)
		for w := 0; w < m; w++ {
			rows := make([][]float64, k)
			for j1 := 0; j1 < k; j1++ {
				rows[j1] = make([]float64, k)
				for j2 := 0; j2 < k; j2++ {
					rows[j1][j2] = smooth
				}
			}
			for t := 0; t < n; t++ {
				r := ds.Response(w, t)
				if r == crowd.None {
					continue
				}
				for j1 := 0; j1 < k; j1++ {
					rows[j1][r-1] += post[t][j1]
				}
			}
			for j1 := 0; j1 < k; j1++ {
				normalize(rows[j1])
			}
			conf[w] = rows
		}
		// E-step: recompute posteriors and the log-likelihood.
		ll = 0
		for t := 0; t < n; t++ {
			var logp [64]float64 // k ≤ 64 in any reasonable crowd task
			maxLog := math.Inf(-1)
			for j := 0; j < k; j++ {
				lp := math.Log(sel[j])
				for w := 0; w < m; w++ {
					if r := ds.Response(w, t); r != crowd.None {
						lp += math.Log(conf[w][j][r-1])
					}
				}
				logp[j] = lp
				if lp > maxLog {
					maxLog = lp
				}
			}
			var z float64
			for j := 0; j < k; j++ {
				post[t][j] = math.Exp(logp[j] - maxLog)
				z += post[t][j]
			}
			for j := 0; j < k; j++ {
				post[t][j] /= z
			}
			ll += maxLog + math.Log(z)
		}
		if iter > 0 && math.Abs(ll-prevLL) < tol*(1+math.Abs(prevLL)) {
			break
		}
		prevLL = ll
	}

	res := &DawidSkeneResult{
		Confusion:     conf,
		Selectivity:   sel,
		Posterior:     post,
		ErrorRate:     make([]float64, m),
		Iterations:    iterations,
		LogLikelihood: ll,
	}
	for w := 0; w < m; w++ {
		var e float64
		for j := 0; j < k; j++ {
			e += sel[j] * (1 - conf[w][j][j])
		}
		res.ErrorRate[w] = e
	}
	return res, nil
}

func normalize(xs []float64) {
	var s float64
	for _, x := range xs {
		s += x
	}
	if s == 0 {
		return
	}
	for i := range xs {
		xs[i] /= s
	}
}

// MajorityErrorRates returns each worker's disagreement with the majority
// vote — the simplest baseline, and the paper's spammer-screening signal.
func MajorityErrorRates(ds *crowd.Dataset) []float64 {
	return ds.MajorityDisagreement()
}
