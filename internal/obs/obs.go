// Package obs is the repo's stdlib-only observability layer: a
// concurrent metrics registry (counters, gauges, fixed-bucket latency
// histograms with quantile estimation), Prometheus text-format
// exposition, and structured log/slog event logging with per-request
// IDs.
//
// The package is deliberately dependency-free — no prometheus client,
// no OpenTelemetry — matching the repo's no-go.sum discipline. It is
// also deliberately clock-injected: every duration measurement flows
// through a Clock so instrumented packages never call time.Now
// themselves, keeping the crowdvet determinism analyzer's contract
// intact (clocks here pace *measurement*, never decisions — see the
// exemption note in internal/analysis/coverage_test.go).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Clock abstracts wall-clock access so instrumentation can be driven by
// a fake in tests and so bit-identity packages never import a clock
// implicitly: they receive one, visibly, from the composition root.
type Clock interface {
	Now() time.Time
	Since(t time.Time) time.Duration
}

// SystemClock is the real wall clock.
type SystemClock struct{}

// Now returns the current wall-clock time.
func (SystemClock) Now() time.Time { return time.Now() }

// Since returns the elapsed wall-clock time since t.
func (SystemClock) Since(t time.Time) time.Duration { return time.Since(t) }

// Label is one name=value dimension on a metric.
type Label struct {
	Key, Value string
}

// kind is the Prometheus metric type of a family.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing uint64. All methods are safe
// for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down. All methods are safe for
// concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; safe under contention).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metric is one labeled series inside a family.
type metric struct {
	labels []Label
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// family is one metric name: a help string, a type, and the labeled
// series registered under it.
type family struct {
	name    string
	help    string
	typ     kind
	mu      sync.Mutex
	series  map[string]*metric
	ordered []*metric // insertion order; re-sorted at exposition
}

// Registry is a concurrent collection of metric families. All
// registration methods are get-or-create: calling Counter twice with
// the same name and labels returns the same *Counter, so call sites
// can register at use without coordination.
type Registry struct {
	clock Clock
	start time.Time

	mu       sync.RWMutex
	families map[string]*family
	names    []string
}

// NewRegistry returns an empty registry using clock for uptime and any
// time-derived exposition. A nil clock selects SystemClock.
func NewRegistry(clock Clock) *Registry {
	if clock == nil {
		clock = SystemClock{}
	}
	return &Registry{
		clock:    clock,
		start:    clock.Now(),
		families: make(map[string]*family),
	}
}

// Clock returns the registry's clock, for call sites that time their
// own intervals (histogram observations) with the same source.
func (r *Registry) Clock() Clock { return r.clock }

// Uptime returns the elapsed time since the registry was created —
// process uptime when the registry is built at startup.
func (r *Registry) Uptime() time.Duration { return r.clock.Since(r.start) }

// labelKey canonicalizes a label set into a map key: sorted by key,
// NUL-separated. Label values are rare and operator-controlled here, so
// no escaping beyond the separator is needed for uniqueness.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte(0)
		b.WriteString(l.Value)
		b.WriteByte(0)
	}
	return b.String()
}

// sortLabels returns a copy of labels sorted by key so the same set in
// any order names the same series.
func sortLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// getFamily returns the family for name, creating it with help and typ
// on first use. A name reused with a different type panics: that is a
// programming error that would emit invalid exposition.
func (r *Registry) getFamily(name, help string, typ kind) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.families[name]
		if f == nil {
			f = &family{name: name, help: help, typ: typ, series: make(map[string]*metric)}
			r.families[name] = f
			r.names = append(r.names, name)
			sort.Strings(r.names)
		}
		r.mu.Unlock()
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	return f
}

// Counter returns the counter for name+labels, registering it on first
// use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.getFamily(name, help, kindCounter)
	labels = sortLabels(labels)
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m.c
	}
	m := &metric{labels: labels, c: &Counter{}}
	f.series[key] = m
	f.ordered = append(f.ordered, m)
	return m.c
}

// Gauge returns the gauge for name+labels, registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.getFamily(name, help, kindGauge)
	labels = sortLabels(labels)
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m.g
	}
	m := &metric{labels: labels, g: &Gauge{}}
	f.series[key] = m
	f.ordered = append(f.ordered, m)
	return m.g
}

// GaugeFunc registers fn as the value source for name+labels; fn is
// evaluated at each scrape. Registering the same series twice replaces
// the function — the newest source wins, which is what a reconfigured
// component wants.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.getFamily(name, help, kindGauge)
	labels = sortLabels(labels)
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		m.gf = fn
		return
	}
	f.series[key] = &metric{labels: labels, gf: fn}
	f.ordered = append(f.ordered, f.series[key])
}

// Histogram returns the histogram for name+labels, registering it on
// first use with the given bucket upper bounds (nil selects
// DefLatencyBuckets). Bounds must be sorted ascending; an implicit +Inf
// bucket is always appended.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	f := r.getFamily(name, help, kindHistogram)
	labels = sortLabels(labels)
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m.h
	}
	m := &metric{labels: labels, h: NewHistogram(buckets)}
	f.series[key] = m
	f.ordered = append(f.ordered, m)
	return m.h
}

// GaugeValue reads the current value of a registered gauge series (a
// plain gauge or a GaugeFunc), for callers that render the same numbers
// in another format (crowdd's /statsz). The second result is false when
// the series does not exist.
func (r *Registry) GaugeValue(name string, labels ...Label) (float64, bool) {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil || f.typ != kindGauge {
		return 0, false
	}
	key := labelKey(sortLabels(labels))
	f.mu.Lock()
	m := f.series[key]
	var fn func() float64
	var g *Gauge
	if m != nil {
		fn, g = m.gf, m.g
	}
	f.mu.Unlock()
	switch {
	case fn != nil:
		return fn(), true
	case g != nil:
		return g.Value(), true
	}
	return 0, false
}

// CounterValue reads the current value of a registered counter series.
// The second result is false when the series does not exist.
func (r *Registry) CounterValue(name string, labels ...Label) (uint64, bool) {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil || f.typ != kindCounter {
		return 0, false
	}
	key := labelKey(sortLabels(labels))
	f.mu.Lock()
	m := f.series[key]
	f.mu.Unlock()
	if m == nil || m.c == nil {
		return 0, false
	}
	return m.c.Value(), true
}
