package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable clock for deterministic tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry(nil)
	c := r.Counter("x_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same series.
	if r.Counter("x_total", "help") != c {
		t.Fatal("counter registration is not idempotent")
	}
	g := r.Gauge("g", "help", Label{"a", "1"})
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	// Label order must not matter.
	g2 := r.Gauge("multi", "help", Label{"a", "1"}, Label{"b", "2"})
	g3 := r.Gauge("multi", "help", Label{"b", "2"}, Label{"a", "1"})
	if g2 != g3 {
		t.Fatal("label order created distinct series")
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry(nil)
	r.Counter("dup", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("reusing a name with another type did not panic")
		}
	}()
	r.Gauge("dup", "help")
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 5, 100} {
		h.Observe(v)
	}
	// Buckets: le=1 gets {0.5, 1}, le=2 gets {1.5, 2}, le=4 gets {3},
	// +Inf gets {5, 100}.
	want := []uint64{2, 2, 1, 2}
	got := h.snapshot()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if math.Abs(h.Sum()-113.0) > 1e-9 {
		t.Fatalf("sum = %v, want 113", h.Sum())
	}
}

// TestHistogramQuantileUniform checks the interpolating estimator
// against a known uniform distribution: 10k points evenly spread over
// (0, 10] with bucket bounds every 1.0 must recover quantiles to well
// within one bucket width.
func TestHistogramQuantileUniform(t *testing.T) {
	bounds := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	h := NewHistogram(bounds)
	const n = 10000
	for i := 1; i <= n; i++ {
		h.Observe(float64(i) * 10.0 / n)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 5.0},
		{0.95, 9.5},
		{0.99, 9.9},
		{0.10, 1.0},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > 0.05 {
			t.Errorf("Quantile(%v) = %v, want %v ± 0.05", tc.q, got, tc.want)
		}
	}
}

// TestHistogramQuantileSkewed checks a two-mode distribution: 90% of
// mass at ~1ms, 10% at ~500ms. p50 must sit in the fast mode, p99 in
// the slow one.
func TestHistogramQuantileSkewed(t *testing.T) {
	h := NewHistogram(nil) // DefLatencyBuckets
	for i := 0; i < 900; i++ {
		h.Observe(0.001)
	}
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	if p50 := h.Quantile(0.5); p50 > 0.0025 {
		t.Errorf("p50 = %v, want <= 0.0025 (fast mode)", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 0.25 || p99 > 0.5 {
		t.Errorf("p99 = %v, want in (0.25, 0.5] (slow mode)", p99)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	h.Observe(1000) // overflow bucket only
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("overflow-only quantile = %v, want largest bound 2", got)
	}
}

// TestPrometheusExpositionGolden pins the full text format: family
// ordering, HELP/TYPE lines, label rendering, cumulative buckets,
// +Inf, _sum and _count.
func TestPrometheusExpositionGolden(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	r := NewRegistry(clk)
	r.Counter("b_total", "Total b events.", Label{"kind", "x"}).Add(3)
	r.Counter("b_total", "Total b events.", Label{"kind", "y"}).Add(1)
	r.Gauge("a_gauge", "A gauge.").Set(2.5)
	r.GaugeFunc("c_fn", "Scrape-time value.", func() float64 { return 7 })
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1}, Label{"op", `in"g`})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_gauge A gauge.
# TYPE a_gauge gauge
a_gauge 2.5
# HELP b_total Total b events.
# TYPE b_total counter
b_total{kind="x"} 3
b_total{kind="y"} 1
# HELP c_fn Scrape-time value.
# TYPE c_fn gauge
c_fn 7
# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{op="in\"g",le="0.1"} 1
lat_seconds_bucket{op="in\"g",le="1"} 2
lat_seconds_bucket{op="in\"g",le="+Inf"} 3
lat_seconds_sum{op="in\"g"} 2.55
lat_seconds_count{op="in\"g"} 3
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestServeHTTP(t *testing.T) {
	r := NewRegistry(nil)
	r.Counter("hits_total", "Hits.").Inc()
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "hits_total 1") {
		t.Fatalf("body missing counter:\n%s", rec.Body.String())
	}
}

// TestRegistryConcurrency hammers one registry from 8 goroutines —
// registering, incrementing and observing — while a scraper loops
// WritePrometheus. Run under -race this is the data-race proof; the
// final counter total is the lost-update proof.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry(nil)
	const (
		workers = 8
		perG    = 2000
	)
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() { // concurrent scraper
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("conc_total", "h").Inc()
				r.Gauge("conc_gauge", "h", Label{"g", string(rune('a' + g))}).Set(float64(i))
				r.Histogram("conc_seconds", "h", nil).Observe(float64(i) / perG)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	scraper.Wait()
	if got := r.Counter("conc_total", "h").Value(); got != workers*perG {
		t.Fatalf("lost updates: counter = %d, want %d", got, workers*perG)
	}
	if got := r.Histogram("conc_seconds", "h", nil).Count(); got != workers*perG {
		t.Fatalf("lost observations: count = %d, want %d", got, workers*perG)
	}
}

func TestUptimeUsesClock(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	r := NewRegistry(clk)
	clk.advance(90 * time.Second)
	if got := r.Uptime(); got != 90*time.Second {
		t.Fatalf("uptime = %v, want 90s", got)
	}
}

func TestRequestIDAndContext(t *testing.T) {
	a := NewRequestID("node1")
	b := NewRequestID("node1")
	if a == b {
		t.Fatalf("request IDs collide: %q", a)
	}
	if !strings.HasPrefix(a, "node1-") {
		t.Fatalf("id %q missing prefix", a)
	}
	ctx := WithRequestID(context.Background(), a)
	if got := RequestIDFrom(ctx); got != a {
		t.Fatalf("RequestIDFrom = %q, want %q", got, a)
	}
	if got := RequestIDFrom(context.Background()); got != "" {
		t.Fatalf("empty context id = %q, want empty", got)
	}
}

func TestHTTPMiddleware(t *testing.T) {
	var logBuf bytes.Buffer
	logger := NewLogger(&logBuf, "test", slog.LevelInfo)
	r := NewRegistry(nil)
	req := httptest.NewRequest("GET", "/statsz", nil)
	rec := httptest.NewRecorder()
	var sawID string
	handler := HTTPMiddleware(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		sawID = RequestIDFrom(req.Context())
		w.WriteHeader(http.StatusOK)
	}), logger, r, "w0")
	handler.ServeHTTP(rec, req)
	if sawID == "" {
		t.Fatal("handler saw no request ID")
	}
	if hdr := rec.Header().Get("X-Request-Id"); hdr != sawID {
		t.Fatalf("header id %q != context id %q", hdr, sawID)
	}
	if c := r.Histogram("http_request_seconds", "", nil, Label{"path", "/statsz"}).Count(); c != 1 {
		t.Fatalf("latency histogram count = %d, want 1", c)
	}
	var line map[string]any
	if err := json.Unmarshal(logBuf.Bytes(), &line); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, logBuf.String())
	}
	if line["req_id"] != sawID || line["path"] != "/statsz" {
		t.Fatalf("log line missing fields: %v", line)
	}
}
