package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// escapeLabelValue escapes a label value per the Prometheus text
// format: backslash, double-quote and newline.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a help string per the text format: backslash and
// newline only.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a float the way Prometheus expects: shortest
// round-trip representation, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...} for the series' own labels plus any
// extra pair (used for histogram le), or "" when there are none.
func labelString(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, l := range labels {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4): families sorted by name,
// series within a family sorted by label string, histograms expanded to
// cumulative _bucket/_sum/_count lines.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, len(r.names))
	copy(names, r.names)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	for _, f := range fams {
		f.mu.Lock()
		series := make([]*metric, len(f.ordered))
		copy(series, f.ordered)
		f.mu.Unlock()
		sort.Slice(series, func(i, j int) bool {
			return labelKey(series[i].labels) < labelKey(series[j].labels)
		})
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, m := range series {
			if err := writeSeries(w, f, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, m *metric) error {
	switch f.typ {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(m.labels, "", ""), m.c.Value())
		return err
	case kindGauge:
		v := 0.0
		if m.gf != nil {
			v = m.gf()
		} else if m.g != nil {
			v = m.g.Value()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(m.labels, "", ""), formatValue(v))
		return err
	case kindHistogram:
		h := m.h
		counts := h.snapshot()
		var cum uint64
		for i, bound := range h.bounds {
			cum += counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, labelString(m.labels, "le", formatValue(bound)), cum); err != nil {
				return err
			}
		}
		cum += counts[len(h.bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, labelString(m.labels, "le", "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
			f.name, labelString(m.labels, "", ""), formatValue(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n",
			f.name, labelString(m.labels, "", ""), cum)
		return err
	}
	return nil
}

// ServeHTTP makes the registry a /metrics handler.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// Exposition writes only registry state; an error here is the
	// client hanging up, which needs no handling.
	_ = r.WritePrometheus(w)
}
