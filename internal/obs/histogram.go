package obs

import (
	"math"
	"sync/atomic"
)

// DefLatencyBuckets are the default histogram bounds, in seconds:
// 100µs to 10s in a roughly-logarithmic ladder. They cover everything
// from an in-process RPC to a cold state transfer without wasting
// buckets on either end.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram: cumulative-on-read bucket
// counts, a running sum, and a total count, all updated atomically so
// Observe is wait-free and safe from any number of goroutines. A scrape
// that races observations sees a consistent-enough snapshot: bucket
// counts may trail the total by in-flight observations, which
// exposition tolerates (Prometheus semantics are eventually-cumulative
// anyway).
type Histogram struct {
	bounds []float64       // sorted ascending; +Inf is implicit
	counts []atomic.Uint64 // per-bucket (not cumulative), len(bounds)+1
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-added
}

// NewHistogram returns a histogram with the given upper bounds (nil
// selects DefLatencyBuckets). Bounds must be sorted ascending.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("obs: histogram bounds must be sorted ascending")
		}
	}
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Uint64, len(b)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot copies the per-bucket counts. The copy is not atomic across
// buckets; see the type comment.
func (h *Histogram) snapshot() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the bucket where the target rank falls: the
// standard fixed-bucket estimator, accurate to the bucket resolution.
// Values in the overflow (+Inf) bucket are attributed to the largest
// finite bound — the estimator cannot resolve beyond its ladder.
// Returns NaN when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	counts := h.snapshot()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range counts {
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(h.bounds) {
				// Overflow bucket: no upper bound to interpolate toward.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			// Position of the target rank inside this bucket.
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}
