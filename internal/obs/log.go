package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync/atomic"
)

// reqSeq numbers requests process-wide; the process prefix makes IDs
// unique across a fleet without coordination.
var reqSeq atomic.Uint64

// requestIDKey is the context key for the per-request ID.
type requestIDKey struct{}

// NewRequestID mints a process-unique request ID with the given prefix
// (typically the node name). IDs are sequential per process — cheap,
// collision-free, and trivially greppable in logs.
func NewRequestID(prefix string) string {
	return fmt.Sprintf("%s-%d", prefix, reqSeq.Add(1))
}

// WithRequestID returns ctx carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the request ID carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// NewLogger returns a JSON slog.Logger writing to w at the given level,
// tagged with the component name. This is the logging spine every
// daemon component shares: one line per event, machine-parseable.
func NewLogger(w io.Writer, component string, level slog.Level) *slog.Logger {
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})
	return slog.New(h).With("component", component)
}

// statusRecorder captures the response status for access logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (s *statusRecorder) WriteHeader(code int) {
	s.status = code
	s.ResponseWriter.WriteHeader(code)
}

// HTTPMiddleware wraps next with per-request observability: it mints a
// request ID (echoed in the X-Request-Id response header and threaded
// through the request context), logs one structured line per request
// with method/path/status/duration, and records the request latency
// into reg's http_request_seconds histogram labeled by path.
func HTTPMiddleware(next http.Handler, logger *slog.Logger, reg *Registry, idPrefix string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		clock := reg.Clock()
		start := clock.Now()
		id := NewRequestID(idPrefix)
		w.Header().Set("X-Request-Id", id)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, req.WithContext(WithRequestID(req.Context(), id)))
		elapsed := clock.Since(start)
		reg.Histogram("http_request_seconds", "HTTP request latency by path.", nil,
			Label{"path", req.URL.Path}).Observe(elapsed.Seconds())
		if logger != nil {
			logger.Info("http",
				"req_id", id,
				"method", req.Method,
				"path", req.URL.Path,
				"status", rec.status,
				"dur_ms", float64(elapsed.Microseconds())/1000.0,
			)
		}
	})
}
