package aggregate

import (
	"math"
	"testing"

	"crowdassess/internal/baseline"
	"crowdassess/internal/core"
	"crowdassess/internal/crowd"
	"crowdassess/internal/randx"
	"crowdassess/internal/sim"
)

func TestMajorityBasics(t *testing.T) {
	ds := crowd.MustNewDataset(3, 3, 2)
	_ = ds.SetResponse(0, 0, crowd.Yes)
	_ = ds.SetResponse(1, 0, crowd.Yes)
	_ = ds.SetResponse(2, 0, crowd.No)
	_ = ds.SetResponse(0, 1, crowd.No)
	ans := Majority(ds)
	if ans[0].Response != crowd.Yes || math.Abs(ans[0].Confidence-2.0/3) > 1e-12 {
		t.Errorf("task 0: %+v", ans[0])
	}
	if ans[1].Response != crowd.No || ans[1].Confidence != 1 {
		t.Errorf("task 1: %+v", ans[1])
	}
	if ans[2].Response != crowd.None {
		t.Errorf("task 2: %+v", ans[2])
	}
}

func TestWeightedBinaryOutvotesMajority(t *testing.T) {
	// One excellent worker against two near-spammers: weighting must side
	// with the excellent worker, majority cannot.
	ds := crowd.MustNewDataset(3, 1, 2)
	_ = ds.SetResponse(0, 0, crowd.Yes) // error rate 0.02
	_ = ds.SetResponse(1, 0, crowd.No)  // error rate 0.45
	_ = ds.SetResponse(2, 0, crowd.No)  // error rate 0.45
	ans, err := WeightedBinary(ds, []float64{0.02, 0.45, 0.45})
	if err != nil {
		t.Fatal(err)
	}
	if ans[0].Response != crowd.Yes {
		t.Errorf("weighted answer = %+v, want Yes", ans[0])
	}
	maj := Majority(ds)
	if maj[0].Response != crowd.No {
		t.Errorf("majority should say No: %+v", maj[0])
	}
}

func TestWeightedBinaryValidation(t *testing.T) {
	ds3 := crowd.MustNewDataset(2, 1, 3)
	if _, err := WeightedBinary(ds3, []float64{0.1, 0.1}); err == nil {
		t.Error("arity 3 accepted")
	}
	ds := crowd.MustNewDataset(2, 1, 2)
	if _, err := WeightedBinary(ds, []float64{0.1}); err == nil {
		t.Error("mismatched rates accepted")
	}
}

func TestWeightedBinarySpammerIgnored(t *testing.T) {
	ds := crowd.MustNewDataset(2, 1, 2)
	_ = ds.SetResponse(0, 0, crowd.Yes) // p = 0.1
	_ = ds.SetResponse(1, 0, crowd.No)  // p = 0.55: ignored
	ans, err := WeightedBinary(ds, []float64{0.1, 0.55})
	if err != nil {
		t.Fatal(err)
	}
	if ans[0].Response != crowd.Yes {
		t.Errorf("answer = %+v", ans[0])
	}
}

// End-to-end: estimating error rates with the paper's method and weighting
// votes by them beats plain majority on a crowd with quality spread.
func TestEvaluateThenAggregateBeatsMajority(t *testing.T) {
	var weightedWins, ties int
	const reps = 12
	for r := 0; r < reps; r++ {
		src := randx.NewSource(int64(500 + r))
		rates := []float64{0.05, 0.35, 0.4, 0.38, 0.42}
		ds, _, err := sim.Binary{Tasks: 300, Workers: 5, ErrorRates: rates}.Generate(src)
		if err != nil {
			t.Fatal(err)
		}
		ests, err := core.EvaluateWorkers(ds, core.EvalOptions{Confidence: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		estRates := make([]float64, 5)
		for w, e := range ests {
			if e.Err != nil {
				estRates[w] = 0.49 // unknown quality ≈ no weight
				continue
			}
			estRates[w] = e.Interval.Mean
		}
		weighted, err := WeightedBinary(ds, estRates)
		if err != nil {
			t.Fatal(err)
		}
		wAcc, _ := Accuracy(ds, weighted)
		mAcc, _ := Accuracy(ds, Majority(ds))
		switch {
		case wAcc > mAcc:
			weightedWins++
		case wAcc == mAcc:
			ties++
		}
	}
	if weightedWins+ties < reps*2/3 {
		t.Errorf("weighted aggregation won or tied only %d+%d of %d replicates",
			weightedWins, ties, reps)
	}
}

func TestWeightedKAryRecoversTruth(t *testing.T) {
	src := randx.NewSource(9)
	confs := []sim.Confusion{
		sim.PaperMatricesArity3[0],
		sim.PaperMatricesArity3[1],
		sim.PaperMatricesArity3[2],
		sim.PaperMatricesArity3[1],
		sim.PaperMatricesArity3[2],
	}
	ds, _, err := sim.KAry{Tasks: 500, Workers: 5, Confusions: confs}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle matrices: upper bound on aggregation quality.
	mats := make([][][]float64, 5)
	for w, c := range confs {
		mats[w] = c
	}
	ans, err := WeightedKAry(ds, mats, nil)
	if err != nil {
		t.Fatal(err)
	}
	acc, scored := Accuracy(ds, ans)
	if scored != 500 {
		t.Fatalf("scored %d", scored)
	}
	mAcc, _ := Accuracy(ds, Majority(ds))
	if acc < mAcc-0.01 {
		t.Errorf("matrix-weighted %v below majority %v", acc, mAcc)
	}
	if acc < 0.9 {
		t.Errorf("oracle-weighted accuracy %v", acc)
	}
}

func TestWeightedKAryWithEMEstimates(t *testing.T) {
	src := randx.NewSource(10)
	confs := []sim.Confusion{
		sim.PaperMatricesArity3[0],
		sim.PaperMatricesArity3[1],
		sim.PaperMatricesArity3[2],
		sim.PaperMatricesArity3[1],
		sim.PaperMatricesArity3[0],
	}
	ds, _, err := sim.KAry{Tasks: 400, Workers: 5, Confusions: confs}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	em, err := baseline.DawidSkene{}.Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := WeightedKAry(ds, em.Confusion, em.Selectivity)
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := Accuracy(ds, ans)
	if acc < 0.85 {
		t.Errorf("EM-weighted accuracy %v", acc)
	}
}

func TestWeightedKAryValidation(t *testing.T) {
	ds := crowd.MustNewDataset(2, 1, 3)
	good := [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	if _, err := WeightedKAry(ds, [][][]float64{good}, nil); err == nil {
		t.Error("wrong matrix count accepted")
	}
	bad := [][]float64{{1, 0}, {0, 1}}
	if _, err := WeightedKAry(ds, [][][]float64{good, bad}, nil); err == nil {
		t.Error("wrong matrix shape accepted")
	}
	if _, err := WeightedKAry(ds, [][][]float64{good, good}, []float64{0.5, 0.5}); err == nil {
		t.Error("wrong prior length accepted")
	}
}

func TestAccuracyNoGold(t *testing.T) {
	ds := crowd.MustNewDataset(1, 2, 2)
	_ = ds.SetResponse(0, 0, crowd.Yes)
	acc, scored := Accuracy(ds, Majority(ds))
	if acc != 0 || scored != 0 {
		t.Errorf("no-gold accuracy = %v over %d", acc, scored)
	}
}
