// Package aggregate infers task answers from crowd responses, weighting
// each worker by an estimated quality. It closes the loop the paper's
// introduction motivates: evaluate workers first (internal/core), then let
// reliable workers count for more when deciding answers.
//
// Three aggregators are provided: plain majority vote, log-odds weighted
// vote using binary error rates, and full Bayesian aggregation using k-ary
// response-probability matrices.
package aggregate

import (
	"fmt"
	"math"

	"crowdassess/internal/crowd"
)

// Answer is an inferred task answer with its posterior probability.
type Answer struct {
	Response   crowd.Response // None when no evidence exists for the task
	Confidence float64        // posterior probability of Response
}

// Majority returns the plurality answer per task, with Confidence equal to
// the plurality fraction.
func Majority(ds *crowd.Dataset) []Answer {
	out := make([]Answer, ds.Tasks())
	counts := make([]int, ds.Arity()+1)
	for t := 0; t < ds.Tasks(); t++ {
		total := 0
		for c := range counts {
			counts[c] = 0
		}
		for w := 0; w < ds.Workers(); w++ {
			r := ds.Response(w, t)
			if r != crowd.None {
				counts[r]++
				total++
			}
		}
		best, bestCount := crowd.None, 0
		for c := 1; c <= ds.Arity(); c++ {
			if counts[c] > bestCount {
				best, bestCount = crowd.Response(c), counts[c]
			}
		}
		if total == 0 {
			out[t] = Answer{Response: crowd.None, Confidence: 0}
			continue
		}
		out[t] = Answer{Response: best, Confidence: float64(bestCount) / float64(total)}
	}
	return out
}

// WeightedBinary aggregates binary responses with per-worker error rates:
// each vote contributes its log-likelihood ratio log((1−p)/p), the optimal
// weighting for independent workers. Error rates are clamped away from 0
// and ½ to keep weights finite; workers with rate ≥ ½ are ignored (their
// votes carry no usable signal under the non-malicious model).
func WeightedBinary(ds *crowd.Dataset, errorRates []float64) ([]Answer, error) {
	if ds.Arity() != 2 {
		return nil, fmt.Errorf("aggregate: WeightedBinary needs binary tasks, got arity %d", ds.Arity())
	}
	if len(errorRates) != ds.Workers() {
		return nil, fmt.Errorf("aggregate: %d error rates for %d workers", len(errorRates), ds.Workers())
	}
	weights := make([]float64, len(errorRates))
	for w, p := range errorRates {
		if p >= 0.5 {
			weights[w] = 0
			continue
		}
		if p < 1e-4 {
			p = 1e-4
		}
		weights[w] = math.Log((1 - p) / p)
	}
	out := make([]Answer, ds.Tasks())
	for t := 0; t < ds.Tasks(); t++ {
		var logOdds float64 // log P(Yes…)/P(No…)
		seen := false
		for w := 0; w < ds.Workers(); w++ {
			switch ds.Response(w, t) {
			case crowd.Yes:
				logOdds += weights[w]
				seen = true
			case crowd.No:
				logOdds -= weights[w]
				seen = true
			}
		}
		if !seen {
			out[t] = Answer{Response: crowd.None}
			continue
		}
		pYes := 1 / (1 + math.Exp(-logOdds))
		if pYes >= 0.5 {
			out[t] = Answer{Response: crowd.Yes, Confidence: pYes}
		} else {
			out[t] = Answer{Response: crowd.No, Confidence: 1 - pYes}
		}
	}
	return out, nil
}

// WeightedKAry aggregates k-ary responses with full response-probability
// matrices: the posterior over true classes is prior × Π_w P_w(truth,
// response). Matrices are per worker, k×k, rows ≈ stochastic (as produced
// by the k-ary estimator or EM); prior may be nil for uniform.
func WeightedKAry(ds *crowd.Dataset, matrices [][][]float64, prior []float64) ([]Answer, error) {
	k := ds.Arity()
	if len(matrices) != ds.Workers() {
		return nil, fmt.Errorf("aggregate: %d matrices for %d workers", len(matrices), ds.Workers())
	}
	for w, m := range matrices {
		if len(m) != k {
			return nil, fmt.Errorf("aggregate: worker %d matrix has %d rows, want %d", w, len(m), k)
		}
		for j, row := range m {
			if len(row) != k {
				return nil, fmt.Errorf("aggregate: worker %d row %d has %d entries, want %d", w, j, len(row), k)
			}
		}
	}
	if prior == nil {
		prior = make([]float64, k)
		for i := range prior {
			prior[i] = 1 / float64(k)
		}
	} else if len(prior) != k {
		return nil, fmt.Errorf("aggregate: prior has %d classes, want %d", len(prior), k)
	}
	const floor = 1e-6 // zero matrix entries must not veto a class outright
	out := make([]Answer, ds.Tasks())
	logPost := make([]float64, k)
	for t := 0; t < ds.Tasks(); t++ {
		seen := false
		for j := 0; j < k; j++ {
			p := prior[j]
			if p < floor {
				p = floor
			}
			logPost[j] = math.Log(p)
		}
		for w := 0; w < ds.Workers(); w++ {
			r := ds.Response(w, t)
			if r == crowd.None {
				continue
			}
			seen = true
			for j := 0; j < k; j++ {
				p := matrices[w][j][r-1]
				if p < floor {
					p = floor
				}
				logPost[j] += math.Log(p)
			}
		}
		if !seen {
			out[t] = Answer{Response: crowd.None}
			continue
		}
		// Normalize in log space.
		maxLog := logPost[0]
		for _, lp := range logPost[1:] {
			if lp > maxLog {
				maxLog = lp
			}
		}
		var z float64
		best, bestP := 0, -1.0
		for j := 0; j < k; j++ {
			e := math.Exp(logPost[j] - maxLog)
			z += e
			if e > bestP {
				best, bestP = j, e
			}
		}
		out[t] = Answer{Response: crowd.Response(best + 1), Confidence: bestP / z}
	}
	return out, nil
}

// Accuracy scores answers against the dataset's gold labels, skipping tasks
// without gold or without an inferred answer. It returns the fraction
// correct and the number of scored tasks.
func Accuracy(ds *crowd.Dataset, answers []Answer) (float64, int) {
	correct, scored := 0, 0
	for t := 0; t < ds.Tasks() && t < len(answers); t++ {
		g := ds.Truth(t)
		if g == crowd.None || answers[t].Response == crowd.None {
			continue
		}
		scored++
		if answers[t].Response == g {
			correct++
		}
	}
	if scored == 0 {
		return 0, 0
	}
	return float64(correct) / float64(scored), scored
}
