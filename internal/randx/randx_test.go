package randx

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := NewSource(42), NewSource(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewSource(43)
	same := true
	a = NewSource(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := NewSource(1)
	for i := 0; i < 50; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	s := NewSource(2)
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	freq := float64(hits) / n
	if math.Abs(freq-0.3) > 0.02 {
		t.Errorf("Bernoulli(0.3) frequency = %v", freq)
	}
}

func TestCategoricalFrequency(t *testing.T) {
	s := NewSource(3)
	w := []float64{1, 2, 7}
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[s.Categorical(w)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("class %d frequency = %v, want %v", i, got, want)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	s := NewSource(4)
	for _, w := range [][]float64{nil, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical(%v) did not panic", w)
				}
			}()
			s.Categorical(w)
		}()
	}
}

func TestChoice(t *testing.T) {
	s := NewSource(5)
	xs := []float64{0.1, 0.2, 0.3}
	seen := map[float64]bool{}
	for i := 0; i < 200; i++ {
		v := s.Choice(xs)
		seen[v] = true
		if v != 0.1 && v != 0.2 && v != 0.3 {
			t.Fatalf("Choice returned %v", v)
		}
	}
	if len(seen) != 3 {
		t.Error("Choice never returned some elements")
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := NewSource(6)
	p := s.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	s := NewSource(7)
	got := s.SampleWithoutReplacement(10, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid sample %v", got)
		}
		seen[v] = true
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("oversized sample did not panic")
			}
		}()
		s.SampleWithoutReplacement(3, 4)
	}()
}

func TestShuffle(t *testing.T) {
	s := NewSource(8)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 28 {
		t.Errorf("shuffle lost elements: %v", xs)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := NewSource(9)
	const n = 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 || math.Abs(variance-1) > 0.05 {
		t.Errorf("normal moments off: mean=%v var=%v", mean, variance)
	}
}
