// Package randx wraps a seeded pseudo-random source with the samplers the
// simulators need — Bernoulli trials, categorical draws, permutations and
// subset selection — so that every experiment in the reproduction is
// deterministic given its seed.
package randx

import "math/rand"

// Source is a deterministic random source. All simulator entry points take a
// *Source so replicate r of an experiment can use NewSource(baseSeed + r).
type Source struct {
	rng *rand.Rand
}

// NewSource returns a Source seeded with seed.
func NewSource(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform draw from [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform draw from {0, …, n−1}. It panics if n ≤ 0.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// NormFloat64 returns a standard normal draw.
func (s *Source) NormFloat64() float64 { return s.rng.NormFloat64() }

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.rng.Float64() < p
}

// Categorical draws an index from the (not necessarily normalized) weight
// vector w. It panics if the weights are empty or sum to a non-positive
// value.
func (s *Source) Categorical(w []float64) int {
	if len(w) == 0 {
		panic("randx: empty categorical weights")
	}
	var total float64
	for _, x := range w {
		if x < 0 {
			panic("randx: negative categorical weight")
		}
		total += x
	}
	if total <= 0 {
		panic("randx: categorical weights sum to zero")
	}
	u := s.rng.Float64() * total
	var acc float64
	for i, x := range w {
		acc += x
		if u < acc {
			return i
		}
	}
	return len(w) - 1 // floating-point tail
}

// Choice returns a uniform draw from xs. It panics on empty input.
func (s *Source) Choice(xs []float64) float64 {
	if len(xs) == 0 {
		panic("randx: Choice from empty slice")
	}
	return xs[s.rng.Intn(len(xs))]
}

// Perm returns a random permutation of {0, …, n−1}.
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle permutes xs in place.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// SampleWithoutReplacement returns k distinct values from {0, …, n−1} in
// random order. It panics if k > n or k < 0.
func (s *Source) SampleWithoutReplacement(n, k int) []int {
	if k < 0 || k > n {
		panic("randx: invalid sample size")
	}
	return s.rng.Perm(n)[:k]
}
