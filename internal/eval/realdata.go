package eval

import (
	"crowdassess/internal/core"
	"crowdassess/internal/crowd"
	"crowdassess/internal/randx"
	"crowdassess/internal/sim"
)

// realBinaryAccuracy runs the Fig. 3/4 protocol over the emulated IC, RTE
// and TEM datasets: compute worker error-rate intervals with the m-worker
// binary non-regular method (optionally after spammer pruning), then measure
// interval accuracy against the gold-derived error rates.
//
// The paper evaluates once on each fixed dataset; with emulators we average
// over Replicates regenerated datasets, which only tightens the measurement.
func realBinaryAccuracy(p Params, name, title string, prune bool) (*Result, error) {
	res := &Result{
		Name:   name,
		Title:  title,
		XLabel: "Confidence Level",
		YLabel: "Accuracy",
	}
	cases := []struct {
		label string
		gen   func(*randx.Source) (*crowd.Dataset, error)
	}{
		{"Image Comparison", sim.EmulateIC},
		{"RTE", sim.EmulateRTE},
		{"Temporal", sim.EmulateTEM},
	}
	confs := Confidences()
	// The emulated datasets are far larger than the synthetic grids, so a
	// handful of replicates already covers hundreds of intervals.
	reps := p.Replicates
	if reps <= 0 {
		reps = 20
	}
	for _, cs := range cases {
		type rep struct {
			hits, totals []int
			failures     int
		}
		results, err := runReplicates(p.Parallel, p.Seed, reps, func(src *randx.Source) (rep, error) {
			out := rep{hits: make([]int, len(confs)), totals: make([]int, len(confs))}
			ds, err := cs.gen(src)
			if err != nil {
				return rep{}, err
			}
			if prune {
				pruned, _, err := core.PruneSpammers(ds, core.DefaultPruneThreshold)
				if err != nil {
					out.failures++
					return out, nil
				}
				ds = pruned
			}
			deltas, err := core.EvaluateWorkersDelta(ds, core.EvalOptions{})
			if err != nil {
				return rep{}, err
			}
			for _, d := range deltas {
				if d.Err != nil {
					out.failures++
					continue
				}
				trueRate, err := ds.TrueErrorRate(d.Worker)
				if err != nil {
					continue // worker answered no gold-labelled tasks
				}
				for ci, c := range confs {
					out.totals[ci]++
					if d.Est.Interval(c).ClampTo(0, 1).Contains(trueRate) {
						out.hits[ci]++
					}
				}
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		hits := make([]int, len(confs))
		totals := make([]int, len(confs))
		for _, r := range results {
			res.Failures += r.failures
			for ci := range confs {
				hits[ci] += r.hits[ci]
				totals[ci] += r.totals[ci]
			}
		}
		s := Series{Label: cs.label}
		for ci, c := range confs {
			y := 0.0
			if totals[ci] > 0 {
				y = float64(hits[ci]) / float64(totals[ci])
			}
			s.Points = append(s.Points, Point{X: c, Y: y})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}
