package eval

import (
	"runtime"
	"sync"
	"sync/atomic"

	"crowdassess/internal/randx"
)

// innerParallel decides whether a parallel run should also fan out the
// estimator loops inside each replicate. When the replicate count alone
// saturates every CPU, nested fan-out only adds scheduler contention and
// per-goroutine scratch clones; the inner level pays off when replicates
// are too few to fill the machine. Either way results are byte-identical,
// so this is purely a scheduling decision.
func innerParallel(parallel bool, reps int) bool {
	return parallel && reps < runtime.GOMAXPROCS(0)
}

// runReplicates is the deterministic fan-out engine behind every figure
// runner. It executes body once per replicate r ∈ [0, reps), each with its
// own random source seeded seed+r — exactly the seeding the serial loops
// used — and returns the per-replicate results indexed by r.
//
// With parallel=false the replicates run in order on the calling goroutine.
// With parallel=true they are spread across up to GOMAXPROCS goroutines;
// because every replicate owns its source and writes only its own result
// slot, and because callers merge the returned slice in replicate order,
// the parallel output is byte-identical to the serial one.
//
// When any replicate fails, the error of the lowest-numbered failing
// replicate is returned (the one the serial loop would have surfaced).
func runReplicates[T any](parallel bool, seed int64, reps int, body func(src *randx.Source) (T, error)) ([]T, error) {
	out := make([]T, reps)
	if !parallel || reps <= 1 {
		for r := 0; r < reps; r++ {
			v, err := body(randx.NewSource(seed + int64(r)))
			if err != nil {
				return nil, err
			}
			out[r] = v
		}
		return out, nil
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > reps {
		workers = reps
	}
	errs := make([]error, reps)
	next := make(chan int)
	var wg sync.WaitGroup
	// Once any replicate fails the run's result is discarded, so replicates
	// above the failure are skipped rather than computed — both by the
	// executors and by the feed loop, which stops dispatching instead of
	// churning the channel through the remaining indices. minFail tracks the
	// lowest failing replicate seen so far; anything at or below it must
	// still run, because a lower index could fail too and serial semantics
	// promise the error of the lowest failing replicate. Replicates are
	// deterministic in their seed, so the lowest failing index f is fixed;
	// every r < f runs (none can be skipped: skipping requires r > minFail ≥
	// f > r, a contradiction), f itself runs for the same reason, and the
	// scan below therefore returns errs[f] regardless of scheduling.
	minFail := atomic.Int64{}
	minFail.Store(int64(reps))
	recordFailure := func(r int) {
		for {
			cur := minFail.Load()
			if int64(r) >= cur || minFail.CompareAndSwap(cur, int64(r)) {
				return
			}
		}
	}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range next {
				if int64(r) > minFail.Load() {
					continue
				}
				out[r], errs[r] = body(randx.NewSource(seed + int64(r)))
				if errs[r] != nil {
					recordFailure(r)
				}
			}
		}()
	}
	for r := 0; r < reps; r++ {
		if int64(r) > minFail.Load() {
			break
		}
		next <- r
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
