package eval

import (
	"runtime"
	"sync"
	"sync/atomic"

	"crowdassess/internal/randx"
)

// innerParallel decides whether a parallel run should also fan out the
// estimator loops inside each replicate. When the replicate count alone
// saturates every CPU, nested fan-out only adds scheduler contention and
// per-goroutine scratch clones; the inner level pays off when replicates
// are too few to fill the machine. Either way results are byte-identical,
// so this is purely a scheduling decision.
func innerParallel(parallel bool, reps int) bool {
	return parallel && reps < runtime.GOMAXPROCS(0)
}

// runReplicates is the deterministic fan-out engine behind every figure
// runner. It executes body once per replicate r ∈ [0, reps), each with its
// own random source seeded seed+r — exactly the seeding the serial loops
// used — and returns the per-replicate results indexed by r.
//
// With parallel=false the replicates run in order on the calling goroutine.
// With parallel=true they are spread across up to GOMAXPROCS goroutines;
// because every replicate owns its source and writes only its own result
// slot, and because callers merge the returned slice in replicate order,
// the parallel output is byte-identical to the serial one.
//
// When any replicate fails, the error of the lowest-numbered failing
// replicate is returned (the one the serial loop would have surfaced).
func runReplicates[T any](parallel bool, seed int64, reps int, body func(src *randx.Source) (T, error)) ([]T, error) {
	out := make([]T, reps)
	if !parallel || reps <= 1 {
		for r := 0; r < reps; r++ {
			v, err := body(randx.NewSource(seed + int64(r)))
			if err != nil {
				return nil, err
			}
			out[r] = v
		}
		return out, nil
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > reps {
		workers = reps
	}
	errs := make([]error, reps)
	next := make(chan int)
	var wg sync.WaitGroup
	// Once any replicate fails the run's result is discarded, so later
	// replicates are skipped rather than computed. Replicates are handed
	// out in index order, so everything below a failing index is already
	// in flight when its failure lands; the lowest recorded error — the
	// one the serial loop would have surfaced — is therefore unaffected.
	var failed atomic.Bool
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range next {
				if failed.Load() {
					continue
				}
				out[r], errs[r] = body(randx.NewSource(seed + int64(r)))
				if errs[r] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for r := 0; r < reps; r++ {
		next <- r
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
