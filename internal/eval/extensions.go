package eval

import (
	"crowdassess/internal/core"
	"crowdassess/internal/randx"
	"crowdassess/internal/sim"
)

// XNoGold is an extension experiment beyond the paper's figures: it
// quantifies the cost of not having gold-standard answers by comparing the
// average size of agreement-based intervals (Algorithm A2) against
// gold-standard Wilson intervals on the same data, as the number of tasks
// grows. The paper's introduction frames gold standards as expensive and
// collusion-prone; this curve shows how little interval width the
// agreement-based method gives up in exchange.
func XNoGold(p Params) (*Result, error) {
	res := &Result{
		Name:   "xnogold",
		Title:  "Interval size: agreement-based vs gold-standard (c=0.9, 7 workers)",
		XLabel: "Tasks",
		YLabel: "Average Size of Interval",
	}
	const c = 0.9
	const m = 7
	taskGrid := []int{50, 100, 200, 400, 800}
	agreeSeries := Series{Label: "agreement-based (no gold)"}
	goldSeries := Series{Label: "gold-standard (Wilson)"}
	ratioSeries := Series{Label: "size ratio"}
	for _, n := range taskGrid {
		type rep struct {
			agreeSizes, goldSizes []float64
			failures              int
		}
		results, err := runReplicates(p.Parallel, p.Seed, p.replicates(), func(src *randx.Source) (rep, error) {
			var out rep
			ds, _, err := sim.Binary{Tasks: n, Workers: m}.Generate(src)
			if err != nil {
				return rep{}, err
			}
			agree, err := core.EvaluateWorkersDelta(ds, core.EvalOptions{})
			if err != nil {
				return rep{}, err
			}
			gold, err := core.GoldStandardIntervals(ds, c, core.GoldWilson)
			if err != nil {
				return rep{}, err
			}
			for w := range agree {
				if agree[w].Err != nil || gold[w].Err != nil {
					out.failures++
					continue
				}
				out.agreeSizes = append(out.agreeSizes, agree[w].Est.Interval(c).ClampTo(0, 1).Size())
				out.goldSizes = append(out.goldSizes, gold[w].Interval.Size())
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		var agreeSizes, goldSizes []float64
		for _, r := range results {
			res.Failures += r.failures
			agreeSizes = append(agreeSizes, r.agreeSizes...)
			goldSizes = append(goldSizes, r.goldSizes...)
		}
		a, g := meanOf(agreeSizes), meanOf(goldSizes)
		agreeSeries.Points = append(agreeSeries.Points, Point{X: float64(n), Y: a})
		goldSeries.Points = append(goldSeries.Points, Point{X: float64(n), Y: g})
		ratio := 0.0
		if g > 0 {
			ratio = a / g
		}
		ratioSeries.Points = append(ratioSeries.Points, Point{X: float64(n), Y: ratio})
	}
	res.Series = append(res.Series, agreeSeries, goldSeries, ratioSeries)
	return res, nil
}

// XMinCommon is an extension experiment documenting a sensitivity the paper
// does not study: on very sparse crowds (the RTE shape), triples whose
// members share only a handful of tasks feed the delta method agreement
// rates whose normal approximation has not kicked in, which costs interval
// coverage. Requiring a minimum pairwise overlap (EvalOptions.MinCommon)
// restores coverage at the price of skipping the most weakly connected
// workers. The paper's protocol corresponds to MinCommon = 1.
func XMinCommon(p Params) (*Result, error) {
	res := &Result{
		Name:   "xmincommon",
		Title:  "Interval accuracy and worker coverage vs minimum triple overlap (RTE shape, c=0.9)",
		XLabel: "MinCommon",
		YLabel: "Fraction",
	}
	const c = 0.9
	grid := []int{1, 3, 5, 10, 20}
	reps := p.Replicates
	if reps <= 0 {
		reps = 10
	}
	accSeries := Series{Label: "interval accuracy"}
	evalSeries := Series{Label: "workers evaluable"}
	tripleSeries := Series{Label: "mean triples per worker (/10)"}
	for _, mc := range grid {
		type rep struct {
			hits, totals                int
			evaluable, workers, triples int
		}
		results, err := runReplicates(p.Parallel, p.Seed, reps, func(src *randx.Source) (rep, error) {
			var out rep
			ds, err := sim.EmulateRTE(src)
			if err != nil {
				return rep{}, err
			}
			deltas, err := core.EvaluateWorkersDelta(ds, core.EvalOptions{MinCommon: mc})
			if err != nil {
				return rep{}, err
			}
			for _, d := range deltas {
				out.workers++
				if d.Err != nil {
					continue
				}
				out.evaluable++
				out.triples += d.Triples
				rate, err := ds.TrueErrorRate(d.Worker)
				if err != nil {
					continue
				}
				out.totals++
				if d.Est.Interval(c).ClampTo(0, 1).Contains(rate) {
					out.hits++
				}
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		hits, totals := 0, 0
		evaluable, workers, triples := 0, 0, 0
		for _, r := range results {
			hits += r.hits
			totals += r.totals
			evaluable += r.evaluable
			workers += r.workers
			triples += r.triples
		}
		acc := 0.0
		if totals > 0 {
			acc = float64(hits) / float64(totals)
		}
		accSeries.Points = append(accSeries.Points, Point{X: float64(mc), Y: acc})
		evalSeries.Points = append(evalSeries.Points, Point{X: float64(mc), Y: float64(evaluable) / float64(workers)})
		meanTriples := 0.0
		if evaluable > 0 {
			meanTriples = float64(triples) / float64(evaluable)
		}
		// Scaled by 1/10 so all three series share the plot's unit axis.
		tripleSeries.Points = append(tripleSeries.Points, Point{X: float64(mc), Y: meanTriples / 10})
	}
	res.Series = append(res.Series, accSeries, evalSeries, tripleSeries)
	return res, nil
}
