package eval

import (
	"math"
	"reflect"
	"testing"
)

func testSpec(kernel string, reps int) SweepSpec {
	return SweepSpec{Kernel: kernel, Workers: 5, Tasks: 60, Density: 0.8, Replicates: reps, Seed: 11}
}

// TestSweepRangeSplitExact is the distribution contract: replicate vectors
// computed over split index ranges reassemble bit-identically to a full
// local run, and reducing them yields the same Result.
func TestSweepRangeSplitExact(t *testing.T) {
	const reps = 12
	for _, kernel := range SweepKernels() {
		spec := testSpec(kernel, reps)
		full, err := SweepReplicates(spec, 0, reps, false)
		if err != nil {
			t.Fatalf("%s: %v", kernel, err)
		}
		if len(full) != reps {
			t.Fatalf("%s: %d vectors, want %d", kernel, len(full), reps)
		}
		// Uneven three-way split, as a coordinator with three workers of
		// different speeds would issue.
		var reassembled [][]float64
		for _, r := range [][2]int{{0, 5}, {5, 6}, {6, reps}} {
			part, err := SweepReplicates(spec, r[0], r[1], false)
			if err != nil {
				t.Fatalf("%s range %v: %v", kernel, r, err)
			}
			reassembled = append(reassembled, part...)
		}
		if !reflect.DeepEqual(reassembled, full) {
			t.Fatalf("%s: split ranges do not reassemble to the full run", kernel)
		}

		want, err := RunSweep(spec, false)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReduceSweep(spec, reassembled)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: reduced split result differs from local RunSweep", kernel)
		}
		for _, p := range got.Series[0].Points {
			if math.IsNaN(p.Y) || p.Y < 0 {
				t.Fatalf("%s: implausible point %+v", kernel, p)
			}
			if kernel == SweepCoverage && p.Y > 1 {
				t.Fatalf("coverage above 1: %+v", p)
			}
		}
	}
}

// TestSweepParallelIdentical: the in-process parallel fan-out returns the
// same vectors as the serial loop.
func TestSweepParallelIdentical(t *testing.T) {
	spec := testSpec(SweepWidth, 8)
	serial, err := SweepReplicates(spec, 0, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SweepReplicates(spec, 0, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel sweep vectors differ from serial")
	}
}

// TestSweepValidate rejects malformed specs and ranges.
func TestSweepValidate(t *testing.T) {
	bad := []SweepSpec{
		{Kernel: "nope"},
		{Kernel: SweepWidth, Workers: 2},
		{Kernel: SweepWidth, Tasks: -1},
		{Kernel: SweepWidth, Density: 1.5},
		{Kernel: SweepWidth, Density: -0.1},
		{Kernel: SweepWidth, Density: math.NaN()},
		{Kernel: SweepCoverage, Replicates: -3},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", s)
		}
	}
	spec := testSpec(SweepWidth, 4)
	if _, err := SweepReplicates(spec, 2, 6, false); err == nil {
		t.Error("range beyond Replicates accepted")
	}
	if _, err := SweepReplicates(spec, -1, 2, false); err == nil {
		t.Error("negative range accepted")
	}
	if _, err := ReduceSweep(spec, make([][]float64, 3)); err == nil {
		t.Error("short vector set accepted")
	}
}
