// Package eval reproduces the paper's evaluation: one runner per figure,
// each returning the same data series the paper plots. Runners are
// deterministic given their seed and scale with a configurable replicate
// count (the paper uses 500).
package eval

import "fmt"

// Point is one (x, y) sample of a figure series.
type Point struct {
	X, Y float64
}

// Series is one named line of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Result is the regenerated data of one paper figure.
type Result struct {
	Name     string // experiment id, e.g. "fig2a"
	Title    string
	XLabel   string
	YLabel   string
	Series   []Series
	Failures int // degenerate replicates/workers skipped (paper: "minuscule probability of failure")
}

// Params configures an experiment run.
type Params struct {
	// Replicates per configuration. Zero selects the paper's 500.
	Replicates int
	// Seed anchors the deterministic replicate seeds.
	Seed int64
	// Parallel fans replicates out over GOMAXPROCS goroutines. Replicate
	// seeds and merge order are unchanged, so results are byte-identical
	// to a serial run at the same seed; the A3 central-difference loops
	// inside k-ary replicates inherit the flag too.
	Parallel bool
}

func (p Params) replicates() int {
	if p.Replicates <= 0 {
		return 500
	}
	return p.Replicates
}

// Confidences is the paper's confidence grid {0.05, 0.10, …, 0.95}.
func Confidences() []float64 {
	out := make([]float64, 0, 19)
	for i := 1; i <= 19; i++ {
		out = append(out, float64(i)*0.05)
	}
	return out
}

// Densities is the paper's density grid {0.5, 0.55, …, 0.95}.
func Densities() []float64 {
	out := make([]float64, 0, 10)
	for i := 0; i < 10; i++ {
		out = append(out, 0.5+0.05*float64(i))
	}
	return out
}

// Experiments names every runnable experiment: the paper's nine figures in
// paper order, then the extension experiments (prefixed "x").
func Experiments() []string {
	return []string{"fig1", "fig2a", "fig2b", "fig2c", "fig3", "fig4", "fig5a", "fig5b", "fig5c", "xnogold", "xmincommon"}
}

// Run dispatches an experiment by name.
func Run(name string, p Params) (*Result, error) {
	switch name {
	case "fig1":
		return Fig1(p)
	case "fig2a":
		return Fig2a(p)
	case "fig2b":
		return Fig2b(p)
	case "fig2c":
		return Fig2c(p)
	case "fig3":
		return Fig3(p)
	case "fig4":
		return Fig4(p)
	case "fig5a":
		return Fig5a(p)
	case "fig5b":
		return Fig5b(p)
	case "fig5c":
		return Fig5c(p)
	case "xnogold":
		return XNoGold(p)
	case "xmincommon":
		return XMinCommon(p)
	}
	return nil, fmt.Errorf("eval: unknown experiment %q (known: %v)", name, Experiments())
}

// meanOf returns the mean of xs, or 0 for empty input.
func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
