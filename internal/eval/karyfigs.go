package eval

import (
	"crowdassess/internal/core"
	"crowdassess/internal/crowd"
	"crowdassess/internal/randx"
	"crowdassess/internal/sim"
)

// Fig5a regenerates Figure 5(a): interval accuracy vs confidence for the
// 3-worker k-ary method, k ∈ {2,3,4} and n ∈ {100,1000}, with each worker
// assigned one of the paper's response-probability matrices at random.
func Fig5a(p Params) (*Result, error) {
	res := &Result{
		Name:   "fig5a",
		Title:  "Accuracy of confidence interval vs confidence level",
		XLabel: "Confidence Level",
		YLabel: "Accuracy",
	}
	confs := Confidences()
	for _, k := range []int{2, 3, 4} {
		for _, n := range []int{100, 1000} {
			type rep struct {
				hits, totals []int
				failures     int
			}
			results, err := runReplicates(p.Parallel, p.Seed, p.replicates(), func(src *randx.Source) (rep, error) {
				out := rep{hits: make([]int, len(confs)), totals: make([]int, len(confs))}
				ds, workerConfs, err := sim.KAry{
					Tasks:            n,
					Workers:          3,
					ConfusionChoices: sim.PaperMatrices(k),
				}.Generate(src)
				if err != nil {
					return rep{}, err
				}
				delta, err := core.ThreeWorkerKAryDelta(ds, [3]int{0, 1, 2}, core.KAryOptions{Parallel: innerParallel(p.Parallel, p.replicates())})
				if err != nil {
					out.failures++
					return out, nil
				}
				for ci, c := range confs {
					est := delta.Intervals(c)
					for w := 0; w < 3; w++ {
						for a := 0; a < k; a++ {
							for b := 0; b < k; b++ {
								out.totals[ci]++
								if est.Intervals[w][a][b].Contains(workerConfs[w][a][b]) {
									out.hits[ci]++
								}
							}
						}
					}
				}
				return out, nil
			})
			if err != nil {
				return nil, err
			}
			hits := make([]int, len(confs))
			totals := make([]int, len(confs))
			for _, r := range results {
				res.Failures += r.failures
				for ci := range confs {
					hits[ci] += r.hits[ci]
					totals[ci] += r.totals[ci]
				}
			}
			s := Series{Label: "arity " + itoa(k) + ", " + itoa(n) + " tasks"}
			for ci, c := range confs {
				y := 0.0
				if totals[ci] > 0 {
					y = float64(hits[ci]) / float64(totals[ci])
				}
				s.Points = append(s.Points, Point{X: c, Y: y})
			}
			res.Series = append(res.Series, s)
		}
	}
	return res, nil
}

// Fig5b regenerates Figure 5(b): average interval size vs density at
// c = 0.8 with n = 500 tasks, for arity 2, 3 and 4.
func Fig5b(p Params) (*Result, error) {
	res := &Result{
		Name:   "fig5b",
		Title:  "Average size of confidence interval vs density",
		XLabel: "Density",
		YLabel: "Average Size of Interval",
	}
	const c = 0.8
	const n = 500
	for _, k := range []int{2, 3, 4} {
		s := Series{Label: "Arity " + itoa(k)}
		for _, d := range Densities() {
			type rep struct {
				sizes    []float64
				failures int
			}
			results, err := runReplicates(p.Parallel, p.Seed, p.replicates(), func(src *randx.Source) (rep, error) {
				var out rep
				ds, _, err := sim.KAry{
					Tasks:            n,
					Workers:          3,
					ConfusionChoices: sim.PaperMatrices(k),
					Density:          d,
				}.Generate(src)
				if err != nil {
					return rep{}, err
				}
				delta, err := core.ThreeWorkerKAryDelta(ds, [3]int{0, 1, 2}, core.KAryOptions{Parallel: innerParallel(p.Parallel, p.replicates())})
				if err != nil {
					out.failures++
					return out, nil
				}
				est := delta.Intervals(c)
				for w := 0; w < 3; w++ {
					for a := 0; a < k; a++ {
						for b := 0; b < k; b++ {
							out.sizes = append(out.sizes, est.Intervals[w][a][b].Size())
						}
					}
				}
				return out, nil
			})
			if err != nil {
				return nil, err
			}
			var sizes []float64
			for _, r := range results {
				res.Failures += r.failures
				sizes = append(sizes, r.sizes...)
			}
			s.Points = append(s.Points, Point{X: d, Y: meanOf(sizes)})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Fig5c regenerates Figure 5(c): interval accuracy vs confidence on the
// emulated MOOC (3-ary), WSD (2-ary) and WS (2-ary) datasets. Following the
// paper's protocol, up to 50 random worker triples with at least t common
// tasks are evaluated per dataset (t = 60, 100, 30 respectively).
func Fig5c(p Params) (*Result, error) {
	res := &Result{
		Name:   "fig5c",
		Title:  "Accuracy of confidence interval vs confidence level (real data)",
		XLabel: "Confidence Level",
		YLabel: "Accuracy",
	}
	cases := []struct {
		label     string
		gen       func(*randx.Source) (*crowd.Dataset, error)
		threshold int
	}{
		{"MOOC arity 3", sim.EmulateMOOC, 60},
		{"WSD arity 2", sim.EmulateWSD, 100},
		{"Wordsim arity 2", sim.EmulateWS, 30},
	}
	confs := Confidences()
	// One emulated dataset per replicate; the paper samples 50 triples from
	// one fixed dataset, so even Replicates=1 follows the protocol.
	reps := p.Replicates
	if reps <= 0 {
		reps = 5
	}
	for _, cs := range cases {
		type rep struct {
			hits, totals []int
			failures     int
		}
		results, err := runReplicates(p.Parallel, p.Seed, reps, func(src *randx.Source) (rep, error) {
			out := rep{hits: make([]int, len(confs)), totals: make([]int, len(confs))}
			ds, err := cs.gen(src)
			if err != nil {
				return rep{}, err
			}
			triples := eligibleTriples(ds, cs.threshold)
			src.Shuffle(len(triples), func(i, j int) { triples[i], triples[j] = triples[j], triples[i] })
			if len(triples) > 50 {
				triples = triples[:50]
			}
			k := ds.Arity()
			for _, tr := range triples {
				delta, err := core.ThreeWorkerKAryDelta(ds, tr, core.KAryOptions{Parallel: innerParallel(p.Parallel, reps)})
				if err != nil {
					out.failures++
					continue
				}
				// Gold-derived proxy for each worker's true response matrix.
				var proxies [3][][]float64
				var proxyRows [3][]bool
				usable := true
				for w := 0; w < 3; w++ {
					conf, hasRow, err := ds.TrueConfusion(tr[w])
					if err != nil {
						usable = false
						break
					}
					proxies[w] = conf
					proxyRows[w] = hasRow
				}
				if !usable {
					out.failures++
					continue
				}
				for ci, c := range confs {
					est := delta.Intervals(c)
					for w := 0; w < 3; w++ {
						for a := 0; a < k; a++ {
							if !proxyRows[w][a] {
								continue // no gold observation for this row
							}
							for b := 0; b < k; b++ {
								out.totals[ci]++
								if est.Intervals[w][a][b].Contains(proxies[w][a][b]) {
									out.hits[ci]++
								}
							}
						}
					}
				}
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		hits := make([]int, len(confs))
		totals := make([]int, len(confs))
		for _, r := range results {
			res.Failures += r.failures
			for ci := range confs {
				hits[ci] += r.hits[ci]
				totals[ci] += r.totals[ci]
			}
		}
		s := Series{Label: cs.label}
		for ci, c := range confs {
			y := 0.0
			if totals[ci] > 0 {
				y = float64(hits[ci]) / float64(totals[ci])
			}
			s.Points = append(s.Points, Point{X: c, Y: y})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// eligibleTriples returns every worker triple sharing at least threshold
// common tasks, in deterministic index order.
func eligibleTriples(ds *crowd.Dataset, threshold int) [][3]int {
	att := ds.Attendance()
	m := ds.Workers()
	var out [][3]int
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if att.Common2(i, j) < threshold {
				continue
			}
			for k := j + 1; k < m; k++ {
				if att.Common3(i, j, k) >= threshold {
					out = append(out, [3]int{i, j, k})
				}
			}
		}
	}
	return out
}
