package eval

import (
	"math"
	"testing"
)

// small returns fast test parameters; statistical assertions below are
// calibrated for these replicate counts.
func small() Params { return Params{Replicates: 30, Seed: 1} }

func TestConfidencesGrid(t *testing.T) {
	cs := Confidences()
	if len(cs) != 19 {
		t.Fatalf("%d confidence levels", len(cs))
	}
	if math.Abs(cs[0]-0.05) > 1e-12 || math.Abs(cs[18]-0.95) > 1e-12 {
		t.Errorf("grid = %v…%v", cs[0], cs[18])
	}
}

func TestDensitiesGrid(t *testing.T) {
	ds := Densities()
	if len(ds) != 10 {
		t.Fatalf("%d densities", len(ds))
	}
	if math.Abs(ds[0]-0.5) > 1e-12 || math.Abs(ds[9]-0.95) > 1e-12 {
		t.Errorf("grid = %v…%v", ds[0], ds[9])
	}
}

func TestRunDispatch(t *testing.T) {
	if _, err := Run("nonsense", small()); err == nil {
		t.Error("unknown experiment accepted")
	}
	for _, name := range Experiments() {
		if name == "" {
			t.Error("empty experiment name")
		}
	}
}

func TestFig1ShapeAndOrdering(t *testing.T) {
	res, err := Fig1(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("%d series, want 4", len(res.Series))
	}
	// Series come in (new, old) pairs per worker count; new must be tighter
	// on average at mid-to-high confidence (the paper's headline claim).
	for pair := 0; pair < 2; pair++ {
		newS, oldS := res.Series[2*pair], res.Series[2*pair+1]
		if len(newS.Points) != 19 || len(oldS.Points) != 19 {
			t.Fatalf("series lengths %d, %d", len(newS.Points), len(oldS.Points))
		}
		var newSum, oldSum float64
		for i := 8; i < 19; i++ { // c ∈ [0.45, 0.95]
			newSum += newS.Points[i].Y
			oldSum += oldS.Points[i].Y
		}
		if newSum >= oldSum {
			t.Errorf("pair %d: new technique not tighter (%v vs %v)", pair, newSum, oldSum)
		}
	}
	// Interval size grows with the confidence level.
	pts := res.Series[0].Points
	if pts[18].Y <= pts[0].Y {
		t.Errorf("sizes not increasing in confidence: %v vs %v", pts[0].Y, pts[18].Y)
	}
}

func TestFig2aNearDiagonal(t *testing.T) {
	res, err := Fig2a(Params{Replicates: 60, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("%d series", len(res.Series))
	}
	// Accuracy should track the diagonal within a loose statistical band.
	for _, s := range res.Series {
		for _, pt := range s.Points {
			if pt.X < 0.3 || pt.X > 0.9 {
				continue // extremes are noisiest at small replicate counts
			}
			if math.Abs(pt.Y-pt.X) > 0.17 {
				t.Errorf("%s: accuracy %v at confidence %v", s.Label, pt.Y, pt.X)
			}
		}
	}
}

func TestFig2bSizeFallsWithDensity(t *testing.T) {
	res, err := Fig2b(Params{Replicates: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("%d series", len(res.Series))
	}
	for _, s := range res.Series {
		first, last := s.Points[0].Y, s.Points[len(s.Points)-1].Y
		if !(last < first) {
			t.Errorf("%s: size did not fall with density (%v → %v)", s.Label, first, last)
		}
	}
	// More tasks ⇒ smaller intervals: compare (7,100) vs (7,300) at d=0.8.
	var m7n100, m7n300 float64
	for _, s := range res.Series {
		for _, pt := range s.Points {
			if math.Abs(pt.X-0.8) < 1e-9 {
				switch s.Label {
				case "7 workers, 100 tasks":
					m7n100 = pt.Y
				case "7 workers, 300 tasks":
					m7n300 = pt.Y
				}
			}
		}
	}
	if !(m7n300 < m7n100) {
		t.Errorf("300 tasks not tighter than 100: %v vs %v", m7n300, m7n100)
	}
}

func TestFig2cOptimizationHelps(t *testing.T) {
	res, err := Fig2c(Params{Replicates: 25, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("%d series", len(res.Series))
	}
	without, with := res.Series[0], res.Series[1]
	if without.Label != "No Optimization" || with.Label != "With Optimization" {
		t.Fatalf("labels = %q, %q", without.Label, with.Label)
	}
	var wSum, oSum float64
	for i := range with.Points {
		wSum += with.Points[i].Y
		oSum += without.Points[i].Y
	}
	if wSum >= oSum {
		t.Errorf("optimization not helping: %v vs %v", wSum, oSum)
	}
}

func TestFig3And4Improvement(t *testing.T) {
	p := Params{Replicates: 4, Seed: 5}
	raw, err := Fig3(p)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Fig4(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Series) != 3 || len(pruned.Series) != 3 {
		t.Fatalf("series counts %d, %d", len(raw.Series), len(pruned.Series))
	}
	// At high confidence, pruning must not hurt accuracy on the spammer-rich
	// Snow-style datasets (RTE = series 1, TEM = series 2); the paper shows
	// a clear improvement there.
	for _, si := range []int{1, 2} {
		var rawHi, prunedHi float64
		n := 0
		for i, pt := range raw.Series[si].Points {
			if pt.X >= 0.75 {
				rawHi += pt.Y
				prunedHi += pruned.Series[si].Points[i].Y
				n++
			}
		}
		rawHi /= float64(n)
		prunedHi /= float64(n)
		if prunedHi < rawHi-0.05 {
			t.Errorf("%s: pruning hurt high-confidence accuracy (%v → %v)",
				raw.Series[si].Label, rawHi, prunedHi)
		}
	}
}

func TestFig5aShape(t *testing.T) {
	res, err := Fig5a(Params{Replicates: 15, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 6 {
		t.Fatalf("%d series, want 6", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 19 {
			t.Fatalf("%s: %d points", s.Label, len(s.Points))
		}
		// Accuracy must increase with the confidence level, roughly.
		lo := s.Points[1].Y  // c=0.10
		hi := s.Points[17].Y // c=0.90
		if hi < lo {
			t.Errorf("%s: accuracy decreasing (%v → %v)", s.Label, lo, hi)
		}
		if hi < 0.6 {
			t.Errorf("%s: accuracy %v at c=0.90 too low", s.Label, hi)
		}
	}
}

func TestFig5bArityAndDensityEffects(t *testing.T) {
	res, err := Fig5b(Params{Replicates: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("%d series", len(res.Series))
	}
	// Size falls with density within each arity: compare the low-density
	// half of the grid against the high-density half (single grid points
	// are noisy at test-sized replicate counts; the spectral estimator has
	// heavy-tailed interval sizes).
	half := func(s Series, lo bool) float64 {
		var xs []float64
		for _, pt := range s.Points {
			if (lo && pt.X < 0.725) || (!lo && pt.X >= 0.725) {
				xs = append(xs, pt.Y)
			}
		}
		return meanOf(xs)
	}
	for _, s := range res.Series {
		if !(half(s, false) < half(s, true)) {
			t.Errorf("%s: size not falling with density (%v → %v)", s.Label, half(s, true), half(s, false))
		}
	}
	// Size grows with arity (overall series means).
	overall := func(si int) float64 {
		var xs []float64
		for _, pt := range res.Series[si].Points {
			xs = append(xs, pt.Y)
		}
		return meanOf(xs)
	}
	a2, a3, a4 := overall(0), overall(1), overall(2)
	if !(a2 < a3 && a3 < a4) {
		t.Errorf("arity ordering violated: %v, %v, %v", a2, a3, a4)
	}
}

func TestFig5cRuns(t *testing.T) {
	res, err := Fig5c(Params{Replicates: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("%d series", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 19 {
			t.Fatalf("%s: %d points", s.Label, len(s.Points))
		}
		// Intervals at c=0.95 should cover a solid majority of proxies.
		if y := s.Points[18].Y; y < 0.6 {
			t.Errorf("%s: accuracy %v at c=0.95", s.Label, y)
		}
	}
}

func TestXNoGold(t *testing.T) {
	res, err := XNoGold(Params{Replicates: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("%d series", len(res.Series))
	}
	agree, gold, ratio := res.Series[0], res.Series[1], res.Series[2]
	for i := range agree.Points {
		// Agreement-based intervals cannot beat gold on average.
		if agree.Points[i].Y < gold.Points[i].Y*0.95 {
			t.Errorf("n=%v: agreement %v below gold %v", agree.Points[i].X, agree.Points[i].Y, gold.Points[i].Y)
		}
		// But the cost should stay modest on dense data.
		if ratio.Points[i].Y > 2.0 {
			t.Errorf("n=%v: no-gold cost ratio %v", ratio.Points[i].X, ratio.Points[i].Y)
		}
	}
	// Both interval families shrink with n.
	last := len(agree.Points) - 1
	if agree.Points[last].Y >= agree.Points[0].Y || gold.Points[last].Y >= gold.Points[0].Y {
		t.Error("interval sizes did not shrink with more tasks")
	}
}

func TestXMinCommon(t *testing.T) {
	res, err := XMinCommon(Params{Replicates: 4, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("%d series", len(res.Series))
	}
	acc, evaluable, triples := res.Series[0], res.Series[1], res.Series[2]
	last := len(acc.Points) - 1
	// Raising the overlap floor must improve coverage...
	if acc.Points[last].Y <= acc.Points[0].Y {
		t.Errorf("accuracy did not improve with MinCommon: %v → %v",
			acc.Points[0].Y, acc.Points[last].Y)
	}
	// ...at the price of fewer triples per worker (the evaluable fraction
	// itself only drops on even sparser crowds).
	if triples.Points[last].Y >= triples.Points[0].Y {
		t.Errorf("triples per worker did not fall with MinCommon: %v → %v",
			triples.Points[0].Y, triples.Points[last].Y)
	}
	if evaluable.Points[0].Y < 0.9 {
		t.Errorf("baseline evaluable fraction %v unexpectedly low", evaluable.Points[0].Y)
	}
}

func TestEligibleTriplesThreshold(t *testing.T) {
	// Built in sim tests already; here check the helper's ordering contract
	// via a quick structural scan on an emulated dataset.
	res, err := Fig5c(Params{Replicates: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
}
