package eval

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"crowdassess/internal/randx"
)

// TestRunReplicatesOrderAndSeeds checks the engine's two contracts: result
// r comes from the source seeded seed+r, and the slice is in replicate
// order — under both the serial and the parallel scheduler.
func TestRunReplicatesOrderAndSeeds(t *testing.T) {
	const seed, reps = 17, 23
	want := make([]float64, reps)
	for r := 0; r < reps; r++ {
		want[r] = randx.NewSource(seed + int64(r)).Float64()
	}
	for _, parallel := range []bool{false, true} {
		got, err := runReplicates(parallel, seed, reps, func(src *randx.Source) (float64, error) {
			return src.Float64(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("parallel=%v: results out of order or misseeded", parallel)
		}
	}
}

// TestRunReplicatesFirstError checks that the error surfaced is the one of
// the lowest-numbered failing replicate — what the serial loop would
// return — regardless of scheduling.
func TestRunReplicatesFirstError(t *testing.T) {
	// Replicates 4 and 7 fail; 4 must win under either scheduler.
	failAt := map[int]bool{4: true, 7: true}
	for _, parallel := range []bool{false, true} {
		_, err := runReplicates(parallel, 100, 10, func(src *randx.Source) (int, error) {
			// Identify the replicate by matching its seed draw.
			v := src.Float64()
			for r := 0; r < 10; r++ {
				if randx.NewSource(100+int64(r)).Float64() == v {
					if failAt[r] {
						return 0, fmt.Errorf("replicate %d failed", r)
					}
					return r, nil
				}
			}
			return -1, nil
		})
		if err == nil {
			t.Fatalf("parallel=%v: expected an error", parallel)
		}
		if err.Error() != "replicate 4 failed" {
			t.Errorf("parallel=%v: got %q, want the lowest failing replicate", parallel, err)
		}
	}
}

// TestRunReplicatesLowFailureAfterHighDispatch pins the dispatcher's
// determinism guarantee in the adversarial schedule: replicate 7 fails
// first, and only then does replicate 2 — already dispatched — fail.
// The engine must still surface replicate 2's error (what the serial loop
// would return), not 7's: a failure only stops dispatch of replicates
// above the lowest failure seen so far, never the ones below it.
func TestRunReplicatesLowFailureAfterHighDispatch(t *testing.T) {
	const seed, reps = 200, 10
	// The body only receives its seeded source, so recover the replicate
	// index by matching the first draw.
	idOf := func(src *randx.Source) int {
		v := src.Float64()
		for r := 0; r < reps; r++ {
			if randx.NewSource(seed+int64(r)).Float64() == v {
				return r
			}
		}
		return -1
	}
	highFailed := make(chan struct{})
	var once sync.Once
	_, err := runReplicates(true, seed, reps, func(src *randx.Source) (int, error) {
		switch r := idOf(src); r {
		case 7:
			once.Do(func() { close(highFailed) })
			return 0, fmt.Errorf("replicate %d failed", r)
		case 2:
			// Hold replicate 2's failure until 7's has landed. The timeout
			// fallback keeps single-CPU schedulers (where 2 runs before 7 is
			// ever dispatched) from deadlocking; either way 2 must win.
			select {
			case <-highFailed:
			case <-time.After(500 * time.Millisecond):
			}
			return 0, fmt.Errorf("replicate %d failed", r)
		default:
			return r, nil
		}
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if err.Error() != "replicate 2 failed" {
		t.Errorf("got %q, want the lowest failing replicate's error", err)
	}
}

// TestKAryInnerFanOutMatchesSerial pins the A3 figure runners with the
// replicate count below GOMAXPROCS, the regime where innerParallel turns on
// the 2k³-entry gradient fan-out inside each replicate — the path where
// every goroutine owns a private tensor clone and mat.Workspace. The
// series must stay byte-identical to the fully serial run.
func TestKAryInnerFanOutMatchesSerial(t *testing.T) {
	for _, name := range []string{"fig5a", "fig5b"} {
		name := name
		t.Run(name, func(t *testing.T) {
			p := Params{Replicates: 1, Seed: 41}
			serial, err := Run(name, p)
			if err != nil {
				t.Fatal(err)
			}
			p.Parallel = true
			parallel, err := Run(name, p)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("%s: inner-parallel result differs from serial", name)
			}
		})
	}
}

// TestFiguresParallelMatchesSerial is the acceptance test for the parallel
// evaluation engine: every experiment runner must produce exactly the same
// Result — series, points, failure counts — with Parallel on and off at
// the same seed. reflect.DeepEqual compares float64s bitwise, so this
// catches any accumulation-order or map-order divergence.
func TestFiguresParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep in -short mode")
	}
	for _, name := range Experiments() {
		name := name
		t.Run(name, func(t *testing.T) {
			p := Params{Replicates: 2, Seed: 33}
			serial, err := Run(name, p)
			if err != nil {
				t.Fatal(err)
			}
			p.Parallel = true
			parallel, err := Run(name, p)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("%s: parallel result differs from serial", name)
			}
		})
	}
}
