package eval

import (
	"crowdassess/internal/baseline"
	"crowdassess/internal/core"
	"crowdassess/internal/randx"
	"crowdassess/internal/sim"
)

// Fig1 regenerates Figure 1: average interval size vs confidence level for
// the new technique (Algorithm A2) and the old technique [2], with m ∈
// {3, 7} workers on n = 100 regular tasks.
func Fig1(p Params) (*Result, error) {
	res := &Result{
		Name:   "fig1",
		Title:  "Size of interval vs. confidence for old and new techniques",
		XLabel: "Confidence Level",
		YLabel: "Size of Interval",
	}
	confs := Confidences()
	const tasks = 100
	for _, m := range []int{3, 7} {
		type rep struct {
			newSizes [][]float64 // per confidence level
			oldSizes [][]float64
			failures int
		}
		results, err := runReplicates(p.Parallel, p.Seed, p.replicates(), func(src *randx.Source) (rep, error) {
			out := rep{newSizes: make([][]float64, len(confs)), oldSizes: make([][]float64, len(confs))}
			ds, _, err := sim.Binary{Tasks: tasks, Workers: m}.Generate(src)
			if err != nil {
				return rep{}, err
			}
			deltas, err := core.EvaluateWorkersDelta(ds, core.EvalOptions{})
			if err != nil {
				return rep{}, err
			}
			for ci, c := range confs {
				for _, d := range deltas {
					if d.Err != nil {
						out.failures++
						continue
					}
					out.newSizes[ci] = append(out.newSizes[ci], d.Est.Interval(c).ClampTo(0, 1).Size())
				}
			}
			// Old technique: one full evaluation per confidence level (its
			// union-bound propagation depends on the level).
			for ci, c := range confs {
				ivs, err := baseline.OldTechnique{Confidence: c}.Evaluate(ds)
				if err != nil {
					out.failures++
					continue
				}
				for _, iv := range ivs {
					out.oldSizes[ci] = append(out.oldSizes[ci], iv.Size())
				}
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		// Merge in replicate order: identical accumulation to the serial run.
		newSizes := make([][]float64, len(confs))
		oldSizes := make([][]float64, len(confs))
		for _, r := range results {
			res.Failures += r.failures
			for ci := range confs {
				newSizes[ci] = append(newSizes[ci], r.newSizes[ci]...)
				oldSizes[ci] = append(oldSizes[ci], r.oldSizes[ci]...)
			}
		}
		newSeries := Series{Label: seriesLabel("new technique", m, tasks)}
		oldSeries := Series{Label: seriesLabel("old technique", m, tasks)}
		for ci, c := range confs {
			newSeries.Points = append(newSeries.Points, Point{X: c, Y: meanOf(newSizes[ci])})
			oldSeries.Points = append(oldSeries.Points, Point{X: c, Y: meanOf(oldSizes[ci])})
		}
		res.Series = append(res.Series, newSeries, oldSeries)
	}
	return res, nil
}

func seriesLabel(tech string, m, n int) string {
	return tech + ", " + itoa(m) + " workers, " + itoa(n) + " tasks"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Fig2a regenerates Figure 2(a): interval-accuracy vs confidence level for
// the m-worker binary non-regular method, with (m, n) ∈ {3,7}×{100,300} at
// density 0.8.
func Fig2a(p Params) (*Result, error) {
	res := &Result{
		Name:   "fig2a",
		Title:  "Accuracy of m-worker binary non-regular method in estimating confidence",
		XLabel: "Confidence Level",
		YLabel: "Accuracy",
	}
	confs := Confidences()
	for _, cfg := range []struct{ m, n int }{{3, 100}, {3, 300}, {7, 100}, {7, 300}} {
		type rep struct {
			hits, totals []int
			failures     int
		}
		results, err := runReplicates(p.Parallel, p.Seed, p.replicates(), func(src *randx.Source) (rep, error) {
			out := rep{hits: make([]int, len(confs)), totals: make([]int, len(confs))}
			ds, rates, err := sim.Binary{Tasks: cfg.n, Workers: cfg.m, Density: 0.8}.Generate(src)
			if err != nil {
				return rep{}, err
			}
			deltas, err := core.EvaluateWorkersDelta(ds, core.EvalOptions{})
			if err != nil {
				return rep{}, err
			}
			for _, d := range deltas {
				if d.Err != nil {
					out.failures++
					continue
				}
				for ci, c := range confs {
					out.totals[ci]++
					if d.Est.Interval(c).ClampTo(0, 1).Contains(rates[d.Worker]) {
						out.hits[ci]++
					}
				}
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		hits := make([]int, len(confs))
		totals := make([]int, len(confs))
		for _, r := range results {
			res.Failures += r.failures
			for ci := range confs {
				hits[ci] += r.hits[ci]
				totals[ci] += r.totals[ci]
			}
		}
		s := Series{Label: itoa(cfg.m) + " workers " + itoa(cfg.n) + " tasks"}
		for ci, c := range confs {
			y := 0.0
			if totals[ci] > 0 {
				y = float64(hits[ci]) / float64(totals[ci])
			}
			s.Points = append(s.Points, Point{X: c, Y: y})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Fig2b regenerates Figure 2(b): average interval size vs data density at
// c = 0.8 for (n, m) ∈ {(100,7), (300,3), (300,7)}.
func Fig2b(p Params) (*Result, error) {
	res := &Result{
		Name:   "fig2b",
		Title:  "Size of intervals for varying levels of density",
		XLabel: "Density",
		YLabel: "Size of Interval",
	}
	const c = 0.8
	densities := Densities()
	for _, cfg := range []struct{ m, n int }{{3, 300}, {7, 100}, {7, 300}} {
		s := Series{Label: itoa(cfg.m) + " workers, " + itoa(cfg.n) + " tasks"}
		for _, d := range densities {
			type rep struct {
				sizes    []float64
				failures int
			}
			results, err := runReplicates(p.Parallel, p.Seed, p.replicates(), func(src *randx.Source) (rep, error) {
				var out rep
				ds, _, err := sim.Binary{Tasks: cfg.n, Workers: cfg.m, Density: d}.Generate(src)
				if err != nil {
					return rep{}, err
				}
				deltas, err := core.EvaluateWorkersDelta(ds, core.EvalOptions{})
				if err != nil {
					return rep{}, err
				}
				for _, wd := range deltas {
					if wd.Err != nil {
						out.failures++
						continue
					}
					out.sizes = append(out.sizes, wd.Est.Interval(c).ClampTo(0, 1).Size())
				}
				return out, nil
			})
			if err != nil {
				return nil, err
			}
			var sizes []float64
			for _, r := range results {
				res.Failures += r.failures
				sizes = append(sizes, r.sizes...)
			}
			s.Points = append(s.Points, Point{X: d, Y: meanOf(sizes)})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Fig2c regenerates Figure 2(c): average interval size vs confidence with
// optimal vs uniform triple weights, m = 7 workers, n = 100 tasks and the
// heterogeneous densities dᵢ = (0.5i + m − i)/m.
func Fig2c(p Params) (*Result, error) {
	res := &Result{
		Name:   "fig2c",
		Title:  "Size of interval vs. confidence with and without weight optimization",
		XLabel: "Confidence Level",
		YLabel: "Size of Interval",
	}
	confs := Confidences()
	const m, n = 7, 100
	densities := sim.Fig2cDensities(m)
	type rep struct {
		optSizes [][]float64
		uniSizes [][]float64
		failures int
	}
	results, err := runReplicates(p.Parallel, p.Seed, p.replicates(), func(src *randx.Source) (rep, error) {
		out := rep{optSizes: make([][]float64, len(confs)), uniSizes: make([][]float64, len(confs))}
		ds, _, err := sim.Binary{Tasks: n, Workers: m, Densities: densities}.Generate(src)
		if err != nil {
			return rep{}, err
		}
		opt, err := core.EvaluateWorkersDelta(ds, core.EvalOptions{Weights: core.OptimalWeights})
		if err != nil {
			return rep{}, err
		}
		uni, err := core.EvaluateWorkersDelta(ds, core.EvalOptions{Weights: core.UniformWeights})
		if err != nil {
			return rep{}, err
		}
		for w := range opt {
			if opt[w].Err != nil || uni[w].Err != nil {
				out.failures++
				continue
			}
			for ci, c := range confs {
				out.optSizes[ci] = append(out.optSizes[ci], opt[w].Est.Interval(c).ClampTo(0, 1).Size())
				out.uniSizes[ci] = append(out.uniSizes[ci], uni[w].Est.Interval(c).ClampTo(0, 1).Size())
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	optSizes := make([][]float64, len(confs))
	uniSizes := make([][]float64, len(confs))
	for _, r := range results {
		res.Failures += r.failures
		for ci := range confs {
			optSizes[ci] = append(optSizes[ci], r.optSizes[ci]...)
			uniSizes[ci] = append(uniSizes[ci], r.uniSizes[ci]...)
		}
	}
	with := Series{Label: "With Optimization"}
	without := Series{Label: "No Optimization"}
	for ci, c := range confs {
		with.Points = append(with.Points, Point{X: c, Y: meanOf(optSizes[ci])})
		without.Points = append(without.Points, Point{X: c, Y: meanOf(uniSizes[ci])})
	}
	res.Series = append(res.Series, without, with)
	return res, nil
}

// Fig3 regenerates Figure 3: interval accuracy vs confidence on the three
// emulated real datasets (IC, RTE, TEM), m-worker binary non-regular method,
// no preprocessing.
func Fig3(p Params) (*Result, error) {
	return realBinaryAccuracy(p, "fig3", "Accuracy of interval vs confidence", false)
}

// Fig4 regenerates Figure 4: the same protocol after pruning workers whose
// majority-vote disagreement exceeds 0.4 (the paper's spammer screen).
func Fig4(p Params) (*Result, error) {
	return realBinaryAccuracy(p, "fig4", "Accuracy of improved interval vs confidence", true)
}
