package eval

import (
	"fmt"

	"crowdassess/internal/core"
	"crowdassess/internal/randx"
	"crowdassess/internal/sim"
)

// Distributed replicate sweeps.
//
// The figure runners accumulate replicate results in Go structs that never
// leave the process. A sweep is the wire-friendly form of the same
// protocol: every replicate reduces to a fixed-length float64 vector of
// sufficient statistics (sums and counts — no means, so partial results
// merge exactly), replicate r is seeded Seed+r no matter which machine
// computes it, and the final reduction folds the vectors in replicate
// order. A coordinator can therefore partition the replicate index range
// across workers, reassemble the vectors by global index, and run the very
// same reduction a local sweep runs — the Result is bit-identical.

// Sweep kernels.
const (
	// SweepWidth measures mean interval size per confidence level
	// (the Fig. 1/2b protocol).
	SweepWidth = "width"
	// SweepCoverage measures interval accuracy — the fraction of intervals
	// containing the true error rate — per confidence level (the Fig. 2a
	// protocol).
	SweepCoverage = "coverage"
)

// SweepKernels lists the available sweep kernels.
func SweepKernels() []string { return []string{SweepWidth, SweepCoverage} }

// SweepSpec describes one distributed replicate sweep: a kernel applied to
// a synthetic binary workload. The zero values of Workers/Tasks/Replicates
// select 7 workers, 100 tasks and the paper's 500 replicates.
type SweepSpec struct {
	// Kernel selects the per-replicate statistic (SweepWidth or
	// SweepCoverage).
	Kernel string
	// Workers is the synthetic crowd size (default 7).
	Workers int
	// Tasks is the synthetic task count (default 100).
	Tasks int
	// Density is the per-worker attempt probability in (0, 1]. The zero
	// value selects 0.8 — a sweep over literally-zero density is not
	// expressible (and would be degenerate anyway).
	Density float64
	// Replicates is the total number of replicates (default 500).
	Replicates int
	// Seed anchors replicate r's source at Seed+r, wherever r runs.
	Seed int64
}

// WithDefaults resolves the zero values. Coordinators that partition a
// sweep must resolve through it too, so the replicate count they split is
// the one ReduceSweep will demand back.
func (s SweepSpec) WithDefaults() SweepSpec {
	if s.Workers == 0 {
		s.Workers = 7
	}
	if s.Tasks == 0 {
		s.Tasks = 100
	}
	if s.Density == 0 {
		s.Density = 0.8
	}
	if s.Replicates == 0 {
		s.Replicates = 500
	}
	return s
}

// Validate rejects specs no worker should attempt to run.
func (s SweepSpec) Validate() error {
	s = s.WithDefaults()
	switch s.Kernel {
	case SweepWidth, SweepCoverage:
	default:
		return fmt.Errorf("eval: unknown sweep kernel %q (known: %v)", s.Kernel, SweepKernels())
	}
	if s.Workers < 3 {
		return fmt.Errorf("eval: sweep needs at least 3 workers, has %d", s.Workers)
	}
	if s.Tasks < 1 {
		return fmt.Errorf("eval: sweep needs at least 1 task, has %d", s.Tasks)
	}
	// The inverted comparison rejects NaN too: NaN fails every ordered
	// comparison, so a plain "< 0 || > 1" check would wave it through into
	// the simulator.
	if !(s.Density > 0 && s.Density <= 1) {
		return fmt.Errorf("eval: sweep density %v outside (0, 1]", s.Density)
	}
	if s.Replicates < 1 {
		return fmt.Errorf("eval: sweep needs at least 1 replicate, has %d", s.Replicates)
	}
	return nil
}

// sweepVectorLen is the fixed per-replicate vector length: two accumulator
// slots (sum/count or hits/totals) per confidence level, plus a failure
// count in the last slot.
func sweepVectorLen() int { return 2*len(Confidences()) + 1 }

// sweepReplicate computes one replicate's statistic vector.
func sweepReplicate(s SweepSpec, src *randx.Source) ([]float64, error) {
	confs := Confidences()
	vec := make([]float64, sweepVectorLen())
	ds, rates, err := sim.Binary{Tasks: s.Tasks, Workers: s.Workers, Density: s.Density}.Generate(src)
	if err != nil {
		return nil, err
	}
	deltas, err := core.EvaluateWorkersDelta(ds, core.EvalOptions{})
	if err != nil {
		return nil, err
	}
	for _, d := range deltas {
		if d.Err != nil {
			vec[len(vec)-1]++
			continue
		}
		for ci, c := range confs {
			iv := d.Est.Interval(c).ClampTo(0, 1)
			switch s.Kernel {
			case SweepWidth:
				vec[2*ci] += iv.Size()
				vec[2*ci+1]++
			case SweepCoverage:
				if iv.Contains(rates[d.Worker]) {
					vec[2*ci]++
				}
				vec[2*ci+1]++
			}
		}
	}
	return vec, nil
}

// SweepReplicates computes the statistic vectors of the global replicate
// indices [lo, hi). Replicate r's source is seeded s.Seed+r regardless of
// how the index range is split, so ranges computed on different machines
// reassemble into exactly the vectors one machine would have produced.
// With parallel=true the range fans out over GOMAXPROCS goroutines through
// the same deterministic engine the figure runners use.
func SweepReplicates(s SweepSpec, lo, hi int, parallel bool) ([][]float64, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s = s.WithDefaults()
	if lo < 0 || hi > s.Replicates || lo > hi {
		return nil, fmt.Errorf("eval: replicate range [%d, %d) outside [0, %d)", lo, hi, s.Replicates)
	}
	return runReplicates(parallel, s.Seed+int64(lo), hi-lo, func(src *randx.Source) ([]float64, error) {
		return sweepReplicate(s, src)
	})
}

// ReduceSweep folds the complete per-replicate vector set (indexed by
// global replicate, as reassembled by a coordinator or produced locally)
// into the sweep's Result. The fold visits replicates in index order, so
// its floating-point accumulation — and hence the Result — is identical no
// matter where the vectors were computed.
func ReduceSweep(s SweepSpec, vectors [][]float64) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s = s.WithDefaults()
	if len(vectors) != s.Replicates {
		return nil, fmt.Errorf("eval: %d replicate vectors, want %d", len(vectors), s.Replicates)
	}
	total := make([]float64, sweepVectorLen())
	for r, vec := range vectors {
		if len(vec) != len(total) {
			return nil, fmt.Errorf("eval: replicate %d vector has length %d, want %d", r, len(vec), len(total))
		}
		for i, v := range vec {
			total[i] += v
		}
	}
	confs := Confidences()
	res := &Result{
		Name:     "sweep/" + s.Kernel,
		XLabel:   "Confidence Level",
		Failures: int(total[len(total)-1]),
	}
	switch s.Kernel {
	case SweepWidth:
		res.Title = "Mean interval size vs. confidence"
		res.YLabel = "Size of Interval"
	case SweepCoverage:
		res.Title = "Interval accuracy vs. confidence"
		res.YLabel = "Accuracy"
	}
	series := Series{Label: fmt.Sprintf("%d workers, %d tasks, density %g", s.Workers, s.Tasks, s.Density)}
	for ci, c := range confs {
		y := 0.0
		if total[2*ci+1] > 0 {
			y = total[2*ci] / total[2*ci+1]
		}
		series.Points = append(series.Points, Point{X: c, Y: y})
	}
	res.Series = append(res.Series, series)
	return res, nil
}

// RunSweep runs a sweep start to finish in one process: every replicate,
// then the reduction. A distributed run that partitions the same replicate
// range across machines and reduces the reassembled vectors returns a
// bit-identical Result.
func RunSweep(s SweepSpec, parallel bool) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s = s.WithDefaults()
	vectors, err := SweepReplicates(s, 0, s.Replicates, parallel)
	if err != nil {
		return nil, err
	}
	return ReduceSweep(s, vectors)
}
