package pool

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"crowdassess/internal/crowd"
	"crowdassess/internal/randx"
	"crowdassess/internal/sim"
)

// runCrowd streams a simulated crowd into a manager, reviewing after every
// reviewEvery tasks. It returns the manager and the simulated true rates.
func runCrowd(t *testing.T, seed int64, rates []float64, tasks, reviewEvery int, policy Policy) (*Manager, []float64) {
	t.Helper()
	src := randx.NewSource(seed)
	ds, _, err := sim.Binary{Tasks: tasks, Workers: len(rates), ErrorRates: rates}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(len(rates), policy)
	if err != nil {
		t.Fatal(err)
	}
	for task := 0; task < tasks; task++ {
		for w := 0; w < len(rates); w++ {
			if m.State(w) == Fired {
				continue
			}
			if err := m.Record(w, task, ds.Response(w, task)); err != nil {
				t.Fatal(err)
			}
		}
		if (task+1)%reviewEvery == 0 {
			if _, err := m.Review(); err != nil {
				t.Fatal(err)
			}
		}
	}
	return m, rates
}

func TestPolicyValidation(t *testing.T) {
	cases := []Policy{
		{},
		{Confidence: 1.2, FireAbove: 0.3, PromoteBelow: 0.2, SpammerDisagreement: 0.4},
		{Confidence: 0.9, FireAbove: 0.6, PromoteBelow: 0.2, SpammerDisagreement: 0.4},
		{Confidence: 0.9, FireAbove: 0.3, PromoteBelow: 0, SpammerDisagreement: 0.4},
		{Confidence: 0.9, FireAbove: 0.3, PromoteBelow: 0.2, SpammerDisagreement: 2},
		{Confidence: 0.9, FireAbove: 0.3, PromoteBelow: 0.2, SpammerDisagreement: 0.4, MinResponses: -1},
	}
	for i, p := range cases {
		if _, err := NewManager(5, p); err == nil {
			t.Errorf("case %d: invalid policy accepted: %+v", i, p)
		}
	}
	if _, err := NewManager(5, DefaultPolicy()); err != nil {
		t.Errorf("default policy rejected: %v", err)
	}
	if _, err := NewManager(2, DefaultPolicy()); err == nil {
		t.Error("2-worker pool accepted")
	}
}

func TestLifecycleSeparatesWorkers(t *testing.T) {
	rates := []float64{0.05, 0.08, 0.10, 0.12, 0.40, 0.48}
	m, _ := runCrowd(t, 1, rates, 400, 50, DefaultPolicy())

	// Good workers must not be fired; the two bad workers must be.
	for w := 0; w < 4; w++ {
		if m.State(w) == Fired {
			t.Errorf("good worker %d (rate %v) fired", w, rates[w])
		}
	}
	for w := 4; w < 6; w++ {
		if m.State(w) != Fired {
			t.Errorf("bad worker %d (rate %v) not fired, state %v", w, rates[w], m.State(w))
		}
	}
	// At least some good workers earn promotion with 400 tasks of evidence.
	promoted := 0
	for w := 0; w < 4; w++ {
		if m.State(w) == Active {
			promoted++
		}
	}
	if promoted == 0 {
		t.Error("no good worker promoted")
	}
}

func TestFiredWorkersRejectResponses(t *testing.T) {
	rates := []float64{0.05, 0.05, 0.05, 0.49}
	m, _ := runCrowd(t, 2, rates, 300, 50, DefaultPolicy())
	if m.State(3) != Fired {
		t.Fatalf("spammer not fired (state %v)", m.State(3))
	}
	if err := m.Record(3, 9999, crowd.Yes); !errors.Is(err, ErrFired) {
		t.Errorf("err = %v, want ErrFired", err)
	}
	active := m.ActiveWorkers()
	if len(active) != 3 {
		t.Errorf("active workers = %v", active)
	}
}

func TestMinResponsesDefersDecisions(t *testing.T) {
	policy := DefaultPolicy()
	policy.MinResponses = 1000 // never enough
	rates := []float64{0.05, 0.05, 0.49}
	m, _ := runCrowd(t, 3, rates, 200, 50, policy)
	for w := range rates {
		if m.State(w) != Probation {
			t.Errorf("worker %d transitioned despite MinResponses: %v", w, m.State(w))
		}
	}
}

func TestNoGoodWorkerFiredAcrossSeeds(t *testing.T) {
	// The paper's core promise: interval-based firing protects good workers
	// from unlucky streaks. Run several seeds and demand zero false firings.
	for seed := int64(10); seed < 18; seed++ {
		rates := []float64{0.08, 0.12, 0.15, 0.20, 0.25, 0.45}
		m, _ := runCrowd(t, seed, rates, 300, 50, DefaultPolicy())
		for w := 0; w < 5; w++ {
			if m.State(w) == Fired {
				t.Errorf("seed %d: worker %d with rate %v fired", seed, w, rates[w])
			}
		}
	}
}

func TestReviewDecisionsCarryEvidence(t *testing.T) {
	rates := []float64{0.05, 0.05, 0.05, 0.05, 0.45}
	src := randx.NewSource(20)
	ds, _, err := sim.Binary{Tasks: 200, Workers: 5, ErrorRates: rates}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(5, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	for task := 0; task < 200; task++ {
		for w := 0; w < 5; w++ {
			if err := m.Record(w, task, ds.Response(w, task)); err != nil {
				t.Fatal(err)
			}
		}
	}
	decisions, err := m.Review()
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) == 0 {
		t.Fatal("no decisions")
	}
	for _, d := range decisions {
		if d.Reason == "" {
			t.Errorf("decision for worker %d lacks a reason", d.Worker)
		}
		if d.Action == Promote && !(d.Interval.Hi < DefaultPolicy().PromoteBelow) {
			t.Errorf("promotion without evidence: %+v", d)
		}
	}
}

func TestEstimates(t *testing.T) {
	rates := []float64{0.1, 0.1, 0.1, 0.1}
	m, _ := runCrowd(t, 21, rates, 100, 100, DefaultPolicy())
	ests, err := m.Estimates()
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 4 {
		t.Fatalf("%d estimates", len(ests))
	}
	for _, e := range ests {
		if e.Err == nil && !e.Interval.IsValid() {
			t.Errorf("worker %d: invalid interval", e.Worker)
		}
	}
}

// TestShardedManagerMatchesSingleShard feeds the same stream through a
// single-shard and a sharded manager and demands identical decisions at
// every review point — the pool-level face of the sharded evaluator's
// bit-identity guarantee.
func TestShardedManagerMatchesSingleShard(t *testing.T) {
	rates := []float64{0.05, 0.08, 0.10, 0.12, 0.40, 0.48}
	src := randx.NewSource(31)
	ds, _, err := sim.Binary{Tasks: 300, Workers: len(rates), ErrorRates: rates}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewManager(len(rates), DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardedManager(len(rates), 4, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	for task := 0; task < 300; task++ {
		for w := range rates {
			if single.State(w) == Fired {
				continue
			}
			if err := single.Record(w, task, ds.Response(w, task)); err != nil {
				t.Fatal(err)
			}
			if err := sharded.Record(w, task, ds.Response(w, task)); err != nil {
				t.Fatal(err)
			}
		}
		if (task+1)%50 == 0 {
			ds1, err := single.Review()
			if err != nil {
				t.Fatal(err)
			}
			ds2, err := sharded.Review()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ds1, ds2) {
				t.Fatalf("task %d: decisions diverge:\nsingle  %+v\nsharded %+v", task, ds1, ds2)
			}
		}
	}
	for w := range rates {
		if single.State(w) != sharded.State(w) {
			t.Errorf("worker %d: state %v vs %v", w, single.State(w), sharded.State(w))
		}
	}
}

// TestShardedManagerConcurrentRecord hammers Record from many goroutines
// (one per worker) with periodic Reviews from another — the deployment
// shape the sharded manager exists for. Run under -race.
func TestShardedManagerConcurrentRecord(t *testing.T) {
	const workers, tasks = 6, 240
	rates := []float64{0.05, 0.10, 0.15, 0.20, 0.30, 0.45}
	src := randx.NewSource(47)
	ds, _, err := sim.Binary{Tasks: tasks, Workers: workers, ErrorRates: rates}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewShardedManager(workers, 4, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for task := 0; task < tasks; task++ {
				err := m.Record(w, task, ds.Response(w, task))
				if err != nil && !errors.Is(err, ErrFired) {
					t.Errorf("worker %d task %d: %v", w, task, err)
					return
				}
				if errors.Is(err, ErrFired) {
					return
				}
			}
		}(w)
	}
	reviews := make(chan struct{})
	go func() {
		defer close(reviews)
		for i := 0; i < 4; i++ {
			if _, err := m.Review(); err != nil {
				t.Errorf("concurrent Review: %v", err)
				return
			}
			m.ActiveWorkers()
			if _, err := m.Estimates(); err != nil {
				t.Errorf("concurrent Estimates: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-reviews
	if _, err := m.Review(); err != nil {
		t.Fatal(err)
	}
	// The obvious spammer must be gone once all the evidence is in.
	if m.State(5) != Fired {
		t.Errorf("spammer state %v after full stream", m.State(5))
	}
}

func TestStateAndActionStrings(t *testing.T) {
	if Probation.String() != "probation" || Active.String() != "active" || Fired.String() != "fired" {
		t.Error("state strings wrong")
	}
	if NoChange.String() != "no-change" || Promote.String() != "promote" || Fire.String() != "fire" {
		t.Error("action strings wrong")
	}
	if State(9).String() == "" || Action(9).String() == "" {
		t.Error("unknown values render empty")
	}
}
