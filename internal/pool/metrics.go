package pool

import (
	"crowdassess/internal/obs"
)

// This file wires the pool manager into an observability registry with
// counters and scrape-time gauges only — no clocks, no randomness. The
// pool package is wholesale-scanned by crowdvet's determinism analyzer,
// and its decisions must stay a pure function of the response stream;
// counting those decisions does not change them.

// Instrument wires the manager into reg: review/decision counters
// (recorded by Review) and a pool_workers gauge per lifecycle state,
// evaluated at scrape time. Call once, typically at daemon startup.
func (m *Manager) Instrument(reg *obs.Registry) {
	m.mu.Lock()
	m.obs = reg
	m.mu.Unlock()
	for _, s := range []State{Probation, Active, Fired} {
		s := s
		reg.GaugeFunc("pool_workers",
			"Crowd workers by lifecycle state.",
			func() float64 {
				m.mu.RLock()
				defer m.mu.RUnlock()
				n := 0
				for _, st := range m.states {
					if st == s {
						n++
					}
				}
				return float64(n)
			},
			obs.Label{Key: "state", Value: s.String()})
	}
}

// noteReviewLocked records one completed Review and its decisions;
// caller holds m.mu. Decision flips are the state-changing subset —
// promotions and fires — the transitions an operator pages on.
func (m *Manager) noteReviewLocked(out []Decision) {
	if m.obs == nil {
		return
	}
	m.obs.Counter("pool_reviews_total",
		"Completed pool reviews.").Inc()
	for _, d := range out {
		m.obs.Counter("pool_decisions_total",
			"Review decisions by action.",
			obs.Label{Key: "action", Value: d.Action.String()}).Inc()
		if d.Action != NoChange {
			m.obs.Counter("pool_decision_flips_total",
				"Review decisions that changed a worker's state (promote or fire).").Inc()
		}
	}
}
