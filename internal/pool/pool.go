// Package pool manages a crowd-worker pool through its hiring lifecycle
// using confidence intervals — the application the paper's introduction
// motivates: "if we're going to fire a worker for having a high estimated
// error rate, then it is important to be sufficiently confident that the
// worker has low ability."
//
// Workers move through states on interval evidence, never on bare point
// estimates:
//
//	Probation → Active      when the interval's upper end clears the bar
//	Probation/Active → Fired when the interval's lower end breaches the bar
//	anything  → Fired        when the majority screen flags a pure spammer
//
// Responses stream in via Record; Review applies the policy to the current
// statistics. The estimator is the streaming form of the paper's
// Algorithm A2 — single-shard by default (NewManager), sharded for
// concurrent ingestion (NewShardedManager).
package pool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"crowdassess/internal/core"
	"crowdassess/internal/crowd"
	"crowdassess/internal/obs"
	"crowdassess/internal/stat"
)

// State is a worker's position in the pool lifecycle.
type State int

const (
	// Probation is the initial state: the worker's quality is unproven.
	Probation State = iota
	// Active workers have demonstrated acceptable quality with confidence.
	Active
	// Fired workers are out of the pool; their responses are retained for
	// evaluating others but they receive no further tasks.
	Fired
)

// String renders the state for logs and reports.
func (s State) String() string {
	switch s {
	case Probation:
		return "probation"
	case Active:
		return "active"
	case Fired:
		return "fired"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Policy sets the decision bars. The zero value is not valid; use
// DefaultPolicy as a starting point.
type Policy struct {
	// Confidence for the intervals feeding decisions (e.g. 0.9).
	Confidence float64
	// FireAbove fires a worker once the interval's lower end exceeds it:
	// even the optimistic reading of the evidence is unacceptable.
	FireAbove float64
	// PromoteBelow promotes a probation worker once the interval's upper
	// end falls below it: even the pessimistic reading is acceptable.
	PromoteBelow float64
	// SpammerDisagreement fires on the majority screen regardless of
	// intervals (the paper's 0.4 cutoff; pure spammers sit on the
	// estimator's singularity and never produce usable intervals).
	SpammerDisagreement float64
	// MinResponses defers any decision on a worker until this many of their
	// responses have been recorded.
	MinResponses int
}

// DefaultPolicy mirrors the thresholds used across the paper's scenarios.
func DefaultPolicy() Policy {
	return Policy{
		Confidence:          0.90,
		FireAbove:           0.30,
		PromoteBelow:        0.20,
		SpammerDisagreement: core.DefaultPruneThreshold,
		MinResponses:        20,
	}
}

func (p Policy) validate() error {
	if !(p.Confidence > 0 && p.Confidence < 1) {
		return fmt.Errorf("pool: confidence %v outside (0,1)", p.Confidence)
	}
	if p.FireAbove <= 0 || p.FireAbove >= 0.5 {
		return fmt.Errorf("pool: FireAbove %v outside (0, 0.5)", p.FireAbove)
	}
	if p.PromoteBelow <= 0 || p.PromoteBelow > p.FireAbove+0.25 {
		return fmt.Errorf("pool: PromoteBelow %v implausible against FireAbove %v", p.PromoteBelow, p.FireAbove)
	}
	if p.SpammerDisagreement <= 0 || p.SpammerDisagreement >= 1 {
		return fmt.Errorf("pool: SpammerDisagreement %v outside (0,1)", p.SpammerDisagreement)
	}
	if p.MinResponses < 0 {
		return fmt.Errorf("pool: negative MinResponses %d", p.MinResponses)
	}
	return nil
}

// Action is a state transition produced by Review.
type Action int

const (
	// NoChange: the evidence does not yet justify a transition.
	NoChange Action = iota
	// Promote: probation → active.
	Promote
	// Fire: removed from the pool.
	Fire
)

// String renders the action.
func (a Action) String() string {
	switch a {
	case NoChange:
		return "no-change"
	case Promote:
		return "promote"
	case Fire:
		return "fire"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// Decision reports the outcome of Review for one worker.
type Decision struct {
	Worker   int
	Action   Action
	State    State         // state after the action
	Interval stat.Interval // evidence (zero when no estimate exists yet)
	Reason   string
}

// Manager tracks the pool. It is built over core.StreamingEvaluator, so
// the same lifecycle logic runs on the single-shard Incremental
// (NewManager) and the concurrent ShardedIncremental (NewShardedManager).
//
// Concurrency: with a sharded evaluator, Record is safe from any number of
// goroutines. Review and Estimates serialize against each other — and
// against Record, which blocks on the state lock for the duration of the
// call (merge plus covariance solves), so call Review at batch boundaries,
// not per response; that stall is the price of decisions computed against
// one consistent state. A Record racing a Review that fires the same
// worker may land one last response for that worker — statistically
// harmless (the estimator retains fired workers' responses anyway) and
// inherent to concurrent ingestion.
type Manager struct {
	policy Policy
	inc    core.StreamingEvaluator

	// mu guards states; responses are per-worker atomics so concurrent
	// Records for the same worker don't contend on it.
	mu        sync.RWMutex
	states    []State
	responses []atomic.Int64

	// obs, when set by Instrument, receives review/decision counters.
	// Guarded by mu.
	obs *obs.Registry
}

// ErrFired is returned when a response is recorded for a fired worker.
var ErrFired = errors.New("pool: worker is fired")

// NewManager creates a pool of the given size, all workers on probation,
// over the single-shard streaming evaluator (single-goroutine Record).
func NewManager(workers int, policy Policy) (*Manager, error) {
	return newManager(workers, policy, core.IncrementalOptions{})
}

// NewShardedManager creates a pool whose statistics are sharded across the
// given number of task-stripes, making Record safe — and fast — from many
// goroutines at once. Decisions are identical to NewManager's on the same
// responses.
func NewShardedManager(workers, shards int, policy Policy) (*Manager, error) {
	return newManager(workers, policy, core.IncrementalOptions{Shards: shards})
}

func newManager(workers int, policy Policy, opts core.IncrementalOptions) (*Manager, error) {
	inc, err := core.NewStreaming(workers, opts)
	if err != nil {
		return nil, err
	}
	return NewManagerWith(inc, policy)
}

// NewManagerWith creates a pool over a caller-supplied streaming
// evaluator. This is how a pool spans a cluster: hand it the
// coordinator-backed adapter (dist.NewClusterEvaluator) and Review pulls
// merged statistics from every node — the decisions are identical to a
// local pool fed the same responses, because the merge is exact and the
// solves run the same code path. The pool starts every worker on
// probation; the evaluator must be empty or hold only responses recorded
// before any lifecycle decisions are wanted.
func NewManagerWith(inc core.StreamingEvaluator, policy Policy) (*Manager, error) {
	if err := policy.validate(); err != nil {
		return nil, err
	}
	workers := inc.Workers()
	return &Manager{
		policy:    policy,
		inc:       inc,
		states:    make([]State, workers),
		responses: make([]atomic.Int64, workers),
	}, nil
}

// Workers returns the pool size (including fired workers).
func (m *Manager) Workers() int { return len(m.states) }

// State returns worker w's current state.
func (m *Manager) State(w int) State {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.states[w]
}

// ActiveWorkers returns the indices of workers eligible for new tasks
// (probation and active).
func (m *Manager) ActiveWorkers() []int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []int
	for w, s := range m.states {
		if s != Fired {
			out = append(out, w)
		}
	}
	return out
}

// Record stores worker w's response on task t. Responses from fired workers
// are rejected with ErrFired. With a sharded evaluator it is safe to call
// concurrently.
func (m *Manager) Record(w, t int, r crowd.Response) error {
	if w < 0 || w >= len(m.states) {
		return fmt.Errorf("pool: worker %d out of range", w)
	}
	m.mu.RLock()
	fired := m.states[w] == Fired
	m.mu.RUnlock()
	if fired {
		return fmt.Errorf("pool: worker %d: %w", w, ErrFired)
	}
	if err := m.inc.Add(w, t, r); err != nil {
		return err
	}
	m.responses[w].Add(1)
	return nil
}

// Review applies the policy to the current statistics and returns one
// decision per non-fired worker with enough responses. State transitions
// are applied before returning. Review holds the state lock for its
// duration, so concurrent Reviews serialize and Record sees transitions
// atomically.
func (m *Manager) Review() ([]Decision, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Decision
	// Load every response counter once: a concurrent Record pushing a
	// worker across MinResponses mid-Review must not let it reach the
	// interval loop without having faced the spammer screen below.
	counts := make([]int64, len(m.states))
	for w := range counts {
		counts[w] = m.responses[w].Load()
	}
	eligible := func(w int) bool {
		return m.states[w] != Fired && counts[w] >= int64(m.policy.MinResponses)
	}
	// Spammer screen first: it also protects the interval estimates of the
	// remaining workers (Section III-E). The fires it implies are only
	// collected here; no state changes until the evaluation below has
	// succeeded, so a failed Review (possible with a cluster-backed
	// evaluator) leaves the pool untouched and the retry re-emits every
	// decision instead of silently swallowing the fires.
	dis := m.inc.MajorityDisagreement()
	spamFired := make([]bool, len(m.states))
	for w := range m.states {
		if eligible(w) && dis[w] > m.policy.SpammerDisagreement {
			spamFired[w] = true
		}
	}
	// One EvaluateSubset call over the still-eligible workers: the sharded
	// evaluator merges its shards once and fans the solves out across
	// shard workspaces, and nobody pays for fired or below-threshold
	// workers' estimates.
	var workers []int
	for w := range m.states {
		if eligible(w) && !spamFired[w] {
			workers = append(workers, w)
		}
	}
	ests, err := m.inc.EvaluateSubset(workers, core.EvalOptions{Confidence: m.policy.Confidence})
	if err != nil {
		return nil, err
	}
	for w := range m.states {
		if spamFired[w] {
			m.states[w] = Fired
			out = append(out, Decision{
				Worker: w, Action: Fire, State: Fired,
				Reason: fmt.Sprintf("majority disagreement %.2f above %.2f",
					dis[w], m.policy.SpammerDisagreement),
			})
		}
	}
	for i, w := range workers {
		s := m.states[w]
		est := ests[i]
		if est.Err != nil {
			out = append(out, Decision{Worker: w, Action: NoChange, State: s,
				Reason: "no usable estimate yet"})
			continue
		}
		iv := est.Interval
		switch {
		case iv.Lo > m.policy.FireAbove:
			m.states[w] = Fired
			out = append(out, Decision{Worker: w, Action: Fire, State: Fired, Interval: iv,
				Reason: fmt.Sprintf("interval lower bound %.3f above %.2f", iv.Lo, m.policy.FireAbove)})
		case s == Probation && iv.Hi < m.policy.PromoteBelow:
			m.states[w] = Active
			out = append(out, Decision{Worker: w, Action: Promote, State: Active, Interval: iv,
				Reason: fmt.Sprintf("interval upper bound %.3f below %.2f", iv.Hi, m.policy.PromoteBelow)})
		default:
			out = append(out, Decision{Worker: w, Action: NoChange, State: s, Interval: iv,
				Reason: "interval straddles the decision bars"})
		}
	}
	m.noteReviewLocked(out)
	return out, nil
}

// WorkerInfo is one worker's full quality record: lifecycle state,
// recorded-response count and — once the policy's MinResponses bar is
// met and a usable estimate exists — the current error-rate interval.
type WorkerInfo struct {
	// Worker is the worker's index in the pool.
	Worker int
	// State is the worker's current lifecycle state.
	State State
	// Responses is how many of the worker's responses have been recorded.
	Responses int
	// Estimate is the worker's current interval estimate, or nil when the
	// worker is fired, below MinResponses, or has no usable estimate yet.
	Estimate *core.WorkerEstimate
}

// WorkerInfo returns worker w's quality record. It is the single-worker
// read behind the gateway's GET /v1/workers/{id}: cheap when the worker
// has no estimate yet, one subset evaluation when it does.
func (m *Manager) WorkerInfo(w int) (WorkerInfo, error) {
	if w < 0 || w >= len(m.states) {
		return WorkerInfo{}, fmt.Errorf("pool: worker %d out of range", w)
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	info := WorkerInfo{Worker: w, State: m.states[w], Responses: int(m.responses[w].Load())}
	if info.State == Fired || info.Responses < m.policy.MinResponses {
		return info, nil
	}
	ests, err := m.inc.EvaluateSubset([]int{w}, core.EvalOptions{Confidence: m.policy.Confidence})
	if err != nil {
		return WorkerInfo{}, err
	}
	if len(ests) == 1 && ests[0].Err == nil {
		est := ests[0]
		info.Estimate = &est
	}
	return info, nil
}

// Estimates returns the current interval for every non-fired worker with
// enough responses, without applying any policy action.
func (m *Manager) Estimates() ([]core.WorkerEstimate, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var workers []int
	for w, s := range m.states {
		if s == Fired || m.responses[w].Load() < int64(m.policy.MinResponses) {
			continue
		}
		workers = append(workers, w)
	}
	return m.inc.EvaluateSubset(workers, core.EvalOptions{Confidence: m.policy.Confidence})
}
