package sim

// The paper's Section IV-B evaluation assigns each synthetic worker one of
// three response-probability matrices per arity, "chosen arbitrarily".
// These are the exact matrices printed in the paper.

// PaperMatricesArity2 are the paper's three arity-2 worker matrices.
var PaperMatricesArity2 = []Confusion{
	MustConfusion([][]float64{
		{0.9, 0.1},
		{0.2, 0.8},
	}),
	MustConfusion([][]float64{
		{0.8, 0.2},
		{0.1, 0.9},
	}),
	MustConfusion([][]float64{
		{0.9, 0.1},
		{0.1, 0.9},
	}),
}

// PaperMatricesArity3 are the paper's three arity-3 worker matrices.
var PaperMatricesArity3 = []Confusion{
	MustConfusion([][]float64{
		{0.6, 0.3, 0.1},
		{0.1, 0.6, 0.3},
		{0.3, 0.1, 0.6},
	}),
	MustConfusion([][]float64{
		{0.8, 0.1, 0.1},
		{0.2, 0.8, 0.0},
		{0.0, 0.2, 0.8},
	}),
	MustConfusion([][]float64{
		{0.9, 0.0, 0.1},
		{0.1, 0.9, 0.0},
		{0.0, 0.2, 0.8},
	}),
}

// PaperMatricesArity4 are the paper's three arity-4 worker matrices.
var PaperMatricesArity4 = []Confusion{
	MustConfusion([][]float64{
		{0.7, 0.1, 0.1, 0.1},
		{0.1, 0.6, 0.2, 0.1},
		{0.0, 0.1, 0.8, 0.1},
		{0.2, 0.1, 0.0, 0.7},
	}),
	MustConfusion([][]float64{
		{0.8, 0.1, 0.0, 0.1},
		{0.1, 0.8, 0.0, 0.1},
		{0.1, 0.1, 0.7, 0.1},
		{0.0, 0.1, 0.2, 0.7},
	}),
	MustConfusion([][]float64{
		{0.6, 0.1, 0.2, 0.1},
		{0.0, 0.7, 0.1, 0.2},
		{0.1, 0.0, 0.9, 0.0},
		{0.2, 0.0, 0.0, 0.8},
	}),
}

// PaperMatrices returns the paper's matrices for arity k ∈ {2, 3, 4}, or nil
// for any other arity.
func PaperMatrices(k int) []Confusion {
	switch k {
	case 2:
		return PaperMatricesArity2
	case 3:
		return PaperMatricesArity3
	case 4:
		return PaperMatricesArity4
	}
	return nil
}
