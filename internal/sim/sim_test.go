package sim

import (
	"math"
	"testing"

	"crowdassess/internal/crowd"
	"crowdassess/internal/randx"
)

func TestBinaryGenerateShape(t *testing.T) {
	src := randx.NewSource(1)
	ds, rates, err := Binary{Tasks: 50, Workers: 4}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Workers() != 4 || ds.Tasks() != 50 || ds.Arity() != 2 {
		t.Fatalf("shape %d×%d arity %d", ds.Workers(), ds.Tasks(), ds.Arity())
	}
	if len(rates) != 4 {
		t.Fatalf("rates = %v", rates)
	}
	for _, p := range rates {
		if p != 0.1 && p != 0.2 && p != 0.3 {
			t.Errorf("rate %v not from default choices", p)
		}
	}
	if !ds.IsRegular() {
		t.Error("default density should be regular")
	}
	if !ds.HasTruth() {
		t.Error("truth not populated")
	}
}

func TestBinaryGenerateValidation(t *testing.T) {
	src := randx.NewSource(1)
	if _, _, err := (Binary{Tasks: 0, Workers: 3}).Generate(src); err == nil {
		t.Error("zero tasks accepted")
	}
	if _, _, err := (Binary{Tasks: 5, Workers: 3, ErrorRates: []float64{0.1}}).Generate(src); err == nil {
		t.Error("mismatched error rates accepted")
	}
	if _, _, err := (Binary{Tasks: 5, Workers: 3, Densities: []float64{0.5}}).Generate(src); err == nil {
		t.Error("mismatched densities accepted")
	}
}

func TestBinaryGenerateErrorRateRealized(t *testing.T) {
	src := randx.NewSource(7)
	ds, _, err := Binary{
		Tasks:      4000,
		Workers:    2,
		ErrorRates: []float64{0.1, 0.3},
	}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	for w, want := range []float64{0.1, 0.3} {
		got, err := ds.TrueErrorRate(w)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 0.025 {
			t.Errorf("worker %d realized error %v, want ≈%v", w, got, want)
		}
	}
}

func TestBinaryDensityRealized(t *testing.T) {
	src := randx.NewSource(8)
	ds, _, err := Binary{Tasks: 3000, Workers: 3, Density: 0.6}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	if d := ds.Density(); math.Abs(d-0.6) > 0.03 {
		t.Errorf("density %v, want ≈0.6", d)
	}
}

func TestBinaryPerWorkerDensities(t *testing.T) {
	src := randx.NewSource(9)
	ds, _, err := Binary{
		Tasks:     2000,
		Workers:   2,
		Densities: []float64{0.9, 0.3},
	}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	d0 := float64(ds.ResponseCount(0)) / 2000
	d1 := float64(ds.ResponseCount(1)) / 2000
	if math.Abs(d0-0.9) > 0.04 || math.Abs(d1-0.3) > 0.04 {
		t.Errorf("densities %v %v, want 0.9 0.3", d0, d1)
	}
}

func TestBinarySelectivity(t *testing.T) {
	src := randx.NewSource(10)
	ds, _, err := Binary{Tasks: 5000, Workers: 1, Selectivity: 0.8}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := ds.GoldSelectivity()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sel[0]-0.8) > 0.03 {
		t.Errorf("selectivity %v, want ≈0.8", sel[0])
	}
}

func TestBinaryDifficultyCorrelatesErrors(t *testing.T) {
	// With large per-task difficulty jitter, two workers' mistakes land on
	// the same (hard) tasks more often than independence predicts.
	src := randx.NewSource(11)
	ds, _, err := Binary{
		Tasks:            6000,
		Workers:          2,
		ErrorRates:       []float64{0.2, 0.2},
		DifficultyStdDev: 0.18,
	}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	bothWrong, n := 0, 0
	for task := 0; task < ds.Tasks(); task++ {
		g := ds.Truth(task)
		r0, r1 := ds.Response(0, task), ds.Response(1, task)
		if r0 == crowd.None || r1 == crowd.None {
			continue
		}
		n++
		if r0 != g && r1 != g {
			bothWrong++
		}
	}
	jointRate := float64(bothWrong) / float64(n)
	// Independent 0.2×0.2 would be 0.04; difficulty pushes it well above.
	if jointRate < 0.05 {
		t.Errorf("joint error rate %v shows no correlation", jointRate)
	}
}

func TestFig2cDensities(t *testing.T) {
	d := Fig2cDensities(7)
	if len(d) != 7 {
		t.Fatalf("len = %d", len(d))
	}
	// dᵢ = (0.5i + m − i)/m decreases from (0.5+6)/7 to 3.5/7.
	if math.Abs(d[0]-6.5/7) > 1e-12 || math.Abs(d[6]-0.5) > 1e-12 {
		t.Errorf("densities = %v", d)
	}
	for i := 1; i < 7; i++ {
		if d[i] >= d[i-1] {
			t.Errorf("densities not decreasing: %v", d)
		}
	}
}

func TestConfusionValidation(t *testing.T) {
	if _, err := NewConfusion([][]float64{{1}}); err == nil {
		t.Error("arity 1 accepted")
	}
	if _, err := NewConfusion([][]float64{{0.5, 0.5}, {0.5}}); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := NewConfusion([][]float64{{0.7, 0.2}, {0.5, 0.5}}); err == nil {
		t.Error("non-stochastic row accepted")
	}
	if _, err := NewConfusion([][]float64{{1.2, -0.2}, {0.5, 0.5}}); err == nil {
		t.Error("out-of-range probability accepted")
	}
	c, err := NewConfusion([][]float64{{0.9, 0.1}, {0.2, 0.8}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Arity() != 2 || c.At(1, 1) != 0.9 || c.At(2, 1) != 0.2 {
		t.Error("confusion accessors wrong")
	}
	diag := c.Diagonal()
	if diag[0] != 0.9 || diag[1] != 0.8 {
		t.Errorf("Diagonal = %v", diag)
	}
	cl := c.Clone()
	cl[0][0] = 0
	if c[0][0] != 0.9 {
		t.Error("Clone shares storage")
	}
}

func TestPaperMatrices(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		ms := PaperMatrices(k)
		if len(ms) != 3 {
			t.Fatalf("arity %d: %d matrices", k, len(ms))
		}
		for i, m := range ms {
			if m.Arity() != k {
				t.Errorf("arity %d matrix %d has arity %d", k, i, m.Arity())
			}
			// Paper assumption: diagonal strictly dominates each row.
			for j1 := 1; j1 <= k; j1++ {
				for j2 := 1; j2 <= k; j2++ {
					if j1 != j2 && m.At(crowd.Response(j1), crowd.Response(j1)) <= m.At(crowd.Response(j1), crowd.Response(j2)) {
						t.Errorf("arity %d matrix %d: row %d diagonal not dominant", k, i, j1)
					}
				}
			}
		}
	}
	if PaperMatrices(5) != nil {
		t.Error("unexpected matrices for arity 5")
	}
}

func TestKAryGenerate(t *testing.T) {
	src := randx.NewSource(13)
	ds, confs, err := KAry{
		Tasks:            300,
		Workers:          3,
		ConfusionChoices: PaperMatricesArity3,
	}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Arity() != 3 || ds.Workers() != 3 || ds.Tasks() != 300 {
		t.Fatalf("shape %d×%d arity %d", ds.Workers(), ds.Tasks(), ds.Arity())
	}
	if len(confs) != 3 {
		t.Fatalf("confs = %d", len(confs))
	}
	if !ds.HasTruth() {
		t.Error("truth missing")
	}
}

func TestKAryGenerateRealizesConfusion(t *testing.T) {
	src := randx.NewSource(14)
	conf := PaperMatricesArity2[0] // {{0.9,0.1},{0.2,0.8}}
	ds, _, err := KAry{
		Tasks:      8000,
		Workers:    1,
		Confusions: []Confusion{conf},
	}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	got, hasRow, err := ds.TrueConfusion(0)
	if err != nil {
		t.Fatal(err)
	}
	for j1 := 0; j1 < 2; j1++ {
		if !hasRow[j1] {
			t.Fatalf("row %d unobserved", j1)
		}
		for j2 := 0; j2 < 2; j2++ {
			if math.Abs(got[j1][j2]-conf[j1][j2]) > 0.03 {
				t.Errorf("P(%d,%d) realized %v, want ≈%v", j1, j2, got[j1][j2], conf[j1][j2])
			}
		}
	}
}

func TestKAryValidation(t *testing.T) {
	src := randx.NewSource(15)
	if _, _, err := (KAry{Tasks: 10, Workers: 2}).Generate(src); err == nil {
		t.Error("missing confusions accepted")
	}
	if _, _, err := (KAry{
		Tasks:      10,
		Workers:    2,
		Confusions: []Confusion{PaperMatricesArity2[0], PaperMatricesArity3[0]},
	}).Generate(src); err == nil {
		t.Error("mixed arities accepted")
	}
	if _, _, err := (KAry{
		Tasks:       10,
		Workers:     1,
		Confusions:  []Confusion{PaperMatricesArity2[0]},
		Selectivity: []float64{1, 0, 0},
	}).Generate(src); err == nil {
		t.Error("wrong-length selectivity accepted")
	}
}

func TestEmulateIC(t *testing.T) {
	ds, err := EmulateIC(randx.NewSource(20))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Workers() != 19 || ds.Tasks() != 48 || ds.Arity() != 2 {
		t.Fatalf("IC shape %d×%d arity %d", ds.Workers(), ds.Tasks(), ds.Arity())
	}
	if d := ds.Density(); math.Abs(d-0.8) > 0.02 {
		t.Errorf("IC density %v, want ≈0.8 (20%% removed)", d)
	}
	if !ds.HasTruth() {
		t.Error("IC gold answers missing")
	}
}

func TestEmulateSnowShapes(t *testing.T) {
	rte, err := EmulateRTE(randx.NewSource(21))
	if err != nil {
		t.Fatal(err)
	}
	if rte.Workers() != 164 || rte.Tasks() != 800 {
		t.Fatalf("RTE shape %d×%d", rte.Workers(), rte.Tasks())
	}
	if d := rte.Density(); d > 0.5 {
		t.Errorf("RTE density %v too high for a sparse dataset", d)
	}
	tem, err := EmulateTEM(randx.NewSource(22))
	if err != nil {
		t.Fatal(err)
	}
	if tem.Workers() != 76 || tem.Tasks() != 462 {
		t.Fatalf("TEM shape %d×%d", tem.Workers(), tem.Tasks())
	}
}

func TestEmulateMOOC(t *testing.T) {
	ds, err := EmulateMOOC(randx.NewSource(23))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Arity() != 3 {
		t.Fatalf("MOOC arity %d, want 3 after collapse", ds.Arity())
	}
	// The Fig 5(c) protocol needs ≥50 triples with ≥60 common tasks.
	att := ds.Attendance()
	count := 0
	m := ds.Workers()
	for i := 0; i < m && count < 50; i++ {
		for j := i + 1; j < m && count < 50; j++ {
			for k := j + 1; k < m && count < 50; k++ {
				if att.Common3(i, j, k) >= 60 {
					count++
				}
			}
		}
	}
	if count < 50 {
		t.Errorf("MOOC has only %d triples with ≥60 common tasks", count)
	}
}

func TestEmulateWSD(t *testing.T) {
	ds, err := EmulateWSD(randx.NewSource(24))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Arity() != 2 {
		t.Fatalf("WSD arity %d, want 2 after merge", ds.Arity())
	}
	att := ds.Attendance()
	count := 0
	m := ds.Workers()
	for i := 0; i < m && count < 50; i++ {
		for j := i + 1; j < m && count < 50; j++ {
			for k := j + 1; k < m && count < 50; k++ {
				if att.Common3(i, j, k) >= 100 {
					count++
				}
			}
		}
	}
	if count < 50 {
		t.Errorf("WSD has only %d triples with ≥100 common tasks", count)
	}
}

func TestEmulateWS(t *testing.T) {
	ds, err := EmulateWS(randx.NewSource(25))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Arity() != 2 {
		t.Fatalf("WS arity %d, want 2 after threshold", ds.Arity())
	}
	// Sparse enough that ≥30-common triples exist but aren't universal, and
	// at least 50 of them exist for the experiment protocol.
	att := ds.Attendance()
	ge30 := 0
	m := ds.Workers()
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			for k := j + 1; k < m; k++ {
				if att.Common3(i, j, k) >= 30 {
					ge30++
				}
			}
		}
	}
	if ge30 < 50 {
		t.Errorf("WS has only %d triples with ≥30 common tasks", ge30)
	}
}

func TestEmulatorsDeterministic(t *testing.T) {
	a, err := EmulateIC(randx.NewSource(99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := EmulateIC(randx.NewSource(99))
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < a.Workers(); w++ {
		for task := 0; task < a.Tasks(); task++ {
			if a.Response(w, task) != b.Response(w, task) {
				t.Fatal("same seed produced different IC datasets")
			}
		}
	}
}

func TestAdjacentConfusionRowsStochastic(t *testing.T) {
	src := randx.NewSource(31)
	c := adjacentConfusion(6, 0.7, src)
	for j1 := 0; j1 < 6; j1++ {
		var sum float64
		for j2 := 0; j2 < 6; j2++ {
			sum += c[j1][j2]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("row %d sums to %v", j1, sum)
		}
		if c[j1][j1] < 0.5 {
			t.Errorf("row %d diagonal %v too small", j1, c[j1][j1])
		}
	}
}

func TestBandedConfusionDecays(t *testing.T) {
	c := bandedConfusion(11, 1.5)
	for j1 := 0; j1 < 11; j1++ {
		var sum float64
		for j2 := 0; j2 < 11; j2++ {
			sum += c[j1][j2]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("row %d sums to %v", j1, sum)
		}
	}
	// Probability decays with distance from the truth.
	if !(c[5][5] > c[5][6] && c[5][6] > c[5][8]) {
		t.Error("banded confusion not decaying")
	}
}
