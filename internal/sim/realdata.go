package sim

import (
	"math"

	"crowdassess/internal/crowd"
	"crowdassess/internal/randx"
)

// This file emulates the six real datasets of the paper's evaluation.
// The originals (Mechanical Turk collections and a MOOC peer-grading dump)
// are not available offline, so each emulator regenerates a crowd with the
// same shape, sparsity, arity reduction, worker-quality mix and — crucially —
// task-difficulty variation, which is the mechanism the paper identifies for
// real data violating the worker-independence assumption. See DESIGN.md.

// EmulateIC regenerates the Image Comparison dataset of [2]: 48 binary tasks
// × 19 workers, originally regular, with 20% of responses removed uniformly
// at random exactly as the paper does before its non-regular experiments.
func EmulateIC(src *randx.Source) (*crowd.Dataset, error) {
	const tasks, workers = 48, 19
	rates := make([]float64, workers)
	for i := range rates {
		switch {
		case i < 2:
			// A couple of near-spammers exist in the real pool.
			rates[i] = 0.38 + 0.06*src.Float64()
		default:
			rates[i] = 0.05 + 0.25*src.Float64()
		}
	}
	ds, _, err := Binary{
		Tasks:            tasks,
		Workers:          workers,
		ErrorRates:       rates,
		Density:          1, // regular before removal
		DifficultyStdDev: 0.08,
	}.Generate(src)
	if err != nil {
		return nil, err
	}
	removeFraction(ds, 0.20, src)
	return ds, nil
}

// EmulateRTE regenerates the Snow et al. textual-entailment dataset: 800
// binary tasks, 164 workers, very sparse with heavy-tailed worker
// participation and a visible spammer fraction (which is what makes the
// paper's Fig. 4 pruning step matter).
func EmulateRTE(src *randx.Source) (*crowd.Dataset, error) {
	return emulateSnowBinary(src, 800, 164)
}

// EmulateTEM regenerates the Snow et al. temporal-ordering dataset: 462
// binary tasks, 76 workers, sparse and heavy-tailed like RTE.
func EmulateTEM(src *randx.Source) (*crowd.Dataset, error) {
	return emulateSnowBinary(src, 462, 76)
}

// emulateSnowBinary builds a sparse binary AMT-style dataset with a
// heavy-tailed participation profile: a small prolific core answers most
// tasks while the long tail contributes a handful of labels each, plus
// ~12% spammers answering near-randomly.
func emulateSnowBinary(src *randx.Source, tasks, workers int) (*crowd.Dataset, error) {
	rates := make([]float64, workers)
	densities := make([]float64, workers)
	for i := range rates {
		if src.Bernoulli(0.15) {
			rates[i] = 0.45 + 0.05*src.Float64() // spammer: ≈ coin flips
		} else {
			rates[i] = 0.05 + 0.28*src.Float64()
		}
		// Heavy tail: squaring a uniform pushes mass toward small densities
		// (the long tail of casual workers); the floor keeps pairwise
		// overlaps above the handful-of-tasks regime where the delta
		// method's normal approximation has nothing to work with, matching
		// the prolific-core structure of the real AMT collections.
		u := src.Float64()
		densities[i] = 0.10 + 0.65*u*u
	}
	ds, _, err := Binary{
		Tasks:            tasks,
		Workers:          workers,
		ErrorRates:       rates,
		Densities:        densities,
		DifficultyStdDev: 0.05,
	}.Generate(src)
	if err != nil {
		return nil, err
	}
	return ds, nil
}

// EmulateMOOC regenerates the peer-grading dataset: graders assign 6-ary
// grades with adjacent-grade confusion, and the dataset is collapsed to
// 3-ary via g ↦ ⌈g/2⌉ exactly as the paper does. The output guarantees
// enough worker triples with ≥60 common tasks for the Fig. 5(c) protocol.
func EmulateMOOC(src *randx.Source) (*crowd.Dataset, error) {
	const tasks, workers, arity = 220, 24, 6
	confs := make([]Confusion, workers)
	for i := range confs {
		confs[i] = adjacentConfusion(arity, 0.55+0.3*src.Float64(), src)
	}
	// Grades skew toward the upper-middle of the scale, as real peer grades do.
	sel := []float64{0.05, 0.10, 0.15, 0.25, 0.30, 0.15}
	ds, _, err := KAry{
		Tasks:       tasks,
		Workers:     workers,
		Confusions:  confs,
		Selectivity: sel,
		Density:     0.75,
	}.Generate(src)
	if err != nil {
		return nil, err
	}
	// The paper's reduction: grade g (1…6 here) → ⌈g/2⌉ ∈ {1,2,3}.
	return ds.CollapseArity(3, func(r crowd.Response) crowd.Response { return (r + 1) / 2 })
}

// EmulateWSD regenerates the word-sense-disambiguation dataset: 3-ary with
// class 2 almost absent (which makes the 3-ary spectral step singular), so
// the paper — and this emulator — collapse it to binary by merging classes
// 2 and 3.
func EmulateWSD(src *randx.Source) (*crowd.Dataset, error) {
	const tasks, workers = 320, 22
	confs := make([]Confusion, workers)
	for i := range confs {
		good := 0.70 + 0.25*src.Float64()
		rest := 1 - good
		confs[i] = MustConfusion([][]float64{
			{good, 0.02, rest - 0.02},
			{rest / 2, good, rest / 2},
			{rest - 0.02, 0.02, good},
		})
	}
	// Class 2 essentially never occurs, matching the paper's observation.
	sel := []float64{0.72, 0.005, 0.275}
	ds, _, err := KAry{
		Tasks:       tasks,
		Workers:     workers,
		Confusions:  confs,
		Selectivity: sel,
		Density:     0.8,
	}.Generate(src)
	if err != nil {
		return nil, err
	}
	// Merge senses 2 and 3, as the paper does to avoid the singular row.
	return ds.CollapseArity(2, func(r crowd.Response) crowd.Response {
		if r == 1 {
			return 1
		}
		return 2
	})
}

// EmulateWS regenerates the word-similarity dataset: 0–10 ratings (encoded
// as classes 1…11) collapsed to binary by thresholding at rating 6, with
// extreme sparsity so that worker triples share at most ≈30 tasks, matching
// the paper's t=30 protocol.
func EmulateWS(src *randx.Source) (*crowd.Dataset, error) {
	const tasks, workers, arity = 300, 36, 11
	confs := make([]Confusion, workers)
	for i := range confs {
		confs[i] = bandedConfusion(arity, 1.2+1.3*src.Float64())
	}
	sel := make([]float64, arity)
	for i := range sel {
		sel[i] = 1 / float64(arity)
	}
	ds, _, err := KAry{
		Tasks:       tasks,
		Workers:     workers,
		Confusions:  confs,
		Selectivity: sel,
		Density:     0.42,
	}.Generate(src)
	if err != nil {
		return nil, err
	}
	// Rating g = class−1 ∈ 0…10; low ratings (≤5) → class 1, high → class 2.
	return ds.CollapseArity(2, func(r crowd.Response) crowd.Response {
		if r <= 6 {
			return 1
		}
		return 2
	})
}

// adjacentConfusion builds a k×k grading matrix where the correct grade gets
// probability ≈ diag and errors fall mostly on adjacent grades — the typical
// peer-grading noise profile.
func adjacentConfusion(k int, diag float64, src *randx.Source) Confusion {
	rows := make([][]float64, k)
	for j1 := 0; j1 < k; j1++ {
		row := make([]float64, k)
		row[j1] = diag
		rest := 1 - diag
		// 80% of the residual mass to neighbours, the rest spread uniformly.
		neighbours := []int{}
		if j1 > 0 {
			neighbours = append(neighbours, j1-1)
		}
		if j1 < k-1 {
			neighbours = append(neighbours, j1+1)
		}
		for _, nb := range neighbours {
			row[nb] += 0.8 * rest / float64(len(neighbours))
		}
		far := 0.2 * rest / float64(k-1)
		for j2 := 0; j2 < k; j2++ {
			if j2 != j1 {
				row[j2] += far
			}
		}
		// Renormalize away rounding residue.
		var sum float64
		for _, v := range row {
			sum += v
		}
		for j2 := range row {
			row[j2] /= sum
		}
		rows[j1] = row
	}
	return MustConfusion(rows)
}

// bandedConfusion builds a k×k rating matrix with geometric decay away from
// the true rating: P(j2|j1) ∝ exp(−|j1−j2|/width).
func bandedConfusion(k int, width float64) Confusion {
	rows := make([][]float64, k)
	for j1 := 0; j1 < k; j1++ {
		row := make([]float64, k)
		var sum float64
		for j2 := 0; j2 < k; j2++ {
			d := float64(j1 - j2)
			if d < 0 {
				d = -d
			}
			row[j2] = math.Exp(-d / width)
			sum += row[j2]
		}
		for j2 := range row {
			row[j2] /= sum
		}
		rows[j1] = row
	}
	return MustConfusion(rows)
}

// removeFraction deletes the given fraction of existing responses uniformly
// at random, as the paper does to de-regularize the IC dataset.
func removeFraction(ds *crowd.Dataset, frac float64, src *randx.Source) {
	type wt struct{ w, t int }
	var cells []wt
	for w := 0; w < ds.Workers(); w++ {
		for t := 0; t < ds.Tasks(); t++ {
			if ds.Attempted(w, t) {
				cells = append(cells, wt{w, t})
			}
		}
	}
	remove := int(frac * float64(len(cells)))
	for _, idx := range src.SampleWithoutReplacement(len(cells), remove) {
		c := cells[idx]
		_ = ds.SetResponse(c.w, c.t, crowd.None)
	}
}
