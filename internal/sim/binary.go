// Package sim generates the synthetic crowds used throughout the paper's
// evaluation: binary workers with fixed error rates (Section III), k-ary
// workers with confusion matrices (Section IV), and seeded emulators for the
// six real datasets the paper evaluates on (IC, RTE, TEM, MOOC, WSD, WS) —
// see DESIGN.md for the substitution rationale.
package sim

import (
	"fmt"

	"crowdassess/internal/crowd"
	"crowdassess/internal/randx"
)

// DefaultErrorRateChoices is the paper's worker-quality mix: each worker's
// error rate is drawn uniformly from {0.1, 0.2, 0.3}.
var DefaultErrorRateChoices = []float64{0.1, 0.2, 0.3}

// Binary configures a synthetic binary-task crowd (Section III experiments).
type Binary struct {
	Tasks   int // number of tasks n
	Workers int // number of workers m

	// ErrorRates fixes each worker's error rate. When nil, each worker draws
	// uniformly from ErrorRateChoices (or DefaultErrorRateChoices when that
	// is nil too).
	ErrorRates       []float64
	ErrorRateChoices []float64

	// Densities gives each worker's per-task attempt probability. When nil,
	// Density applies to every worker; a zero Density means 1 (regular data).
	Densities []float64
	Density   float64

	// Selectivity is the prior probability that a task's true answer is Yes.
	// Zero means 0.5.
	Selectivity float64

	// DifficultyStdDev adds a per-task difficulty shift to every worker's
	// error rate (clamped to [0.01, 0.49] per attempt). Nonzero values break
	// the independence assumption the same way real tasks do (Section III-E).
	DifficultyStdDev float64
}

// Generate draws a dataset from the configuration. It returns the dataset
// (with gold answers populated) and the per-worker true error rates used.
func (b Binary) Generate(src *randx.Source) (*crowd.Dataset, []float64, error) {
	if b.Tasks <= 0 || b.Workers <= 0 {
		return nil, nil, fmt.Errorf("sim: invalid shape %d workers × %d tasks", b.Workers, b.Tasks)
	}
	rates := b.ErrorRates
	if rates == nil {
		choices := b.ErrorRateChoices
		if choices == nil {
			choices = DefaultErrorRateChoices
		}
		rates = make([]float64, b.Workers)
		for i := range rates {
			rates[i] = src.Choice(choices)
		}
	} else if len(rates) != b.Workers {
		return nil, nil, fmt.Errorf("sim: %d error rates for %d workers", len(rates), b.Workers)
	}
	densities := b.Densities
	if densities == nil {
		d := b.Density
		if d == 0 {
			d = 1
		}
		densities = make([]float64, b.Workers)
		for i := range densities {
			densities[i] = d
		}
	} else if len(densities) != b.Workers {
		return nil, nil, fmt.Errorf("sim: %d densities for %d workers", len(densities), b.Workers)
	}
	sel := b.Selectivity
	if sel == 0 {
		sel = 0.5
	}

	ds, err := crowd.NewDataset(b.Workers, b.Tasks, 2)
	if err != nil {
		return nil, nil, err
	}
	difficulty := make([]float64, b.Tasks)
	if b.DifficultyStdDev > 0 {
		for t := range difficulty {
			difficulty[t] = src.NormFloat64() * b.DifficultyStdDev
		}
	}
	for t := 0; t < b.Tasks; t++ {
		truth := crowd.No
		if src.Bernoulli(sel) {
			truth = crowd.Yes
		}
		if err := ds.SetTruth(t, truth); err != nil {
			return nil, nil, err
		}
		for w := 0; w < b.Workers; w++ {
			if !src.Bernoulli(densities[w]) {
				continue
			}
			p := clampRate(rates[w] + difficulty[t])
			r := truth
			if src.Bernoulli(p) {
				r = flip(truth)
			}
			if err := ds.SetResponse(w, t, r); err != nil {
				return nil, nil, err
			}
		}
	}
	rcopy := make([]float64, len(rates))
	copy(rcopy, rates)
	return ds, rcopy, nil
}

func flip(r crowd.Response) crowd.Response {
	if r == crowd.Yes {
		return crowd.No
	}
	return crowd.Yes
}

func clampRate(p float64) float64 {
	if p < 0.01 {
		return 0.01
	}
	if p > 0.49 {
		return 0.49
	}
	return p
}

// Fig2cDensities returns the per-worker densities of the paper's weight
// optimization experiment (Section III-D3): dᵢ = (0.5·i + (m − i))/m for
// i = 1…m, so different workers attempt very different numbers of tasks.
func Fig2cDensities(m int) []float64 {
	out := make([]float64, m)
	for i := 1; i <= m; i++ {
		out[i-1] = (0.5*float64(i) + float64(m-i)) / float64(m)
	}
	return out
}
