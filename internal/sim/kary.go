package sim

import (
	"fmt"

	"crowdassess/internal/crowd"
	"crowdassess/internal/randx"
)

// Confusion is a k×k worker response-probability matrix: Confusion[j1][j2]
// is the probability the worker answers class j2+1 when the truth is class
// j1+1. Rows must sum to 1.
type Confusion [][]float64

// NewConfusion validates and wraps a response-probability matrix.
func NewConfusion(rows [][]float64) (Confusion, error) {
	k := len(rows)
	if k < 2 {
		return nil, fmt.Errorf("sim: confusion arity %d < 2", k)
	}
	for i, row := range rows {
		if len(row) != k {
			return nil, fmt.Errorf("sim: confusion row %d has %d entries, want %d", i, len(row), k)
		}
		var sum float64
		for _, v := range row {
			if v < 0 || v > 1 {
				return nil, fmt.Errorf("sim: confusion row %d has probability %v outside [0,1]", i, v)
			}
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			return nil, fmt.Errorf("sim: confusion row %d sums to %v", i, sum)
		}
	}
	return Confusion(rows), nil
}

// MustConfusion is NewConfusion panicking on error, for static tables.
func MustConfusion(rows [][]float64) Confusion {
	c, err := NewConfusion(rows)
	if err != nil {
		panic(err)
	}
	return c
}

// Arity returns k.
func (c Confusion) Arity() int { return len(c) }

// At returns the probability of responding j2 when the truth is j1
// (1-based classes, matching crowd.Response).
func (c Confusion) At(j1, j2 crowd.Response) float64 { return c[j1-1][j2-1] }

// Clone returns a deep copy.
func (c Confusion) Clone() Confusion {
	out := make(Confusion, len(c))
	for i, row := range c {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// Diagonal returns the per-class correctness probabilities.
func (c Confusion) Diagonal() []float64 {
	out := make([]float64, len(c))
	for i := range c {
		out[i] = c[i][i]
	}
	return out
}

// KAry configures a synthetic k-ary crowd (Section IV experiments).
type KAry struct {
	Tasks   int
	Workers int

	// Confusions fixes each worker's response-probability matrix. When nil,
	// each worker draws uniformly from ConfusionChoices.
	Confusions       []Confusion
	ConfusionChoices []Confusion

	// Selectivity is the prior over true classes; nil means uniform.
	Selectivity []float64

	// Densities / Density as in Binary. Zero Density means 1.
	Densities []float64
	Density   float64
}

// Generate draws a dataset from the configuration. It returns the dataset
// (gold answers populated) and each worker's true confusion matrix.
func (k KAry) Generate(src *randx.Source) (*crowd.Dataset, []Confusion, error) {
	if k.Tasks <= 0 || k.Workers <= 0 {
		return nil, nil, fmt.Errorf("sim: invalid shape %d workers × %d tasks", k.Workers, k.Tasks)
	}
	confs := k.Confusions
	if confs == nil {
		if len(k.ConfusionChoices) == 0 {
			return nil, nil, fmt.Errorf("sim: KAry needs Confusions or ConfusionChoices")
		}
		confs = make([]Confusion, k.Workers)
		for i := range confs {
			confs[i] = k.ConfusionChoices[src.Intn(len(k.ConfusionChoices))]
		}
	} else if len(confs) != k.Workers {
		return nil, nil, fmt.Errorf("sim: %d confusions for %d workers", len(confs), k.Workers)
	}
	arity := confs[0].Arity()
	for i, c := range confs {
		if c.Arity() != arity {
			return nil, nil, fmt.Errorf("sim: confusion %d has arity %d, want %d", i, c.Arity(), arity)
		}
	}
	sel := k.Selectivity
	if sel == nil {
		sel = make([]float64, arity)
		for i := range sel {
			sel[i] = 1 / float64(arity)
		}
	} else if len(sel) != arity {
		return nil, nil, fmt.Errorf("sim: selectivity has %d classes, want %d", len(sel), arity)
	}
	densities := k.Densities
	if densities == nil {
		d := k.Density
		if d == 0 {
			d = 1
		}
		densities = make([]float64, k.Workers)
		for i := range densities {
			densities[i] = d
		}
	} else if len(densities) != k.Workers {
		return nil, nil, fmt.Errorf("sim: %d densities for %d workers", len(densities), k.Workers)
	}

	ds, err := crowd.NewDataset(k.Workers, k.Tasks, arity)
	if err != nil {
		return nil, nil, err
	}
	for t := 0; t < k.Tasks; t++ {
		truth := crowd.Response(src.Categorical(sel) + 1)
		if err := ds.SetTruth(t, truth); err != nil {
			return nil, nil, err
		}
		for w := 0; w < k.Workers; w++ {
			if !src.Bernoulli(densities[w]) {
				continue
			}
			resp := crowd.Response(src.Categorical(confs[w][truth-1]) + 1)
			if err := ds.SetResponse(w, t, resp); err != nil {
				return nil, nil, err
			}
		}
	}
	out := make([]Confusion, len(confs))
	for i, c := range confs {
		out[i] = c.Clone()
	}
	return ds, out, nil
}
