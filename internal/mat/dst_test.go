package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestMulAddToAccumulates(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	dst := FromRows([][]float64{{100, 0}, {0, 100}})
	MulAddTo(dst, a, b)
	want := a.Mul(b)
	if dst.At(0, 0) != 100+want.At(0, 0) || dst.At(1, 1) != 100+want.At(1, 1) ||
		dst.At(0, 1) != want.At(0, 1) || dst.At(1, 0) != want.At(1, 0) {
		t.Errorf("MulAddTo:\n%v", dst)
	}
}

func TestMulToNonSquare(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}}) // 2×3
	b := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	dst := New(2, 2)
	MulTo(dst, a, b)
	if !dst.EqualApprox(a.Mul(b), 0) {
		t.Errorf("non-square MulTo mismatch:\n%v", dst)
	}
}

func TestElementwiseToAliasing(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	sum := a.Plus(b)
	PlusTo(a, a, b) // dst aliases a
	if !a.EqualApprox(sum, 0) {
		t.Errorf("aliased PlusTo:\n%v", a)
	}
	a = FromRows([][]float64{{1, 2}, {3, 4}})
	diff := a.Minus(b)
	MinusTo(a, a, b)
	if !a.EqualApprox(diff, 0) {
		t.Errorf("aliased MinusTo:\n%v", a)
	}
	a = FromRows([][]float64{{1, 2}, {3, 4}})
	scaled := a.Scale(2.5)
	ScaleTo(a, a, 2.5)
	if !a.EqualApprox(scaled, 0) {
		t.Errorf("aliased ScaleTo:\n%v", a)
	}
}

func TestSymmetrizeToAliasing(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	want := a.Symmetrize()
	SymmetrizeTo(a, a) // in place
	if !a.EqualApprox(want, 0) {
		t.Errorf("aliased SymmetrizeTo:\n%v\nwant\n%v", a, want)
	}
}

func TestMulVecTo(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	v := []float64{2, -1}
	dst := make([]float64, 3)
	MulVecTo(dst, a, v)
	want := a.MulVec(v)
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("MulVecTo[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestIdentityTo(t *testing.T) {
	m := FromRows([][]float64{{9, 9}, {9, 9}})
	IdentityTo(m)
	if !m.EqualApprox(Identity(2), 0) {
		t.Errorf("IdentityTo:\n%v", m)
	}
}

func TestRowViewAliases(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	row := m.RowView(1)
	row[0] = 42
	if m.At(1, 0) != 42 {
		t.Error("RowView write did not reach the matrix")
	}
	// Row, by contrast, must stay a copy.
	cp := m.Row(1)
	cp[1] = -1
	if m.At(1, 1) != 4 {
		t.Error("Row copy aliased the matrix")
	}
}

// TestWrappersMatchTo pins the wrapper contract: the value-returning
// methods and their destination-passing forms produce identical floats.
func TestWrappersMatchTo(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for _, n := range []int{2, 3, 5} {
		a := randomMatrix(r, n)
		b := randomMatrix(r, n)
		dst := New(n, n)
		MulTo(dst, a, b)
		if !dst.EqualApprox(a.Mul(b), 0) {
			t.Errorf("n=%d: MulTo vs Mul", n)
		}
		TTo(dst, a)
		if !dst.EqualApprox(a.T(), 0) {
			t.Errorf("n=%d: TTo vs T", n)
		}
		SymmetrizeTo(dst, a)
		if !dst.EqualApprox(a.Symmetrize(), 0) {
			t.Errorf("n=%d: SymmetrizeTo vs Symmetrize", n)
		}
		if inv, err := a.Inverse(); err == nil {
			got := New(n, n)
			if err := InverseTo(got, a, NewLU(n)); err != nil {
				t.Errorf("n=%d: InverseTo failed where Inverse succeeded: %v", n, err)
			} else if !got.EqualApprox(inv, 0) {
				t.Errorf("n=%d: InverseTo vs Inverse", n)
			}
		}
	}
	// Eigen wrappers share the WS implementation.
	m := randomMatrix(r, 4)
	sym := m.Symmetrize()
	e1, err1 := sym.EigenSym()
	e2, err2 := sym.EigenSymWS(NewWorkspace())
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("EigenSym err %v vs WS err %v", err1, err2)
	}
	if err1 == nil {
		for i, v := range e1.Values {
			if v != e2.Values[i] {
				t.Errorf("EigenSym value %d: %v vs %v", i, v, e2.Values[i])
			}
		}
		if !e1.Vectors.EqualApprox(e2.Vectors, 0) {
			t.Error("EigenSym vectors differ between wrapper and WS path")
		}
	}
	if math.IsNaN(e1.Values[0]) {
		t.Error("NaN eigenvalue")
	}
}
