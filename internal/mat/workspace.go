package mat

// Workspace is a scratch-memory arena for the destination-passing API: it
// hands out matrices, vectors, index slices and LU factorizations from
// per-shape pools, so iterative callers (the A3 spectral step, the A2
// covariance solve) reach a steady state of zero heap allocations.
//
// The protocol is bump-allocation with bulk release: Get/GetVec/GetInts
// return the next free object of the requested shape, growing the pool only
// on first use; Reset parks every object again without freeing it. There is
// no per-object Put — callers reset once per outer iteration (e.g. once per
// probEstimate pair in the gradient loop) and everything handed out since
// the previous Reset is recycled at once.
//
// A Workspace is NOT safe for concurrent use: parallel code threads one
// workspace per goroutine (see core.KAryOptions.Parallel's fan-out).
type Workspace struct {
	mats map[wsShape]*matPool
	vecs map[int]*vecPool
	ints map[int]*intPool
	lus  map[int]*LU
}

type wsShape struct{ r, c int }

type matPool struct {
	items []*Matrix
	next  int
}

type vecPool struct {
	items [][]float64
	next  int
}

type intPool struct {
	items [][]int
	next  int
}

// NewWorkspace returns an empty workspace. Pools grow on demand; a warmed
// workspace (one that has already served the caller's request pattern once)
// serves every subsequent request without allocating.
func NewWorkspace() *Workspace {
	return &Workspace{
		mats: make(map[wsShape]*matPool),
		vecs: make(map[int]*vecPool),
		ints: make(map[int]*intPool),
		lus:  make(map[int]*LU),
	}
}

// Get returns a zeroed r×c matrix owned by the workspace. The matrix is
// valid until the next Reset; callers must not retain it past that.
func (w *Workspace) Get(r, c int) *Matrix {
	p := w.mats[wsShape{r, c}]
	if p == nil {
		p = &matPool{}
		w.mats[wsShape{r, c}] = p
	}
	if p.next < len(p.items) {
		m := p.items[p.next]
		p.next++
		clear(m.data)
		return m
	}
	m := New(r, c)
	p.items = append(p.items, m)
	p.next++
	return m
}

// GetVec returns a zeroed float slice of length n, valid until the next
// Reset.
func (w *Workspace) GetVec(n int) []float64 {
	p := w.vecs[n]
	if p == nil {
		p = &vecPool{}
		w.vecs[n] = p
	}
	if p.next < len(p.items) {
		v := p.items[p.next]
		p.next++
		clear(v)
		return v
	}
	v := make([]float64, n)
	p.items = append(p.items, v)
	p.next++
	return v
}

// GetInts returns a zeroed int slice of length n, valid until the next
// Reset.
func (w *Workspace) GetInts(n int) []int {
	p := w.ints[n]
	if p == nil {
		p = &intPool{}
		w.ints[n] = p
	}
	if p.next < len(p.items) {
		v := p.items[p.next]
		p.next++
		clear(v)
		return v
	}
	v := make([]int, n)
	p.items = append(p.items, v)
	p.next++
	return v
}

// LU returns the workspace's reusable n×n LU factorization scratch. Unlike
// Get, the same object is returned for every call with the same n (it is
// not consumed): callers refactor it from their own matrix before solving,
// so sequential users cannot observe each other's state. It survives Reset.
func (w *Workspace) LU(n int) *LU {
	f := w.lus[n]
	if f == nil {
		f = NewLU(n)
		w.lus[n] = f
	}
	return f
}

// Reset parks every matrix, vector and index slice handed out since the
// last Reset, making them available for reuse. Nothing is freed.
func (w *Workspace) Reset() {
	for _, p := range w.mats {
		p.next = 0
	}
	for _, p := range w.vecs {
		p.next = 0
	}
	for _, p := range w.ints {
		p.next = 0
	}
}
