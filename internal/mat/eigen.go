package mat

import (
	"errors"
	"math"
	"sort"
)

// ErrComplexEigen is returned when a real eigendecomposition is requested
// but the matrix has a complex-conjugate eigenvalue pair. Algorithm A3's
// second-moment matrices are similar to diagonal matrices with real spectra
// in exact arithmetic; sampling noise can occasionally push a pair complex,
// and callers treat that as a degenerate sample.
var ErrComplexEigen = errors.New("mat: matrix has complex eigenvalues")

// ErrNoConverge is returned when an iterative eigenvalue method exceeds its
// iteration budget.
var ErrNoConverge = errors.New("mat: eigenvalue iteration did not converge")

// Eigen holds a real eigendecomposition A = V · diag(Values) · V⁻¹.
// Column j of Vectors is the (unit-norm) eigenvector for Values[j].
type Eigen struct {
	Values  []float64
	Vectors *Matrix
}

// QR returns the Householder QR factorization m = Q·R with Q orthogonal and
// R upper triangular. It panics unless m is square (the only case needed
// here).
func (m *Matrix) QR() (q, r *Matrix) {
	if m.rows != m.cols {
		panic(ErrShape)
	}
	n := m.rows
	r = m.Clone()
	q = Identity(n)
	// One Householder scratch vector for all columns: each iteration writes
	// every entry of v[col:] before reading it, and never touches v[:col].
	v := make([]float64, n)
	for col := 0; col < n-1; col++ {
		// Householder vector for column col below the diagonal.
		var norm float64
		for i := col; i < n; i++ {
			norm += r.At(i, col) * r.At(i, col)
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		alpha := -norm
		if r.At(col, col) < 0 {
			alpha = norm
		}
		v[col] = r.At(col, col) - alpha
		for i := col + 1; i < n; i++ {
			v[i] = r.At(i, col)
		}
		var vv float64
		for _, x := range v[col:] {
			vv += x * x
		}
		if vv == 0 {
			continue
		}
		// Apply H = I − 2vvᵀ/(vᵀv) on the left of R and the right of Q.
		for j := 0; j < n; j++ {
			var dot float64
			for i := col; i < n; i++ {
				dot += v[i] * r.At(i, j)
			}
			f := 2 * dot / vv
			for i := col; i < n; i++ {
				r.Add(i, j, -f*v[i])
			}
		}
		for i := 0; i < n; i++ {
			qi := q.RowView(i)
			var dot float64
			for j := col; j < n; j++ {
				dot += qi[j] * v[j]
			}
			f := 2 * dot / vv
			for j := col; j < n; j++ {
				qi[j] -= f * v[j]
			}
		}
	}
	return q, r
}

// Hessenberg reduces m to upper Hessenberg form H = Qᵀ·m·Q via Householder
// similarity transforms, returning H. The orthogonal factor is not needed by
// callers here so it is not accumulated.
func (m *Matrix) Hessenberg() *Matrix {
	if m.rows != m.cols {
		panic(ErrShape)
	}
	h := m.Clone()
	hessenbergInPlace(h, make([]float64, m.rows))
	return h
}

// hessenbergInPlace reduces h to upper Hessenberg form in place. v is
// caller-owned Householder scratch of length h.Rows(): the window v[col+1:]
// is fully rewritten each iteration and nothing below it is read.
func hessenbergInPlace(h *Matrix, v []float64) {
	n := h.rows
	for col := 0; col < n-2; col++ {
		var norm float64
		for i := col + 1; i < n; i++ {
			norm += h.At(i, col) * h.At(i, col)
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		alpha := -norm
		if h.At(col+1, col) < 0 {
			alpha = norm
		}
		v[col+1] = h.At(col+1, col) - alpha
		for i := col + 2; i < n; i++ {
			v[i] = h.At(i, col)
		}
		var vv float64
		for _, x := range v[col+1:] {
			vv += x * x
		}
		if vv == 0 {
			continue
		}
		// H ← P·H·P with P = I − 2vvᵀ/(vᵀv): left then right application.
		for j := 0; j < n; j++ {
			var dot float64
			for i := col + 1; i < n; i++ {
				dot += v[i] * h.data[i*n+j]
			}
			f := 2 * dot / vv
			for i := col + 1; i < n; i++ {
				h.data[i*n+j] -= f * v[i]
			}
		}
		for i := 0; i < n; i++ {
			hi := h.RowView(i)
			var dot float64
			for j := col + 1; j < n; j++ {
				dot += hi[j] * v[j]
			}
			f := 2 * dot / vv
			for j := col + 1; j < n; j++ {
				hi[j] -= f * v[j]
			}
		}
	}
}

// Eigenvalues returns the eigenvalues of m, which must all be real, computed
// by the shifted QR algorithm on the Hessenberg form with deflation.
// It returns ErrComplexEigen when a 2×2 deflated block has a complex pair
// and ErrNoConverge when the iteration budget is exhausted.
func (m *Matrix) Eigenvalues() ([]float64, error) {
	if m.rows != m.cols {
		return nil, ErrShape
	}
	vals, err := eigenvaluesWS(m, NewWorkspace())
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(vals))
	copy(out, vals)
	return out, nil
}

// eigenvaluesWS is the allocation-free core of Eigenvalues: the returned
// slice (ascending-sorted) is owned by ws and valid until its next Reset.
// Errors are the bare sentinels, so failure paths do not allocate either.
func eigenvaluesWS(m *Matrix, ws *Workspace) ([]float64, error) {
	n := m.rows
	if n == 1 {
		evs := ws.GetVec(1)
		evs[0] = m.At(0, 0)
		return evs, nil
	}
	h := ws.Get(n, n)
	h.CopyFrom(m)
	hessenbergInPlace(h, ws.GetVec(n))
	evs := ws.GetVec(n)
	cnt := 0
	// qrShiftStep scratch: an active block is at most n×n.
	blk := ws.GetVec(n * n)
	rotc := ws.GetVec(n)
	rots := ws.GetVec(n)
	hi := n - 1
	const maxIter = 500
	iter := 0
	for hi >= 0 {
		if hi == 0 {
			evs[cnt] = h.At(0, 0)
			cnt++
			break
		}
		// Locate the start of the active unreduced block.
		lo := hi
		for lo > 0 && !negligible(h, lo) {
			lo--
		}
		if lo == hi {
			// 1×1 block deflated.
			evs[cnt] = h.At(hi, hi)
			cnt++
			hi--
			iter = 0
			continue
		}
		if lo == hi-1 {
			// 2×2 block: solve its characteristic polynomial directly.
			l1, l2, realPair := eig2x2(h.At(lo, lo), h.At(lo, hi), h.At(hi, lo), h.At(hi, hi))
			if !realPair {
				return nil, ErrComplexEigen
			}
			evs[cnt] = l1
			evs[cnt+1] = l2
			cnt += 2
			hi -= 2
			iter = 0
			continue
		}
		if iter++; iter > maxIter {
			return nil, ErrNoConverge
		}
		// Shifted QR step on the active block [lo..hi].
		sigma := wilkinsonShift(h, hi)
		if iter%20 == 0 {
			// Exceptional shift to escape rare symmetric-cycling stalls.
			sigma = h.At(hi, hi) + math.Abs(h.At(hi, hi-1))
		}
		qrShiftStep(h, lo, hi, sigma, blk, rotc, rots)
	}
	sort.Float64s(evs[:cnt])
	return evs[:cnt], nil
}

// negligible reports whether the subdiagonal entry h[i][i-1] is small enough
// to deflate, using the standard relative criterion.
func negligible(h *Matrix, i int) bool {
	s := math.Abs(h.At(i-1, i-1)) + math.Abs(h.At(i, i))
	if s == 0 {
		s = 1
	}
	return math.Abs(h.At(i, i-1)) <= 1e-14*s
}

// eig2x2 returns the eigenvalues of [[a b],[c d]] and whether they are real.
func eig2x2(a, b, c, d float64) (l1, l2 float64, realPair bool) {
	tr := a + d
	det := a*d - b*c
	disc := tr*tr/4 - det
	if disc < 0 {
		// Tolerate a whisker of negativity from roundoff.
		if disc > -1e-12*(1+tr*tr) {
			disc = 0
		} else {
			return 0, 0, false
		}
	}
	s := math.Sqrt(disc)
	return tr/2 + s, tr/2 - s, true
}

// wilkinsonShift picks the eigenvalue of the trailing 2×2 block closest to
// the last diagonal entry — the standard shift for rapid QR convergence.
func wilkinsonShift(h *Matrix, hi int) float64 {
	a, b := h.At(hi-1, hi-1), h.At(hi-1, hi)
	c, d := h.At(hi, hi-1), h.At(hi, hi)
	l1, l2, realPair := eig2x2(a, b, c, d)
	if !realPair {
		return d
	}
	if math.Abs(l1-d) < math.Abs(l2-d) {
		return l1
	}
	return l2
}

// qrShiftStep performs one explicit shifted QR step, h ← RQ + σI, restricted
// to the active block [lo..hi], using Givens rotations that exploit the
// Hessenberg structure. blkbuf (≥ block² long), rotc and rots (≥ block−1)
// are caller-owned scratch.
func qrShiftStep(h *Matrix, lo, hi int, sigma float64, blkbuf, rotc, rots []float64) {
	n := hi - lo + 1
	// Copy active block into blkbuf (row-major, stride n) minus the shift.
	blk := blkbuf[:n*n]
	for i := 0; i < n; i++ {
		hrow := h.RowView(lo + i)
		for j := 0; j < n; j++ {
			blk[i*n+j] = hrow[lo+j]
		}
		blk[i*n+i] -= sigma
	}
	// Givens QR of a Hessenberg block: zero the single subdiagonal entry of
	// each column, recording rotations.
	for k := 0; k < n-1; k++ {
		a, b := blk[k*n+k], blk[(k+1)*n+k]
		r := math.Hypot(a, b)
		if r == 0 {
			rotc[k], rots[k] = 1, 0
			continue
		}
		c, s := a/r, b/r
		rotc[k], rots[k] = c, s
		for j := k; j < n; j++ {
			x, y := blk[k*n+j], blk[(k+1)*n+j]
			blk[k*n+j] = c*x + s*y
			blk[(k+1)*n+j] = -s*x + c*y
		}
	}
	// blk is now R; form RQ by applying the rotations on the right.
	for k := 0; k < n-1; k++ {
		c, s := rotc[k], rots[k]
		for i := 0; i <= min(k+1, n-1); i++ {
			x, y := blk[i*n+k], blk[i*n+k+1]
			blk[i*n+k] = c*x + s*y
			blk[i*n+k+1] = -s*x + c*y
		}
	}
	// Write back with the shift restored.
	for i := 0; i < n; i++ {
		hrow := h.RowView(lo + i)
		for j := 0; j < n; j++ {
			v := blk[i*n+j]
			if i == j {
				v += sigma
			}
			hrow[lo+j] = v
		}
	}
}

// EigenDecompose returns the full real eigendecomposition of m. Eigenvalues
// are computed by the shifted QR algorithm; each eigenvector is recovered by
// inverse iteration around a slightly perturbed eigenvalue. Eigenvalues are
// returned in descending order. It fails with ErrComplexEigen /
// ErrNoConverge / ErrSingular on degenerate inputs.
func (m *Matrix) EigenDecompose() (*Eigen, error) {
	e, err := m.EigenDecomposeWS(NewWorkspace())
	if err != nil {
		return nil, err
	}
	return &Eigen{Values: e.Values, Vectors: e.Vectors}, nil
}

// EigenDecomposeWS is EigenDecompose with every temporary — including the
// returned values and vectors — drawn from ws: zero heap allocations in
// steady state, on success and failure alike (errors are bare sentinels).
// The result is valid until ws's next Reset.
func (m *Matrix) EigenDecomposeWS(ws *Workspace) (Eigen, error) {
	if m.rows != m.cols {
		return Eigen{}, ErrShape
	}
	vals, err := eigenvaluesWS(m, ws)
	if err != nil {
		return Eigen{}, err
	}
	// Descending order: Algorithm A3 aligns factors by dominant eigenvalue.
	// eigenvaluesWS sorts ascending, so reversing the slice is exactly the
	// descending sort the previous implementation produced.
	for i, j := 0, len(vals)-1; i < j; i, j = i+1, j-1 {
		vals[i], vals[j] = vals[j], vals[i]
	}
	n := m.rows
	vecs := ws.Get(n, n)
	scale := m.MaxAbs()
	if scale == 0 {
		scale = 1
	}
	// Scratch shared across all n inverse iterations: the shifted matrix,
	// its reusable factorization, and the two iterate vectors.
	shifted := ws.Get(n, n)
	f := ws.LU(n)
	x := ws.GetVec(n)
	y := ws.GetVec(n)
	for j, lambda := range vals {
		v, err := inverseIteration(m, shifted, f, x, y, lambda, scale)
		if err != nil {
			return Eigen{}, err
		}
		for i := 0; i < n; i++ {
			vecs.data[i*n+j] = v[i]
		}
	}
	return Eigen{Values: vals, Vectors: vecs}, nil
}

// inverseIteration finds a unit eigenvector for the eigenvalue lambda of m by
// repeatedly solving (m − (λ+ε)I)x = b. The perturbation ε keeps the system
// nonsingular; a handful of iterations suffices for well-separated spectra.
// The shifted system is factored once into f and the factorization reused
// for every iterate (the matrix never changes between solves). shifted, f,
// x and y are caller-owned scratch of m's dimension; the returned slice is
// one of x or y.
func inverseIteration(m, shifted *Matrix, f *LU, x, y []float64, lambda, scale float64) ([]float64, error) {
	n := m.rows
	eps := 1e-9 * scale
	for tries := 0; ; tries++ {
		shifted.CopyFrom(m)
		for i := 0; i < n; i++ {
			shifted.data[i*n+i] -= lambda + eps
		}
		if err := f.Refactor(shifted); err == nil {
			break
		} else if tries >= 12 {
			// The shift cannot be made nonsingular within a sane range.
			return nil, err
		}
		// Exactly singular: nudge the perturbation and retry.
		eps *= 10
	}
	// Deterministic start vector with all components populated.
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(n)) * (1 + 0.01*float64(i))
	}
	normalize(x)
	for iter := 0; iter < 50; iter++ {
		f.SolveInto(x, y)
		normalize(y)
		// Converged when the direction stabilizes (up to sign).
		var dot float64
		for i := range y {
			dot += y[i] * x[i]
		}
		x, y = y, x
		if math.Abs(math.Abs(dot)-1) < 1e-12 {
			return x, nil
		}
	}
	return x, nil
}

func normalize(v []float64) {
	var s float64
	for _, x := range v {
		s += x * x
	}
	s = math.Sqrt(s)
	if s == 0 {
		return
	}
	for i := range v {
		v[i] /= s
	}
}

// EigenSym returns the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi rotation method: numerically robust and exactly orthogonal
// eigenvectors, which the A3 spectral step relies on after symmetrizing its
// second-moment matrix. Eigenvalues are returned in descending order.
// m is not checked for symmetry; only its lower triangle is trusted after
// internal symmetrization.
func (m *Matrix) EigenSym() (*Eigen, error) {
	e, err := m.EigenSymWS(NewWorkspace())
	if err != nil {
		return nil, err
	}
	return &Eigen{Values: e.Values, Vectors: e.Vectors}, nil
}

// EigenSymWS is EigenSym with all scratch and results drawn from ws: zero
// heap allocations in steady state. The result is valid until ws's next
// Reset.
func (m *Matrix) EigenSymWS(ws *Workspace) (Eigen, error) {
	if m.rows != m.cols {
		return Eigen{}, ErrShape
	}
	n := m.rows
	a := ws.Get(n, n)
	SymmetrizeTo(a, m)
	v := ws.Get(n, n)
	IdentityTo(v)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := a.OffDiagNorm()
		if off < 1e-13*(1+a.MaxAbs()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.data[p*n+q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := a.data[p*n+p], a.data[q*n+q]
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply the rotation to rows/columns p and q of A.
				for k := 0; k < n; k++ {
					akp, akq := a.data[k*n+p], a.data[k*n+q]
					a.data[k*n+p] = c*akp - s*akq
					a.data[k*n+q] = s*akp + c*akq
				}
				rowP, rowQ := a.RowView(p), a.RowView(q)
				for k := 0; k < n; k++ {
					apk, aqk := rowP[k], rowQ[k]
					rowP[k] = c*apk - s*aqk
					rowQ[k] = s*apk + c*aqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.data[k*n+p], v.data[k*n+q]
					v.data[k*n+p] = c*vkp - s*vkq
					v.data[k*n+q] = s*vkp + c*vkq
				}
			}
		}
	}
	vals := ws.GetVec(n)
	for i := range vals {
		vals[i] = a.data[i*n+i]
	}
	// Sort descending, permuting eigenvector columns alongside. Insertion
	// sort: no allocation, and n ≤ 8 in this domain.
	idx := ws.GetInts(n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && vals[idx[j]] > vals[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	sortedVals := ws.GetVec(n)
	sortedVecs := ws.Get(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for i := 0; i < n; i++ {
			sortedVecs.data[i*n+newCol] = v.data[i*n+oldCol]
		}
	}
	return Eigen{Values: sortedVals, Vectors: sortedVecs}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
