package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// Property tests for the small-k kernels, mirroring the dense-vs-structured
// pattern of core's quadform tests: randomized k ∈ {2, 3} matrices through
// MulTo / InverseTo / TTo must agree with the generic implementations to
// 1e-12 (relative).

// genericMulTo is the non-dispatched reference multiply.
func genericMulTo(dst, a, b *Matrix) {
	for i := 0; i < dst.Rows(); i++ {
		for j := 0; j < dst.Cols(); j++ {
			var s float64
			for k := 0; k < a.Cols(); k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			dst.Set(i, j, s)
		}
	}
}

func maxAbsDiff(a, b *Matrix) float64 {
	var mx float64
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if d := math.Abs(a.At(i, j) - b.At(i, j)); d > mx {
				mx = d
			}
		}
	}
	return mx
}

func TestSmallKMulToMatchesGeneric(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, k := range []int{2, 3} {
		for trial := 0; trial < 200; trial++ {
			a := randomMatrix(r, k)
			b := randomMatrix(r, k)
			got := New(k, k)
			MulTo(got, a, b) // dispatches the unrolled kernel
			want := New(k, k)
			genericMulTo(want, a, b)
			scale := 1 + want.MaxAbs()
			if d := maxAbsDiff(got, want); d > 1e-12*scale {
				t.Fatalf("k=%d trial %d: kernel vs generic multiply differ by %g", k, trial, d)
			}
		}
	}
}

func TestSmallKTToMatchesGeneric(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, k := range []int{2, 3} {
		for trial := 0; trial < 50; trial++ {
			a := randomMatrix(r, k)
			got := New(k, k)
			TTo(got, a)
			for i := 0; i < k; i++ {
				for j := 0; j < k; j++ {
					if got.At(i, j) != a.At(j, i) {
						t.Fatalf("k=%d: transpose kernel wrong at (%d,%d)", k, i, j)
					}
				}
			}
		}
	}
}

func TestSmallKInverseToMatchesGeneric(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for _, k := range []int{2, 3} {
		f := NewLU(k)
		trials := 0
		for trials < 200 {
			a := randomMatrix(r, k)
			// Skip badly conditioned draws: near-singular matrices amplify
			// roundoff past any fixed tolerance in both implementations.
			if d, err := a.Det(); err != nil || math.Abs(d) < 0.05 {
				continue
			}
			trials++
			got := New(k, k)
			if err := InverseTo(got, a, nil); err != nil {
				t.Fatalf("k=%d: kernel inverse failed: %v", k, err)
			}
			// Generic reference: the LU unit-solve path the dispatcher uses
			// for k > 3.
			want := New(k, k)
			if err := f.Refactor(a); err != nil {
				t.Fatalf("k=%d: LU refactor failed: %v", k, err)
			}
			f.InverseTo(want)
			scale := 1 + want.MaxAbs()
			if d := maxAbsDiff(got, want); d > 1e-12*scale {
				t.Fatalf("k=%d trial %d: kernel vs generic inverse differ by %g", k, trials, d)
			}
			// And both must actually invert: A·A⁻¹ ≈ I.
			prod := a.Mul(got)
			if !prod.EqualApprox(Identity(k), 1e-10) {
				t.Fatalf("k=%d: A·A⁻¹ differs from I:\n%v", k, prod)
			}
		}
	}
}

func TestInverseToSingular(t *testing.T) {
	for _, k := range []int{2, 3} {
		a := New(k, k) // all zeros
		dst := New(k, k)
		if err := InverseTo(dst, a, nil); !errors.Is(err, ErrSingular) {
			t.Errorf("k=%d: zero matrix inverse err = %v, want ErrSingular", k, err)
		}
		// Rank-deficient: two identical rows.
		b := New(k, k)
		for j := 0; j < k; j++ {
			b.Set(0, j, float64(j+1))
			b.Set(1, j, float64(j+1))
		}
		if err := InverseTo(dst, b, nil); !errors.Is(err, ErrSingular) {
			t.Errorf("k=%d: rank-deficient inverse err = %v, want ErrSingular", k, err)
		}
	}
}

// TestInverseToAgainstMulIdentity checks the LU-backed generic path at
// sizes above the kernel cutoff.
func TestInverseToGenericSizes(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for _, k := range []int{4, 5, 8} {
		f := NewLU(k)
		for trial := 0; trial < 20; trial++ {
			a := randomMatrix(r, k)
			for i := 0; i < k; i++ {
				a.Add(i, i, 3) // keep well-conditioned
			}
			dst := New(k, k)
			if err := InverseTo(dst, a, f); err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			if !a.Mul(dst).EqualApprox(Identity(k), 1e-10) {
				t.Fatalf("k=%d: A·A⁻¹ not identity", k)
			}
		}
	}
}
