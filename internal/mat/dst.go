// Destination-passing API: every operation writes its result into a
// caller-owned dst matrix, so hot loops can run allocation-free against a
// Workspace. The value-returning methods on Matrix are thin wrappers over
// these.
//
// Aliasing rules (violations are undefined behaviour, not checked):
//
//   - MulTo, MulAddTo, MulVecTo, TTo: dst must not alias either operand.
//   - PlusTo, MinusTo, ScaleTo: dst may alias either operand (element-wise).
//   - SymmetrizeTo: dst may alias the operand (pairs are read before write).
//   - InverseTo: dst must not alias src.
package mat

// MulTo writes the product a·b into dst. dst must have shape
// a.Rows()×b.Cols() and must not alias a or b. Square k×k products with
// k ∈ {2, 3} — the dominant shapes in the A3 spectral step — dispatch to
// unrolled kernels.
func MulTo(dst, a, b *Matrix) {
	if a.cols != b.rows || dst.rows != a.rows || dst.cols != b.cols {
		panic(ErrShape)
	}
	if a.rows == a.cols && a.rows == b.cols {
		switch a.rows {
		case 2:
			mul2(dst.data, a.data, b.data)
			return
		case 3:
			mul3(dst.data, a.data, b.data)
			return
		}
	}
	clear(dst.data)
	mulAddGeneric(dst, a, b)
}

// MulAddTo accumulates the product a·b into dst (dst += a·b) without
// zeroing it first — the fused form that lets A·B·C chains skip one pass
// over dst. Shape and aliasing rules are those of MulTo.
func MulAddTo(dst, a, b *Matrix) {
	if a.cols != b.rows || dst.rows != a.rows || dst.cols != b.cols {
		panic(ErrShape)
	}
	mulAddGeneric(dst, a, b)
}

// mulAddGeneric is the shared i-k-j row-major accumulation loop: the inner
// loop walks both b's row k and dst's row i sequentially (unit stride), and
// zero entries of a skip a whole row pass.
func mulAddGeneric(dst, a, b *Matrix) {
	for i := 0; i < a.rows; i++ {
		ai := a.data[i*a.cols : (i+1)*a.cols]
		di := dst.data[i*dst.cols : (i+1)*dst.cols]
		for k, aik := range ai {
			if aik == 0 {
				continue
			}
			bk := b.data[k*b.cols : (k+1)*b.cols]
			for j, bkj := range bk {
				di[j] += aik * bkj
			}
		}
	}
}

// MulVecTo writes the matrix-vector product a·v into dst, which must have
// length a.Rows() and must not alias v.
func MulVecTo(dst []float64, a *Matrix, v []float64) {
	if a.cols != len(v) || a.rows != len(dst) {
		panic(ErrShape)
	}
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		var s float64
		for j, r := range row {
			s += r * v[j]
		}
		dst[i] = s
	}
}

// TTo writes the transpose of a into dst, which must have shape
// a.Cols()×a.Rows() and must not alias a.
func TTo(dst, a *Matrix) {
	if dst.rows != a.cols || dst.cols != a.rows {
		panic(ErrShape)
	}
	if a.rows == a.cols {
		switch a.rows {
		case 2:
			d, s := dst.data, a.data
			d[0], d[1], d[2], d[3] = s[0], s[2], s[1], s[3]
			return
		case 3:
			d, s := dst.data, a.data
			d[0], d[1], d[2] = s[0], s[3], s[6]
			d[3], d[4], d[5] = s[1], s[4], s[7]
			d[6], d[7], d[8] = s[2], s[5], s[8]
			return
		}
	}
	for i := 0; i < a.rows; i++ {
		ai := a.data[i*a.cols : (i+1)*a.cols]
		for j, v := range ai {
			dst.data[j*dst.cols+i] = v
		}
	}
}

// PlusTo writes a + b into dst. All three must share a shape; dst may alias
// a or b.
func PlusTo(dst, a, b *Matrix) {
	checkSameShape(dst, a, b)
	for i, av := range a.data {
		dst.data[i] = av + b.data[i]
	}
}

// MinusTo writes a − b into dst. All three must share a shape; dst may
// alias a or b.
func MinusTo(dst, a, b *Matrix) {
	checkSameShape(dst, a, b)
	for i, av := range a.data {
		dst.data[i] = av - b.data[i]
	}
}

// ScaleTo writes s·a into dst, which must share a's shape and may alias it.
func ScaleTo(dst, a *Matrix, s float64) {
	if dst.rows != a.rows || dst.cols != a.cols {
		panic(ErrShape)
	}
	for i, av := range a.data {
		dst.data[i] = av * s
	}
}

// SymmetrizeTo writes (a + aᵀ)/2 into dst. a must be square; dst may alias
// a (each (i,j)/(j,i) pair is read before either is written).
func SymmetrizeTo(dst, a *Matrix) {
	if a.rows != a.cols || dst.rows != a.rows || dst.cols != a.cols {
		panic(ErrShape)
	}
	n := a.rows
	for i := 0; i < n; i++ {
		dst.data[i*n+i] = a.data[i*n+i]
		for j := i + 1; j < n; j++ {
			v := 0.5 * (a.data[i*n+j] + a.data[j*n+i])
			dst.data[i*n+j] = v
			dst.data[j*n+i] = v
		}
	}
}

// IdentityTo overwrites the square matrix dst with the identity.
func IdentityTo(dst *Matrix) {
	if dst.rows != dst.cols {
		panic(ErrShape)
	}
	clear(dst.data)
	for i := 0; i < dst.rows; i++ {
		dst.data[i*dst.cols+i] = 1
	}
}

func checkSameShape(dst, a, b *Matrix) {
	if a.rows != b.rows || a.cols != b.cols || dst.rows != a.rows || dst.cols != a.cols {
		panic(ErrShape)
	}
}
