package mat

import (
	"math/rand"
	"testing"
)

// TestWorkspaceReuse pins the workspace contract: the same request sequence
// after Reset returns the same storage (no growth), and requests are zeroed.
func TestWorkspaceReuse(t *testing.T) {
	ws := NewWorkspace()
	m1 := ws.Get(3, 3)
	m1.Set(1, 1, 42)
	v1 := ws.GetVec(5)
	v1[0] = 7
	ws.Reset()
	m2 := ws.Get(3, 3)
	if m2 != m1 {
		t.Error("Get after Reset did not reuse the pooled matrix")
	}
	if m2.At(1, 1) != 0 {
		t.Error("reused matrix not zeroed")
	}
	v2 := ws.GetVec(5)
	if &v2[0] != &v1[0] {
		t.Error("GetVec after Reset did not reuse the pooled slice")
	}
	if v2[0] != 0 {
		t.Error("reused vector not zeroed")
	}
	// Distinct requests within one epoch must hand out distinct storage.
	if ws.Get(3, 3) == m2 {
		t.Error("second Get in the same epoch returned the same matrix")
	}
	// Different shapes draw from different pools.
	r := ws.Get(2, 4)
	if r.Rows() != 2 || r.Cols() != 4 {
		t.Errorf("Get(2,4) returned %d×%d", r.Rows(), r.Cols())
	}
	// LU scratch is persistent per dimension and survives Reset.
	f1 := ws.LU(3)
	ws.Reset()
	if ws.LU(3) != f1 {
		t.Error("LU(3) not reused across Reset")
	}
	if allocs := testing.AllocsPerRun(20, func() {
		ws.Reset()
		ws.Get(3, 3)
		ws.Get(3, 3)
		ws.Get(2, 4)
		ws.GetVec(5)
		ws.GetInts(4)
		ws.LU(3)
	}); allocs != 0 {
		t.Errorf("warmed workspace allocates %.1f times, want 0", allocs)
	}
}

// TestWorkspaceEigenSteadyState asserts the WS eigendecompositions reach
// zero steady-state allocations — the property the A3 spectral step's inner
// loop depends on.
func TestWorkspaceEigenSteadyState(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	m := randomMatrix(r, 4)
	sym := m.Symmetrize()
	for i := 0; i < 4; i++ {
		sym.Add(i, i, 5) // well-separated positive spectrum
	}
	ws := NewWorkspace()
	if _, err := sym.EigenSymWS(ws); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		ws.Reset()
		if _, err := sym.EigenSymWS(ws); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("EigenSymWS allocates %.1f times, want 0", allocs)
	}
	ws2 := NewWorkspace()
	if _, err := sym.EigenDecomposeWS(ws2); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		ws2.Reset()
		if _, err := sym.EigenDecomposeWS(ws2); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("EigenDecomposeWS allocates %.1f times, want 0", allocs)
	}
}
