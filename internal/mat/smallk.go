package mat

import "math"

// Unrolled kernels for the 2×2 and 3×3 shapes that dominate the A3 spectral
// step (response arities 2 and 3). The multiply kernels accumulate each
// entry left to right in k order, which is exactly the summation order of
// the generic i-k-j loop, so they are bit-compatible with it on finite
// inputs; the inverse kernels use the adjugate form, which agrees with the
// elimination-based generic path to roundoff (property-tested to 1e-12).

func mul2(dst, a, b []float64) {
	b00, b01 := b[0], b[1]
	b10, b11 := b[2], b[3]
	a0, a1 := a[0], a[1]
	dst[0] = a0*b00 + a1*b10
	dst[1] = a0*b01 + a1*b11
	a0, a1 = a[2], a[3]
	dst[2] = a0*b00 + a1*b10
	dst[3] = a0*b01 + a1*b11
}

func mul3(dst, a, b []float64) {
	b00, b01, b02 := b[0], b[1], b[2]
	b10, b11, b12 := b[3], b[4], b[5]
	b20, b21, b22 := b[6], b[7], b[8]
	for i := 0; i < 3; i++ {
		a0, a1, a2 := a[3*i], a[3*i+1], a[3*i+2]
		dst[3*i] = a0*b00 + a1*b10 + a2*b20
		dst[3*i+1] = a0*b01 + a1*b11 + a2*b21
		dst[3*i+2] = a0*b02 + a1*b12 + a2*b22
	}
}

// inv2 writes the inverse of the 2×2 matrix a into dst via the adjugate.
// It returns ErrSingular when |det| falls below the same kind of tolerance
// the elimination path uses (scaled by the matrix magnitude, so the check
// is invariant under uniform scaling).
func inv2(dst, a []float64) error {
	a00, a01, a10, a11 := a[0], a[1], a[2], a[3]
	det := a00*a11 - a01*a10
	s := math.Max(math.Max(math.Abs(a00), math.Abs(a01)),
		math.Max(math.Abs(a10), math.Abs(a11)))
	// !(>) rather than (<=) so NaN inputs are reported as singular.
	if !(math.Abs(det) > 1e-13*s*s) {
		return ErrSingular
	}
	inv := 1 / det
	dst[0] = a11 * inv
	dst[1] = -a01 * inv
	dst[2] = -a10 * inv
	dst[3] = a00 * inv
	return nil
}

// inv3 writes the inverse of the 3×3 matrix a into dst via the adjugate.
func inv3(dst, a []float64) error {
	a00, a01, a02 := a[0], a[1], a[2]
	a10, a11, a12 := a[3], a[4], a[5]
	a20, a21, a22 := a[6], a[7], a[8]
	c00 := a11*a22 - a12*a21
	c01 := a12*a20 - a10*a22
	c02 := a10*a21 - a11*a20
	det := a00*c00 + a01*c01 + a02*c02
	var s float64
	for _, v := range a {
		if av := math.Abs(v); av > s {
			s = av
		}
	}
	if !(math.Abs(det) > 1e-13*s*s*s) {
		return ErrSingular
	}
	inv := 1 / det
	dst[0] = c00 * inv
	dst[1] = (a02*a21 - a01*a22) * inv
	dst[2] = (a01*a12 - a02*a11) * inv
	dst[3] = c01 * inv
	dst[4] = (a00*a22 - a02*a20) * inv
	dst[5] = (a02*a10 - a00*a12) * inv
	dst[6] = c02 * inv
	dst[7] = (a01*a20 - a00*a21) * inv
	dst[8] = (a00*a11 - a01*a10) * inv
	return nil
}
