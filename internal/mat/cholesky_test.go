package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestCholeskyKnown(t *testing.T) {
	// Classic example: [[4,12,-16],[12,37,-43],[-16,-43,98]] = LLᵀ with
	// L = [[2,0,0],[6,1,0],[-8,5,3]].
	a := FromRows([][]float64{{4, 12, -16}, {12, 37, -43}, {-16, -43, 98}})
	l, err := a.Cholesky()
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{2, 0, 0}, {6, 1, 0}, {-8, 5, 3}})
	if !l.EqualApprox(want, 1e-10) {
		t.Errorf("L =\n%v\nwant\n%v", l, want)
	}
}

func TestCholeskyRejectsNonPSD(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, −1
	if _, err := a.Cholesky(); !errors.Is(err, ErrNotPSD) {
		t.Errorf("err = %v, want ErrNotPSD", err)
	}
	if _, err := New(2, 3).Cholesky(); !errors.Is(err, ErrShape) {
		t.Errorf("non-square err = %v", err)
	}
}

func TestCholeskyReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(6)
		g := randomMatrix(rng, n)
		a := g.Mul(g.T())
		for i := 0; i < n; i++ {
			a.Add(i, i, 0.5)
		}
		l, err := a.Cholesky()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !l.Mul(l.T()).EqualApprox(a, 1e-9) {
			t.Errorf("trial %d: LLᵀ ≠ A", trial)
		}
		// Strictly lower triangular above the diagonal.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Errorf("trial %d: L(%d,%d) = %v", trial, i, j, l.At(i, j))
				}
			}
		}
	}
}

func TestSolveCholeskyMatchesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(5)
		g := randomMatrix(rng, n)
		a := g.Mul(g.T())
		for i := 0; i < n; i++ {
			a.Add(i, i, 1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xc, err := a.SolveCholesky(b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		xl, err := a.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xc {
			if math.Abs(xc[i]-xl[i]) > 1e-8 {
				t.Errorf("trial %d: Cholesky %v vs LU %v at %d", trial, xc[i], xl[i], i)
			}
		}
	}
}

func TestSolveCholeskyShape(t *testing.T) {
	a := Identity(3)
	if _, err := a.SolveCholesky([]float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Errorf("err = %v", err)
	}
}

func TestIsPSD(t *testing.T) {
	if !Identity(3).IsPSD() {
		t.Error("identity not PSD")
	}
	if FromRows([][]float64{{1, 2}, {2, 1}}).IsPSD() {
		t.Error("indefinite matrix reported PSD")
	}
	if New(2, 3).IsPSD() {
		t.Error("non-square reported PSD")
	}
}

func TestConditionEstimate(t *testing.T) {
	// Diagonal matrix: condition = max/min.
	d := Diagonal([]float64{10, 1})
	if got := d.ConditionEstimate(); math.Abs(got-10) > 1e-8 {
		t.Errorf("condition = %v, want 10", got)
	}
	if got := Identity(4).ConditionEstimate(); math.Abs(got-1) > 1e-10 {
		t.Errorf("identity condition = %v", got)
	}
	sing := FromRows([][]float64{{1, 1}, {1, 1}})
	if !math.IsInf(sing.ConditionEstimate(), 1) {
		t.Error("singular matrix condition not Inf")
	}
}
