package mat

import "math"

// Inverse returns m⁻¹ computed by Gauss–Jordan elimination with partial
// pivoting. It returns ErrSingular when a pivot falls below tolerance.
// (The paper's complexity remark mentions Williams' algorithm as an
// asymptotic alternative; at crowd scale Gauss–Jordan is the right tool —
// see DESIGN.md, substitution 3.)
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, ErrShape
	}
	n := m.rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivot: the largest |value| in this column at/below the
		// diagonal keeps the elimination numerically stable.
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-13 {
			return nil, ErrSingular
		}
		a.SwapRows(col, pivot)
		inv.SwapRows(col, pivot)
		p := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/p)
			inv.Set(col, j, inv.At(col, j)/p)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Add(r, j, -f*a.At(col, j))
				inv.Add(r, j, -f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

// Solve returns x such that m·x = b, using LU factorization with partial
// pivoting. It returns ErrSingular for rank-deficient m.
func (m *Matrix) Solve(b []float64) ([]float64, error) {
	if m.rows != m.cols {
		return nil, ErrShape
	}
	if len(b) != m.rows {
		return nil, ErrShape
	}
	n := m.rows
	lu := m.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-13 {
			return nil, ErrSingular
		}
		lu.SwapRows(col, pivot)
		perm[col], perm[pivot] = perm[pivot], perm[col]
		p := lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) / p
			lu.Set(r, col, f)
			for j := col + 1; j < n; j++ {
				lu.Add(r, j, -f*lu.At(col, j))
			}
		}
	}
	// Forward substitution on the permuted right-hand side.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = b[perm[i]]
		for j := 0; j < i; j++ {
			y[i] -= lu.At(i, j) * y[j]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		x[i] = y[i]
		for j := i + 1; j < n; j++ {
			x[i] -= lu.At(i, j) * x[j]
		}
		x[i] /= lu.At(i, i)
	}
	return x, nil
}

// Det returns the determinant of m via LU factorization.
func (m *Matrix) Det() (float64, error) {
	if m.rows != m.cols {
		return 0, ErrShape
	}
	n := m.rows
	lu := m.Clone()
	det := 1.0
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best == 0 {
			return 0, nil
		}
		if pivot != col {
			lu.SwapRows(col, pivot)
			det = -det
		}
		p := lu.At(col, col)
		det *= p
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) / p
			for j := col + 1; j < n; j++ {
				lu.Add(r, j, -f*lu.At(col, j))
			}
		}
	}
	return det, nil
}
