package mat

import "math"

// Inverse returns m⁻¹. It is the value-returning wrapper over InverseTo:
// arities 2 and 3 hit the unrolled adjugate kernels, larger matrices go
// through the reusable LU factorization. It returns ErrSingular when the
// matrix is singular to working precision.
// (The paper's complexity remark mentions Williams' algorithm as an
// asymptotic alternative; at crowd scale direct factorization is the right
// tool — see DESIGN.md, substitution 3.)
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, ErrShape
	}
	dst := New(m.rows, m.cols)
	var f *LU
	if m.rows > 3 {
		f = NewLU(m.rows)
	}
	if err := InverseTo(dst, m, f); err != nil {
		return nil, err
	}
	return dst, nil
}

// InverseTo writes src⁻¹ into dst, which must share src's (square) shape
// and must not alias it. Arities 2 and 3 — the dominant response arities —
// dispatch to unrolled adjugate kernels; larger matrices refactor the
// caller-owned LU scratch f (from NewLU or Workspace.LU) and solve the n
// unit systems, so repeated inversions allocate nothing. f may be nil when
// src is at most 3×3. It returns ErrSingular (without allocating) when src
// is singular to working precision.
func InverseTo(dst, src *Matrix, f *LU) error {
	n := src.rows
	if src.cols != n || dst.rows != n || dst.cols != n {
		return ErrShape
	}
	switch n {
	case 1:
		v := src.data[0]
		if !(math.Abs(v) > 1e-13) {
			return ErrSingular
		}
		dst.data[0] = 1 / v
		return nil
	case 2:
		return inv2(dst.data, src.data)
	case 3:
		return inv3(dst.data, src.data)
	}
	if err := f.Refactor(src); err != nil {
		return err
	}
	f.InverseTo(dst)
	return nil
}

// LU is a reusable LU factorization with partial pivoting: factor once,
// solve many right-hand sides in O(n²) each. Iterative callers (inverse
// iteration in the A3 spectral path) previously refactored the same matrix
// on every solve; LU removes that O(n³) per-solve cost and its clones.
type LU struct {
	lu   *Matrix
	perm []int
	y    []float64 // forward-substitution scratch
	e, x []float64 // unit-vector and solution scratch for InverseTo
}

// NewLU returns LU scratch for n×n systems, ready for Refactor. Workspaces
// hand these out per dimension (Workspace.LU) so steady-state callers never
// allocate one.
func NewLU(n int) *LU {
	return &LU{
		lu:   New(n, n),
		perm: make([]int, n),
		y:    make([]float64, n),
		e:    make([]float64, n),
		x:    make([]float64, n),
	}
}

// LUFactor returns the LU factorization of m with partial pivoting.
// It returns ErrSingular when a pivot falls below tolerance.
func (m *Matrix) LUFactor() (*LU, error) {
	if m.rows != m.cols {
		return nil, ErrShape
	}
	f := NewLU(m.rows)
	f.lu.CopyFrom(m)
	return f, f.refactor()
}

// Refactor recomputes the factorization from src in place, reusing the
// existing storage. Shapes must match the original factorization.
func (f *LU) Refactor(src *Matrix) error {
	f.lu.CopyFrom(src)
	return f.refactor()
}

func (f *LU) refactor() error {
	lu := f.lu
	n := lu.rows
	for i := range f.perm {
		f.perm[i] = i
	}
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(lu.data[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.data[r*n+col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-13 {
			return ErrSingular
		}
		lu.SwapRows(col, pivot)
		f.perm[col], f.perm[pivot] = f.perm[pivot], f.perm[col]
		rowCol := lu.RowView(col)
		p := rowCol[col]
		for r := col + 1; r < n; r++ {
			rowR := lu.RowView(r)
			fr := rowR[col] / p
			rowR[col] = fr
			for j := col + 1; j < n; j++ {
				rowR[j] -= fr * rowCol[j]
			}
		}
	}
	return nil
}

// SolveInto writes the solution of (LU)·x = b into x, which must not alias
// b. Both must have the factored dimension.
func (f *LU) SolveInto(b, x []float64) {
	lu, n := f.lu, f.lu.rows
	if len(b) != n || len(x) != n {
		panic(ErrShape)
	}
	// Forward substitution on the permuted right-hand side.
	y := f.y
	for i := 0; i < n; i++ {
		row := lu.RowView(i)
		s := b[f.perm[i]]
		for j := 0; j < i; j++ {
			s -= row[j] * y[j]
		}
		y[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := lu.RowView(i)
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
}

// Solve returns the solution of (LU)·x = b.
func (f *LU) Solve(b []float64) []float64 {
	x := make([]float64, len(b))
	f.SolveInto(b, x)
	return x
}

// InverseTo writes the inverse of the factored matrix into dst by solving
// the n unit systems — O(n³) total, allocation-free (the unit vector and
// column scratch live in the factorization).
func (f *LU) InverseTo(dst *Matrix) {
	n := f.lu.rows
	if dst.rows != n || dst.cols != n {
		panic(ErrShape)
	}
	for j := 0; j < n; j++ {
		f.e[j] = 1
		f.SolveInto(f.e, f.x)
		f.e[j] = 0
		for i := 0; i < n; i++ {
			dst.data[i*n+j] = f.x[i]
		}
	}
}

// Solve returns x such that m·x = b, using LU factorization with partial
// pivoting. It returns ErrSingular for rank-deficient m. One-shot callers
// use this; iterative callers factor once with LUFactor and reuse it.
func (m *Matrix) Solve(b []float64) ([]float64, error) {
	if m.rows != m.cols {
		return nil, ErrShape
	}
	if len(b) != m.rows {
		return nil, ErrShape
	}
	f, err := m.LUFactor()
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Det returns the determinant of m via LU factorization.
func (m *Matrix) Det() (float64, error) {
	if m.rows != m.cols {
		return 0, ErrShape
	}
	n := m.rows
	lu := m.Clone()
	det := 1.0
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best == 0 {
			return 0, nil
		}
		if pivot != col {
			lu.SwapRows(col, pivot)
			det = -det
		}
		p := lu.At(col, col)
		det *= p
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) / p
			for j := col + 1; j < n; j++ {
				lu.Add(r, j, -f*lu.At(col, j))
			}
		}
	}
	return det, nil
}
