package mat

import "math"

// Inverse returns m⁻¹ computed by Gauss–Jordan elimination with partial
// pivoting. It returns ErrSingular when a pivot falls below tolerance.
// (The paper's complexity remark mentions Williams' algorithm as an
// asymptotic alternative; at crowd scale Gauss–Jordan is the right tool —
// see DESIGN.md, substitution 3.)
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, ErrShape
	}
	n := m.rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivot: the largest |value| in this column at/below the
		// diagonal keeps the elimination numerically stable.
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-13 {
			return nil, ErrSingular
		}
		a.SwapRows(col, pivot)
		inv.SwapRows(col, pivot)
		p := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/p)
			inv.Set(col, j, inv.At(col, j)/p)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Add(r, j, -f*a.At(col, j))
				inv.Add(r, j, -f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

// LU is a reusable LU factorization with partial pivoting: factor once,
// solve many right-hand sides in O(n²) each. Iterative callers (inverse
// iteration in the A3 spectral path) previously refactored the same matrix
// on every solve; LU removes that O(n³) per-solve cost and its clones.
type LU struct {
	lu   *Matrix
	perm []int
	y    []float64 // forward-substitution scratch
}

// LUFactor returns the LU factorization of m with partial pivoting.
// It returns ErrSingular when a pivot falls below tolerance.
func (m *Matrix) LUFactor() (*LU, error) {
	if m.rows != m.cols {
		return nil, ErrShape
	}
	n := m.rows
	f := &LU{lu: m.Clone(), perm: make([]int, n), y: make([]float64, n)}
	return f, f.refactor()
}

// Refactor recomputes the factorization from src in place, reusing the
// existing storage. Shapes must match the original factorization.
func (f *LU) Refactor(src *Matrix) error {
	f.lu.CopyFrom(src)
	return f.refactor()
}

func (f *LU) refactor() error {
	lu := f.lu
	n := lu.rows
	for i := range f.perm {
		f.perm[i] = i
	}
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-13 {
			return ErrSingular
		}
		lu.SwapRows(col, pivot)
		f.perm[col], f.perm[pivot] = f.perm[pivot], f.perm[col]
		p := lu.At(col, col)
		for r := col + 1; r < n; r++ {
			fr := lu.At(r, col) / p
			lu.Set(r, col, fr)
			for j := col + 1; j < n; j++ {
				lu.Add(r, j, -fr*lu.At(col, j))
			}
		}
	}
	return nil
}

// SolveInto writes the solution of (LU)·x = b into x, which must not alias
// b. Both must have the factored dimension.
func (f *LU) SolveInto(b, x []float64) {
	lu, n := f.lu, f.lu.rows
	if len(b) != n || len(x) != n {
		panic(ErrShape)
	}
	// Forward substitution on the permuted right-hand side.
	y := f.y
	for i := 0; i < n; i++ {
		y[i] = b[f.perm[i]]
		for j := 0; j < i; j++ {
			y[i] -= lu.At(i, j) * y[j]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		x[i] = y[i]
		for j := i + 1; j < n; j++ {
			x[i] -= lu.At(i, j) * x[j]
		}
		x[i] /= lu.At(i, i)
	}
}

// Solve returns the solution of (LU)·x = b.
func (f *LU) Solve(b []float64) []float64 {
	x := make([]float64, len(b))
	f.SolveInto(b, x)
	return x
}

// Solve returns x such that m·x = b, using LU factorization with partial
// pivoting. It returns ErrSingular for rank-deficient m. One-shot callers
// use this; iterative callers factor once with LUFactor and reuse it.
func (m *Matrix) Solve(b []float64) ([]float64, error) {
	if m.rows != m.cols {
		return nil, ErrShape
	}
	if len(b) != m.rows {
		return nil, ErrShape
	}
	f, err := m.LUFactor()
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Det returns the determinant of m via LU factorization.
func (m *Matrix) Det() (float64, error) {
	if m.rows != m.cols {
		return 0, ErrShape
	}
	n := m.rows
	lu := m.Clone()
	det := 1.0
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best == 0 {
			return 0, nil
		}
		if pivot != col {
			lu.SwapRows(col, pivot)
			det = -det
		}
		p := lu.At(col, col)
		det *= p
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) / p
			for j := col + 1; j < n; j++ {
				lu.Add(r, j, -f*lu.At(col, j))
			}
		}
	}
	return det, nil
}
