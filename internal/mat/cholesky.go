package mat

import "math"

// ErrNotPSD is returned when a Cholesky factorization meets a non-positive
// pivot: the matrix is not positive definite to working precision.
var ErrNotPSD = &notPSDError{}

type notPSDError struct{}

func (*notPSDError) Error() string { return "mat: matrix is not positive definite" }

// Cholesky returns the lower-triangular L with m = L·Lᵀ. It requires a
// symmetric positive-definite input (only the lower triangle is read).
// Algorithm A2's covariance matrices are PSD in expectation; callers use
// Cholesky both to validate estimated covariances and to solve the
// weight system without forming an inverse.
func (m *Matrix) Cholesky() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, ErrShape
	}
	n := m.rows
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := m.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrNotPSD
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves m·x = b for symmetric positive-definite m via its
// Cholesky factorization — twice as fast and more stable than LU for PSD
// systems such as Lemma 5's weight equations.
func (m *Matrix) SolveCholesky(b []float64) ([]float64, error) {
	if len(b) != m.rows {
		return nil, ErrShape
	}
	l, err := m.Cholesky()
	if err != nil {
		return nil, err
	}
	n := m.rows
	// Forward: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = b[i]
		for j := 0; j < i; j++ {
			y[i] -= l.At(i, j) * y[j]
		}
		y[i] /= l.At(i, i)
	}
	// Backward: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		x[i] = y[i]
		for j := i + 1; j < n; j++ {
			x[i] -= l.At(j, i) * x[j]
		}
		x[i] /= l.At(i, i)
	}
	return x, nil
}

// IsPSD reports whether m is symmetric positive definite to working
// precision (via an attempted Cholesky factorization of its symmetrized
// form).
func (m *Matrix) IsPSD() bool {
	if m.rows != m.cols {
		return false
	}
	_, err := m.Symmetrize().Cholesky()
	return err == nil
}

// ConditionEstimate returns the 2-norm condition number estimate
// λmax/λmin from the symmetric eigendecomposition of mᵀm's square root —
// exact for symmetric m, an estimate otherwise. It returns +Inf for
// singular matrices.
func (m *Matrix) ConditionEstimate() float64 {
	if m.rows != m.cols {
		return math.Inf(1)
	}
	// Singular values of m are the square roots of eigenvalues of mᵀm,
	// which is symmetric PSD: the Jacobi path is exact.
	e, err := m.T().Mul(m).EigenSym()
	if err != nil {
		return math.Inf(1)
	}
	max := e.Values[0]
	min := e.Values[len(e.Values)-1]
	if min <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(max / min)
}
