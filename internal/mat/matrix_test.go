package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func randomMatrix(rng *rand.Rand, n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func TestNewZeroInitialized(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %d×%d, want 3×4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 2}, {2, -3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("shape %d×%d, want 3×2", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %v, want 6", m.At(2, 1))
	}
}

func TestFromRowsPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestIdentityAndDiagonal(t *testing.T) {
	id := Identity(3)
	d := Diagonal([]float64{1, 1, 1})
	if !id.EqualApprox(d, 0) {
		t.Error("Identity(3) != Diagonal([1,1,1])")
	}
}

func TestSetAddAt(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2.5)
	if got := m.At(0, 1); got != 7.5 {
		t.Errorf("got %v, want 7.5", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range At did not panic")
		}
	}()
	m.At(2, 0)
}

func TestCloneIsDeep(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestRowColCopies(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(1)
	r[0] = 99
	if m.At(1, 0) != 3 {
		t.Error("Row returned a view, want copy")
	}
	c := m.Col(0)
	if c[0] != 1 || c[1] != 3 {
		t.Errorf("Col(0) = %v, want [1 3]", c)
	}
}

func TestSwapRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.SwapRows(0, 1)
	if m.At(0, 0) != 3 || m.At(1, 1) != 2 {
		t.Errorf("after swap: %v", m)
	}
	m.SwapRows(1, 1) // no-op must not corrupt
	if m.At(1, 0) != 1 {
		t.Error("self-swap corrupted matrix")
	}
}

func TestArithmetic(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	sum := a.Plus(b)
	if sum.At(1, 1) != 12 {
		t.Errorf("Plus: got %v", sum.At(1, 1))
	}
	diff := b.Minus(a)
	if diff.At(0, 0) != 4 {
		t.Errorf("Minus: got %v", diff.At(0, 0))
	}
	sc := a.Scale(2)
	if sc.At(1, 0) != 6 {
		t.Errorf("Scale: got %v", sc.At(1, 0))
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	p := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !p.EqualApprox(want, 1e-12) {
		t.Errorf("Mul:\n%v\nwant:\n%v", p, want)
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	got := a.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", got)
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("T shape %d×%d", at.Rows(), at.Cols())
	}
	if at.At(2, 1) != 6 {
		t.Errorf("T(2,1) = %v, want 6", at.At(2, 1))
	}
}

func TestSymmetrize(t *testing.T) {
	a := FromRows([][]float64{{1, 4}, {2, 3}})
	s := a.Symmetrize()
	if s.At(0, 1) != 3 || s.At(1, 0) != 3 {
		t.Errorf("Symmetrize off-diagonal = %v, %v, want 3, 3", s.At(0, 1), s.At(1, 0))
	}
}

func TestNorms(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, -4}})
	if got := a.FrobeniusNorm(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("FrobeniusNorm = %v, want 5", got)
	}
	if got := a.MaxAbs(); got != 4 {
		t.Errorf("MaxAbs = %v, want 4", got)
	}
	if got := a.OffDiagNorm(); got != 0 {
		t.Errorf("OffDiagNorm = %v, want 0", got)
	}
}

func TestIsFinite(t *testing.T) {
	a := New(1, 2)
	if !a.IsFinite() {
		t.Error("zero matrix should be finite")
	}
	a.Set(0, 1, math.NaN())
	if a.IsFinite() {
		t.Error("NaN matrix reported finite")
	}
	a.Set(0, 1, math.Inf(1))
	if a.IsFinite() {
		t.Error("Inf matrix reported finite")
	}
}

func TestInverse2x2(t *testing.T) {
	a := FromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{0.6, -0.7}, {-0.2, 0.4}})
	if !inv.EqualApprox(want, 1e-12) {
		t.Errorf("Inverse:\n%v\nwant:\n%v", inv, want)
	}
}

func TestInverseSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := a.Inverse(); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestInverseNonSquare(t *testing.T) {
	a := New(2, 3)
	if _, err := a.Inverse(); err != ErrShape {
		t.Errorf("err = %v, want ErrShape", err)
	}
}

// Property: A·A⁻¹ = I for random well-conditioned matrices.
func TestInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(6)
		a := randomMatrix(rng, n)
		// Diagonal dominance guarantees invertibility.
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)+2)
		}
		inv, err := a.Inverse()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !a.Mul(inv).EqualApprox(Identity(n), 1e-9) {
			t.Errorf("trial %d: A·A⁻¹ ≠ I", trial)
		}
		if !inv.Mul(a).EqualApprox(Identity(n), 1e-9) {
			t.Errorf("trial %d: A⁻¹·A ≠ I", trial)
		}
	}
}

// Property: (AB)ᵀ = BᵀAᵀ, checked with testing/quick over 3×3 inputs.
func TestTransposeProductProperty(t *testing.T) {
	f := func(a0, a1, a2, b0, b1, b2 [3]float64) bool {
		a := FromRows([][]float64{a0[:], a1[:], a2[:]})
		b := FromRows([][]float64{b0[:], b1[:], b2[:]})
		if !a.IsFinite() || !b.IsFinite() {
			return true
		}
		left := a.Mul(b).T()
		right := b.T().Mul(a.T())
		tol := 1e-9 * (1 + left.MaxAbs())
		return left.EqualApprox(right, tol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSolve(t *testing.T) {
	a := FromRows([][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}})
	x, err := a.Solve([]float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-10) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {1, 1}})
	if _, err := a.Solve([]float64{1, 2}); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveBadShapes(t *testing.T) {
	if _, err := New(2, 3).Solve([]float64{1, 2}); err != ErrShape {
		t.Errorf("non-square: err = %v, want ErrShape", err)
	}
	if _, err := New(2, 2).Solve([]float64{1}); err != ErrShape {
		t.Errorf("bad rhs: err = %v, want ErrShape", err)
	}
}

// Property: Solve(A, b) satisfies A·x ≈ b.
func TestSolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(6)
		a := randomMatrix(rng, n)
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)+2)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := a.Solve(b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ax := a.MulVec(x)
		for i := range b {
			if !almostEqual(ax[i], b[i], 1e-9) {
				t.Errorf("trial %d: residual %v at %d", trial, ax[i]-b[i], i)
			}
		}
	}
}

func TestDet(t *testing.T) {
	a := FromRows([][]float64{{4, 7}, {2, 6}})
	d, err := a.Det()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 10, 1e-12) {
		t.Errorf("Det = %v, want 10", d)
	}
	sing := FromRows([][]float64{{1, 2}, {2, 4}})
	d, err = sing.Det()
	if err != nil || !almostEqual(d, 0, 1e-12) {
		t.Errorf("singular Det = %v, %v, want 0, nil", d, err)
	}
}

func TestQRReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(5)
		a := randomMatrix(rng, n)
		q, r := a.QR()
		// Q orthogonal.
		if !q.T().Mul(q).EqualApprox(Identity(n), 1e-10) {
			t.Errorf("trial %d: QᵀQ ≠ I", trial)
		}
		// R upper triangular.
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				if math.Abs(r.At(i, j)) > 1e-10 {
					t.Errorf("trial %d: R(%d,%d) = %v not zero", trial, i, j, r.At(i, j))
				}
			}
		}
		if !q.Mul(r).EqualApprox(a, 1e-10) {
			t.Errorf("trial %d: QR ≠ A", trial)
		}
	}
}

func TestHessenbergStructureAndSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomMatrix(rng, 5)
	h := a.Hessenberg()
	for i := 2; i < 5; i++ {
		for j := 0; j < i-1; j++ {
			if math.Abs(h.At(i, j)) > 1e-10 {
				t.Errorf("H(%d,%d) = %v, want 0", i, j, h.At(i, j))
			}
		}
	}
	// Similarity transform preserves the trace.
	var trA, trH float64
	for i := 0; i < 5; i++ {
		trA += a.At(i, i)
		trH += h.At(i, i)
	}
	if !almostEqual(trA, trH, 1e-9) {
		t.Errorf("trace changed: %v vs %v", trA, trH)
	}
}

func TestEigenvaluesDiagonal(t *testing.T) {
	a := Diagonal([]float64{3, 1, 2})
	vals, err := a.Eigenvalues()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if !almostEqual(vals[i], want[i], 1e-10) {
			t.Errorf("vals = %v, want %v", vals, want)
		}
	}
}

func TestEigenvaluesKnown(t *testing.T) {
	// [[2 1],[1 2]] has eigenvalues 1 and 3.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, err := a.Eigenvalues()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(vals[0], 1, 1e-10) || !almostEqual(vals[1], 3, 1e-10) {
		t.Errorf("vals = %v, want [1 3]", vals)
	}
}

func TestEigenvaluesComplexPairRejected(t *testing.T) {
	// Rotation matrix: eigenvalues e^{±iθ}, strictly complex.
	a := FromRows([][]float64{{0, -1}, {1, 0}})
	if _, err := a.Eigenvalues(); err != ErrComplexEigen {
		t.Errorf("err = %v, want ErrComplexEigen", err)
	}
}

// Property: eigenvalues of M·D·M⁻¹ equal the diagonal of D.
func TestEigenvaluesSimilarityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(4)
		d := make([]float64, n)
		for i := range d {
			d[i] = float64(i+1) + rng.Float64()*0.5 // distinct, well separated
		}
		m := randomMatrix(rng, n)
		for i := 0; i < n; i++ {
			m.Add(i, i, float64(n)+2)
		}
		minv, err := m.Inverse()
		if err != nil {
			t.Fatal(err)
		}
		a := m.Mul(Diagonal(d)).Mul(minv)
		vals, err := a.Eigenvalues()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range d {
			if !almostEqual(vals[i], d[i], 1e-6) {
				t.Errorf("trial %d: vals = %v, want %v", trial, vals, d)
				break
			}
		}
	}
}

func TestEigenDecomposeRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(4)
		a := randomMatrix(rng, n)
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(2*n)) // dominance keeps spectrum real & separated
		}
		// Force real spectrum by symmetrizing half of the trials; the other
		// half exercises the general path with diagonalizable matrices.
		if trial%2 == 0 {
			a = a.Symmetrize()
		} else {
			d := make([]float64, n)
			for i := range d {
				d[i] = float64(i + 1)
			}
			m := randomMatrix(rng, n)
			for i := 0; i < n; i++ {
				m.Add(i, i, float64(n)+2)
			}
			minv, _ := m.Inverse()
			a = m.Mul(Diagonal(d)).Mul(minv)
		}
		e, err := a.EigenDecompose()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Verify A·v = λ·v for every pair.
		for j := 0; j < n; j++ {
			v := e.Vectors.Col(j)
			av := a.MulVec(v)
			for i := range v {
				if !almostEqual(av[i], e.Values[j]*v[i], 1e-6*(1+a.MaxAbs())) {
					t.Errorf("trial %d: column %d not an eigenvector (res %v)", trial, j, av[i]-e.Values[j]*v[i])
					break
				}
			}
		}
		// Descending order.
		for j := 1; j < n; j++ {
			if e.Values[j] > e.Values[j-1]+1e-9 {
				t.Errorf("trial %d: eigenvalues not descending: %v", trial, e.Values)
			}
		}
	}
}

func TestEigenSymKnown(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	e, err := a.EigenSym()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e.Values[0], 3, 1e-10) || !almostEqual(e.Values[1], 1, 1e-10) {
		t.Errorf("values = %v, want [3 1]", e.Values)
	}
	// Eigenvector for λ=3 is (1,1)/√2 up to sign.
	v := e.Vectors.Col(0)
	if !almostEqual(math.Abs(v[0]), 1/math.Sqrt2, 1e-10) || !almostEqual(v[0], v[1], 1e-10) {
		t.Errorf("leading eigenvector = %v", v)
	}
}

// Property: EigenSym returns an orthogonal V with A = V·Λ·Vᵀ.
func TestEigenSymProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(5)
		a := randomMatrix(rng, n).Symmetrize()
		e, err := a.EigenSym()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		v := e.Vectors
		if !v.T().Mul(v).EqualApprox(Identity(n), 1e-9) {
			t.Errorf("trial %d: VᵀV ≠ I", trial)
		}
		rec := v.Mul(Diagonal(e.Values)).Mul(v.T())
		if !rec.EqualApprox(a, 1e-8) {
			t.Errorf("trial %d: VΛVᵀ ≠ A", trial)
		}
	}
}

func TestEigenSymTraceProperty(t *testing.T) {
	f := func(a0, a1, a2 [3]float64) bool {
		a := FromRows([][]float64{a0[:], a1[:], a2[:]}).Symmetrize()
		if !a.IsFinite() || a.MaxAbs() > 1e100 {
			return true
		}
		e, err := a.EigenSym()
		if err != nil {
			return false
		}
		var tr, sum float64
		for i := 0; i < 3; i++ {
			tr += a.At(i, i)
			sum += e.Values[i]
		}
		return almostEqual(tr, sum, 1e-8*(1+math.Abs(tr)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	s := FromRows([][]float64{{1, 2}}).String()
	if s == "" {
		t.Error("String returned empty")
	}
}
