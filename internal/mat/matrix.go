// Package mat implements the dense linear-algebra substrate used by the
// crowd-assessment algorithms: basic matrix arithmetic, Gauss–Jordan
// inversion, LU solves, and real eigendecompositions (symmetric Jacobi and
// shifted-QR for the mildly non-symmetric matrices produced by Algorithm A3's
// spectral step).
//
// The package is self-contained (stdlib only) because the reproduction runs
// offline. Matrices are small in this domain (k ≤ 8 response classes, l ≤ a
// few hundred triples), so the implementations favour robustness and clarity
// over blocking or vectorization.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	data       []float64
}

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("mat: incompatible matrix shapes")

// ErrSingular is returned when a matrix is singular to working precision.
var ErrSingular = errors.New("mat: singular matrix")

// New returns a zero-initialized rows×cols matrix.
// It panics if either dimension is not positive.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %d×%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
// It panics on ragged or empty input.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: FromRows requires non-empty input")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic("mat: FromRows requires equal-length rows")
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diagonal returns a square matrix with d on the diagonal.
func Diagonal(d []float64) *Matrix {
	m := New(len(d), len(d))
	for i, v := range d {
		m.Set(i, i, v)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add increments the element at row i, column j by v.
func (m *Matrix) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range for %d×%d matrix", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// CopyFrom overwrites m's elements with o's, reusing m's storage — the
// allocation-free alternative to Clone for scratch matrices in iterative
// code. It panics unless the shapes match.
func (m *Matrix) CopyFrom(o *Matrix) {
	if m.rows != o.rows || m.cols != o.cols {
		panic(ErrShape)
	}
	copy(m.data, o.data)
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RowView returns row i as a slice aliasing m's storage: writes through the
// returned slice mutate the matrix, and the slice is invalidated by nothing
// (matrix storage never moves). It is the allocation-free alternative to
// Row for hot paths; callers that need an independent copy use Row.
func (m *Matrix) RowView(i int) []float64 {
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SwapRows exchanges rows i and j in place.
func (m *Matrix) SwapRows(i, j int) {
	if i == j {
		return
	}
	ri := m.data[i*m.cols : (i+1)*m.cols]
	rj := m.data[j*m.cols : (j+1)*m.cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Scale multiplies every element by s and returns a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	c := New(m.rows, m.cols)
	ScaleTo(c, m, s)
	return c
}

// Plus returns m + o.
func (m *Matrix) Plus(o *Matrix) *Matrix {
	if m.rows != o.rows || m.cols != o.cols {
		panic(ErrShape)
	}
	c := New(m.rows, m.cols)
	PlusTo(c, m, o)
	return c
}

// Minus returns m − o.
func (m *Matrix) Minus(o *Matrix) *Matrix {
	if m.rows != o.rows || m.cols != o.cols {
		panic(ErrShape)
	}
	c := New(m.rows, m.cols)
	MinusTo(c, m, o)
	return c
}

// Mul returns the matrix product m·o.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.cols != o.rows {
		panic(ErrShape)
	}
	out := New(m.rows, o.cols)
	MulTo(out, m, o)
	return out
}

// MulVec returns the matrix-vector product m·v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.cols != len(v) {
		panic(ErrShape)
	}
	out := make([]float64, m.rows)
	MulVecTo(out, m, v)
	return out
}

// T returns the transpose of m.
func (m *Matrix) T() *Matrix {
	t := New(m.cols, m.rows)
	TTo(t, m)
	return t
}

// Symmetrize returns (m + mᵀ)/2. It panics unless m is square.
func (m *Matrix) Symmetrize() *Matrix {
	if m.rows != m.cols {
		panic(ErrShape)
	}
	s := New(m.rows, m.cols)
	SymmetrizeTo(s, m)
	return s
}

// MaxAbs returns the largest absolute element value.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// OffDiagNorm returns the Frobenius norm of the off-diagonal part.
// It panics unless m is square.
func (m *Matrix) OffDiagNorm() float64 {
	if m.rows != m.cols {
		panic(ErrShape)
	}
	var s float64
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if i != j {
				v := m.data[i*m.cols+j]
				s += v * v
			}
		}
	}
	return math.Sqrt(s)
}

// IsFinite reports whether every element is finite (no NaN or Inf).
func (m *Matrix) IsFinite() bool {
	for _, v := range m.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// EqualApprox reports whether m and o agree element-wise within tol.
func (m *Matrix) EqualApprox(o *Matrix, tol float64) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-o.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix with aligned columns, for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%10.6f", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}
