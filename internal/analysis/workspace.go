package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// WorkspaceAnalyzer enforces the pooled-arena discipline around
// mat.Workspace (the PR 3 bug class). A workspace taken from a
// sync.Pool must go back through a defer that Resets before Putting —
// a plain Put is not panic-safe, a Put without Reset hands the next
// user a dirty arena, and no defer at all leaks the arena on the first
// panicking path. And because Reset recycles every Get/GetVec/GetInts
// allocation at once, arena-backed objects must not outlive the
// function that owns the pooled workspace: returning them, parking
// them in fields or globals, or shipping them to goroutines/channels
// republishes memory the pool is about to hand to someone else.
var WorkspaceAnalyzer = &Analyzer{
	Name: "workspace",
	Doc: "pooled mat.Workspace must be returned via defer { Reset; Put } and its " +
		"Get/GetVec/GetInts/LU allocations must not escape the owning function",
	Run: runWorkspace,
}

const workspaceType = "crowdassess/internal/mat.Workspace"

// arenaMethods are the Workspace methods whose results are arena-owned.
var arenaMethods = map[string]bool{"Get": true, "GetVec": true, "GetInts": true, "LU": true}

func runWorkspace(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkWorkspaceOwner(pass, fd.Body)
		}
	}
}

// isWorkspacePtr reports whether t is *mat.Workspace (by full type
// name, so fixtures importing the real package trip it too).
func isWorkspacePtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Workspace" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path()+"."+obj.Name(), workspaceType)
}

// checkWorkspaceOwner analyzes one function body that may own pooled
// workspaces. Nested function literals are walked as part of the owner:
// the arena's lifetime is bounded by the owner's defer, wherever the
// use happens.
func checkWorkspaceOwner(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	// Pass 1: find pool acquisitions — ws := pool.Get().(*mat.Workspace).
	acquired := map[types.Object]*ast.Ident{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			ta, ok := ast.Unparen(rhs).(*ast.TypeAssertExpr)
			if !ok || ta.Type == nil || !isWorkspacePtr(info.TypeOf(ta.Type)) {
				continue
			}
			call, ok := ast.Unparen(ta.X).(*ast.CallExpr)
			if !ok {
				continue
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Get" {
				continue
			}
			if i < len(as.Lhs) {
				if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
					if obj := info.ObjectOf(id); obj != nil {
						acquired[obj] = id
					}
				}
			}
		}
		return true
	})
	if len(acquired) == 0 {
		return
	}

	// Pass 2: each acquisition needs a defer that Resets and Puts it,
	// and Put must only ever happen inside a defer.
	for obj, id := range acquired {
		hasDefer, hasReset, hasPut := false, false, false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				reset, put := deferReturnsWorkspace(info, n, obj)
				if reset || put {
					hasDefer = true
				}
				hasReset = hasReset || reset
				hasPut = hasPut || put
			}
			return true
		})
		switch {
		case !hasDefer:
			pass.Reportf(id.Pos(), "pooled workspace %s is not returned via defer: a panicking path leaks or republishes the arena", id.Name)
		case !hasReset:
			pass.Reportf(id.Pos(), "pooled workspace %s is returned without Reset: the next user inherits a dirty arena", id.Name)
		case !hasPut:
			pass.Reportf(id.Pos(), "pooled workspace %s is Reset in a defer but never returned to its pool", id.Name)
		}
		// Non-deferred Put of a pooled workspace: not panic-safe, and it
		// republishes the arena while the rest of the function may still
		// touch it.
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.DeferStmt); ok {
				return false // anything inside a defer is fine
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Put" && callMentionsObj(info, call, obj) {
				pass.Reportf(call.Pos(), "pooled workspace %s returned with a plain Put: wrap Reset+Put in a defer so a panic cannot skip or reorder them", id.Name)
			}
			return true
		})
	}

	// Pass 3: escape analysis for arena-backed objects of pooled
	// workspaces.
	tainted := map[types.Object]*ast.Ident{}
	changed := true
	for changed {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) {
					break
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := info.ObjectOf(id)
				if obj == nil || tainted[obj] != nil {
					continue
				}
				if exprArenaTainted(info, rhs, acquired, tainted) {
					tainted[obj] = id
					changed = true
				}
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if exprArenaTainted(info, res, acquired, tainted) {
					pass.Reportf(n.Pos(), "arena-backed value escapes via return: it is recycled by the deferred Reset before the caller can use it")
					return true
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) || !exprArenaTainted(info, n.Rhs[i], acquired, tainted) {
					continue
				}
				switch l := lhs.(type) {
				case *ast.SelectorExpr:
					pass.Reportf(n.Pos(), "arena-backed value stored in a field: it outlives the owning function's workspace")
				case *ast.StarExpr:
					pass.Reportf(n.Pos(), "arena-backed value stored through a pointer: it outlives the owning function's workspace")
				case *ast.Ident:
					if obj := info.ObjectOf(l); obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
						pass.Reportf(n.Pos(), "arena-backed value stored in package-level %s: it outlives the owning function's workspace", l.Name)
					}
				}
			}
		case *ast.SendStmt:
			if exprArenaTainted(info, n.Value, acquired, tainted) {
				pass.Reportf(n.Pos(), "arena-backed value sent on a channel: the receiver outlives the owning function's workspace")
			}
		case *ast.GoStmt:
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if obj := info.ObjectOf(id); obj != nil && tainted[obj] != nil {
							pass.Reportf(id.Pos(), "arena-backed %s captured by a goroutine: it may run after the deferred Reset recycles the arena", id.Name)
							return false
						}
					}
					return true
				})
			}
		}
		return true
	})
}

// deferReturnsWorkspace reports whether the defer's call (direct or a
// func literal body) Resets and/or Puts the given workspace object.
func deferReturnsWorkspace(info *types.Info, d *ast.DeferStmt, ws types.Object) (reset, put bool) {
	scan := func(call *ast.CallExpr) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		switch sel.Sel.Name {
		case "Reset":
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && info.ObjectOf(id) == ws {
				reset = true
			}
		case "Put":
			if callMentionsObj(info, call, ws) {
				put = true
			}
		}
	}
	if fl, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				scan(c)
			}
			return true
		})
		return reset, put
	}
	scan(d.Call)
	return reset, put
}

// callMentionsObj reports whether obj appears among the call's
// arguments.
func callMentionsObj(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	for _, a := range call.Args {
		if id, ok := ast.Unparen(a).(*ast.Ident); ok && info.ObjectOf(id) == obj {
			return true
		}
	}
	return false
}

// exprArenaTainted reports whether e evaluates to arena-owned memory: a
// direct ws.Get/GetVec/GetInts/LU call on a pooled workspace, a tainted
// identifier, or a slice/index view of either.
func exprArenaTainted(info *types.Info, e ast.Expr, acquired map[types.Object]*ast.Ident, tainted map[types.Object]*ast.Ident) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		return obj != nil && tainted[obj] != nil
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok || !arenaMethods[sel.Sel.Name] {
			return false
		}
		recv, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return false
		}
		obj := info.ObjectOf(recv)
		return obj != nil && acquired[obj] != nil
	case *ast.SliceExpr:
		return exprArenaTainted(info, e.X, acquired, tainted)
	case *ast.IndexExpr:
		// v[0] of a float slice is a scalar copy, not arena memory; only
		// reference-typed elements keep pointing into the arena.
		return !isValueCopy(info.TypeOf(e)) && exprArenaTainted(info, e.X, acquired, tainted)
	case *ast.UnaryExpr:
		return exprArenaTainted(info, e.X, acquired, tainted)
	case *ast.StarExpr:
		return !isValueCopy(info.TypeOf(e)) && exprArenaTainted(info, e.X, acquired, tainted)
	}
	return false
}

// isValueCopy reports whether reading a value of type t copies it out of
// the arena entirely (basic scalars and strings).
func isValueCopy(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Basic)
	return ok
}
