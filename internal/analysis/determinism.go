package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DeterminismAnalyzer rejects wall-clock and unseeded-randomness inputs,
// and order-dependent map iteration, inside the packages whose outputs
// the bit-identity tests compare at Float64bits granularity. Any hidden
// nondeterminism in these paths turns "replica divergence" and
// "recovery changed a decision" into heisenbugs; randomness must route
// through internal/randx (seeded) and map iteration must use the
// ordered-keys idiom (collect keys, sort, range the slice) when its
// body produces order-dependent results.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "forbid time.Now/time.Since, math/rand and order-dependent map iteration " +
		"in the bit-identity-critical packages (route randomness through internal/randx, " +
		"iterate maps via sorted keys)",
	Scopes: []Scope{
		{Packages: DeterminismPackages()},
		// In internal/dist only the codec/merge/sweep paths feed the
		// compared bytes; the policy/heartbeat machinery is legitimately
		// time-based.
		{Packages: []string{"internal/dist"}, Files: []string{"codec.go", "compact.go", "checkpoint.go"}},
		{Packages: []string{"internal/dist"}, Files: []string{"coordinator.go"}, Funcs: []string{"Merge", "RunSweep"}},
	},
	Run: runDeterminism,
}

// DeterminismPackages is the module-relative package set the
// determinism analyzer covers wholesale ("" is the facade root).
// coverage_test.go asserts this set, plus the partially-scoped
// internal/dist and the documented exemptions, is exactly the set of
// packages the bit-identity tests (the Float64bits comparisons)
// transitively exercise — so a new package on the decision path cannot
// silently dodge analysis.
func DeterminismPackages() []string {
	return []string{
		"",
		"internal/aggregate",
		"internal/baseline",
		"internal/core",
		"internal/crowd",
		"internal/eval",
		"internal/mat",
		"internal/pool",
		"internal/sim",
		"internal/stat",
	}
}

// forbiddenTimeFuncs are the time package entry points that read the
// wall clock or schedule against it.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "NewTimer": true, "NewTicker": true, "Tick": true,
}

func runDeterminism(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			switch imp.Path.Value {
			case `"math/rand"`, `"math/rand/v2"`:
				pass.Reportf(imp.Pos(), "import of %s: unseeded or global randomness breaks bit-identity; draw through internal/randx instead", imp.Path.Value)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(info, n); fn != nil {
					if p := fn.Pkg(); p != nil && p.Path() == "time" && forbiddenTimeFuncs[fn.Name()] {
						pass.Reportf(n.Pos(), "call to time.%s: wall-clock input in a bit-identity-critical path", fn.Name())
					}
				}
			case *ast.RangeStmt:
				checkMapRange(pass, f, n)
			}
			return true
		})
	}
}

// calleeFunc resolves a call's callee to its types.Func when it is a
// plain or package-qualified function reference.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// checkMapRange flags map-range bodies whose effects depend on
// iteration order: appends into an outer slice (unless it is the
// ordered-keys idiom: collecting the bare keys and sorting them
// afterwards), stores through an outer slice index, float accumulation
// (reduction order changes the bits), and early exits (which key wins
// depends on the order).
func checkMapRange(pass *Pass, file *ast.File, rng *ast.RangeStmt) {
	info := pass.Pkg.Info
	t := info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	outer := func(id *ast.Ident) bool {
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj == nil {
			return false
		}
		return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
	}
	keyIdent, _ := rng.Key.(*ast.Ident)

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate execution context; out of this walk's scope
		case *ast.BranchStmt:
			if n.Tok == token.BREAK && n.Label == nil {
				pass.Reportf(n.Pos(), "break out of map iteration: which key is seen last depends on iteration order; iterate sorted keys instead")
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, file, rng, n, outer, keyIdent)
		}
		return true
	})
}

func checkMapRangeAssign(pass *Pass, file *ast.File, rng *ast.RangeStmt, as *ast.AssignStmt, outer func(*ast.Ident) bool, keyIdent *ast.Ident) {
	info := pass.Pkg.Info
	// Float accumulation: x += v, x *= v with x declared outside the loop.
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if id, ok := as.Lhs[0].(*ast.Ident); ok && outer(id) && isFloat(info.TypeOf(id)) {
			pass.Reportf(as.Pos(), "float accumulation over map iteration: reduction order changes the bits; iterate sorted keys")
			return
		}
	}
	for i, lhs := range as.Lhs {
		// Store through an outer slice index: out[i] = … where the slot
		// consumed depends on iteration order.
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			base, ok := ix.X.(*ast.Ident)
			if !ok || !outer(base) {
				continue
			}
			if _, isSlice := info.TypeOf(base).Underlying().(*types.Slice); !isSlice {
				continue // map[k]=v keyed by the range key is order-independent
			}
			// Indexing by the range key itself lands each element in a
			// deterministic slot regardless of visit order.
			if ixID, ok := ast.Unparen(ix.Index).(*ast.Ident); ok && keyIdent != nil && info.ObjectOf(ixID) == info.ObjectOf(keyIdent) {
				continue
			}
			pass.Reportf(as.Pos(), "store through outer slice index inside map iteration: element placement depends on iteration order")
			continue
		}
		// x = append(x, …) growing an outer slice in visit order.
		if i >= len(as.Rhs) {
			continue
		}
		call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			continue
		} else if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			continue
		}
		target, ok := lhs.(*ast.Ident)
		if !ok || !outer(target) {
			continue
		}
		if isOrderedKeysCollect(pass, file, rng, call, target, keyIdent) {
			continue
		}
		pass.Reportf(as.Pos(), "append to %s inside map iteration: element order depends on iteration order; collect keys and sort, or iterate sorted keys", target.Name)
	}
}

// isOrderedKeysCollect recognizes the first half of the ordered-keys
// idiom: appending exactly the range key to a slice that is sorted
// after the loop (a sort/slices call mentioning the target later in the
// same file).
func isOrderedKeysCollect(pass *Pass, file *ast.File, rng *ast.RangeStmt, call *ast.CallExpr, target *ast.Ident, keyIdent *ast.Ident) bool {
	info := pass.Pkg.Info
	if keyIdent == nil || len(call.Args) != 2 {
		return false
	}
	arg, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
	if !ok || info.ObjectOf(arg) != info.ObjectOf(keyIdent) {
		return false
	}
	sorted := false
	ast.Inspect(file, func(n ast.Node) bool {
		c, ok := n.(*ast.CallExpr)
		if !ok || c.Pos() <= rng.End() {
			return true
		}
		fn := calleeFunc(info, c)
		if fn == nil || fn.Pkg() == nil || (fn.Pkg().Path() != "sort" && fn.Pkg().Path() != "slices") {
			return true
		}
		for _, a := range c.Args {
			if id, ok := ast.Unparen(a).(*ast.Ident); ok && info.ObjectOf(id) == info.ObjectOf(target) {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
