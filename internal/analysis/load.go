package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package of the module under
// analysis (or a test fixture).
type Package struct {
	// ImportPath is the path the package was loaded under.
	ImportPath string
	// Rel is the module-relative path ("internal/core"; "" for the
	// module root package). For fixture packages it is the synthetic
	// path they were registered under.
	Rel string
	// Dir is the directory the files came from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	// FileNames are the absolute paths, parallel to Files.
	FileNames []string
	Types     *types.Package
	Info      *types.Info
}

// FileBase returns the base name of the file containing pos.
func (p *Package) FileBase(pos token.Pos) string {
	return filepath.Base(p.Fset.Position(pos).Filename)
}

// Loader parses and type-checks packages from source with no toolchain
// or network dependency: module packages resolve under the module root,
// everything else under GOROOT/src (with the GOROOT vendor tree for the
// stdlib's vendored golang.org/x imports). One Loader caches every
// package it has checked, so analyzing ./... type-checks shared
// dependencies once.
type Loader struct {
	Fset    *token.FileSet
	ModPath string // module path from go.mod
	ModDir  string // absolute module root
	// Extra maps synthetic import paths to directories, for loading
	// test fixtures that live outside the module's package tree.
	Extra map[string]string

	ctxt    build.Context
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a Loader rooted at the module containing dir (found
// by walking up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	// Cgo selects import-"C" files the pure type-checker cannot handle;
	// every package we need (including net) has a cgo-free fallback.
	ctxt.CgoEnabled = false
	return &Loader{
		Fset:    token.NewFileSet(),
		ModPath: modPath,
		ModDir:  modDir,
		Extra:   map[string]string{},
		ctxt:    ctxt,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// findModule walks up from dir to the nearest go.mod and parses its
// module path.
func findModule(dir string) (modDir, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("go.mod in %s has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Import implements types.Importer so the loader can feed itself to the
// type-checker.
func (l *Loader) Import(path string) (*types.Package, error) {
	pkg, err := l.Load(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

// Load parses and type-checks the package at the given import path,
// returning the cached result on subsequent calls. Module and fixture
// packages get full type information; dependencies outside the module
// are checked for their exported API only (nil Info).
func (l *Loader) Load(path string) (*Package, error) {
	if path == "unsafe" {
		return &Package{ImportPath: path, Types: types.Unsafe, Fset: l.Fset}, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	dir, inModule, err := l.resolveDir(path)
	if err != nil {
		return nil, err
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	pkg, err := l.loadDir(path, dir, inModule)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// resolveDir maps an import path to a source directory: fixture paths
// via Extra, module paths under ModDir, everything else under GOROOT.
func (l *Loader) resolveDir(path string) (dir string, inModule bool, err error) {
	if d, ok := l.Extra[path]; ok {
		return d, true, nil
	}
	if rel, ok := l.moduleRel(path); ok {
		return filepath.Join(l.ModDir, filepath.FromSlash(rel)), true, nil
	}
	for _, d := range []string{
		filepath.Join(l.ctxt.GOROOT, "src", filepath.FromSlash(path)),
		filepath.Join(l.ctxt.GOROOT, "src", "vendor", filepath.FromSlash(path)),
	} {
		if st, err := os.Stat(d); err == nil && st.IsDir() {
			return d, false, nil
		}
	}
	return "", false, fmt.Errorf("cannot resolve import %q (the module is dependency-free; only stdlib and %s/... imports exist)", path, l.ModPath)
}

// moduleRel returns the module-relative form of path if it names a
// package in the module.
func (l *Loader) moduleRel(path string) (string, bool) {
	if path == l.ModPath {
		return "", true
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return rest, true
	}
	return "", false
}

// loadDir parses the non-test Go files of one directory (build-tag
// filtered via go/build) and type-checks them.
func (l *Loader) loadDir(path, dir string, inModule bool) (*Package, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	var files []*ast.File
	var fileNames []string
	for _, name := range names {
		abs := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.Fset, abs, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		fileNames = append(fileNames, abs)
	}
	var info *types.Info
	if inModule {
		info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	rel := path
	if r, ok := l.moduleRel(path); ok {
		rel = r
	}
	return &Package{
		ImportPath: path,
		Rel:        rel,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		FileNames:  fileNames,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// LoadFixture registers dir under a synthetic import path and loads it
// with full type information. Fixture files may import real module
// packages (crowdassess/internal/mat, …), so fixtures type-check
// against the live APIs and signature drift breaks analyzer tests
// loudly.
func (l *Loader) LoadFixture(path, dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l.Extra[path] = abs
	return l.Load(path)
}

// ModulePackages walks the module tree and returns the module-relative
// paths of every directory containing non-test Go files, skipping
// testdata, vendor and hidden directories. The result is sorted.
func (l *Loader) ModulePackages() ([]string, error) {
	var rels []string
	err := filepath.WalkDir(l.ModDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModDir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			rel, err := filepath.Rel(l.ModDir, p)
			if err != nil {
				return err
			}
			if rel == "." {
				rel = ""
			}
			rels = append(rels, filepath.ToSlash(rel))
			break
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(rels)
	return rels, nil
}

// ImportPathFor converts a module-relative path back to a full import
// path.
func (l *Loader) ImportPathFor(rel string) string {
	if rel == "" {
		return l.ModPath
	}
	return l.ModPath + "/" + rel
}
