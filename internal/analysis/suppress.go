package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// SuppressCheck is the name of the built-in check that polices the
// suppression comments themselves.
const SuppressCheck = "suppress"

// ignorePrefix introduces a suppression comment:
//
//	//crowdvet:ignore <check> <reason>
//
// A suppression applies to findings of <check> on its own line and on
// the line immediately after it, covering both end-of-line and
// standalone-comment placement. The reason is mandatory and is reviewed
// like code: an ignore without one is a finding, as is an ignore naming
// an unknown check.
const ignorePrefix = "//crowdvet:ignore"

// suppression is one parsed ignore comment.
type suppression struct {
	pos    token.Pos
	line   int
	check  string
	reason string
}

var generatedRx = regexp.MustCompile(`^// Code generated .* DO NOT EDIT\.$`)

// isGenerated reports whether f carries the conventional generated-file
// marker before its package clause; generated files are skipped
// entirely (their source of truth is the generator, not the file).
func isGenerated(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			if generatedRx.MatchString(c.Text) {
				return true
			}
		}
	}
	return false
}

// collectSuppressions parses every ignore comment in the file,
// reporting malformed ones (missing reason, unknown check) through
// report as SuppressCheck findings.
func collectSuppressions(fset *token.FileSet, f *ast.File, known []string, report func(Diagnostic)) []suppression {
	var sups []suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
			if !ok {
				continue
			}
			// A trailing "// ..." is commentary about the suppression, not
			// part of the reason (it also lets fixture files annotate a
			// reasonless ignore with a want-marker).
			if i := strings.Index(rest, " // "); i >= 0 {
				rest = rest[:i]
			}
			fields := strings.Fields(rest)
			pos := fset.Position(c.Pos())
			if len(fields) == 0 {
				report(Diagnostic{Pos: pos, Check: SuppressCheck, Message: "crowdvet:ignore without a check name"})
				continue
			}
			check := fields[0]
			if !containsString(known, check) {
				report(Diagnostic{Pos: pos, Check: SuppressCheck, Message: "crowdvet:ignore of unknown check " + strconv(check)})
				continue
			}
			if len(fields) < 2 {
				report(Diagnostic{Pos: pos, Check: SuppressCheck,
					Message: "crowdvet:ignore " + check + " without a reason; justify the suppression or fix the finding"})
				continue
			}
			sups = append(sups, suppression{
				pos:    c.Pos(),
				line:   pos.Line,
				check:  check,
				reason: strings.Join(fields[1:], " "),
			})
		}
	}
	return sups
}

func strconv(s string) string { return "\"" + s + "\"" }

// suppressed reports whether d is covered by a justified suppression: a
// matching ignore on the finding's line or the line directly above it.
func suppressed(d Diagnostic, sups []suppression) bool {
	for _, s := range sups {
		if s.check != d.Check {
			continue
		}
		if d.Pos.Line == s.line || d.Pos.Line == s.line+1 {
			return true
		}
	}
	return false
}
