package analysis

import (
	"go/ast"
	"go/types"
)

// ErrClassAnalyzer keeps the RPC failure-classification table honest.
// Every retry/degrade decision in the cluster flows through
// Transient(); a sentinel error or error type added to the package but
// never classified silently inherits the default branch, which is
// exactly how a permanent failure ends up retried (or vice versa). The
// analyzer also forbids discarding error values into the blank
// identifier in the storage and cluster packages: an ignored error
// there is an ignored lost write.
var ErrClassAnalyzer = &Analyzer{
	Name: "errclass",
	Doc: "package-level error sentinels/types in a package defining Transient() must be " +
		"referenced by the classification table; error values must not be discarded with _ ",
	Scopes: []Scope{
		{Packages: []string{"internal/dist", "internal/gate", "internal/store"}},
	},
	Run: runErrClass,
}

func runErrClass(pass *Pass) {
	checkTransientTable(pass)
	checkBlankErrorDiscards(pass)
}

// checkTransientTable applies only when the package defines a function
// named Transient (the classification table): every package-level
// error sentinel and error-implementing type must be referenced from
// Transient's body or from a function Transient directly calls, so a
// new error class cannot cross the RPC boundary unclassified.
func checkTransientTable(pass *Pass) {
	info := pass.Pkg.Info

	var transient *ast.FuncDecl
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == "Transient" && fd.Body != nil {
				transient = fd
			}
		}
	}
	if transient == nil {
		return
	}

	// The classification closure: objects referenced by Transient and by
	// the package-level functions it calls directly (isRemote and
	// friends are part of the table).
	referenced := map[types.Object]bool{}
	var scanBody func(fd *ast.FuncDecl, depth int)
	scanned := map[*ast.FuncDecl]bool{}
	bodyOf := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := info.Defs[fd.Name]; obj != nil {
					bodyOf[obj] = fd
				}
			}
		}
	}
	scanBody = func(fd *ast.FuncDecl, depth int) {
		if scanned[fd] || depth > 1 {
			return
		}
		scanned[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if obj == nil {
				return true
			}
			referenced[obj] = true
			if callee, ok := bodyOf[obj]; ok {
				scanBody(callee, depth+1)
			}
			return true
		})
	}
	scanBody(transient, 0)

	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	scope := pass.Pkg.Types.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		switch obj := obj.(type) {
		case *types.Var:
			if !types.Implements(obj.Type(), errType) || referenced[obj] {
				continue
			}
			pass.Reportf(obj.Pos(), "sentinel error %s is not classified by Transient(): add it to the table (or to a helper Transient calls) so retries treat it deliberately", name)
		case *types.TypeName:
			t := obj.Type()
			if !types.Implements(t, errType) && !types.Implements(types.NewPointer(t), errType) {
				continue
			}
			if referenced[obj] {
				continue
			}
			pass.Reportf(obj.Pos(), "error type %s is not classified by Transient(): add it to the table (or to a helper Transient calls) so retries treat it deliberately", name)
		}
	}
}

// checkBlankErrorDiscards flags assignments that drop an error value
// into the blank identifier.
func checkBlankErrorDiscards(pass *Pass) {
	info := pass.Pkg.Info
	errType := types.Universe.Lookup("error").Type()
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name != "_" {
					continue
				}
				var t types.Type
				if len(as.Rhs) == len(as.Lhs) {
					t = info.TypeOf(as.Rhs[i])
				} else if len(as.Rhs) == 1 {
					// Multi-value call: pick the tuple component.
					if tv, ok := info.Types[as.Rhs[0]]; ok {
						if tup, ok := tv.Type.(*types.Tuple); ok && i < tup.Len() {
							t = tup.At(i).Type()
						}
					}
				}
				if t != nil && types.Identical(t, errType) {
					pass.Reportf(id.Pos(), "error discarded with _: check it, return it, or suppress with a crowdvet:ignore carrying the justification")
				}
			}
			return true
		})
	}
}
