// Package locks is an analyzer fixture for lock hygiene: deferred or
// every-path unlocks pass, leaky paths and guard-ordered acquisition
// fail.
package locks

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// good: the canonical defer pairing.
func good(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// everyPath: no defer, but each return path unlocks first.
func everyPath(c *counter) int {
	c.mu.Lock()
	if c.n > 0 {
		v := c.n
		c.mu.Unlock()
		return v
	}
	c.mu.Unlock()
	return 0
}

// leak: the early return path exits with the mutex held.
func leak(c *counter) int {
	c.mu.Lock() // want "locks: c.mu.Lock has no defer Unlock"
	if c.n > 0 {
		return c.n
	}
	c.mu.Unlock()
	return 0
}

type table struct {
	mu sync.RWMutex
	m  map[string]int
}

// readLeak: an RLock with no unlock on the return path.
func readLeak(t *table, k string) int {
	t.mu.RLock() // want "locks: t.mu.RLock has no defer RUnlock"
	v := t.m[k]
	return v
}

// readOK: positional RUnlock before the only return.
func readOK(t *table, k string) int {
	t.mu.RLock()
	v := t.m[k]
	t.mu.RUnlock()
	return v
}

// fallOff: the implicit return at the closing brace is a path too.
func fallOff(c *counter) {
	c.mu.Lock() // want "locks: c.mu.Lock has no defer Unlock"
	c.n++
}

// slice and node mirror the cluster's fine-grained lock carriers; the
// documented order takes their locks first, never under a guard mutex.
type slice struct {
	mu sync.Mutex
}

type node struct {
	mu sync.Mutex
}

type coord struct {
	monitorMu sync.Mutex
	journalMu sync.Mutex
	slices    []*slice
	peer      *node
}

// badOrder acquires a slice lock while holding monitorMu.
func badOrder(c *coord) {
	c.monitorMu.Lock()
	defer c.monitorMu.Unlock()
	for _, s := range c.slices {
		s.mu.Lock() // want "locks: slice lock acquired while holding c.monitorMu"
		s.mu.Unlock()
	}
}

// badLeaf acquires a node lock while holding the journal leaf mutex.
func badLeaf(c *coord) {
	c.journalMu.Lock()
	c.peer.mu.Lock() // want "locks: node lock acquired while holding c.journalMu"
	c.peer.mu.Unlock()
	c.journalMu.Unlock()
}

// goodOrder releases the guard before touching fine-grained locks.
func goodOrder(c *coord) {
	c.monitorMu.Lock()
	n := len(c.slices)
	c.monitorMu.Unlock()
	for i := 0; i < n; i++ {
		s := c.slices[i]
		s.mu.Lock()
		s.mu.Unlock()
	}
}
