// Package durability is an analyzer fixture for journal-before-ack. It
// imports the real crowdassess/internal/store so the Append recognizer
// is exercised against the live storage API, alongside the local
// journal-method shape the worker uses.
package durability

import "crowdassess/internal/store"

type batch struct{ data []byte }

const (
	msgIngest   = 0x01
	msgIngestOK = 0x02
)

type wal struct{}

func (w *wal) append(b batch) error { return nil }

type worker struct{ log *wal }

func (w *worker) journal(b batch) error { return w.log.append(b) }

// handleGood is the canonical shape: journal, check, then ack.
func (w *worker) handleGood(t byte, b batch) (byte, error) {
	switch t {
	case msgIngest:
		if err := w.journal(b); err != nil {
			return 0, err
		}
		return msgIngestOK, nil
	}
	return 0, nil
}

func (w *worker) handleNoJournal(t byte, b batch) (byte, error) {
	switch t {
	case msgIngest:
		return msgIngestOK, nil // want "durability: ingest ack without a journal append"
	}
	return 0, nil
}

func (w *worker) handleUnchecked(t byte, b batch) (byte, error) {
	switch t {
	case msgIngest:
		w.journal(b) // want "durability: journal append error is not checked"
		return msgIngestOK, nil
	}
	return 0, nil
}

func (w *worker) handleAckFirst(t byte, b batch) (byte, error) {
	switch t {
	case msgIngest:
		if len(b.data) == 0 {
			return msgIngestOK, nil // want "durability: ingest ack precedes the journal append"
		}
		if err := w.journal(b); err != nil {
			return 0, err
		}
		return msgIngestOK, nil
	}
	return 0, nil
}

// handleLaterCheck binds the error first and consults it afterwards:
// still checked.
func (w *worker) handleLaterCheck(t byte, b batch) (byte, error) {
	switch t {
	case msgIngest:
		err := w.journal(b)
		if err != nil {
			return 0, err
		}
		return msgIngestOK, nil
	}
	return 0, nil
}

type sliceWorker struct{ st *store.Store }

// ingestStore journals through the real storage engine's Append.
func (w *sliceWorker) ingestStore(t byte, rs []store.Response) (byte, error) {
	if t != msgIngest {
		return 0, nil
	}
	if _, err := w.st.Log.Append(rs); err != nil {
		return 0, err
	}
	return msgIngestOK, nil
}

// ingestStoreDropped journals but discards the append error: the ack can
// outrun a failed append.
func (w *sliceWorker) ingestStoreDropped(t byte, rs []store.Response) (byte, error) {
	if t != msgIngest {
		return 0, nil
	}
	seq, _ := w.st.Log.Append(rs) // want "durability: journal append error is not checked"
	_ = seq
	return msgIngestOK, nil
}

// forward is the coordinator shape: the ack is a relayed reply from a
// round-trip that passed msgIngestOK; relaying it without journaling is
// an ack for a batch nobody persisted.
func (w *sliceWorker) forward(t byte, rt func(byte, []store.Response) (byte, error), rs []store.Response) (byte, error) {
	if t != msgIngest {
		return 0, nil
	}
	reply, err := rt(msgIngestOK, rs)
	if err != nil {
		return 0, err
	}
	return reply, nil // want "durability: ingest ack without a journal append"
}
