package generated

import "errors"

// live proves the rest of the package still runs when a sibling file is
// generated.
func live() {
	_ = errors.New("dropped") // want "errclass: error discarded with _"
}
