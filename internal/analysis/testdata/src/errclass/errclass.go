// Package errclass is an analyzer fixture for the failure-classification
// check: every package-level error must be reachable from Transient's
// table (directly or through a helper it calls), and error values must
// not be dropped into the blank identifier.
package errclass

import "errors"

// ErrKnown is classified directly in Transient.
var ErrKnown = errors.New("known")

// ErrHelper is classified in a helper Transient calls: still in the table.
var ErrHelper = errors.New("helper")

var ErrStray = errors.New("stray") // want "errclass: sentinel error ErrStray is not classified by Transient"

type remoteError struct{ msg string }

func (e *remoteError) Error() string { return e.msg }

type codecError struct{ msg string } // want "errclass: error type codecError is not classified by Transient"

func (e *codecError) Error() string { return e.msg }

func Transient(err error) bool {
	if errors.Is(err, ErrKnown) {
		return false
	}
	var re *remoteError
	if errors.As(err, &re) {
		return false
	}
	return classify(err)
}

func classify(err error) bool {
	return err != nil && !errors.Is(err, ErrHelper)
}

func discard() {
	_ = errors.New("dropped") // want "errclass: error discarded with _"
}

func discardTuple(f func() (int, error)) int {
	n, _ := f() // want "errclass: error discarded with _"
	return n
}

// checked is the normal shape: nothing to report.
func checked(f func() (int, error)) (int, error) {
	n, err := f()
	if err != nil {
		return 0, err
	}
	return n, nil
}
