// Package workspace is an analyzer fixture for the pooled-arena
// discipline. It imports the real crowdassess/internal/mat package, so
// the fixture type-checks against the live Workspace API and signature
// drift breaks this test instead of silently blinding the analyzer.
package workspace

import (
	"sync"

	"crowdassess/internal/mat"
)

var pool = sync.Pool{New: func() any { return mat.NewWorkspace() }}

var sink []float64

// good is the canonical idiom: defer { Reset; Put }, nothing escapes.
func good(n int) float64 {
	ws := pool.Get().(*mat.Workspace)
	defer func() {
		ws.Reset()
		pool.Put(ws)
	}()
	v := ws.GetVec(n)
	return v[0]
}

func noDefer(n int) {
	ws := pool.Get().(*mat.Workspace) // want "workspace: pooled workspace ws is not returned via defer"
	v := ws.GetVec(n)
	v[0] = 1
}

func noReset(n int) {
	ws := pool.Get().(*mat.Workspace) // want "workspace: pooled workspace ws is returned without Reset"
	defer pool.Put(ws)
	v := ws.GetVec(n)
	v[0] = 1
}

func noPut(n int) {
	ws := pool.Get().(*mat.Workspace) // want "workspace: pooled workspace ws is Reset in a defer but never returned to its pool"
	defer ws.Reset()
	v := ws.GetVec(n)
	v[0] = 1
}

func plainPut(n int) {
	ws := pool.Get().(*mat.Workspace)
	defer func() {
		ws.Reset()
		pool.Put(ws)
	}()
	v := ws.GetVec(n)
	v[0] = 1
	pool.Put(ws) // want "workspace: pooled workspace ws returned with a plain Put"
}

func escapeReturn(n int) []float64 {
	ws := pool.Get().(*mat.Workspace)
	defer func() {
		ws.Reset()
		pool.Put(ws)
	}()
	v := ws.GetVec(n)
	return v // want "workspace: arena-backed value escapes via return"
}

func escapeGlobal(n int) {
	ws := pool.Get().(*mat.Workspace)
	defer func() {
		ws.Reset()
		pool.Put(ws)
	}()
	v := ws.GetVec(n)
	sink = v // want "workspace: arena-backed value stored in package-level sink"
}

type holder struct{ buf []float64 }

func escapeField(h *holder, n int) {
	ws := pool.Get().(*mat.Workspace)
	defer func() {
		ws.Reset()
		pool.Put(ws)
	}()
	v := ws.GetVec(n)
	h.buf = v // want "workspace: arena-backed value stored in a field"
}

func escapeChannel(ch chan []float64, n int) {
	ws := pool.Get().(*mat.Workspace)
	defer func() {
		ws.Reset()
		pool.Put(ws)
	}()
	v := ws.GetVec(n)
	ch <- v // want "workspace: arena-backed value sent on a channel"
}

func escapeGoroutine(n int) {
	ws := pool.Get().(*mat.Workspace)
	defer func() {
		ws.Reset()
		pool.Put(ws)
	}()
	v := ws.GetVec(n)
	go func() {
		v[0] = 1 // want "workspace: arena-backed v captured by a goroutine"
	}()
}

// copyOut is the sanctioned way to keep results: copy out of the arena
// before it is recycled.
func copyOut(n int) []float64 {
	ws := pool.Get().(*mat.Workspace)
	defer func() {
		ws.Reset()
		pool.Put(ws)
	}()
	v := ws.GetVec(n)
	out := make([]float64, n)
	copy(out, v)
	return out
}
