// Package suppress is an analyzer fixture for the suppression policy:
// a justified ignore silences its finding; a reasonless or malformed
// ignore is itself a finding and suppresses nothing.
package suppress

import "errors"

// justified: the ignore carries a reason, so the errclass finding on
// this line is silenced and nothing is reported.
func justified() {
	_ = errors.New("dropped") //crowdvet:ignore errclass fixture exercises a justified suppression
}

// justifiedAbove: a standalone ignore covers the line directly below it.
func justifiedAbove() {
	//crowdvet:ignore errclass fixture exercises the line-above placement
	_ = errors.New("dropped")
}

// missingReason: an ignore without a reason is a suppress finding, and
// the underlying errclass finding still fires.
func missingReason() {
	_ = errors.New("dropped") //crowdvet:ignore errclass // want "suppress: crowdvet:ignore errclass without a reason" "errclass: error discarded with _"
}

// unknownCheck: naming a check that does not exist is a suppress
// finding, and suppresses nothing.
func unknownCheck() {
	_ = errors.New("dropped") //crowdvet:ignore nosuchcheck typo in the check name // want "suppress: crowdvet:ignore of unknown check" "errclass: error discarded with _"
}

// noCheckName: an ignore with nothing after it at all.
func noCheckName() {
	//crowdvet:ignore // want "suppress: crowdvet:ignore without a check name"
}

// wrongCheck: a justified ignore of a different check does not cover
// this finding.
func wrongCheck() {
	_ = errors.New("dropped") //crowdvet:ignore determinism wrong check named here // want "errclass: error discarded with _"
}
