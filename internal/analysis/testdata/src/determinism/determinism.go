// Package determinism is an analyzer fixture: each want marker pins one
// diagnostic the determinism check must produce, and the unmarked
// functions pin the idioms it must accept.
package determinism

import (
	"math/rand" // want "determinism: import of \"math/rand\""
	"sort"
	"time"
)

var _ = rand.Int

func clock() int64 {
	return time.Now().UnixNano() // want "determinism: call to time.Now"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "determinism: call to time.Since"
}

func pacer() *time.Ticker {
	return time.NewTicker(time.Second) // want "determinism: call to time.NewTicker"
}

// observe mimics an obs-style measurement helper: routing the sample
// through a callback does not launder the clock, because the time.Now
// call site still lives in the scanned package.
func observe(record func(time.Time)) {
	record(time.Now()) // want "determinism: call to time.Now"
}

// latencyInto smuggles wall-clock bits into a decision variable through
// the helper above; the diagnostic lands on observe's call site.
func latencyInto(dst *float64) {
	observe(func(t time.Time) { *dst = float64(t.UnixNano()) })
}

// sums: float reduction order over a map changes the bits.
func sums(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "determinism: float accumulation over map iteration"
	}
	return total
}

// sortedKeys is the ordered-keys idiom: collecting the bare range key
// into a slice that is sorted afterwards is order-independent.
func sortedKeys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// collect appends values in visit order — not the idiom.
func collect(m map[int]string) []string {
	var vals []string
	for _, v := range m {
		vals = append(vals, v) // want "determinism: append to vals inside map iteration"
	}
	return vals
}

// firstKey: which key wins the early exit depends on iteration order.
func firstKey(m map[string]int) string {
	out := ""
	for k := range m {
		out = k
		break // want "determinism: break out of map iteration"
	}
	return out
}

// scatter consumes output slots in visit order.
func scatter(m map[int]float64, out []float64) {
	i := 0
	for _, v := range m {
		out[i] = v // want "determinism: store through outer slice index"
		i++
	}
}

// gather lands each element in a slot determined by its key: fine.
func gather(m map[int]float64, out []float64) {
	for k, v := range m {
		out[k] = v
	}
}

// tally writes through a map key: map writes are order-independent.
func tally(m map[string]int, counts map[string]int) {
	for k, v := range m {
		counts[k] = v
	}
}
