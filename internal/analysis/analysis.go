// Package analysis is crowdvet's engine: a stdlib-only static-analysis
// framework (go/parser + go/types, no external dependencies) plus the
// project-invariant checks it runs. Every check encodes a bug class this
// repository has actually shipped or reviewed away — stale workspace
// arenas, lock paths without unlock, acks that outrun the journal — so
// that CI rejects the class mechanically instead of hoping a test
// happens to exercise the violating path.
//
// The unit of work is a Package (parsed files + type information); each
// Analyzer walks one package and reports Diagnostics. Which packages,
// files and functions an analyzer examines is declared as Scopes and
// enforced by the driver, so the checks themselves stay simple
// whole-package walks. Findings can be suppressed line-by-line with
//
//	//crowdvet:ignore <check> <reason>
//
// where the reason is mandatory: an ignore without one is itself a
// finding (see suppress.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
)

// Diagnostic is one finding: a position, the check that produced it, and
// a human-readable message.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Scope names a set of (package, file, function) triples an analyzer
// applies to. Empty fields widen: no Files means every file in the
// packages, no Funcs means every function in the files.
type Scope struct {
	// Packages are module-relative import paths ("internal/core"; "" is
	// the module root package).
	Packages []string
	// Files are base names within those packages ("codec.go").
	Files []string
	// Funcs are function or method names (receiver omitted).
	Funcs []string
}

// Analyzer is one project-invariant check.
type Analyzer struct {
	// Name is the check identifier used in output and in
	// //crowdvet:ignore comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Scopes restricts where findings apply. Nil means every package.
	Scopes []Scope
	// Run walks one package and reports findings through the pass. The
	// driver filters reports against Scopes afterwards, so Run may scan
	// the whole package unconditionally.
	Run func(*Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full registered suite, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		WorkspaceAnalyzer,
		LocksAnalyzer,
		ErrClassAnalyzer,
		DurabilityAnalyzer,
	}
}

// AnalyzerNames returns the valid check names, including the built-in
// suppression check, for ignore-comment validation and -checks parsing.
func AnalyzerNames() []string {
	names := []string{SuppressCheck}
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// enclosingFuncName returns the name of the function or method whose
// body spans pos in any of the package's files, or "".
func enclosingFuncName(pkg *Package, pos token.Pos) string {
	for _, f := range pkg.Files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pos >= fd.Pos() && pos <= fd.End() {
				return fd.Name.Name
			}
		}
	}
	return ""
}

// inScope reports whether a diagnostic at pos (in file base name file)
// falls inside any of the analyzer's scopes for the given package.
func inScope(a *Analyzer, pkg *Package, file string, pos token.Pos) bool {
	if len(a.Scopes) == 0 {
		return true
	}
	for _, s := range a.Scopes {
		if !containsString(s.Packages, pkg.Rel) {
			continue
		}
		if len(s.Files) > 0 && !containsString(s.Files, file) {
			continue
		}
		if len(s.Funcs) > 0 && !containsString(s.Funcs, enclosingFuncName(pkg, pos)) {
			continue
		}
		return true
	}
	return false
}

func containsString(xs []string, x string) bool {
	for _, s := range xs {
		if s == x {
			return true
		}
	}
	return false
}
