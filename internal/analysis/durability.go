package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DurabilityAnalyzer mechanically enforces journal-before-ack on the
// ingest paths: wherever an ingest success reply (msgIngestOK) is
// produced, a WAL append (Worker.journal or a store Log.Append) must
// come first, with its error checked — an ack that outruns the journal
// is an acked write a crash can lose, which is the one promise the
// storage engine makes.
var DurabilityAnalyzer = &Analyzer{
	Name: "durability",
	Doc: "in ingest paths, the success ack must be dominated by a journal append whose " +
		"error is checked (journal-before-ack)",
	Scopes: []Scope{
		{Packages: []string{"internal/dist"}},
	},
	Run: runDurability,
}

func runDurability(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// The region under the invariant: the case clause handling
			// msgIngest when the function switches on message types,
			// otherwise the whole body of a function that mentions
			// msgIngest.
			regions := ingestRegions(fd.Body)
			for _, region := range regions {
				checkIngestRegion(pass, region)
			}
		}
	}
}

// ingestRegions returns the statement lists to check: msgIngest case
// clauses, or the function body when msgIngest is used outside a
// switch.
func ingestRegions(body *ast.BlockStmt) [][]ast.Stmt {
	var regions [][]ast.Stmt
	inCase := map[ast.Stmt]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, e := range cc.List {
			if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name == "msgIngest" {
				regions = append(regions, cc.Body)
				for _, s := range cc.Body {
					inCase[s] = true
				}
			}
		}
		return true
	})
	if len(regions) > 0 {
		return regions
	}
	// Whole-body region only when msgIngest appears at all.
	uses := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "msgIngest" {
			uses = true
			return false
		}
		return true
	})
	if uses {
		regions = append(regions, body.List)
	}
	return regions
}

// checkIngestRegion verifies journal-before-ack within one region.
func checkIngestRegion(pass *Pass, region []ast.Stmt) {
	info := pass.Pkg.Info

	type journalCall struct {
		call    *ast.CallExpr
		errName string // bound error identifier; "" when discarded
		checked bool
	}
	var journals []journalCall
	var acks []token.Pos
	ackVars := map[types.Object]bool{} // idents holding replies from calls passing msgIngestOK

	var regionEnd token.Pos
	for _, s := range region {
		if s.End() > regionEnd {
			regionEnd = s.End()
		}
	}

	for _, s := range region {
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				// reply, err := roundTrip(..., msgIngestOK): reply is an ack
				// carrier when later returned with a nil error.
				for i, rhs := range n.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || !callPassesIdent(call, "msgIngestOK") {
						continue
					}
					if i < len(n.Lhs) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
							if obj := info.ObjectOf(id); obj != nil {
								ackVars[obj] = true
							}
						}
					}
				}
			case *ast.CallExpr:
				if isJournalCall(info, n) {
					jc := journalCall{call: n}
					jc.errName, jc.checked = journalErrorChecked(info, region, n)
					journals = append(journals, jc)
				}
			case *ast.ReturnStmt:
				if isAckReturn(info, n, ackVars) {
					acks = append(acks, n.Pos())
				}
			}
			return true
		})
	}

	if len(acks) == 0 {
		return
	}
	if len(journals) == 0 {
		pass.Reportf(acks[0], "ingest ack without a journal append in scope: an acked batch must be durable first (journal-before-ack)")
		return
	}
	for _, jc := range journals {
		if !jc.checked {
			pass.Reportf(jc.call.Pos(), "journal append error is not checked before the ack: a failed append must fail the ingest")
		}
	}
	journalPos := journals[0].call.Pos()
	for _, ack := range acks {
		if ack < journalPos {
			pass.Reportf(ack, "ingest ack precedes the journal append: a crash between them loses an acked batch (journal-before-ack)")
		}
	}
}

// isJournalCall recognizes WAL appends: a journal(...) method call, or
// Append on a store Log.
func isJournalCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "journal":
		return true
	case "Append":
		// Append on anything the storage package defines (DiskLog, the
		// Log interface, a future backend) is a WAL append.
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		p := fn.Pkg().Path()
		return p == "store" || strings.HasSuffix(p, "/store")
	}
	return false
}

// callPassesIdent reports whether the call has the named identifier
// among its arguments.
func callPassesIdent(call *ast.CallExpr, name string) bool {
	for _, a := range call.Args {
		if id, ok := ast.Unparen(a).(*ast.Ident); ok && id.Name == name {
			return true
		}
	}
	return false
}

// isAckReturn recognizes a success ack: return msgIngestOK, … or
// return reply, nil where reply carries an msgIngestOK round-trip
// result.
func isAckReturn(info *types.Info, ret *ast.ReturnStmt, ackVars map[types.Object]bool) bool {
	if len(ret.Results) == 0 {
		return false
	}
	if id, ok := ast.Unparen(ret.Results[0]).(*ast.Ident); ok && id.Name == "msgIngestOK" {
		return true
	}
	last, ok := ast.Unparen(ret.Results[len(ret.Results)-1]).(*ast.Ident)
	if !ok || last.Name != "nil" {
		return false
	}
	for _, res := range ret.Results {
		if id, ok := ast.Unparen(res).(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil && ackVars[obj] {
				return true
			}
		}
	}
	return false
}

// journalErrorChecked reports the error identifier bound to the journal
// call and whether it is consulted (an if condition or a return)
// afterwards. The enclosing statement shapes handled are the ones Go
// code actually writes: `if err := j(); err != nil`, `err := j()` /
// `_, err := j()` followed by a check, and a bare call (unchecked).
func journalErrorChecked(info *types.Info, region []ast.Stmt, call *ast.CallExpr) (string, bool) {
	// Find the innermost statement containing the call.
	var enclosing ast.Stmt
	var parentIf *ast.IfStmt
	for _, s := range region {
		ast.Inspect(s, func(n ast.Node) bool {
			st, ok := n.(ast.Stmt)
			if !ok {
				return true
			}
			if call.Pos() >= st.Pos() && call.End() <= st.End() {
				switch st := st.(type) {
				case *ast.AssignStmt:
					enclosing = st
				case *ast.ExprStmt:
					enclosing = st
				case *ast.IfStmt:
					if st.Init != nil && call.Pos() >= st.Init.Pos() && call.End() <= st.Init.End() {
						parentIf = st
					}
				}
			}
			return true
		})
	}

	bindErr := func(as *ast.AssignStmt) *ast.Ident {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				if t := info.TypeOf(id); t != nil && types.Identical(t, types.Universe.Lookup("error").Type()) {
					return id
				}
			}
		}
		return nil
	}

	if parentIf != nil {
		as, ok := parentIf.Init.(*ast.AssignStmt)
		if !ok {
			return "", false
		}
		id := bindErr(as)
		if id == nil {
			return "", false
		}
		return id.Name, condMentions(info, parentIf.Cond, info.ObjectOf(id))
	}
	as, ok := enclosing.(*ast.AssignStmt)
	if !ok {
		return "", false // bare call statement: error dropped on the floor
	}
	id := bindErr(as)
	if id == nil {
		return "", false
	}
	obj := info.ObjectOf(id)
	// Look for a later if-condition or return consulting the error.
	checked := false
	for _, s := range region {
		ast.Inspect(s, func(n ast.Node) bool {
			if n == nil || n.Pos() <= as.End() {
				return true
			}
			switch n := n.(type) {
			case *ast.IfStmt:
				if condMentions(info, n.Cond, obj) {
					checked = true
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if rid, ok := ast.Unparen(r).(*ast.Ident); ok && info.ObjectOf(rid) == obj {
						checked = true
					}
				}
			}
			return !checked
		})
	}
	return id.Name, checked
}

// condMentions reports whether the expression references obj.
func condMentions(info *types.Info, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
