package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Run executes the given analyzers over one package: scope filtering,
// generated-file skipping and suppression handling included. The
// returned diagnostics are the surviving findings plus any
// suppression-policy findings, sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return run(pkg, analyzers, true)
}

// RunForTest executes analyzers with scope filtering disabled, so
// fixture packages under testdata trip the checks regardless of their
// synthetic import paths. Suppression and generated-file handling stay
// active (they are under test too).
func RunForTest(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return run(pkg, analyzers, false)
}

func run(pkg *Package, analyzers []*Analyzer, scoped bool) []Diagnostic {
	var out []Diagnostic
	report := func(d Diagnostic) { out = append(out, d) }

	// Generated files are invisible to every check, including the
	// suppression police.
	skipFile := map[string]bool{}
	var sups []suppression
	for i, f := range pkg.Files {
		if isGenerated(f) {
			skipFile[pkg.FileNames[i]] = true
			continue
		}
		sups = append(sups, collectSuppressions(pkg.Fset, f, AnalyzerNames(), report)...)
	}

	for _, a := range analyzers {
		var raw []Diagnostic
		pass := &Pass{Analyzer: a, Pkg: pkg, report: func(d Diagnostic) { raw = append(raw, d) }}
		a.Run(pass)
		for _, d := range raw {
			if skipFile[d.Pos.Filename] {
				continue
			}
			if scoped {
				// Re-derive the token.Pos for scope checks from the file
				// offset; Reportf recorded the Position, so find the file.
				if !diagInScope(a, pkg, d) {
					continue
				}
			}
			if suppressed(d, sups) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}

// diagInScope maps the diagnostic's recorded Position back to a
// token.Pos in the package's files and applies the analyzer's scopes.
func diagInScope(a *Analyzer, pkg *Package, d Diagnostic) bool {
	for i, name := range pkg.FileNames {
		if name != d.Pos.Filename {
			continue
		}
		f := pkg.Files[i]
		tf := pkg.Fset.File(f.Pos())
		if tf == nil || d.Pos.Offset >= tf.Size() {
			return inScope(a, pkg, filepath.Base(name), f.Pos())
		}
		return inScope(a, pkg, filepath.Base(name), tf.Pos(d.Pos.Offset))
	}
	return false
}

// WriteText renders diagnostics one per line in file:line:col form,
// with paths relative to root when possible.
func WriteText(w io.Writer, root string, diags []Diagnostic) {
	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
	}
}

// jsonDiag is the -json wire form of one finding.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// WriteJSON renders diagnostics as a JSON array for tooling.
func WriteJSON(w io.Writer, root string, diags []Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		out = append(out, jsonDiag{File: name, Line: d.Pos.Line, Col: d.Pos.Column, Check: d.Check, Message: d.Message})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
