package analysis

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// determinismExemptions are the packages on the bit-identity decision
// path that the determinism analyzer deliberately does not scan
// wholesale, each with the reason the exemption is sound. Removing a
// package from the analyzer's scope without recording why here fails
// the coverage test below.
var determinismExemptions = map[string]string{
	// randx IS the sanctioned randomness: it wraps math/rand behind
	// explicit seeding, which is exactly the import the analyzer bans
	// everywhere else.
	"internal/randx": "the seeded-randomness facade itself",
	// The storage engine's clocks pace fsync batching and group commit —
	// they decide when bytes hit the disk, never which bytes. Record
	// content is produced by the callers the analyzer does scan.
	"internal/store": "clocks pace fsync, not stored content",
	// dist is partially scoped (codec/compact/checkpoint files and the
	// Merge/RunSweep paths): the rest is heartbeat/retry machinery that
	// is legitimately time-based. Asserted as partial coverage below.
	"internal/dist": "partially scoped: codec/merge/sweep paths only",
	// gate is the serving layer: its clock paces token-bucket refills and
	// Retry-After hints — when a request is admitted, never what the
	// estimator computes. Statistics flow through pool/core, which the
	// analyzer does scan.
	"internal/gate": "clocks pace rate limits and backpressure, not statistics",
	// obs is the observability layer: its clocks time histogram samples
	// and its counters count, but nothing on the decision path reads a
	// measurement back. Clocks pace measurement, not decisions — and a
	// decision-path package that smuggles time.Now through an obs helper
	// into its own logic is still caught, because that call site lives in
	// the scanned package (see the determinism fixture's obs-smuggling
	// case).
	"internal/obs": "clocks pace measurement, not decisions",
}

// TestDeterminismCoversBitIdentityClosure pins the determinism
// analyzer's scope to the code the bit-identity tests actually defend:
// the set of module packages transitively imported by every test that
// compares results at math.Float64bits granularity must equal the
// analyzer's package scope plus the documented exemptions above. A new
// package on the decision path — or a decision-path import added to an
// existing one — fails this test until it is either scoped or exempted
// with a reason.
func TestDeterminismCoversBitIdentityClosure(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	fset := token.NewFileSet()

	relOf := func(dir string) string {
		rel, err := filepath.Rel(loader.ModDir, dir)
		if err != nil {
			t.Fatalf("rel: %v", err)
		}
		if rel == "." {
			return ""
		}
		return filepath.ToSlash(rel)
	}

	moduleImports := func(file string) []string {
		f, err := parser.ParseFile(fset, file, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("parsing %s: %v", file, err)
		}
		var rels []string
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == loader.ModPath {
				rels = append(rels, "")
			} else if rest, ok := strings.CutPrefix(path, loader.ModPath+"/"); ok {
				rels = append(rels, rest)
			}
		}
		return rels
	}

	// Seeds: every package owning a Float64bits-comparing test, plus the
	// module packages those test files import directly.
	var queue []string
	err = filepath.WalkDir(loader.ModDir, func(p string, d os.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		if d.IsDir() {
			name := d.Name()
			if p != loader.ModDir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			// This package talks about Float64bits without computing
			// anything bit-compared; scanning it would make the test
			// self-seeding.
			if relOf(p) == "internal/analysis" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		if !strings.Contains(string(data), "Float64bits") {
			return nil
		}
		queue = append(queue, relOf(filepath.Dir(p)))
		queue = append(queue, moduleImports(p)...)
		return nil
	})
	if err != nil {
		t.Fatalf("walking module: %v", err)
	}
	if len(queue) == 0 {
		t.Fatal("no bit-identity (Float64bits) tests found; the coverage baseline is gone")
	}

	// Transitive closure over the non-test imports of each reached
	// package.
	reachable := map[string]bool{}
	for len(queue) > 0 {
		rel := queue[0]
		queue = queue[1:]
		if reachable[rel] {
			continue
		}
		reachable[rel] = true
		dir := filepath.Join(loader.ModDir, filepath.FromSlash(rel))
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading %s: %v", dir, err)
		}
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			queue = append(queue, moduleImports(filepath.Join(dir, e.Name()))...)
		}
	}

	covered := map[string]bool{}
	for _, rel := range DeterminismPackages() {
		covered[rel] = true
	}
	for rel := range determinismExemptions {
		covered[rel] = true
	}

	for _, rel := range sortedSet(reachable) {
		if !covered[rel] {
			t.Errorf("package %q is on the bit-identity decision path but neither scoped by the determinism analyzer nor exempted with a reason", rel)
		}
	}
	for _, rel := range sortedSet(covered) {
		if !reachable[rel] {
			t.Errorf("package %q is scoped/exempted but no longer reachable from any bit-identity test; prune it", rel)
		}
	}

	// The dist exemption is "partial scope", not "no scope": the
	// analyzer must still carry file/function-scoped entries for it.
	distScoped := false
	for _, s := range DeterminismAnalyzer.Scopes {
		if containsString(s.Packages, "internal/dist") && (len(s.Files) > 0 || len(s.Funcs) > 0) {
			distScoped = true
		}
	}
	if !distScoped {
		t.Error("internal/dist lost its partial determinism scope (codec/merge/sweep paths must stay covered)")
	}
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
