package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness: each directory under testdata/src is one fixture
// package, loaded through the real Loader (so fixtures type-check, and
// the ones importing crowdassess/... pin the live APIs) and run through
// RunForTest. Expectations are written in the fixtures themselves as
//
//	// want "pattern" ["pattern" ...]
//
// where each pattern is a regexp that must match one "check: message"
// diagnostic on that line. Every diagnostic must be wanted and every
// want must be matched — extra or missing findings fail the test.

// wantQuoted pulls the quoted patterns out of the text following a
// "// want" marker.
var wantQuoted = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadFixture("fixture/"+name, filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

func wantsIn(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, fn := range pkg.FileNames {
		data, err := os.ReadFile(fn)
		if err != nil {
			t.Fatalf("reading fixture file: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			for _, m := range wantQuoted.FindAllStringSubmatch(line[idx:], -1) {
				rx, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", fn, i+1, m[1], err)
				}
				wants = append(wants, &expectation{file: fn, line: i + 1, rx: rx})
			}
		}
	}
	return wants
}

// checkFixture runs the analyzers over the named fixture and reconciles
// diagnostics against the fixture's want markers.
func checkFixture(t *testing.T, name string, analyzers []*Analyzer) {
	t.Helper()
	pkg := loadFixture(t, name)
	wants := wantsIn(t, pkg)
	for _, d := range RunForTest(pkg, analyzers) {
		text := d.Check + ": " + d.Message
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.rx.MatchString(text) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.rx)
		}
	}
}

func TestDeterminismFixture(t *testing.T) {
	checkFixture(t, "determinism", []*Analyzer{DeterminismAnalyzer})
}

func TestWorkspaceFixture(t *testing.T) {
	checkFixture(t, "workspace", []*Analyzer{WorkspaceAnalyzer})
}

func TestLocksFixture(t *testing.T) {
	checkFixture(t, "locks", []*Analyzer{LocksAnalyzer})
}

func TestErrClassFixture(t *testing.T) {
	checkFixture(t, "errclass", []*Analyzer{ErrClassAnalyzer})
}

func TestDurabilityFixture(t *testing.T) {
	checkFixture(t, "durability", []*Analyzer{DurabilityAnalyzer})
}

// TestSuppressFixture covers the suppression policy: a justified ignore
// silences its finding, a reasonless or unknown-check ignore is itself a
// finding and suppresses nothing.
func TestSuppressFixture(t *testing.T) {
	checkFixture(t, "suppress", []*Analyzer{ErrClassAnalyzer})
}

// TestGeneratedFixture: files carrying the conventional generated-file
// marker are invisible to every check; sibling files still run.
func TestGeneratedFixture(t *testing.T) {
	checkFixture(t, "generated", []*Analyzer{ErrClassAnalyzer})
}
