package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LocksAnalyzer enforces the concurrency hygiene of the cluster and
// storage packages: every Lock/RLock needs a same-function defer Unlock
// or an unlock on every return path below it, and the documented lock
// order — slice/node locks are never acquired while holding the
// monitor or journal mutex (the monitor probes outside slice locks;
// journalMu is a leaf) — is checked mechanically.
var LocksAnalyzer = &Analyzer{
	Name: "locks",
	Doc: "Lock/RLock must pair with a same-function defer Unlock or an unlock on " +
		"every return path; never take a slice or node lock while holding monitorMu/journalMu",
	Scopes: []Scope{
		{Packages: []string{"internal/dist", "internal/gate", "internal/pool", "internal/store"}},
	},
	Run: runLocks,
}

// guardMutexFields are the coarse mutexes that must stay leaves: code
// holding them may not reach for per-slice or per-node locks (the
// documented order takes fine-grained locks first, or not at all).
var guardMutexFields = map[string]bool{"monitorMu": true, "journalMu": true}

// nestedLockTypes are the struct types whose mu field must not be
// acquired under a guard mutex.
var nestedLockTypes = map[string]bool{"slice": true, "node": true}

// lockSite is one Lock/RLock call inside a function body.
type lockSite struct {
	call   *ast.CallExpr
	recv   string // rendered receiver expression, e.g. "w.journalMu"
	unlock string // matching unlock method name
}

func runLocks(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockFunc(pass, fd.Body)
		}
	}
}

func checkLockFunc(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	var locks []lockSite
	var unlocks []lockSite // every non-deferred unlock call, for path checks
	var deferred []lockSite
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok {
						if s, kind := mutexCall(info, c); s != "" && isUnlockName(kind) {
							deferred = append(deferred, lockSite{call: c, recv: s, unlock: kind})
						}
					}
					return true
				})
				return false
			}
			if s, kind := mutexCall(info, n.Call); s != "" && isUnlockName(kind) {
				deferred = append(deferred, lockSite{call: n.Call, recv: s, unlock: kind})
			}
			return false
		case *ast.CallExpr:
			s, kind := mutexCall(info, n)
			if s == "" {
				return true
			}
			switch kind {
			case "Lock":
				locks = append(locks, lockSite{call: n, recv: s, unlock: "Unlock"})
			case "RLock":
				locks = append(locks, lockSite{call: n, recv: s, unlock: "RUnlock"})
			case "Unlock", "RUnlock":
				unlocks = append(unlocks, lockSite{call: n, recv: s, unlock: kind})
			}
		}
		return true
	})

	// Return points: every return after the lock, plus the implicit one
	// at the closing brace when the body can fall off the end.
	var returns []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // its returns are not this function's paths
		}
		if r, ok := n.(*ast.ReturnStmt); ok {
			returns = append(returns, r.Pos())
		}
		return true
	})
	if n := len(body.List); n == 0 || !terminalStmt(body.List[n-1]) {
		returns = append(returns, body.Rbrace)
	}

	for _, lk := range locks {
		if hasDeferredUnlock(deferred, lk) {
			continue
		}
		missing := token.NoPos
		for _, ret := range returns {
			if ret <= lk.call.Pos() {
				continue
			}
			if !hasUnlockBetween(unlocks, lk, lk.call.Pos(), ret) {
				missing = ret
				break
			}
		}
		if missing != token.NoPos {
			pass.Reportf(lk.call.Pos(), "%s.%s has no defer %s and line %d can return without unlocking",
				lk.recv, lockName(lk), lk.unlock, pass.Pkg.Fset.Position(missing).Line)
		}
	}

	checkLockOrder(pass, body, locks, unlocks, deferred)
}

// checkLockOrder flags slice/node mu acquisition inside a region where
// a guard mutex (monitorMu/journalMu) is held.
func checkLockOrder(pass *Pass, body *ast.BlockStmt, locks, unlocks, deferred []lockSite) {
	info := pass.Pkg.Info
	for _, g := range locks {
		field := g.recv[strings.LastIndex(g.recv, ".")+1:]
		if !guardMutexFields[field] {
			continue
		}
		// Held region: from the guard's Lock to its first positional
		// unlock, or to the end of the function when deferred.
		start, end := g.call.Pos(), body.End()
		for _, u := range unlocks {
			if u.recv == g.recv && u.call.Pos() > start {
				end = u.call.Pos()
				break
			}
		}
		for _, lk := range locks {
			if lk.call.Pos() <= start || lk.call.Pos() >= end {
				continue
			}
			sel, ok := lk.call.Fun.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			inner, ok := sel.X.(*ast.SelectorExpr)
			if !ok || inner.Sel.Name != "mu" {
				continue
			}
			if t := info.TypeOf(inner.X); t != nil && nestedLockTypes[namedTypeName(t)] {
				pass.Reportf(lk.call.Pos(), "%s lock acquired while holding %s: the documented order takes slice/node locks first (the monitor probes outside them; journalMu is a leaf)",
					namedTypeName(info.TypeOf(inner.X)), g.recv)
			}
		}
	}
}

// mutexCall reports the rendered receiver and method name when call is
// a sync.Mutex/RWMutex (or embedded) Lock/RLock/Unlock/RUnlock.
func mutexCall(info *types.Info, call *ast.CallExpr) (recv, method string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", ""
	}
	sig := fn.Origin().String()
	if !strings.Contains(sig, "sync.Mutex)") && !strings.Contains(sig, "sync.RWMutex)") {
		return "", ""
	}
	return types.ExprString(sel.X), name
}

func isUnlockName(name string) bool { return name == "Unlock" || name == "RUnlock" }

func lockName(lk lockSite) string {
	if lk.unlock == "RUnlock" {
		return "RLock"
	}
	return "Lock"
}

// hasDeferredUnlock reports whether a deferred unlock on the same
// rendered receiver (and matching read/write flavor) exists.
func hasDeferredUnlock(deferred []lockSite, lk lockSite) bool {
	for _, d := range deferred {
		if d.recv == lk.recv && d.unlock == lk.unlock {
			return true
		}
	}
	return false
}

// hasUnlockBetween reports whether a plain unlock of the same receiver
// and flavor sits between from and to.
func hasUnlockBetween(unlocks []lockSite, lk lockSite, from, to token.Pos) bool {
	for _, u := range unlocks {
		if u.recv == lk.recv && u.unlock == lk.unlock && u.call.Pos() > from && u.call.Pos() < to {
			return true
		}
	}
	return false
}

// terminalStmt reports whether the statement never falls through to the
// next one: a return, or a call to panic.
func terminalStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if c, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.ForStmt:
		return s.Cond == nil // for{} without break is as terminal as we can tell cheaply
	}
	return false
}

// namedTypeName returns the bare name of t's named type, through one
// pointer.
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
