package core

import (
	"fmt"
	"slices"

	"crowdassess/internal/crowd"
)

// LoggedResponse is one recorded submission in a checkpoint's response
// log: worker Worker answered task Task with Answer. The log is what makes
// a checkpoint fully reconstructive — the sufficient statistics alone
// cannot pair a task's pre-checkpoint responders with its post-restore
// ones, but replaying the log rebuilds the per-task response lists
// exactly, so ingestion may resume mid-task with no loss.
type LoggedResponse struct {
	Worker int
	Task   int
	Answer crowd.Response
}

// Checkpoint snapshots the evaluator for persistence: the exported
// sufficient statistics plus the full response log behind them, taken from
// one consistent cut. The log is ordered by task index, then arrival order
// within each task — a deterministic order that replays to bit-identical
// state. The statistics are redundant given the log; a restore replays the
// log and verifies the re-exported statistics against them, so a corrupted
// or mismatched checkpoint is detected end to end rather than silently
// skewing estimates.
func (inc *Incremental) Checkpoint() (*StatsExport, []LoggedResponse) {
	return inc.ExportStats(), responseLog(inc.responses, inc.taskResponses)
}

// Checkpoint snapshots the sharded evaluator for persistence. It holds
// every shard lock for the duration (the same index-order multi-shard
// locking Snapshot uses), so the statistics and the log describe exactly
// the same set of responses even under concurrent Add traffic.
func (s *ShardedIncremental) Checkpoint() (*StatsExport, []LoggedResponse) {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range s.shards {
			sh.mu.Unlock()
		}
	}()
	m := newStreamStats(s.workers)
	tasks, responses := 0, 0
	maps := make([]map[int][]workerResponse, len(s.shards))
	for i, sh := range s.shards {
		m.addFrom(sh.stats)
		if sh.tasks > tasks {
			tasks = sh.tasks
		}
		responses += sh.responses
		maps[i] = sh.taskResponses
	}
	return exportStats(m, s.workers, tasks, responses), responseLog(responses, maps...)
}

// responseLog flattens task-response maps (task sets disjoint across maps)
// into the canonical log order: ascending task index, arrival order within
// a task. Counter updates commute across tasks and pair every responder of
// a task with all previous ones, so replaying this order — or any order —
// reproduces the same statistics; the canonical order exists so equal
// states always serialize to equal bytes.
func responseLog(responses int, maps ...map[int][]workerResponse) []LoggedResponse {
	tasks := make([]int, 0, len(maps[0]))
	for _, m := range maps {
		for t := range m {
			tasks = append(tasks, t)
		}
	}
	slices.Sort(tasks)
	log := make([]LoggedResponse, 0, responses)
	for _, t := range tasks {
		for _, m := range maps {
			for _, wr := range m[t] {
				log = append(log, LoggedResponse{Worker: wr.worker, Task: t, Answer: wr.resp})
			}
		}
	}
	return log
}

// restorable is the slice of the streaming API RestoreStats needs; both
// evaluators satisfy it with their ordinary public methods, so the replay
// path is the very same Add every live ingest takes.
type restorable interface {
	Add(w, t int, r crowd.Response) error
	Workers() int
	Responses() int
	ExportStats() *StatsExport
}

// restoreStats replays a checkpoint's response log into an empty evaluator
// and verifies the rebuilt statistics against the checkpointed export.
func restoreStats(ev restorable, e *StatsExport, log []LoggedResponse) error {
	if e == nil {
		return fmt.Errorf("core: nil statistics export")
	}
	if err := e.validate(); err != nil {
		return fmt.Errorf("core: invalid checkpoint statistics: %w", err)
	}
	if got, want := ev.Workers(), e.Workers; got != want {
		return fmt.Errorf("core: checkpoint covers a %d-worker crowd, evaluator tracks %d", want, got)
	}
	if n := ev.Responses(); n != 0 {
		return fmt.Errorf("core: cannot restore into an evaluator already holding %d responses", n)
	}
	if len(log) != e.Responses {
		return fmt.Errorf("core: checkpoint log carries %d responses, statistics claim %d", len(log), e.Responses)
	}
	for i, lr := range log {
		if err := ev.Add(lr.Worker, lr.Task, lr.Answer); err != nil {
			return fmt.Errorf("core: replaying checkpoint response %d of %d: %w", i, len(log), err)
		}
	}
	if got := ev.ExportStats(); !got.Equal(e) {
		return fmt.Errorf("core: restored statistics diverge from the checkpoint export (corrupt or inconsistent snapshot)")
	}
	return nil
}

// RestoreStats rebuilds an empty evaluator from a checkpoint: the response
// log is replayed through the ordinary Add path (rebuilding counters,
// attendance, per-task response lists and duplicate detection exactly),
// then the re-exported statistics are verified against the checkpointed
// export — a checkpoint whose log and statistics disagree is rejected
// rather than trusted. After a successful restore the evaluator is
// byte-identical to the one the checkpoint was taken from: EvaluateAll,
// MajorityDisagreement and duplicate rejection all resume exactly, even
// for tasks whose responses straddle the checkpoint cut.
//
// The evaluator must be freshly constructed (no responses); restoring over
// live state would double-count. On error the evaluator may hold a partial
// replay and must be discarded.
func (inc *Incremental) RestoreStats(e *StatsExport, log []LoggedResponse) error {
	return restoreStats(inc, e, log)
}

// RestoreStats rebuilds an empty sharded evaluator from a checkpoint; see
// Incremental.RestoreStats. The replay runs through the concurrent Add
// path, so the shard striping — and therefore every per-shard structure —
// matches a never-restarted evaluator exactly. Not safe to call
// concurrently with Add: restore first, then serve.
func (s *ShardedIncremental) RestoreStats(e *StatsExport, log []LoggedResponse) error {
	return restoreStats(s, e, log)
}

// Equal reports whether two exports describe the same statistics.
// Attendance bitsets compare with trailing zero words ignored, so capacity
// history never distinguishes equal states — the same normalization the
// wire codec's canonical form applies.
func (e *StatsExport) Equal(o *StatsExport) bool {
	if e.Workers != o.Workers || e.Tasks != o.Tasks || e.Responses != o.Responses {
		return false
	}
	for i := 0; i < e.Workers; i++ {
		if !slices.Equal(e.Agree[i], o.Agree[i]) || !slices.Equal(e.Common[i], o.Common[i]) {
			return false
		}
		if !slices.Equal(trimBitset(e.Responded[i]), trimBitset(o.Responded[i])) {
			return false
		}
	}
	return true
}

// trimBitset drops trailing zero words without copying.
func trimBitset(words []uint64) []uint64 {
	n := len(words)
	for n > 0 && words[n-1] == 0 {
		n--
	}
	return words[:n]
}

// DisagreementCounts returns the integer tallies behind
// MajorityDisagreement: per worker, the number of tasks attempted and the
// number where the worker disagreed with the task's majority. Unlike the
// rates, the tallies are additive across disjoint task sets — each task's
// majority is decided where its responses live — which is what lets a
// coordinator sum per-node tallies and run the paper's spammer screen over
// a cluster exactly.
func (inc *Incremental) DisagreementCounts() (attempted, disagree []int) {
	attempted = make([]int, inc.workers)
	disagree = make([]int, inc.workers)
	tallyDisagreement(attempted, disagree, inc.taskResponses)
	return attempted, disagree
}

// DisagreementCounts returns the spammer-screen tallies across every
// shard; see Incremental.DisagreementCounts.
func (s *ShardedIncremental) DisagreementCounts() (attempted, disagree []int) {
	attempted = make([]int, s.workers)
	disagree = make([]int, s.workers)
	for _, sh := range s.shards {
		sh.mu.Lock()
		tallyDisagreement(attempted, disagree, sh.taskResponses)
		sh.mu.Unlock()
	}
	return attempted, disagree
}
