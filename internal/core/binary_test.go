package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"crowdassess/internal/crowd"
	"crowdassess/internal/mat"
	"crowdassess/internal/randx"
	"crowdassess/internal/sim"
)

// agreementFor returns the expected agreement rate of two workers with
// error rates p1, p2: both right or both wrong.
func agreementFor(p1, p2 float64) float64 {
	return p1*p2 + (1-p1)*(1-p2)
}

func TestFBinaryRecoversErrorRate(t *testing.T) {
	// With all three error rates known, f inverts the agreement equations.
	for _, rates := range [][3]float64{
		{0.2, 0.2, 0.2},
		{0.1, 0.2, 0.3},
		{0.05, 0.4, 0.25},
	} {
		q12 := agreementFor(rates[0], rates[1])
		q13 := agreementFor(rates[0], rates[2])
		q23 := agreementFor(rates[1], rates[2])
		got, err := fBinary(q12, q13, q23)
		if err != nil {
			t.Fatalf("rates %v: %v", rates, err)
		}
		if math.Abs(got-rates[0]) > 1e-12 {
			t.Errorf("rates %v: f = %v, want %v", rates, got, rates[0])
		}
	}
}

func TestFBinaryDegenerate(t *testing.T) {
	cases := [][3]float64{
		{0.5, 0.8, 0.8},
		{0.8, 0.5, 0.8},
		{0.8, 0.8, 0.5},
		{0.3, 0.8, 0.8},
	}
	for _, c := range cases {
		if _, err := fBinary(c[0], c[1], c[2]); !errors.Is(err, ErrDegenerate) {
			t.Errorf("f(%v) err = %v, want ErrDegenerate", c, err)
		}
		if _, _, _, err := fBinaryGrad(c[0], c[1], c[2]); !errors.Is(err, ErrDegenerate) {
			t.Errorf("grad(%v) err = %v, want ErrDegenerate", c, err)
		}
	}
}

// Property: the analytic gradient (Lemma 2) matches central differences.
func TestFBinaryGradMatchesNumeric(t *testing.T) {
	f := func(a8, b8, c8 uint8) bool {
		// Map to agreement rates comfortably above ½.
		a := 0.55 + 0.44*float64(a8)/255
		b := 0.55 + 0.44*float64(b8)/255
		c := 0.55 + 0.44*float64(c8)/255
		da, db, dc, err := fBinaryGrad(a, b, c)
		if err != nil {
			return false
		}
		const h = 1e-6
		num := func(fn func(x float64) (float64, error)) float64 {
			hi, err1 := fn(h)
			lo, err2 := fn(-h)
			if err1 != nil || err2 != nil {
				return math.NaN()
			}
			return (hi - lo) / (2 * h)
		}
		nda := num(func(x float64) (float64, error) { return fBinary(a+x, b, c) })
		ndb := num(func(x float64) (float64, error) { return fBinary(a, b+x, c) })
		ndc := num(func(x float64) (float64, error) { return fBinary(a, b, c+x) })
		tol := 1e-4 * (1 + math.Abs(da) + math.Abs(db) + math.Abs(dc))
		return math.Abs(da-nda) < tol && math.Abs(db-ndb) < tol && math.Abs(dc-ndc) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPairVariance(t *testing.T) {
	if got := pairVariance(0.8, 100); math.Abs(got-0.8*0.2/100) > 1e-15 {
		t.Errorf("pairVariance = %v", got)
	}
	if !math.IsInf(pairVariance(0.8, 0), 1) {
		t.Error("zero common tasks should give infinite variance")
	}
}

// Monte-Carlo check of Lemma 3: the covariance formula for agreement rates
// sharing a worker matches the empirical covariance over many simulations.
func TestLemma3CovarianceMonteCarlo(t *testing.T) {
	const (
		nTasks = 200
		reps   = 3000
	)
	rates := []float64{0.2, 0.25, 0.3}
	var q12s, q13s []float64
	for r := 0; r < reps; r++ {
		src := randx.NewSource(int64(1000 + r))
		ds, _, err := sim.Binary{Tasks: nTasks, Workers: 3, ErrorRates: rates, Density: 0.8}.Generate(src)
		if err != nil {
			t.Fatal(err)
		}
		p12, p13 := ds.Pair(0, 1), ds.Pair(0, 2)
		if p12.Common == 0 || p13.Common == 0 {
			continue
		}
		q12s = append(q12s, p12.Rate())
		q13s = append(q13s, p13.Rate())
	}
	// Empirical covariance of Q12 and Q13 across replicates.
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	m12, m13 := mean(q12s), mean(q13s)
	var emp float64
	for i := range q12s {
		emp += (q12s[i] - m12) * (q13s[i] - m13)
	}
	emp /= float64(len(q12s))
	// Lemma 3 prediction with expected counts: c12 = c13 = n·d², c123 = n·d³.
	d := 0.8
	c12 := int(nTasks * d * d)
	c123 := int(nTasks * d * d * d)
	q23 := agreementFor(rates[1], rates[2])
	pred := pairCovariance(rates[0], q23, c123, c12, c12)
	if emp <= 0 || pred <= 0 {
		t.Fatalf("expected positive covariances, emp=%v pred=%v", emp, pred)
	}
	if ratio := emp / pred; ratio < 0.7 || ratio > 1.4 {
		t.Errorf("Lemma 3 covariance: empirical %v vs predicted %v (ratio %v)", emp, pred, ratio)
	}
}

func TestDeltaMethodLinear(t *testing.T) {
	// Y = 2X₁ − X₂ with Var(X₁)=4, Var(X₂)=1, Cov=1:
	// Var(Y) = 4·4 + 1 − 2·2·1 = 13.
	cov := mat.FromRows([][]float64{{4, 1}, {1, 1}})
	de, err := DeltaMethod(5, []float64{2, -1}, cov)
	if err != nil {
		t.Fatal(err)
	}
	if de.Mean != 5 {
		t.Errorf("Mean = %v", de.Mean)
	}
	if math.Abs(de.Dev-math.Sqrt(13)) > 1e-12 {
		t.Errorf("Dev = %v, want √13", de.Dev)
	}
	iv := de.Interval(0.95)
	if math.Abs(iv.Size()-2*1.959963984540054*math.Sqrt(13)) > 1e-9 {
		t.Errorf("interval size = %v", iv.Size())
	}
}

func TestDeltaMethodShapeMismatch(t *testing.T) {
	cov := mat.New(3, 3)
	if _, err := DeltaMethod(0, []float64{1, 2}, cov); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestDeltaMethodNegativeVariance(t *testing.T) {
	// Tiny negative quadratic form is clamped to zero...
	cov := mat.FromRows([][]float64{{-1e-12}})
	de, err := DeltaMethod(0, []float64{1}, cov)
	if err != nil || de.Dev != 0 {
		t.Errorf("tiny negative variance: dev=%v err=%v", de.Dev, err)
	}
	// ...while a grossly negative one is rejected.
	cov = mat.FromRows([][]float64{{-1}})
	if _, err := DeltaMethod(0, []float64{1}, cov); !errors.Is(err, ErrDegenerate) {
		t.Errorf("gross negative variance err = %v", err)
	}
}

func TestThreeWorkerBinaryPointEstimate(t *testing.T) {
	src := randx.NewSource(5)
	rates := []float64{0.1, 0.2, 0.3}
	ds, _, err := sim.Binary{Tasks: 20000, Workers: 3, ErrorRates: rates}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	ivs, err := ThreeWorkerBinary(ds, [3]int{0, 1, 2}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for w, want := range rates {
		if math.Abs(ivs[w].Mean-want) > 0.02 {
			t.Errorf("worker %d: mean %v, want ≈%v", w, ivs[w].Mean, want)
		}
		if !ivs[w].Contains(want) {
			t.Errorf("worker %d: interval %v misses %v", w, ivs[w], want)
		}
	}
}

func TestThreeWorkerBinaryNonRegular(t *testing.T) {
	src := randx.NewSource(6)
	rates := []float64{0.15, 0.25, 0.2}
	ds, _, err := sim.Binary{Tasks: 5000, Workers: 3, ErrorRates: rates, Density: 0.7}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	ivs, err := ThreeWorkerBinary(ds, [3]int{0, 1, 2}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for w, want := range rates {
		if math.Abs(ivs[w].Mean-want) > 0.04 {
			t.Errorf("worker %d: mean %v, want ≈%v", w, ivs[w].Mean, want)
		}
	}
}

func TestThreeWorkerBinaryCoverage(t *testing.T) {
	// Empirical coverage of the 80% interval across replicates should land
	// near 0.8 (Fig. 2(a) behaviour). Allow a generous band: this is a
	// statistical test with 250 replicates.
	const reps = 250
	const c = 0.8
	hits, total := 0, 0
	for r := 0; r < reps; r++ {
		src := randx.NewSource(int64(40000 + r))
		ds, rates, err := sim.Binary{Tasks: 150, Workers: 3, Density: 0.8}.Generate(src)
		if err != nil {
			t.Fatal(err)
		}
		ivs, err := ThreeWorkerBinary(ds, [3]int{0, 1, 2}, c)
		if err != nil {
			continue // degenerate replicate, as in the paper's harness
		}
		for w := 0; w < 3; w++ {
			total++
			if ivs[w].Contains(rates[w]) {
				hits++
			}
		}
	}
	if total < reps { // nearly all replicates must be usable
		t.Fatalf("only %d usable interval checks", total)
	}
	coverage := float64(hits) / float64(total)
	if coverage < 0.70 || coverage > 0.92 {
		t.Errorf("coverage %v at c=%v", coverage, c)
	}
}

func TestThreeWorkerBinaryErrors(t *testing.T) {
	ds := crowd.MustNewDataset(3, 10, 2)
	// No responses at all → insufficient data.
	if _, err := ThreeWorkerBinary(ds, [3]int{0, 1, 2}, 0.9); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("err = %v, want ErrInsufficientData", err)
	}
	// k-ary dataset rejected.
	ds3 := crowd.MustNewDataset(3, 10, 3)
	if _, err := ThreeWorkerBinary(ds3, [3]int{0, 1, 2}, 0.9); err == nil {
		t.Error("arity-3 dataset accepted")
	}
	// Bad confidence level rejected.
	ds2 := crowd.MustNewDataset(3, 10, 2)
	if _, err := ThreeWorkerBinary(ds2, [3]int{0, 1, 2}, 0); err == nil {
		t.Error("confidence 0 accepted")
	}
	if _, err := ThreeWorkerBinary(ds2, [3]int{0, 1, 2}, 1); err == nil {
		t.Error("confidence 1 accepted")
	}
}

func TestEvaluateWorkersBasics(t *testing.T) {
	src := randx.NewSource(7)
	ds, rates, err := sim.Binary{Tasks: 400, Workers: 7, Density: 0.8}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	ests, err := EvaluateWorkers(ds, EvalOptions{Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 7 {
		t.Fatalf("%d estimates", len(ests))
	}
	okCount := 0
	for _, e := range ests {
		if e.Err != nil {
			continue
		}
		okCount++
		if e.Triples != 3 {
			t.Errorf("worker %d used %d triples, want 3", e.Worker, e.Triples)
		}
		if math.Abs(e.Interval.Mean-rates[e.Worker]) > 0.15 {
			t.Errorf("worker %d mean %v vs true %v", e.Worker, e.Interval.Mean, rates[e.Worker])
		}
	}
	if okCount < 6 {
		t.Errorf("only %d/7 workers evaluated", okCount)
	}
}

func TestEvaluateWorkersCoverage(t *testing.T) {
	const reps = 120
	const c = 0.8
	hits, total := 0, 0
	for r := 0; r < reps; r++ {
		src := randx.NewSource(int64(50000 + r))
		ds, rates, err := sim.Binary{Tasks: 120, Workers: 7, Density: 0.8}.Generate(src)
		if err != nil {
			t.Fatal(err)
		}
		ests, err := EvaluateWorkers(ds, EvalOptions{Confidence: c})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ests {
			if e.Err != nil {
				continue
			}
			total++
			if e.Interval.Contains(rates[e.Worker]) {
				hits++
			}
		}
	}
	if total < reps*5 {
		t.Fatalf("only %d usable intervals", total)
	}
	coverage := float64(hits) / float64(total)
	if coverage < 0.70 || coverage > 0.92 {
		t.Errorf("m-worker coverage %v at c=%v", coverage, c)
	}
}

func TestOptimalWeightsTighterThanUniform(t *testing.T) {
	// Fig. 2(c): heterogeneous densities make optimized weights matter.
	var optSum, uniSum float64
	count := 0
	for r := 0; r < 40; r++ {
		src := randx.NewSource(int64(60000 + r))
		ds, _, err := sim.Binary{
			Tasks:     100,
			Workers:   7,
			Densities: sim.Fig2cDensities(7),
		}.Generate(src)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := EvaluateWorkers(ds, EvalOptions{Confidence: 0.8, Weights: OptimalWeights})
		if err != nil {
			t.Fatal(err)
		}
		uni, err := EvaluateWorkers(ds, EvalOptions{Confidence: 0.8, Weights: UniformWeights})
		if err != nil {
			t.Fatal(err)
		}
		for w := range opt {
			if opt[w].Err != nil || uni[w].Err != nil {
				continue
			}
			optSum += opt[w].Interval.Size()
			uniSum += uni[w].Interval.Size()
			count++
		}
	}
	if count == 0 {
		t.Fatal("no usable estimates")
	}
	if optSum >= uniSum {
		t.Errorf("optimal weights not tighter: opt %v vs uniform %v", optSum/float64(count), uniSum/float64(count))
	}
}

func TestEvaluateWorkersValidation(t *testing.T) {
	ds := crowd.MustNewDataset(2, 5, 2)
	if _, err := EvaluateWorkers(ds, EvalOptions{Confidence: 0.9}); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("2 workers: err = %v", err)
	}
	ds3 := crowd.MustNewDataset(3, 5, 3)
	if _, err := EvaluateWorkers(ds3, EvalOptions{Confidence: 0.9}); err == nil {
		t.Error("k-ary dataset accepted")
	}
	dsOK := crowd.MustNewDataset(3, 5, 2)
	if _, err := EvaluateWorkers(dsOK, EvalOptions{Confidence: 2}); err == nil {
		t.Error("confidence 2 accepted")
	}
}

func TestEvaluateWorkersIsolatedWorker(t *testing.T) {
	// Worker 3 shares no tasks with anyone → per-worker error, others fine.
	src := randx.NewSource(8)
	ds, _, err := sim.Binary{Tasks: 300, Workers: 4, Densities: []float64{1, 1, 1, 0}}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	ests, err := EvaluateWorkers(ds, EvalOptions{Confidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if ests[3].Err == nil {
		t.Error("isolated worker got an estimate")
	}
	for w := 0; w < 3; w++ {
		if ests[w].Err != nil {
			t.Errorf("worker %d failed: %v", w, ests[w].Err)
		}
	}
}

func TestFormPairsGreedyPrefersOverlap(t *testing.T) {
	// Workers 1,2 overlap heavily with worker 0; workers 3,4 barely.
	src := randx.NewSource(9)
	ds, _, err := sim.Binary{
		Tasks:     200,
		Workers:   5,
		Densities: []float64{1, 1, 1, 0.3, 0.3},
	}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	pairs := formPairs(newFullStatsCache(ds), 5, 0, GreedyPairing, 1)
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v", pairs)
	}
	// First pair should be the two high-overlap workers.
	first := pairs[0]
	if !((first[0] == 1 && first[1] == 2) || (first[0] == 2 && first[1] == 1)) {
		t.Errorf("greedy first pair = %v, want {1,2}", first)
	}
}

func TestOptimalWeightsLemma5(t *testing.T) {
	// For a diagonal covariance the optimal weights are ∝ 1/σ²_k.
	cov := mat.Diagonal([]float64{1, 4})
	w, err := optimalWeights(cov)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-0.8) > 1e-12 || math.Abs(w[1]-0.2) > 1e-12 {
		t.Errorf("weights = %v, want [0.8 0.2]", w)
	}
	// Weights must always sum to 1.
	var sum float64
	for _, x := range w {
		sum += x
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum to %v", sum)
	}
}

// Property: for random PSD covariance matrices, Lemma 5's weights achieve a
// variance no larger than uniform weights.
func TestOptimalWeightsBeatUniformProperty(t *testing.T) {
	f := func(seed int64) bool {
		src := randx.NewSource(seed)
		l := 2 + src.Intn(5)
		// Build a PSD matrix C = GGᵀ + δI.
		g := mat.New(l, l)
		for i := 0; i < l; i++ {
			for j := 0; j < l; j++ {
				g.Set(i, j, src.NormFloat64())
			}
		}
		cov := g.Mul(g.T())
		for i := 0; i < l; i++ {
			cov.Add(i, i, 0.1)
		}
		w, err := optimalWeights(cov)
		if err != nil {
			return true // singular draw: nothing to check
		}
		quad := func(a []float64) float64 {
			var s float64
			for i := range a {
				for j := range a {
					s += a[i] * a[j] * cov.At(i, j)
				}
			}
			return s
		}
		return quad(w) <= quad(uniformWeights(l))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPruneSpammers(t *testing.T) {
	src := randx.NewSource(10)
	// Workers 0-4 decent, workers 5-6 pure spammers (error ≈ 0.5).
	rates := []float64{0.1, 0.15, 0.2, 0.1, 0.25, 0.49, 0.49}
	ds, _, err := sim.Binary{Tasks: 300, Workers: 7, ErrorRates: rates}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	pruned, keep, err := PruneSpammers(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range keep {
		if w == 5 || w == 6 {
			t.Errorf("spammer %d survived", w)
		}
	}
	if pruned.Workers() != len(keep) || pruned.Workers() < 5 {
		t.Errorf("kept %d workers: %v", pruned.Workers(), keep)
	}
}

func TestPruneSpammersTooFew(t *testing.T) {
	src := randx.NewSource(11)
	ds, _, err := sim.Binary{Tasks: 100, Workers: 3, ErrorRates: []float64{0.1, 0.1, 0.1}}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	// Absurd threshold removes everyone.
	if _, _, err := PruneSpammers(ds, 1e-9); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("err = %v, want ErrInsufficientData", err)
	}
}
