package core

import (
	"math"
	"reflect"
	"testing"

	"crowdassess/internal/randx"
	"crowdassess/internal/sim"
)

// randomMultinomial draws a plausible A3 counts vector: k³ nonnegative
// entries summing to n.
func randomMultinomial(src *randx.Source, dim int, n float64) []float64 {
	counts := make([]float64, dim)
	var total float64
	for i := range counts {
		counts[i] = src.Float64()
		total += counts[i]
	}
	for i := range counts {
		counts[i] *= n / total
	}
	return counts
}

// TestMultinomialQuadMatchesDense is the acceptance check for the
// structured covariance: the O(k³) quadratic form and the materialized
// dense path must agree to 1e-12 (relative) across arities and gradients.
func TestMultinomialQuadMatchesDense(t *testing.T) {
	src := randx.NewSource(7)
	for _, k := range []int{2, 3, 4, 5} {
		dim := k * k * k
		for trial := 0; trial < 20; trial++ {
			n := 50 + 500*src.Float64()
			counts := randomMultinomial(src, dim, n)
			grad := make([]float64, dim)
			for i := range grad {
				grad[i] = 2*src.Float64() - 1
			}
			cov, err := NewMultinomialCov(counts, n)
			if err != nil {
				t.Fatal(err)
			}
			dense := DenseCov{cov.Dense()}
			fast := cov.Quad(grad)
			slow := dense.Quad(grad)
			scale := math.Abs(slow)
			if scale < 1 {
				scale = 1
			}
			if math.Abs(fast-slow) > 1e-12*scale {
				t.Errorf("k=%d trial %d: structured %v vs dense %v (diff %g)",
					k, trial, fast, slow, math.Abs(fast-slow))
			}
			fastDiag := cov.DiagAbsQuad(grad)
			slowDiag := dense.DiagAbsQuad(grad)
			if math.Abs(fastDiag-slowDiag) > 1e-12*(1+math.Abs(slowDiag)) {
				t.Errorf("k=%d trial %d: diag %v vs dense diag %v", k, trial, fastDiag, slowDiag)
			}
		}
	}
}

// TestDeltaMethodCovMatchesDense runs the full delta method through both
// covariance implementations.
func TestDeltaMethodCovMatchesDense(t *testing.T) {
	src := randx.NewSource(8)
	dim := 27
	counts := randomMultinomial(src, dim, 300)
	grad := make([]float64, dim)
	for i := range grad {
		grad[i] = 2*src.Float64() - 1
	}
	cov, err := NewMultinomialCov(counts, 300)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := DeltaMethodCov(0.5, grad, cov)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := DeltaMethodCov(0.5, grad, DenseCov{cov.Dense()})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast.Dev-slow.Dev) > 1e-12*(1+slow.Dev) {
		t.Errorf("dev %v (structured) vs %v (dense)", fast.Dev, slow.Dev)
	}
	if fast.Mean != slow.Mean {
		t.Errorf("mean %v vs %v", fast.Mean, slow.Mean)
	}
}

func TestNewMultinomialCovRejectsNonPositiveTotal(t *testing.T) {
	if _, err := NewMultinomialCov([]float64{1, 2}, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewMultinomialCov([]float64{1, 2}, -3); err == nil {
		t.Error("negative n accepted")
	}
}

func TestDeltaMethodCovDimensionMismatch(t *testing.T) {
	cov, err := NewMultinomialCov([]float64{1, 2, 3}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DeltaMethodCov(0, []float64{1, 2}, cov); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

// TestKAryParallelMatchesSerial asserts the parallel central-difference
// loop is byte-identical to the serial one at a fixed seed.
func TestKAryParallelMatchesSerial(t *testing.T) {
	for _, k := range []int{2, 3} {
		src := randx.NewSource(11)
		ds, _, err := sim.KAry{Tasks: 300, Workers: 3, ConfusionChoices: sim.PaperMatrices(k)}.Generate(src)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := ThreeWorkerKAryDelta(ds, [3]int{0, 1, 2}, KAryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := ThreeWorkerKAryDelta(ds, [3]int{0, 1, 2}, KAryOptions{Parallel: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("k=%d: parallel A3 result differs from serial", k)
		}
	}
}

// BenchmarkDeltaMethodStructured vs BenchmarkDeltaMethodDense: the same
// quadratic form through the O(k³) structured path and the O(k⁶) dense
// fallback, at arity 4 (dim 64). Run with -benchmem to see the dense
// path's k³×k³ allocation disappear.
func benchGradAndCounts(dim int) ([]float64, []float64) {
	src := randx.NewSource(9)
	counts := randomMultinomial(src, dim, 500)
	grad := make([]float64, dim)
	for i := range grad {
		grad[i] = 2*src.Float64() - 1
	}
	return grad, counts
}

func BenchmarkDeltaMethodStructured(b *testing.B) {
	const dim = 64 // arity 4: k³ count entries
	grad, counts := benchGradAndCounts(dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cov, err := NewMultinomialCov(counts, 500)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DeltaMethodCov(0.5, grad, cov); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeltaMethodDense(b *testing.B) {
	const dim = 64
	grad, counts := benchGradAndCounts(dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cov, err := NewMultinomialCov(counts, 500)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DeltaMethodCov(0.5, grad, DenseCov{cov.Dense()}); err != nil {
			b.Fatal(err)
		}
	}
}
