package core

import (
	"fmt"
	"math/bits"

	"crowdassess/internal/crowd"
)

// CompactState is the O(statistics) checkpoint of a streaming evaluator:
// the exported sufficient statistics plus the per-worker answer bitsets.
// Unlike Checkpoint's response log — whose size grows with every response
// ever ingested — a CompactState's size is bounded by the counter matrix
// and the task-indexed bitsets, so writing one costs the same whether the
// evaluator holds a thousand responses or a hundred million.
//
// The two bitset families make the state fully reconstructive for binary
// crowds: every pairwise counter is derivable from them
// (common[i][j] = |responded_i ∩ responded_j|, agree[i][j] additionally
// masks tasks where the answer bits differ), and RestoreCompact rebuilds
// the per-task response lists by scanning the bitset columns. What a
// compact checkpoint deliberately forgets is the arrival ORDER of
// responses within a task — the counters, every decision (intervals,
// spammer screen, duplicate rejection) and all future ingestion are
// order-independent, so a restored evaluator is decision-identical to the
// original; only the byte layout of a subsequent full Checkpoint log (which
// records arrival order) may differ.
type CompactState struct {
	// Stats is the exported sufficient statistics at the checkpoint cut.
	Stats *StatsExport
	// Answers[w] is worker w's answer bitset over task indices: bit set
	// means Yes, clear means No; meaningful only where Stats.Responded[w]
	// has the bit set. Little-endian 64-bit words, same layout as
	// Stats.Responded.
	Answers [][]uint64
}

// compactFrom deep-copies the answer bitsets out of a streamStats to pair
// with an already-built export.
func compactFrom(e *StatsExport, s *streamStats) *CompactState {
	cs := &CompactState{Stats: e, Answers: make([][]uint64, e.Workers)}
	for i := 0; i < e.Workers; i++ {
		cs.Answers[i] = append([]uint64(nil), s.answers[i]...)
	}
	return cs
}

// CompactCheckpoint snapshots the evaluator in O(statistics) — independent
// of how many responses were ever ingested. Pair it with a write-ahead log
// of the post-checkpoint responses (internal/store) and the evaluator is
// fully recoverable: RestoreCompact rebuilds this exact state, and
// replaying the log tail through the ordinary Add path finishes the job.
func (inc *Incremental) CompactCheckpoint() *CompactState {
	return compactFrom(inc.ExportStats(), inc.streamStats)
}

// CompactCheckpoint snapshots the sharded evaluator in O(statistics). It
// holds every shard lock for the duration (the same index-order multi-shard
// locking Checkpoint uses), so the state is one consistent cut even under
// concurrent Add traffic.
func (s *ShardedIncremental) CompactCheckpoint() *CompactState {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range s.shards {
			sh.mu.Unlock()
		}
	}()
	m := newStreamStats(s.workers)
	tasks, responses := 0, 0
	for _, sh := range s.shards {
		m.addFrom(sh.stats)
		if sh.tasks > tasks {
			tasks = sh.tasks
		}
		responses += sh.responses
	}
	return compactFrom(exportStats(m, s.workers, tasks, responses), m)
}

// validateCompact cross-checks a compact state's internal consistency: the
// pairwise counters must equal the counts the bitsets derive, the answer
// bits must be confined to attended tasks, and the scalar totals must match
// the bitsets. A corrupted or hand-edited checkpoint fails here with a
// clear error instead of skewing every future estimate.
func validateCompact(cs *CompactState) error {
	e := cs.Stats
	if e == nil {
		return fmt.Errorf("core: compact state carries no statistics")
	}
	if err := e.validate(); err != nil {
		return fmt.Errorf("core: invalid compact statistics: %w", err)
	}
	if len(cs.Answers) != e.Workers {
		return fmt.Errorf("core: compact state has %d answer bitsets, statistics claim %d workers", len(cs.Answers), e.Workers)
	}
	totalResponses, maxTask := 0, -1
	for i := 0; i < e.Workers; i++ {
		ri := dynBitset(e.Responded[i])
		yi := dynBitset(cs.Answers[i])
		for w, word := range yi {
			var attended uint64
			if w < len(ri) {
				attended = ri[w]
			}
			if word&^attended != 0 {
				return fmt.Errorf("core: worker %d has answer bits on tasks it never attended", i)
			}
		}
		for w, word := range ri {
			totalResponses += bits.OnesCount64(word)
			if word != 0 {
				if t := w*64 + 63 - bits.LeadingZeros64(word); t > maxTask {
					maxTask = t
				}
			}
		}
	}
	if totalResponses != e.Responses {
		return fmt.Errorf("core: attendance bitsets hold %d responses, statistics claim %d", totalResponses, e.Responses)
	}
	if maxTask+1 != e.Tasks {
		return fmt.Errorf("core: attendance bitsets reach task %d, statistics claim %d tasks", maxTask, e.Tasks-1)
	}
	for i := 0; i < e.Workers; i++ {
		ri, yi := dynBitset(e.Responded[i]), dynBitset(cs.Answers[i])
		for j := i + 1; j < e.Workers; j++ {
			rj, yj := dynBitset(e.Responded[j]), dynBitset(cs.Answers[j])
			common, agree := 0, 0
			n := min(len(ri), len(rj))
			for w := 0; w < n; w++ {
				both := ri[w] & rj[w]
				common += bits.OnesCount64(both)
				var xw, yw uint64
				if w < len(yi) {
					xw = yi[w]
				}
				if w < len(yj) {
					yw = yj[w]
				}
				agree += bits.OnesCount64(both &^ (xw ^ yw))
			}
			if common != e.Common[i][j] || agree != e.Agree[i][j] {
				return fmt.Errorf("core: counters for pair (%d,%d) are (%d agree, %d common), bitsets derive (%d, %d) — corrupt or inconsistent compact state",
					i, j, e.Agree[i][j], e.Common[i][j], agree, common)
			}
		}
	}
	return nil
}

// compactLog expands a validated compact state into a synthetic response
// log: ascending task index, ascending worker index within a task. The
// counters are order-independent, so replaying this canonical order through
// the ordinary Add path rebuilds the exact statistics; only the original
// arrival order within each task — which nothing downstream depends on —
// is normalized away.
func compactLog(cs *CompactState) []LoggedResponse {
	e := cs.Stats
	log := make([]LoggedResponse, 0, e.Responses)
	for t := 0; t < e.Tasks; t++ {
		word, bit := t/64, uint64(1)<<(uint(t)%64)
		for w := 0; w < e.Workers; w++ {
			ri := e.Responded[w]
			if word >= len(ri) || ri[word]&bit == 0 {
				continue
			}
			answer := crowd.No
			if yi := cs.Answers[w]; word < len(yi) && yi[word]&bit != 0 {
				answer = crowd.Yes
			}
			log = append(log, LoggedResponse{Worker: w, Task: t, Answer: answer})
		}
	}
	return log
}

// restoreCompact rebuilds an empty evaluator from a compact state: validate
// (including re-deriving every pairwise counter from the bitsets), expand
// to the canonical synthetic log, replay through the ordinary Add path, and
// verify the re-exported statistics against the checkpointed ones.
func restoreCompact(ev restorable, cs *CompactState) error {
	if err := validateCompact(cs); err != nil {
		return err
	}
	return restoreStats(ev, cs.Stats, compactLog(cs))
}

// RestoreCompact rebuilds an empty evaluator from a compact checkpoint.
// After a successful restore the evaluator is decision-identical to the one
// the checkpoint was taken from: every future Add pairs correctly against
// pre-checkpoint responders (the bitsets carry who answered what), duplicate
// rejection resumes exactly, and EvaluateAll / MajorityDisagreement produce
// bit-identical results. The evaluator must be freshly constructed; on
// error it may hold a partial replay and must be discarded.
func (inc *Incremental) RestoreCompact(cs *CompactState) error {
	return restoreCompact(inc, cs)
}

// RestoreCompact rebuilds an empty sharded evaluator from a compact
// checkpoint; see Incremental.RestoreCompact. The replay runs through the
// concurrent Add path, so shard striping matches a never-restarted
// evaluator exactly. Not safe to call concurrently with Add: restore first,
// then serve.
func (s *ShardedIncremental) RestoreCompact(cs *CompactState) error {
	return restoreCompact(s, cs)
}
