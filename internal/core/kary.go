package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"crowdassess/internal/crowd"
	"crowdassess/internal/mat"
	"crowdassess/internal/stat"
)

// KAryOptions configures ThreeWorkerKAry (Algorithm A3).
type KAryOptions struct {
	// Confidence is the interval confidence level c ∈ (0,1). Required.
	Confidence float64
	// Epsilon is the step of the central-difference derivatives over the
	// counts tensor. Zero selects the paper's 0.01.
	Epsilon float64
	// StrictSpectrum makes the spectral step fail with ErrDegenerate when
	// the second-moment matrix has non-positive eigenvalues, instead of
	// clamping them (clamping is the default; see DESIGN.md ablation #3).
	StrictSpectrum bool
	// RawEigen skips the symmetrization of R₁,₂·R₃,₂⁻¹·R₃,₁ before its
	// eigendecomposition, using the general QR path on the raw estimate
	// (ablation #3). Default false: symmetrize, which is principled because
	// the matrix is symmetric PSD in exact arithmetic (Lemma 7).
	RawEigen bool
	// Parallel fans the 2k³ independent central-difference probEstimate
	// calls out over GOMAXPROCS goroutines. Each perturbed entry is an
	// independent computation written to a distinct gradient slot, so the
	// result is byte-identical to the serial run.
	Parallel bool
}

// KAryEstimate is the result of Algorithm A3 for an ordered worker triple.
type KAryEstimate struct {
	// Prob[i] is worker i's estimated k×k response-probability matrix
	// (rows normalized to sum 1).
	Prob [3]*mat.Matrix
	// Intervals[i][j1][j2] is the confidence interval for Prob[i][j1][j2]
	// (0-based indices for classes j1+1, j2+1).
	Intervals [3][][]stat.Interval
	// Selectivity is the estimated prior over true classes.
	Selectivity []float64
}

// KAryDelta is the confidence-level-independent part of an Algorithm A3
// estimate: normalized response-probability means and deviations, from
// which Intervals derives an interval set at any level.
type KAryDelta struct {
	// Mean[i] and Dev[i] are worker i's k×k response-probability point
	// estimates and delta-method standard deviations (already normalized
	// into probability space).
	Mean [3]*mat.Matrix
	Dev  [3]*mat.Matrix
	// Selectivity is the estimated prior over true classes.
	Selectivity []float64
}

// Intervals materializes the c-confidence estimate from the deltas.
func (d *KAryDelta) Intervals(c float64) *KAryEstimate {
	k := d.Mean[0].Rows()
	out := &KAryEstimate{Selectivity: append([]float64(nil), d.Selectivity...)}
	for w := 0; w < 3; w++ {
		probs := mat.New(k, k)
		ivs := make([][]stat.Interval, k)
		for a := 0; a < k; a++ {
			ivs[a] = make([]stat.Interval, k)
			for b := 0; b < k; b++ {
				mean := d.Mean[w].At(a, b)
				de := DeltaEstimate{Mean: mean, Dev: d.Dev[w].At(a, b)}
				ivs[a][b] = de.Interval(c).ClampTo(0, 1)
				probs.Set(a, b, stat.Clamp01(mean))
			}
		}
		out.Prob[w] = probs
		out.Intervals[w] = ivs
	}
	return out
}

// ThreeWorkerKAry runs Algorithm A3 on the ordered worker triple: it
// estimates each worker's k×k response-probability matrix with confidence
// intervals, using only the three workers' responses (no gold answers).
func ThreeWorkerKAry(ds *crowd.Dataset, workers [3]int, opts KAryOptions) (*KAryEstimate, error) {
	if err := checkConfidence(opts.Confidence); err != nil {
		return nil, err
	}
	delta, err := ThreeWorkerKAryDelta(ds, workers, opts)
	if err != nil {
		return nil, err
	}
	return delta.Intervals(opts.Confidence), nil
}

// ThreeWorkerKAryDelta is ThreeWorkerKAry without committing to a confidence
// level. opts.Confidence is ignored here.
func ThreeWorkerKAryDelta(ds *crowd.Dataset, workers [3]int, opts KAryOptions) (*KAryDelta, error) {
	eps := opts.Epsilon
	if eps == 0 {
		eps = 0.01
	}
	if eps < 0 {
		return nil, fmt.Errorf("core: negative epsilon %v", eps)
	}
	k := ds.Arity()
	counts := ds.CountsTensor(workers[0], workers[1], workers[2])

	// Step 3 of Algorithm A3: the point estimate. base's matrices live in
	// baseWS, which must stay un-reset while base.v is read below; the
	// gradient loop threads separate per-goroutine workspaces.
	baseWS := mat.NewWorkspace()
	base, err := probEstimate(counts, opts, baseWS)
	if err != nil {
		return nil, err
	}

	// Step 4: covariances of the k³ all-attempted count entries (Lemma 9).
	// Restricted to entries with all three workers responding, the counts
	// are a multinomial over the n₁,₂,₃ tasks attempted by all three, so Σ
	// has the structure n·(diag(p) − p·pᵀ) and never needs materializing:
	// MultinomialCov evaluates the delta method's quadratic form in O(k³)
	// instead of the O(k⁶) time and memory of the dense matrix.
	nAll := counts.AttendanceTotal([3]bool{true, true, true})
	if nAll <= 0 {
		return nil, fmt.Errorf("core: no tasks attempted by all three workers: %w", ErrInsufficientData)
	}
	nEntries := k * k * k
	flatCounts := make([]float64, nEntries)
	for j1 := 1; j1 <= k; j1++ {
		for j2 := 1; j2 <= k; j2++ {
			for j3 := 1; j3 <= k; j3++ {
				flatCounts[((j1-1)*k+(j2-1))*k+(j3-1)] = counts.At(j1, j2, j3)
			}
		}
	}
	cov, err := NewMultinomialCov(flatCounts, nAll)
	if err != nil {
		return nil, err
	}

	// Steps 5–6: central-difference derivatives of every estimated element
	// with respect to every all-attempted count entry.
	grads := [3][]*vGrad{newVGrads(k), newVGrads(k), newVGrads(k)}
	if err := karyGradients(counts, opts, eps, k, grads); err != nil {
		return nil, err
	}

	// Step 7: mean and deviation for each V element via Theorem 1, then row
	// normalization to turn V = S^{1/2}·P estimates into P estimates.
	out := &KAryDelta{Selectivity: make([]float64, k)}
	selAccum := make([]float64, k)
	for w := 0; w < 3; w++ {
		out.Mean[w] = mat.New(k, k)
		out.Dev[w] = mat.New(k, k)
		for a := 0; a < k; a++ {
			rowSum := 0.0
			for b := 0; b < k; b++ {
				rowSum += base.v[w].At(a, b)
			}
			if rowSum <= 0 {
				return nil, fmt.Errorf("core: non-positive row sum in V%d: %w", w+1, ErrDegenerate)
			}
			// Row sum of S^{1/2}P is √s_a; accumulate the selectivity estimate.
			selAccum[a] += rowSum * rowSum / 3
			for b := 0; b < k; b++ {
				de, err := DeltaMethodCov(base.v[w].At(a, b), grads[w][a*k+b].d, cov)
				if err != nil {
					return nil, err
				}
				// Normalize into response-probability space.
				out.Mean[w].Set(a, b, de.Mean/rowSum)
				out.Dev[w].Set(a, b, de.Dev/rowSum)
			}
		}
	}
	var selTotal float64
	for _, s := range selAccum {
		selTotal += s
	}
	if selTotal > 0 {
		for a := 0; a < k; a++ {
			out.Selectivity[a] = selAccum[a] / selTotal
		}
	}
	return out, nil
}

// karyGradients fills grads with the central-difference derivatives of
// every V element with respect to every all-attempted count entry: for each
// of the k³ entries it runs probEstimate on the ±ε perturbed tensor (steps
// 5–6 of Algorithm A3). The 2k³ estimator calls are independent, so with
// opts.Parallel they are chunked over GOMAXPROCS goroutines, each owning a
// private tensor clone and a private mat.Workspace; every entry writes only
// its own gradient slot, so the parallel result is byte-identical to the
// serial one. The workspace is reset once per entry and serves both the +ε
// and −ε estimates, so the whole loop runs allocation-free after the first
// entry warms the pools.
func karyGradients(counts *crowd.Tensor3, opts KAryOptions, eps float64, k int, grads [3][]*vGrad) error {
	nEntries := k * k * k
	entryGrad := func(work *crowd.Tensor3, ws *mat.Workspace, e int) error {
		j1 := e/(k*k) + 1
		j2 := (e/k)%k + 1
		j3 := e%k + 1
		// Save/restore the exact value rather than adding and subtracting ε:
		// (c+ε)−2ε+ε ≠ c in floating point, and the residue would both
		// pollute later entries' derivatives and make results depend on how
		// entries are chunked across goroutines.
		//
		// One Reset covers both estimates: plus's matrices must stay valid
		// while minus is computed, so the workspace is only rewound between
		// entries, never between the two perturbed calls.
		ws.Reset()
		orig := work.At(j1, j2, j3)
		work.Set(j1, j2, j3, orig+eps)
		plus, errP := probEstimate(work, opts, ws)
		work.Set(j1, j2, j3, orig-eps)
		minus, errM := probEstimate(work, opts, ws)
		work.Set(j1, j2, j3, orig)
		if errP != nil || errM != nil {
			return fmt.Errorf("core: perturbed estimate failed: %w", ErrDegenerate)
		}
		for w := 0; w < 3; w++ {
			for a := 0; a < k; a++ {
				plusRow := plus.v[w].RowView(a)
				minusRow := minus.v[w].RowView(a)
				for b := 0; b < k; b++ {
					d := (plusRow[b] - minusRow[b]) / (2 * eps)
					grads[w][a*k+b].d[e] = d
				}
			}
		}
		return nil
	}

	workers := 1
	if opts.Parallel {
		workers = runtime.GOMAXPROCS(0)
		if workers > nEntries {
			workers = nEntries
		}
	}
	if workers <= 1 {
		work := counts.Clone()
		ws := mat.NewWorkspace()
		for e := 0; e < nEntries; e++ {
			if err := entryGrad(work, ws, e); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (nEntries + workers - 1) / workers
	for g := 0; g < workers; g++ {
		lo := g * chunk
		hi := lo + chunk
		if hi > nEntries {
			hi = nEntries
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(g, lo, hi int) {
			defer wg.Done()
			work := counts.Clone()
			ws := mat.NewWorkspace()
			for e := lo; e < hi; e++ {
				if err := entryGrad(work, ws, e); err != nil {
					errs[g] = err
					return
				}
			}
		}(g, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// vGrad carries the gradient of one V element over the k³ count entries.
type vGrad struct{ d []float64 }

func newVGrads(k int) []*vGrad {
	out := make([]*vGrad, k*k)
	for i := range out {
		out[i] = &vGrad{d: make([]float64, k*k*k)}
	}
	return out
}

// vEstimates holds the three V_i = S^{1/2}·P_i point estimates.
type vEstimates struct {
	v [3]*mat.Matrix
}

// probEstimate implements the paper's ProbEstimate procedure: from the
// counts tensor it recovers estimates of V_i = S^{1/2}_D·P_i for the three
// workers using the spectral decomposition of pairwise response-frequency
// matrices (Lemmas 6–8).
//
// Every temporary — and the returned matrices — comes from ws, so a warmed
// workspace makes the call allocation-free in steady state. The caller owns
// the Reset discipline: results are valid until ws is next reset, and
// probEstimate itself never rewinds the workspace (the gradient loop needs
// the +ε and −ε results alive simultaneously).
func probEstimate(counts *crowd.Tensor3, opts KAryOptions, ws *mat.Workspace) (vEstimates, error) {
	k := counts.Arity()

	// Step 1: attendance totals.
	nAll := counts.AttendanceTotal([3]bool{true, true, true})
	n12 := counts.AttendanceTotal([3]bool{true, true, false})
	n23 := counts.AttendanceTotal([3]bool{false, true, true})
	n31 := counts.AttendanceTotal([3]bool{true, false, true})
	if nAll <= 0 {
		return vEstimates{}, fmt.Errorf("core: no tasks attempted by all three workers: %w", ErrInsufficientData)
	}

	// Step 2: response-frequency matrices.
	r12 := ws.Get(k, k)
	r23 := ws.Get(k, k)
	r31 := ws.Get(k, k)
	den12, den23, den31 := nAll+n12, nAll+n23, nAll+n31
	for a := 1; a <= k; a++ {
		row12 := r12.RowView(a - 1)
		row23 := r23.RowView(a - 1)
		row31 := r31.RowView(a - 1)
		for b := 1; b <= k; b++ {
			var s12, s23, s31 float64
			for K := 0; K <= k; K++ {
				s12 += counts.At(a, b, K)
				s23 += counts.At(K, a, b)
				s31 += counts.At(b, K, a)
			}
			row12[b-1] = s12 / den12
			row23[b-1] = s23 / den23
			row31[b-1] = s31 / den31
		}
	}
	r13 := ws.Get(k, k)
	mat.TTo(r13, r31)
	r32 := ws.Get(k, k)
	mat.TTo(r32, r23)

	// Step 3: eigendecomposition of M = R₁,₂·R₃,₂⁻¹·R₃,₁ = V₁ᵀV₁ (Lemma 7).
	lu := ws.LU(k)
	r32inv := ws.Get(k, k)
	if err := mat.InverseTo(r32inv, r32, lu); err != nil {
		return vEstimates{}, fmt.Errorf("core: R₃,₂ singular: %w", ErrDegenerate)
	}
	chain := ws.Get(k, k) // shared scratch for the A·B·C products below
	m := ws.Get(k, k)
	mat.MulTo(chain, r12, r32inv)
	mat.MulTo(m, chain, r31)

	// Step 4: U₁ = E·D^{1/2}·E⁻¹, the square root of M. M is symmetric PSD
	// in exact arithmetic; by default we symmetrize the estimate and use the
	// orthogonal Jacobi decomposition (E⁻¹ = Eᵀ).
	u1 := ws.Get(k, k)
	if opts.RawEigen {
		eg, err := m.EigenDecomposeWS(ws)
		if err != nil {
			return vEstimates{}, fmt.Errorf("core: eigen of R-product: %v: %w", err, ErrDegenerate)
		}
		if err := clampSpectrumInPlace(eg.Values, opts.StrictSpectrum); err != nil {
			return vEstimates{}, err
		}
		einv := ws.Get(k, k)
		if err := mat.InverseTo(einv, eg.Vectors, lu); err != nil {
			return vEstimates{}, fmt.Errorf("core: eigenvectors singular: %w", ErrDegenerate)
		}
		scaleColsSqrt(chain, eg.Vectors, eg.Values)
		mat.MulTo(u1, chain, einv)
	} else {
		eg, err := m.EigenSymWS(ws)
		if err != nil {
			return vEstimates{}, err
		}
		if err := clampSpectrumInPlace(eg.Values, opts.StrictSpectrum); err != nil {
			return vEstimates{}, err
		}
		et := ws.Get(k, k)
		mat.TTo(et, eg.Vectors)
		scaleColsSqrt(chain, eg.Vectors, eg.Values)
		mat.MulTo(u1, chain, et)
	}

	// U₂ = (U₁ᵀ)⁻¹·R₁,₂, so that V_i = U·U_i for a common unitary U
	// (Lemma 7). U₃ is never needed: step 7 recovers V₂ and V₃ from V₁.
	u1t := ws.Get(k, k)
	mat.TTo(u1t, u1)
	u1invT := ws.Get(k, k)
	if err := mat.InverseTo(u1invT, u1t, lu); err != nil {
		return vEstimates{}, fmt.Errorf("core: U₁ singular: %w", ErrDegenerate)
	}
	u2 := ws.Get(k, k)
	mat.MulTo(u2, u1invT, r12)
	u2inv := ws.Get(k, k)
	if err := mat.InverseTo(u2inv, u2, lu); err != nil {
		return vEstimates{}, fmt.Errorf("core: U₂ singular: %w", ErrDegenerate)
	}

	// Steps 5–6: recover the unitary U from the conditional response
	// frequencies, once per conditioning response j₃ of worker 3, and
	// average the aligned V₁ estimates.
	v1sum := ws.Get(k, k)
	r123 := ws.Get(k, k)
	b := ws.Get(k, k)
	usable := 0
	for j3 := 1; j3 <= k; j3++ {
		var nj3 float64
		for a := 1; a <= k; a++ {
			for bb := 1; bb <= k; bb++ {
				nj3 += counts.At(a, bb, j3)
			}
		}
		if nj3 <= 0 {
			continue // worker 3 never answered j₃ on fully-attempted tasks
		}
		for a := 1; a <= k; a++ {
			row := r123.RowView(a - 1)
			for bb := 1; bb <= k; bb++ {
				row[bb-1] = counts.At(a, bb, j3) / nj3
			}
		}
		// B = (U₁ᵀ)⁻¹·R₁,₂|₃,j₃·U₂⁻¹ = U⁻¹·(W₃,j₃/p(j₃))·U (Lemma 8): its
		// eigenvector matrix X satisfies U = rows-normalized X⁻¹ up to row
		// permutation and sign.
		mat.MulTo(chain, u1invT, r123)
		mat.MulTo(b, chain, u2inv)
		eg, err := b.EigenDecomposeWS(ws)
		if err != nil {
			continue // complex pair for this j₃; skip it
		}
		// The eigenvalues of B are worker 3's response probabilities for j₃
		// (rescaled); a (near-)repeated eigenvalue — e.g. two true classes
		// that both almost never elicit response j₃ — leaves the
		// corresponding eigenvectors unidentifiable, so that conditioning
		// response contributes no usable estimate.
		if spectrumDegenerate(eg.Values) {
			continue
		}
		u := ws.Get(k, k)
		if err := mat.InverseTo(u, eg.Vectors, lu); err != nil {
			continue
		}
		normalizeRowsInPlace(u)
		v1 := ws.Get(k, k)
		mat.MulTo(v1, u, u1)
		fixSigns(v1, u)
		aligned := alignRowsWS(v1, ws)
		mat.PlusTo(v1sum, v1sum, aligned)
		usable++
	}
	if usable == 0 {
		return vEstimates{}, fmt.Errorf("core: no usable conditional decomposition: %w", ErrDegenerate)
	}
	v1 := ws.Get(k, k)
	mat.ScaleTo(v1, v1sum, 1/float64(usable))

	// Step 7: V₂ = (V₁ᵀ)⁻¹·R₁,₂ and V₃ = (V₁ᵀ)⁻¹·R₁,₃.
	v1t := ws.Get(k, k)
	mat.TTo(v1t, v1)
	v1invT := ws.Get(k, k)
	if err := mat.InverseTo(v1invT, v1t, lu); err != nil {
		return vEstimates{}, fmt.Errorf("core: V₁ singular: %w", ErrDegenerate)
	}
	v2 := ws.Get(k, k)
	mat.MulTo(v2, v1invT, r12)
	v3 := ws.Get(k, k)
	mat.MulTo(v3, v1invT, r13)
	return vEstimates{v: [3]*mat.Matrix{v1, v2, v3}}, nil
}

// scaleColsSqrt writes E·diag(√vals) into dst: column j of e scaled by
// √vals[j]. This is the fused form of Mul with a Diagonal matrix.
func scaleColsSqrt(dst, e *mat.Matrix, vals []float64) {
	k := e.Rows()
	for i := 0; i < k; i++ {
		src := e.RowView(i)
		out := dst.RowView(i)
		for j := 0; j < k; j++ {
			out[j] = src[j] * math.Sqrt(vals[j])
		}
	}
}

// spectrumDegenerate reports whether any two eigenvalues are too close for
// their eigenvectors to be individually identifiable. Values arrive sorted
// descending from EigenDecompose.
func spectrumDegenerate(vals []float64) bool {
	if len(vals) < 2 {
		return false
	}
	spread := vals[0] - vals[len(vals)-1]
	if spread <= 0 {
		return true
	}
	for i := 1; i < len(vals); i++ {
		if vals[i-1]-vals[i] < 1e-6*spread {
			return true
		}
	}
	return false
}

// clampSpectrumInPlace guards the square root of the second-moment
// spectrum: eigenvalues are clamped below at a small fraction of the
// dominant one (or rejected under StrictSpectrum). The clamp happens in
// vals itself — the callers own the slice (it comes from their workspace)
// and never need the raw spectrum afterwards.
func clampSpectrumInPlace(vals []float64, strict bool) error {
	if len(vals) == 0 {
		return fmt.Errorf("core: empty spectrum: %w", ErrDegenerate)
	}
	max := vals[0]
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	if max <= 0 {
		return fmt.Errorf("core: non-positive spectrum: %w", ErrDegenerate)
	}
	floor := 1e-9 * max
	for i, v := range vals {
		if v < floor {
			if strict {
				return fmt.Errorf("core: eigenvalue %g below floor: %w", v, ErrDegenerate)
			}
			vals[i] = floor
		}
	}
	return nil
}

// clampSpectrum is the copying form of clampSpectrumInPlace, for callers
// that do not own the slice.
func clampSpectrum(vals []float64, strict bool) ([]float64, error) {
	out := append([]float64(nil), vals...)
	if err := clampSpectrumInPlace(out, strict); err != nil {
		return nil, err
	}
	return out, nil
}

// normalizeRowsInPlace scales each row of m to unit L2 norm, removing the
// arbitrary per-eigenvector scaling of the spectral step.
func normalizeRowsInPlace(m *mat.Matrix) {
	for i := 0; i < m.Rows(); i++ {
		row := m.RowView(i)
		var s float64
		for _, v := range row {
			s += v * v
		}
		s = math.Sqrt(s)
		if s == 0 {
			continue
		}
		for j := range row {
			row[j] /= s
		}
	}
}

// normalizeRows is the non-mutating form of normalizeRowsInPlace.
func normalizeRows(m *mat.Matrix) *mat.Matrix {
	out := m.Clone()
	normalizeRowsInPlace(out)
	return out
}

// fixSigns flips rows of v1 (and the matching rows of u) whose sum is
// negative: V₁ = S^{1/2}·P₁ has nonnegative entries, so a negative row sum
// means the eigenvector's sign was flipped.
func fixSigns(v1, u *mat.Matrix) {
	for i := 0; i < v1.Rows(); i++ {
		rowV := v1.RowView(i)
		var s float64
		for _, v := range rowV {
			s += v
		}
		if s < 0 {
			rowU := u.RowView(i)
			for j := range rowV {
				rowV[j] = -rowV[j]
				rowU[j] = -rowU[j]
			}
		}
	}
}

// alignRowsWS permutes rows so each row's dominant element lands on the
// diagonal (the paper's step 6.d: worker matrices are diagonally dominant
// per row). A greedy assignment on the globally largest entries resolves
// conflicts deterministically. Scratch and result come from ws.
func alignRowsWS(v *mat.Matrix, ws *mat.Workspace) *mat.Matrix {
	k := v.Rows()
	taken := ws.GetInts(2 * k) // rows in [:k], columns in [k:], 1 = taken
	rowTaken := taken[:k]
	colTaken := taken[k:]
	position := ws.GetInts(k) // position[c] = source row placed at row c
	for step := 0; step < k; step++ {
		bestR, bestC, bestV := -1, -1, math.Inf(-1)
		for r := 0; r < k; r++ {
			if rowTaken[r] != 0 {
				continue
			}
			row := v.RowView(r)
			for c := 0; c < k; c++ {
				if colTaken[c] != 0 {
					continue
				}
				if row[c] > bestV {
					bestR, bestC, bestV = r, c, row[c]
				}
			}
		}
		rowTaken[bestR] = 1
		colTaken[bestC] = 1
		position[bestC] = bestR
	}
	out := ws.Get(k, k)
	for c := 0; c < k; c++ {
		copy(out.RowView(c), v.RowView(position[c]))
	}
	return out
}

// alignRows is alignRowsWS with throwaway scratch, kept for one-shot
// callers and tests.
func alignRows(v *mat.Matrix) *mat.Matrix {
	return alignRowsWS(v, mat.NewWorkspace())
}
