package core

import (
	"fmt"

	"crowdassess/internal/crowd"
	"crowdassess/internal/mat"
	"crowdassess/internal/stat"
)

// tripleStats bundles everything the 3-worker estimator derives from a
// worker triple: agreement rates, common-task counts, the per-worker error
// estimates, gradients and the 3×3 agreement covariance matrix.
type tripleStats struct {
	// q[0] = q̂_{a,b}, q[1] = q̂_{a,c}, q[2] = q̂_{b,c} for the triple (a,b,c).
	q [3]float64
	// common[0] = c_{a,b}, common[1] = c_{a,c}, common[2] = c_{b,c}.
	common [3]int
	// common3 = c_{a,b,c}.
	common3 int
	// p[0..2] = estimated error rates of a, b, c.
	p [3]float64
	// grad[w] holds ∂p_w/∂(q_ab, q_ac, q_bc).
	grad [3][3]float64
	// cov is the 3×3 covariance of (Q_ab, Q_ac, Q_bc) per Lemma 3.
	cov *mat.Matrix
}

// pairIndex maps, for worker w ∈ {0,1,2} of a triple, the positions in the
// q-vector (q_ab, q_ac, q_bc) of: the two rates involving w and the one
// opposite rate. E.g. worker 0 (=a) is in q_ab (0) and q_ac (1); opposite
// is q_bc (2).
var pairIndex = [3][3]int{
	{0, 1, 2}, // worker a: own pairs ab, ac; opposite bc
	{0, 2, 1}, // worker b: own pairs ab, bc; opposite ac
	{1, 2, 0}, // worker c: own pairs ac, bc; opposite ab
}

// pairSource provides pairwise agreement statistics and common-task counts.
// Algorithm A2 uses a precomputed table (fullStatsCache) because its
// covariance loops touch every pair repeatedly; the 3-worker entry point
// reads the dataset directly.
type pairSource interface {
	pair(i, j int) crowd.PairStats
	common3(i, j, k int) int
}

// fullStatsCache precomputes the pairwise agreement table and the
// attendance bitsets of a dataset.
type fullStatsCache struct {
	pairs [][]crowd.PairStats
	att   *crowd.Attendance
}

func newFullStatsCache(ds *crowd.Dataset) *fullStatsCache {
	att := ds.Attendance()
	return &fullStatsCache{pairs: att.PairMatrix(), att: att}
}

func (c *fullStatsCache) pair(i, j int) crowd.PairStats { return c.pairs[i][j] }
func (c *fullStatsCache) common3(i, j, k int) int       { return c.att.Common3(i, j, k) }

// directSource computes statistics on demand, for one-shot triples.
type directSource struct{ ds *crowd.Dataset }

func (d directSource) pair(i, j int) crowd.PairStats { return d.ds.Pair(i, j) }
func (d directSource) common3(i, j, k int) int       { return d.ds.CommonTriple(i, j, k) }

// newTripleStats computes the full statistics for workers (a, b, c).
// It returns ErrInsufficientData when some pair shares no tasks and
// ErrDegenerate when an agreement rate is at or below ½.
func newTripleStats(src pairSource, a, b, c int) (*tripleStats, error) {
	st := &tripleStats{}
	pairs := [3][2]int{{a, b}, {a, c}, {b, c}}
	for i, pr := range pairs {
		ps := src.pair(pr[0], pr[1])
		if ps.Common == 0 {
			return nil, fmt.Errorf("core: workers %d and %d share no tasks: %w", pr[0], pr[1], ErrInsufficientData)
		}
		st.common[i] = ps.Common
		st.q[i] = ps.Rate()
	}
	st.common3 = src.common3(a, b, c)

	// Error rates and gradients for each of the three workers (Equation 1 /
	// Lemma 2 with arguments permuted per worker).
	for w := 0; w < 3; w++ {
		own1, own2, opp := pairIndex[w][0], pairIndex[w][1], pairIndex[w][2]
		p, err := fBinary(st.q[own1], st.q[own2], st.q[opp])
		if err != nil {
			return nil, err
		}
		d1, d2, dOpp, err := fBinaryGrad(st.q[own1], st.q[own2], st.q[opp])
		if err != nil {
			return nil, err
		}
		st.p[w] = p
		st.grad[w][own1] = d1
		st.grad[w][own2] = d2
		st.grad[w][opp] = dOpp
	}

	// Covariance matrix of (Q_ab, Q_ac, Q_bc) per Lemma 3. The shared worker
	// of pairs (ab, ac) is a; of (ab, bc) is b; of (ac, bc) is c. The
	// "other" agreement rate is the one not involving the shared worker.
	st.cov = mat.New(3, 3)
	for i := 0; i < 3; i++ {
		st.cov.Set(i, i, pairVariance(st.q[i], st.common[i]))
	}
	type cross struct{ i, j, sharedWorker, otherQ int }
	for _, x := range []cross{
		{0, 1, 0, 2}, // (q_ab, q_ac): shared a, other q_bc
		{0, 2, 1, 1}, // (q_ab, q_bc): shared b, other q_ac
		{1, 2, 2, 0}, // (q_ac, q_bc): shared c, other q_ab
	} {
		cv := pairCovariance(st.p[x.sharedWorker], st.q[x.otherQ],
			st.common3, st.common[x.i], st.common[x.j])
		st.cov.Set(x.i, x.j, cv)
		st.cov.Set(x.j, x.i, cv)
	}
	return st, nil
}

// estimate runs the delta method for worker w ∈ {0,1,2} of the triple.
func (st *tripleStats) estimate(w int) (DeltaEstimate, error) {
	return DeltaMethod(st.p[w], st.grad[w][:], st.cov)
}

// ThreeWorkerBinary computes c-confidence intervals for the error rates of
// the three given workers from their (possibly non-regular) binary
// responses. This is Algorithm A1 (Section III-A) with the Lemma 3
// covariances, which subsume the regular case (Section III-B). Intervals
// are clamped to [0, 1].
func ThreeWorkerBinary(ds *crowd.Dataset, workers [3]int, c float64) ([3]stat.Interval, error) {
	var out [3]stat.Interval
	if ds.Arity() != 2 {
		return out, fmt.Errorf("core: ThreeWorkerBinary needs a binary dataset, got arity %d", ds.Arity())
	}
	if err := checkConfidence(c); err != nil {
		return out, err
	}
	st, err := newTripleStats(directSource{ds}, workers[0], workers[1], workers[2])
	if err != nil {
		return out, err
	}
	for w := 0; w < 3; w++ {
		est, err := st.estimate(w)
		if err != nil {
			return out, err
		}
		out[w] = est.Interval(c).ClampTo(0, 1)
	}
	return out, nil
}

func checkConfidence(c float64) error {
	if !(c > 0 && c < 1) {
		return fmt.Errorf("core: confidence level %v outside (0, 1)", c)
	}
	return nil
}
