package core

import (
	"testing"

	"crowdassess/internal/mat"
)

// Allocation-regression tests for the zero-allocation spectral pipeline:
// these run under plain `go test ./...`, so tier-1 CI catches any change
// that reintroduces per-call heap traffic on the A3/A2 hot paths.

// TestProbEstimateSteadyStateZeroAllocs asserts that after one warm-up call
// populates the workspace pools, probEstimate — the function the A3
// gradient loop calls 2k³+1 times per response-matrix entry — allocates
// nothing, across arities and both spectral paths.
func TestProbEstimateSteadyStateZeroAllocs(t *testing.T) {
	for _, k := range []int{2, 3, 4, 6} {
		for _, raw := range []bool{false, true} {
			opts := KAryOptions{RawEigen: raw}
			counts := synthCounts(k, 5000)
			ws := mat.NewWorkspace()
			// Warm-up: grow every pool to the call's working set.
			ws.Reset()
			if _, err := probEstimate(counts, opts, ws); err != nil {
				t.Fatalf("k=%d raw=%v: %v", k, raw, err)
			}
			allocs := testing.AllocsPerRun(20, func() {
				ws.Reset()
				if _, err := probEstimate(counts, opts, ws); err != nil {
					t.Fatalf("k=%d raw=%v: %v", k, raw, err)
				}
			})
			if allocs != 0 {
				t.Errorf("k=%d raw=%v: steady-state probEstimate allocates %.1f times per call, want 0", k, raw, allocs)
			}
		}
	}
}

// TestGradientEntryZeroAllocs exercises the exact shape of the gradient
// loop body: one Reset serving a +ε and a −ε estimate whose results are
// read together. This is the steady state the 2k³ central-difference calls
// run in.
func TestGradientEntryZeroAllocs(t *testing.T) {
	const k = 3
	counts := synthCounts(k, 5000)
	ws := mat.NewWorkspace()
	eps := 0.01
	entry := func() {
		ws.Reset()
		orig := counts.At(1, 2, 3)
		counts.Set(1, 2, 3, orig+eps)
		plus, errP := probEstimate(counts, KAryOptions{}, ws)
		counts.Set(1, 2, 3, orig-eps)
		minus, errM := probEstimate(counts, KAryOptions{}, ws)
		counts.Set(1, 2, 3, orig)
		if errP != nil || errM != nil {
			t.Fatal(errP, errM)
		}
		if plus.v[0].At(0, 0) == minus.v[0].At(0, 0) && plus.v[0].At(0, 0) == 0 {
			t.Fatal("implausible zero estimates")
		}
	}
	entry() // warm-up
	if allocs := testing.AllocsPerRun(20, entry); allocs != 0 {
		t.Errorf("gradient entry allocates %.1f times, want 0", allocs)
	}
}

// TestLemma4QuadZeroAllocs asserts the structured Lemma-4 quadratic form —
// Theorem 1's dᵀΣd on the A2 hot path — is allocation-free.
func TestLemma4QuadZeroAllocs(t *testing.T) {
	cov := buildLemma4(t, 23, 15, 200, 0)
	d := uniformWeights(cov.Dim())
	var sink float64
	if allocs := testing.AllocsPerRun(50, func() {
		sink = cov.Quad(d)
		sink += cov.DiagAbsQuad(d)
	}); allocs != 0 {
		t.Errorf("Lemma-4 quad form allocates %.1f times, want 0", allocs)
	}
	_ = sink
}
