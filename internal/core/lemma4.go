package core

import (
	"fmt"

	"crowdassess/internal/mat"
)

// Lemma4Cov is the structured form of Algorithm A2's l×l covariance matrix
// of per-triple error-rate estimates (Lemma 4). Its entries are fully
// determined by O(l + m) inputs — each triple's delta-method variance and
// own-pair gradients, the evaluated worker's pooled error rate, and the
// pairwise agreement statistics already cached for the whole dataset — so
// the quadratic form dᵀΣd of the delta method (Theorem 1) is evaluated
// directly from those inputs and the dense matrix is never materialized on
// the estimation path. (The Lemma 5 weight solve still needs an explicit
// matrix; MaterializeInto writes it into caller-owned workspace scratch.)
//
// Entry values are computed by exactly the arithmetic the dense
// construction used, in the same order, so the structured and dense paths
// agree bit-for-bit entry-wise and to summation-order roundoff (≤ 1e-12
// relative, tested) in the quadratic form.
type Lemma4Cov struct {
	src    agreementSource
	worker int     // the evaluated worker i
	pPool  float64 // pooled error-rate estimate p̂_i used inside C(i,·,·)

	diag   []float64 // per-triple delta-method variance (Lemma 4 diagonal)
	d1, d2 []float64 // ∂p_i/∂q_{i,j1}, ∂p_i/∂q_{i,j2} per triple
	j1, j2 []int     // the triple's partner workers

	// dense caches the materialized matrix once Materialize has run: each
	// entry costs four popcount-backed cache lookups, so after the Lemma 5
	// solve has forced materialization anyway, Quad reads the cache instead
	// of regenerating entries. Entries are identical either way.
	dense *mat.Matrix
}

// newLemma4Cov returns an empty covariance for the given worker, its
// per-triple slices drawn from ws (capacity for up to `capacity` triples);
// triples are appended with add in the order they were formed.
func newLemma4Cov(src agreementSource, worker int, pPool float64, capacity int, ws *mat.Workspace) *Lemma4Cov {
	ints := ws.GetInts(2 * capacity)
	return &Lemma4Cov{
		src:    src,
		worker: worker,
		pPool:  pPool,
		diag:   ws.GetVec(capacity)[:0],
		d1:     ws.GetVec(capacity)[:0],
		d2:     ws.GetVec(capacity)[:0],
		j1:     ints[:0:capacity],
		j2:     ints[capacity:capacity],
	}
}

// add appends one triple's contribution: its delta-method variance and the
// derivatives with respect to the two agreement rates involving worker i,
// tagged with the partner workers j1 and j2.
func (c *Lemma4Cov) add(variance, d1 float64, j1 int, d2 float64, j2 int) {
	c.diag = append(c.diag, variance)
	c.d1 = append(c.d1, d1)
	c.d2 = append(c.d2, d2)
	c.j1 = append(c.j1, j1)
	c.j2 = append(c.j2, j2)
}

// Dim implements CovQuadForm.
func (c *Lemma4Cov) Dim() int { return len(c.diag) }

// entry returns Σ[k1][k2] for k1 ≠ k2: the cross-triple covariance of
// Lemma 4, summed over the four (own-pair of k1) × (own-pair of k2)
// derivative products. Arguments are normalized to k1 < k2 so both
// triangle entries are the identical float the dense construction stored.
func (c *Lemma4Cov) entry(k1, k2 int) float64 {
	if k1 > k2 {
		k1, k2 = k2, k1
	}
	var v float64
	v += c.d1[k1] * c.d1[k2] * lemma4C(c.src, c.worker, c.j1[k1], c.j1[k2], c.pPool)
	v += c.d1[k1] * c.d2[k2] * lemma4C(c.src, c.worker, c.j1[k1], c.j2[k2], c.pPool)
	v += c.d2[k1] * c.d1[k2] * lemma4C(c.src, c.worker, c.j2[k1], c.j1[k2], c.pPool)
	v += c.d2[k1] * c.d2[k2] * lemma4C(c.src, c.worker, c.j2[k1], c.j2[k2], c.pPool)
	return v
}

// Quad implements CovQuadForm without materializing the matrix: entries
// are generated on the fly (or read from the Materialize cache when the
// weight solve already paid for them). The generate path walks only the
// upper triangle, folding each symmetric pair in as 2·dᵢ·dⱼ·Σᵢⱼ, so every
// entry — four popcount-backed cache lookups — is computed exactly once,
// matching the cost of the dense build it replaces. O(l²) time, zero
// allocations; agrees with the dense accumulation order to roundoff
// (≤ 1e-12 relative, tested).
func (c *Lemma4Cov) Quad(d []float64) float64 {
	if c.dense != nil {
		return DenseCov{c.dense}.Quad(d)
	}
	n := len(d)
	var v float64
	for i := 0; i < n; i++ {
		di := d[i]
		if di == 0 {
			continue
		}
		v += di * di * c.diag[i]
		for j := i + 1; j < n; j++ {
			if d[j] == 0 {
				continue
			}
			v += 2 * di * d[j] * c.entry(i, j)
		}
	}
	return v
}

// DiagAbsQuad implements CovQuadForm.
func (c *Lemma4Cov) DiagAbsQuad(d []float64) float64 {
	var s float64
	for i, di := range d {
		s += di * di * abs(c.diag[i])
	}
	return s
}

// Materialize builds the dense matrix into ws scratch once, caches it for
// subsequent Quad calls, and returns it (the Lemma 5 solve needs the
// explicit matrix).
func (c *Lemma4Cov) Materialize(ws *mat.Workspace) *mat.Matrix {
	if c.dense == nil {
		d := ws.Get(c.Dim(), c.Dim())
		c.MaterializeInto(d)
		c.dense = d
	}
	return c.dense
}

// MaterializeInto writes the dense l×l matrix into dst (typically workspace
// scratch): needed by the Lemma 5 weight solve and by the dense-agreement
// tests. It does not touch the Materialize cache. It panics unless dst is
// l×l.
func (c *Lemma4Cov) MaterializeInto(dst *mat.Matrix) {
	l := len(c.diag)
	if dst.Rows() != l || dst.Cols() != l {
		panic(mat.ErrShape)
	}
	for k1 := 0; k1 < l; k1++ {
		dst.Set(k1, k1, c.diag[k1])
		for k2 := k1 + 1; k2 < l; k2++ {
			v := c.entry(k1, k2)
			dst.Set(k1, k2, v)
			dst.Set(k2, k1, v)
		}
	}
}

// optimalWeightsCov implements Lemma 5 against the structured covariance:
// with B = C⁻¹𝟙, the variance-minimizing weights summing to 1 are
// A = B/‖B‖₁. The dense matrix is materialized only here — into reusable
// workspace scratch, not a fresh allocation — because the solve genuinely
// needs it; the returned slice is workspace-owned.
func optimalWeightsCov(c *Lemma4Cov, ws *mat.Workspace) ([]float64, error) {
	return solveWeights(c.Materialize(ws), ws)
}

// optimalWeights is the dense-input form of Lemma 5, for callers that
// already hold an explicit covariance matrix.
func optimalWeights(cov *mat.Matrix) ([]float64, error) {
	w, err := solveWeights(cov, mat.NewWorkspace())
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), w...), nil
}

// solveWeights solves C·b = 𝟙 with workspace scratch and normalizes b by
// its sum. (The paper normalizes by the L1 norm; for a PSD C the entries
// of B share a sign, so this equals B/Σ B.) The returned slice is
// workspace-owned.
func solveWeights(cov *mat.Matrix, ws *mat.Workspace) ([]float64, error) {
	l := cov.Rows()
	f := ws.LU(l)
	if err := f.Refactor(cov); err != nil {
		return nil, err
	}
	ones := ws.GetVec(l)
	for i := range ones {
		ones[i] = 1
	}
	b := ws.GetVec(l)
	f.SolveInto(ones, b)
	var sum float64
	for _, v := range b {
		sum += v
	}
	if sum == 0 {
		return nil, fmt.Errorf("core: weight normalization is zero: %w", ErrDegenerate)
	}
	for i := range b {
		b[i] /= sum
	}
	return b, nil
}
