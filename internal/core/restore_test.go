package core

import (
	"math"
	"slices"
	"strings"
	"testing"

	"crowdassess/internal/crowd"
	"crowdassess/internal/randx"
	"crowdassess/internal/sim"
)

// streamingFactory builds an empty evaluator of one of the two streaming
// implementations, exposing the checkpoint hooks the dist layer uses.
type checkpointable interface {
	StreamingEvaluator
	Checkpoint() (*StatsExport, []LoggedResponse)
	RestoreStats(e *StatsExport, log []LoggedResponse) error
	DisagreementCounts() (attempted, disagree []int)
	ExportStats() *StatsExport
}

func checkpointFactories(t *testing.T, workers int) map[string]func() checkpointable {
	t.Helper()
	return map[string]func() checkpointable{
		"incremental": func() checkpointable {
			inc, err := NewIncremental(workers)
			if err != nil {
				t.Fatal(err)
			}
			return inc
		},
		"sharded": func() checkpointable {
			s, err := NewShardedIncremental(workers, 3)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	}
}

func restoreStream(t *testing.T, seed int64) []submission {
	t.Helper()
	src := randx.NewSource(900 + seed)
	ds, _, err := sim.Binary{Tasks: 120, Workers: 7, Density: 0.6}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	return shuffledStream(t, ds, seed)
}

// TestCheckpointRestoreMidStream is the fault-tolerance property: cut the
// stream at an arbitrary point (never aligned to task boundaries),
// checkpoint, rebuild a fresh evaluator from the checkpoint, replay the
// remainder, and require bit-identical estimates, disagreement screens and
// duplicate rejection versus the uninterrupted evaluator.
func TestCheckpointRestoreMidStream(t *testing.T) {
	const workers = 7
	opts := EvalOptions{Confidence: 0.9}
	for name, mk := range checkpointFactories(t, workers) {
		for seed := int64(0); seed < 3; seed++ {
			subs := restoreStream(t, seed)
			cut := len(subs) * (2 + int(seed)) / 7

			uninterrupted := mk()
			for _, s := range subs {
				if err := uninterrupted.Add(s.w, s.t, s.r); err != nil {
					t.Fatal(err)
				}
			}

			first := mk()
			for _, s := range subs[:cut] {
				if err := first.Add(s.w, s.t, s.r); err != nil {
					t.Fatal(err)
				}
			}
			e, log := first.Checkpoint()
			if len(log) != cut || e.Responses != cut {
				t.Fatalf("%s seed %d: checkpoint carries %d/%d responses, want %d", name, seed, len(log), e.Responses, cut)
			}

			restored := mk()
			if err := restored.RestoreStats(e, log); err != nil {
				t.Fatalf("%s seed %d: restore: %v", name, seed, err)
			}
			// The restored evaluator rejects duplicates of pre-cut responses.
			if err := restored.Add(subs[0].w, subs[0].t, subs[0].r); err == nil {
				t.Fatalf("%s seed %d: duplicate of pre-checkpoint response accepted", name, seed)
			}
			for _, s := range subs[cut:] {
				if err := restored.Add(s.w, s.t, s.r); err != nil {
					t.Fatal(err)
				}
			}

			if restored.Tasks() != uninterrupted.Tasks() || restored.Responses() != uninterrupted.Responses() {
				t.Fatalf("%s seed %d: tasks/responses %d/%d, want %d/%d", name, seed,
					restored.Tasks(), restored.Responses(), uninterrupted.Tasks(), uninterrupted.Responses())
			}
			want, err := uninterrupted.EvaluateAll(opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := restored.EvaluateAll(opts)
			if err != nil {
				t.Fatal(err)
			}
			for w := range want {
				if (want[w].Err == nil) != (got[w].Err == nil) {
					t.Fatalf("%s seed %d worker %d: error mismatch %v vs %v", name, seed, w, got[w].Err, want[w].Err)
				}
				if want[w].Err != nil {
					continue
				}
				if math.Float64bits(want[w].Interval.Lo) != math.Float64bits(got[w].Interval.Lo) ||
					math.Float64bits(want[w].Interval.Hi) != math.Float64bits(got[w].Interval.Hi) {
					t.Fatalf("%s seed %d worker %d: interval %v != %v", name, seed, w, got[w].Interval, want[w].Interval)
				}
			}
			wantA, wantD := uninterrupted.DisagreementCounts()
			gotA, gotD := restored.DisagreementCounts()
			if !slices.Equal(wantA, gotA) || !slices.Equal(wantD, gotD) {
				t.Fatalf("%s seed %d: disagreement tallies diverge: %v/%v vs %v/%v", name, seed, gotA, gotD, wantA, wantD)
			}
			if !restored.ExportStats().Equal(uninterrupted.ExportStats()) {
				t.Fatalf("%s seed %d: restored export differs from uninterrupted", name, seed)
			}
		}
	}
}

// TestCheckpointLogCanonicalOrder: equal states produce equal logs, no
// matter the ingestion order the state was built in.
func TestCheckpointLogCanonicalOrder(t *testing.T) {
	subs := restoreStream(t, 1)
	a, err := NewIncremental(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewShardedIncremental(7, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range subs {
		if err := a.Add(s.w, s.t, s.r); err != nil {
			t.Fatal(err)
		}
	}
	// Same responses, different global order (per-task order preserved, as
	// a real replayed slice would be).
	for task := 0; task < 200; task++ {
		for _, s := range subs {
			if s.t == task {
				if err := b.Add(s.w, s.t, s.r); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	_, logA := a.Checkpoint()
	_, logB := b.Checkpoint()
	if !slices.Equal(logA, logB) {
		t.Fatalf("canonical logs differ between evaluators holding the same responses")
	}
}

// TestRestoreStatsRejects covers the failure modes a restore must refuse:
// non-empty receivers, crowd-size mismatches, log/statistics count
// mismatches, and logs whose replay does not reproduce the statistics.
func TestRestoreStatsRejects(t *testing.T) {
	subs := restoreStream(t, 2)
	donor, err := NewIncremental(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range subs[:60] {
		if err := donor.Add(s.w, s.t, s.r); err != nil {
			t.Fatal(err)
		}
	}
	e, log := donor.Checkpoint()

	expectErr := func(name, frag string, got error) {
		t.Helper()
		if got == nil || !strings.Contains(got.Error(), frag) {
			t.Fatalf("%s: got %v, want error containing %q", name, got, frag)
		}
	}

	busy, _ := NewIncremental(7)
	if err := busy.Add(0, 0, crowd.Yes); err != nil {
		t.Fatal(err)
	}
	expectErr("non-empty receiver", "already holding", busy.RestoreStats(e, log))

	smaller, _ := NewIncremental(5)
	expectErr("crowd mismatch", "7-worker crowd", smaller.RestoreStats(e, log))

	fresh, _ := NewIncremental(7)
	expectErr("short log", "statistics claim", fresh.RestoreStats(e, log[:len(log)-1]))

	fresh2, _ := NewIncremental(7)
	expectErr("nil export", "nil statistics", fresh2.RestoreStats(nil, nil))

	// Tamper with one response: replay succeeds but the rebuilt statistics
	// cannot match the export.
	tampered := append([]LoggedResponse(nil), log...)
	if tampered[10].Answer == crowd.Yes {
		tampered[10].Answer = crowd.No
	} else {
		tampered[10].Answer = crowd.Yes
	}
	fresh3, _ := NewIncremental(7)
	expectErr("tampered log", "diverge", fresh3.RestoreStats(e, tampered))

	// A duplicate inside the log fails during replay with a clear index.
	dup := append([]LoggedResponse(nil), log...)
	dup[len(dup)-1] = dup[0]
	fresh4, _ := NewIncremental(7)
	expectErr("duplicate in log", "replaying checkpoint response", fresh4.RestoreStats(e, dup))

	// The sharded evaluator enforces the same contract.
	shardedBusy, _ := NewShardedIncremental(7, 2)
	if err := shardedBusy.Add(0, 0, crowd.Yes); err != nil {
		t.Fatal(err)
	}
	expectErr("sharded non-empty receiver", "already holding", shardedBusy.RestoreStats(e, log))
}

// TestStatsExportEqualNormalizesBitsets: trailing zero words in attendance
// bitsets never distinguish equal states.
func TestStatsExportEqualNormalizesBitsets(t *testing.T) {
	donor, err := NewIncremental(4)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 4; w++ {
		for task := 0; task < 3; task++ {
			if err := donor.Add(w, task, crowd.Response(1+(w+task)%2)); err != nil {
				t.Fatal(err)
			}
		}
	}
	a := donor.ExportStats()
	b := donor.ExportStats()
	b.Responded[2] = append(b.Responded[2], 0, 0)
	if !a.Equal(b) {
		t.Fatal("trailing zero bitset words should not break equality")
	}
	b.Responded[2][0] ^= 1
	if a.Equal(b) {
		t.Fatal("flipped attendance bit should break equality")
	}
}
