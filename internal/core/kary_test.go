package core

import (
	"errors"
	"math"
	"testing"

	"crowdassess/internal/crowd"
	"crowdassess/internal/mat"
	"crowdassess/internal/randx"
	"crowdassess/internal/sim"
)

// exactCounts builds the counts tensor a regular dataset would produce in
// expectation: counts[a][b][c] = n·Σ_t s_t·P1[t,a]·P2[t,b]·P3[t,c].
func exactCounts(n float64, sel []float64, p1, p2, p3 sim.Confusion) *crowd.Tensor3 {
	k := len(sel)
	t3 := crowd.NewTensor3(k)
	for a := 1; a <= k; a++ {
		for b := 1; b <= k; b++ {
			for c := 1; c <= k; c++ {
				var v float64
				for t := 0; t < k; t++ {
					v += sel[t] * p1[t][a-1] * p2[t][b-1] * p3[t][c-1]
				}
				t3.Set(a, b, c, n*v)
			}
		}
	}
	return t3
}

// expectedV returns S^{1/2}·P as a matrix.
func expectedV(sel []float64, p sim.Confusion) *mat.Matrix {
	k := len(sel)
	v := mat.New(k, k)
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			v.Set(a, b, math.Sqrt(sel[a])*p[a][b])
		}
	}
	return v
}

// TestProbEstimateExact feeds ProbEstimate the exact expected counts and
// checks that it recovers S^{1/2}·P_i for all three workers. This pins down
// the OCR-ambiguous step 6.c of Algorithm A3 (see DESIGN.md).
func TestProbEstimateExact(t *testing.T) {
	cases := []struct {
		name       string
		sel        []float64
		p1, p2, p3 sim.Confusion
	}{
		{
			name: "arity2-distinct",
			sel:  []float64{0.6, 0.4},
			p1:   sim.PaperMatricesArity2[0],
			p2:   sim.PaperMatricesArity2[1],
			p3:   sim.PaperMatricesArity2[0],
		},
		{
			name: "arity3-paper",
			sel:  []float64{0.3, 0.4, 0.3},
			p1:   sim.PaperMatricesArity3[0],
			p2:   sim.PaperMatricesArity3[1],
			p3:   sim.PaperMatricesArity3[2],
		},
		{
			name: "arity4-paper",
			sel:  []float64{0.25, 0.25, 0.25, 0.25},
			p1:   sim.PaperMatricesArity4[0],
			p2:   sim.PaperMatricesArity4[1],
			p3:   sim.PaperMatricesArity4[2],
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			counts := exactCounts(10000, tc.sel, tc.p1, tc.p2, tc.p3)
			est, err := probEstimate(counts, KAryOptions{Confidence: 0.9}, mat.NewWorkspace())
			if err != nil {
				t.Fatal(err)
			}
			wants := []*mat.Matrix{
				expectedV(tc.sel, tc.p1),
				expectedV(tc.sel, tc.p2),
				expectedV(tc.sel, tc.p3),
			}
			for w := 0; w < 3; w++ {
				if !est.v[w].EqualApprox(wants[w], 1e-6) {
					t.Errorf("worker %d:\ngot\n%v\nwant\n%v", w+1, est.v[w], wants[w])
				}
			}
		})
	}
}

// TestProbEstimateExactRawEigen runs the same exact-arithmetic check through
// the non-symmetrized eigendecomposition path (ablation #3).
func TestProbEstimateExactRawEigen(t *testing.T) {
	sel := []float64{0.5, 0.5}
	p1, p2, p3 := sim.PaperMatricesArity2[0], sim.PaperMatricesArity2[1], sim.PaperMatricesArity2[0]
	counts := exactCounts(5000, sel, p1, p2, p3)
	est, err := probEstimate(counts, KAryOptions{Confidence: 0.9, RawEigen: true}, mat.NewWorkspace())
	if err != nil {
		t.Fatal(err)
	}
	if !est.v[0].EqualApprox(expectedV(sel, p1), 1e-6) {
		t.Errorf("raw-eigen path:\ngot\n%v\nwant\n%v", est.v[0], expectedV(sel, p1))
	}
}

func TestThreeWorkerKAryPointEstimates(t *testing.T) {
	src := randx.NewSource(42)
	confs := []sim.Confusion{
		sim.PaperMatricesArity3[0],
		sim.PaperMatricesArity3[1],
		sim.PaperMatricesArity3[2],
	}
	ds, _, err := sim.KAry{Tasks: 20000, Workers: 3, Confusions: confs}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	est, err := ThreeWorkerKAry(ds, [3]int{0, 1, 2}, KAryOptions{Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3; w++ {
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				got := est.Prob[w].At(a, b)
				want := confs[w][a][b]
				// The spectral step amplifies sampling noise; at n=20000 the
				// per-entry spread is ±0.04 (verified empirically, no bias).
				if math.Abs(got-want) > 0.06 {
					t.Errorf("worker %d P(%d,%d) = %v, want ≈%v", w, a, b, got, want)
				}
			}
		}
	}
	// Selectivity should be near uniform.
	for a := 0; a < 3; a++ {
		if math.Abs(est.Selectivity[a]-1.0/3) > 0.05 {
			t.Errorf("selectivity[%d] = %v", a, est.Selectivity[a])
		}
	}
}

func TestThreeWorkerKAryBinary(t *testing.T) {
	src := randx.NewSource(43)
	confs := []sim.Confusion{
		sim.PaperMatricesArity2[0],
		sim.PaperMatricesArity2[1],
		sim.PaperMatricesArity2[2],
	}
	ds, _, err := sim.KAry{Tasks: 4000, Workers: 3, Confusions: confs}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	est, err := ThreeWorkerKAry(ds, [3]int{0, 1, 2}, KAryOptions{Confidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3; w++ {
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				if math.Abs(est.Prob[w].At(a, b)-confs[w][a][b]) > 0.05 {
					t.Errorf("worker %d P(%d,%d) = %v, want ≈%v",
						w, a, b, est.Prob[w].At(a, b), confs[w][a][b])
				}
			}
		}
	}
}

func TestThreeWorkerKAryIntervalsContainTruthMostly(t *testing.T) {
	// Coverage check at c=0.8 over replicates: Fig. 5(a) reports accuracy at
	// or above the diagonal for the paper's settings, so demand ≥ 0.7.
	const reps = 40
	hits, total := 0, 0
	for r := 0; r < reps; r++ {
		src := randx.NewSource(int64(70000 + r))
		ds, confs, err := sim.KAry{
			Tasks:            500,
			Workers:          3,
			ConfusionChoices: sim.PaperMatricesArity2,
		}.Generate(src)
		if err != nil {
			t.Fatal(err)
		}
		est, err := ThreeWorkerKAry(ds, [3]int{0, 1, 2}, KAryOptions{Confidence: 0.8})
		if err != nil {
			continue
		}
		for w := 0; w < 3; w++ {
			for a := 0; a < 2; a++ {
				for b := 0; b < 2; b++ {
					total++
					if est.Intervals[w][a][b].Contains(confs[w][a][b]) {
						hits++
					}
				}
			}
		}
	}
	if total < reps*6 {
		t.Fatalf("only %d usable intervals", total)
	}
	coverage := float64(hits) / float64(total)
	if coverage < 0.70 {
		t.Errorf("k-ary coverage %v at c=0.8", coverage)
	}
}

func TestThreeWorkerKAryNonRegular(t *testing.T) {
	src := randx.NewSource(44)
	confs := []sim.Confusion{
		sim.PaperMatricesArity2[0],
		sim.PaperMatricesArity2[1],
		sim.PaperMatricesArity2[2],
	}
	ds, _, err := sim.KAry{Tasks: 5000, Workers: 3, Confusions: confs, Density: 0.7}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	est, err := ThreeWorkerKAry(ds, [3]int{0, 1, 2}, KAryOptions{Confidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3; w++ {
		for a := 0; a < 2; a++ {
			if math.Abs(est.Prob[w].At(a, a)-confs[w][a][a]) > 0.06 {
				t.Errorf("worker %d diag %d = %v, want ≈%v",
					w, a, est.Prob[w].At(a, a), confs[w][a][a])
			}
		}
	}
}

func TestThreeWorkerKAryErrors(t *testing.T) {
	ds := crowd.MustNewDataset(3, 10, 3)
	// No shared tasks → insufficient data.
	if _, err := ThreeWorkerKAry(ds, [3]int{0, 1, 2}, KAryOptions{Confidence: 0.8}); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("err = %v, want ErrInsufficientData", err)
	}
	if _, err := ThreeWorkerKAry(ds, [3]int{0, 1, 2}, KAryOptions{Confidence: 0}); err == nil {
		t.Error("confidence 0 accepted")
	}
	if _, err := ThreeWorkerKAry(ds, [3]int{0, 1, 2}, KAryOptions{Confidence: 0.8, Epsilon: -1}); err == nil {
		t.Error("negative epsilon accepted")
	}
}

func TestKAryEpsilonStability(t *testing.T) {
	// DESIGN.md ablation #5: interval sizes should not blow up as the
	// numeric-derivative step varies across two orders of magnitude.
	src := randx.NewSource(45)
	confs := []sim.Confusion{
		sim.PaperMatricesArity2[0],
		sim.PaperMatricesArity2[1],
		sim.PaperMatricesArity2[2],
	}
	ds, _, err := sim.KAry{Tasks: 1000, Workers: 3, Confusions: confs}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	var sizes []float64
	for _, eps := range []float64{1e-3, 1e-2, 1e-1} {
		est, err := ThreeWorkerKAry(ds, [3]int{0, 1, 2}, KAryOptions{Confidence: 0.8, Epsilon: eps})
		if err != nil {
			t.Fatalf("eps %v: %v", eps, err)
		}
		var sum float64
		for w := 0; w < 3; w++ {
			for a := 0; a < 2; a++ {
				for b := 0; b < 2; b++ {
					sum += est.Intervals[w][a][b].Size()
				}
			}
		}
		sizes = append(sizes, sum/12)
	}
	for i := 1; i < len(sizes); i++ {
		if ratio := sizes[i] / sizes[0]; ratio > 2 || ratio < 0.5 {
			t.Errorf("interval size unstable across epsilon: %v", sizes)
		}
	}
}

func TestAlignRows(t *testing.T) {
	// Rows are shuffled; alignment must place each dominant element on the
	// diagonal.
	v := mat.FromRows([][]float64{
		{0.1, 0.8, 0.1}, // dominant col 1 → position 1
		{0.7, 0.2, 0.1}, // dominant col 0 → position 0
		{0.2, 0.1, 0.7}, // dominant col 2 → position 2
	})
	got := alignRows(v)
	want := mat.FromRows([][]float64{
		{0.7, 0.2, 0.1},
		{0.1, 0.8, 0.1},
		{0.2, 0.1, 0.7},
	})
	if !got.EqualApprox(want, 1e-12) {
		t.Errorf("alignRows:\n%v\nwant\n%v", got, want)
	}
}

func TestAlignRowsConflict(t *testing.T) {
	// Two rows dominant in the same column: greedy assignment must still
	// produce a permutation (each source row used exactly once).
	v := mat.FromRows([][]float64{
		{0.9, 0.1},
		{0.8, 0.2},
	})
	got := alignRows(v)
	// Strongest entry 0.9 claims position 0; row 1 is forced to position 1.
	if got.At(0, 0) != 0.9 || got.At(1, 0) != 0.8 {
		t.Errorf("conflict alignment:\n%v", got)
	}
}

func TestNormalizeRows(t *testing.T) {
	m := mat.FromRows([][]float64{{3, 4}, {0, 0}})
	n := normalizeRows(m)
	if math.Abs(n.At(0, 0)-0.6) > 1e-12 || math.Abs(n.At(0, 1)-0.8) > 1e-12 {
		t.Errorf("row 0 = %v %v", n.At(0, 0), n.At(0, 1))
	}
	// Zero rows survive untouched.
	if n.At(1, 0) != 0 || n.At(1, 1) != 0 {
		t.Error("zero row corrupted")
	}
}

func TestClampSpectrum(t *testing.T) {
	vals, err := clampSpectrum([]float64{2, 1e-15}, false)
	if err != nil {
		t.Fatal(err)
	}
	if vals[1] < 1e-10 {
		t.Errorf("tiny eigenvalue not clamped: %v", vals)
	}
	if _, err := clampSpectrum([]float64{2, 1e-15}, true); !errors.Is(err, ErrDegenerate) {
		t.Errorf("strict mode err = %v", err)
	}
	if _, err := clampSpectrum([]float64{-1, -2}, false); !errors.Is(err, ErrDegenerate) {
		t.Errorf("all-negative spectrum err = %v", err)
	}
}

func TestFixSigns(t *testing.T) {
	v1 := mat.FromRows([][]float64{{-0.5, -0.5}, {0.3, 0.7}})
	u := mat.FromRows([][]float64{{1, 0}, {0, 1}})
	fixSigns(v1, u)
	if v1.At(0, 0) != 0.5 || u.At(0, 0) != -1 {
		t.Errorf("sign fix failed: v1=%v u=%v", v1, u)
	}
	if v1.At(1, 0) != 0.3 || u.At(1, 1) != 1 {
		t.Error("positive row flipped")
	}
}
