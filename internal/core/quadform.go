package core

import (
	"fmt"

	"crowdassess/internal/mat"
)

// CovQuadForm abstracts the covariance Σ of an estimate vector to exactly
// the two queries the delta method (Theorem 1) needs: the quadratic form
// dᵀΣd and a diagonal magnitude Σ dᵢ²·|Σᵢᵢ| used to calibrate the roundoff
// tolerance when the plug-in quadratic form dips negative.
//
// Three implementations exist. DenseCov wraps an explicit matrix and is
// what Algorithm A1 uses (its Σ is the 3×3 Lemma 3 matrix). MultinomialCov
// exploits the structure Σ = n·(diag(p) − p·pᵀ) of the k³-dimensional
// multinomial count covariance in Algorithm A3 (Lemma 9), evaluating the
// quadratic form in O(k³) time and O(1) extra memory instead of
// materializing the O(k⁶) dense matrix. Lemma4Cov generates Algorithm A2's
// l×l cross-triple covariance entry-by-entry from O(l + m) inputs (per-
// triple gradients plus the pooled agreement cache), so the dense matrix is
// never built on the A2 estimation path.
type CovQuadForm interface {
	// Dim is the dimension of Σ (the required gradient length).
	Dim() int
	// Quad returns dᵀΣd.
	Quad(d []float64) float64
	// DiagAbsQuad returns Σ dᵢ²·|Σᵢᵢ|, the scale of the diagonal
	// contribution, used as a roundoff yardstick by DeltaMethodCov.
	DiagAbsQuad(d []float64) float64
}

// DenseCov adapts an explicit covariance matrix to CovQuadForm. This is the
// fallback path; it matches the structured implementations bit-for-bit in
// the regimes where both apply only up to floating-point summation order,
// so agreement is asserted to 1e-12 in tests rather than exactly.
type DenseCov struct{ M *mat.Matrix }

// Dim implements CovQuadForm.
func (c DenseCov) Dim() int { return c.M.Rows() }

// Quad implements CovQuadForm: the full O(n²) double loop.
func (c DenseCov) Quad(d []float64) float64 {
	n := len(d)
	var v float64
	for i := 0; i < n; i++ {
		di := d[i]
		if di == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			v += di * d[j] * c.M.At(i, j)
		}
	}
	return v
}

// DiagAbsQuad implements CovQuadForm.
func (c DenseCov) DiagAbsQuad(d []float64) float64 {
	var s float64
	for i, di := range d {
		s += di * di * abs(c.M.At(i, i))
	}
	return s
}

// MultinomialCov is the covariance of a multinomial count vector with
// observed counts c over n trials: Σᵢᵢ = cᵢ(n−cᵢ)/n and Σᵢⱼ = −cᵢcⱼ/n
// (the plug-in form of Σ = n·(diag(p) − p·pᵀ) with p̂ = c/n). The quadratic
// form collapses to
//
//	dᵀΣd = Σᵢ dᵢ²cᵢ − (Σᵢ dᵢcᵢ)²/n,
//
// one pass over the counts — O(k³) for Algorithm A3's k³ count entries,
// versus O(k⁶) time and memory for the dense matrix it replaces.
type MultinomialCov struct {
	counts []float64
	n      float64
}

// NewMultinomialCov builds the structured covariance for the given observed
// counts and trial total n > 0.
func NewMultinomialCov(counts []float64, n float64) (MultinomialCov, error) {
	if n <= 0 {
		return MultinomialCov{}, fmt.Errorf("core: multinomial total %v not positive: %w", n, ErrInsufficientData)
	}
	return MultinomialCov{counts: counts, n: n}, nil
}

// Dim implements CovQuadForm.
func (c MultinomialCov) Dim() int { return len(c.counts) }

// Quad implements CovQuadForm in a single pass.
func (c MultinomialCov) Quad(d []float64) float64 {
	var sq, lin float64
	for i, di := range d {
		ci := c.counts[i]
		sq += di * di * ci
		lin += di * ci
	}
	return sq - lin*lin/c.n
}

// DiagAbsQuad implements CovQuadForm.
func (c MultinomialCov) DiagAbsQuad(d []float64) float64 {
	var s float64
	for i, di := range d {
		ci := c.counts[i]
		s += di * di * abs(ci*(c.n-ci)/c.n)
	}
	return s
}

// Dense materializes the full covariance matrix. Only tests and the
// structured-vs-dense benchmarks use it; the estimators never do.
func (c MultinomialCov) Dense() *mat.Matrix {
	n := len(c.counts)
	m := mat.New(n, n)
	for i := 0; i < n; i++ {
		ci := c.counts[i]
		m.Set(i, i, ci*(c.n-ci)/c.n)
		for j := i + 1; j < n; j++ {
			v := -ci * c.counts[j] / c.n
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
