package core

import (
	"math"
	"testing"

	"crowdassess/internal/mat"
	"crowdassess/internal/randx"
	"crowdassess/internal/sim"
)

// buildLemma4 assembles the structured Lemma-4 covariance for one worker of
// a simulated binary crowd, exactly as evaluateOne does: form pairs, keep
// the non-degenerate triples, pool the error rate, and register each
// triple's variance and own-pair gradients.
func buildLemma4(t testing.TB, seed int64, workers, tasks, worker int) *Lemma4Cov {
	t.Helper()
	src := randx.NewSource(seed)
	densities := make([]float64, workers)
	for i := range densities {
		densities[i] = 1 - 0.05*float64(i%7)
	}
	ds, _, err := sim.Binary{Tasks: tasks, Workers: workers, Densities: densities}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	cache := newFullStatsCache(ds)
	pairs := formPairs(cache, workers, worker, GreedyPairing, 1)
	if len(pairs) == 0 {
		t.Fatal("no pairs formed")
	}
	type entry struct {
		variance, d1, d2 float64
		j1, j2           int
	}
	var entries []entry
	var pPool float64
	for _, pr := range pairs {
		st, err := newTripleStats(cache, worker, pr[0], pr[1])
		if err != nil {
			continue
		}
		de, err := st.estimate(0)
		if err != nil {
			continue
		}
		entries = append(entries, entry{de.Dev * de.Dev, st.grad[0][0], st.grad[0][1], pr[0], pr[1]})
		pPool += de.Mean
	}
	if len(entries) < 2 {
		t.Fatalf("only %d usable triples", len(entries))
	}
	pPool /= float64(len(entries))
	cov := newLemma4Cov(cache, worker, pPool, len(entries), mat.NewWorkspace())
	for _, e := range entries {
		cov.add(e.variance, e.d1, e.j1, e.d2, e.j2)
	}
	return cov
}

// TestLemma4QuadMatchesDense is the acceptance check for the structured
// Lemma-4 covariance: the on-the-fly quadratic form and the materialized
// dense path must agree to 1e-12 (relative) across crowd shapes and random
// gradients — the same pattern as the MultinomialCov acceptance test.
func TestLemma4QuadMatchesDense(t *testing.T) {
	src := randx.NewSource(17)
	for trial, cfg := range []struct {
		workers, tasks int
	}{
		{5, 120}, {9, 200}, {15, 150}, {21, 300}, {31, 250},
	} {
		cov := buildLemma4(t, int64(100+trial), cfg.workers, cfg.tasks, trial%3)
		l := cov.Dim()
		dense := mat.New(l, l)
		cov.MaterializeInto(dense)
		for rep := 0; rep < 10; rep++ {
			d := make([]float64, l)
			for i := range d {
				d[i] = 2*src.Float64() - 1
			}
			fast := cov.Quad(d)
			slow := (DenseCov{dense}).Quad(d)
			scale := math.Abs(slow)
			if scale < 1 {
				scale = 1
			}
			if math.Abs(fast-slow) > 1e-12*scale {
				t.Errorf("m=%d l=%d rep %d: structured %v vs dense %v", cfg.workers, l, rep, fast, slow)
			}
			fd, sd := cov.DiagAbsQuad(d), (DenseCov{dense}).DiagAbsQuad(d)
			if math.Abs(fd-sd) > 1e-12*(1+math.Abs(sd)) {
				t.Errorf("m=%d rep %d: diag %v vs dense diag %v", cfg.workers, rep, fd, sd)
			}
		}
	}
}

// TestLemma4OptimalWeightsMatchDense pins the Lemma 5 weight solve through
// the structured covariance to the dense-matrix solve.
func TestLemma4OptimalWeightsMatchDense(t *testing.T) {
	cov := buildLemma4(t, 9, 15, 200, 0)
	l := cov.Dim()
	dense := mat.New(l, l)
	cov.MaterializeInto(dense)
	want, err := optimalWeights(dense)
	if err != nil {
		t.Fatal(err)
	}
	got, err := optimalWeightsCov(cov, mat.NewWorkspace())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("weight %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func benchLemma4(b *testing.B, workers int) (*Lemma4Cov, []float64) {
	cov := buildLemma4(b, 23, workers, 300, 0)
	w := uniformWeights(cov.Dim())
	return cov, w
}
