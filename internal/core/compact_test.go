package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"crowdassess/internal/crowd"
)

// fillEvaluator ingests a deterministic pseudo-random response stream:
// each task gets answers from a random subset of workers.
func fillEvaluator(t *testing.T, add func(w, task int, r crowd.Response) error, workers, tasks int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for task := 0; task < tasks; task++ {
		for w := 0; w < workers; w++ {
			if rng.Intn(3) == 0 {
				continue
			}
			r := crowd.Yes
			if rng.Intn(4) == 0 {
				r = crowd.No
			}
			if err := add(w, task, r); err != nil {
				t.Fatalf("add(%d,%d): %v", w, task, err)
			}
		}
	}
}

func requireSameEstimates(t *testing.T, a, b []WorkerEstimate) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("estimate counts differ: %d vs %d", len(a), len(b))
	}
	for w := range a {
		if math.Float64bits(a[w].Interval.Mean) != math.Float64bits(b[w].Interval.Mean) ||
			math.Float64bits(a[w].Interval.Lo) != math.Float64bits(b[w].Interval.Lo) ||
			math.Float64bits(a[w].Interval.Hi) != math.Float64bits(b[w].Interval.Hi) ||
			a[w].Triples != b[w].Triples || (a[w].Err == nil) != (b[w].Err == nil) {
			t.Fatalf("worker %d estimates diverge: %+v vs %+v", w, a[w], b[w])
		}
	}
}

func TestCompactCheckpointRoundTrip(t *testing.T) {
	const workers, tasks = 12, 300
	orig, err := NewIncremental(workers)
	if err != nil {
		t.Fatal(err)
	}
	fillEvaluator(t, orig.Add, workers, tasks, 1)

	cs := orig.CompactCheckpoint()
	restored, err := NewIncremental(workers)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreCompact(cs); err != nil {
		t.Fatalf("RestoreCompact: %v", err)
	}

	opts := EvalOptions{Confidence: 0.95}
	want, err := orig.EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	requireSameEstimates(t, want, got)

	// Duplicate rejection resumes exactly across the cut.
	var dupW, dupT = -1, -1
	for w := 0; w < workers && dupW < 0; w++ {
		for task := 0; task < tasks; task++ {
			if orig.responded[w].get(task) {
				dupW, dupT = w, task
				break
			}
		}
	}
	if err := restored.Add(dupW, dupT, crowd.Yes); err == nil {
		t.Fatal("restored evaluator accepted a duplicate response")
	}

	// Post-restore ingestion pairs correctly against pre-checkpoint
	// responders: keep ingesting into both and compare again.
	fillEvaluator(t, func(w, task int, r crowd.Response) error {
		if orig.responded[w].get(task) {
			return nil
		}
		if err := orig.Add(w, task, r); err != nil {
			return err
		}
		return restored.Add(w, task, r)
	}, workers, tasks+50, 2)
	want, _ = orig.EvaluateAll(opts)
	got, _ = restored.EvaluateAll(opts)
	requireSameEstimates(t, want, got)

	// The spammer screen rebuilds identically too (majorities are
	// order-independent).
	a1, d1 := orig.DisagreementCounts()
	a2, d2 := restored.DisagreementCounts()
	for w := range a1 {
		if a1[w] != a2[w] || d1[w] != d2[w] {
			t.Fatalf("disagreement tallies diverge for worker %d", w)
		}
	}
}

func TestCompactCheckpointShardedRoundTrip(t *testing.T) {
	const workers = 9
	orig, err := NewShardedIncremental(workers, 4)
	if err != nil {
		t.Fatal(err)
	}
	fillEvaluator(t, orig.Add, workers, 200, 3)

	cs := orig.CompactCheckpoint()
	restored, err := NewShardedIncremental(workers, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreCompact(cs); err != nil {
		t.Fatalf("RestoreCompact: %v", err)
	}
	opts := EvalOptions{Confidence: 0.9}
	want, err := orig.EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	requireSameEstimates(t, want, got)

	// Cross-flavour: a compact state from a sharded evaluator restores
	// into a single-goroutine one with identical decisions.
	single, err := NewIncremental(workers)
	if err != nil {
		t.Fatal(err)
	}
	if err := single.RestoreCompact(cs); err != nil {
		t.Fatalf("cross-flavour restore: %v", err)
	}
	sg, err := single.EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	requireSameEstimates(t, want, sg)
}

func TestRestoreCompactRejectsCorruption(t *testing.T) {
	const workers = 8
	orig, err := NewIncremental(workers)
	if err != nil {
		t.Fatal(err)
	}
	fillEvaluator(t, orig.Add, workers, 100, 4)

	fresh := func() *Incremental {
		inc, err := NewIncremental(workers)
		if err != nil {
			t.Fatal(err)
		}
		return inc
	}
	mutations := []struct {
		name string
		mut  func(cs *CompactState)
	}{
		{"nil stats", func(cs *CompactState) { cs.Stats = nil }},
		{"missing answer rows", func(cs *CompactState) { cs.Answers = cs.Answers[:workers-1] }},
		{"counter bump", func(cs *CompactState) { cs.Stats.Agree[1][2]++; cs.Stats.Agree[2][1]++ }},
		{"common bump", func(cs *CompactState) { cs.Stats.Common[0][3]++; cs.Stats.Common[3][0]++ }},
		{"answer outside attendance", func(cs *CompactState) {
			// Set an answer bit on a task worker 0 never attended.
			for task := 0; ; task++ {
				if !dynBitset(cs.Stats.Responded[0]).get(task) {
					b := dynBitset(cs.Answers[0])
					b.set(task)
					cs.Answers[0] = b
					return
				}
			}
		}},
		{"answer flip skews counters", func(cs *CompactState) {
			// Flipping a legitimate answer bit leaves structure valid but
			// contradicts the agree counters.
			b := dynBitset(cs.Answers[0])
			for task := 0; ; task++ {
				if dynBitset(cs.Stats.Responded[0]).get(task) {
					b[task/64] ^= 1 << (uint(task) % 64)
					cs.Answers[0] = b
					return
				}
			}
		}},
		{"response total", func(cs *CompactState) { cs.Stats.Responses++ }},
		{"task total", func(cs *CompactState) { cs.Stats.Tasks++ }},
	}
	for _, tc := range mutations {
		cs := orig.CompactCheckpoint()
		tc.mut(cs)
		if err := fresh().RestoreCompact(cs); err == nil {
			t.Fatalf("%s: corrupted compact state accepted", tc.name)
		}
	}
	// And the untampered baseline still restores, so the cases above fail
	// for the right reason.
	if err := fresh().RestoreCompact(orig.CompactCheckpoint()); err != nil {
		t.Fatalf("baseline restore failed: %v", err)
	}
}

// BenchmarkCheckpointCost pins the tentpole's O(delta) claim: with the
// task set fixed, CompactCheckpoint's cost stays flat as total ingested
// history grows, while the full log checkpoint scales with history.
func BenchmarkCheckpointCost(b *testing.B) {
	const workers, tasks = 50, 2000
	build := func(perTask int) *Incremental {
		inc, err := NewIncremental(workers)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for task := 0; task < tasks; task++ {
			perm := rng.Perm(workers)
			for _, w := range perm[:perTask] {
				r := crowd.Yes
				if rng.Intn(3) == 0 {
					r = crowd.No
				}
				if err := inc.Add(w, task, r); err != nil {
					b.Fatal(err)
				}
			}
		}
		return inc
	}
	for _, perTask := range []int{5, 20, 50} {
		inc := build(perTask)
		history := inc.Responses()
		b.Run(fmt.Sprintf("compact/history=%d", history), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if cs := inc.CompactCheckpoint(); cs.Stats.Responses != history {
					b.Fatal("bad checkpoint")
				}
			}
		})
		b.Run(fmt.Sprintf("fulllog/history=%d", history), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, log := inc.Checkpoint(); len(log) != history {
					b.Fatal("bad checkpoint")
				}
			}
		})
	}
}
