package core

import (
	"fmt"

	"crowdassess/internal/crowd"
	"crowdassess/internal/stat"
)

// This file implements the classical comparator from the paper's
// introduction: when gold-standard tasks exist, each worker's error rate is
// a plain binomial proportion and standard statistical techniques apply.
// The paper's whole point is to match this WITHOUT gold answers; having the
// classical method in the library (a) serves deployments that do have some
// gold tasks and (b) lets tests and benches quantify how close the
// agreement-based intervals come to the gold-based ones.

// GoldMethod selects the interval construction for gold-standard scoring.
type GoldMethod int

const (
	// GoldExact uses the Clopper–Pearson exact binomial interval
	// (guaranteed coverage, widest).
	GoldExact GoldMethod = iota
	// GoldWilson uses the Wilson score interval (approximate, tighter).
	GoldWilson
	// GoldWald uses the plain normal approximation (classical textbook).
	GoldWald
)

// GoldEstimate is one worker's gold-standard evaluation.
type GoldEstimate struct {
	Worker   int
	Interval stat.Interval
	Scored   int   // gold-labelled tasks the worker answered
	Wrong    int   // of those, answered incorrectly
	Err      error // non-nil when the worker answered no gold tasks
}

// GoldStandardIntervals scores every worker against the dataset's gold
// answers, returning a c-confidence interval for each error rate. Tasks
// without gold answers are ignored. Works for any arity: an answer is
// simply right or wrong against the gold label.
func GoldStandardIntervals(ds *crowd.Dataset, c float64, method GoldMethod) ([]GoldEstimate, error) {
	if err := checkConfidence(c); err != nil {
		return nil, err
	}
	hasAny := false
	for t := 0; t < ds.Tasks(); t++ {
		if ds.Truth(t) != crowd.None {
			hasAny = true
			break
		}
	}
	if !hasAny {
		return nil, fmt.Errorf("core: %w", crowd.ErrNoGold)
	}
	out := make([]GoldEstimate, ds.Workers())
	for w := range out {
		out[w] = goldOne(ds, w, c, method)
	}
	return out, nil
}

func goldOne(ds *crowd.Dataset, w int, c float64, method GoldMethod) GoldEstimate {
	est := GoldEstimate{Worker: w}
	for t := 0; t < ds.Tasks(); t++ {
		g := ds.Truth(t)
		r := ds.Response(w, t)
		if g == crowd.None || r == crowd.None {
			continue
		}
		est.Scored++
		if r != g {
			est.Wrong++
		}
	}
	if est.Scored == 0 {
		est.Err = fmt.Errorf("core: worker %d answered no gold tasks: %w", w, crowd.ErrNoGold)
		return est
	}
	switch method {
	case GoldWilson:
		est.Interval = stat.Wilson(est.Wrong, est.Scored, c)
	case GoldWald:
		est.Interval = stat.Wald(est.Wrong, est.Scored, c)
	default:
		est.Interval = stat.ClopperPearson(est.Wrong, est.Scored, c)
	}
	return est
}
