package core

import (
	"errors"
	"testing"

	"crowdassess/internal/crowd"
	"crowdassess/internal/randx"
	"crowdassess/internal/sim"
)

// Failure-injection tests: the paper states its assumptions (independent
// errors, non-malicious workers, non-colluding workers) and claims graceful
// behaviour when they are mildly violated. These tests pin down what the
// implementation actually does under each violation, so regressions in the
// degradation mode are caught.

// makeColluders builds a crowd where workers 1 and 2 copy worker 0's
// answers verbatim (perfect collusion) while workers 3…m-1 are honest.
func makeColluders(t *testing.T, seed int64, m, tasks int) (*crowd.Dataset, []float64) {
	t.Helper()
	src := randx.NewSource(seed)
	rates := make([]float64, m)
	for i := range rates {
		rates[i] = 0.25
	}
	ds, _, err := sim.Binary{Tasks: tasks, Workers: m, ErrorRates: rates}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	for task := 0; task < tasks; task++ {
		r := ds.Response(0, task)
		_ = ds.SetResponse(1, task, r)
		_ = ds.SetResponse(2, task, r)
	}
	return ds, rates
}

func TestCollusionInflatesApparentQuality(t *testing.T) {
	// Perfect colluders agree always, so q = 1 among them and the estimator
	// concludes p ≈ 0 for the ring: the documented failure mode of
	// agreement-based evaluation. The test asserts (a) no crash, (b) the
	// colluders' estimated rates are far below their true 0.25, and (c)
	// honest workers are still estimated sanely.
	ds, rates := makeColluders(t, 1, 9, 300)
	ests, err := EvaluateWorkers(ds, EvalOptions{Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3; w++ {
		if ests[w].Err != nil {
			continue // degenerate is acceptable for the ring
		}
		if ests[w].Interval.Mean > 0.2 {
			t.Errorf("colluder %d estimated at %v — collusion should inflate apparent quality",
				w, ests[w].Interval.Mean)
		}
	}
	for w := 3; w < 9; w++ {
		if ests[w].Err != nil {
			t.Errorf("honest worker %d lost its estimate: %v", w, ests[w].Err)
			continue
		}
		if d := ests[w].Interval.Mean - rates[w]; d > 0.15 || d < -0.15 {
			t.Errorf("honest worker %d estimate %v vs true %v", w, ests[w].Interval.Mean, rates[w])
		}
	}
}

func TestMaliciousWorkerDegenerates(t *testing.T) {
	// A worker with error rate > ½ violates the non-malicious assumption:
	// agreement with honest workers falls below ½ and the estimator must
	// refuse (ErrDegenerate) rather than return a wrong interval.
	src := randx.NewSource(2)
	rates := []float64{0.1, 0.1, 0.85}
	ds, _, err := sim.Binary{Tasks: 500, Workers: 3, ErrorRates: rates}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ThreeWorkerBinary(ds, [3]int{0, 1, 2}, 0.9)
	if !errors.Is(err, ErrDegenerate) {
		t.Errorf("malicious worker: err = %v, want ErrDegenerate", err)
	}
}

func TestMaliciousWorkerScreenedByPruning(t *testing.T) {
	// The pipeline answer to malice: the majority screen removes the
	// adversary, after which the honest workers evaluate normally.
	src := randx.NewSource(3)
	rates := []float64{0.1, 0.15, 0.2, 0.1, 0.9}
	ds, _, err := sim.Binary{Tasks: 300, Workers: 5, ErrorRates: rates}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	pruned, keep, err := PruneSpammers(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range keep {
		if w == 4 {
			t.Fatal("adversary survived pruning")
		}
	}
	ests, err := EvaluateWorkers(pruned, EvalOptions{Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ests {
		if e.Err != nil {
			t.Errorf("worker %d unevaluable after pruning: %v", keep[e.Worker], e.Err)
		}
	}
}

func TestAllSpammersInsufficient(t *testing.T) {
	// A crowd of pure spammers has no signal at all; every worker should
	// fail with a typed error, never a garbage interval.
	src := randx.NewSource(4)
	rates := []float64{0.5, 0.5, 0.5, 0.5, 0.5}
	ds, _, err := sim.Binary{Tasks: 200, Workers: 5, ErrorRates: rates}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	ests, err := EvaluateWorkers(ds, EvalOptions{Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ests {
		if e.Err == nil && e.Interval.Size() < 0.2 {
			// A tight interval from pure noise would be a correctness bug;
			// loose intervals or errors are both acceptable degradations.
			t.Errorf("worker %d got a confident interval %v from pure noise", e.Worker, e.Interval)
		}
	}
}

func TestConstantAnswerWorker(t *testing.T) {
	// A worker who answers Yes to everything is maximally biased; on a
	// balanced task mix the binary model reads this as error rate ≈ ½.
	// The estimator must not credit it with quality.
	src := randx.NewSource(5)
	ds, _, err := sim.Binary{Tasks: 400, Workers: 5, ErrorRates: []float64{0.1, 0.1, 0.1, 0.1, 0.1}}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	for task := 0; task < 400; task++ {
		_ = ds.SetResponse(4, task, crowd.Yes)
	}
	ests, err := EvaluateWorkers(ds, EvalOptions{Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if ests[4].Err == nil && ests[4].Interval.Hi < 0.3 {
		t.Errorf("constant worker credited with error rate below 0.3: %v", ests[4].Interval)
	}
}

func TestDifficultyCorrelationDegradesGracefully(t *testing.T) {
	// Strong task-difficulty correlation (the paper's Section III-E
	// caveat) biases agreement upward; intervals lose some coverage but
	// estimation must neither crash nor collapse.
	const reps = 60
	hits, total := 0, 0
	for r := 0; r < reps; r++ {
		src := randx.NewSource(int64(600 + r))
		ds, rates, err := sim.Binary{
			Tasks:            200,
			Workers:          7,
			DifficultyStdDev: 0.15,
		}.Generate(src)
		if err != nil {
			t.Fatal(err)
		}
		ests, err := EvaluateWorkers(ds, EvalOptions{Confidence: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ests {
			if e.Err != nil {
				continue
			}
			total++
			if e.Interval.Contains(rates[e.Worker]) {
				hits++
			}
		}
	}
	coverage := float64(hits) / float64(total)
	// Nominal 0.9; correlated difficulty costs coverage but the method must
	// stay "still very useful" (paper's words) — keep above 0.6.
	if coverage < 0.6 {
		t.Errorf("coverage %v collapsed under difficulty correlation", coverage)
	}
	if coverage > 0.99 {
		t.Errorf("coverage %v suspiciously perfect — correlation not exercised?", coverage)
	}
}
