package core

import (
	"math"
	"reflect"
	"testing"

	"crowdassess/internal/crowd"
	"crowdassess/internal/randx"
	"crowdassess/internal/sim"
)

// exportTestStream generates a reproducible response stream.
func exportTestStream(t *testing.T, workers, tasks int, seed int64) []struct {
	w, task int
	r       crowd.Response
} {
	t.Helper()
	src := randx.NewSource(seed)
	ds, _, err := sim.Binary{Tasks: tasks, Workers: workers, Density: 0.8}.Generate(src)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	var subs []struct {
		w, task int
		r       crowd.Response
	}
	for w := 0; w < workers; w++ {
		for task := 0; task < tasks; task++ {
			if ds.Attempted(w, task) {
				subs = append(subs, struct {
					w, task int
					r       crowd.Response
				}{w, task, ds.Response(w, task)})
			}
		}
	}
	src.Shuffle(len(subs), func(i, j int) { subs[i], subs[j] = subs[j], subs[i] })
	return subs
}

// sameEstimates asserts two estimate slices are bit-identical: equal worker
// and triple counts, identical interval bit patterns, and matching error
// text (errors are built independently on each side, so pointer equality
// cannot hold).
func sameEstimates(t *testing.T, label string, got, want []WorkerEstimate) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d estimates, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Worker != w.Worker || g.Triples != w.Triples {
			t.Fatalf("%s: estimate %d is (worker %d, %d triples), want (worker %d, %d triples)",
				label, i, g.Worker, g.Triples, w.Worker, w.Triples)
		}
		if (g.Err == nil) != (w.Err == nil) {
			t.Fatalf("%s: estimate %d error mismatch: %v vs %v", label, i, g.Err, w.Err)
		}
		if g.Err != nil {
			if g.Err.Error() != w.Err.Error() {
				t.Fatalf("%s: estimate %d error text %q, want %q", label, i, g.Err, w.Err)
			}
			continue
		}
		if math.Float64bits(g.Interval.Lo) != math.Float64bits(w.Interval.Lo) ||
			math.Float64bits(g.Interval.Hi) != math.Float64bits(w.Interval.Hi) {
			t.Fatalf("%s: estimate %d interval [%v, %v] not bit-identical to [%v, %v]",
				label, i, g.Interval.Lo, g.Interval.Hi, w.Interval.Lo, w.Interval.Hi)
		}
	}
}

// TestStatsAccumulatorExact is the exactness contract behind the
// distributed layer: partition a stream by task across several evaluators,
// export each, merge the exports, and the accumulator's intervals are
// bit-identical to one Incremental fed everything.
func TestStatsAccumulatorExact(t *testing.T) {
	const workers, tasks, nodes = 9, 240, 3
	subs := exportTestStream(t, workers, tasks, 71)

	full, err := NewIncremental(workers)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]*Incremental, nodes)
	for i := range parts {
		if parts[i], err = NewIncremental(workers); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range subs {
		if err := full.Add(s.w, s.task, s.r); err != nil {
			t.Fatal(err)
		}
		if err := parts[s.task%nodes].Add(s.w, s.task, s.r); err != nil {
			t.Fatal(err)
		}
	}

	acc, err := NewStatsAccumulator(workers)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range parts {
		if err := acc.Merge(p.ExportStats()); err != nil {
			t.Fatal(err)
		}
	}
	if acc.Responses() != full.Responses() {
		t.Fatalf("accumulator has %d responses, want %d", acc.Responses(), full.Responses())
	}
	if acc.Tasks() != full.Tasks() {
		t.Fatalf("accumulator has %d tasks, want %d", acc.Tasks(), full.Tasks())
	}

	opts := EvalOptions{Confidence: 0.9}
	want, err := full.EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := acc.EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	sameEstimates(t, "merged vs single-process", got, want)

	// Re-export of the merged state must equal the full evaluator's export.
	if !reflect.DeepEqual(trimBitsets(acc.Export()), trimBitsets(full.ExportStats())) {
		t.Fatal("accumulator re-export differs from single-process export")
	}
}

// trimBitsets drops trailing zero words from attendance bitsets: merge
// order can leave different capacities behind identical bit contents.
func trimBitsets(e *StatsExport) *StatsExport {
	for i, words := range e.Responded {
		n := len(words)
		for n > 0 && words[n-1] == 0 {
			n--
		}
		e.Responded[i] = words[:n]
	}
	return e
}

// TestShardedExportMatchesIncremental: the sharded evaluator's merged
// export equals the single-shard evaluator's on the same responses.
func TestShardedExportMatchesIncremental(t *testing.T) {
	const workers, tasks = 7, 160
	subs := exportTestStream(t, workers, tasks, 13)
	inc, err := NewIncremental(workers)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewShardedIncremental(workers, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range subs {
		if err := inc.Add(s.w, s.task, s.r); err != nil {
			t.Fatal(err)
		}
		if err := sh.Add(s.w, s.task, s.r); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(trimBitsets(sh.ExportStats()), trimBitsets(inc.ExportStats())) {
		t.Fatal("sharded export differs from single-shard export")
	}
}

// TestExportIsDeepCopy: mutating an export must not corrupt the evaluator.
func TestExportIsDeepCopy(t *testing.T) {
	const workers = 5
	subs := exportTestStream(t, workers, 80, 3)
	inc, err := NewIncremental(workers)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range subs {
		if err := inc.Add(s.w, s.task, s.r); err != nil {
			t.Fatal(err)
		}
	}
	before, err := inc.EvaluateAll(EvalOptions{Confidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	e := inc.ExportStats()
	for i := range e.Agree {
		for j := range e.Agree[i] {
			e.Agree[i][j] += 1000
			e.Common[i][j] += 2000
		}
		for k := range e.Responded[i] {
			e.Responded[i][k] = ^e.Responded[i][k]
		}
	}
	after, err := inc.EvaluateAll(EvalOptions{Confidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	sameEstimates(t, "after export mutation", after, before)
}

// TestMergeValidation: malformed exports are rejected with clear errors.
func TestMergeValidation(t *testing.T) {
	acc, err := NewStatsAccumulator(4)
	if err != nil {
		t.Fatal(err)
	}
	base := func() *StatsExport {
		inc, err := NewIncremental(4)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range exportTestStream(t, 4, 40, 9) {
			if err := inc.Add(s.w, s.task, s.r); err != nil {
				t.Fatal(err)
			}
		}
		return inc.ExportStats()
	}
	cases := []struct {
		name   string
		mutate func(*StatsExport)
	}{
		{"worker-count mismatch", func(e *StatsExport) { e.Workers = 5 }},
		{"short counter rows", func(e *StatsExport) { e.Agree = e.Agree[:2] }},
		{"ragged row", func(e *StatsExport) { e.Common[1] = e.Common[1][:1] }},
		{"negative counter", func(e *StatsExport) { e.Agree[0][1] = -1; e.Agree[1][0] = -1 }},
		{"agree exceeds common", func(e *StatsExport) { e.Agree[0][1] = e.Common[0][1] + 1; e.Agree[1][0] = e.Agree[0][1] }},
		{"asymmetric", func(e *StatsExport) { e.Agree[0][1]++ }},
		{"negative totals", func(e *StatsExport) { e.Responses = -1 }},
		{"missing bitsets", func(e *StatsExport) { e.Responded = e.Responded[:1] }},
	}
	for _, tc := range cases {
		e := base()
		tc.mutate(e)
		if err := acc.Merge(e); err == nil {
			t.Errorf("%s: Merge accepted a malformed export", tc.name)
		}
	}
	// The untouched export still merges.
	if err := acc.Merge(base()); err != nil {
		t.Fatalf("valid export rejected: %v", err)
	}
}
