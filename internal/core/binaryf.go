package core

import (
	"fmt"
	"math"
)

// This file implements the binary estimator's closed form and its lemmas.
//
// With three workers, expected pairwise agreement rates relate to error
// rates by q_{i,j} = p_i p_j + (1−p_i)(1−p_j), which solves to the paper's
// Equation 1:
//
//	p_i = ½ − ½·√( (2q_{i,j}−1)(2q_{i,k}−1) / (2q_{j,k}−1) )
//
// fBinary computes that expression; fBinaryGrad its partial derivatives
// (Lemma 2); pairCovariance the agreement-rate covariances (Lemmas 1 and 3).

// fBinary evaluates f(a, b, c) = ½ − ½·√((2a−1)(2b−1)/(2c−1)), the error
// rate of the worker common to the pairs with agreement rates a and b, where
// c is the agreement rate of the remaining pair. It returns ErrDegenerate
// when any agreement rate is at or below ½ (the non-malicious-worker
// assumption q > ½ is violated, where f is singular or complex).
func fBinary(a, b, c float64) (float64, error) {
	ta, tb, tc := 2*a-1, 2*b-1, 2*c-1
	if ta <= 0 || tb <= 0 || tc <= 0 {
		return 0, fmt.Errorf("core: agreement rate ≤ ½ (q=%v,%v,%v): %w", a, b, c, ErrDegenerate)
	}
	return 0.5 - 0.5*math.Sqrt(ta*tb/tc), nil
}

// fBinaryGrad returns the partial derivatives (∂f/∂a, ∂f/∂b, ∂f/∂c) of
// fBinary at (a, b, c), per Lemma 2:
//
//	∂f/∂a = −√( (2b−1) / (4(2a−1)(2c−1)) )
//	∂f/∂b = −√( (2a−1) / (4(2b−1)(2c−1)) )
//	∂f/∂c = +√( (2a−1)(2b−1) / (4(2c−1)³) )
//
// (The paper states these with (q−½) factors; with 2q−1 = 2(q−½) the forms
// are identical.) The same domain restriction as fBinary applies.
func fBinaryGrad(a, b, c float64) (da, db, dc float64, err error) {
	ta, tb, tc := 2*a-1, 2*b-1, 2*c-1
	if ta <= 0 || tb <= 0 || tc <= 0 {
		return 0, 0, 0, fmt.Errorf("core: agreement rate ≤ ½ (q=%v,%v,%v): %w", a, b, c, ErrDegenerate)
	}
	da = -math.Sqrt(tb / (4 * ta * tc))
	db = -math.Sqrt(ta / (4 * tb * tc))
	dc = math.Sqrt(ta * tb / (4 * tc * tc * tc))
	return da, db, dc, nil
}

// pairVariance returns Var(Q_{i,j}) = q(1−q)/c for an agreement rate q
// estimated from c common tasks (Lemma 3, first case; Lemma 1 is c = n).
func pairVariance(q float64, common int) float64 {
	if common <= 0 {
		return math.Inf(1)
	}
	return q * (1 - q) / float64(common)
}

// pairCovariance returns Cov(Q_{i,j}, Q_{j,k}) for two agreement rates that
// share worker j (Lemma 3, second case; Lemma 1 is the regular special
// case):
//
//	Cov = c_{i,j,k} · p_j(1−p_j) · (2q_{i,k}−1) / (c_{i,j}·c_{j,k})
//
// where c_{i,j,k} counts tasks attempted by all three workers, p_j is the
// shared worker's error rate, and q_{i,k} the agreement rate of the
// non-shared pair.
func pairCovariance(pShared, qOther float64, common3, commonIJ, commonJK int) float64 {
	if commonIJ <= 0 || commonJK <= 0 {
		return 0
	}
	return float64(common3) * pShared * (1 - pShared) * (2*qOther - 1) /
		(float64(commonIJ) * float64(commonJK))
}
