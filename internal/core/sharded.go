package core

import (
	"fmt"
	"sync"

	"crowdassess/internal/crowd"
	"crowdassess/internal/mat"
)

// StreamingEvaluator is the contract shared by the single-shard
// Incremental and the concurrent ShardedIncremental: online ingestion of
// binary responses plus on-demand Algorithm A2 intervals over everything
// ingested so far. pool.Manager and the public facade program against this
// interface so deployments pick their ingestion model by constructor.
type StreamingEvaluator interface {
	// Add records worker w's response r on task t.
	Add(w, t int, r crowd.Response) error
	// Workers returns the number of workers tracked.
	Workers() int
	// Tasks returns the number of distinct task indices seen.
	Tasks() int
	// Responses returns the total number of responses recorded, in O(1).
	Responses() int
	// Evaluate returns the current error-rate interval for one worker.
	Evaluate(worker int, opts EvalOptions) (WorkerEstimate, error)
	// EvaluateAll returns current intervals for every worker.
	EvaluateAll(opts EvalOptions) ([]WorkerEstimate, error)
	// EvaluateSubset returns current intervals for the given worker
	// indices, aligned with the input slice — for callers that track
	// eligibility themselves and must not pay for discarded estimates.
	EvaluateSubset(workers []int, opts EvalOptions) ([]WorkerEstimate, error)
	// MajorityDisagreement runs the paper's spammer screen online.
	MajorityDisagreement() []float64
	// Snapshot materializes the accumulated responses as a Dataset.
	Snapshot() (*crowd.Dataset, error)
}

var (
	_ StreamingEvaluator = (*Incremental)(nil)
	_ StreamingEvaluator = (*ShardedIncremental)(nil)
)

// IncrementalOptions configures NewStreaming.
type IncrementalOptions struct {
	// Shards is the number of independent task-stripes ingestion is split
	// across. 0 or 1 selects the single-shard Incremental (single-goroutine
	// Add); 2+ selects ShardedIncremental (concurrent Add). Intervals are
	// identical either way.
	Shards int
}

// NewStreaming returns a streaming evaluator for the given number of
// binary workers, sharded per opts.
func NewStreaming(workers int, opts IncrementalOptions) (StreamingEvaluator, error) {
	if opts.Shards <= 1 {
		return NewIncremental(workers)
	}
	return NewShardedIncremental(workers, opts.Shards)
}

// ShardedIncremental is the concurrent form of Incremental: the task space
// is hash-partitioned into N stripes, each owned by a shard with its own
// lock, agree/common counters, attendance bitsets and mat.Workspace.
// Because every response for a task lands in exactly one shard, a shard's
// counters are the exact single-shard statistics of its stripe, and the
// integer counters are additive across stripes — so ingestion scales with
// shards while evaluation, which runs on the merged counters, produces
// bit-identical intervals to Incremental fed the same responses.
//
// Concurrency contract: Add is safe from any number of goroutines (two
// Adds contend only when their tasks hash to the same shard). Evaluate and
// EvaluateAll are safe concurrently with Add and with each other; each
// evaluation works from an immutable merged snapshot that reflects, per
// shard, every response ingested up to the moment the merge visited that
// shard. Merges are lazy: each shard carries an epoch advanced by Add, and
// a snapshot is rebuilt only when some shard's epoch moved — repeated
// evaluations of a quiescent pool reuse the previous merge.
type ShardedIncremental struct {
	workers int
	arity   int
	shards  []*incShard

	// mergeMu guards the lazy merge state below. merged is immutable once
	// published (re-merges build a fresh streamStats), so callers that
	// obtained it under mergeMu may keep reading it lock-free afterwards.
	mergeMu      sync.Mutex
	merged       *streamStats
	mergedEpochs []uint64
}

// incShard owns one task-stripe of a ShardedIncremental.
type incShard struct {
	// mu guards every ingestion field below it.
	mu    sync.Mutex
	epoch uint64 // advanced by every successful Add; drives lazy re-merges
	// taskResponses[t] lists (worker, response) pairs for task t of this
	// stripe.
	taskResponses map[int][]workerResponse
	stats         *streamStats
	tasks         int // highest task index seen in this stripe + 1
	responses     int // running response count for this stripe

	// ws is this shard's evaluation scratch (the PR 2 per-instance
	// workspace, now per-shard state). Guarded by wsMu, not mu, so a long
	// covariance solve never blocks ingestion into the shard.
	wsMu sync.Mutex
	ws   *mat.Workspace
}

// NewShardedIncremental returns an empty concurrent streaming evaluator
// for the given number of binary workers, with ingestion split across the
// given number of task-stripe shards. One shard behaves like Incremental
// with a lock around Add. Shard counts beyond GOMAXPROCS buy little; see
// the README's shard-sizing guidance.
func NewShardedIncremental(workers, shards int) (*ShardedIncremental, error) {
	if workers < 3 {
		return nil, fmt.Errorf("core: need at least 3 workers, have %d: %w", workers, ErrInsufficientData)
	}
	if shards < 1 {
		return nil, fmt.Errorf("core: need at least 1 shard, have %d", shards)
	}
	s := &ShardedIncremental{
		workers:      workers,
		arity:        2,
		shards:       make([]*incShard, shards),
		mergedEpochs: make([]uint64, shards),
	}
	for i := range s.shards {
		s.shards[i] = &incShard{
			taskResponses: make(map[int][]workerResponse),
			stats:         newStreamStats(workers),
			ws:            mat.NewWorkspace(),
		}
	}
	return s, nil
}

// shardOf routes task t to its stripe. The multiplicative hash spreads
// clustered task ids (batch uploads use contiguous ranges) evenly across
// shards so contiguous ingestion doesn't serialize on one lock.
func (s *ShardedIncremental) shardOf(t int) *incShard {
	h := uint64(t)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return s.shards[h%uint64(len(s.shards))]
}

// Workers returns the number of workers tracked.
func (s *ShardedIncremental) Workers() int { return s.workers }

// Shards returns the number of task-stripe shards.
func (s *ShardedIncremental) Shards() int { return len(s.shards) }

// Tasks returns the number of distinct task indices seen.
func (s *ShardedIncremental) Tasks() int {
	tasks := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.tasks > tasks {
			tasks = sh.tasks
		}
		sh.mu.Unlock()
	}
	return tasks
}

// Responses returns the total number of responses recorded.
func (s *ShardedIncremental) Responses() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.responses
		sh.mu.Unlock()
	}
	return n
}

// Add records worker w's response r on task t. It is safe to call from any
// number of goroutines; responses to tasks in different stripes never
// contend.
func (s *ShardedIncremental) Add(w, t int, r crowd.Response) error {
	if w < 0 || w >= s.workers {
		return fmt.Errorf("core: worker %d out of range 0…%d", w, s.workers-1)
	}
	if t < 0 {
		return fmt.Errorf("core: negative task index %d", t)
	}
	if r != crowd.Yes && r != crowd.No {
		return fmt.Errorf("core: streaming evaluator is binary; response %d: %w", r, crowd.ErrArity)
	}
	sh := s.shardOf(t)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.stats.responded[w].get(t) {
		return fmt.Errorf("core: worker %d already answered task %d", w, t)
	}
	sh.stats.record(w, t, r, sh.taskResponses[t])
	sh.taskResponses[t] = append(sh.taskResponses[t], workerResponse{w, r})
	sh.responses++
	if t+1 > sh.tasks {
		sh.tasks = t + 1
	}
	sh.epoch++
	return nil
}

// snapshot returns merged statistics covering every shard, rebuilding them
// only if some shard ingested since the last merge. The returned
// streamStats is never mutated afterwards, so the caller may read it
// without holding any lock.
func (s *ShardedIncremental) snapshot() *streamStats {
	s.mergeMu.Lock()
	defer s.mergeMu.Unlock()
	dirty := s.merged == nil
	for i, sh := range s.shards {
		if dirty {
			break
		}
		sh.mu.Lock()
		dirty = sh.epoch != s.mergedEpochs[i]
		sh.mu.Unlock()
	}
	if !dirty {
		return s.merged
	}
	m := newStreamStats(s.workers)
	for i, sh := range s.shards {
		sh.mu.Lock()
		m.addFrom(sh.stats)
		s.mergedEpochs[i] = sh.epoch
		sh.mu.Unlock()
	}
	s.merged = m
	return m
}

// Evaluate returns the current error-rate interval for one worker. It uses
// the workspace of the shard the worker index maps to, so evaluations of
// workers in different residue classes proceed in parallel.
func (s *ShardedIncremental) Evaluate(worker int, opts EvalOptions) (WorkerEstimate, error) {
	if err := checkConfidence(opts.Confidence); err != nil {
		return WorkerEstimate{}, err
	}
	if worker < 0 || worker >= s.workers {
		return WorkerEstimate{}, fmt.Errorf("core: worker %d out of range", worker)
	}
	minCommon := opts.MinCommon
	if minCommon <= 0 {
		minCommon = 1
	}
	m := s.snapshot()
	sh := s.shards[worker%len(s.shards)]
	sh.wsMu.Lock()
	defer func() {
		sh.ws.Reset()
		sh.wsMu.Unlock()
	}()
	return finishEstimate(evaluateOne(m, s.workers, worker, opts, minCommon, sh.ws), opts.Confidence), nil
}

// EvaluateAll returns current intervals for every worker, fanning the
// per-worker evaluations out across the shards' workspaces (one goroutine
// per shard, capped by the worker count). Per-worker results depend only
// on the merged snapshot, so the output is identical to evaluating the
// workers one at a time.
func (s *ShardedIncremental) EvaluateAll(opts EvalOptions) ([]WorkerEstimate, error) {
	if err := checkConfidence(opts.Confidence); err != nil {
		return nil, err
	}
	workers := make([]int, s.workers)
	for w := range workers {
		workers[w] = w
	}
	return s.evaluateMany(workers, opts), nil
}

// EvaluateSubset returns current intervals for the given worker indices,
// aligned with the input slice. One snapshot merge serves the whole
// subset, and only the listed workers are solved.
func (s *ShardedIncremental) EvaluateSubset(workers []int, opts EvalOptions) ([]WorkerEstimate, error) {
	if err := checkConfidence(opts.Confidence); err != nil {
		return nil, err
	}
	for _, w := range workers {
		if w < 0 || w >= s.workers {
			return nil, fmt.Errorf("core: worker %d out of range", w)
		}
	}
	return s.evaluateMany(workers, opts), nil
}

// evaluateMany solves the listed workers against one merged snapshot,
// striping them across the shards' workspaces. out[i] belongs to
// workers[i]; every slot is written by exactly one goroutine.
func (s *ShardedIncremental) evaluateMany(workers []int, opts EvalOptions) []WorkerEstimate {
	minCommon := opts.MinCommon
	if minCommon <= 0 {
		minCommon = 1
	}
	m := s.snapshot()
	out := make([]WorkerEstimate, len(workers))
	goroutines := len(s.shards)
	if goroutines > len(workers) {
		goroutines = len(workers)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sh := s.shards[g]
			sh.wsMu.Lock()
			defer func() {
				sh.ws.Reset()
				sh.wsMu.Unlock()
			}()
			for i := g; i < len(workers); i += goroutines {
				out[i] = finishEstimate(evaluateOne(m, s.workers, workers[i], opts, minCommon, sh.ws), opts.Confidence)
			}
		}(g)
	}
	wg.Wait()
	return out
}

// finishEstimate converts a WorkerDelta into the interval form at the
// given confidence level.
func finishEstimate(d WorkerDelta, confidence float64) WorkerEstimate {
	est := WorkerEstimate{Worker: d.Worker, Triples: d.Triples, Err: d.Err}
	if d.Err == nil {
		est.Interval = d.Est.Interval(confidence).ClampTo(0, 1)
	}
	return est
}

// Snapshot materializes the accumulated responses as a Dataset. Like
// Evaluate, it reflects each shard's responses as of the moment the shard
// was visited.
func (s *ShardedIncremental) Snapshot() (*crowd.Dataset, error) {
	// Hold every shard lock (in index order, the only multi-shard locking
	// in the package) so the materialized dataset is a point-in-time cut.
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	maps := make([]map[int][]workerResponse, len(s.shards))
	tasks := 0
	for i, sh := range s.shards {
		maps[i] = sh.taskResponses
		if sh.tasks > tasks {
			tasks = sh.tasks
		}
	}
	ds, err := snapshotDataset(s.workers, tasks, s.arity, maps...)
	for _, sh := range s.shards {
		sh.mu.Unlock()
	}
	return ds, err
}

// MajorityDisagreement runs the paper's spammer screen on the accumulated
// responses. Majorities are per task and each task lives in one stripe, so
// tallying shard by shard is exact.
func (s *ShardedIncremental) MajorityDisagreement() []float64 {
	return disagreementRates(s.DisagreementCounts())
}
