package core

import (
	"errors"
	"math"
	"testing"

	"crowdassess/internal/crowd"
	"crowdassess/internal/randx"
	"crowdassess/internal/sim"
)

func TestKAryPanelRecoversMatrices(t *testing.T) {
	src := randx.NewSource(1)
	// 7 workers drawn from the paper's arity-3 matrices; the panel should
	// recover everyone's matrix, not just a fixed triple's.
	ds, confs, err := sim.KAry{
		Tasks:            4000,
		Workers:          7,
		ConfusionChoices: sim.PaperMatricesArity3,
	}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	ests, err := EvaluateWorkersKAry(ds, KAryPanelOptions{Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 7 {
		t.Fatalf("%d estimates", len(ests))
	}
	for _, e := range ests {
		if e.Err != nil {
			t.Errorf("worker %d: %v", e.Worker, e.Err)
			continue
		}
		if e.Triples < 1 {
			t.Errorf("worker %d used %d triples", e.Worker, e.Triples)
		}
		for a := 0; a < 3; a++ {
			got := e.Mean.At(a, a)
			want := confs[e.Worker][a][a]
			if math.Abs(got-want) > 0.08 {
				t.Errorf("worker %d diag %d: %v, want ≈%v", e.Worker, a, got, want)
			}
		}
	}
}

func TestKAryPanelMoreTriplesTighter(t *testing.T) {
	// With 7 workers each worker gets 3 triples; capping at 1 should give
	// (weakly) wider combined deviations on average.
	src := randx.NewSource(2)
	ds, _, err := sim.KAry{
		Tasks:            2000,
		Workers:          7,
		ConfusionChoices: sim.PaperMatricesArity2,
	}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	full, err := EvaluateWorkersKAry(ds, KAryPanelOptions{Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := EvaluateWorkersKAry(ds, KAryPanelOptions{Confidence: 0.9, MaxTriples: 1})
	if err != nil {
		t.Fatal(err)
	}
	var fullDev, cappedDev float64
	n := 0
	for w := range full {
		if full[w].Err != nil || capped[w].Err != nil {
			continue
		}
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				fullDev += full[w].Dev.At(a, b)
				cappedDev += capped[w].Dev.At(a, b)
				n++
			}
		}
	}
	if n == 0 {
		t.Fatal("no comparable estimates")
	}
	if fullDev > cappedDev*1.001 {
		t.Errorf("more triples did not tighten: full %v vs capped %v", fullDev/float64(n), cappedDev/float64(n))
	}
}

func TestKAryPanelIntervals(t *testing.T) {
	src := randx.NewSource(3)
	ds, confs, err := sim.KAry{
		Tasks:            3000,
		Workers:          5,
		ConfusionChoices: sim.PaperMatricesArity2,
	}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	ests, err := EvaluateWorkersKAry(ds, KAryPanelOptions{Confidence: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	hits, total := 0, 0
	for _, e := range ests {
		if e.Err != nil {
			continue
		}
		ivs := e.Intervals(0.95)
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				total++
				if ivs[a][b].Contains(confs[e.Worker][a][b]) {
					hits++
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no intervals")
	}
	if cov := float64(hits) / float64(total); cov < 0.75 {
		t.Errorf("panel interval coverage %v at c=0.95", cov)
	}
}

func TestKAryPanelValidation(t *testing.T) {
	ds := crowd.MustNewDataset(2, 10, 3)
	if _, err := EvaluateWorkersKAry(ds, KAryPanelOptions{Confidence: 0.9}); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("2 workers: err = %v", err)
	}
	ds3 := crowd.MustNewDataset(3, 10, 3)
	if _, err := EvaluateWorkersKAry(ds3, KAryPanelOptions{Confidence: 0}); err == nil {
		t.Error("confidence 0 accepted")
	}
	// Empty dataset: per-worker insufficient-data errors, not a global one.
	ests, err := EvaluateWorkersKAry(ds3, KAryPanelOptions{Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ests {
		if !errors.Is(e.Err, ErrInsufficientData) {
			t.Errorf("worker %d err = %v", e.Worker, e.Err)
		}
	}
}

func TestKAryPanelSparse(t *testing.T) {
	// Sparse data: panel still produces estimates for well-connected
	// workers and flags the isolated one.
	src := randx.NewSource(4)
	densities := []float64{0.9, 0.9, 0.9, 0.9, 0.9, 0}
	ds, _, err := sim.KAry{
		Tasks:            1500,
		Workers:          6,
		ConfusionChoices: sim.PaperMatricesArity2,
		Densities:        densities,
	}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	ests, err := EvaluateWorkersKAry(ds, KAryPanelOptions{Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if ests[5].Err == nil {
		t.Error("isolated worker got an estimate")
	}
	usable := 0
	for w := 0; w < 5; w++ {
		if ests[w].Err == nil {
			usable++
		}
	}
	if usable < 4 {
		t.Errorf("only %d/5 connected workers evaluated", usable)
	}
}
