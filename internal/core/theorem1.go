// Package core implements the paper's contribution: confidence intervals on
// crowd-worker error rates without gold-standard answers.
//
// Three entry points mirror the paper's algorithms:
//
//   - ThreeWorkerBinary — Algorithm A1 generalized to non-regular data
//     (Sections III-A and III-B): closed-form estimation from pairwise
//     agreement rates.
//   - EvaluateWorkers — Algorithm A2 (Section III-C): m ≥ 3 workers,
//     non-regular data, aggregating per-triple estimates with
//     covariance-optimal linear weights.
//   - ThreeWorkerKAry — Algorithm A3 (Section IV-A): k-ary tasks via a
//     spectral decomposition of response-frequency matrices and a
//     numerically differentiated delta method.
//
// All three are built on DeltaMethod, the paper's Theorem 1.
package core

import (
	"errors"
	"fmt"
	"math"

	"crowdassess/internal/mat"
	"crowdassess/internal/stat"
)

// ErrDegenerate is returned when a sample is too pathological for the
// estimator: an agreement rate at or below ½ (the paper's f has a
// singularity there), a negative value under a square root, or a singular
// spectral decomposition. The paper notes the probability of this falls
// exponentially with the number of tasks; harnesses count such failures.
var ErrDegenerate = errors.New("core: degenerate sample")

// ErrInsufficientData is returned when workers share too few tasks for any
// estimate to exist (for example, a pair with no common tasks).
var ErrInsufficientData = errors.New("core: insufficient common tasks")

// DeltaEstimate is the output of DeltaMethod: the approximate distribution
// of Y = f(X₁,…,X_k) per Theorem 1.
type DeltaEstimate struct {
	Mean float64 // f(e₁,…,e_k)
	Dev  float64 // √(dᵀΣd)
}

// DeltaMethod applies the paper's Theorem 1: given the value of f at the
// estimate vector, the gradient d of f there, and the covariance matrix Σ of
// the inputs, it returns the approximate mean and standard deviation of Y.
// It returns ErrDegenerate when the quadratic form is not finite or is
// negative beyond roundoff (Σ built from plug-in estimates need not be PSD;
// tiny negatives are clamped to zero).
func DeltaMethod(fAtMean float64, grad []float64, cov *mat.Matrix) (DeltaEstimate, error) {
	n := len(grad)
	if cov.Rows() != n || cov.Cols() != n {
		return DeltaEstimate{}, fmt.Errorf("core: gradient length %d vs covariance %d×%d: %w",
			n, cov.Rows(), cov.Cols(), mat.ErrShape)
	}
	return DeltaMethodCov(fAtMean, grad, DenseCov{cov})
}

// DeltaMethodCov is DeltaMethod over any CovQuadForm — the same Theorem 1
// computation, with the covariance abstracted so structured implementations
// (MultinomialCov in Algorithm A3) can evaluate dᵀΣd without materializing Σ.
func DeltaMethodCov(fAtMean float64, grad []float64, cov CovQuadForm) (DeltaEstimate, error) {
	if cov.Dim() != len(grad) {
		return DeltaEstimate{}, fmt.Errorf("core: gradient length %d vs covariance dimension %d: %w",
			len(grad), cov.Dim(), mat.ErrShape)
	}
	variance := cov.Quad(grad)
	if math.IsNaN(variance) || math.IsInf(variance, 0) {
		return DeltaEstimate{}, fmt.Errorf("core: non-finite variance: %w", ErrDegenerate)
	}
	if variance < 0 {
		// Plug-in covariance estimates can dip slightly negative; clamp
		// small violations, reject gross ones.
		scale := cov.DiagAbsQuad(grad)
		if variance < -1e-9-1e-6*scale {
			return DeltaEstimate{}, fmt.Errorf("core: negative variance %g: %w", variance, ErrDegenerate)
		}
		variance = 0
	}
	return DeltaEstimate{Mean: fAtMean, Dev: math.Sqrt(variance)}, nil
}

// Interval converts the estimate into a c-confidence interval
// mean ± z_{(1+c)/2}·dev (Theorem 1, Equation 2).
func (d DeltaEstimate) Interval(c float64) stat.Interval {
	half := stat.ConfidenceZ(c) * d.Dev
	return stat.NewInterval(d.Mean, half, c)
}
