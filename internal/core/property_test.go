package core

import (
	"testing"
	"testing/quick"

	"crowdassess/internal/crowd"
	"crowdassess/internal/randx"
	"crowdassess/internal/sim"
)

// Property: intervals are nested in the confidence level — a higher-c
// interval contains every lower-c interval around the same estimate.
func TestIntervalNestingProperty(t *testing.T) {
	f := func(seed int64) bool {
		src := randx.NewSource(seed)
		ds, _, err := sim.Binary{Tasks: 80, Workers: 5, Density: 0.8}.Generate(src)
		if err != nil {
			return false
		}
		deltas, err := EvaluateWorkersDelta(ds, EvalOptions{})
		if err != nil {
			return false
		}
		for _, d := range deltas {
			if d.Err != nil {
				continue
			}
			prevLo, prevHi := d.Est.Interval(0.05).Lo, d.Est.Interval(0.05).Hi
			for c := 0.1; c < 1; c += 0.1 {
				iv := d.Est.Interval(c)
				if iv.Lo > prevLo+1e-12 || iv.Hi < prevHi-1e-12 {
					return false
				}
				prevLo, prevHi = iv.Lo, iv.Hi
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: more tasks ⇒ (stochastically) tighter intervals. Compared in
// aggregate across seeds to keep the assertion deterministic.
func TestMoreDataTightensIntervals(t *testing.T) {
	var small, large float64
	count := 0
	for seed := int64(0); seed < 25; seed++ {
		srcA := randx.NewSource(900 + seed)
		dsA, _, err := sim.Binary{Tasks: 80, Workers: 5}.Generate(srcA)
		if err != nil {
			t.Fatal(err)
		}
		srcB := randx.NewSource(900 + seed)
		dsB, _, err := sim.Binary{Tasks: 640, Workers: 5}.Generate(srcB)
		if err != nil {
			t.Fatal(err)
		}
		a, err := EvaluateWorkersDelta(dsA, EvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := EvaluateWorkersDelta(dsB, EvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for w := range a {
			if a[w].Err != nil || b[w].Err != nil {
				continue
			}
			small += a[w].Est.Interval(0.9).Size()
			large += b[w].Est.Interval(0.9).Size()
			count++
		}
	}
	if count < 100 {
		t.Fatalf("only %d comparisons", count)
	}
	// √8 ≈ 2.8× tighter expected; demand at least 2×.
	if large*2 > small {
		t.Errorf("8× data only tightened %0.2fx (small %v, large %v)",
			small/large, small/float64(count), large/float64(count))
	}
}

// Property: worker relabelling is a symmetry — permuting worker indices
// permutes the estimates but does not change any interval.
func TestWorkerPermutationInvariance(t *testing.T) {
	src := randx.NewSource(3)
	ds, _, err := sim.Binary{Tasks: 150, Workers: 6, Density: 0.8}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	perm := []int{4, 2, 0, 5, 1, 3}
	permuted, err := ds.SelectWorkers(perm)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := EvaluateWorkers(ds, EvalOptions{Confidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvaluateWorkers(permuted, EvalOptions{Confidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	for newIdx, oldIdx := range perm {
		a, b := orig[oldIdx], got[newIdx]
		if (a.Err == nil) != (b.Err == nil) {
			t.Fatalf("worker %d: error mismatch under permutation", oldIdx)
		}
		if a.Err != nil {
			continue
		}
		// Triple formation depends only on overlap counts, which are
		// permutation-invariant up to ties; sizes must agree closely.
		if diff := a.Interval.Size() - b.Interval.Size(); diff > 1e-9 || diff < -1e-9 {
			// Ties in the greedy ordering can legitimately flip pairings;
			// accept equal-size-or-tie-break differences below a loose bound.
			if diff > 0.05 || diff < -0.05 {
				t.Errorf("worker %d: size changed under permutation: %v vs %v",
					oldIdx, a.Interval.Size(), b.Interval.Size())
			}
		}
	}
}

// Property: the k-ary estimate is invariant to the order of the two
// partner workers given the same evaluated worker... the spectral method
// uses the workers asymmetrically, so exact invariance is NOT expected;
// this test pins the weaker guarantee that both orderings stay near the
// truth.
func TestKAryPartnerOrderStability(t *testing.T) {
	src := randx.NewSource(4)
	confs := []sim.Confusion{
		sim.PaperMatricesArity2[0],
		sim.PaperMatricesArity2[1],
		sim.PaperMatricesArity2[2],
	}
	ds, _, err := sim.KAry{Tasks: 3000, Workers: 3, Confusions: confs}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ThreeWorkerKAry(ds, [3]int{0, 1, 2}, KAryOptions{Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ThreeWorkerKAry(ds, [3]int{0, 2, 1}, KAryOptions{Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			da := a.Prob[0].At(i, j) - confs[0][i][j]
			db := b.Prob[0].At(i, j) - confs[0][i][j]
			if da > 0.06 || da < -0.06 || db > 0.06 || db < -0.06 {
				t.Errorf("P(%d,%d): orderings deviate %v / %v from truth", i, j, da, db)
			}
		}
	}
}

// Property: parallel evaluation returns bit-identical results to serial.
func TestParallelMatchesSerial(t *testing.T) {
	src := randx.NewSource(5)
	ds, _, err := sim.Binary{Tasks: 200, Workers: 15, Density: 0.7}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := EvaluateWorkers(ds, EvalOptions{Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := EvaluateWorkers(ds, EvalOptions{Confidence: 0.9, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	for w := range serial {
		if (serial[w].Err == nil) != (parallel[w].Err == nil) {
			t.Fatalf("worker %d: error mismatch", w)
		}
		if serial[w].Err != nil {
			continue
		}
		if serial[w].Interval != parallel[w].Interval {
			t.Errorf("worker %d: %v vs %v", w, serial[w].Interval, parallel[w].Interval)
		}
	}
}

// Property: a dataset whose responses all agree yields zero estimated
// error rates (the q → 1 limit of Equation 1).
func TestPerfectAgreementLimit(t *testing.T) {
	ds := crowd.MustNewDataset(3, 50, 2)
	for task := 0; task < 50; task++ {
		for w := 0; w < 3; w++ {
			_ = ds.SetResponse(w, task, crowd.Yes)
		}
	}
	ivs, err := ThreeWorkerBinary(ds, [3]int{0, 1, 2}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for w, iv := range ivs {
		if iv.Mean != 0 {
			t.Errorf("worker %d mean %v, want 0", w, iv.Mean)
		}
		if iv.Size() > 1e-9 {
			t.Errorf("worker %d interval %v not degenerate at 0", w, iv)
		}
	}
}
