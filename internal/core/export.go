package core

import (
	"fmt"
	"sync"

	"crowdassess/internal/mat"
)

// StatsExport is the serialization-neutral form of the streaming sufficient
// statistics: the symmetric pairwise agree/common counters and per-worker
// attendance bitsets that Algorithm A2's streaming path accumulates.
// Everything in it is an integer, and exports built from disjoint task sets
// merge exactly — summing counters and unioning bitsets yields the same
// statistics, bit for bit, as ingesting the union of the responses into one
// evaluator. That additivity is what lets a distributed deployment ship
// per-machine exports to a coordinator and still evaluate exactly.
//
// An export is a deep copy: mutating it never affects the evaluator it came
// from, and vice versa.
type StatsExport struct {
	// Workers is the crowd size the counters are indexed by.
	Workers int
	// Tasks is the number of distinct task indices seen (max index + 1).
	Tasks int
	// Responses is the total number of responses behind the counters.
	Responses int
	// Agree[i][j] counts tasks where workers i and j gave the same answer;
	// symmetric, diagonal unused.
	Agree [][]int
	// Common[i][j] counts tasks both i and j answered; symmetric, diagonal
	// unused.
	Common [][]int
	// Responded[i] is worker i's attendance bitset over task indices
	// (little-endian 64-bit words).
	Responded [][]uint64
}

// exportStats deep-copies a streamStats into the exported form.
func exportStats(s *streamStats, workers, tasks, responses int) *StatsExport {
	e := &StatsExport{
		Workers:   workers,
		Tasks:     tasks,
		Responses: responses,
		Agree:     make([][]int, workers),
		Common:    make([][]int, workers),
		Responded: make([][]uint64, workers),
	}
	for i := 0; i < workers; i++ {
		e.Agree[i] = append([]int(nil), s.agree[i]...)
		e.Common[i] = append([]int(nil), s.common[i]...)
		e.Responded[i] = append([]uint64(nil), s.responded[i]...)
	}
	return e
}

// ExportStats snapshots the accumulated sufficient statistics. The caller
// owns the copy; Add may continue concurrently with uses of the export (but
// Add itself is single-goroutine on Incremental, so the snapshot must not
// race with it).
func (inc *Incremental) ExportStats() *StatsExport {
	return exportStats(inc.streamStats, inc.workers, inc.tasks, inc.responses)
}

// ExportStats snapshots the merged sufficient statistics across every
// shard. Like Evaluate, it reflects each shard's responses as of the moment
// the lazy merge visited that shard; it is safe to call concurrently with
// Add and with evaluations.
func (s *ShardedIncremental) ExportStats() *StatsExport {
	// The merged snapshot is immutable once published, so copying it out
	// needs no locks. Tasks/Responses are read afterwards and may run ahead
	// of the snapshot — harmless for the streaming semantics, and the
	// counters themselves are always a consistent per-shard cut.
	m := s.snapshot()
	return exportStats(m, s.workers, s.Tasks(), s.Responses())
}

// validate checks the structural invariants a well-formed export satisfies.
// It guards the merge path against corrupted or truncated wire payloads;
// it cannot detect a peer that lies consistently.
func (e *StatsExport) validate() error {
	if e.Workers < 3 {
		return fmt.Errorf("core: export needs at least 3 workers, has %d: %w", e.Workers, ErrInsufficientData)
	}
	if e.Tasks < 0 || e.Responses < 0 {
		return fmt.Errorf("core: export has negative totals (tasks %d, responses %d)", e.Tasks, e.Responses)
	}
	if len(e.Agree) != e.Workers || len(e.Common) != e.Workers || len(e.Responded) != e.Workers {
		return fmt.Errorf("core: export row counts (%d, %d, %d) do not match %d workers",
			len(e.Agree), len(e.Common), len(e.Responded), e.Workers)
	}
	for i := 0; i < e.Workers; i++ {
		if len(e.Agree[i]) != e.Workers || len(e.Common[i]) != e.Workers {
			return fmt.Errorf("core: export counter row %d has length (%d, %d), want %d",
				i, len(e.Agree[i]), len(e.Common[i]), e.Workers)
		}
		for j := 0; j < e.Workers; j++ {
			a, c := e.Agree[i][j], e.Common[i][j]
			if a < 0 || c < 0 {
				return fmt.Errorf("core: export counter (%d,%d) is negative", i, j)
			}
			if i != j && a > c {
				return fmt.Errorf("core: export agree[%d][%d]=%d exceeds common=%d", i, j, a, c)
			}
			if e.Agree[j][i] != a || e.Common[j][i] != c {
				return fmt.Errorf("core: export counters (%d,%d) are not symmetric", i, j)
			}
		}
	}
	return nil
}

// toStreamStats adapts a validated export for the addFrom reducer. The
// returned streamStats aliases the export's slices; addFrom only reads its
// argument, so no copy is needed. Exports carry no answer bitsets, so the
// adapted stats contribute none — a StatsAccumulator therefore cannot be
// compact-checkpointed, only evaluated (see compact.go).
func (e *StatsExport) toStreamStats() *streamStats {
	s := &streamStats{
		agree:     e.Agree,
		common:    e.Common,
		responded: make([]dynBitset, len(e.Responded)),
	}
	for i, words := range e.Responded {
		s.responded[i] = dynBitset(words)
	}
	return s
}

// StatsAccumulator merges stream-statistics exports through the same
// addFrom reducer the sharded evaluator uses, then evaluates once on the
// merged counters. It is the coordinator half of a distributed deployment:
// workers ingest responses for disjoint task sets, export their statistics,
// and the accumulator's intervals are bit-identical to a single Incremental
// fed every response — the merge is exact integer addition, and evaluation
// runs the very same Algorithm A2 code path.
//
// Merge and the evaluation methods are safe for concurrent use.
type StatsAccumulator struct {
	workers int

	mu        sync.Mutex
	stats     *streamStats
	tasks     int
	responses int

	wsPool sync.Pool
}

// NewStatsAccumulator returns an empty accumulator for a crowd of the given
// size. Every merged export must carry the same worker count.
func NewStatsAccumulator(workers int) (*StatsAccumulator, error) {
	if workers < 3 {
		return nil, fmt.Errorf("core: need at least 3 workers, have %d: %w", workers, ErrInsufficientData)
	}
	return &StatsAccumulator{
		workers: workers,
		stats:   newStreamStats(workers),
		wsPool:  sync.Pool{New: func() any { return mat.NewWorkspace() }},
	}, nil
}

// Workers returns the crowd size the accumulator is indexed by.
func (a *StatsAccumulator) Workers() int { return a.workers }

// Tasks returns the largest task count over the merged exports.
func (a *StatsAccumulator) Tasks() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tasks
}

// Responses returns the total responses over the merged exports.
func (a *StatsAccumulator) Responses() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.responses
}

// Merge folds one export into the accumulator: counter sums and attendance
// unions, exactly as the sharded evaluator merges its stripes. The task
// sets behind the merged exports must be disjoint (each task's responses
// ingested on exactly one exporter) for the result to equal a single
// evaluator's statistics; that partitioning is the distributed layer's
// routing contract.
func (a *StatsAccumulator) Merge(e *StatsExport) error {
	if e.Workers != a.workers {
		return fmt.Errorf("core: export for %d workers cannot merge into accumulator for %d", e.Workers, a.workers)
	}
	if err := e.validate(); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stats.addFrom(e.toStreamStats())
	if e.Tasks > a.tasks {
		a.tasks = e.Tasks
	}
	a.responses += e.Responses
	return nil
}

// Export re-exports the merged statistics, so accumulators can themselves
// feed a higher tier of aggregation.
func (a *StatsAccumulator) Export() *StatsExport {
	a.mu.Lock()
	defer a.mu.Unlock()
	return exportStats(a.stats, a.workers, a.tasks, a.responses)
}

// Evaluate returns the error-rate interval for one worker from the merged
// statistics. The computation is the exact Algorithm A2 path Incremental
// runs, so on equal counters the result is bit-identical.
func (a *StatsAccumulator) Evaluate(worker int, opts EvalOptions) (WorkerEstimate, error) {
	if err := checkConfidence(opts.Confidence); err != nil {
		return WorkerEstimate{}, err
	}
	if worker < 0 || worker >= a.workers {
		return WorkerEstimate{}, fmt.Errorf("core: worker %d out of range", worker)
	}
	minCommon := opts.MinCommon
	if minCommon <= 0 {
		minCommon = 1
	}
	// addFrom mutates a.stats in place, so unlike ShardedIncremental's
	// immutable snapshots the evaluation must hold the lock against a
	// concurrent Merge.
	a.mu.Lock()
	defer a.mu.Unlock()
	ws := a.wsPool.Get().(*mat.Workspace)
	defer func() {
		ws.Reset()
		a.wsPool.Put(ws)
	}()
	return finishEstimate(evaluateOne(a.stats, a.workers, worker, opts, minCommon, ws), opts.Confidence), nil
}

// EvaluateAll returns intervals for every worker from the merged
// statistics.
func (a *StatsAccumulator) EvaluateAll(opts EvalOptions) ([]WorkerEstimate, error) {
	workers := make([]int, a.workers)
	for w := range workers {
		workers[w] = w
	}
	return a.EvaluateSubset(workers, opts)
}

// EvaluateSubset returns intervals for the given worker indices, aligned
// with the input slice.
func (a *StatsAccumulator) EvaluateSubset(workers []int, opts EvalOptions) ([]WorkerEstimate, error) {
	if err := checkConfidence(opts.Confidence); err != nil {
		return nil, err
	}
	for _, w := range workers {
		if w < 0 || w >= a.workers {
			return nil, fmt.Errorf("core: worker %d out of range", w)
		}
	}
	minCommon := opts.MinCommon
	if minCommon <= 0 {
		minCommon = 1
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	ws := a.wsPool.Get().(*mat.Workspace)
	defer func() {
		ws.Reset()
		a.wsPool.Put(ws)
	}()
	out := make([]WorkerEstimate, len(workers))
	for i, w := range workers {
		out[i] = finishEstimate(evaluateOne(a.stats, a.workers, w, opts, minCommon, ws), opts.Confidence)
	}
	return out, nil
}
