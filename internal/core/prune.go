package core

import (
	"fmt"

	"crowdassess/internal/crowd"
)

// DefaultPruneThreshold is the paper's spammer cutoff: workers whose
// majority-vote disagreement exceeds 0.4 are "almost surely pure spammers"
// (Section III-E2).
const DefaultPruneThreshold = 0.4

// PruneSpammers removes workers whose disagreement with the majority vote
// exceeds threshold, the preprocessing step the paper applies before Fig. 4.
// It returns the pruned dataset and the original indices of the kept
// workers. A non-positive threshold selects DefaultPruneThreshold.
// An error is returned when fewer than three workers survive (the main
// algorithms need at least a triple).
func PruneSpammers(ds *crowd.Dataset, threshold float64) (*crowd.Dataset, []int, error) {
	if threshold <= 0 {
		threshold = DefaultPruneThreshold
	}
	dis := ds.MajorityDisagreement()
	var keep []int
	for w, d := range dis {
		if d <= threshold {
			keep = append(keep, w)
		}
	}
	if len(keep) < 3 {
		return nil, nil, fmt.Errorf("core: only %d workers survive pruning at %.2f: %w",
			len(keep), threshold, ErrInsufficientData)
	}
	pruned, err := ds.SelectWorkers(keep)
	if err != nil {
		return nil, nil, err
	}
	return pruned, keep, nil
}
