package core

import (
	"testing"

	"crowdassess/internal/crowd"
	"crowdassess/internal/mat"
)

// synthConfusion builds a diagonally dominant, worker- and row-asymmetric
// confusion matrix for any arity: distinct spectra keep the A3 spectral
// step non-degenerate at every k, unlike uniform off-diagonal mass.
func synthConfusion(k, w int) [][]float64 {
	p := make([][]float64, k)
	for a := range p {
		p[a] = make([]float64, k)
		var sum float64
		for b := range p[a] {
			d := a - b
			if d < 0 {
				d = -d
			}
			v := 1 / (1 + float64(d)*(1.3+0.4*float64(w)))
			if a == b {
				v += 1.5 + 0.13*float64(a) + 0.21*float64(w)
			}
			p[a][b] = v
			sum += v
		}
		for b := range p[a] {
			p[a][b] /= sum
		}
	}
	return p
}

// synthCounts builds the expected A3 counts tensor for three synthetic
// workers over n regular tasks — the same construction as exactCounts but
// available at any arity.
func synthCounts(k int, n float64) *crowd.Tensor3 {
	p1, p2, p3 := synthConfusion(k, 0), synthConfusion(k, 1), synthConfusion(k, 2)
	sel := make([]float64, k)
	var selSum float64
	for i := range sel {
		sel[i] = 1 + 0.17*float64(i)
		selSum += sel[i]
	}
	for i := range sel {
		sel[i] /= selSum
	}
	t3 := crowd.NewTensor3(k)
	for a := 1; a <= k; a++ {
		for b := 1; b <= k; b++ {
			for c := 1; c <= k; c++ {
				var v float64
				for t := 0; t < k; t++ {
					v += sel[t] * p1[t][a-1] * p2[t][b-1] * p3[t][c-1]
				}
				t3.Set(a, b, c, n*v)
			}
		}
	}
	return t3
}

// BenchmarkProbEstimate measures the steady-state spectral step with a
// warmed per-goroutine workspace — the configuration the gradient loop
// runs in. The interesting numbers are ns/op versus the PR 1 baseline
// (value-returning mat API) and allocs/op, which must be 0.
func BenchmarkProbEstimate(b *testing.B) {
	for _, k := range []int{2, 3, 4, 6, 8} {
		b.Run("k"+itoaTest(k), func(b *testing.B) {
			counts := synthCounts(k, 5000)
			ws := mat.NewWorkspace()
			if _, err := probEstimate(counts, KAryOptions{}, ws); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ws.Reset()
				if _, err := probEstimate(counts, KAryOptions{}, ws); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLemma4Quad measures the structured Lemma-4 quadratic form
// against materializing the dense l×l matrix and evaluating it.
func BenchmarkLemma4Quad(b *testing.B) {
	cov, weights := benchLemma4(b, 51)
	b.Run("structured", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkFloat = cov.Quad(weights)
		}
	})
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst := mat.New(cov.Dim(), cov.Dim())
			cov.MaterializeInto(dst)
			sinkFloat = (DenseCov{dst}).Quad(weights)
		}
	})
}

var sinkFloat float64

func itoaTest(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
