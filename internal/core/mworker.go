package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"crowdassess/internal/crowd"
	"crowdassess/internal/mat"
	"crowdassess/internal/stat"
)

// WeightStrategy selects how Algorithm A2 combines the estimates from a
// worker's triples (Section III-C1, "Setting a_k").
type WeightStrategy int

const (
	// OptimalWeights minimizes the combined variance via Lemma 5:
	// a = C⁻¹𝟙 / ‖C⁻¹𝟙‖₁. This is the paper's default and the subject of
	// the Fig. 2(c) ablation.
	OptimalWeights WeightStrategy = iota
	// UniformWeights sets every a_k = 1/l. Valid but looser intervals.
	UniformWeights
)

// PairingStrategy selects how the remaining workers are split into pairs
// (Section III-C1, "Selecting triples").
type PairingStrategy int

const (
	// GreedyPairing sorts candidates by common-task count with the evaluated
	// worker and pairs them greedily — the paper's strategy, which
	// concentrates quality in a few excellent triples.
	GreedyPairing PairingStrategy = iota
	// ArbitraryPairing pairs candidates in index order. Used as the
	// ablation baseline for the pairing strategy.
	ArbitraryPairing
)

// EvalOptions configures EvaluateWorkers.
type EvalOptions struct {
	// Confidence is the interval confidence level c ∈ (0,1). Required.
	Confidence float64
	// Weights selects the triple-combination strategy (default optimal).
	Weights WeightStrategy
	// Pairing selects the triple-formation strategy (default greedy).
	Pairing PairingStrategy
	// MinCommon is the minimum number of common tasks for a pair of workers
	// to be usable. The paper requires at least one; higher values trade
	// coverage for stability. Zero means 1.
	MinCommon int
	// Parallel evaluates workers on GOMAXPROCS goroutines. Per-worker
	// evaluations are independent (they share only the read-only statistics
	// cache), so results are identical to the serial path.
	Parallel bool
}

// WorkerEstimate is the outcome of evaluating one worker with Algorithm A2.
type WorkerEstimate struct {
	Worker   int           // worker index in the dataset
	Interval stat.Interval // confidence interval for the error rate
	Triples  int           // number of triples aggregated
	Err      error         // non-nil when no estimate exists for this worker
}

// WorkerDelta is the confidence-level-independent part of a worker's
// Algorithm A2 estimate: an interval at any level c is
// Est.Interval(c).ClampTo(0, 1). Experiment harnesses sweeping confidence
// levels use this to estimate once and derive every interval.
type WorkerDelta struct {
	Worker  int
	Est     DeltaEstimate
	Triples int
	Err     error
}

// EvaluateWorkers runs Algorithm A2: for every worker it forms triples with
// pairs of other workers, runs the 3-worker estimator per triple, and
// combines the per-triple estimates with covariance-aware weights into a
// single confidence interval. Workers whose data is insufficient or
// degenerate get a non-nil Err in their slot; the method never fails as a
// whole unless the dataset or options are invalid.
func EvaluateWorkers(ds *crowd.Dataset, opts EvalOptions) ([]WorkerEstimate, error) {
	if err := checkConfidence(opts.Confidence); err != nil {
		return nil, err
	}
	deltas, err := EvaluateWorkersDelta(ds, opts)
	if err != nil {
		return nil, err
	}
	out := make([]WorkerEstimate, len(deltas))
	for i, d := range deltas {
		out[i] = WorkerEstimate{Worker: d.Worker, Triples: d.Triples, Err: d.Err}
		if d.Err == nil {
			out[i].Interval = d.Est.Interval(opts.Confidence).ClampTo(0, 1)
		}
	}
	return out, nil
}

// EvaluateWorkersDelta is EvaluateWorkers without committing to a confidence
// level: it returns each worker's delta-method mean and deviation.
// opts.Confidence is ignored here.
func EvaluateWorkersDelta(ds *crowd.Dataset, opts EvalOptions) ([]WorkerDelta, error) {
	if ds.Arity() != 2 {
		return nil, fmt.Errorf("core: EvaluateWorkers needs a binary dataset, got arity %d", ds.Arity())
	}
	m := ds.Workers()
	if m < 3 {
		return nil, fmt.Errorf("core: need at least 3 workers, have %d: %w", m, ErrInsufficientData)
	}
	minCommon := opts.MinCommon
	if minCommon <= 0 {
		minCommon = 1
	}
	cache := newFullStatsCache(ds)
	out := make([]WorkerDelta, m)
	if opts.Parallel {
		// Worker-pool fan-out with one mat.Workspace per goroutine: each
		// worker index writes only its own slot, so results are identical to
		// the serial path while the covariance scratch is reused rather than
		// reallocated per worker.
		goroutines := runtime.GOMAXPROCS(0)
		if goroutines > m {
			goroutines = m
		}
		next := make(chan int)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ws := mat.NewWorkspace()
				for i := range next {
					out[i] = evaluateOne(cache, m, i, opts, minCommon, ws)
				}
			}()
		}
		for i := 0; i < m; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
		return out, nil
	}
	ws := mat.NewWorkspace()
	for i := 0; i < m; i++ {
		out[i] = evaluateOne(cache, m, i, opts, minCommon, ws)
	}
	return out, nil
}

// agreementSource is what Algorithm A2 needs from its statistics provider:
// pairwise agreement statistics and triple common-task counts. Both the
// batch cache (fullStatsCache) and the streaming evaluator implement it.
type agreementSource interface {
	pairSource
}

// evaluateOne runs steps 1–3 of Algorithm A2 for a single worker. ws is
// the calling goroutine's scratch workspace for the Lemma 5 weight solve;
// it is rewound here, so nothing handed out by it may outlive the call.
func evaluateOne(cache agreementSource, m, i int, opts EvalOptions, minCommon int, ws *mat.Workspace) WorkerDelta {
	ws.Reset()
	est := WorkerDelta{Worker: i}
	pairs := formPairs(cache, m, i, opts.Pairing, minCommon)
	if len(pairs) == 0 {
		est.Err = fmt.Errorf("core: worker %d has no usable triple: %w", i, ErrInsufficientData)
		return est
	}

	// Step 2: per-triple statistics and delta estimates for worker i.
	type tripleResult struct {
		st    *tripleStats
		est   DeltaEstimate
		j1    int // partner workers
		j2    int
		dQij1 float64 // ∂p_i/∂q_{i,j1}
		dQij2 float64 // ∂p_i/∂q_{i,j2}
	}
	var triples []tripleResult
	for _, pr := range pairs {
		st, err := newTripleStats(cache, i, pr[0], pr[1])
		if err != nil {
			continue // degenerate triple: skip, as the 500-replicate harness does
		}
		de, err := st.estimate(0) // worker i sits at position 0 of the triple
		if err != nil {
			continue
		}
		triples = append(triples, tripleResult{
			st: st, est: de, j1: pr[0], j2: pr[1],
			// For triple (i, j1, j2): q-vector is (q_{i,j1}, q_{i,j2}, q_{j1,j2}),
			// so worker i's own-pair derivatives are components 0 and 1.
			dQij1: st.grad[0][0],
			dQij2: st.grad[0][1],
		})
	}
	l := len(triples)
	if l == 0 {
		est.Err = fmt.Errorf("core: worker %d: all triples degenerate: %w", i, ErrDegenerate)
		return est
	}
	est.Triples = l

	// Pooled error-rate estimate for worker i, used inside Lemma 4's C(i,·,·).
	var pPool float64
	for _, tr := range triples {
		pPool += tr.est.Mean
	}
	pPool /= float64(l)
	pPool = stat.Clamp01(pPool)

	// Step 3: the l×l covariance of the triple estimates (Lemma 4), in
	// structured form: entries are generated on demand from the per-triple
	// gradients and the agreement cache, so nothing l×l is allocated per
	// worker. Each Lemma-4 entry costs four popcount-backed cache lookups,
	// so it should be computed at most once: the Lemma 5 solve below has to
	// materialize the matrix anyway (into reusable workspace scratch), and
	// when it does, the delta method reads that scratch rather than
	// regenerating entries; with uniform weights (or a single triple) no
	// matrix is ever built and the structured quadratic form is used
	// directly. Both routes produce bit-identical entries.
	cov := newLemma4Cov(cache, i, pPool, l, ws)
	for _, tr := range triples {
		cov.add(tr.est.Dev*tr.est.Dev, tr.dQij1, tr.j1, tr.dQij2, tr.j2)
	}

	// Combination weights (Lemma 5 or uniform). The solve materializes the
	// covariance into workspace scratch, which cov then serves Quad from.
	weights := uniformWeights(l)
	if opts.Weights == OptimalWeights && l > 1 {
		if w, err := optimalWeightsCov(cov, ws); err == nil {
			weights = w
		}
	}

	// Final estimate: p̂_i = Σ a_k p_{k,i}; Var = aᵀCa (Theorem 1 with the
	// linear function f = Σ a_k x_k, whose gradient is the weight vector).
	var mean float64
	for k, tr := range triples {
		mean += weights[k] * tr.est.Mean
	}
	de, err := DeltaMethodCov(mean, weights, cov)
	if err != nil {
		// Optimal weights can push aᵀCa negative when C is badly estimated;
		// retry with uniform weights before giving up.
		weights = uniformWeights(l)
		mean = 0
		for k, tr := range triples {
			mean += weights[k] * tr.est.Mean
		}
		de, err = DeltaMethodCov(mean, weights, cov)
		if err != nil {
			est.Err = err
			return est
		}
	}
	est.Est = de
	return est
}

// lemma4C computes C(i, j, j′) of Lemma 4: the covariance between worker
// i's agreement rates with j and with j′,
//
//	C(i, j, j′) = c_{i,j,j′} · p_i(1−p_i) · (2q_{j,j′}−1) / (c_{i,j}·c_{i,j′})
//
// For j = j′ this degenerates to Var(Q_{i,j}) which Lemma 4's diagonal case
// already covers, but cross-triple sums never hit it since triples are
// disjoint pairs.
func lemma4C(cache agreementSource, i, j, jp int, pI float64) float64 {
	cij := cache.pair(i, j).Common
	cijp := cache.pair(i, jp).Common
	if cij == 0 || cijp == 0 {
		return 0
	}
	c3 := cache.common3(i, j, jp)
	if c3 == 0 {
		return 0
	}
	qjjp := cache.pair(j, jp).Rate()
	return float64(c3) * pI * (1 - pI) * (2*qjjp - 1) / (float64(cij) * float64(cijp))
}

// formPairs implements Step 1 of Algorithm A2: split the workers other than
// i into pairs, each of which will join i to form a triple.
func formPairs(cache agreementSource, m, i int, strategy PairingStrategy, minCommon int) [][2]int {
	// Candidates must share at least minCommon tasks with worker i.
	var cands []int
	for w := 0; w < m; w++ {
		if w != i && cache.pair(i, w).Common >= minCommon {
			cands = append(cands, w)
		}
	}
	if strategy == GreedyPairing {
		// Descending by common-task count with worker i: the paper pairs the
		// best-overlapping workers together so some triples are excellent
		// (the weight optimization then exploits the quality spread).
		sort.SliceStable(cands, func(a, b int) bool {
			return cache.pair(i, cands[a]).Common > cache.pair(i, cands[b]).Common
		})
	}
	var pairs [][2]int
	used := make([]bool, len(cands))
	for a := 0; a < len(cands); a++ {
		if used[a] {
			continue
		}
		for b := a + 1; b < len(cands); b++ {
			if used[b] {
				continue
			}
			// The pair must share tasks with each other too, otherwise the
			// triple's q_{j1,j2} is undefined.
			if cache.pair(cands[a], cands[b]).Common >= minCommon {
				pairs = append(pairs, [2]int{cands[a], cands[b]})
				used[a], used[b] = true, true
				break
			}
		}
	}
	return pairs
}

func uniformWeights(l int) []float64 {
	w := make([]float64, l)
	for i := range w {
		w[i] = 1 / float64(l)
	}
	return w
}
