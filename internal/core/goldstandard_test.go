package core

import (
	"errors"
	"testing"

	"crowdassess/internal/crowd"
	"crowdassess/internal/randx"
	"crowdassess/internal/sim"
)

func TestGoldStandardIntervals(t *testing.T) {
	src := randx.NewSource(1)
	rates := []float64{0.1, 0.25, 0.4}
	ds, _, err := sim.Binary{Tasks: 400, Workers: 3, ErrorRates: rates}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []GoldMethod{GoldExact, GoldWilson, GoldWald} {
		ests, err := GoldStandardIntervals(ds, 0.95, method)
		if err != nil {
			t.Fatal(err)
		}
		for w, e := range ests {
			if e.Err != nil {
				t.Fatalf("method %v worker %d: %v", method, w, e.Err)
			}
			if e.Scored != 400 {
				t.Errorf("worker %d scored %d", w, e.Scored)
			}
			if !e.Interval.Contains(rates[w]) {
				t.Errorf("method %v worker %d: %v misses %v", method, w, e.Interval, rates[w])
			}
		}
	}
}

func TestGoldStandardExactWidest(t *testing.T) {
	src := randx.NewSource(2)
	ds, _, err := sim.Binary{Tasks: 100, Workers: 3}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := GoldStandardIntervals(ds, 0.9, GoldExact)
	if err != nil {
		t.Fatal(err)
	}
	wilson, err := GoldStandardIntervals(ds, 0.9, GoldWilson)
	if err != nil {
		t.Fatal(err)
	}
	for w := range exact {
		if exact[w].Interval.Size() < wilson[w].Interval.Size()-1e-9 {
			t.Errorf("worker %d: exact %v narrower than Wilson %v",
				w, exact[w].Interval, wilson[w].Interval)
		}
	}
}

func TestGoldStandardNoGold(t *testing.T) {
	ds := crowd.MustNewDataset(3, 10, 2)
	if _, err := GoldStandardIntervals(ds, 0.9, GoldExact); !errors.Is(err, crowd.ErrNoGold) {
		t.Errorf("err = %v, want ErrNoGold", err)
	}
}

func TestGoldStandardPartialGold(t *testing.T) {
	ds := crowd.MustNewDataset(2, 4, 2)
	_ = ds.SetTruth(0, crowd.Yes)
	_ = ds.SetTruth(1, crowd.Yes)
	// Worker 0 answers both gold tasks (one wrong); worker 1 answers only
	// non-gold tasks.
	_ = ds.SetResponse(0, 0, crowd.Yes)
	_ = ds.SetResponse(0, 1, crowd.No)
	_ = ds.SetResponse(1, 2, crowd.Yes)
	ests, err := GoldStandardIntervals(ds, 0.9, GoldExact)
	if err != nil {
		t.Fatal(err)
	}
	if ests[0].Scored != 2 || ests[0].Wrong != 1 {
		t.Errorf("worker 0: %+v", ests[0])
	}
	if !errors.Is(ests[1].Err, crowd.ErrNoGold) {
		t.Errorf("worker 1 err = %v", ests[1].Err)
	}
}

func TestGoldStandardKAry(t *testing.T) {
	src := randx.NewSource(3)
	confs := []sim.Confusion{
		sim.PaperMatricesArity3[0],
		sim.PaperMatricesArity3[1],
		sim.PaperMatricesArity3[2],
	}
	ds, _, err := sim.KAry{Tasks: 600, Workers: 3, Confusions: confs}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	ests, err := GoldStandardIntervals(ds, 0.95, GoldExact)
	if err != nil {
		t.Fatal(err)
	}
	// Marginal error rate = Σ_j s_j (1 − P[j][j]) with uniform selectivity.
	// A 95% interval legitimately misses ~5% of the time, so demand
	// coverage on at least 2 of the 3 workers and near-coverage always.
	covered := 0
	for w, e := range ests {
		var want float64
		for j := 0; j < 3; j++ {
			want += (1 - confs[w][j][j]) / 3
		}
		if e.Interval.Contains(want) {
			covered++
		} else if want < e.Interval.Lo-0.05 || want > e.Interval.Hi+0.05 {
			t.Errorf("worker %d: %v far from %v", w, e.Interval, want)
		}
	}
	if covered < 2 {
		t.Errorf("only %d/3 intervals cover the truth", covered)
	}
}

// The headline comparison the paper's intro invites: how close do the
// agreement-based intervals come to gold-standard intervals that consume
// expensive expert labels? They should be in the same size regime.
func TestAgreementVsGoldSizes(t *testing.T) {
	src := randx.NewSource(4)
	ds, _, err := sim.Binary{Tasks: 300, Workers: 7}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	gold, err := GoldStandardIntervals(ds, 0.9, GoldWilson)
	if err != nil {
		t.Fatal(err)
	}
	agree, err := EvaluateWorkers(ds, EvalOptions{Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	var goldSize, agreeSize float64
	n := 0
	for w := range gold {
		if gold[w].Err != nil || agree[w].Err != nil {
			continue
		}
		goldSize += gold[w].Interval.Size()
		agreeSize += agree[w].Interval.Size()
		n++
	}
	if n < 6 {
		t.Fatalf("only %d comparable workers", n)
	}
	// Agreement-based intervals can't beat gold (information inequality)
	// but should be within a small factor of it on dense data.
	if agreeSize < goldSize {
		t.Logf("note: agreement tighter than gold (%v vs %v) — possible on lucky draws", agreeSize/float64(n), goldSize/float64(n))
	}
	if agreeSize > 4*goldSize {
		t.Errorf("agreement intervals %vx wider than gold", agreeSize/goldSize)
	}
}
