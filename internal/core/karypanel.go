package core

import (
	"fmt"
	"math"
	"sort"

	"crowdassess/internal/crowd"
	"crowdassess/internal/mat"
	"crowdassess/internal/stat"
)

// This file extends Algorithm A3 beyond three workers the same way
// Algorithm A2 extends A1: evaluate a worker through several triples and
// combine the per-element estimates. The paper develops the optimal
// covariance-aware combination only for the binary case; for the spectral
// estimator no closed-form cross-triple covariance exists, so the panel
// combines triples by inverse-variance weighting under an independence
// approximation (exact when triples share no workers, conservative
// otherwise because shared-worker correlations are positive).

// KAryPanelOptions configures EvaluateWorkersKAry.
type KAryPanelOptions struct {
	// Confidence for the returned intervals.
	Confidence float64
	// Spectral passes through to the per-triple estimator (Epsilon,
	// StrictSpectrum, RawEigen; its Confidence field is ignored).
	Spectral KAryOptions
	// MinCommon is the minimum number of tasks all three triple members
	// must share. Zero selects 5·k (the spectral step needs to populate a
	// k×k frequency matrix, so a handful of tasks per row is the floor).
	MinCommon int
	// MaxTriples caps the triples per worker (0 = no cap). The spectral
	// estimator costs O(k³) estimator runs per triple, so large crowds set
	// a cap.
	MaxTriples int
}

// KAryWorkerEstimate is one worker's combined panel estimate.
type KAryWorkerEstimate struct {
	Worker int
	// Mean and Dev are the combined k×k response-probability estimate and
	// its standard deviation per element.
	Mean *mat.Matrix
	Dev  *mat.Matrix
	// Triples actually combined.
	Triples int
	// Err is non-nil when no triple produced a usable estimate.
	Err error
}

// Intervals returns the c-confidence interval for each matrix element,
// clamped to probability space.
func (e *KAryWorkerEstimate) Intervals(c float64) [][]stat.Interval {
	k := e.Mean.Rows()
	out := make([][]stat.Interval, k)
	for a := 0; a < k; a++ {
		out[a] = make([]stat.Interval, k)
		for b := 0; b < k; b++ {
			de := DeltaEstimate{Mean: e.Mean.At(a, b), Dev: e.Dev.At(a, b)}
			out[a][b] = de.Interval(c).ClampTo(0, 1)
		}
	}
	return out
}

// EvaluateWorkersKAry estimates every worker's k×k response-probability
// matrix by aggregating 3-worker spectral estimates across triples.
func EvaluateWorkersKAry(ds *crowd.Dataset, opts KAryPanelOptions) ([]KAryWorkerEstimate, error) {
	if err := checkConfidence(opts.Confidence); err != nil {
		return nil, err
	}
	m := ds.Workers()
	if m < 3 {
		return nil, fmt.Errorf("core: need at least 3 workers, have %d: %w", m, ErrInsufficientData)
	}
	minCommon := opts.MinCommon
	if minCommon <= 0 {
		minCommon = 5 * ds.Arity()
	}
	att := ds.Attendance()
	out := make([]KAryWorkerEstimate, m)
	for i := 0; i < m; i++ {
		out[i] = evaluatePanelOne(ds, att, i, opts, minCommon)
	}
	return out, nil
}

func evaluatePanelOne(ds *crowd.Dataset, att *crowd.Attendance, i int, opts KAryPanelOptions, minCommon int) KAryWorkerEstimate {
	est := KAryWorkerEstimate{Worker: i}
	k := ds.Arity()
	m := ds.Workers()

	// Pair the other workers greedily by triple overlap with worker i,
	// mirroring A2's step 1.
	var cands []int
	for w := 0; w < m; w++ {
		if w != i && att.Common2(i, w) >= minCommon {
			cands = append(cands, w)
		}
	}
	sort.SliceStable(cands, func(a, b int) bool {
		return att.Common2(i, cands[a]) > att.Common2(i, cands[b])
	})
	var triples [][3]int
	used := make([]bool, len(cands))
	for a := 0; a < len(cands); a++ {
		if used[a] {
			continue
		}
		for b := a + 1; b < len(cands); b++ {
			if used[b] {
				continue
			}
			if att.Common3(i, cands[a], cands[b]) >= minCommon {
				triples = append(triples, [3]int{i, cands[a], cands[b]})
				used[a], used[b] = true, true
				break
			}
		}
		if opts.MaxTriples > 0 && len(triples) >= opts.MaxTriples {
			break
		}
	}
	if len(triples) == 0 {
		est.Err = fmt.Errorf("core: worker %d has no triple with ≥%d common tasks: %w", i, minCommon, ErrInsufficientData)
		return est
	}

	// Per-triple spectral estimates for worker i (position 0 ⇒ V₁).
	spectral := opts.Spectral
	var deltas []*KAryDelta
	for _, tr := range triples {
		d, err := ThreeWorkerKAryDelta(ds, tr, spectral)
		if err != nil {
			continue // degenerate triple: skip, as A2 does
		}
		deltas = append(deltas, d)
	}
	if len(deltas) == 0 {
		est.Err = fmt.Errorf("core: worker %d: all triples degenerate: %w", i, ErrDegenerate)
		return est
	}
	est.Triples = len(deltas)

	// Inverse-variance combination per element.
	mean := mat.New(k, k)
	dev := mat.New(k, k)
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			var wSum, wMean float64
			for _, d := range deltas {
				sigma := d.Dev[0].At(a, b)
				if sigma <= 0 {
					sigma = 1e-9
				}
				w := 1 / (sigma * sigma)
				wSum += w
				wMean += w * d.Mean[0].At(a, b)
			}
			mean.Set(a, b, wMean/wSum)
			dev.Set(a, b, 1/sqrt(wSum))
		}
	}
	est.Mean = mean
	est.Dev = dev
	return est
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
