package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"crowdassess/internal/crowd"
	"crowdassess/internal/randx"
	"crowdassess/internal/sim"
)

// responseStream flattens a dataset into a deterministic shuffled list of
// (worker, task, response) submissions.
type submission struct {
	w, t int
	r    crowd.Response
}

func shuffledStream(t *testing.T, ds *crowd.Dataset, seed int64) []submission {
	t.Helper()
	var subs []submission
	for w := 0; w < ds.Workers(); w++ {
		for task := 0; task < ds.Tasks(); task++ {
			if ds.Attempted(w, task) {
				subs = append(subs, submission{w, task, ds.Response(w, task)})
			}
		}
	}
	src := randx.NewSource(seed)
	src.Shuffle(len(subs), func(i, j int) { subs[i], subs[j] = subs[j], subs[i] })
	return subs
}

// TestShardedMatchesIncremental is the tentpole property: for any shard
// count, streaming the same responses must reproduce the single-shard
// evaluator's intervals bit for bit — not approximately. The merge is
// integer-counter addition, so any divergence at all is a routing or merge
// bug.
func TestShardedMatchesIncremental(t *testing.T) {
	opts := EvalOptions{Confidence: 0.9}
	for seed := int64(0); seed < 4; seed++ {
		src := randx.NewSource(300 + seed)
		ds, _, err := sim.Binary{Tasks: 150, Workers: 8, Density: 0.65}.Generate(src)
		if err != nil {
			t.Fatal(err)
		}
		subs := shuffledStream(t, ds, seed)

		single, err := NewIncremental(8)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range subs {
			if err := single.Add(s.w, s.t, s.r); err != nil {
				t.Fatal(err)
			}
		}
		want, err := single.EvaluateAll(opts)
		if err != nil {
			t.Fatal(err)
		}

		for _, shards := range []int{1, 2, 7} {
			sharded, err := NewShardedIncremental(8, shards)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range subs {
				if err := sharded.Add(s.w, s.t, s.r); err != nil {
					t.Fatal(err)
				}
			}
			if sharded.Tasks() != single.Tasks() || sharded.Responses() != single.Responses() {
				t.Fatalf("seed %d shards %d: Tasks/Responses %d/%d vs %d/%d",
					seed, shards, sharded.Tasks(), sharded.Responses(), single.Tasks(), single.Responses())
			}
			got, err := sharded.EvaluateAll(opts)
			if err != nil {
				t.Fatal(err)
			}
			for w := range want {
				if (want[w].Err == nil) != (got[w].Err == nil) {
					t.Fatalf("seed %d shards %d worker %d: error mismatch %v vs %v",
						seed, shards, w, want[w].Err, got[w].Err)
				}
				if want[w].Err != nil {
					continue
				}
				// Bitwise equality, deliberately not a tolerance.
				if got[w].Interval != want[w].Interval || got[w].Triples != want[w].Triples {
					t.Errorf("seed %d shards %d worker %d: %+v (triples %d) vs single-shard %+v (triples %d)",
						seed, shards, w, got[w].Interval, got[w].Triples, want[w].Interval, want[w].Triples)
				}
				// The one-worker entry point must agree with the fan-out.
				one, err := sharded.Evaluate(w, opts)
				if err != nil {
					t.Fatal(err)
				}
				if one.Interval != got[w].Interval {
					t.Errorf("seed %d shards %d worker %d: Evaluate %+v vs EvaluateAll %+v",
						seed, shards, w, one.Interval, got[w].Interval)
				}
			}
			// Subset evaluation must align with the input order and match
			// the full fan-out slot for slot.
			subset := []int{5, 0, 3}
			subEsts, err := sharded.EvaluateSubset(subset, opts)
			if err != nil {
				t.Fatal(err)
			}
			for i, w := range subset {
				if subEsts[i].Worker != w || subEsts[i].Interval != got[w].Interval {
					t.Errorf("seed %d shards %d: EvaluateSubset[%d] = %+v, want worker %d's %+v",
						seed, shards, i, subEsts[i], w, got[w].Interval)
				}
			}
			wantDis := single.MajorityDisagreement()
			gotDis := sharded.MajorityDisagreement()
			for w := range wantDis {
				if gotDis[w] != wantDis[w] {
					t.Errorf("seed %d shards %d worker %d: disagreement %v vs %v",
						seed, shards, w, gotDis[w], wantDis[w])
				}
			}
			snap, err := sharded.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			for w := 0; w < ds.Workers(); w++ {
				for task := 0; task < ds.Tasks(); task++ {
					if snap.Response(w, task) != ds.Response(w, task) {
						t.Fatalf("seed %d shards %d: snapshot mismatch at (%d,%d)", seed, shards, w, task)
					}
				}
			}
		}
	}
}

// TestShardedConcurrentAdd ingests from many goroutines while other
// goroutines evaluate and read counters mid-stream, then checks the final
// statistics match a single-goroutine, single-shard ingest of the same
// responses. Run under -race this is the concurrency-safety acceptance
// test for the sharded evaluator.
func TestShardedConcurrentAdd(t *testing.T) {
	const goroutines = 8
	src := randx.NewSource(55)
	ds, _, err := sim.Binary{Tasks: 240, Workers: 9, Density: 0.7}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	subs := shuffledStream(t, ds, 3)

	sharded, err := NewShardedIncremental(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var stop atomic.Bool
	// Evaluation goroutines interleaved with ingestion: results mid-stream
	// are unspecified (any consistent prefix), but must never race or fail
	// with anything other than per-worker data-insufficiency errors.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			opts := EvalOptions{Confidence: 0.9}
			for !stop.Load() {
				if _, err := sharded.EvaluateAll(opts); err != nil {
					t.Errorf("concurrent EvaluateAll: %v", err)
					return
				}
				sharded.Responses()
				sharded.MajorityDisagreement()
			}
		}()
	}
	var ingest sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		ingest.Add(1)
		go func(g int) {
			defer ingest.Done()
			for i := g; i < len(subs); i += goroutines {
				s := subs[i]
				if err := sharded.Add(s.w, s.t, s.r); err != nil {
					t.Errorf("concurrent Add(%d,%d): %v", s.w, s.t, err)
					return
				}
			}
		}(g)
	}
	ingest.Wait()
	stop.Store(true)
	wg.Wait()

	single, err := NewIncremental(9)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range subs {
		if err := single.Add(s.w, s.t, s.r); err != nil {
			t.Fatal(err)
		}
	}
	opts := EvalOptions{Confidence: 0.9}
	want, err := single.EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.EvaluateAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	for w := range want {
		if (want[w].Err == nil) != (got[w].Err == nil) || got[w].Interval != want[w].Interval {
			t.Errorf("worker %d after concurrent ingest: %+v vs %+v", w, got[w], want[w])
		}
	}
	if got, want := sharded.Responses(), single.Responses(); got != want {
		t.Errorf("Responses = %d, want %d", got, want)
	}
}

// TestShardedLazyMerge pins the epoch mechanism: evaluating a quiescent
// pool must reuse the previous merged snapshot, and any Add must
// invalidate it.
func TestShardedLazyMerge(t *testing.T) {
	s, err := NewShardedIncremental(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	mustAdd := func(w, task int, r crowd.Response) {
		t.Helper()
		if err := s.Add(w, task, r); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(0, 0, crowd.Yes)
	mustAdd(1, 0, crowd.Yes)
	mustAdd(2, 0, crowd.No)
	first := s.snapshot()
	if second := s.snapshot(); second != first {
		t.Error("quiescent snapshot was re-merged")
	}
	mustAdd(0, 1, crowd.Yes)
	third := s.snapshot()
	if third == first {
		t.Error("snapshot not invalidated by Add")
	}
	if got := third.pair(0, 1); got.Common != 1 || got.Agree != 1 {
		t.Errorf("merged pair(0,1) = %+v", got)
	}
	if fourth := s.snapshot(); fourth != third {
		t.Error("second quiescent snapshot was re-merged")
	}
}

func TestShardedValidation(t *testing.T) {
	if _, err := NewShardedIncremental(2, 4); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("2 workers: err = %v", err)
	}
	if _, err := NewShardedIncremental(5, 0); err == nil {
		t.Error("0 shards accepted")
	}
	s, err := NewShardedIncremental(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(5, 0, crowd.Yes); err == nil {
		t.Error("out-of-range worker accepted")
	}
	if err := s.Add(0, -1, crowd.Yes); err == nil {
		t.Error("negative task accepted")
	}
	if err := s.Add(0, 0, crowd.Response(3)); err == nil {
		t.Error("non-binary response accepted")
	}
	if err := s.Add(0, 0, crowd.Yes); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(0, 0, crowd.No); err == nil {
		t.Error("duplicate response accepted")
	}
	if _, err := s.Evaluate(9, EvalOptions{Confidence: 0.9}); err == nil {
		t.Error("out-of-range evaluation accepted")
	}
	if _, err := s.Evaluate(0, EvalOptions{Confidence: 0}); err == nil {
		t.Error("confidence 0 accepted")
	}
	if _, err := s.EvaluateAll(EvalOptions{Confidence: 0}); err == nil {
		t.Error("confidence 0 accepted by EvaluateAll")
	}
	if _, err := s.EvaluateSubset([]int{0, 9}, EvalOptions{Confidence: 0.9}); err == nil {
		t.Error("out-of-range subset accepted")
	}
	if ests, err := s.EvaluateSubset(nil, EvalOptions{Confidence: 0.9}); err != nil || len(ests) != 0 {
		t.Errorf("empty subset: %v, %v", ests, err)
	}
	if s.Shards() != 3 {
		t.Errorf("Shards() = %d", s.Shards())
	}
	empty, err := NewShardedIncremental(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := empty.Snapshot(); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("empty snapshot err = %v", err)
	}
}

// TestStreamingConstructor pins the options-based constructor's dispatch.
func TestStreamingConstructor(t *testing.T) {
	ev, err := NewStreaming(5, IncrementalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ev.(*Incremental); !ok {
		t.Errorf("Shards 0: got %T, want *Incremental", ev)
	}
	ev, err = NewStreaming(5, IncrementalOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	sh, ok := ev.(*ShardedIncremental)
	if !ok {
		t.Fatalf("Shards 4: got %T, want *ShardedIncremental", ev)
	}
	if sh.Shards() != 4 {
		t.Errorf("Shards() = %d", sh.Shards())
	}
}

// BenchmarkShardedIngest measures concurrent ingestion throughput as the
// shard count grows — the scaling claim behind the sharded evaluator. Each
// parallel worker draws a globally unique task index, so every Add hits a
// fresh task (pure routing + lock cost, no duplicate rejections).
func BenchmarkShardedIngest(b *testing.B) {
	const workers = 50
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, err := NewShardedIncremental(workers, shards)
			if err != nil {
				b.Fatal(err)
			}
			var ctr atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					t := int(ctr.Add(1))
					// b.Error, not b.Fatal: RunParallel bodies run off the
					// benchmark goroutine, where FailNow is not allowed.
					if err := s.Add(t%workers, t, crowd.Yes); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
