package core

import (
	"fmt"
	"math/bits"
	"sync"

	"crowdassess/internal/crowd"
	"crowdassess/internal/mat"
)

// Incremental maintains the sufficient statistics of Algorithm A2 online,
// realizing the paper's closing remark that the method "can be easily
// modified to be incremental, to keep efficiently updating worker error
// rates as more tasks get done."
//
// Each added response updates pairwise agreement counts against the task's
// previous responders in O(responders); triple common-task counts are
// answered from per-worker attendance bitsets. Evaluating a worker then
// costs the same as the batch algorithm on the accumulated statistics —
// no response is ever rescanned.
//
// The zero value is not usable; construct with NewIncremental.
type Incremental struct {
	workers int
	arity   int
	tasks   int // highest task index seen + 1

	// taskResponses[t] lists (worker, response) pairs for task t.
	taskResponses map[int][]workerResponse
	// responded[w] tracks whether worker w answered a given task (bitset).
	responded []dynBitset
	// agree/common are symmetric pairwise counters.
	agree  [][]int
	common [][]int

	// wsPool recycles covariance-solve scratch across Evaluate calls.
	// Evaluate only reads the accumulated statistics, so — as before this
	// pool existed — concurrent Evaluate calls are safe (each checks out
	// its own workspace); Add remains single-goroutine (it mutates
	// unguarded counters).
	wsPool sync.Pool
}

type workerResponse struct {
	worker int
	resp   crowd.Response
}

// dynBitset is a growable bitset over task indices.
type dynBitset []uint64

func (b *dynBitset) set(i int) {
	word := i / 64
	for len(*b) <= word {
		*b = append(*b, 0)
	}
	(*b)[word] |= 1 << (uint(i) % 64)
}

func (b dynBitset) get(i int) bool {
	word := i / 64
	return word < len(b) && b[word]&(1<<(uint(i)%64)) != 0
}

// and3Count returns |a ∩ b ∩ c|.
func and3Count(a, b, c dynBitset) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if len(c) < n {
		n = len(c)
	}
	total := 0
	for i := 0; i < n; i++ {
		total += bits.OnesCount64(a[i] & b[i] & c[i])
	}
	return total
}

// NewIncremental returns an empty streaming evaluator for the given number
// of binary workers (arity is fixed at 2: the streaming path wraps
// Algorithm A2).
func NewIncremental(workers int) (*Incremental, error) {
	if workers < 3 {
		return nil, fmt.Errorf("core: need at least 3 workers, have %d: %w", workers, ErrInsufficientData)
	}
	inc := &Incremental{
		workers:       workers,
		arity:         2,
		taskResponses: make(map[int][]workerResponse),
		responded:     make([]dynBitset, workers),
		agree:         make([][]int, workers),
		common:        make([][]int, workers),
		wsPool:        sync.Pool{New: func() any { return mat.NewWorkspace() }},
	}
	for i := range inc.agree {
		inc.agree[i] = make([]int, workers)
		inc.common[i] = make([]int, workers)
	}
	return inc, nil
}

// Workers returns the number of workers tracked.
func (inc *Incremental) Workers() int { return inc.workers }

// Tasks returns the number of distinct task indices seen.
func (inc *Incremental) Tasks() int { return inc.tasks }

// Responses returns the total number of responses recorded.
func (inc *Incremental) Responses() int {
	n := 0
	for _, rs := range inc.taskResponses {
		n += len(rs)
	}
	return n
}

// Add records worker w's response r on task t. A worker may answer a task
// only once; duplicate or out-of-range submissions are rejected.
func (inc *Incremental) Add(w, t int, r crowd.Response) error {
	if w < 0 || w >= inc.workers {
		return fmt.Errorf("core: worker %d out of range 0…%d", w, inc.workers-1)
	}
	if t < 0 {
		return fmt.Errorf("core: negative task index %d", t)
	}
	if r != crowd.Yes && r != crowd.No {
		return fmt.Errorf("core: streaming evaluator is binary; response %d: %w", r, crowd.ErrArity)
	}
	if inc.responded[w].get(t) {
		return fmt.Errorf("core: worker %d already answered task %d", w, t)
	}
	for _, prev := range inc.taskResponses[t] {
		inc.common[w][prev.worker]++
		inc.common[prev.worker][w]++
		if prev.resp == r {
			inc.agree[w][prev.worker]++
			inc.agree[prev.worker][w]++
		}
	}
	inc.taskResponses[t] = append(inc.taskResponses[t], workerResponse{w, r})
	inc.responded[w].set(t)
	if t+1 > inc.tasks {
		inc.tasks = t + 1
	}
	return nil
}

// pair implements agreementSource over the streaming counters.
func (inc *Incremental) pair(i, j int) crowd.PairStats {
	if i == j {
		// Self-agreement, as PairMatrix defines it.
		n := 0
		for _, word := range inc.responded[i] {
			n += bits.OnesCount64(word)
		}
		return crowd.PairStats{Common: n, Agree: n}
	}
	return crowd.PairStats{Common: inc.common[i][j], Agree: inc.agree[i][j]}
}

// common3 implements agreementSource over the attendance bitsets.
func (inc *Incremental) common3(i, j, k int) int {
	return and3Count(inc.responded[i], inc.responded[j], inc.responded[k])
}

// Evaluate returns the current error-rate interval for one worker, from the
// statistics accumulated so far.
func (inc *Incremental) Evaluate(worker int, opts EvalOptions) (WorkerEstimate, error) {
	if err := checkConfidence(opts.Confidence); err != nil {
		return WorkerEstimate{}, err
	}
	if worker < 0 || worker >= inc.workers {
		return WorkerEstimate{}, fmt.Errorf("core: worker %d out of range", worker)
	}
	minCommon := opts.MinCommon
	if minCommon <= 0 {
		minCommon = 1
	}
	ws := inc.wsPool.Get().(*mat.Workspace)
	d := evaluateOne(inc, inc.workers, worker, opts, minCommon, ws)
	inc.wsPool.Put(ws)
	est := WorkerEstimate{Worker: d.Worker, Triples: d.Triples, Err: d.Err}
	if d.Err == nil {
		est.Interval = d.Est.Interval(opts.Confidence).ClampTo(0, 1)
	}
	return est, nil
}

// EvaluateAll returns current intervals for every worker.
func (inc *Incremental) EvaluateAll(opts EvalOptions) ([]WorkerEstimate, error) {
	if err := checkConfidence(opts.Confidence); err != nil {
		return nil, err
	}
	out := make([]WorkerEstimate, inc.workers)
	for w := 0; w < inc.workers; w++ {
		est, err := inc.Evaluate(w, opts)
		if err != nil {
			return nil, err
		}
		out[w] = est
	}
	return out, nil
}

// Snapshot materializes the accumulated responses as a Dataset, for
// interoperability with the batch algorithms (pruning, k-ary analysis,
// serialization).
func (inc *Incremental) Snapshot() (*crowd.Dataset, error) {
	if inc.tasks == 0 {
		return nil, fmt.Errorf("core: no responses recorded: %w", ErrInsufficientData)
	}
	ds, err := crowd.NewDataset(inc.workers, inc.tasks, inc.arity)
	if err != nil {
		return nil, err
	}
	for t, rs := range inc.taskResponses {
		for _, wr := range rs {
			if err := ds.SetResponse(wr.worker, t, wr.resp); err != nil {
				return nil, err
			}
		}
	}
	return ds, nil
}

// MajorityDisagreement mirrors Dataset.MajorityDisagreement on the
// accumulated responses, so streaming deployments can run the paper's
// spammer screen without materializing a snapshot.
func (inc *Incremental) MajorityDisagreement() []float64 {
	attempted := make([]int, inc.workers)
	disagree := make([]int, inc.workers)
	for _, rs := range inc.taskResponses {
		yes := 0
		for _, wr := range rs {
			if wr.resp == crowd.Yes {
				yes++
			}
		}
		no := len(rs) - yes
		var maj crowd.Response
		switch {
		case yes > no:
			maj = crowd.Yes
		case no > yes:
			maj = crowd.No
		default:
			maj = crowd.Yes // deterministic tie-break, matching MajorityVote
		}
		for _, wr := range rs {
			attempted[wr.worker]++
			if wr.resp != maj {
				disagree[wr.worker]++
			}
		}
	}
	out := make([]float64, inc.workers)
	for w := range out {
		if attempted[w] > 0 {
			out[w] = float64(disagree[w]) / float64(attempted[w])
		}
	}
	return out
}
