package core

import (
	"fmt"
	"math/bits"
	"sync"

	"crowdassess/internal/crowd"
	"crowdassess/internal/mat"
)

// streamStats holds the sufficient statistics of the streaming form of
// Algorithm A2: symmetric pairwise agree/common counters plus per-worker
// attendance bitsets over task indices. Everything in it is an integer
// count, so two streamStats built from disjoint response sets merge
// exactly — addFrom produces the same counters, bit for bit, as feeding
// the union of the responses into one instance. That additivity is what
// lets ShardedIncremental split ingestion across shards and still match
// the single-shard evaluator's intervals exactly.
type streamStats struct {
	// agree/common are symmetric pairwise counters.
	agree  [][]int
	common [][]int
	// responded[w] tracks whether worker w answered a given task (bitset
	// over global task indices).
	responded []dynBitset
	// answers[w] records WHICH answer worker w gave on a task it responded
	// to: bit set means Yes, clear means No (only meaningful where the
	// responded bit is set). Together with responded it makes the
	// statistics fully reconstructive for binary crowds: the pairwise
	// counters are derivable as common[i][j] = |responded_i ∩ responded_j|
	// and agree[i][j] = |responded_i ∩ responded_j ∩ ¬(answers_i ⊕
	// answers_j)| — which is what lets a compact checkpoint (see
	// compact.go) resume ingestion exactly without carrying the response
	// log.
	answers []dynBitset
}

func newStreamStats(workers int) *streamStats {
	s := &streamStats{
		agree:     make([][]int, workers),
		common:    make([][]int, workers),
		responded: make([]dynBitset, workers),
		answers:   make([]dynBitset, workers),
	}
	for i := range s.agree {
		s.agree[i] = make([]int, workers)
		s.common[i] = make([]int, workers)
	}
	return s
}

// record accounts for worker w answering r on task t, given the responses
// previously recorded for that task. The caller appends to its own
// task-response list; record only maintains the derived counters.
func (s *streamStats) record(w, t int, r crowd.Response, prev []workerResponse) {
	for _, p := range prev {
		s.common[w][p.worker]++
		s.common[p.worker][w]++
		if p.resp == r {
			s.agree[w][p.worker]++
			s.agree[p.worker][w]++
		}
	}
	s.responded[w].set(t)
	if r == crowd.Yes {
		s.answers[w].set(t)
	}
}

// addFrom accumulates o into s: counter sums and attendance unions. The
// task sets behind s and o must be disjoint (each task's responses live in
// exactly one of them), which the sharded evaluator's task-striping
// guarantees.
func (s *streamStats) addFrom(o *streamStats) {
	for i := range s.agree {
		ai, oa := s.agree[i], o.agree[i]
		ci, oc := s.common[i], o.common[i]
		for j := range ai {
			ai[j] += oa[j]
			ci[j] += oc[j]
		}
		s.responded[i].orWith(o.responded[i])
		if i < len(o.answers) {
			s.answers[i].orWith(o.answers[i])
		}
	}
}

// pair implements agreementSource over the streaming counters.
func (s *streamStats) pair(i, j int) crowd.PairStats {
	if i == j {
		// Self-agreement, as PairMatrix defines it.
		n := 0
		for _, word := range s.responded[i] {
			n += bits.OnesCount64(word)
		}
		return crowd.PairStats{Common: n, Agree: n}
	}
	return crowd.PairStats{Common: s.common[i][j], Agree: s.agree[i][j]}
}

// common3 implements agreementSource over the attendance bitsets.
func (s *streamStats) common3(i, j, k int) int {
	return and3Count(s.responded[i], s.responded[j], s.responded[k])
}

// Incremental maintains the sufficient statistics of Algorithm A2 online,
// realizing the paper's closing remark that the method "can be easily
// modified to be incremental, to keep efficiently updating worker error
// rates as more tasks get done."
//
// Each added response updates pairwise agreement counts against the task's
// previous responders in O(responders); triple common-task counts are
// answered from per-worker attendance bitsets. Evaluating a worker then
// costs the same as the batch algorithm on the accumulated statistics —
// no response is ever rescanned.
//
// Incremental is single-goroutine on the ingestion side: Add mutates
// unguarded counters. Concurrent ingestion belongs to ShardedIncremental.
//
// The zero value is not usable; construct with NewIncremental.
type Incremental struct {
	workers   int
	arity     int
	tasks     int // highest task index seen + 1
	responses int // running response count, maintained by Add

	// taskResponses[t] lists (worker, response) pairs for task t.
	taskResponses map[int][]workerResponse
	// stats holds the pairwise counters and attendance bitsets.
	*streamStats

	// wsPool recycles covariance-solve scratch across Evaluate calls.
	// Evaluate only reads the accumulated statistics, so — as before this
	// pool existed — concurrent Evaluate calls are safe (each checks out
	// its own workspace); Add remains single-goroutine (it mutates
	// unguarded counters).
	wsPool sync.Pool
}

type workerResponse struct {
	worker int
	resp   crowd.Response
}

// dynBitset is a growable bitset over task indices.
type dynBitset []uint64

func (b *dynBitset) set(i int) {
	word := i / 64
	for len(*b) <= word {
		*b = append(*b, 0)
	}
	(*b)[word] |= 1 << (uint(i) % 64)
}

func (b dynBitset) get(i int) bool {
	word := i / 64
	return word < len(b) && b[word]&(1<<(uint(i)%64)) != 0
}

// orWith unions o into b, growing b as needed.
func (b *dynBitset) orWith(o dynBitset) {
	for len(*b) < len(o) {
		*b = append(*b, 0)
	}
	for i, word := range o {
		(*b)[i] |= word
	}
}

// and3Count returns |a ∩ b ∩ c|.
func and3Count(a, b, c dynBitset) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if len(c) < n {
		n = len(c)
	}
	total := 0
	for i := 0; i < n; i++ {
		total += bits.OnesCount64(a[i] & b[i] & c[i])
	}
	return total
}

// NewIncremental returns an empty streaming evaluator for the given number
// of binary workers (arity is fixed at 2: the streaming path wraps
// Algorithm A2).
func NewIncremental(workers int) (*Incremental, error) {
	if workers < 3 {
		return nil, fmt.Errorf("core: need at least 3 workers, have %d: %w", workers, ErrInsufficientData)
	}
	return &Incremental{
		workers:       workers,
		arity:         2,
		taskResponses: make(map[int][]workerResponse),
		streamStats:   newStreamStats(workers),
		wsPool:        sync.Pool{New: func() any { return mat.NewWorkspace() }},
	}, nil
}

// Workers returns the number of workers tracked.
func (inc *Incremental) Workers() int { return inc.workers }

// Tasks returns the number of distinct task indices seen.
func (inc *Incremental) Tasks() int { return inc.tasks }

// Responses returns the total number of responses recorded. It reads a
// counter maintained by Add, so it is O(1) — pool.Review calls it every
// batch and must not pay an O(tasks) rescan.
func (inc *Incremental) Responses() int { return inc.responses }

// Add records worker w's response r on task t. A worker may answer a task
// only once; duplicate or out-of-range submissions are rejected.
func (inc *Incremental) Add(w, t int, r crowd.Response) error {
	if w < 0 || w >= inc.workers {
		return fmt.Errorf("core: worker %d out of range 0…%d", w, inc.workers-1)
	}
	if t < 0 {
		return fmt.Errorf("core: negative task index %d", t)
	}
	if r != crowd.Yes && r != crowd.No {
		return fmt.Errorf("core: streaming evaluator is binary; response %d: %w", r, crowd.ErrArity)
	}
	if inc.responded[w].get(t) {
		return fmt.Errorf("core: worker %d already answered task %d", w, t)
	}
	inc.streamStats.record(w, t, r, inc.taskResponses[t])
	inc.taskResponses[t] = append(inc.taskResponses[t], workerResponse{w, r})
	inc.responses++
	if t+1 > inc.tasks {
		inc.tasks = t + 1
	}
	return nil
}

// Evaluate returns the current error-rate interval for one worker, from the
// statistics accumulated so far.
func (inc *Incremental) Evaluate(worker int, opts EvalOptions) (WorkerEstimate, error) {
	if err := checkConfidence(opts.Confidence); err != nil {
		return WorkerEstimate{}, err
	}
	if worker < 0 || worker >= inc.workers {
		return WorkerEstimate{}, fmt.Errorf("core: worker %d out of range", worker)
	}
	minCommon := opts.MinCommon
	if minCommon <= 0 {
		minCommon = 1
	}
	ws := inc.wsPool.Get().(*mat.Workspace)
	// Deferred so a panic in evaluateOne cannot leak the workspace; Reset
	// first so a recovered caller never receives a half-mutated arena.
	defer func() {
		ws.Reset()
		inc.wsPool.Put(ws)
	}()
	return finishEstimate(evaluateOne(inc, inc.workers, worker, opts, minCommon, ws), opts.Confidence), nil
}

// EvaluateSubset returns current intervals for the given worker indices,
// aligned with the input slice. It exists so callers that track
// eligibility themselves (pool.Manager skips fired workers) don't pay for
// estimates they will discard.
func (inc *Incremental) EvaluateSubset(workers []int, opts EvalOptions) ([]WorkerEstimate, error) {
	if err := checkConfidence(opts.Confidence); err != nil {
		return nil, err
	}
	out := make([]WorkerEstimate, len(workers))
	for i, w := range workers {
		est, err := inc.Evaluate(w, opts)
		if err != nil {
			return nil, err
		}
		out[i] = est
	}
	return out, nil
}

// EvaluateAll returns current intervals for every worker.
func (inc *Incremental) EvaluateAll(opts EvalOptions) ([]WorkerEstimate, error) {
	if err := checkConfidence(opts.Confidence); err != nil {
		return nil, err
	}
	out := make([]WorkerEstimate, inc.workers)
	for w := 0; w < inc.workers; w++ {
		est, err := inc.Evaluate(w, opts)
		if err != nil {
			return nil, err
		}
		out[w] = est
	}
	return out, nil
}

// Snapshot materializes the accumulated responses as a Dataset, for
// interoperability with the batch algorithms (pruning, k-ary analysis,
// serialization).
func (inc *Incremental) Snapshot() (*crowd.Dataset, error) {
	return snapshotDataset(inc.workers, inc.tasks, inc.arity, inc.taskResponses)
}

// snapshotDataset builds a Dataset from one or more task-response maps
// (one per shard in the sharded evaluator; the maps' task sets must be
// disjoint).
func snapshotDataset(workers, tasks, arity int, responseMaps ...map[int][]workerResponse) (*crowd.Dataset, error) {
	if tasks == 0 {
		return nil, fmt.Errorf("core: no responses recorded: %w", ErrInsufficientData)
	}
	ds, err := crowd.NewDataset(workers, tasks, arity)
	if err != nil {
		return nil, err
	}
	for _, m := range responseMaps {
		for t, rs := range m {
			for _, wr := range rs {
				if err := ds.SetResponse(wr.worker, t, wr.resp); err != nil {
					return nil, err
				}
			}
		}
	}
	return ds, nil
}

// MajorityDisagreement mirrors Dataset.MajorityDisagreement on the
// accumulated responses, so streaming deployments can run the paper's
// spammer screen without materializing a snapshot.
func (inc *Incremental) MajorityDisagreement() []float64 {
	return disagreementRates(inc.DisagreementCounts())
}

// tallyDisagreement accumulates per-worker attempted/disagree counts over
// one task-response map. Majorities are per task, so tallying a shard at a
// time is exact.
func tallyDisagreement(attempted, disagree []int, taskResponses map[int][]workerResponse) {
	for _, rs := range taskResponses {
		yes := 0
		for _, wr := range rs {
			if wr.resp == crowd.Yes {
				yes++
			}
		}
		no := len(rs) - yes
		var maj crowd.Response
		switch {
		case yes > no:
			maj = crowd.Yes
		case no > yes:
			maj = crowd.No
		default:
			maj = crowd.Yes // deterministic tie-break, matching MajorityVote
		}
		for _, wr := range rs {
			attempted[wr.worker]++
			if wr.resp != maj {
				disagree[wr.worker]++
			}
		}
	}
}

func disagreementRates(attempted, disagree []int) []float64 {
	out := make([]float64, len(attempted))
	for w := range out {
		if attempted[w] > 0 {
			out[w] = float64(disagree[w]) / float64(attempted[w])
		}
	}
	return out
}
