package core

import (
	"errors"
	"math"
	"testing"

	"crowdassess/internal/crowd"
	"crowdassess/internal/randx"
	"crowdassess/internal/sim"
)

// feedDataset streams every response of ds into inc in a scrambled order.
func feedDataset(t *testing.T, inc *Incremental, ds *crowd.Dataset, seed int64) {
	t.Helper()
	type cell struct{ w, task int }
	var cells []cell
	for w := 0; w < ds.Workers(); w++ {
		for task := 0; task < ds.Tasks(); task++ {
			if ds.Attempted(w, task) {
				cells = append(cells, cell{w, task})
			}
		}
	}
	src := randx.NewSource(seed)
	src.Shuffle(len(cells), func(i, j int) { cells[i], cells[j] = cells[j], cells[i] })
	for _, c := range cells {
		if err := inc.Add(c.w, c.task, ds.Response(c.w, c.task)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestIncrementalMatchesBatch is the core equivalence property: streaming
// the responses in any order must reproduce the batch algorithm's intervals
// exactly.
func TestIncrementalMatchesBatch(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		src := randx.NewSource(100 + seed)
		ds, _, err := sim.Binary{Tasks: 120, Workers: 7, Density: 0.7}.Generate(src)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := NewIncremental(7)
		if err != nil {
			t.Fatal(err)
		}
		feedDataset(t, inc, ds, seed)

		opts := EvalOptions{Confidence: 0.9}
		batch, err := EvaluateWorkers(ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		stream, err := inc.EvaluateAll(opts)
		if err != nil {
			t.Fatal(err)
		}
		for w := range batch {
			if (batch[w].Err == nil) != (stream[w].Err == nil) {
				t.Fatalf("seed %d worker %d: error mismatch %v vs %v", seed, w, batch[w].Err, stream[w].Err)
			}
			if batch[w].Err != nil {
				continue
			}
			if math.Abs(batch[w].Interval.Lo-stream[w].Interval.Lo) > 1e-12 ||
				math.Abs(batch[w].Interval.Hi-stream[w].Interval.Hi) > 1e-12 {
				t.Errorf("seed %d worker %d: batch %v vs stream %v",
					seed, w, batch[w].Interval, stream[w].Interval)
			}
			if batch[w].Triples != stream[w].Triples {
				t.Errorf("seed %d worker %d: triples %d vs %d", seed, w, batch[w].Triples, stream[w].Triples)
			}
		}
	}
}

func TestIncrementalValidation(t *testing.T) {
	if _, err := NewIncremental(2); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("2 workers: err = %v", err)
	}
	inc, err := NewIncremental(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Add(5, 0, crowd.Yes); err == nil {
		t.Error("out-of-range worker accepted")
	}
	if err := inc.Add(0, -1, crowd.Yes); err == nil {
		t.Error("negative task accepted")
	}
	if err := inc.Add(0, 0, crowd.Response(3)); err == nil {
		t.Error("non-binary response accepted")
	}
	if err := inc.Add(0, 0, crowd.Yes); err != nil {
		t.Fatal(err)
	}
	if err := inc.Add(0, 0, crowd.No); err == nil {
		t.Error("duplicate response accepted")
	}
	if _, err := inc.Evaluate(9, EvalOptions{Confidence: 0.9}); err == nil {
		t.Error("out-of-range evaluation accepted")
	}
	if _, err := inc.Evaluate(0, EvalOptions{Confidence: 0}); err == nil {
		t.Error("confidence 0 accepted")
	}
}

func TestIncrementalCounters(t *testing.T) {
	inc, err := NewIncremental(3)
	if err != nil {
		t.Fatal(err)
	}
	// Task 0: all three agree; task 1: worker 0 disagrees with 1.
	mustAdd := func(w, task int, r crowd.Response) {
		t.Helper()
		if err := inc.Add(w, task, r); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(0, 0, crowd.Yes)
	mustAdd(1, 0, crowd.Yes)
	mustAdd(2, 0, crowd.Yes)
	mustAdd(0, 1, crowd.Yes)
	mustAdd(1, 1, crowd.No)
	if got := inc.pair(0, 1); got.Common != 2 || got.Agree != 1 {
		t.Errorf("pair(0,1) = %+v", got)
	}
	if got := inc.pair(0, 2); got.Common != 1 || got.Agree != 1 {
		t.Errorf("pair(0,2) = %+v", got)
	}
	if got := inc.common3(0, 1, 2); got != 1 {
		t.Errorf("common3 = %d", got)
	}
	if inc.Tasks() != 2 || inc.Responses() != 5 {
		t.Errorf("Tasks=%d Responses=%d", inc.Tasks(), inc.Responses())
	}
}

func TestIncrementalSnapshotRoundTrip(t *testing.T) {
	src := randx.NewSource(7)
	ds, _, err := sim.Binary{Tasks: 60, Workers: 5, Density: 0.6}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncremental(5)
	if err != nil {
		t.Fatal(err)
	}
	feedDataset(t, inc, ds, 1)
	snap, err := inc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 5; w++ {
		for task := 0; task < 60; task++ {
			if snap.Response(w, task) != ds.Response(w, task) {
				t.Fatalf("snapshot mismatch at (%d,%d)", w, task)
			}
		}
	}
	empty, err := NewIncremental(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := empty.Snapshot(); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("empty snapshot err = %v", err)
	}
}

func TestIncrementalMajorityDisagreement(t *testing.T) {
	src := randx.NewSource(8)
	ds, _, err := sim.Binary{Tasks: 200, Workers: 5, ErrorRates: []float64{0.1, 0.1, 0.1, 0.1, 0.45}}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncremental(5)
	if err != nil {
		t.Fatal(err)
	}
	feedDataset(t, inc, ds, 2)
	want := ds.MajorityDisagreement()
	got := inc.MajorityDisagreement()
	for w := range want {
		if math.Abs(got[w]-want[w]) > 1e-12 {
			t.Errorf("worker %d: %v vs batch %v", w, got[w], want[w])
		}
	}
}

func TestIncrementalIntervalsShrinkWithData(t *testing.T) {
	// As more tasks stream in, the interval for a worker should tighten.
	src := randx.NewSource(9)
	ds, _, err := sim.Binary{Tasks: 400, Workers: 5}.Generate(src)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncremental(5)
	if err != nil {
		t.Fatal(err)
	}
	var sizes []float64
	for task := 0; task < 400; task++ {
		for w := 0; w < 5; w++ {
			if err := inc.Add(w, task, ds.Response(w, task)); err != nil {
				t.Fatal(err)
			}
		}
		if task == 49 || task == 199 || task == 399 {
			est, err := inc.Evaluate(0, EvalOptions{Confidence: 0.9})
			if err != nil {
				t.Fatal(err)
			}
			if est.Err != nil {
				t.Fatalf("task %d: %v", task, est.Err)
			}
			sizes = append(sizes, est.Interval.Size())
		}
	}
	if !(sizes[2] < sizes[1] && sizes[1] < sizes[0]) {
		t.Errorf("interval sizes not shrinking: %v", sizes)
	}
}
