package report

import (
	"bytes"
	"strings"
	"testing"

	"crowdassess/internal/eval"
)

func sampleResult() *eval.Result {
	return &eval.Result{
		Name:   "fig_test",
		Title:  "A test figure",
		XLabel: "Confidence",
		YLabel: "Size",
		Series: []eval.Series{
			{Label: "series A", Points: []eval.Point{{X: 0.1, Y: 0.5}, {X: 0.2, Y: 0.4}}},
			{Label: "series,B", Points: []eval.Point{{X: 0.1, Y: 0.9}, {X: 0.2, Y: 0.8}}},
		},
		Failures: 3,
	}
}

func TestWriteTable(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable(&buf, sampleResult()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig_test", "series A", "0.10", "0.5000", "degenerate samples skipped: 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTableEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable(&buf, &eval.Result{Name: "empty"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no series") {
		t.Errorf("empty table output: %q", buf.String())
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleResult()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d CSV lines: %v", len(lines), lines)
	}
	if lines[0] != `Confidence,series A,"series,B"` {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0.1,0.5,0.9" {
		t.Errorf("row 1 = %q", lines[1])
	}
}

func TestWriteGnuplot(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteGnuplot(&buf, sampleResult()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# series: series A") {
		t.Error("missing series comment")
	}
	if !strings.Contains(out, "0.1 0.5") {
		t.Error("missing data point")
	}
	if !strings.Contains(out, "\n\n\n# series:") {
		t.Error("series blocks not separated by blank lines")
	}
}

func TestWriteDispatch(t *testing.T) {
	var buf bytes.Buffer
	for _, f := range Formats() {
		if err := Write(&buf, f, sampleResult()); err != nil {
			t.Errorf("format %q: %v", f, err)
		}
	}
	if err := Write(&buf, "nonsense", sampleResult()); err == nil {
		t.Error("unknown format accepted")
	}
}
