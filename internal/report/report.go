// Package report renders experiment results as aligned text tables, CSV, or
// gnuplot-style .dat blocks — the three formats the benchmark harness and
// the crowdbench CLI emit.
package report

import (
	"fmt"
	"io"
	"strings"

	"crowdassess/internal/eval"
)

// WriteTable renders the result as an aligned text table: one row per x
// value, one column per series.
func WriteTable(w io.Writer, res *eval.Result) error {
	if len(res.Series) == 0 {
		_, err := fmt.Fprintf(w, "%s: no series\n", res.Name)
		return err
	}
	if _, err := fmt.Fprintf(w, "# %s — %s\n", res.Name, res.Title); err != nil {
		return err
	}
	// Header.
	cols := []string{res.XLabel}
	for _, s := range res.Series {
		cols = append(cols, s.Label)
	}
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
		if widths[i] < 8 {
			widths[i] = 8
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(cols); err != nil {
		return err
	}
	// Rows keyed by the first series' x grid (all series share the grid).
	for i, pt := range res.Series[0].Points {
		cells := []string{fmt.Sprintf("%.2f", pt.X)}
		for _, s := range res.Series {
			if i < len(s.Points) {
				cells = append(cells, fmt.Sprintf("%.4f", s.Points[i].Y))
			} else {
				cells = append(cells, "-")
			}
		}
		if err := writeRow(cells); err != nil {
			return err
		}
	}
	if res.Failures > 0 {
		if _, err := fmt.Fprintf(w, "# degenerate samples skipped: %d\n", res.Failures); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the result as CSV with a header row.
func WriteCSV(w io.Writer, res *eval.Result) error {
	cols := []string{csvEscape(res.XLabel)}
	for _, s := range res.Series {
		cols = append(cols, csvEscape(s.Label))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	if len(res.Series) == 0 {
		return nil
	}
	for i, pt := range res.Series[0].Points {
		cells := []string{fmt.Sprintf("%g", pt.X)}
		for _, s := range res.Series {
			if i < len(s.Points) {
				cells = append(cells, fmt.Sprintf("%g", s.Points[i].Y))
			} else {
				cells = append(cells, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// WriteGnuplot renders the result as gnuplot-compatible data blocks: one
// block per series separated by two blank lines, with series labels in
// comments (matching the paper's plot tooling).
func WriteGnuplot(w io.Writer, res *eval.Result) error {
	if _, err := fmt.Fprintf(w, "# %s\n# x: %s, y: %s\n", res.Title, res.XLabel, res.YLabel); err != nil {
		return err
	}
	for si, s := range res.Series {
		if si > 0 {
			if _, err := fmt.Fprint(w, "\n\n"); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# series: %s\n", s.Label); err != nil {
			return err
		}
		for _, pt := range s.Points {
			if _, err := fmt.Fprintf(w, "%g %g\n", pt.X, pt.Y); err != nil {
				return err
			}
		}
	}
	return nil
}

// Formats lists the renderer names accepted by Write.
func Formats() []string { return []string{"table", "csv", "gnuplot"} }

// Write renders res in the named format.
func Write(w io.Writer, format string, res *eval.Result) error {
	switch format {
	case "table":
		return WriteTable(w, res)
	case "csv":
		return WriteCSV(w, res)
	case "gnuplot":
		return WriteGnuplot(w, res)
	}
	return fmt.Errorf("report: unknown format %q (known: %v)", format, Formats())
}
