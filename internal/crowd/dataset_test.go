package crowd

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewDatasetValidation(t *testing.T) {
	if _, err := NewDataset(0, 5, 2); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := NewDataset(5, 0, 2); err == nil {
		t.Error("zero tasks accepted")
	}
	if _, err := NewDataset(5, 5, 1); !errors.Is(err, ErrArity) {
		t.Errorf("arity 1: err = %v, want ErrArity", err)
	}
	d, err := NewDataset(3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Workers() != 3 || d.Tasks() != 4 || d.Arity() != 2 {
		t.Errorf("shape = %d×%d arity %d", d.Workers(), d.Tasks(), d.Arity())
	}
}

func TestSetGetResponse(t *testing.T) {
	d := MustNewDataset(2, 3, 3)
	if err := d.SetResponse(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	if got := d.Response(0, 1); got != 3 {
		t.Errorf("Response = %v, want 3", got)
	}
	if !d.Attempted(0, 1) || d.Attempted(0, 0) {
		t.Error("Attempted misreports")
	}
	// Removal via None.
	if err := d.SetResponse(0, 1, None); err != nil {
		t.Fatal(err)
	}
	if d.Attempted(0, 1) {
		t.Error("response not removed")
	}
}

func TestSetResponseOutOfRange(t *testing.T) {
	d := MustNewDataset(2, 2, 2)
	if err := d.SetResponse(0, 0, 3); !errors.Is(err, ErrArity) {
		t.Errorf("err = %v, want ErrArity", err)
	}
	if err := d.SetResponse(5, 0, 1); err == nil {
		t.Error("bad worker index accepted")
	}
	if err := d.SetResponse(0, 5, 1); err == nil {
		t.Error("bad task index accepted")
	}
}

func TestTruth(t *testing.T) {
	d := MustNewDataset(1, 2, 2)
	if d.HasTruth() {
		t.Error("empty dataset claims truth")
	}
	if err := d.SetTruth(0, Yes); err != nil {
		t.Fatal(err)
	}
	if d.HasTruth() {
		t.Error("partial truth claims complete")
	}
	if err := d.SetTruth(1, No); err != nil {
		t.Fatal(err)
	}
	if !d.HasTruth() {
		t.Error("complete truth not detected")
	}
	if d.Truth(0) != Yes || d.Truth(1) != No {
		t.Error("truth readback wrong")
	}
}

func TestResponseCountDensityRegular(t *testing.T) {
	d := MustNewDataset(2, 4, 2)
	for t2 := 0; t2 < 4; t2++ {
		d.SetResponse(0, t2, Yes)
	}
	d.SetResponse(1, 0, No)
	if got := d.ResponseCount(0); got != 4 {
		t.Errorf("ResponseCount(0) = %d", got)
	}
	if got := d.ResponseCount(1); got != 1 {
		t.Errorf("ResponseCount(1) = %d", got)
	}
	if got := d.Density(); math.Abs(got-5.0/8) > 1e-15 {
		t.Errorf("Density = %v", got)
	}
	if d.IsRegular() {
		t.Error("sparse dataset claims regular")
	}
	for t2 := 1; t2 < 4; t2++ {
		d.SetResponse(1, t2, Yes)
	}
	if !d.IsRegular() {
		t.Error("full dataset not regular")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := MustNewDataset(1, 1, 2)
	d.SetResponse(0, 0, Yes)
	d.SetTruth(0, No)
	c := d.Clone()
	c.SetResponse(0, 0, No)
	c.SetTruth(0, Yes)
	if d.Response(0, 0) != Yes || d.Truth(0) != No {
		t.Error("Clone shares storage")
	}
}

func TestSelectWorkers(t *testing.T) {
	d := MustNewDataset(3, 2, 2)
	d.SetResponse(0, 0, Yes)
	d.SetResponse(2, 1, No)
	d.SetTruth(0, Yes)
	sub, err := d.SelectWorkers([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Workers() != 2 {
		t.Fatalf("workers = %d", sub.Workers())
	}
	if sub.Response(0, 1) != No || sub.Response(1, 0) != Yes {
		t.Error("responses not remapped")
	}
	if sub.Truth(0) != Yes {
		t.Error("truth not carried")
	}
	if _, err := d.SelectWorkers(nil); err == nil {
		t.Error("empty selection accepted")
	}
	if _, err := d.SelectWorkers([]int{7}); err == nil {
		t.Error("out-of-range selection accepted")
	}
}

func TestPairStats(t *testing.T) {
	d := MustNewDataset(2, 5, 2)
	// Worker 0: Y Y Y N -, Worker 1: Y N - N N
	d.SetResponse(0, 0, Yes)
	d.SetResponse(0, 1, Yes)
	d.SetResponse(0, 2, Yes)
	d.SetResponse(0, 3, No)
	d.SetResponse(1, 0, Yes)
	d.SetResponse(1, 1, No)
	d.SetResponse(1, 3, No)
	d.SetResponse(1, 4, No)
	st := d.Pair(0, 1)
	if st.Common != 3 || st.Agree != 2 {
		t.Errorf("PairStats = %+v, want Common 3 Agree 2", st)
	}
	if math.Abs(st.Rate()-2.0/3) > 1e-15 {
		t.Errorf("Rate = %v", st.Rate())
	}
}

func TestPairStatsEmpty(t *testing.T) {
	d := MustNewDataset(2, 2, 2)
	st := d.Pair(0, 1)
	if st.Common != 0 || st.Rate() != 0 {
		t.Errorf("empty pair: %+v rate %v", st, st.Rate())
	}
}

func TestCommonTriple(t *testing.T) {
	d := MustNewDataset(3, 4, 2)
	for _, wt := range [][2]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {2, 1}, {2, 3}} {
		d.SetResponse(wt[0], wt[1], Yes)
	}
	if got := d.CommonTriple(0, 1, 2); got != 1 {
		t.Errorf("CommonTriple = %d, want 1 (task 1)", got)
	}
}

func TestPairMatrixSymmetry(t *testing.T) {
	d := MustNewDataset(3, 6, 2)
	d.SetResponse(0, 0, Yes)
	d.SetResponse(1, 0, No)
	d.SetResponse(2, 0, Yes)
	d.SetResponse(0, 1, Yes)
	d.SetResponse(1, 1, Yes)
	pm := d.PairMatrix()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if pm[i][j] != pm[j][i] {
				t.Errorf("PairMatrix asymmetric at (%d,%d)", i, j)
			}
		}
	}
	if pm[0][1].Common != 2 || pm[0][1].Agree != 1 {
		t.Errorf("pm[0][1] = %+v", pm[0][1])
	}
}

func TestMajorityVote(t *testing.T) {
	d := MustNewDataset(3, 3, 2)
	// Task 0: Y Y N → Y; task 1: N - N → N; task 2 unattempted → None.
	d.SetResponse(0, 0, Yes)
	d.SetResponse(1, 0, Yes)
	d.SetResponse(2, 0, No)
	d.SetResponse(0, 1, No)
	d.SetResponse(2, 1, No)
	maj := d.MajorityVote()
	if maj[0] != Yes || maj[1] != No || maj[2] != None {
		t.Errorf("MajorityVote = %v", maj)
	}
}

func TestMajorityVoteTieBreak(t *testing.T) {
	d := MustNewDataset(2, 1, 3)
	d.SetResponse(0, 0, 3)
	d.SetResponse(1, 0, 1)
	// Tie between classes 1 and 3 → deterministic smaller index.
	if got := d.MajorityVote()[0]; got != 1 {
		t.Errorf("tie-break = %v, want 1", got)
	}
}

func TestMajorityDisagreement(t *testing.T) {
	d := MustNewDataset(3, 4, 2)
	for t2 := 0; t2 < 4; t2++ {
		d.SetResponse(0, t2, Yes)
		d.SetResponse(1, t2, Yes)
		d.SetResponse(2, t2, No) // always against the majority
	}
	dis := d.MajorityDisagreement()
	if dis[0] != 0 || dis[1] != 0 || dis[2] != 1 {
		t.Errorf("MajorityDisagreement = %v", dis)
	}
}

func TestTensor3Basics(t *testing.T) {
	t3 := NewTensor3(2)
	t3.Add(1, 2, 0, 1)
	t3.Add(1, 2, 0, 2)
	if got := t3.At(1, 2, 0); got != 3 {
		t.Errorf("At = %v", got)
	}
	if got := t3.Total(); got != 3 {
		t.Errorf("Total = %v", got)
	}
	c := t3.Clone()
	c.Set(1, 2, 0, 0)
	if t3.At(1, 2, 0) != 3 {
		t.Error("Clone shares storage")
	}
}

func TestTensor3Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range tensor index did not panic")
		}
	}()
	NewTensor3(2).At(3, 0, 0)
}

func TestTensorAttendanceTotal(t *testing.T) {
	t3 := NewTensor3(2)
	t3.Add(1, 2, 1, 5) // all three attended
	t3.Add(1, 2, 0, 3) // only workers 1,2
	t3.Add(0, 1, 1, 2) // only workers 2,3
	if got := t3.AttendanceTotal([3]bool{true, true, true}); got != 5 {
		t.Errorf("all-three = %v", got)
	}
	if got := t3.AttendanceTotal([3]bool{true, true, false}); got != 3 {
		t.Errorf("pair 1,2 = %v", got)
	}
	if got := t3.AttendanceTotal([3]bool{false, true, true}); got != 2 {
		t.Errorf("pair 2,3 = %v", got)
	}
	if got := t3.AttendanceTotal([3]bool{true, false, false}); got != 0 {
		t.Errorf("only-1 = %v", got)
	}
}

func TestCountsTensor(t *testing.T) {
	d := MustNewDataset(3, 4, 2)
	// Task 0: (1,2,1); task 1: (1,2,0); task 2: unattempted; task 3: (0,0,2).
	d.SetResponse(0, 0, 1)
	d.SetResponse(1, 0, 2)
	d.SetResponse(2, 0, 1)
	d.SetResponse(0, 1, 1)
	d.SetResponse(1, 1, 2)
	d.SetResponse(2, 3, 2)
	t3 := d.CountsTensor(0, 1, 2)
	if t3.At(1, 2, 1) != 1 || t3.At(1, 2, 0) != 1 || t3.At(0, 0, 2) != 1 {
		t.Errorf("tensor contents wrong")
	}
	if t3.Total() != 3 {
		t.Errorf("Total = %v, want 3 (empty task excluded)", t3.Total())
	}
}

func TestTrueErrorRate(t *testing.T) {
	d := MustNewDataset(1, 4, 2)
	for t2 := 0; t2 < 4; t2++ {
		d.SetTruth(t2, Yes)
	}
	d.SetResponse(0, 0, Yes)
	d.SetResponse(0, 1, No)
	d.SetResponse(0, 2, No)
	got, err := d.TrueErrorRate(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.0/3) > 1e-15 {
		t.Errorf("TrueErrorRate = %v, want 2/3", got)
	}
}

func TestTrueErrorRateNoGold(t *testing.T) {
	d := MustNewDataset(1, 2, 2)
	d.SetResponse(0, 0, Yes)
	if _, err := d.TrueErrorRate(0); !errors.Is(err, ErrNoGold) {
		t.Errorf("err = %v, want ErrNoGold", err)
	}
}

func TestTrueConfusion(t *testing.T) {
	d := MustNewDataset(1, 6, 2)
	// Truth: 3×Yes, 3×No. Worker answers Yes-tasks correctly 2/3, No 3/3.
	for t2 := 0; t2 < 3; t2++ {
		d.SetTruth(t2, Yes)
		d.SetTruth(t2+3, No)
	}
	d.SetResponse(0, 0, Yes)
	d.SetResponse(0, 1, Yes)
	d.SetResponse(0, 2, No)
	d.SetResponse(0, 3, No)
	d.SetResponse(0, 4, No)
	d.SetResponse(0, 5, No)
	conf, hasRow, err := d.TrueConfusion(0)
	if err != nil {
		t.Fatal(err)
	}
	if !hasRow[0] || !hasRow[1] {
		t.Fatalf("hasRow = %v", hasRow)
	}
	if math.Abs(conf[0][0]-2.0/3) > 1e-15 || math.Abs(conf[0][1]-1.0/3) > 1e-15 {
		t.Errorf("row 0 = %v", conf[0])
	}
	if conf[1][1] != 1 {
		t.Errorf("row 1 = %v", conf[1])
	}
}

func TestGoldSelectivity(t *testing.T) {
	d := MustNewDataset(1, 4, 2)
	d.SetTruth(0, Yes)
	d.SetTruth(1, Yes)
	d.SetTruth(2, Yes)
	d.SetTruth(3, No)
	s, err := d.GoldSelectivity()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s[0]-0.75) > 1e-15 || math.Abs(s[1]-0.25) > 1e-15 {
		t.Errorf("selectivity = %v", s)
	}
	empty := MustNewDataset(1, 1, 2)
	if _, err := empty.GoldSelectivity(); !errors.Is(err, ErrNoGold) {
		t.Errorf("err = %v, want ErrNoGold", err)
	}
}

func TestCollapseArity(t *testing.T) {
	d := MustNewDataset(1, 3, 6)
	d.SetResponse(0, 0, 1)
	d.SetResponse(0, 1, 4)
	d.SetResponse(0, 2, 6)
	d.SetTruth(0, 2)
	// The paper's MOOC reduction: grade g → ⌈g/2⌉.
	half := func(r Response) Response { return (r + 1) / 2 }
	c, err := d.CollapseArity(3, half)
	if err != nil {
		t.Fatal(err)
	}
	if c.Response(0, 0) != 1 || c.Response(0, 1) != 2 || c.Response(0, 2) != 3 {
		t.Error("responses not collapsed")
	}
	if c.Truth(0) != 1 {
		t.Error("truth not collapsed")
	}
	// Bad mapping must error.
	if _, err := d.CollapseArity(2, func(r Response) Response { return 5 }); err == nil {
		t.Error("invalid classOf accepted")
	}
}

func TestValidate(t *testing.T) {
	d := MustNewDataset(1, 2, 2)
	d.SetResponse(0, 0, Yes)
	if err := d.Validate(); err != nil {
		t.Errorf("valid dataset rejected: %v", err)
	}
	d.resp[1] = 9 // corrupt storage directly
	if err := d.Validate(); !errors.Is(err, ErrArity) {
		t.Errorf("corruption not detected: %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := MustNewDataset(2, 3, 3)
	d.SetResponse(0, 0, 1)
	d.SetResponse(0, 2, 3)
	d.SetResponse(1, 1, 2)
	d.SetTruth(0, 1)
	d.SetTruth(2, 2)
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Workers() != 2 || back.Tasks() != 3 || back.Arity() != 3 {
		t.Fatalf("shape lost: %d×%d arity %d", back.Workers(), back.Tasks(), back.Arity())
	}
	for w := 0; w < 2; w++ {
		for t2 := 0; t2 < 3; t2++ {
			if back.Response(w, t2) != d.Response(w, t2) {
				t.Errorf("response (%d,%d) = %v, want %v", w, t2, back.Response(w, t2), d.Response(w, t2))
			}
		}
	}
	for t2 := 0; t2 < 3; t2++ {
		if back.Truth(t2) != d.Truth(t2) {
			t.Errorf("truth %d lost", t2)
		}
	}
}

func TestJSONNoTruthOmitted(t *testing.T) {
	d := MustNewDataset(1, 1, 2)
	d.SetResponse(0, 0, Yes)
	b, err := d.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte("truth")) {
		t.Error("truth field serialized for truthless dataset")
	}
}

// Property: agreement statistics are symmetric and bounded by common count.
func TestPairStatsProperty(t *testing.T) {
	f := func(seed int64) bool {
		d := MustNewDataset(4, 12, 3)
		s := seed
		next := func(n int) int {
			s = s*6364136223846793005 + 1442695040888963407
			v := int((s >> 33) % int64(n))
			if v < 0 {
				v += n
			}
			return v
		}
		for w := 0; w < 4; w++ {
			for t2 := 0; t2 < 12; t2++ {
				d.SetResponse(w, t2, Response(next(4))) // 0..3 incl. None
			}
		}
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				a, b := d.Pair(i, j), d.Pair(j, i)
				if a != b {
					return false
				}
				if a.Agree > a.Common {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
