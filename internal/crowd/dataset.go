// Package crowd defines the data model shared by every algorithm in the
// reproduction: a sparse worker×task response matrix with optional gold
// answers, pairwise/triple agreement statistics, and the 3-dimensional
// response-count tensor consumed by the k-ary algorithm (A3).
//
// Conventions follow the paper: tasks have k possible responses r1…rk,
// encoded 1…k; the value 0 (None) is the paper's null response r0 and means
// "worker did not attempt the task". Binary datasets use arity 2 with
// responses 1 (Yes) and 2 (No).
package crowd

import (
	"errors"
	"fmt"
)

// Response is a single worker answer: 0 (None) when the task was not
// attempted, otherwise a class index in 1…arity.
type Response int

// None is the null response r0: the worker did not attempt the task.
const None Response = 0

// Binary response values. Binary datasets are arity-2 with Yes/No classes.
const (
	Yes Response = 1
	No  Response = 2
)

// ErrArity is returned when a response is outside 0…arity or an arity is
// below 2.
var ErrArity = errors.New("crowd: response outside dataset arity")

// Dataset is a sparse collection of worker responses on tasks, with optional
// gold-standard answers used only for evaluation (never by the estimation
// algorithms themselves).
type Dataset struct {
	numWorkers int
	numTasks   int
	arity      int
	resp       []Response // [worker*numTasks + task], None = not attempted
	truth      []Response // per task, None = unknown
}

// NewDataset returns an empty dataset for the given shape. Arity must be at
// least 2; workers and tasks must be positive.
func NewDataset(workers, tasks, arity int) (*Dataset, error) {
	if workers <= 0 || tasks <= 0 {
		return nil, fmt.Errorf("crowd: invalid shape %d workers × %d tasks", workers, tasks)
	}
	if arity < 2 {
		return nil, fmt.Errorf("crowd: arity %d: %w", arity, ErrArity)
	}
	return &Dataset{
		numWorkers: workers,
		numTasks:   tasks,
		arity:      arity,
		resp:       make([]Response, workers*tasks),
		truth:      make([]Response, tasks),
	}, nil
}

// MustNewDataset is NewDataset panicking on error, for tests and examples.
func MustNewDataset(workers, tasks, arity int) *Dataset {
	d, err := NewDataset(workers, tasks, arity)
	if err != nil {
		panic(err)
	}
	return d
}

// Workers returns the number of workers.
func (d *Dataset) Workers() int { return d.numWorkers }

// Tasks returns the number of tasks.
func (d *Dataset) Tasks() int { return d.numTasks }

// Arity returns the number of possible responses k.
func (d *Dataset) Arity() int { return d.arity }

// SetResponse records worker w's response r on task t. Setting None removes
// a response. It returns ErrArity for out-of-range responses.
func (d *Dataset) SetResponse(w, t int, r Response) error {
	if err := d.checkWT(w, t); err != nil {
		return err
	}
	if r < 0 || int(r) > d.arity {
		return fmt.Errorf("crowd: response %d with arity %d: %w", r, d.arity, ErrArity)
	}
	d.resp[w*d.numTasks+t] = r
	return nil
}

// Response returns worker w's response on task t (None if unattempted).
func (d *Dataset) Response(w, t int) Response {
	if err := d.checkWT(w, t); err != nil {
		panic(err)
	}
	return d.resp[w*d.numTasks+t]
}

// Attempted reports whether worker w answered task t.
func (d *Dataset) Attempted(w, t int) bool { return d.Response(w, t) != None }

// SetTruth records the gold-standard answer for task t (None = unknown).
func (d *Dataset) SetTruth(t int, r Response) error {
	if t < 0 || t >= d.numTasks {
		return fmt.Errorf("crowd: task %d out of range", t)
	}
	if r < 0 || int(r) > d.arity {
		return fmt.Errorf("crowd: truth %d with arity %d: %w", r, d.arity, ErrArity)
	}
	d.truth[t] = r
	return nil
}

// Truth returns the gold answer for task t (None if unknown).
func (d *Dataset) Truth(t int) Response {
	if t < 0 || t >= d.numTasks {
		panic(fmt.Sprintf("crowd: task %d out of range", t))
	}
	return d.truth[t]
}

// HasTruth reports whether every task has a gold answer.
func (d *Dataset) HasTruth() bool {
	for _, r := range d.truth {
		if r == None {
			return false
		}
	}
	return true
}

func (d *Dataset) checkWT(w, t int) error {
	if w < 0 || w >= d.numWorkers || t < 0 || t >= d.numTasks {
		return fmt.Errorf("crowd: (worker %d, task %d) out of range for %d×%d", w, t, d.numWorkers, d.numTasks)
	}
	return nil
}

// ResponseCount returns the number of tasks worker w attempted.
func (d *Dataset) ResponseCount(w int) int {
	n := 0
	for t := 0; t < d.numTasks; t++ {
		if d.resp[w*d.numTasks+t] != None {
			n++
		}
	}
	return n
}

// Density returns the fraction of worker-task pairs with a response.
func (d *Dataset) Density() float64 {
	n := 0
	for _, r := range d.resp {
		if r != None {
			n++
		}
	}
	return float64(n) / float64(len(d.resp))
}

// IsRegular reports whether every worker attempted every task.
func (d *Dataset) IsRegular() bool {
	for _, r := range d.resp {
		if r == None {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{
		numWorkers: d.numWorkers,
		numTasks:   d.numTasks,
		arity:      d.arity,
		resp:       make([]Response, len(d.resp)),
		truth:      make([]Response, len(d.truth)),
	}
	copy(c.resp, d.resp)
	copy(c.truth, d.truth)
	return c
}

// SelectWorkers returns a new dataset containing only the given workers (in
// the given order), preserving all tasks and gold answers. Worker indices in
// the result are positions in the workers slice.
func (d *Dataset) SelectWorkers(workers []int) (*Dataset, error) {
	if len(workers) == 0 {
		return nil, errors.New("crowd: SelectWorkers with empty worker list")
	}
	out, err := NewDataset(len(workers), d.numTasks, d.arity)
	if err != nil {
		return nil, err
	}
	for newW, oldW := range workers {
		if oldW < 0 || oldW >= d.numWorkers {
			return nil, fmt.Errorf("crowd: worker %d out of range", oldW)
		}
		copy(out.resp[newW*d.numTasks:(newW+1)*d.numTasks], d.resp[oldW*d.numTasks:(oldW+1)*d.numTasks])
	}
	copy(out.truth, d.truth)
	return out, nil
}

// Validate checks internal consistency: every stored response and truth
// value must be within 0…arity.
func (d *Dataset) Validate() error {
	for i, r := range d.resp {
		if r < 0 || int(r) > d.arity {
			return fmt.Errorf("crowd: response[%d] = %d outside arity %d: %w", i, r, d.arity, ErrArity)
		}
	}
	for t, r := range d.truth {
		if r < 0 || int(r) > d.arity {
			return fmt.Errorf("crowd: truth[%d] = %d outside arity %d: %w", t, r, d.arity, ErrArity)
		}
	}
	return nil
}
