package crowd

import "math/bits"

// Attendance is a bitset index over the dataset's responses: per worker, a
// bitset of attempted tasks plus one bitset per response class. The
// m-worker algorithm (A2) needs pairwise agreement statistics and triple
// common-task counts for every pair of triples it aggregates; word-wise
// popcounts make those counts O(tasks/64) per class instead of a branchy
// O(tasks) scan per pair.
type Attendance struct {
	tasks int
	words int
	arity int
	sets  [][]uint64 // per worker: attempted-task bitset
	class [][]uint64 // per worker*arity: tasks answered with that class
}

// Attendance builds the bitset index for the dataset's current responses.
// The index is a snapshot: it does not track later mutations.
func (d *Dataset) Attendance() *Attendance {
	words := (d.numTasks + 63) / 64
	a := &Attendance{
		tasks: d.numTasks,
		words: words,
		arity: d.arity,
		sets:  make([][]uint64, d.numWorkers),
		class: make([][]uint64, d.numWorkers*d.arity),
	}
	// One backing array for all bitsets keeps them cache-adjacent.
	backing := make([]uint64, d.numWorkers*(d.arity+1)*words)
	for w := 0; w < d.numWorkers; w++ {
		bs := backing[:words:words]
		backing = backing[words:]
		row := d.resp[w*d.numTasks : (w+1)*d.numTasks]
		cls := make([][]uint64, d.arity)
		for c := 0; c < d.arity; c++ {
			cls[c] = backing[:words:words]
			backing = backing[words:]
		}
		for t, r := range row {
			if r != None {
				bit := uint64(1) << (uint(t) % 64)
				bs[t/64] |= bit
				cls[int(r)-1][t/64] |= bit
			}
		}
		a.sets[w] = bs
		copy(a.class[w*d.arity:(w+1)*d.arity], cls)
	}
	return a
}

// Count returns the number of tasks worker w attempted.
func (a *Attendance) Count(w int) int {
	n := 0
	for _, word := range a.sets[w] {
		n += bits.OnesCount64(word)
	}
	return n
}

// Common2 returns c_{i,j}: tasks attempted by both workers.
func (a *Attendance) Common2(i, j int) int {
	bi, bj := a.sets[i], a.sets[j]
	n := 0
	for w := 0; w < a.words; w++ {
		n += bits.OnesCount64(bi[w] & bj[w])
	}
	return n
}

// Common3 returns c_{i,j,k}: tasks attempted by all three workers.
func (a *Attendance) Common3(i, j, k int) int {
	bi, bj, bk := a.sets[i], a.sets[j], a.sets[k]
	n := 0
	for w := 0; w < a.words; w++ {
		n += bits.OnesCount64(bi[w] & bj[w] & bk[w])
	}
	return n
}

// Pair returns the agreement statistics for workers i and j by popcount:
// Common from the attendance intersection and Agree from the per-class
// intersections (two workers agree on a task exactly when some class
// bitset contains it for both).
func (a *Attendance) Pair(i, j int) PairStats {
	var st PairStats
	bi, bj := a.sets[i], a.sets[j]
	for w := 0; w < a.words; w++ {
		st.Common += bits.OnesCount64(bi[w] & bj[w])
	}
	ci := a.class[i*a.arity : (i+1)*a.arity]
	cj := a.class[j*a.arity : (j+1)*a.arity]
	for c := 0; c < a.arity; c++ {
		bic, bjc := ci[c], cj[c]
		for w := 0; w < a.words; w++ {
			st.Agree += bits.OnesCount64(bic[w] & bjc[w])
		}
	}
	return st
}

// PairMatrix returns the full m×m table of pairwise statistics, computed
// from the bitsets. Entry (i,j) equals entry (j,i); the diagonal holds each
// worker's self-agreement.
func (a *Attendance) PairMatrix() [][]PairStats {
	m := len(a.sets)
	out := make([][]PairStats, m)
	rows := make([]PairStats, m*m)
	for i := range out {
		out[i] = rows[i*m : (i+1)*m : (i+1)*m]
	}
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			st := a.Pair(i, j)
			out[i][j] = st
			out[j][i] = st
		}
	}
	return out
}
