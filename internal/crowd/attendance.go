package crowd

import "math/bits"

// Attendance is a bitset index over which worker attempted which task. The
// m-worker algorithm (A2) needs pairwise and triple common-task counts for
// every pair of triples it aggregates; popcounted bitsets make those counts
// O(tasks/64) instead of O(tasks).
type Attendance struct {
	tasks int
	words int
	sets  [][]uint64 // per worker
}

// Attendance builds the bitset index for the dataset's current responses.
// The index is a snapshot: it does not track later mutations.
func (d *Dataset) Attendance() *Attendance {
	words := (d.numTasks + 63) / 64
	a := &Attendance{tasks: d.numTasks, words: words, sets: make([][]uint64, d.numWorkers)}
	for w := 0; w < d.numWorkers; w++ {
		bs := make([]uint64, words)
		row := d.resp[w*d.numTasks : (w+1)*d.numTasks]
		for t, r := range row {
			if r != None {
				bs[t/64] |= 1 << (uint(t) % 64)
			}
		}
		a.sets[w] = bs
	}
	return a
}

// Count returns the number of tasks worker w attempted.
func (a *Attendance) Count(w int) int {
	n := 0
	for _, word := range a.sets[w] {
		n += bits.OnesCount64(word)
	}
	return n
}

// Common2 returns c_{i,j}: tasks attempted by both workers.
func (a *Attendance) Common2(i, j int) int {
	bi, bj := a.sets[i], a.sets[j]
	n := 0
	for w := 0; w < a.words; w++ {
		n += bits.OnesCount64(bi[w] & bj[w])
	}
	return n
}

// Common3 returns c_{i,j,k}: tasks attempted by all three workers.
func (a *Attendance) Common3(i, j, k int) int {
	bi, bj, bk := a.sets[i], a.sets[j], a.sets[k]
	n := 0
	for w := 0; w < a.words; w++ {
		n += bits.OnesCount64(bi[w] & bj[w] & bk[w])
	}
	return n
}
