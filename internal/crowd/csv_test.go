package crowd

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadCSVBasic(t *testing.T) {
	in := strings.NewReader(
		"worker,task,response,truth\n" +
			"alice,t1,1,1\n" +
			"bob,t1,2,1\n" +
			"alice,t2,2,\n" +
			"carol,t2,2,\n")
	ds, workers, tasks, err := ReadCSV(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(workers) != 3 || len(tasks) != 2 {
		t.Fatalf("%d workers, %d tasks", len(workers), len(tasks))
	}
	if workers[0] != "alice" || tasks[0] != "t1" {
		t.Errorf("id order: %v %v", workers, tasks)
	}
	if ds.Arity() != 2 {
		t.Errorf("arity %d", ds.Arity())
	}
	if ds.Response(0, 0) != 1 || ds.Response(1, 0) != 2 || ds.Response(2, 1) != 2 {
		t.Error("responses misplaced")
	}
	if ds.Truth(0) != 1 || ds.Truth(1) != None {
		t.Error("truth misplaced")
	}
}

func TestReadCSVNoHeader(t *testing.T) {
	in := strings.NewReader("w1,t1,1\nw2,t1,3\n")
	ds, _, _, err := ReadCSV(in)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Arity() != 3 {
		t.Errorf("arity %d, want 3 (largest class)", ds.Arity())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                       // empty
		"worker,task,response\n", // header only
		"w1,t1\n",                // too few fields
		"w1,t1,0\n",              // class < 1
		"worker,task,response\nw1,t1,notanumber\n", // bad data row after header
		"w1,t1,1,0\n",            // truth < 1
		"w1,t1,1\nw1,t1,2\n",     // duplicate response
		"w1,t1,1,1\nw2,t1,1,2\n", // conflicting truth
	}
	for i, c := range cases {
		if _, _, _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := MustNewDataset(3, 4, 3)
	_ = d.SetResponse(0, 0, 1)
	_ = d.SetResponse(0, 2, 3)
	_ = d.SetResponse(1, 1, 2)
	_ = d.SetResponse(2, 3, 1)
	_ = d.SetTruth(0, 1)
	_ = d.SetTruth(2, 3)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, _, _, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Arity() != 3 {
		t.Fatalf("arity %d", back.Arity())
	}
	// Identifier order is deterministic (worker-major scan), so responses
	// land on the same dense indices for attempted cells.
	if back.Workers() != 3 || back.Tasks() != 4 {
		t.Fatalf("shape %d×%d", back.Workers(), back.Tasks())
	}
	type wt struct{ w, t int }
	want := map[wt]Response{{0, 0}: 1, {0, 1}: 3, {1, 2}: 2, {2, 3}: 1}
	// Note: unattempted tasks are renumbered by first appearance, so task
	// indices shift: original tasks (0,2,1,3) → (0,1,2,3).
	for k, v := range want {
		if got := back.Response(k.w, k.t); got != v {
			t.Errorf("response (%d,%d) = %v, want %v", k.w, k.t, got, v)
		}
	}
	if back.Truth(0) != 1 || back.Truth(1) != 3 {
		t.Error("truth lost in round trip")
	}
}

func TestWriteCSVNoTruthColumn(t *testing.T) {
	d := MustNewDataset(1, 1, 2)
	_ = d.SetResponse(0, 0, Yes)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "truth") {
		t.Errorf("truth column emitted for truthless dataset:\n%s", buf.String())
	}
}
