package crowd

// PairStats holds the agreement statistics for a pair of workers: the number
// of tasks both attempted (c_{i,j} in the paper) and how many of those they
// answered identically. The empirical agreement rate q̂_{i,j} follows.
type PairStats struct {
	Common int // c_{i,j}: tasks attempted by both workers
	Agree  int // tasks with identical responses
}

// Rate returns the empirical agreement rate q̂ = Agree/Common, or 0 when the
// pair shares no tasks (callers must check Common first).
func (p PairStats) Rate() float64 {
	if p.Common == 0 {
		return 0
	}
	return float64(p.Agree) / float64(p.Common)
}

// Pair returns the agreement statistics for workers i and j by scanning
// the two response rows. One-shot callers use this; anything touching many
// pairs should build the Attendance index once and use its popcount-based
// Pair/PairMatrix instead.
func (d *Dataset) Pair(i, j int) PairStats {
	var st PairStats
	ri := d.resp[i*d.numTasks : (i+1)*d.numTasks]
	rj := d.resp[j*d.numTasks : (j+1)*d.numTasks]
	for t := 0; t < d.numTasks; t++ {
		if ri[t] == None || rj[t] == None {
			continue
		}
		st.Common++
		if ri[t] == rj[t] {
			st.Agree++
		}
	}
	return st
}

// CommonTriple returns c_{i,j,k}: the number of tasks attempted by all three
// workers.
func (d *Dataset) CommonTriple(i, j, k int) int {
	ri := d.resp[i*d.numTasks : (i+1)*d.numTasks]
	rj := d.resp[j*d.numTasks : (j+1)*d.numTasks]
	rk := d.resp[k*d.numTasks : (k+1)*d.numTasks]
	n := 0
	for t := 0; t < d.numTasks; t++ {
		if ri[t] != None && rj[t] != None && rk[t] != None {
			n++
		}
	}
	return n
}

// PairMatrix returns the full m×m table of pairwise statistics. Entry (i,j)
// equals entry (j,i); the diagonal holds each worker's self-agreement (its
// Common is the worker's response count and Agree equals Common). It is
// computed through the Attendance bitset index — word-wise popcounts
// instead of m²/2 row scans.
func (d *Dataset) PairMatrix() [][]PairStats {
	return d.Attendance().PairMatrix()
}

// MajorityVote returns, for each task, the plurality response among workers
// (None for tasks nobody attempted). Ties are broken toward the smaller
// class index, deterministically.
func (d *Dataset) MajorityVote() []Response {
	out := make([]Response, d.numTasks)
	counts := make([]int, d.arity+1)
	for t := 0; t < d.numTasks; t++ {
		for c := range counts {
			counts[c] = 0
		}
		for w := 0; w < d.numWorkers; w++ {
			counts[d.resp[w*d.numTasks+t]]++
		}
		best, bestCount := None, 0
		for c := 1; c <= d.arity; c++ {
			if counts[c] > bestCount {
				best, bestCount = Response(c), counts[c]
			}
		}
		out[t] = best
	}
	return out
}

// MajorityDisagreement returns, for each worker, the fraction of the
// worker's answered tasks on which it disagrees with the majority vote.
// This is the simple technique the paper uses to pre-screen spammers before
// running the main algorithms (Section III-E). Workers with no responses
// get 0.
func (d *Dataset) MajorityDisagreement() []float64 {
	maj := d.MajorityVote()
	out := make([]float64, d.numWorkers)
	for w := 0; w < d.numWorkers; w++ {
		attempted, disagree := 0, 0
		for t := 0; t < d.numTasks; t++ {
			r := d.resp[w*d.numTasks+t]
			if r == None || maj[t] == None {
				continue
			}
			attempted++
			if r != maj[t] {
				disagree++
			}
		}
		if attempted > 0 {
			out[w] = float64(disagree) / float64(attempted)
		}
	}
	return out
}
