package crowd

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ReadCSV parses a dataset from the long (tidy) CSV form most labelling
// platforms export: one response per row as
//
//	worker,task,response[,truth]
//
// Worker and task are identifiers (arbitrary strings); they are assigned
// dense indices in first-appearance order, returned in the index maps.
// Response and the optional truth column are 1-based class integers.
// A header row is detected (any non-integer in the response column of the
// first row) and skipped. Arity is the largest class seen, but at least 2.
func ReadCSV(r io.Reader) (ds *Dataset, workerIDs, taskIDs []string, err error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // rows may or may not carry a truth column
	records, err := cr.ReadAll()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("crowd: reading CSV: %w", err)
	}
	if len(records) == 0 {
		return nil, nil, nil, fmt.Errorf("crowd: empty CSV")
	}
	// Header detection: the third column of a data row must parse as int.
	start := 0
	if len(records[0]) >= 3 {
		if _, err := strconv.Atoi(records[0][2]); err != nil {
			start = 1
		}
	}
	type cell struct {
		w, t  int
		r     Response
		truth Response // None when absent
	}
	workerIndex := map[string]int{}
	taskIndex := map[string]int{}
	var cells []cell
	arity := 2
	for line := start; line < len(records); line++ {
		rec := records[line]
		if len(rec) < 3 {
			return nil, nil, nil, fmt.Errorf("crowd: line %d has %d fields, want ≥3", line+1, len(rec))
		}
		w, ok := workerIndex[rec[0]]
		if !ok {
			w = len(workerIDs)
			workerIndex[rec[0]] = w
			workerIDs = append(workerIDs, rec[0])
		}
		t, ok := taskIndex[rec[1]]
		if !ok {
			t = len(taskIDs)
			taskIndex[rec[1]] = t
			taskIDs = append(taskIDs, rec[1])
		}
		resp, err := strconv.Atoi(rec[2])
		if err != nil || resp < 1 {
			return nil, nil, nil, fmt.Errorf("crowd: line %d: response %q must be a positive class index", line+1, rec[2])
		}
		if resp > arity {
			arity = resp
		}
		c := cell{w: w, t: t, r: Response(resp)}
		if len(rec) >= 4 && rec[3] != "" {
			truth, err := strconv.Atoi(rec[3])
			if err != nil || truth < 1 {
				return nil, nil, nil, fmt.Errorf("crowd: line %d: truth %q must be a positive class index", line+1, rec[3])
			}
			if truth > arity {
				arity = truth
			}
			c.truth = Response(truth)
		}
		cells = append(cells, c)
	}
	if len(cells) == 0 {
		return nil, nil, nil, fmt.Errorf("crowd: CSV contains no responses")
	}
	ds, err = NewDataset(len(workerIDs), len(taskIDs), arity)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, c := range cells {
		if ds.Attempted(c.w, c.t) {
			return nil, nil, nil, fmt.Errorf("crowd: duplicate response for worker %q on task %q",
				workerIDs[c.w], taskIDs[c.t])
		}
		if err := ds.SetResponse(c.w, c.t, c.r); err != nil {
			return nil, nil, nil, err
		}
		if c.truth != None {
			existing := ds.Truth(c.t)
			if existing != None && existing != c.truth {
				return nil, nil, nil, fmt.Errorf("crowd: conflicting truths for task %q", taskIDs[c.t])
			}
			if err := ds.SetTruth(c.t, c.truth); err != nil {
				return nil, nil, nil, err
			}
		}
	}
	return ds, workerIDs, taskIDs, nil
}

// WriteCSV emits the dataset in the long CSV form accepted by ReadCSV,
// including a header and a truth column when gold answers exist.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	hasTruth := false
	for t := 0; t < d.numTasks; t++ {
		if d.truth[t] != None {
			hasTruth = true
			break
		}
	}
	header := []string{"worker", "task", "response"}
	if hasTruth {
		header = append(header, "truth")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for wk := 0; wk < d.numWorkers; wk++ {
		for t := 0; t < d.numTasks; t++ {
			r := d.Response(wk, t)
			if r == None {
				continue
			}
			rec := []string{
				"w" + strconv.Itoa(wk),
				"t" + strconv.Itoa(t),
				strconv.Itoa(int(r)),
			}
			if hasTruth {
				if g := d.truth[t]; g != None {
					rec = append(rec, strconv.Itoa(int(g)))
				} else {
					rec = append(rec, "")
				}
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
