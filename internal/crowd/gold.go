package crowd

import (
	"errors"
	"fmt"
)

// ErrNoGold is returned by evaluation helpers when the dataset lacks the
// gold answers they need.
var ErrNoGold = errors.New("crowd: dataset has no gold-standard answers")

// TrueErrorRate returns the fraction of worker w's answered gold-labelled
// tasks that were answered incorrectly. The paper uses this as the proxy for
// the worker's true error rate on real datasets. Tasks without gold answers
// are skipped; an error is returned when none remain.
func (d *Dataset) TrueErrorRate(w int) (float64, error) {
	attempted, wrong := 0, 0
	for t := 0; t < d.numTasks; t++ {
		r := d.Response(w, t)
		g := d.truth[t]
		if r == None || g == None {
			continue
		}
		attempted++
		if r != g {
			wrong++
		}
	}
	if attempted == 0 {
		return 0, fmt.Errorf("worker %d: %w", w, ErrNoGold)
	}
	return float64(wrong) / float64(attempted), nil
}

// TrueConfusion returns the empirical k×k response-probability matrix of
// worker w: entry [j1][j2] is the fraction of gold-j1 tasks the worker
// answered with j2 (the paper's proxy for P_i(j1, j2) on real data).
// Rows with no observations are returned as all-zero; hasRow reports which
// rows are backed by at least one observation.
func (d *Dataset) TrueConfusion(w int) (conf [][]float64, hasRow []bool, err error) {
	k := d.arity
	counts := make([][]int, k)
	rowTotals := make([]int, k)
	for i := range counts {
		counts[i] = make([]int, k)
	}
	seen := false
	for t := 0; t < d.numTasks; t++ {
		r := d.Response(w, t)
		g := d.truth[t]
		if r == None || g == None {
			continue
		}
		seen = true
		counts[g-1][r-1]++
		rowTotals[g-1]++
	}
	if !seen {
		return nil, nil, fmt.Errorf("worker %d: %w", w, ErrNoGold)
	}
	conf = make([][]float64, k)
	hasRow = make([]bool, k)
	for j1 := 0; j1 < k; j1++ {
		conf[j1] = make([]float64, k)
		if rowTotals[j1] == 0 {
			continue
		}
		hasRow[j1] = true
		for j2 := 0; j2 < k; j2++ {
			conf[j1][j2] = float64(counts[j1][j2]) / float64(rowTotals[j1])
		}
	}
	return conf, hasRow, nil
}

// GoldSelectivity returns the empirical prior over true classes among tasks
// with gold answers: entry j is the fraction of gold answers equal to j+1.
func (d *Dataset) GoldSelectivity() ([]float64, error) {
	counts := make([]int, d.arity)
	total := 0
	for _, g := range d.truth {
		if g == None {
			continue
		}
		counts[g-1]++
		total++
	}
	if total == 0 {
		return nil, ErrNoGold
	}
	out := make([]float64, d.arity)
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out, nil
}

// CollapseArity returns a copy of the dataset with responses and gold
// answers remapped through classOf, which must map 1…arity onto 1…newArity.
// The paper applies such reductions to MOOC (6→3 via ⌈g/2⌉), WS (11→2) and
// WSD (3→2).
func (d *Dataset) CollapseArity(newArity int, classOf func(Response) Response) (*Dataset, error) {
	if newArity < 2 {
		return nil, fmt.Errorf("crowd: new arity %d: %w", newArity, ErrArity)
	}
	out, err := NewDataset(d.numWorkers, d.numTasks, newArity)
	if err != nil {
		return nil, err
	}
	remap := func(r Response) (Response, error) {
		if r == None {
			return None, nil
		}
		nr := classOf(r)
		if nr < 1 || int(nr) > newArity {
			return None, fmt.Errorf("crowd: classOf(%d) = %d outside 1…%d: %w", r, nr, newArity, ErrArity)
		}
		return nr, nil
	}
	for w := 0; w < d.numWorkers; w++ {
		for t := 0; t < d.numTasks; t++ {
			nr, err := remap(d.Response(w, t))
			if err != nil {
				return nil, err
			}
			if err := out.SetResponse(w, t, nr); err != nil {
				return nil, err
			}
		}
	}
	for t := 0; t < d.numTasks; t++ {
		nr, err := remap(d.truth[t])
		if err != nil {
			return nil, err
		}
		if err := out.SetTruth(t, nr); err != nil {
			return nil, err
		}
	}
	return out, nil
}
