package crowd

import "fmt"

// Tensor3 is the (k+1)×(k+1)×(k+1) response-count array of Algorithm A3:
// entry [a][b][c] counts tasks where worker 1 responded a, worker 2
// responded b, and worker 3 responded c (0 = did not attempt). Entries are
// float64 because the algorithm perturbs them by ±ε during numeric
// differentiation.
type Tensor3 struct {
	k    int // arity; indices run 0…k
	data []float64
}

// NewTensor3 returns a zeroed counts tensor for arity k ≥ 2.
func NewTensor3(k int) *Tensor3 {
	if k < 2 {
		panic(fmt.Sprintf("crowd: tensor arity %d < 2", k))
	}
	n := k + 1
	return &Tensor3{k: k, data: make([]float64, n*n*n)}
}

// Arity returns k.
func (t *Tensor3) Arity() int { return t.k }

func (t *Tensor3) idx(a, b, c int) int {
	n := t.k + 1
	if a < 0 || a > t.k || b < 0 || b > t.k || c < 0 || c > t.k {
		panic(fmt.Sprintf("crowd: tensor index (%d,%d,%d) out of range 0…%d", a, b, c, t.k))
	}
	return (a*n+b)*n + c
}

// At returns the count for the response combination (a, b, c).
func (t *Tensor3) At(a, b, c int) float64 { return t.data[t.idx(a, b, c)] }

// Set assigns the count for (a, b, c).
func (t *Tensor3) Set(a, b, c int, v float64) { t.data[t.idx(a, b, c)] = v }

// Add increments the count for (a, b, c) by v.
func (t *Tensor3) Add(a, b, c int, v float64) { t.data[t.idx(a, b, c)] += v }

// Clone returns a deep copy.
func (t *Tensor3) Clone() *Tensor3 {
	c := NewTensor3(t.k)
	copy(c.data, t.data)
	return c
}

// Total returns the sum of all entries (the number of tasks counted,
// excluding the all-None combination if it was never stored).
func (t *Tensor3) Total() float64 {
	var s float64
	for _, v := range t.data {
		s += v
	}
	return s
}

// AttendanceTotal returns the total count of combinations matching an
// attendance pattern: att[i] = true means worker i+1 responded (index > 0),
// false means the worker did not attempt (index == 0). This is the "number
// of tasks attempted by exactly the set of workers" n in Lemma 9.
func (t *Tensor3) AttendanceTotal(att [3]bool) float64 {
	var s float64
	n := t.k + 1
	for a := 0; a < n; a++ {
		if (a > 0) != att[0] {
			continue
		}
		for b := 0; b < n; b++ {
			if (b > 0) != att[1] {
				continue
			}
			for c := 0; c < n; c++ {
				if (c > 0) != att[2] {
					continue
				}
				s += t.data[(a*n+b)*n+c]
			}
		}
	}
	return s
}

// CountsTensor builds the A3 response-count tensor for the ordered worker
// triple (w1, w2, w3). Tasks attempted by none of the three are not counted
// (their combination (0,0,0) stays zero, matching the paper's preprocessing).
func (d *Dataset) CountsTensor(w1, w2, w3 int) *Tensor3 {
	t3 := NewTensor3(d.arity)
	for t := 0; t < d.numTasks; t++ {
		a := int(d.Response(w1, t))
		b := int(d.Response(w2, t))
		c := int(d.Response(w3, t))
		if a == 0 && b == 0 && c == 0 {
			continue
		}
		t3.Add(a, b, c, 1)
	}
	return t3
}
