package crowd

import (
	"testing"
	"testing/quick"
)

func TestAttendanceCountsMatchNaive(t *testing.T) {
	f := func(seed int64) bool {
		d := MustNewDataset(4, 130, 2) // >2 bitset words
		s := seed
		next := func() int {
			s = s*6364136223846793005 + 1442695040888963407
			v := int((s >> 33) % 3)
			if v < 0 {
				v += 3
			}
			return v
		}
		for w := 0; w < 4; w++ {
			for t2 := 0; t2 < 130; t2++ {
				d.SetResponse(w, t2, Response(next()))
			}
		}
		a := d.Attendance()
		for i := 0; i < 4; i++ {
			if a.Count(i) != d.ResponseCount(i) {
				return false
			}
			for j := 0; j < 4; j++ {
				if a.Common2(i, j) != d.Pair(i, j).Common {
					return false
				}
				for k := 0; k < 4; k++ {
					if a.Common3(i, j, k) != d.CommonTriple(i, j, k) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAttendanceEmpty(t *testing.T) {
	d := MustNewDataset(2, 10, 2)
	a := d.Attendance()
	if a.Count(0) != 0 || a.Common2(0, 1) != 0 || a.Common3(0, 1, 1) != 0 {
		t.Error("empty dataset attendance should be zero")
	}
}
