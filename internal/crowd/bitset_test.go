package crowd

import (
	"math/rand"
	"testing"
)

// randomDataset fills a dataset with deterministic pseudo-random responses
// at the given density.
func randomDataset(tb testing.TB, workers, tasks, arity int, density float64, seed int64) *Dataset {
	tb.Helper()
	d := MustNewDataset(workers, tasks, arity)
	rng := rand.New(rand.NewSource(seed))
	for w := 0; w < workers; w++ {
		for t := 0; t < tasks; t++ {
			if rng.Float64() >= density {
				continue
			}
			if err := d.SetResponse(w, t, Response(1+rng.Intn(arity))); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return d
}

// TestAttendancePairMatchesScan cross-checks the popcount-based pair
// statistics against the reference row scan on random datasets, including
// task counts straddling the 64-bit word boundary.
func TestAttendancePairMatchesScan(t *testing.T) {
	for _, cfg := range []struct {
		workers, tasks, arity int
		density               float64
	}{
		{3, 10, 2, 1.0},
		{5, 64, 2, 0.7},
		{5, 65, 3, 0.5},
		{8, 200, 4, 0.3},
		{4, 63, 5, 0.9},
	} {
		d := randomDataset(t, cfg.workers, cfg.tasks, cfg.arity, cfg.density, int64(cfg.tasks))
		att := d.Attendance()
		for i := 0; i < cfg.workers; i++ {
			for j := 0; j < cfg.workers; j++ {
				want := d.Pair(i, j)
				got := att.Pair(i, j)
				if got != want {
					t.Errorf("%d×%d arity %d: Pair(%d,%d) = %+v via bitset, %+v via scan",
						cfg.workers, cfg.tasks, cfg.arity, i, j, got, want)
				}
			}
		}
		pm := d.PairMatrix()
		for i := 0; i < cfg.workers; i++ {
			for j := 0; j < cfg.workers; j++ {
				if pm[i][j] != d.Pair(i, j) {
					t.Errorf("PairMatrix(%d,%d) disagrees with scan", i, j)
				}
			}
		}
	}
}

// pairMatrixScan is the pre-bitset reference implementation, kept for the
// benchmark comparison below.
func pairMatrixScan(d *Dataset) [][]PairStats {
	m := d.Workers()
	out := make([][]PairStats, m)
	for i := range out {
		out[i] = make([]PairStats, m)
	}
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			st := d.Pair(i, j)
			out[i][j] = st
			out[j][i] = st
		}
	}
	return out
}

func BenchmarkPairMatrixBitset(b *testing.B) {
	d := randomDataset(b, 50, 2000, 2, 0.6, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.PairMatrix()
	}
}

func BenchmarkPairMatrixScan(b *testing.B) {
	d := randomDataset(b, 50, 2000, 2, 0.6, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pairMatrixScan(d)
	}
}
