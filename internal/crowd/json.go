package crowd

import (
	"encoding/json"
	"fmt"
	"io"
)

// datasetJSON is the wire form of a Dataset. Responses are stored as a
// worker-major list of (task, response) pairs so sparse data stays compact.
type datasetJSON struct {
	Workers   int        `json:"workers"`
	Tasks     int        `json:"tasks"`
	Arity     int        `json:"arity"`
	Responses [][][2]int `json:"responses"` // per worker: [task, response]
	Truth     []int      `json:"truth,omitempty"`
}

// MarshalJSON encodes the dataset in a compact sparse form.
func (d *Dataset) MarshalJSON() ([]byte, error) {
	out := datasetJSON{Workers: d.numWorkers, Tasks: d.numTasks, Arity: d.arity}
	out.Responses = make([][][2]int, d.numWorkers)
	for w := 0; w < d.numWorkers; w++ {
		for t := 0; t < d.numTasks; t++ {
			if r := d.Response(w, t); r != None {
				out.Responses[w] = append(out.Responses[w], [2]int{t, int(r)})
			}
		}
	}
	hasTruth := false
	for _, g := range d.truth {
		if g != None {
			hasTruth = true
			break
		}
	}
	if hasTruth {
		out.Truth = make([]int, d.numTasks)
		for t, g := range d.truth {
			out.Truth[t] = int(g)
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the compact sparse form produced by MarshalJSON.
func (d *Dataset) UnmarshalJSON(b []byte) error {
	var in datasetJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	nd, err := NewDataset(in.Workers, in.Tasks, in.Arity)
	if err != nil {
		return err
	}
	if len(in.Responses) != in.Workers {
		return fmt.Errorf("crowd: %d response lists for %d workers", len(in.Responses), in.Workers)
	}
	for w, list := range in.Responses {
		for _, pair := range list {
			if err := nd.SetResponse(w, pair[0], Response(pair[1])); err != nil {
				return err
			}
		}
	}
	if in.Truth != nil {
		if len(in.Truth) != in.Tasks {
			return fmt.Errorf("crowd: %d truth entries for %d tasks", len(in.Truth), in.Tasks)
		}
		for t, g := range in.Truth {
			if err := nd.SetTruth(t, Response(g)); err != nil {
				return err
			}
		}
	}
	*d = *nd
	return nil
}

// WriteTo serializes the dataset as JSON to w.
func (d *Dataset) WriteTo(w io.Writer) (int64, error) {
	b, err := json.Marshal(d)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(b)
	return int64(n), err
}

// ReadDataset parses a JSON-encoded dataset from r.
func ReadDataset(r io.Reader) (*Dataset, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var d Dataset
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, err
	}
	return &d, nil
}
