package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem seam the storage engine writes through. Production
// code uses OSFS; tests substitute FaultFS to inject torn writes, ENOSPC
// and crash-at-offset faults without touching a real disk's failure modes.
// The surface is deliberately small — just what a WAL and a snapshot store
// need — so alternative backends (object stores, SQL blobs) can satisfy it
// without inheriting POSIX semantics they cannot honour.
type FS interface {
	// MkdirAll creates the directory and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// OpenFile opens a file for writing with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile returns the file's full contents.
	ReadFile(name string) ([]byte, error)
	// ReadDir returns the names (not paths) of the directory's entries,
	// sorted ascending.
	ReadDir(name string) ([]string, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Truncate cuts a file to the given size.
	Truncate(name string, size int64) error
	// SyncFile fsyncs a file by name, making a preceding Truncate (or any
	// write through another handle) durable. Recovery needs it: cutting a
	// torn tail is only real once it is on stable storage, or the tear
	// resurfaces after the next power loss — underneath records acked
	// since.
	SyncFile(name string) error
	// SyncDir fsyncs a directory, making renames/creates/removes inside it
	// durable. Rename alone is NOT durable across power loss: the new
	// directory entry lives in the parent's data blocks, which need their
	// own fsync.
	SyncDir(name string) error
}

// File is the write-side handle the engine appends through.
type File interface {
	io.Writer
	// Sync flushes written data to stable storage.
	Sync() error
	// Close releases the handle.
	Close() error
}

// OSFS is the real-disk FS.
type OSFS struct{}

func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OSFS) ReadDir(name string) ([]string, error) {
	entries, err := os.ReadDir(name)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) Rename(oldpath, newpath string) error   { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(name string) error               { return os.Remove(name) }
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (OSFS) SyncFile(name string) error {
	f, err := os.Open(name)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func (OSFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteFileAtomic durably replaces path with data: write to a temp file in
// the same directory, fsync it, rename over the target, then fsync the
// parent directory. Readers never observe a partial file, and after the
// call returns the replacement survives power loss — the parent-dir fsync
// is what pins the rename itself.
func WriteFileAtomic(fsys FS, path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return fmt.Errorf("store: create %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("store: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("store: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("store: close %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("store: rename %s: %w", tmp, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("store: sync dir %s: %w", dir, err)
	}
	return nil
}
