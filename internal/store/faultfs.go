package store

import (
	"errors"
	"os"
	"sync"
)

// FaultFS wraps an FS with deterministic fault injection for the chaos
// suite: a byte budget that, once exhausted, either returns ENOSPC or
// tears the in-flight write mid-frame and "crashes" (every later operation
// fails), plus forced short writes and sync failures. It models the disk
// failure modes a WAL must survive — torn tails, full disks, power cuts —
// without needing a real power cut.
type FaultFS struct {
	inner FS

	mu         sync.Mutex
	budget     int64 // bytes writable before the fault fires; <0 = unlimited
	mode       FaultMode
	crashed    bool
	syncErr    error
	shortEvery int // force every Nth write to be short (0 = off)
	writes     int
}

// FaultMode selects what happens when the write budget runs out.
type FaultMode int

const (
	// FaultNone never fires; the budget is ignored.
	FaultNone FaultMode = iota
	// FaultENOSPC makes the exhausting write fail with ErrNoSpace after
	// writing the bytes the budget still covered (a short write, as a full
	// disk produces).
	FaultENOSPC
	// FaultCrash tears the exhausting write at the budget boundary and
	// fails every subsequent operation with ErrCrashed — the moral
	// equivalent of the power cutting mid-append.
	FaultCrash
)

// ErrNoSpace is the injected full-disk error.
var ErrNoSpace = errors.New("store: no space left on device (injected)")

// ErrCrashed reports an operation on a FaultFS past its crash point.
var ErrCrashed = errors.New("store: filesystem crashed (injected)")

// NewFaultFS wraps inner with no faults armed.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner, budget: -1}
}

// SetWriteBudget arms the budget fault: after n more written bytes, mode
// fires. Pass n < 0 to disarm.
func (f *FaultFS) SetWriteBudget(n int64, mode FaultMode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget, f.mode = n, mode
}

// SetSyncError makes every Sync fail with err (nil restores normality).
func (f *FaultFS) SetSyncError(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncErr = err
}

// SetShortWrites forces every nth write to persist only half its bytes
// before failing (0 disables).
func (f *FaultFS) SetShortWrites(nth int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shortEvery, f.writes = nth, 0
}

// Crashed reports whether the crash fault has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Revive clears the crashed state — the "restart after power loss" step.
// The torn bytes already on disk stay exactly as the fault left them.
func (f *FaultFS) Revive() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = false
	f.budget = -1
	f.mode = FaultNone
}

// admit charges n bytes against the budget, returning how many may be
// written and the error to report (nil if the write proceeds in full).
func (f *FaultFS) admit(n int) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrCrashed
	}
	if f.shortEvery > 0 {
		f.writes++
		if f.writes%f.shortEvery == 0 {
			return n / 2, errors.New("store: short write (injected)")
		}
	}
	if f.budget < 0 || f.mode == FaultNone || int64(n) <= f.budget {
		if f.budget >= 0 {
			f.budget -= int64(n)
		}
		return n, nil
	}
	allowed := int(f.budget)
	f.budget = 0
	switch f.mode {
	case FaultCrash:
		f.crashed = true
		return allowed, ErrCrashed
	default:
		return allowed, ErrNoSpace
	}
}

// guard fails metadata operations once crashed.
func (f *FaultFS) guard() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.guard(); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := f.guard(); err != nil {
		return nil, err
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

// Reads are never faulted: recovery code must be able to read back
// whatever the faults left on disk.
func (f *FaultFS) ReadFile(name string) ([]byte, error)  { return f.inner.ReadFile(name) }
func (f *FaultFS) ReadDir(name string) ([]string, error) { return f.inner.ReadDir(name) }

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.guard(); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if err := f.guard(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if err := f.guard(); err != nil {
		return err
	}
	return f.inner.Truncate(name, size)
}

func (f *FaultFS) SyncFile(name string) error {
	f.mu.Lock()
	crashed, syncErr := f.crashed, f.syncErr
	f.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	if syncErr != nil {
		return syncErr
	}
	return f.inner.SyncFile(name)
}

func (f *FaultFS) SyncDir(name string) error {
	f.mu.Lock()
	crashed, syncErr := f.crashed, f.syncErr
	f.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	if syncErr != nil {
		return syncErr
	}
	return f.inner.SyncDir(name)
}

type faultFile struct {
	fs    *FaultFS
	inner File
}

func (f *faultFile) Write(p []byte) (int, error) {
	allowed, ferr := f.fs.admit(len(p))
	n := 0
	if allowed > 0 {
		var err error
		n, err = f.inner.Write(p[:allowed])
		if ferr == nil {
			ferr = err
		}
	}
	if ferr != nil {
		return n, ferr
	}
	return n, nil
}

func (f *faultFile) Sync() error {
	f.fs.mu.Lock()
	crashed, syncErr := f.fs.crashed, f.fs.syncErr
	f.fs.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	if syncErr != nil {
		return syncErr
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error {
	// Close always reaches the real file so handles are not leaked, even
	// after a crash.
	return f.inner.Close()
}
